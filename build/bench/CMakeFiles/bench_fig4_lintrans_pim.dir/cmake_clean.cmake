file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lintrans_pim.dir/bench_fig4_lintrans_pim.cc.o"
  "CMakeFiles/bench_fig4_lintrans_pim.dir/bench_fig4_lintrans_pim.cc.o.d"
  "bench_fig4_lintrans_pim"
  "bench_fig4_lintrans_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lintrans_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig4_lintrans_pim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fftiter.dir/bench_fig3_fftiter.cc.o"
  "CMakeFiles/bench_fig3_fftiter.dir/bench_fig3_fftiter.cc.o.d"
  "bench_fig3_fftiter"
  "bench_fig3_fftiter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fftiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig3_fftiter.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig1_lintrans.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_lintrans.dir/bench_fig1_lintrans.cc.o"
  "CMakeFiles/bench_fig1_lintrans.dir/bench_fig1_lintrans.cc.o.d"
  "bench_fig1_lintrans"
  "bench_fig1_lintrans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_lintrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

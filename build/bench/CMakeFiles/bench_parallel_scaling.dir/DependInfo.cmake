
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parallel_scaling.cc" "bench/CMakeFiles/bench_parallel_scaling.dir/bench_parallel_scaling.cc.o" "gcc" "bench/CMakeFiles/bench_parallel_scaling.dir/bench_parallel_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ckks/CMakeFiles/anaheim_ckks.dir/DependInfo.cmake"
  "/root/repo/build/src/boot/CMakeFiles/anaheim_boot.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/anaheim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lintrans/CMakeFiles/anaheim_lintrans.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/anaheim_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/anaheim_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/anaheim_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2c_minks.dir/bench_fig2c_minks.cc.o"
  "CMakeFiles/bench_fig2c_minks.dir/bench_fig2c_minks.cc.o.d"
  "bench_fig2c_minks"
  "bench_fig2c_minks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_minks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2c_minks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_pim_micro.dir/bench_fig9_pim_micro.cc.o"
  "CMakeFiles/bench_fig9_pim_micro.dir/bench_fig9_pim_micro.cc.o.d"
  "bench_fig9_pim_micro"
  "bench_fig9_pim_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pim_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig9_pim_micro.
# This may be replaced when dependencies are built.

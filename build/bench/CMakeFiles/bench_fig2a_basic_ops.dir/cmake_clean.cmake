file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_basic_ops.dir/bench_fig2a_basic_ops.cc.o"
  "CMakeFiles/bench_fig2a_basic_ops.dir/bench_fig2a_basic_ops.cc.o.d"
  "bench_fig2a_basic_ops"
  "bench_fig2a_basic_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_basic_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2a_basic_ops.
# This may be replaced when dependencies are built.

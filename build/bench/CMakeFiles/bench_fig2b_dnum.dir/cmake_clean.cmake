file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_dnum.dir/bench_fig2b_dnum.cc.o"
  "CMakeFiles/bench_fig2b_dnum.dir/bench_fig2b_dnum.cc.o.d"
  "bench_fig2b_dnum"
  "bench_fig2b_dnum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_dnum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2b_dnum.
# This may be replaced when dependencies are built.

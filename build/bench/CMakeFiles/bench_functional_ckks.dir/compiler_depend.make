# Empty compiler generated dependencies file for bench_functional_ckks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_functional_ckks.dir/bench_functional_ckks.cc.o"
  "CMakeFiles/bench_functional_ckks.dir/bench_functional_ckks.cc.o.d"
  "bench_functional_ckks"
  "bench_functional_ckks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functional_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pim_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pim_explorer.dir/pim_explorer.cpp.o"
  "CMakeFiles/pim_explorer.dir/pim_explorer.cpp.o.d"
  "pim_explorer"
  "pim_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for encrypted_matvec.
# This may be replaced when dependencies are built.

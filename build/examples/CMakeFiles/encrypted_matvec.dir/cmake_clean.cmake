file(REMOVE_RECURSE
  "CMakeFiles/encrypted_matvec.dir/encrypted_matvec.cpp.o"
  "CMakeFiles/encrypted_matvec.dir/encrypted_matvec.cpp.o.d"
  "encrypted_matvec"
  "encrypted_matvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_matvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

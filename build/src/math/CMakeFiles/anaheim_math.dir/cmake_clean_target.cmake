file(REMOVE_RECURSE
  "libanaheim_math.a"
)

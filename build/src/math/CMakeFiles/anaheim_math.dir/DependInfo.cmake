
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/modarith.cc" "src/math/CMakeFiles/anaheim_math.dir/modarith.cc.o" "gcc" "src/math/CMakeFiles/anaheim_math.dir/modarith.cc.o.d"
  "/root/repo/src/math/montgomery.cc" "src/math/CMakeFiles/anaheim_math.dir/montgomery.cc.o" "gcc" "src/math/CMakeFiles/anaheim_math.dir/montgomery.cc.o.d"
  "/root/repo/src/math/ntt.cc" "src/math/CMakeFiles/anaheim_math.dir/ntt.cc.o" "gcc" "src/math/CMakeFiles/anaheim_math.dir/ntt.cc.o.d"
  "/root/repo/src/math/primes.cc" "src/math/CMakeFiles/anaheim_math.dir/primes.cc.o" "gcc" "src/math/CMakeFiles/anaheim_math.dir/primes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/anaheim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for anaheim_math.
# This may be replaced when dependencies are built.

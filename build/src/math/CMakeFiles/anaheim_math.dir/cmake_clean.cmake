file(REMOVE_RECURSE
  "CMakeFiles/anaheim_math.dir/modarith.cc.o"
  "CMakeFiles/anaheim_math.dir/modarith.cc.o.d"
  "CMakeFiles/anaheim_math.dir/montgomery.cc.o"
  "CMakeFiles/anaheim_math.dir/montgomery.cc.o.d"
  "CMakeFiles/anaheim_math.dir/ntt.cc.o"
  "CMakeFiles/anaheim_math.dir/ntt.cc.o.d"
  "CMakeFiles/anaheim_math.dir/primes.cc.o"
  "CMakeFiles/anaheim_math.dir/primes.cc.o.d"
  "libanaheim_math.a"
  "libanaheim_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/anaheim_common.dir/logging.cc.o"
  "CMakeFiles/anaheim_common.dir/logging.cc.o.d"
  "CMakeFiles/anaheim_common.dir/parallel.cc.o"
  "CMakeFiles/anaheim_common.dir/parallel.cc.o.d"
  "CMakeFiles/anaheim_common.dir/rng.cc.o"
  "CMakeFiles/anaheim_common.dir/rng.cc.o.d"
  "CMakeFiles/anaheim_common.dir/units.cc.o"
  "CMakeFiles/anaheim_common.dir/units.cc.o.d"
  "libanaheim_common.a"
  "libanaheim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libanaheim_common.a"
)

# Empty dependencies file for anaheim_common.
# This may be replaced when dependencies are built.

# Empty dependencies file for anaheim_poly.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libanaheim_poly.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/anaheim_poly.dir/polynomial.cc.o"
  "CMakeFiles/anaheim_poly.dir/polynomial.cc.o.d"
  "libanaheim_poly.a"
  "libanaheim_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libanaheim_dram.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/anaheim_dram.dir/bank.cc.o"
  "CMakeFiles/anaheim_dram.dir/bank.cc.o.d"
  "CMakeFiles/anaheim_dram.dir/controller.cc.o"
  "CMakeFiles/anaheim_dram.dir/controller.cc.o.d"
  "CMakeFiles/anaheim_dram.dir/timing.cc.o"
  "CMakeFiles/anaheim_dram.dir/timing.cc.o.d"
  "libanaheim_dram.a"
  "libanaheim_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

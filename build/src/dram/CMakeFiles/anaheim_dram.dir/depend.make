# Empty dependencies file for anaheim_dram.
# This may be replaced when dependencies are built.

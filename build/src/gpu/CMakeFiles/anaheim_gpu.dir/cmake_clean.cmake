file(REMOVE_RECURSE
  "CMakeFiles/anaheim_gpu.dir/gpumodel.cc.o"
  "CMakeFiles/anaheim_gpu.dir/gpumodel.cc.o.d"
  "libanaheim_gpu.a"
  "libanaheim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libanaheim_gpu.a"
)

# Empty dependencies file for anaheim_gpu.
# This may be replaced when dependencies are built.

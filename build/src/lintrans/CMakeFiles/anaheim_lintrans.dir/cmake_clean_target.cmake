file(REMOVE_RECURSE
  "libanaheim_lintrans.a"
)

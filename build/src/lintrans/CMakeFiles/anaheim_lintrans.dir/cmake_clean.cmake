file(REMOVE_RECURSE
  "CMakeFiles/anaheim_lintrans.dir/diagmatrix.cc.o"
  "CMakeFiles/anaheim_lintrans.dir/diagmatrix.cc.o.d"
  "CMakeFiles/anaheim_lintrans.dir/lintrans.cc.o"
  "CMakeFiles/anaheim_lintrans.dir/lintrans.cc.o.d"
  "libanaheim_lintrans.a"
  "libanaheim_lintrans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_lintrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for anaheim_lintrans.
# This may be replaced when dependencies are built.

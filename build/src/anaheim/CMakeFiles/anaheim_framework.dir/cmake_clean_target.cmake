file(REMOVE_RECURSE
  "libanaheim_framework.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/anaheim_framework.dir/framework.cc.o"
  "CMakeFiles/anaheim_framework.dir/framework.cc.o.d"
  "CMakeFiles/anaheim_framework.dir/planner.cc.o"
  "CMakeFiles/anaheim_framework.dir/planner.cc.o.d"
  "CMakeFiles/anaheim_framework.dir/workloads.cc.o"
  "CMakeFiles/anaheim_framework.dir/workloads.cc.o.d"
  "libanaheim_framework.a"
  "libanaheim_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

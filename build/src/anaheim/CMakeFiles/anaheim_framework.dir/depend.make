# Empty dependencies file for anaheim_framework.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libanaheim_boot.a"
)

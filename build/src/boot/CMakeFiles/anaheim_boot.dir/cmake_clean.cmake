file(REMOVE_RECURSE
  "CMakeFiles/anaheim_boot.dir/bootstrapper.cc.o"
  "CMakeFiles/anaheim_boot.dir/bootstrapper.cc.o.d"
  "CMakeFiles/anaheim_boot.dir/chebyshev.cc.o"
  "CMakeFiles/anaheim_boot.dir/chebyshev.cc.o.d"
  "CMakeFiles/anaheim_boot.dir/dft.cc.o"
  "CMakeFiles/anaheim_boot.dir/dft.cc.o.d"
  "CMakeFiles/anaheim_boot.dir/polyeval.cc.o"
  "CMakeFiles/anaheim_boot.dir/polyeval.cc.o.d"
  "libanaheim_boot.a"
  "libanaheim_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

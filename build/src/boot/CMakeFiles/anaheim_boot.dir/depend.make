# Empty dependencies file for anaheim_boot.
# This may be replaced when dependencies are built.

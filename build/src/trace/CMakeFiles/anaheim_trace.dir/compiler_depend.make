# Empty compiler generated dependencies file for anaheim_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libanaheim_trace.a"
)

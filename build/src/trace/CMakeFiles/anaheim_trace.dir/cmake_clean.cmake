file(REMOVE_RECURSE
  "CMakeFiles/anaheim_trace.dir/builders.cc.o"
  "CMakeFiles/anaheim_trace.dir/builders.cc.o.d"
  "CMakeFiles/anaheim_trace.dir/counting.cc.o"
  "CMakeFiles/anaheim_trace.dir/counting.cc.o.d"
  "CMakeFiles/anaheim_trace.dir/kernel.cc.o"
  "CMakeFiles/anaheim_trace.dir/kernel.cc.o.d"
  "CMakeFiles/anaheim_trace.dir/validate.cc.o"
  "CMakeFiles/anaheim_trace.dir/validate.cc.o.d"
  "libanaheim_trace.a"
  "libanaheim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/builders.cc" "src/trace/CMakeFiles/anaheim_trace.dir/builders.cc.o" "gcc" "src/trace/CMakeFiles/anaheim_trace.dir/builders.cc.o.d"
  "/root/repo/src/trace/counting.cc" "src/trace/CMakeFiles/anaheim_trace.dir/counting.cc.o" "gcc" "src/trace/CMakeFiles/anaheim_trace.dir/counting.cc.o.d"
  "/root/repo/src/trace/kernel.cc" "src/trace/CMakeFiles/anaheim_trace.dir/kernel.cc.o" "gcc" "src/trace/CMakeFiles/anaheim_trace.dir/kernel.cc.o.d"
  "/root/repo/src/trace/validate.cc" "src/trace/CMakeFiles/anaheim_trace.dir/validate.cc.o" "gcc" "src/trace/CMakeFiles/anaheim_trace.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/anaheim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rns/basis.cc" "src/rns/CMakeFiles/anaheim_rns.dir/basis.cc.o" "gcc" "src/rns/CMakeFiles/anaheim_rns.dir/basis.cc.o.d"
  "/root/repo/src/rns/bconv.cc" "src/rns/CMakeFiles/anaheim_rns.dir/bconv.cc.o" "gcc" "src/rns/CMakeFiles/anaheim_rns.dir/bconv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/anaheim_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/anaheim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for anaheim_rns.
# This may be replaced when dependencies are built.

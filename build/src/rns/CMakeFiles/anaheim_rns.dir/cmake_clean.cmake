file(REMOVE_RECURSE
  "CMakeFiles/anaheim_rns.dir/basis.cc.o"
  "CMakeFiles/anaheim_rns.dir/basis.cc.o.d"
  "CMakeFiles/anaheim_rns.dir/bconv.cc.o"
  "CMakeFiles/anaheim_rns.dir/bconv.cc.o.d"
  "libanaheim_rns.a"
  "libanaheim_rns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_rns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

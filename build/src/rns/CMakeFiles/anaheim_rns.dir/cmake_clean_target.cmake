file(REMOVE_RECURSE
  "libanaheim_rns.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckks/context.cc" "src/ckks/CMakeFiles/anaheim_ckks.dir/context.cc.o" "gcc" "src/ckks/CMakeFiles/anaheim_ckks.dir/context.cc.o.d"
  "/root/repo/src/ckks/encoder.cc" "src/ckks/CMakeFiles/anaheim_ckks.dir/encoder.cc.o" "gcc" "src/ckks/CMakeFiles/anaheim_ckks.dir/encoder.cc.o.d"
  "/root/repo/src/ckks/encryptor.cc" "src/ckks/CMakeFiles/anaheim_ckks.dir/encryptor.cc.o" "gcc" "src/ckks/CMakeFiles/anaheim_ckks.dir/encryptor.cc.o.d"
  "/root/repo/src/ckks/evaluator.cc" "src/ckks/CMakeFiles/anaheim_ckks.dir/evaluator.cc.o" "gcc" "src/ckks/CMakeFiles/anaheim_ckks.dir/evaluator.cc.o.d"
  "/root/repo/src/ckks/keys.cc" "src/ckks/CMakeFiles/anaheim_ckks.dir/keys.cc.o" "gcc" "src/ckks/CMakeFiles/anaheim_ckks.dir/keys.cc.o.d"
  "/root/repo/src/ckks/keyswitch.cc" "src/ckks/CMakeFiles/anaheim_ckks.dir/keyswitch.cc.o" "gcc" "src/ckks/CMakeFiles/anaheim_ckks.dir/keyswitch.cc.o.d"
  "/root/repo/src/ckks/params.cc" "src/ckks/CMakeFiles/anaheim_ckks.dir/params.cc.o" "gcc" "src/ckks/CMakeFiles/anaheim_ckks.dir/params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poly/CMakeFiles/anaheim_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/anaheim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/anaheim_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/anaheim_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for anaheim_ckks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/anaheim_ckks.dir/context.cc.o"
  "CMakeFiles/anaheim_ckks.dir/context.cc.o.d"
  "CMakeFiles/anaheim_ckks.dir/encoder.cc.o"
  "CMakeFiles/anaheim_ckks.dir/encoder.cc.o.d"
  "CMakeFiles/anaheim_ckks.dir/encryptor.cc.o"
  "CMakeFiles/anaheim_ckks.dir/encryptor.cc.o.d"
  "CMakeFiles/anaheim_ckks.dir/evaluator.cc.o"
  "CMakeFiles/anaheim_ckks.dir/evaluator.cc.o.d"
  "CMakeFiles/anaheim_ckks.dir/keys.cc.o"
  "CMakeFiles/anaheim_ckks.dir/keys.cc.o.d"
  "CMakeFiles/anaheim_ckks.dir/keyswitch.cc.o"
  "CMakeFiles/anaheim_ckks.dir/keyswitch.cc.o.d"
  "CMakeFiles/anaheim_ckks.dir/params.cc.o"
  "CMakeFiles/anaheim_ckks.dir/params.cc.o.d"
  "libanaheim_ckks.a"
  "libanaheim_ckks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libanaheim_ckks.a"
)

file(REMOVE_RECURSE
  "libanaheim_pim.a"
)

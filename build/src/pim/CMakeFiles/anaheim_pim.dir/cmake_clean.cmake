file(REMOVE_RECURSE
  "CMakeFiles/anaheim_pim.dir/functional.cc.o"
  "CMakeFiles/anaheim_pim.dir/functional.cc.o.d"
  "CMakeFiles/anaheim_pim.dir/isa.cc.o"
  "CMakeFiles/anaheim_pim.dir/isa.cc.o.d"
  "CMakeFiles/anaheim_pim.dir/kernelmodel.cc.o"
  "CMakeFiles/anaheim_pim.dir/kernelmodel.cc.o.d"
  "CMakeFiles/anaheim_pim.dir/layout.cc.o"
  "CMakeFiles/anaheim_pim.dir/layout.cc.o.d"
  "libanaheim_pim.a"
  "libanaheim_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anaheim_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

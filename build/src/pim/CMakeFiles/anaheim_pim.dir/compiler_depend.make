# Empty compiler generated dependencies file for anaheim_pim.
# This may be replaced when dependencies are built.

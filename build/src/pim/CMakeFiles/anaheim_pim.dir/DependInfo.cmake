
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pim/functional.cc" "src/pim/CMakeFiles/anaheim_pim.dir/functional.cc.o" "gcc" "src/pim/CMakeFiles/anaheim_pim.dir/functional.cc.o.d"
  "/root/repo/src/pim/isa.cc" "src/pim/CMakeFiles/anaheim_pim.dir/isa.cc.o" "gcc" "src/pim/CMakeFiles/anaheim_pim.dir/isa.cc.o.d"
  "/root/repo/src/pim/kernelmodel.cc" "src/pim/CMakeFiles/anaheim_pim.dir/kernelmodel.cc.o" "gcc" "src/pim/CMakeFiles/anaheim_pim.dir/kernelmodel.cc.o.d"
  "/root/repo/src/pim/layout.cc" "src/pim/CMakeFiles/anaheim_pim.dir/layout.cc.o" "gcc" "src/pim/CMakeFiles/anaheim_pim.dir/layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/anaheim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/anaheim_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/anaheim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_rns[1]_include.cmake")
include("/root/repo/build/tests/test_poly[1]_include.cmake")
include("/root/repo/build/tests/test_ckks[1]_include.cmake")
include("/root/repo/build/tests/test_lintrans[1]_include.cmake")
include("/root/repo/build/tests/test_boot[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_pim[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")

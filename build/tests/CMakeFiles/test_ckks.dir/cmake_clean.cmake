file(REMOVE_RECURSE
  "CMakeFiles/test_ckks.dir/ckks/edge_test.cc.o"
  "CMakeFiles/test_ckks.dir/ckks/edge_test.cc.o.d"
  "CMakeFiles/test_ckks.dir/ckks/encoder_test.cc.o"
  "CMakeFiles/test_ckks.dir/ckks/encoder_test.cc.o.d"
  "CMakeFiles/test_ckks.dir/ckks/evaluator_test.cc.o"
  "CMakeFiles/test_ckks.dir/ckks/evaluator_test.cc.o.d"
  "CMakeFiles/test_ckks.dir/ckks/params_test.cc.o"
  "CMakeFiles/test_ckks.dir/ckks/params_test.cc.o.d"
  "test_ckks"
  "test_ckks.pdb"
  "test_ckks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

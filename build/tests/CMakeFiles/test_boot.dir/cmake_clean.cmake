file(REMOVE_RECURSE
  "CMakeFiles/test_boot.dir/boot/bootstrapper_test.cc.o"
  "CMakeFiles/test_boot.dir/boot/bootstrapper_test.cc.o.d"
  "CMakeFiles/test_boot.dir/boot/chebyshev_test.cc.o"
  "CMakeFiles/test_boot.dir/boot/chebyshev_test.cc.o.d"
  "CMakeFiles/test_boot.dir/boot/dft_test.cc.o"
  "CMakeFiles/test_boot.dir/boot/dft_test.cc.o.d"
  "CMakeFiles/test_boot.dir/boot/polyeval_test.cc.o"
  "CMakeFiles/test_boot.dir/boot/polyeval_test.cc.o.d"
  "test_boot"
  "test_boot.pdb"
  "test_boot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_pim.dir/pim/pim_test.cc.o"
  "CMakeFiles/test_pim.dir/pim/pim_test.cc.o.d"
  "test_pim"
  "test_pim.pdb"
  "test_pim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

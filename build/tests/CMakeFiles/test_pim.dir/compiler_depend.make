# Empty compiler generated dependencies file for test_pim.
# This may be replaced when dependencies are built.

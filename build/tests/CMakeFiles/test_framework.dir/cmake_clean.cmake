file(REMOVE_RECURSE
  "CMakeFiles/test_framework.dir/anaheim/framework_test.cc.o"
  "CMakeFiles/test_framework.dir/anaheim/framework_test.cc.o.d"
  "CMakeFiles/test_framework.dir/anaheim/planner_test.cc.o"
  "CMakeFiles/test_framework.dir/anaheim/planner_test.cc.o.d"
  "test_framework"
  "test_framework.pdb"
  "test_framework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_math.dir/math/modarith_test.cc.o"
  "CMakeFiles/test_math.dir/math/modarith_test.cc.o.d"
  "CMakeFiles/test_math.dir/math/montgomery_test.cc.o"
  "CMakeFiles/test_math.dir/math/montgomery_test.cc.o.d"
  "CMakeFiles/test_math.dir/math/ntt_test.cc.o"
  "CMakeFiles/test_math.dir/math/ntt_test.cc.o.d"
  "CMakeFiles/test_math.dir/math/primes_test.cc.o"
  "CMakeFiles/test_math.dir/math/primes_test.cc.o.d"
  "test_math"
  "test_math.pdb"
  "test_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

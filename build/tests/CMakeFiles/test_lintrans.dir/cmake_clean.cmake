file(REMOVE_RECURSE
  "CMakeFiles/test_lintrans.dir/lintrans/lintrans_test.cc.o"
  "CMakeFiles/test_lintrans.dir/lintrans/lintrans_test.cc.o.d"
  "CMakeFiles/test_lintrans.dir/lintrans/reorder_test.cc.o"
  "CMakeFiles/test_lintrans.dir/lintrans/reorder_test.cc.o.d"
  "test_lintrans"
  "test_lintrans.pdb"
  "test_lintrans[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lintrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_lintrans.
# This may be replaced when dependencies are built.

#!/usr/bin/env python3
"""Cross-run perf-regression gate over two self-describing bench JSONs.

Compares a current bench --json document against a committed baseline
(e.g. BENCH_serving.json) metric by metric, with a per-metric
direction and noise tolerance:

  - higher-is-better metrics (throughput, goodput, speedups,
    transforms/s, availability, goodput floor) regress when current
    falls more than the tolerance below baseline;
  - lower-is-better metrics (latency percentiles/means, ns-per-
    butterfly costs) regress when current rises more than the
    tolerance above it;
  - everything else (counts, seeds, config echoes, wall-clock
    total_ms — the only machine-dependent value in an otherwise
    simulated document) is informational only.

Rows are matched by index and must agree in count; the two documents
must come from the same bench. Improvements and informational drift
are reported but never gate. The default tolerance is 5% — the
simulated metrics are deterministic, so the budget only absorbs
intentional model recalibrations, not machine noise.

Usage:
    perf_diff.py BASELINE.json CURRENT.json [--tolerance 0.05]
    perf_diff.py --self-test

Exits 0 when nothing regressed, 1 with one message per regression (or
on schema mismatch), 2 on usage errors.
"""

import argparse
import copy
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import load_doc

# First matching pattern wins. Direction "up" = higher is better.
METRIC_POLICY = (
    (r"(^|_)(throughput|goodput)_rps$", "up"),
    (r"speedup", "up"),
    (r"transforms_per_sec$", "up"),
    (r"^availability$", "up"),
    (r"^goodput_floor_ratio$", "up"),
    (r"^(p\d+|mean)_ms$", "down"),
    (r"_ns_per_butterfly$", "down"),
    (r"^preemption_overhead_ns$", "down"),
)

DEFAULT_TOLERANCE = 0.05


def direction_of(key):
    for pattern, direction in METRIC_POLICY:
        if re.search(pattern, key):
            return direction
    return None


def compare_value(key, base, cur, tolerance, where, regressions, infos):
    direction = direction_of(key)
    if direction is None:
        return
    if not isinstance(base, (int, float)) or isinstance(base, bool):
        return
    if not isinstance(cur, (int, float)) or isinstance(cur, bool):
        regressions.append(f"{where}: '{key}' is no longer numeric")
        return
    if base == 0:
        return  # no meaningful relative delta
    rel = (cur - base) / abs(base)
    regressed = (rel < -tolerance if direction == "up"
                 else rel > tolerance)
    if regressed:
        regressions.append(
            f"{where}: {key} {base:.6g} -> {cur:.6g} ({rel:+.1%}), "
            f"{'fell' if direction == 'up' else 'rose'} past the "
            f"{tolerance:.0%} budget")
    elif abs(rel) > tolerance:
        infos.append(f"{where}: {key} improved {base:.6g} -> "
                     f"{cur:.6g} ({rel:+.1%})")


def diff(baseline, current, tolerance):
    """Returns (regressions, infos): gating and informational lines."""
    regressions = []
    infos = []
    if baseline.get("bench") != current.get("bench"):
        regressions.append(
            f"bench mismatch: baseline '{baseline.get('bench')}' vs "
            f"current '{current.get('bench')}'")
        return regressions, infos

    for key, base in baseline.items():
        if key == "rows":
            continue
        compare_value(key, base, current.get(key), tolerance,
                      "top-level", regressions, infos)

    base_rows = baseline.get("rows", [])
    cur_rows = current.get("rows", [])
    if len(base_rows) != len(cur_rows):
        regressions.append(f"row count changed: {len(base_rows)} -> "
                           f"{len(cur_rows)}")
        return regressions, infos
    for i, (brow, crow) in enumerate(zip(base_rows, cur_rows)):
        for key, base in brow.items():
            compare_value(key, base, crow.get(key), tolerance,
                          f"rows[{i}]", regressions, infos)
    return regressions, infos


def self_test():
    """Build a synthetic baseline and a regressed copy; the diff must
    accept the identity pair and reject the regressed one."""
    baseline = {
        "bench": "serving_smoke",
        "total_ms": 1000.0,
        "peak_speedup_vs_serial": 2.0,
        "rows": [
            {"offered_rps": 100.0, "throughput_rps": 90.0,
             "p99_ms": 12.0, "completed": 32},
            {"offered_rps": 400.0, "throughput_rps": 300.0,
             "p99_ms": 40.0, "completed": 30},
        ],
    }
    same, _ = diff(baseline, copy.deepcopy(baseline), DEFAULT_TOLERANCE)
    assert not same, f"identical docs flagged: {same}"

    slower = copy.deepcopy(baseline)
    slower["rows"][1]["throughput_rps"] = 200.0  # -33% throughput
    slower["rows"][0]["p99_ms"] = 24.0           # 2x tail latency
    slower["total_ms"] = 9000.0                  # wall clock: ignored
    slower["rows"][1]["completed"] = 10          # count: ignored
    regressions, _ = diff(baseline, slower, DEFAULT_TOLERANCE)
    assert len(regressions) == 2, f"expected 2 regressions: {regressions}"
    assert any("throughput_rps" in r for r in regressions), regressions
    assert any("p99_ms" in r for r in regressions), regressions

    mismatched = copy.deepcopy(baseline)
    mismatched["rows"].pop()
    regressions, _ = diff(baseline, mismatched, DEFAULT_TOLERANCE)
    assert regressions, "dropped row not flagged"

    print("perf_diff: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline bench JSON")
    parser.add_argument("current", nargs="?",
                        help="freshly produced bench JSON")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="relative regression budget "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in synthetic check and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.print_usage(sys.stderr)
        return 2

    baseline = load_doc(args.baseline, "perf_diff")
    current = load_doc(args.current, "perf_diff")
    if baseline is None or current is None:
        return 1

    regressions, infos = diff(baseline, current, args.tolerance)
    for line in infos:
        print(f"perf_diff: note: {line}")
    if regressions:
        for line in regressions:
            print(f"perf_diff: REGRESSION: {line}", file=sys.stderr)
        return 1
    print(f"perf_diff: OK: {args.current} vs {args.baseline} "
          f"(bench '{baseline['bench']}', {len(baseline.get('rows', []))}"
          f" rows, tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

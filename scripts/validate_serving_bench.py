#!/usr/bin/env python3
"""Schema check for bench_serving --json output.

The serving bench emits one row per offered-load point so the
throughput-vs-latency (p50/p99) curves stay machine-comparable across
PRs. CI runs this after the --smoke sweep to catch schema drift and
semantic nonsense: a utilization outside [0, 1], p99 below p50, rows
out of offered-load order, more completions than admissions, or a
saturated sweep whose cross-trace GPU<->PIM overlap no longer beats
the serial back-to-back baseline by the 1.5x the scheduler is built
to deliver.

Usage: validate_serving_bench.py [path]  (default: BENCH_serving.json)
Exits 0 when the document conforms, 1 with a message per violation.
"""

import json
import sys

MIN_TOP_LOAD_SPEEDUP = 1.5

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "streams": (int, float),
    "requests_per_stream": (int, float),
    "arrival_seed": (int, float),
    "serial_capacity_rps": (int, float),
    "peak_speedup_vs_serial": (int, float),
    "config.serve_arrival": str,
    "rows": list,
}

ROW_REQUIRED = {
    "offered_rps": (int, float),
    "throughput_rps": (int, float),
    "serial_throughput_rps": (int, float),
    "speedup_vs_serial": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "mean_ms": (int, float),
    "gpu_util": (int, float),
    "pim_util": (int, float),
    "batches": (int, float),
    "batched_ops": (int, float),
    "admitted": (int, float),
    "rejected": (int, float),
    "completed": (int, float),
}


def validate(doc):
    errors = []

    for key, want in TOP_LEVEL_REQUIRED.items():
        if key not in doc:
            errors.append(f"missing top-level key '{key}'")
        elif not isinstance(doc[key], want):
            errors.append(
                f"top-level '{key}' has type {type(doc[key]).__name__}")
    if errors:
        return errors

    if doc["bench"] not in ("serving", "serving_smoke"):
        errors.append(f"bench is '{doc['bench']}', want 'serving' or "
                      "'serving_smoke'")
    if doc["serial_capacity_rps"] <= 0:
        errors.append("serial_capacity_rps must be positive")
    if not doc["rows"]:
        errors.append("no load points")

    offered = []
    for i, row in enumerate(doc["rows"]):
        for key, want in ROW_REQUIRED.items():
            if key not in row:
                errors.append(f"row {i}: missing key '{key}'")
            elif not isinstance(row[key], want):
                errors.append(f"row {i}: '{key}' has type "
                              f"{type(row[key]).__name__}")
        if any(f"row {i}:" in e for e in errors):
            continue
        offered.append(row["offered_rps"])

        for key in ("gpu_util", "pim_util"):
            if not 0.0 <= row[key] <= 1.0:
                errors.append(f"row {i}: {key}={row[key]} outside [0,1]")
        for key in ("offered_rps", "throughput_rps",
                    "serial_throughput_rps", "p50_ms", "p99_ms"):
            if row[key] <= 0:
                errors.append(f"row {i}: {key} must be positive")
        if row["p99_ms"] < row["p50_ms"]:
            errors.append(f"row {i}: p99_ms={row['p99_ms']} below "
                          f"p50_ms={row['p50_ms']}")
        # Batched ops count the members of fused dispatches, which
        # always cover at least two streams.
        if row["batches"] > 0 and row["batched_ops"] < 2 * row["batches"]:
            errors.append(f"row {i}: {row['batches']} batches but only "
                          f"{row['batched_ops']} batched ops")
        if row["completed"] > row["admitted"]:
            errors.append(f"row {i}: completed {row['completed']} "
                          f"exceeds admitted {row['admitted']}")
        if row["rejected"] < 0:
            errors.append(f"row {i}: rejected is negative")

    if offered != sorted(offered):
        errors.append("rows not sorted by offered_rps")
    if len(set(offered)) != len(offered):
        errors.append("duplicate offered_rps rows")

    # The headline claim: at the saturating top load point, cross-trace
    # overlap + batching must beat the serial baseline by >= 1.5x.
    if doc["rows"] and not any(f"row {len(doc['rows'])-1}:" in e
                               for e in errors):
        top = doc["rows"][-1]
        if top["speedup_vs_serial"] < MIN_TOP_LOAD_SPEEDUP:
            errors.append(
                f"top-load speedup_vs_serial {top['speedup_vs_serial']} "
                f"below the {MIN_TOP_LOAD_SPEEDUP}x scheduler target")

    return errors


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_serving.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_serving_bench: cannot read {path}: {e}",
              file=sys.stderr)
        return 1

    errors = validate(doc)
    if errors:
        for err in errors:
            print(f"validate_serving_bench: {err}", file=sys.stderr)
        return 1
    rows = doc["rows"]
    print(f"validate_serving_bench: OK: {path} ({len(rows)} load "
          f"points, peak speedup {doc['peak_speedup_vs_serial']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Schema check for bench_serving --json output.

The serving bench emits one row per offered-load point so the
throughput-vs-latency (p50/p99) curves stay machine-comparable across
PRs. CI runs this after the --smoke sweep to catch schema drift and
semantic nonsense: a utilization outside [0, 1], p99 below p50, rows
out of offered-load order, more completions than admissions, or a
saturated sweep whose cross-trace GPU<->PIM overlap no longer beats
the serial back-to-back baseline by the 1.5x the scheduler is built
to deliver.

Usage: validate_serving_bench.py [path]  (default: BENCH_serving.json)
Exits 0 when the document conforms, 1 with a message per violation.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import NUMBER, check_bench_name, check_required, run

MIN_TOP_LOAD_SPEEDUP = 1.5

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "streams": NUMBER,
    "requests_per_stream": NUMBER,
    "arrival_seed": NUMBER,
    "serial_capacity_rps": NUMBER,
    "peak_speedup_vs_serial": NUMBER,
    "config.serve_arrival": str,
    "rows": list,
}

ROW_REQUIRED = {
    "offered_rps": NUMBER,
    "throughput_rps": NUMBER,
    "serial_throughput_rps": NUMBER,
    "speedup_vs_serial": NUMBER,
    "p50_ms": NUMBER,
    "p99_ms": NUMBER,
    "mean_ms": NUMBER,
    "gpu_util": NUMBER,
    "pim_util": NUMBER,
    "batches": NUMBER,
    "batched_ops": NUMBER,
    "admitted": NUMBER,
    "rejected": NUMBER,
    "completed": NUMBER,
}


def validate(doc):
    errors = []
    if not check_required(doc, TOP_LEVEL_REQUIRED, errors):
        return errors

    check_bench_name(doc, ("serving", "serving_smoke"), errors)
    if doc["serial_capacity_rps"] <= 0:
        errors.append("serial_capacity_rps must be positive")
    if not doc["rows"]:
        errors.append("no load points")

    offered = []
    last_row_clean = False
    for i, row in enumerate(doc["rows"]):
        last_row_clean = check_required(row, ROW_REQUIRED, errors,
                                        f"row {i}")
        if not last_row_clean:
            continue
        offered.append(row["offered_rps"])

        for key in ("gpu_util", "pim_util"):
            if not 0.0 <= row[key] <= 1.0:
                errors.append(f"row {i}: {key}={row[key]} outside [0,1]")
        for key in ("offered_rps", "throughput_rps",
                    "serial_throughput_rps", "p50_ms", "p99_ms"):
            if row[key] <= 0:
                errors.append(f"row {i}: {key} must be positive")
        if row["p99_ms"] < row["p50_ms"]:
            errors.append(f"row {i}: p99_ms={row['p99_ms']} below "
                          f"p50_ms={row['p50_ms']}")
        # Batched ops count the members of fused dispatches, which
        # always cover at least two streams.
        if row["batches"] > 0 and row["batched_ops"] < 2 * row["batches"]:
            errors.append(f"row {i}: {row['batches']} batches but only "
                          f"{row['batched_ops']} batched ops")
        if row["completed"] > row["admitted"]:
            errors.append(f"row {i}: completed {row['completed']} "
                          f"exceeds admitted {row['admitted']}")
        if row["rejected"] < 0:
            errors.append(f"row {i}: rejected is negative")

    if offered != sorted(offered):
        errors.append("rows not sorted by offered_rps")
    if len(set(offered)) != len(offered):
        errors.append("duplicate offered_rps rows")

    # The headline claim: at the saturating top load point, cross-trace
    # overlap + batching must beat the serial baseline by >= 1.5x.
    if doc["rows"] and last_row_clean:
        top = doc["rows"][-1]
        if top["speedup_vs_serial"] < MIN_TOP_LOAD_SPEEDUP:
            errors.append(
                f"top-load speedup_vs_serial {top['speedup_vs_serial']} "
                f"below the {MIN_TOP_LOAD_SPEEDUP}x scheduler target")

    return errors


def summary(doc):
    return (f"{len(doc['rows'])} load points, peak speedup "
            f"{doc['peak_speedup_vs_serial']:.2f}x")


if __name__ == "__main__":
    sys.exit(run("validate_serving_bench", "BENCH_serving.json",
                 validate, summary))

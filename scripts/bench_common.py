"""Shared plumbing for the bench-JSON validators (stdlib only).

Every validate_*_bench.py script follows the same shape: load a bench
--json document, type-check a dict of required top-level keys and a
dict of required per-row keys, run bench-specific semantic checks, and
exit 0/1 with one message per violation. This module holds the shared
half so the validators carry only their schema tables and semantics.

The bench documents are self-describing (bench name, schema_version,
git_sha, build_type, threads header from obs::exportHeader), which is
also what scripts/perf_diff.py keys on when comparing two of them.
"""

import json
import sys

NUMBER = (int, float)


def load_doc(path, tool):
    """Parse the JSON document at `path`.

    Returns the parsed dict, or None after printing a `tool`-prefixed
    message to stderr (unreadable file, bad JSON, non-object root).
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{tool}: cannot read {path}: {e}", file=sys.stderr)
        return None
    if not isinstance(doc, dict):
        print(f"{tool}: {path}: document is not a JSON object",
              file=sys.stderr)
        return None
    return doc


def check_required(obj, required, errors, where="top-level"):
    """Type-check `obj` against `required` ({key: type or type-tuple}).

    Appends one message per missing or mistyped key to `errors`.
    Returns True when every required key is present with the right
    type, so callers can skip semantic checks on a broken object.
    """
    clean = True
    for key, want in required.items():
        if key not in obj:
            errors.append(f"{where}: missing key '{key}'")
            clean = False
        elif not isinstance(obj[key], want):
            errors.append(f"{where}: '{key}' has type "
                          f"{type(obj[key]).__name__}")
            clean = False
    return clean


def check_bench_name(doc, allowed, errors):
    """Require doc['bench'] to be one of `allowed`."""
    if doc.get("bench") not in allowed:
        errors.append(f"bench is '{doc.get('bench')}', want one of "
                      f"{sorted(allowed)}")


def run(tool, default_path, validate, summary=None):
    """main() boilerplate shared by the validators.

    Loads the document named by argv[1] (or `default_path`), runs
    `validate(doc) -> [error, ...]`, prints every error with the tool
    prefix, and returns the process exit code. On success prints one
    OK line, appending `summary(doc)` when given.
    """
    path = sys.argv[1] if len(sys.argv) > 1 else default_path
    doc = load_doc(path, tool)
    if doc is None:
        return 1
    errors = validate(doc)
    if errors:
        for err in errors:
            print(f"{tool}: {path}: {err}", file=sys.stderr)
        return 1
    extra = f" ({summary(doc)})" if summary else ""
    print(f"{tool}: OK: {path}{extra}")
    return 0

#!/usr/bin/env python3
"""Schema check for bench_degradation --json output.

The degradation bench emits one row per permanent bank-failure rate so
the availability / throughput-vs-fault-rate curves stay
machine-comparable across PRs. CI runs this after the --smoke campaign
to catch schema drift (a renamed key silently breaks trend tooling)
and semantic nonsense: an availability outside [0, 1], a cell that
quarantined more banks than failed, a clean cell that migrated, a
PIM-offline cell with no capacity-floor fallbacks, or per-cause GPU
fallback counters that disagree with the escalation ladder.

Usage: validate_degradation_bench.py [path]  (default: BENCH_degradation.json)
Exits 0 when the document conforms, 1 with a message per violation.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import NUMBER, check_bench_name, check_required, run

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "trials": NUMBER,
    "repeats": NUMBER,
    "fault_seed": NUMBER,
    "config.health_enabled": str,
    "config.checkpoint_enabled": str,
    "config.checksum_enabled": str,
    "rows": list,
}

ROW_REQUIRED = {
    "permanent_bank_rate": NUMBER,
    "failed_banks": NUMBER,
    "quarantined_banks": NUMBER,
    "migrations": NUMBER,
    "rollbacks": NUMBER,
    "availability": NUMBER,
    "capacity_fraction": NUMBER,
    "throughput_vs_healthy": NUMBER,
    "pim_offline_rate": NUMBER,
    "gpu_fallbacks_retry_exhausted": NUMBER,
    "gpu_fallbacks_uncheckpointed": NUMBER,
    "gpu_fallbacks_capacity_floor": NUMBER,
}


def validate(doc):
    errors = []
    if not check_required(doc, TOP_LEVEL_REQUIRED, errors):
        return errors

    check_bench_name(doc, ("degradation", "degradation_smoke"), errors)
    # The campaign is meaningless with the escalation ladder off.
    for key in ("config.health_enabled", "config.checkpoint_enabled",
                "config.checksum_enabled"):
        if doc[key] != "true":
            errors.append(f"{key} is '{doc[key]}' — the campaign must "
                          "run with the full escalation ladder on")
    if not doc["rows"]:
        errors.append("no campaign rows")

    rates = []
    for i, row in enumerate(doc["rows"]):
        if not check_required(row, ROW_REQUIRED, errors, f"row {i}"):
            continue
        rates.append(row["permanent_bank_rate"])

        for key in ("availability", "capacity_fraction",
                    "pim_offline_rate"):
            if not 0.0 <= row[key] <= 1.0:
                errors.append(f"row {i}: {key}={row[key]} outside [0,1]")
        if row["throughput_vs_healthy"] <= 0:
            errors.append(f"row {i}: throughput_vs_healthy must be "
                          "positive")
        for key in ("failed_banks", "quarantined_banks", "migrations",
                    "rollbacks", "gpu_fallbacks_retry_exhausted",
                    "gpu_fallbacks_uncheckpointed",
                    "gpu_fallbacks_capacity_floor"):
            if row[key] < 0:
                errors.append(f"row {i}: {key} is negative")

        # Quarantine can only remove banks that actually failed, and a
        # quarantine implies at least one migration.
        if row["quarantined_banks"] > row["failed_banks"]:
            errors.append(f"row {i}: quarantined more banks "
                          f"({row['quarantined_banks']}) than failed "
                          f"({row['failed_banks']})")
        if row["quarantined_banks"] > 0 and row["migrations"] == 0:
            errors.append(f"row {i}: banks quarantined with zero "
                          "migrations")
        if row["permanent_bank_rate"] == 0:
            for key in ("failed_banks", "quarantined_banks",
                        "migrations", "gpu_fallbacks_capacity_floor"):
                if row[key] != 0:
                    errors.append(f"row {i}: clean cell has nonzero "
                                  f"{key}={row[key]}")
            if row["availability"] != 1:
                errors.append(f"row {i}: clean cell availability "
                              f"{row['availability']} != 1")
        # Offline trials redirect PIM segments to the GPU, so a fully
        # offline cell must report capacity-floor fallbacks.
        if (row["pim_offline_rate"] == 1
                and row["gpu_fallbacks_capacity_floor"] == 0):
            errors.append(f"row {i}: PIM offline in every trial but no "
                          "capacity-floor GPU fallbacks")

    if rates != sorted(rates):
        errors.append("rows not sorted by permanent_bank_rate")
    if len(set(rates)) != len(rates):
        errors.append("duplicate permanent_bank_rate rows")

    return errors


def summary(doc):
    worst = doc["rows"][-1]
    return (f"{len(doc['rows'])} rows, worst cell rate "
            f"{worst['permanent_bank_rate']} -> availability "
            f"{worst['availability']:.2f}, capacity "
            f"{worst['capacity_fraction']:.3f}")


if __name__ == "__main__":
    sys.exit(run("validate_degradation_bench", "BENCH_degradation.json",
                 validate, summary))

#!/usr/bin/env python3
"""Schema check for bench_degradation --json output.

The degradation bench emits one row per permanent bank-failure rate so
the availability / throughput-vs-fault-rate curves stay
machine-comparable across PRs. CI runs this after the --smoke campaign
to catch schema drift (a renamed key silently breaks trend tooling)
and semantic nonsense: an availability outside [0, 1], a cell that
quarantined more banks than failed, a clean cell that migrated, a
PIM-offline cell with no capacity-floor fallbacks, or per-cause GPU
fallback counters that disagree with the escalation ladder.

Usage: validate_degradation_bench.py [path]  (default: BENCH_degradation.json)
Exits 0 when the document conforms, 1 with a message per violation.
"""

import json
import sys

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "trials": (int, float),
    "repeats": (int, float),
    "fault_seed": (int, float),
    "config.health_enabled": str,
    "config.checkpoint_enabled": str,
    "config.checksum_enabled": str,
    "rows": list,
}

ROW_REQUIRED = {
    "permanent_bank_rate": (int, float),
    "failed_banks": (int, float),
    "quarantined_banks": (int, float),
    "migrations": (int, float),
    "rollbacks": (int, float),
    "availability": (int, float),
    "capacity_fraction": (int, float),
    "throughput_vs_healthy": (int, float),
    "pim_offline_rate": (int, float),
    "gpu_fallbacks_retry_exhausted": (int, float),
    "gpu_fallbacks_uncheckpointed": (int, float),
    "gpu_fallbacks_capacity_floor": (int, float),
}


def validate(doc):
    errors = []

    for key, want in TOP_LEVEL_REQUIRED.items():
        if key not in doc:
            errors.append(f"missing top-level key '{key}'")
        elif not isinstance(doc[key], want):
            errors.append(
                f"top-level '{key}' has type {type(doc[key]).__name__}")
    if errors:
        return errors

    if doc["bench"] not in ("degradation", "degradation_smoke"):
        errors.append(f"bench is '{doc['bench']}', want 'degradation' "
                      "or 'degradation_smoke'")
    # The campaign is meaningless with the escalation ladder off.
    for key in ("config.health_enabled", "config.checkpoint_enabled",
                "config.checksum_enabled"):
        if doc[key] != "true":
            errors.append(f"{key} is '{doc[key]}' — the campaign must "
                          "run with the full escalation ladder on")
    if not doc["rows"]:
        errors.append("no campaign rows")

    rates = []
    for i, row in enumerate(doc["rows"]):
        for key, want in ROW_REQUIRED.items():
            if key not in row:
                errors.append(f"row {i}: missing key '{key}'")
            elif not isinstance(row[key], want):
                errors.append(f"row {i}: '{key}' has type "
                              f"{type(row[key]).__name__}")
        if any(f"row {i}:" in e for e in errors):
            continue
        rates.append(row["permanent_bank_rate"])

        for key in ("availability", "capacity_fraction",
                    "pim_offline_rate"):
            if not 0.0 <= row[key] <= 1.0:
                errors.append(f"row {i}: {key}={row[key]} outside [0,1]")
        if row["throughput_vs_healthy"] <= 0:
            errors.append(f"row {i}: throughput_vs_healthy must be "
                          "positive")
        for key in ("failed_banks", "quarantined_banks", "migrations",
                    "rollbacks", "gpu_fallbacks_retry_exhausted",
                    "gpu_fallbacks_uncheckpointed",
                    "gpu_fallbacks_capacity_floor"):
            if row[key] < 0:
                errors.append(f"row {i}: {key} is negative")

        # Quarantine can only remove banks that actually failed, and a
        # quarantine implies at least one migration.
        if row["quarantined_banks"] > row["failed_banks"]:
            errors.append(f"row {i}: quarantined more banks "
                          f"({row['quarantined_banks']}) than failed "
                          f"({row['failed_banks']})")
        if row["quarantined_banks"] > 0 and row["migrations"] == 0:
            errors.append(f"row {i}: banks quarantined with zero "
                          "migrations")
        if row["permanent_bank_rate"] == 0:
            for key in ("failed_banks", "quarantined_banks",
                        "migrations", "gpu_fallbacks_capacity_floor"):
                if row[key] != 0:
                    errors.append(f"row {i}: clean cell has nonzero "
                                  f"{key}={row[key]}")
            if row["availability"] != 1:
                errors.append(f"row {i}: clean cell availability "
                              f"{row['availability']} != 1")
        # Offline trials redirect PIM segments to the GPU, so a fully
        # offline cell must report capacity-floor fallbacks.
        if (row["pim_offline_rate"] == 1
                and row["gpu_fallbacks_capacity_floor"] == 0):
            errors.append(f"row {i}: PIM offline in every trial but no "
                          "capacity-floor GPU fallbacks")

    if rates != sorted(rates):
        errors.append("rows not sorted by permanent_bank_rate")
    if len(set(rates)) != len(rates):
        errors.append("duplicate permanent_bank_rate rows")

    return errors


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_degradation.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_degradation_bench: cannot read {path}: {e}",
              file=sys.stderr)
        return 1

    errors = validate(doc)
    for e in errors:
        print(f"validate_degradation_bench: {path}: {e}",
              file=sys.stderr)
    if not errors:
        worst = doc["rows"][-1]
        print(f"validate_degradation_bench: {path}: OK "
              f"({len(doc['rows'])} rows, worst cell rate "
              f"{worst['permanent_bank_rate']} -> availability "
              f"{worst['availability']:.2f}, capacity "
              f"{worst['capacity_fraction']:.3f})")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

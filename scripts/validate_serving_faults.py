#!/usr/bin/env python3
"""Schema + acceptance check for bench_serving_faults --json output.

The chaos bench sweeps fault scenarios x offered load with the full
SLO stack (deadline classes, per-tenant rate limiting, priority
preemption, mid-serve degradation re-pricing). CI runs this after the
--smoke sweep to gate the three §16 acceptance criteria:

  1. goodput_floor_ratio >= 0.8 — goodput with BER + one quarantined
     bank stays within 20% of the healthy baseline at moderate load;
  2. preempt_identical == 1 — a preempted run's results (energy,
     traffic, fault counters, per-step durations) match the
     unpreempted schedule exactly;
  3. every row's rejected splits exactly into queue-full +
     rate-limited + deadline-shed, and the sweep exercises all three
     causes at least once.

Usage: validate_serving_faults.py [path]
       (default: BENCH_serving_faults.json)
Exits 0 when the document conforms, 1 with a message per violation.
"""

import json
import sys

MIN_GOODPUT_FLOOR = 0.8

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "streams": (int, float),
    "requests_per_stream": (int, float),
    "arrival_seed": (int, float),
    "serial_capacity_rps": (int, float),
    "goodput_floor_ratio": (int, float),
    "preempt_identical": (int, float),
    "preemptions_observed": (int, float),
    "causes_partition_ok": (int, float),
    "sweep_rejected_queue_full": (int, float),
    "sweep_rejected_rate_limited": (int, float),
    "sweep_shed_deadline": (int, float),
    "config.serve_arrival": str,
    "rows": list,
}

ROW_REQUIRED = {
    "scenario": str,
    "ber": (int, float),
    "permanent_banks": (int, float),
    "load_multiplier": (int, float),
    "offered_rps": (int, float),
    "availability": (int, float),
    "goodput_rps": (int, float),
    "throughput_rps": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "deadline_met": (int, float),
    "admitted": (int, float),
    "completed": (int, float),
    "rejected": (int, float),
    "rejected_queue_full": (int, float),
    "rejected_rate_limited": (int, float),
    "shed_deadline": (int, float),
    "preemptions": (int, float),
    "preemption_overhead_ns": (int, float),
    "reprice_events": (int, float),
    "tenant_retries": (int, float),
    "tenant_gpu_fallbacks": (int, float),
}

SCENARIOS = ("healthy", "transient", "degraded")


def validate(doc):
    errors = []

    for key, want in TOP_LEVEL_REQUIRED.items():
        if key not in doc:
            errors.append(f"missing top-level key '{key}'")
        elif not isinstance(doc[key], want):
            errors.append(
                f"top-level '{key}' has type {type(doc[key]).__name__}")
    if errors:
        return errors

    if doc["bench"] not in ("serving_faults", "serving_faults_smoke"):
        errors.append(f"bench is '{doc['bench']}', want 'serving_faults'"
                      " or 'serving_faults_smoke'")
    if doc["serial_capacity_rps"] <= 0:
        errors.append("serial_capacity_rps must be positive")
    if not doc["rows"]:
        errors.append("no sweep rows")

    total = doc["streams"] * doc["requests_per_stream"]
    seen_scenarios = set()
    for i, row in enumerate(doc["rows"]):
        for key, want in ROW_REQUIRED.items():
            if key not in row:
                errors.append(f"row {i}: missing key '{key}'")
            elif not isinstance(row[key], want):
                errors.append(f"row {i}: '{key}' has type "
                              f"{type(row[key]).__name__}")
        if any(f"row {i}:" in e for e in errors):
            continue
        seen_scenarios.add(row["scenario"])

        if row["scenario"] not in SCENARIOS:
            errors.append(f"row {i}: unknown scenario "
                          f"'{row['scenario']}'")
        if not 0.0 <= row["availability"] <= 1.0:
            errors.append(f"row {i}: availability "
                          f"{row['availability']} outside [0,1]")
        for key in ("offered_rps", "p50_ms", "p99_ms"):
            if row[key] <= 0:
                errors.append(f"row {i}: {key} must be positive")
        if row["p99_ms"] < row["p50_ms"]:
            errors.append(f"row {i}: p99_ms={row['p99_ms']} below "
                          f"p50_ms={row['p50_ms']}")
        # Acceptance criterion 3: the causes partition `rejected`.
        split = (row["rejected_queue_full"] +
                 row["rejected_rate_limited"] + row["shed_deadline"])
        if split != row["rejected"]:
            errors.append(
                f"row {i}: rejection causes sum to {split}, "
                f"rejected is {row['rejected']}")
        # Conservation: every request resolves exactly once.
        if row["admitted"] + row["rejected"] != total:
            errors.append(
                f"row {i}: admitted+rejected "
                f"{row['admitted'] + row['rejected']} != offered {total}")
        if row["completed"] != row["admitted"]:
            errors.append(f"row {i}: completed {row['completed']} != "
                          f"admitted {row['admitted']}")
        if row["deadline_met"] > row["completed"]:
            errors.append(f"row {i}: deadline_met exceeds completed")
        # The degraded scenario must actually re-price mid-serve.
        if row["scenario"] == "degraded" and row["reprice_events"] < 1:
            errors.append(f"row {i}: degraded scenario never re-priced")

    if seen_scenarios != set(SCENARIOS):
        errors.append(f"sweep covers {sorted(seen_scenarios)}, want "
                      f"{sorted(SCENARIOS)}")
    if doc["causes_partition_ok"] != 1:
        errors.append("bench-side cause-partition check failed")
    # The sweep must exercise all three rejection paths somewhere.
    for key in ("sweep_rejected_queue_full",
                "sweep_rejected_rate_limited", "sweep_shed_deadline"):
        if doc[key] < 1:
            errors.append(f"{key} is {doc[key]}; the sweep never "
                          "exercised this rejection cause")

    # Acceptance criterion 2: preemption never perturbs any tenant's
    # computation.
    if doc["preemptions_observed"] < 1:
        errors.append("identity experiment observed no preemptions")
    if doc["preempt_identical"] != 1:
        errors.append("preempted results diverged from the "
                      "unpreempted schedule")

    # Acceptance criterion 1: degraded goodput floor at moderate load.
    if doc["goodput_floor_ratio"] < MIN_GOODPUT_FLOOR:
        errors.append(
            f"goodput_floor_ratio {doc['goodput_floor_ratio']} below "
            f"the {MIN_GOODPUT_FLOOR} resilience target")

    return errors


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_serving_faults.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_serving_faults: cannot read {path}: {e}",
              file=sys.stderr)
        return 1

    errors = validate(doc)
    if errors:
        for err in errors:
            print(f"validate_serving_faults: {err}", file=sys.stderr)
        return 1
    print(f"validate_serving_faults: OK: {path} "
          f"({len(doc['rows'])} rows, goodput floor "
          f"{doc['goodput_floor_ratio']:.3f}, "
          f"{int(doc['preemptions_observed'])} preemptions identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

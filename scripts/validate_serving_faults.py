#!/usr/bin/env python3
"""Schema + acceptance check for bench_serving_faults --json output.

The chaos bench sweeps fault scenarios x offered load with the full
SLO stack (deadline classes, per-tenant rate limiting, priority
preemption, mid-serve degradation re-pricing). CI runs this after the
--smoke sweep to gate the §16/§17 acceptance criteria:

  1. goodput_floor_ratio >= 0.8 — goodput with BER + one quarantined
     bank stays within 20% of the healthy baseline at moderate load;
  2. preempt_identical == 1 — a preempted run's results (energy,
     traffic, fault counters, per-step durations) match the
     unpreempted schedule exactly;
  3. every row's rejected splits exactly into queue-full +
     rate-limited + deadline-shed, and the sweep exercises all three
     causes at least once;
  4. sweep_alerts_fired >= 1 — the SLO burn-rate monitor sees the
     degraded sweep burn its deadline-met error budget and fires.

Usage: validate_serving_faults.py [path]
       (default: BENCH_serving_faults.json)
Exits 0 when the document conforms, 1 with a message per violation.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import NUMBER, check_bench_name, check_required, run

MIN_GOODPUT_FLOOR = 0.8

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "streams": NUMBER,
    "requests_per_stream": NUMBER,
    "arrival_seed": NUMBER,
    "serial_capacity_rps": NUMBER,
    "goodput_floor_ratio": NUMBER,
    "preempt_identical": NUMBER,
    "preemptions_observed": NUMBER,
    "causes_partition_ok": NUMBER,
    "sweep_rejected_queue_full": NUMBER,
    "sweep_rejected_rate_limited": NUMBER,
    "sweep_shed_deadline": NUMBER,
    "sweep_alerts_fired": NUMBER,
    "sweep_alert_ticks_firing": NUMBER,
    "config.serve_arrival": str,
    "rows": list,
}

ROW_REQUIRED = {
    "scenario": str,
    "ber": NUMBER,
    "permanent_banks": NUMBER,
    "load_multiplier": NUMBER,
    "offered_rps": NUMBER,
    "availability": NUMBER,
    "goodput_rps": NUMBER,
    "throughput_rps": NUMBER,
    "p50_ms": NUMBER,
    "p99_ms": NUMBER,
    "deadline_met": NUMBER,
    "admitted": NUMBER,
    "completed": NUMBER,
    "rejected": NUMBER,
    "rejected_queue_full": NUMBER,
    "rejected_rate_limited": NUMBER,
    "shed_deadline": NUMBER,
    "preemptions": NUMBER,
    "preemption_overhead_ns": NUMBER,
    "reprice_events": NUMBER,
    "alerts_fired": NUMBER,
    "alert_ticks_firing": NUMBER,
    "tenant_retries": NUMBER,
    "tenant_gpu_fallbacks": NUMBER,
}

SCENARIOS = ("healthy", "transient", "degraded")


def validate(doc):
    errors = []
    if not check_required(doc, TOP_LEVEL_REQUIRED, errors):
        return errors

    check_bench_name(doc, ("serving_faults", "serving_faults_smoke"),
                     errors)
    if doc["serial_capacity_rps"] <= 0:
        errors.append("serial_capacity_rps must be positive")
    if not doc["rows"]:
        errors.append("no sweep rows")

    total = doc["streams"] * doc["requests_per_stream"]
    seen_scenarios = set()
    for i, row in enumerate(doc["rows"]):
        if not check_required(row, ROW_REQUIRED, errors, f"row {i}"):
            continue
        seen_scenarios.add(row["scenario"])

        if row["scenario"] not in SCENARIOS:
            errors.append(f"row {i}: unknown scenario "
                          f"'{row['scenario']}'")
        if not 0.0 <= row["availability"] <= 1.0:
            errors.append(f"row {i}: availability "
                          f"{row['availability']} outside [0,1]")
        for key in ("offered_rps", "p50_ms", "p99_ms"):
            if row[key] <= 0:
                errors.append(f"row {i}: {key} must be positive")
        if row["p99_ms"] < row["p50_ms"]:
            errors.append(f"row {i}: p99_ms={row['p99_ms']} below "
                          f"p50_ms={row['p50_ms']}")
        # An alert needs at least one tick in the firing state.
        if row["alerts_fired"] > 0 and row["alert_ticks_firing"] < 1:
            errors.append(f"row {i}: alerts fired without any tick in "
                          "the firing state")
        # Acceptance criterion 3: the causes partition `rejected`.
        split = (row["rejected_queue_full"] +
                 row["rejected_rate_limited"] + row["shed_deadline"])
        if split != row["rejected"]:
            errors.append(
                f"row {i}: rejection causes sum to {split}, "
                f"rejected is {row['rejected']}")
        # Conservation: every request resolves exactly once.
        if row["admitted"] + row["rejected"] != total:
            errors.append(
                f"row {i}: admitted+rejected "
                f"{row['admitted'] + row['rejected']} != offered {total}")
        if row["completed"] != row["admitted"]:
            errors.append(f"row {i}: completed {row['completed']} != "
                          f"admitted {row['admitted']}")
        if row["deadline_met"] > row["completed"]:
            errors.append(f"row {i}: deadline_met exceeds completed")
        # The degraded scenario must actually re-price mid-serve.
        if row["scenario"] == "degraded" and row["reprice_events"] < 1:
            errors.append(f"row {i}: degraded scenario never re-priced")

    if seen_scenarios != set(SCENARIOS):
        errors.append(f"sweep covers {sorted(seen_scenarios)}, want "
                      f"{sorted(SCENARIOS)}")
    if doc["causes_partition_ok"] != 1:
        errors.append("bench-side cause-partition check failed")
    # The sweep must exercise all three rejection paths somewhere.
    for key in ("sweep_rejected_queue_full",
                "sweep_rejected_rate_limited", "sweep_shed_deadline"):
        if doc[key] < 1:
            errors.append(f"{key} is {doc[key]}; the sweep never "
                          "exercised this rejection cause")

    # Acceptance criterion 4: the burn-rate monitor must fire at least
    # once across the sweep (the overloaded and degraded cells burn
    # error budget far above the 1x threshold).
    if doc["sweep_alerts_fired"] < 1:
        errors.append("sweep_alerts_fired is 0; the SLO burn-rate "
                      "monitor never fired")

    # Acceptance criterion 2: preemption never perturbs any tenant's
    # computation.
    if doc["preemptions_observed"] < 1:
        errors.append("identity experiment observed no preemptions")
    if doc["preempt_identical"] != 1:
        errors.append("preempted results diverged from the "
                      "unpreempted schedule")

    # Acceptance criterion 1: degraded goodput floor at moderate load.
    if doc["goodput_floor_ratio"] < MIN_GOODPUT_FLOOR:
        errors.append(
            f"goodput_floor_ratio {doc['goodput_floor_ratio']} below "
            f"the {MIN_GOODPUT_FLOOR} resilience target")

    return errors


def summary(doc):
    return (f"{len(doc['rows'])} rows, goodput floor "
            f"{doc['goodput_floor_ratio']:.3f}, "
            f"{int(doc['preemptions_observed'])} preemptions identical, "
            f"{int(doc['sweep_alerts_fired'])} alerts fired")


if __name__ == "__main__":
    sys.exit(run("validate_serving_faults", "BENCH_serving_faults.json",
                 validate, summary))

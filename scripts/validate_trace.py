#!/usr/bin/env python3
"""Validate Anaheim observability exports (CI gate, stdlib only).

Usage:
    validate_trace.py --trace TRACE.json [--metrics METRICS.json]

Checks the Chrome trace-event document the benches emit via --trace:
  - parses as JSON with a "traceEvents" array
  - every event has string "ph"/"name" and numeric "pid"/"tid"
  - only "M" (metadata) and "X" (complete) phases appear
  - every "X" event has numeric ts/dur >= 0
  - at least one "X" event exists, and every "X" event's pid carries a
    process_name metadata record (so Perfetto shows named tracks)
  - the simulated run contributes both a GPU and a PIM lane
and, when given, the --metrics JSON dump:
  - carries the self-describing header (schema_version, git_sha,
    build_type, threads)
  - every entry has name/kind/value with a known kind
  - when a "timeseries" section is present (serving runs with a
    telemetry tick), every series has a name, a positive tick_ns, and
    points with numeric stats in start_ns order, non-negative counts,
    and p99 >= p50 (mirrors obs::validateMetricsJson)

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path, require_lanes=()):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing 'traceEvents' array")

    named_pids = set()
    lanes = set()
    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: event {i} is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str):
            fail(f"{path}: event {i} missing string 'ph'")
        if not isinstance(event.get("name"), str):
            fail(f"{path}: event {i} missing string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), (int, float)):
                fail(f"{path}: event {i} missing numeric '{key}'")
        if ph == "M":
            if event["name"] == "process_name":
                named_pids.add(event["pid"])
            continue
        if ph != "X":
            fail(f"{path}: event {i} has unexpected phase '{ph}'")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"{path}: event {i} has bad '{key}': {value!r}")
        complete += 1
        lane = event.get("args", {}).get("lane")
        if isinstance(lane, str):
            lanes.add(lane)

    if complete == 0:
        fail(f"{path}: no complete ('X') events")
    for i, event in enumerate(events):
        if event.get("ph") != "M" and event["pid"] not in named_pids:
            fail(f"{path}: event {i} references unnamed pid "
                 f"{event['pid']}")
    for lane in ("GPU", "PIM") + tuple(require_lanes):
        if lane not in lanes:
            fail(f"{path}: no '{lane}' lane in the simulated timeline "
                 f"(saw: {sorted(lanes)})")
    print(f"validate_trace: OK: {path} ({complete} events, "
          f"{len(named_pids)} processes, lanes: {sorted(lanes)})")


def validate_metrics(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    for key in ("schema_version", "git_sha", "build_type", "threads"):
        if key not in doc:
            fail(f"{path}: missing header field '{key}'")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail(f"{path}: missing non-empty 'metrics' array")
    for i, entry in enumerate(metrics):
        for key in ("name", "kind", "value"):
            if key not in entry:
                fail(f"{path}: metric {i} missing '{key}'")
        if entry["kind"] not in ("counter", "gauge", "histogram"):
            fail(f"{path}: metric {i} has unknown kind "
                 f"'{entry['kind']}'")

    series = doc.get("timeseries", [])
    if not isinstance(series, list):
        fail(f"{path}: 'timeseries' is not an array")
    points = 0
    for i, entry in enumerate(series):
        if not isinstance(entry.get("name"), str):
            fail(f"{path}: series {i} missing string 'name'")
        tick = entry.get("tick_ns")
        if not isinstance(tick, (int, float)) or tick <= 0:
            fail(f"{path}: series {i} missing positive 'tick_ns'")
        if not isinstance(entry.get("points"), list):
            fail(f"{path}: series {i} missing 'points' array")
        last_start = float("-inf")
        for j, point in enumerate(entry["points"]):
            where = f"{path}: series {i} point {j}"
            for key in ("start_ns", "count", "sum", "min", "max",
                        "p50", "p99", "rate_per_s"):
                if not isinstance(point.get(key), (int, float)):
                    fail(f"{where} missing numeric '{key}'")
            if point["start_ns"] <= last_start:
                fail(f"{where} not in start_ns order")
            last_start = point["start_ns"]
            if point["count"] < 0:
                fail(f"{where} has negative count")
            if point["count"] > 0 and point["p99"] < point["p50"]:
                fail(f"{where} has p99 below p50")
            points += 1

    suffix = (f", {len(series)} series / {points} window points"
              if series else "")
    print(f"validate_trace: OK: {path} ({len(metrics)} metrics{suffix})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", required=True,
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--metrics",
                        help="metrics JSON dump to validate (optional)")
    parser.add_argument("--require-lane", action="append", default=[],
                        help="additional lane that must appear in the "
                             "simulated timeline (e.g. Alert); may "
                             "repeat")
    args = parser.parse_args()
    validate_trace(args.trace, args.require_lane)
    if args.metrics:
        validate_metrics(args.metrics)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate Anaheim observability exports (CI gate, stdlib only).

Usage:
    validate_trace.py --trace TRACE.json [--metrics METRICS.json]

Checks the Chrome trace-event document the benches emit via --trace:
  - parses as JSON with a "traceEvents" array
  - every event has string "ph"/"name" and numeric "pid"/"tid"
  - only "M" (metadata) and "X" (complete) phases appear
  - every "X" event has numeric ts/dur >= 0
  - at least one "X" event exists, and every "X" event's pid carries a
    process_name metadata record (so Perfetto shows named tracks)
  - the simulated run contributes both a GPU and a PIM lane
and, when given, the --metrics JSON dump:
  - carries the self-describing header (schema_version, git_sha,
    build_type, threads)
  - every entry has name/kind/value with a known kind

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing 'traceEvents' array")

    named_pids = set()
    lanes = set()
    complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: event {i} is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str):
            fail(f"{path}: event {i} missing string 'ph'")
        if not isinstance(event.get("name"), str):
            fail(f"{path}: event {i} missing string 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), (int, float)):
                fail(f"{path}: event {i} missing numeric '{key}'")
        if ph == "M":
            if event["name"] == "process_name":
                named_pids.add(event["pid"])
            continue
        if ph != "X":
            fail(f"{path}: event {i} has unexpected phase '{ph}'")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                fail(f"{path}: event {i} has bad '{key}': {value!r}")
        complete += 1
        lane = event.get("args", {}).get("lane")
        if isinstance(lane, str):
            lanes.add(lane)

    if complete == 0:
        fail(f"{path}: no complete ('X') events")
    for i, event in enumerate(events):
        if event.get("ph") != "M" and event["pid"] not in named_pids:
            fail(f"{path}: event {i} references unnamed pid "
                 f"{event['pid']}")
    for lane in ("GPU", "PIM"):
        if lane not in lanes:
            fail(f"{path}: no '{lane}' lane in the simulated timeline "
                 f"(saw: {sorted(lanes)})")
    print(f"validate_trace: OK: {path} ({complete} events, "
          f"{len(named_pids)} processes, lanes: {sorted(lanes)})")


def validate_metrics(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    for key in ("schema_version", "git_sha", "build_type", "threads"):
        if key not in doc:
            fail(f"{path}: missing header field '{key}'")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail(f"{path}: missing non-empty 'metrics' array")
    for i, entry in enumerate(metrics):
        for key in ("name", "kind", "value"):
            if key not in entry:
                fail(f"{path}: metric {i} missing '{key}'")
        if entry["kind"] not in ("counter", "gauge", "histogram"):
            fail(f"{path}: metric {i} has unknown kind "
                 f"'{entry['kind']}'")
    print(f"validate_trace: OK: {path} ({len(metrics)} metrics)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", required=True,
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--metrics",
                        help="metrics JSON dump to validate (optional)")
    args = parser.parse_args()
    validate_trace(args.trace)
    if args.metrics:
        validate_metrics(args.metrics)


if __name__ == "__main__":
    main()

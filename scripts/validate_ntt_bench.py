#!/usr/bin/env python3
"""Schema check for bench_ntt_kernels --json output (BENCH_ntt.json).

The NTT bench emits one row per (logN, backend) so the perf trajectory
of every kernel backend stays machine-comparable across PRs. CI runs
this after the bench to catch schema drift (a renamed key silently
breaks trend tooling) and semantic nonsense (a "speedup" below zero, a
logN group with no reference row, a backend name the dispatcher does
not know).

Usage: validate_ntt_bench.py [path-to-json]   (default: BENCH_ntt.json)
Exits 0 when the document conforms, 1 with a message per violation.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import NUMBER, check_bench_name, check_required, run

KNOWN_BACKENDS = ("reference", "scalar", "avx2", "avx512")

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "prime_bits": NUMBER,
    "bitwise_identical": str,
    "fwd_speedup_at_2e16": NUMBER,
    "best_backend": str,
    "rows": list,
}

ROW_REQUIRED = {
    "logn": NUMBER,
    "n": NUMBER,
    "q": NUMBER,
    "backend": str,
    "fwd_ns_per_butterfly": NUMBER,
    "inv_ns_per_butterfly": NUMBER,
    "fwd_transforms_per_sec": NUMBER,
    "fwd_speedup": NUMBER,
}


def validate(doc):
    errors = []
    if not check_required(doc, TOP_LEVEL_REQUIRED, errors):
        return errors

    check_bench_name(doc, ("ntt_kernels",), errors)
    if doc["bitwise_identical"] != "yes":
        errors.append("bitwise_identical is not 'yes' — a kernel "
                      "backend diverged from the reference oracle")
    if doc["best_backend"] not in KNOWN_BACKENDS:
        errors.append(f"unknown best_backend '{doc['best_backend']}'")
    if doc["fwd_speedup_at_2e16"] < 1.0:
        errors.append("fwd_speedup_at_2e16 below 1.0: lazy kernels "
                      "slower than the division-based reference")

    groups = {}
    for i, row in enumerate(doc["rows"]):
        if not check_required(row, ROW_REQUIRED, errors, f"row {i}"):
            continue
        if row["backend"] not in KNOWN_BACKENDS:
            errors.append(f"row {i}: unknown backend "
                          f"'{row['backend']}'")
        if row["n"] != 2 ** int(row["logn"]):
            errors.append(f"row {i}: n={row['n']} != 2^{row['logn']}")
        for key in ("fwd_ns_per_butterfly", "inv_ns_per_butterfly",
                    "fwd_transforms_per_sec", "fwd_speedup"):
            if row[key] <= 0:
                errors.append(f"row {i}: {key} must be positive")
        groups.setdefault(int(row["logn"]), []).append(row["backend"])

    for logn, backends in sorted(groups.items()):
        if "reference" not in backends:
            errors.append(f"logN={logn}: no reference row")
        if not any(b != "reference" for b in backends):
            errors.append(f"logN={logn}: no lazy-backend row")
        dupes = {b for b in backends if backends.count(b) > 1}
        if dupes:
            errors.append(f"logN={logn}: duplicate backend rows "
                          f"{sorted(dupes)}")

    return errors


def summary(doc):
    return (f"{len(doc['rows'])} rows, best backend "
            f"{doc['best_backend']}, "
            f"{doc['fwd_speedup_at_2e16']:.2f}x at 2^16")


if __name__ == "__main__":
    sys.exit(run("validate_ntt_bench", "BENCH_ntt.json", validate,
                 summary))

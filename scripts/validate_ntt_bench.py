#!/usr/bin/env python3
"""Schema check for bench_ntt_kernels --json output (BENCH_ntt.json).

The NTT bench emits one row per (logN, backend) so the perf trajectory
of every kernel backend stays machine-comparable across PRs. CI runs
this after the bench to catch schema drift (a renamed key silently
breaks trend tooling) and semantic nonsense (a "speedup" below zero, a
logN group with no reference row, a backend name the dispatcher does
not know).

Usage: validate_ntt_bench.py [path-to-json]   (default: BENCH_ntt.json)
Exits 0 when the document conforms, 1 with a message per violation.
"""

import json
import sys

KNOWN_BACKENDS = ("reference", "scalar", "avx2", "avx512")

TOP_LEVEL_REQUIRED = {
    "bench": str,
    "prime_bits": (int, float),
    "bitwise_identical": str,
    "fwd_speedup_at_2e16": (int, float),
    "best_backend": str,
    "rows": list,
}

ROW_REQUIRED = {
    "logn": (int, float),
    "n": (int, float),
    "q": (int, float),
    "backend": str,
    "fwd_ns_per_butterfly": (int, float),
    "inv_ns_per_butterfly": (int, float),
    "fwd_transforms_per_sec": (int, float),
    "fwd_speedup": (int, float),
}


def validate(doc):
    errors = []

    for key, want in TOP_LEVEL_REQUIRED.items():
        if key not in doc:
            errors.append(f"missing top-level key '{key}'")
        elif not isinstance(doc[key], want):
            errors.append(
                f"top-level '{key}' has type {type(doc[key]).__name__}")
    if errors:
        return errors

    if doc["bench"] != "ntt_kernels":
        errors.append(f"bench is '{doc['bench']}', want 'ntt_kernels'")
    if doc["bitwise_identical"] != "yes":
        errors.append("bitwise_identical is not 'yes' — a kernel "
                      "backend diverged from the reference oracle")
    if doc["best_backend"] not in KNOWN_BACKENDS:
        errors.append(f"unknown best_backend '{doc['best_backend']}'")
    if doc["fwd_speedup_at_2e16"] < 1.0:
        errors.append("fwd_speedup_at_2e16 below 1.0: lazy kernels "
                      "slower than the division-based reference")

    groups = {}
    for i, row in enumerate(doc["rows"]):
        for key, want in ROW_REQUIRED.items():
            if key not in row:
                errors.append(f"row {i}: missing key '{key}'")
            elif not isinstance(row[key], want):
                errors.append(f"row {i}: '{key}' has type "
                              f"{type(row[key]).__name__}")
        if any(f"row {i}:" in e for e in errors):
            continue
        if row["backend"] not in KNOWN_BACKENDS:
            errors.append(f"row {i}: unknown backend "
                          f"'{row['backend']}'")
        if row["n"] != 2 ** int(row["logn"]):
            errors.append(f"row {i}: n={row['n']} != 2^{row['logn']}")
        for key in ("fwd_ns_per_butterfly", "inv_ns_per_butterfly",
                    "fwd_transforms_per_sec", "fwd_speedup"):
            if row[key] <= 0:
                errors.append(f"row {i}: {key} must be positive")
        groups.setdefault(int(row["logn"]), []).append(row["backend"])

    for logn, backends in sorted(groups.items()):
        if "reference" not in backends:
            errors.append(f"logN={logn}: no reference row")
        if not any(b != "reference" for b in backends):
            errors.append(f"logN={logn}: no lazy-backend row")
        dupes = {b for b in backends if backends.count(b) > 1}
        if dupes:
            errors.append(f"logN={logn}: duplicate backend rows "
                          f"{sorted(dupes)}")

    return errors


def main(argv):
    path = argv[1] if len(argv) > 1 else "BENCH_ntt.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_ntt_bench: cannot read {path}: {e}",
              file=sys.stderr)
        return 1

    errors = validate(doc)
    for e in errors:
        print(f"validate_ntt_bench: {path}: {e}", file=sys.stderr)
    if not errors:
        nrows = len(doc["rows"])
        print(f"validate_ntt_bench: {path}: OK ({nrows} rows, best "
              f"backend {doc['best_backend']}, "
              f"{doc['fwd_speedup_at_2e16']:.2f}x at 2^16)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

/**
 * The §V-B reordering identity Anaheim relies on to move automorphism
 * past PMULT:  [(m << R) ⊙ p] == [(m ⊙ (p >> R)) << R].
 * Verified homomorphically: rotating then multiplying equals
 * multiplying by the pre-rotated plaintext and then rotating.
 */

#include <gtest/gtest.h>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "common/rng.h"

namespace anaheim {
namespace {

using Complex = std::complex<double>;

class ReorderTest : public ::testing::TestWithParam<int>
{
  protected:
    ReorderTest()
        : context_(CkksParams::testParams(1 << 9, 6, 2)),
          encoder_(context_), keygen_(context_, 21),
          encryptor_(context_, 23),
          decryptor_(context_, keygen_.secretKey()),
          evaluator_(context_, encoder_)
    {
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    CkksEncryptor encryptor_;
    CkksDecryptor decryptor_;
    CkksEvaluator evaluator_;
};

TEST_P(ReorderTest, AutomorphismCommutesWithPreRotatedPMult)
{
    const int r = GetParam();
    const size_t slots = encoder_.slots();
    Rng rng(100 + r);
    std::vector<Complex> m(slots), p(slots);
    for (size_t i = 0; i < slots; ++i) {
        m[i] = {rng.uniformReal() - 0.5, rng.uniformReal() - 0.5};
        p[i] = {rng.uniformReal() - 0.5, 0.0};
    }

    auto keys = keygen_.makeGaloisKeys({r});
    const auto ct = encryptor_.encrypt(
        encoder_.encode(m, context_.maxLevel()), keygen_.secretKey());

    // Path A (Fig. 1 order): rotate, then PMULT by p.
    const auto ptP = encoder_.encode(p, context_.maxLevel());
    const auto pathA = evaluator_.rescale(
        evaluator_.mulPlain(evaluator_.rotate(ct, r, keys), ptP));

    // Path B (Fig. 5 order): PMULT by p >> r, then rotate.
    std::vector<Complex> preRotated(slots);
    for (size_t j = 0; j < slots; ++j)
        preRotated[j] = p[(j + slots - static_cast<size_t>(r)) % slots];
    const auto ptPre = encoder_.encode(preRotated, context_.maxLevel());
    const auto pathB = evaluator_.rotate(
        evaluator_.rescale(evaluator_.mulPlain(ct, ptPre)), r, keys);

    const auto outA = encoder_.decode(decryptor_.decrypt(pathA));
    const auto outB = encoder_.decode(decryptor_.decrypt(pathB));
    for (size_t i = 0; i < slots; i += 29) {
        EXPECT_LT(std::abs(outA[i] - outB[i]), 1e-4)
            << "r=" << r << " slot " << i;
        // Both must equal the plain computation.
        const Complex expect = m[(i + r) % slots] * p[i];
        EXPECT_LT(std::abs(outA[i] - expect), 1e-4);
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, ReorderTest,
                         ::testing::Values(1, 2, 7, 64, 255));

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include <complex>

#include "ckks/encryptor.h"
#include "common/rng.h"
#include "lintrans/lintrans.h"

namespace anaheim {
namespace {

using Complex = std::complex<double>;

class LinTransTest : public ::testing::Test
{
  protected:
    LinTransTest()
        : context_(CkksParams::testParams(1 << 9, 6, 2)),
          encoder_(context_), keygen_(context_, 5),
          encryptor_(context_, 15),
          decryptor_(context_, keygen_.secretKey()),
          evaluator_(context_, encoder_),
          transformer_(context_, encoder_, evaluator_)
    {
    }

    std::vector<Complex>
    randomMessage(uint64_t seed)
    {
        Rng rng(seed);
        std::vector<Complex> msg(encoder_.slots());
        for (auto &v : msg) {
            v = {2.0 * rng.uniformReal() - 1.0,
                 2.0 * rng.uniformReal() - 1.0};
        }
        return msg;
    }

    void
    checkAlgorithm(const DiagMatrix &matrix, LinTransAlgorithm algorithm,
                   uint64_t seed, double tolerance = 2e-4)
    {
        const auto msg = randomMessage(seed);
        const auto expect = matrix.apply(msg);
        auto keys = keygen_.makeGaloisKeys(
            LinearTransformer::requiredRotations(matrix, algorithm));
        const auto ct = encryptor_.encrypt(
            encoder_.encode(msg, context_.maxLevel()),
            keygen_.secretKey());
        const auto result = evaluator_.rescale(
            transformer_.apply(ct, matrix, keys, algorithm));
        const auto out = encoder_.decode(decryptor_.decrypt(result));
        for (size_t i = 0; i < expect.size(); ++i) {
            EXPECT_LT(std::abs(out[i] - expect[i]), tolerance)
                << "slot " << i;
        }
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    CkksEncryptor encryptor_;
    CkksDecryptor decryptor_;
    CkksEvaluator evaluator_;
    LinearTransformer transformer_;
};

TEST_F(LinTransTest, DiagMatrixApplyMatchesDense)
{
    Rng rng(61);
    const auto m = DiagMatrix::random(8, {0, 1, 5}, rng);
    std::vector<Complex> v(8);
    for (auto &x : v)
        x = {rng.uniformReal(), rng.uniformReal()};
    const auto viaDiag = m.apply(v);
    for (size_t i = 0; i < 8; ++i) {
        Complex direct = 0.0;
        for (size_t j = 0; j < 8; ++j)
            direct += m.at(i, j) * v[j];
        EXPECT_LT(std::abs(viaDiag[i] - direct), 1e-12);
    }
}

TEST_F(LinTransTest, DiagMatrixComposeMatchesSequentialApply)
{
    Rng rng(62);
    const auto m1 = DiagMatrix::random(16, {0, 2, 7}, rng);
    const auto m2 = DiagMatrix::random(16, {1, 3}, rng);
    std::vector<Complex> v(16);
    for (auto &x : v)
        x = {rng.uniformReal() - 0.5, rng.uniformReal() - 0.5};
    const auto sequential = m1.apply(m2.apply(v));
    const auto composed = m1.compose(m2).apply(v);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_LT(std::abs(sequential[i] - composed[i]), 1e-10);
}

TEST_F(LinTransTest, FromDenseRoundTrips)
{
    Rng rng(63);
    const auto m = DiagMatrix::random(16, {0, 4, 9, 15}, rng);
    std::vector<std::vector<Complex>> dense(
        16, std::vector<Complex>(16));
    for (size_t i = 0; i < 16; ++i)
        for (size_t j = 0; j < 16; ++j)
            dense[i][j] = m.at(i, j);
    const auto rebuilt = DiagMatrix::fromDense(dense);
    EXPECT_EQ(rebuilt.diagonalCount(), m.diagonalCount());
    for (size_t i = 0; i < 16; ++i)
        for (size_t j = 0; j < 16; ++j)
            EXPECT_LT(std::abs(rebuilt.at(i, j) - m.at(i, j)), 1e-12);
}

TEST_F(LinTransTest, BaseAlgorithmMatchesPlainApply)
{
    Rng rng(64);
    const auto matrix =
        DiagMatrix::random(encoder_.slots(), {0, 1, 3, 17}, rng);
    checkAlgorithm(matrix, LinTransAlgorithm::Base, 71);
}

TEST_F(LinTransTest, HoistingMatchesPlainApply)
{
    Rng rng(65);
    const auto matrix =
        DiagMatrix::random(encoder_.slots(), {0, 1, 3, 17}, rng);
    checkAlgorithm(matrix, LinTransAlgorithm::Hoisting, 72);
}

TEST_F(LinTransTest, MinKsMatchesPlainApply)
{
    Rng rng(66);
    const auto matrix =
        DiagMatrix::random(encoder_.slots(), {0, 1, 3, 6}, rng);
    checkAlgorithm(matrix, LinTransAlgorithm::MinKS, 73, 1e-3);
}

TEST_F(LinTransTest, BsgsHoistingMatchesPlainApply)
{
    Rng rng(67);
    const auto matrix = DiagMatrix::random(
        encoder_.slots(), {0, 1, 2, 5, 9, 14, 20, 33}, rng);
    checkAlgorithm(matrix, LinTransAlgorithm::BsgsHoisting, 74, 1e-3);
}

TEST_F(LinTransTest, AlgorithmsAgreeWithEachOther)
{
    Rng rng(68);
    const auto matrix =
        DiagMatrix::random(encoder_.slots(), {0, 2, 8}, rng);
    const auto msg = randomMessage(75);
    const auto ct = encryptor_.encrypt(
        encoder_.encode(msg, context_.maxLevel()), keygen_.secretKey());

    std::vector<std::vector<Complex>> results;
    for (auto algorithm :
         {LinTransAlgorithm::Base, LinTransAlgorithm::Hoisting,
          LinTransAlgorithm::MinKS, LinTransAlgorithm::BsgsHoisting}) {
        auto keys = keygen_.makeGaloisKeys(
            LinearTransformer::requiredRotations(matrix, algorithm));
        const auto result = evaluator_.rescale(
            transformer_.apply(ct, matrix, keys, algorithm));
        results.push_back(encoder_.decode(decryptor_.decrypt(result)));
    }
    for (size_t alg = 1; alg < results.size(); ++alg)
        for (size_t i = 0; i < results[0].size(); ++i)
            EXPECT_LT(std::abs(results[alg][i] - results[0][i]), 1e-3)
                << "algorithm " << alg << " slot " << i;
}

TEST_F(LinTransTest, RequiredRotationsMinKsNeedsOnlyUnitStep)
{
    Rng rng(69);
    const auto matrix =
        DiagMatrix::random(encoder_.slots(), {0, 3, 11, 40}, rng);
    const auto rotations = LinearTransformer::requiredRotations(
        matrix, LinTransAlgorithm::MinKS);
    EXPECT_EQ(rotations, std::vector<int>{1});
    // Hoisting needs a key per nonzero diagonal — the 4x evk difference
    // of Fig. 1's table.
    const auto hoistRotations = LinearTransformer::requiredRotations(
        matrix, LinTransAlgorithm::Hoisting);
    EXPECT_EQ(hoistRotations.size(), 3u);
}

TEST_F(LinTransTest, IdentityMatrixIsIdentity)
{
    DiagMatrix identity(encoder_.slots());
    auto &diag = identity.diagonal(0);
    for (auto &v : diag)
        v = {1.0, 0.0};
    checkAlgorithm(identity, LinTransAlgorithm::Hoisting, 76);
}

} // namespace
} // namespace anaheim

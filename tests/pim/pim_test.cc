#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"
#include "math/primes.h"
#include "pim/functional.h"
#include "pim/kernelmodel.h"
#include "pim/layout.h"
#include "support/error_matchers.h"

namespace anaheim {
namespace {

TEST(PimIsa, ProfilesMatchAlgorithmOne)
{
    // PAccum<4>: G = floor(B/6) (Alg. 1 line 1).
    const auto profile = pimInstrProfile(PimOpcode::PAccum, 4);
    EXPECT_EQ(profile.bufferRegions, 6u);
    EXPECT_EQ(profile.readsGroup0, 4u);  // p_0..p_3
    EXPECT_EQ(profile.readsGroup1, 8u);  // a_k, b_k
    EXPECT_EQ(profile.writes, 2u);       // x, y
}

TEST(PimIsa, SmallBuffersRejectCompoundInstructions)
{
    // Fig. 9: some compound instructions are unsupported at small B.
    EXPECT_FALSE(pimInstrSupported(PimOpcode::PAccum, 4, 4));
    EXPECT_TRUE(pimInstrSupported(PimOpcode::PAccum, 4, 16));
    EXPECT_FALSE(pimInstrSupported(PimOpcode::Tensor, 1, 4));
    EXPECT_TRUE(pimInstrSupported(PimOpcode::Add, 1, 4));
}

TEST(PimLayout, PaperExampleSixteenChunksPerBank)
{
    // §VI-B example: N = 2^16 limb over a 512-bank die group -> 16
    // chunks (128 elements) per bank per limb.
    ColumnPartitionLayout layout(DramConfig::hbm2A100(), 512, 1 << 16, 8);
    EXPECT_EQ(layout.chunksPerBankPerLimb(), 16u);
    EXPECT_EQ(layout.chunksPerColumnGroup(), 4u); // 32 chunks / 8 CGs
    EXPECT_EQ(layout.rowsPerRowGroup(), 4u);      // 16 chunks / 4 per CG
}

TEST(PimLayout, PolyGroupSharesRowsAcrossPolys)
{
    ColumnPartitionLayout layout(DramConfig::hbm2A100(), 512, 1 << 16, 8);
    const auto group = layout.allocate(2, 4);
    ASSERT_EQ(group.placements.size(), 8u);
    // x[i] and y[i] live in the same row group, different column groups.
    const auto &x0 = group.placements[0];
    const auto &y0 = group.placements[4];
    EXPECT_EQ(x0.rowGroupBase, y0.rowGroupBase);
    EXPECT_NE(x0.columnGroup, y0.columnGroup);
}

TEST(PimLayout, ActsPerIterationContrast)
{
    ColumnPartitionLayout layout(DramConfig::hbm2A100(), 512, 1 << 16, 8);
    EXPECT_EQ(layout.actsPerIteration(4, true), 1u);
    EXPECT_EQ(layout.actsPerIteration(4, false), 4u);
}

TEST(PimLayout, OfflineBanksStripeOverTheHealthySubset)
{
    // Quarantining two of the 512 banks leaves 8192 chunks over 510
    // healthy banks: ceil -> 17 chunks per bank (vs 16), and the
    // allocation remembers the banks it routed around.
    ColumnPartitionLayout layout(DramConfig::hbm2A100(), 512, 1 << 16, 8,
                                 {17, 3, 17}); // unsorted, duplicated
    EXPECT_EQ(layout.healthyBanks(), 510u);
    EXPECT_EQ(layout.offlineBanks(), (std::vector<size_t>{3, 17}));
    EXPECT_EQ(layout.chunksPerBankPerLimb(), 17u);
    const auto group = layout.allocate(2, 4);
    EXPECT_EQ(group.offlineBanks, (std::vector<size_t>{3, 17}));
    // The healthy-path layout is bit-identical to the original.
    ColumnPartitionLayout healthy(DramConfig::hbm2A100(), 512, 1 << 16,
                                  8);
    EXPECT_EQ(healthy.chunksPerBankPerLimb(), 16u);
    EXPECT_TRUE(healthy.allocate(2, 4).offlineBanks.empty());
}

TEST(PimLayout, RejectsImpossibleQuarantineSets)
{
    EXPECT_ANAHEIM_ERROR(
        ColumnPartitionLayout(DramConfig::hbm2A100(), 512, 1 << 16, 8,
                              {512}),
        InvalidArgument, "offline bank");
    std::vector<size_t> all(512);
    for (size_t b = 0; b < all.size(); ++b)
        all[b] = b;
    EXPECT_ANAHEIM_ERROR(
        ColumnPartitionLayout(DramConfig::hbm2A100(), 512, 1 << 16, 8,
                              all),
        ResourceExhausted, "quarantined");
}

class PimFunctionalTest : public ::testing::Test
{
  protected:
    PimFunctionalTest()
        : q_(generateNttPrimes(1024, 28, 1)[0]), unit_(q_), rng_(55)
    {
    }

    PimVector
    randomVec(size_t count = 64)
    {
        PimVector v(count);
        for (auto &x : v)
            x = static_cast<uint32_t>(rng_.uniform(q_));
        return v;
    }

    uint64_t q_;
    PimFunctionalUnit unit_;
    Rng rng_;
};

TEST_F(PimFunctionalTest, AddSubNegMatchReference)
{
    const auto a = randomVec();
    const auto b = randomVec();
    const auto sum = unit_.add(a, b);
    const auto diff = unit_.sub(a, b);
    const auto neg = unit_.neg(a);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(sum[i], addMod(a[i], b[i], q_));
        EXPECT_EQ(diff[i], subMod(a[i], b[i], q_));
        EXPECT_EQ(neg[i], negMod(a[i], q_));
    }
}

TEST_F(PimFunctionalTest, MontgomeryMultMatchesGenericModMul)
{
    const auto a = randomVec();
    const auto b = randomVec();
    const auto prod = unit_.mult(a, b);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(prod[i], mulMod(a[i], b[i], q_));
}

TEST_F(PimFunctionalTest, MacAndCMacMatchReference)
{
    const auto a = randomVec();
    const auto b = randomVec();
    const auto c = randomVec();
    const uint32_t constant = static_cast<uint32_t>(rng_.uniform(q_));
    const auto mac = unit_.mac(a, b, c);
    const auto cmac = unit_.cMac(a, b, constant);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(mac[i], macMod(a[i], b[i], c[i], q_));
        EXPECT_EQ(cmac[i], macMod(a[i], constant, b[i], q_));
    }
}

TEST_F(PimFunctionalTest, TensorMatchesCiphertextTensorAlgebra)
{
    const auto a = randomVec();
    const auto b = randomVec();
    const auto c = randomVec();
    const auto d = randomVec();
    const auto [x, y, z] = unit_.tensor(a, b, c, d);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(x[i], mulMod(a[i], c[i], q_));
        EXPECT_EQ(y[i], addMod(mulMod(a[i], d[i], q_),
                               mulMod(b[i], c[i], q_), q_));
        EXPECT_EQ(z[i], mulMod(b[i], d[i], q_));
    }
}

TEST_F(PimFunctionalTest, ModDownEpMatchesDefinition)
{
    const auto a = randomVec();
    const auto b = randomVec();
    const uint32_t constant = static_cast<uint32_t>(rng_.uniform(q_));
    const auto out = unit_.modDownEp(a, b, constant);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(out[i],
                  mulMod(constant, subMod(a[i], b[i], q_), q_));
}

TEST_F(PimFunctionalTest, PAccumMatchesKeyMultSemantics)
{
    // KeyMult: x = sum a_k * p_k, y = sum b_k * p_k over D = 4 digits.
    std::vector<PimVector> a, b, p;
    for (int k = 0; k < 4; ++k) {
        a.push_back(randomVec());
        b.push_back(randomVec());
        p.push_back(randomVec());
    }
    const auto [x, y] = unit_.pAccum(a, b, p);
    for (size_t i = 0; i < x.size(); ++i) {
        uint64_t ex = 0, ey = 0;
        for (int k = 0; k < 4; ++k) {
            ex = addMod(ex, mulMod(a[k][i], p[k][i], q_), q_);
            ey = addMod(ey, mulMod(b[k][i], p[k][i], q_), q_);
        }
        EXPECT_EQ(x[i], ex);
        EXPECT_EQ(y[i], ey);
    }
}

TEST_F(PimFunctionalTest, ThirtyTwoBitWordsTruncatedToTwentyEight)
{
    // DRAM stores 32-bit words; the unit truncates to 28 bits (§VI-A).
    PimVector a = {0xF0000001u}; // garbage in the top nibble
    PimVector b = {2u};
    const auto prod = unit_.mult(a, b);
    const uint64_t truncated = (0xF0000001u & 0x0fffffffu) % q_;
    EXPECT_EQ(prod[0], mulMod(truncated, 2u, q_));
}

class PimModelTest : public ::testing::Test
{
  protected:
    PimModelTest()
        : model_(DramConfig::hbm2A100(), PimConfig::nearBankA100())
    {
    }
    PimKernelModel model_;
};

TEST_F(PimModelTest, PimBeatsExternalBaseline)
{
    // Fig. 9: 1.65-10.3x speedups at the default configurations.
    for (PimOpcode op : {PimOpcode::Add, PimOpcode::Mult, PimOpcode::Mac,
                         PimOpcode::PMult, PimOpcode::Tensor}) {
        const auto pim = model_.execute(op, 1, 54, 1 << 16);
        const auto base = model_.baseline(op, 1, 54, 1 << 16);
        ASSERT_TRUE(pim.supported);
        EXPECT_GT(base.timeNs / pim.timeNs, 1.3)
            << pimOpcodeName(op) << " speedup too low";
        EXPECT_LT(base.timeNs / pim.timeNs, 40.0)
            << pimOpcodeName(op) << " speedup implausibly high";
        EXPECT_GT(base.energyPj / pim.energyPj, 1.5)
            << pimOpcodeName(op) << " energy gain too low";
    }
}

TEST_F(PimModelTest, CompoundInstructionsGainMost)
{
    // PAccum's fused execution amortizes ACT/PRE best (§VII-C).
    const auto addPim = model_.execute(PimOpcode::Add, 1, 54, 1 << 16);
    const auto addBase = model_.baseline(PimOpcode::Add, 1, 54, 1 << 16);
    const auto pacPim = model_.execute(PimOpcode::PAccum, 4, 68, 1 << 16);
    const auto pacBase =
        model_.baseline(PimOpcode::PAccum, 4, 68, 1 << 16);
    EXPECT_GT(pacBase.timeNs / pacPim.timeNs,
              addBase.timeNs / addPim.timeNs);
}

TEST_F(PimModelTest, LargerBufferAmortizesActPre)
{
    PimConfig small = PimConfig::nearBankA100();
    small.bufferEntries = 8;
    PimConfig large = PimConfig::nearBankA100();
    large.bufferEntries = 64;
    const PimKernelModel smallModel(DramConfig::hbm2A100(), small);
    const PimKernelModel largeModel(DramConfig::hbm2A100(), large);
    const auto slow = smallModel.execute(PimOpcode::PAccum, 4, 68,
                                         1 << 16);
    const auto fast = largeModel.execute(PimOpcode::PAccum, 4, 68,
                                         1 << 16);
    EXPECT_LT(fast.timeNs, slow.timeNs);
    EXPECT_LT(fast.commands.acts, slow.commands.acts);
}

TEST_F(PimModelTest, ColumnPartitioningIsCrucial)
{
    // Fig. 10: dropping the CP layout makes element-wise time ~2.2x
    // slower on A100.
    PimConfig noCp = PimConfig::nearBankA100();
    noCp.columnPartition = false;
    const PimKernelModel noCpModel(DramConfig::hbm2A100(), noCp);
    const auto with = model_.execute(PimOpcode::PAccum, 4, 68, 1 << 16);
    const auto without =
        noCpModel.execute(PimOpcode::PAccum, 4, 68, 1 << 16);
    const double slowdown = without.timeNs / with.timeNs;
    EXPECT_GT(slowdown, 1.5);
    EXPECT_LT(slowdown, 4.0);
}

TEST_F(PimModelTest, DegradedDeviceStretchesLockstepStreams)
{
    // Offline banks: each healthy bank absorbs more chunks per limb,
    // so the lockstep stream takes longer; energy only charges the
    // banks that still switch, so it must not grow with the slowdown.
    PimConfig degraded = PimConfig::nearBankA100();
    for (size_t b = 0; b < 32; ++b)
        degraded.offlineBanks.push_back(b);
    const PimKernelModel degradedModel(DramConfig::hbm2A100(), degraded);
    const auto healthy = model_.execute(PimOpcode::PAccum, 4, 68, 1 << 16);
    const auto slower =
        degradedModel.execute(PimOpcode::PAccum, 4, 68, 1 << 16);
    EXPECT_GT(slower.timeNs, healthy.timeNs);

    // Dead lanes: survivors serialize their multiplies.
    PimConfig laneDegraded = PimConfig::nearBankA100();
    laneDegraded.quarantinedLanes = 4; // 8 -> 4 lanes
    const PimKernelModel laneModel(DramConfig::hbm2A100(), laneDegraded);
    const auto laneSlower =
        laneModel.execute(PimOpcode::Mult, 1, 54, 1 << 16);
    const auto laneHealthy =
        model_.execute(PimOpcode::Mult, 1, 54, 1 << 16);
    EXPECT_GT(laneSlower.timeNs, laneHealthy.timeNs);
    // Total multiplies are unchanged, so MMAC energy is too: the lane
    // quarantine costs time, not energy.
    EXPECT_NEAR(laneSlower.energyPj, laneHealthy.energyPj,
                0.05 * laneHealthy.energyPj);
}

TEST_F(PimModelTest, DegradedConfigTracksTheWorstDieGroup)
{
    // Lockstep ties the device to its worst group: degraded() must
    // adopt that group's offline banks and the worst lane count.
    ResourceMap map;
    map.dieGroups = 5;
    map.banksPerDieGroup = 512;
    map.lanesPerUnit = 8;
    map.quarantined = {
        {FaultSiteId::Kind::Bank, 1, 40},
        {FaultSiteId::Kind::Bank, 3, 7},
        {FaultSiteId::Kind::Bank, 3, 200},
        {FaultSiteId::Kind::MmacLane, 0, 2},
    };
    const PimConfig degraded = PimConfig::nearBankA100().degraded(map);
    EXPECT_EQ(degraded.offlineBanks, (std::vector<size_t>{7, 200}));
    EXPECT_EQ(degraded.quarantinedLanes, 1u);
    EXPECT_EQ(degraded.healthyBanksPerDieGroup(), 510u);
    EXPECT_EQ(degraded.healthyLanes(), 7u);
    // Nothing quarantined: identity.
    const PimConfig same =
        PimConfig::nearBankA100().degraded(ResourceMap{});
    EXPECT_TRUE(same.offlineBanks.empty());
    EXPECT_EQ(same.quarantinedLanes, 0u);
}

TEST_F(PimModelTest, CustomHbmHidesActPreButStreamsSlower)
{
    const PimKernelModel custom(DramConfig::hbm2A100(),
                                PimConfig::customHbmA100());
    // For a simple streaming op custom-HBM is slower (4x vs 16x BW).
    const auto nearAdd = model_.execute(PimOpcode::Add, 1, 54, 1 << 16);
    const auto customAdd = custom.execute(PimOpcode::Add, 1, 54, 1 << 16);
    EXPECT_GT(customAdd.timeNs, nearAdd.timeNs);
    // Saturation with B is faster for custom-HBM (Fig. 9): shrinking the
    // buffer hurts it less than near-bank.
    PimConfig smallNear = PimConfig::nearBankA100();
    smallNear.bufferEntries = 8;
    PimConfig smallCustom = PimConfig::customHbmA100();
    smallCustom.bufferEntries = 8;
    const PimKernelModel nearSmall(DramConfig::hbm2A100(), smallNear);
    const PimKernelModel customSmall(DramConfig::hbm2A100(), smallCustom);
    const double nearPenalty =
        nearSmall.execute(PimOpcode::PAccum, 4, 68, 1 << 16).timeNs /
        model_.execute(PimOpcode::PAccum, 4, 68, 1 << 16).timeNs;
    const double customPenalty =
        customSmall.execute(PimOpcode::PAccum, 4, 68, 1 << 16).timeNs /
        custom.execute(PimOpcode::PAccum, 4, 68, 1 << 16).timeNs;
    EXPECT_GT(nearPenalty, customPenalty);
}


TEST_F(PimFunctionalTest, UnaryOpsRejectEmptyOperands)
{
    const PimVector empty;
    EXPECT_ANAHEIM_ERROR(unit_.move(empty), InvalidArgument,
                         "empty operand");
    EXPECT_ANAHEIM_ERROR(unit_.neg(empty), InvalidArgument,
                         "empty operand");
    EXPECT_ANAHEIM_ERROR(unit_.cAdd(empty, 3), InvalidArgument,
                         "empty operand");
    EXPECT_ANAHEIM_ERROR(unit_.cMult(empty, 3), InvalidArgument,
                         "empty operand");
}

TEST_F(PimFunctionalTest, BinaryOpsRejectSizeMismatches)
{
    const auto a = randomVec(64);
    const auto shorter = randomVec(32);
    EXPECT_ANAHEIM_ERROR(unit_.add(a, shorter), InvalidArgument,
                         "size mismatch");
    EXPECT_ANAHEIM_ERROR(unit_.sub(a, shorter), InvalidArgument,
                         "size mismatch");
    EXPECT_ANAHEIM_ERROR(unit_.mult(a, shorter), InvalidArgument,
                         "size mismatch");
    EXPECT_ANAHEIM_ERROR(unit_.cMac(a, shorter, 5), InvalidArgument,
                         "size mismatch");
    EXPECT_ANAHEIM_ERROR(unit_.mac(a, a, shorter), InvalidArgument,
                         "size mismatch");
}

TEST_F(PimFunctionalTest, TensorAndModDownRejectSizeMismatches)
{
    const auto a = randomVec(64);
    const auto b = randomVec(64);
    const auto shorter = randomVec(32);
    EXPECT_ANAHEIM_ERROR(unit_.tensor(a, b, a, shorter), InvalidArgument,
                         "Tensor operand size mismatch");
    EXPECT_ANAHEIM_ERROR(unit_.tensor(a, shorter, a, b), InvalidArgument,
                         "Tensor operand size mismatch");
    EXPECT_ANAHEIM_ERROR(unit_.modDownEp(a, shorter, 7), InvalidArgument,
                         "ModDownEp operand size mismatch");
    EXPECT_ANAHEIM_ERROR(unit_.pAccum({a}, {a, b}, {a}), InvalidArgument,
                         "fan-in mismatch");
    // Well-formed calls still succeed after a rejection.
    EXPECT_EQ(unit_.tensor(a, b, a, b)[0].size(), 64u);
    EXPECT_EQ(unit_.modDownEp(a, b, 7).size(), 64u);
}

} // namespace
} // namespace anaheim

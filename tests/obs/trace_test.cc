/**
 * @file
 * Scoped-tracing runtime tests: the disabled path records nothing,
 * nesting depths are tracked per thread, spans from spawned threads
 * land in distinct per-thread buffers, and the simulated track keeps
 * run registration separate from host spans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace anaheim::obs {
namespace {

/** Save/restore the global tracing flag and empty the collector so
 *  tests don't leak spans into each other. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled_ = tracingEnabled();
        TraceCollector::global().clear();
    }

    void
    TearDown() override
    {
        setTracingEnabled(wasEnabled_);
        TraceCollector::global().clear();
    }

    bool wasEnabled_ = false;
};

TEST_F(TraceTest, DisabledRecordsNothing)
{
    setTracingEnabled(false);
    {
        OBS_SPAN("test/outer");
        OBS_SPAN("test/inner");
    }
    EXPECT_TRUE(TraceCollector::global().hostSpans().empty());
}

TEST_F(TraceTest, NestedSpansRecordDepths)
{
    setTracingEnabled(true);
    {
        OBS_SPAN("test/outer");
        {
            OBS_SPAN("test/middle");
            OBS_SPAN("test/inner");
        }
        // A sibling after the nested pair reuses depth 1.
        OBS_SPAN("test/sibling");
    }
    setTracingEnabled(false);

    const auto spans = TraceCollector::global().hostSpans();
    ASSERT_EQ(spans.size(), 4u);

    auto depthOf = [&](const std::string &name) -> int {
        for (const HostSpan &span : spans)
            if (name == span.name)
                return static_cast<int>(span.depth);
        return -1;
    };
    EXPECT_EQ(depthOf("test/outer"), 0);
    EXPECT_EQ(depthOf("test/middle"), 1);
    EXPECT_EQ(depthOf("test/inner"), 2);
    EXPECT_EQ(depthOf("test/sibling"), 1);

    for (const HostSpan &span : spans) {
        EXPECT_GE(span.durUs, 0.0) << span.name;
        EXPECT_GE(span.startUs, 0.0) << span.name;
    }
}

TEST_F(TraceTest, ChildSpanNestsInsideParentInterval)
{
    setTracingEnabled(true);
    {
        OBS_SPAN("test/parent");
        OBS_SPAN("test/child");
    }
    setTracingEnabled(false);

    const auto spans = TraceCollector::global().hostSpans();
    ASSERT_EQ(spans.size(), 2u);
    const HostSpan *parent = nullptr;
    const HostSpan *child = nullptr;
    for (const HostSpan &span : spans) {
        if (std::string(span.name) == "test/parent")
            parent = &span;
        else
            child = &span;
    }
    ASSERT_NE(parent, nullptr);
    ASSERT_NE(child, nullptr);
    EXPECT_LE(parent->startUs, child->startUs);
    EXPECT_GE(parent->startUs + parent->durUs,
              child->startUs + child->durUs);
}

TEST_F(TraceTest, SpawnedThreadsGetDistinctTids)
{
    setTracingEnabled(true);
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([] { OBS_SPAN("test/worker"); });
    }
    for (auto &thread : threads)
        thread.join();
    setTracingEnabled(false);

    const auto spans = TraceCollector::global().hostSpans();
    std::vector<uint32_t> tids;
    for (const HostSpan &span : spans) {
        if (std::string(span.name) == "test/worker")
            tids.push_back(span.tid);
    }
    ASSERT_EQ(tids.size(), static_cast<size_t>(kThreads));
    // Every worker span came from its own buffer: all tids distinct.
    std::sort(tids.begin(), tids.end());
    EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
    // Worker spans open at depth 0 of their own thread.
    for (const HostSpan &span : spans) {
        if (std::string(span.name) == "test/worker")
            EXPECT_EQ(span.depth, 0u);
    }
}

TEST_F(TraceTest, DisableMidSpanStillUnwindsDepth)
{
    setTracingEnabled(true);
    {
        OBS_SPAN("test/outer");
        setTracingEnabled(false);
    } // outer closes while disabled; depth must unwind
    setTracingEnabled(true);
    {
        OBS_SPAN("test/after");
    }
    setTracingEnabled(false);

    const auto spans = TraceCollector::global().hostSpans();
    for (const HostSpan &span : spans) {
        if (std::string(span.name) == "test/after")
            EXPECT_EQ(span.depth, 0u);
    }
}

TEST_F(TraceTest, SimRunsAndSpansRoundTrip)
{
    TraceCollector &collector = TraceCollector::global();
    const uint32_t first = collector.beginRun("Boot");
    const uint32_t second = collector.beginRun("HELR");
    EXPECT_EQ(second, first + 1);

    SimSpan span;
    span.name = "ModUp";
    span.lane = "GPU";
    span.category = "NTT";
    span.run = first;
    span.startUs = 1.5;
    span.durUs = 2.0;
    span.energyPj = 42.0;
    collector.recordSimSpan(span);

    const auto names = collector.runNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[first], "Boot");
    EXPECT_EQ(names[second], "HELR");
    const auto spans = collector.simSpans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].lane, "GPU");
    EXPECT_DOUBLE_EQ(spans[0].energyPj, 42.0);

    collector.clear();
    EXPECT_TRUE(collector.simSpans().empty());
    EXPECT_TRUE(collector.runNames().empty());
}

} // namespace
} // namespace anaheim::obs

/**
 * @file
 * Parser tests for the in-process JSON subset the exporters are
 * validated with: value kinds, nesting, escapes, and rejection of the
 * malformed documents a broken exporter would most plausibly emit.
 */

#include <gtest/gtest.h>

#include "obs/json.h"

namespace anaheim::obs {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null")->isNull());
    EXPECT_TRUE(parseJson("true")->boolean());
    EXPECT_FALSE(parseJson("false")->boolean());
    EXPECT_DOUBLE_EQ(parseJson("42")->number(), 42.0);
    EXPECT_DOUBLE_EQ(parseJson("-1.5e3")->number(), -1500.0);
    EXPECT_EQ(parseJson("\"hi\"")->string(), "hi");
}

TEST(Json, ParsesNestedDocument)
{
    const auto doc = parseJson(
        R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}, "e": -0.25})");
    ASSERT_NE(doc, nullptr);
    ASSERT_TRUE(doc->isObject());
    const JsonValue *a = doc->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->array().size(), 3u);
    EXPECT_DOUBLE_EQ(a->array()[1].number(), 2.0);
    const JsonValue *b = a->array()[2].find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->string(), "x");
    EXPECT_TRUE(doc->find("c")->find("d")->isNull());
    EXPECT_DOUBLE_EQ(doc->find("e")->number(), -0.25);
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, ParsesStringEscapes)
{
    const auto doc = parseJson(R"("line\n\"quote\"\t\\end")");
    ASSERT_NE(doc, nullptr);
    EXPECT_EQ(doc->string(), "line\n\"quote\"\t\\end");
}

TEST(Json, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_EQ(parseJson("", &error), nullptr);
    EXPECT_EQ(parseJson("{", &error), nullptr);
    EXPECT_EQ(parseJson("[1, 2,]", &error), nullptr);
    EXPECT_EQ(parseJson("{\"a\" 1}", &error), nullptr);
    EXPECT_EQ(parseJson("\"unterminated", &error), nullptr);
    EXPECT_EQ(parseJson("nul", &error), nullptr);
    EXPECT_FALSE(error.empty());
}

TEST(Json, RejectsTrailingContent)
{
    std::string error;
    EXPECT_EQ(parseJson("{} extra", &error), nullptr);
    EXPECT_NE(parseJson("{}  \n ", &error), nullptr); // whitespace ok
}

} // namespace
} // namespace anaheim::obs

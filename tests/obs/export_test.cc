/**
 * @file
 * Exporter and attribution tests over a real simulated run: the Chrome
 * trace document validates against its own schema checker and parses
 * with the expected event fields and lanes; the attribution report's
 * category totals reproduce `RunResult::timeNsByCategory`; the
 * timeline leaves execute() in canonical order; metrics exports carry
 * the self-describing header.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <string>

#include "anaheim/framework.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "trace/builders.h"

namespace anaheim::obs {
namespace {

RunResult
smallRun(AnaheimConfig config = AnaheimConfig::a100NearBank())
{
    OpSequence seq = buildHMult(TraceParams{});
    seq.name = "hmult";
    return AnaheimFramework(config).execute(seq);
}

class ExportTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled_ = tracingEnabled();
        setTracingEnabled(false);
        TraceCollector::global().clear();
    }

    void
    TearDown() override
    {
        setTracingEnabled(wasEnabled_);
        TraceCollector::global().clear();
    }

    bool wasEnabled_ = false;
};

TEST_F(ExportTest, ChromeTraceValidatesAndParses)
{
    setTracingEnabled(true);
    {
        OBS_SPAN("test/export");
        const RunResult result = smallRun(); // records its timeline
        ASSERT_FALSE(result.timeline.empty());
    }
    setTracingEnabled(false);

    const std::string json = chromeTraceJson();
    EXPECT_TRUE(validateChromeTrace(json).ok())
        << validateChromeTrace(json).toString();

    // Independent parse: the schema fields Perfetto/chrome://tracing
    // require must be present on every complete event.
    std::string error;
    const auto doc = parseJson(json, &error);
    ASSERT_NE(doc, nullptr) << error;
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::set<std::string> lanes;
    std::set<std::string> phases;
    bool sawHostSpan = false;
    for (const JsonValue &event : events->array()) {
        const JsonValue *ph = event.find("ph");
        ASSERT_NE(ph, nullptr);
        phases.insert(ph->string());
        ASSERT_NE(event.find("pid"), nullptr);
        ASSERT_NE(event.find("tid"), nullptr);
        EXPECT_TRUE(event.find("pid")->isNumber());
        EXPECT_TRUE(event.find("tid")->isNumber());
        if (ph->string() == "X") {
            ASSERT_NE(event.find("ts"), nullptr);
            ASSERT_NE(event.find("dur"), nullptr);
            EXPECT_GE(event.find("ts")->number(), 0.0);
            EXPECT_GE(event.find("dur")->number(), 0.0);
            if (event.find("name")->string() == "test/export")
                sawHostSpan = true;
            const JsonValue *args = event.find("args");
            if (args != nullptr && args->find("lane") != nullptr)
                lanes.insert(args->find("lane")->string());
        }
    }
    EXPECT_TRUE(sawHostSpan);
    // Only metadata ("M") and complete ("X") events are emitted.
    for (const std::string &phase : phases)
        EXPECT_TRUE(phase == "M" || phase == "X") << phase;
    // The simulated run contributes both execution lanes.
    EXPECT_TRUE(lanes.count("GPU")) << "lanes missing GPU";
    EXPECT_TRUE(lanes.count("PIM")) << "lanes missing PIM";

    // Header block rides "otherData".
    const JsonValue *other = doc->find("otherData");
    ASSERT_NE(other, nullptr);
    ASSERT_NE(other->find("schema_version"), nullptr);
    ASSERT_NE(other->find("git_sha"), nullptr);
}

TEST_F(ExportTest, WriteAndValidateTraceFile)
{
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.obs.trace = true; // sim-timeline recording without host spans
    const RunResult result = smallRun(config);
    ASSERT_FALSE(result.timeline.empty());

    const std::string path =
        ::testing::TempDir() + "/anaheim_export_test_trace.json";
    ASSERT_TRUE(writeChromeTrace(path));
    EXPECT_TRUE(validateChromeTraceFile(path).ok())
        << validateChromeTraceFile(path).toString();
    std::remove(path.c_str());
}

TEST_F(ExportTest, ValidatorRejectsBrokenTraces)
{
    EXPECT_FALSE(validateChromeTrace("not json").ok());
    EXPECT_FALSE(validateChromeTrace("{}").ok());
    EXPECT_FALSE(validateChromeTrace("{\"traceEvents\": 3}").ok());
    // No complete events.
    EXPECT_FALSE(validateChromeTrace("{\"traceEvents\": []}").ok());
    // Complete event missing ts.
    EXPECT_FALSE(
        validateChromeTrace(
            "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", "
            "\"pid\": 1, \"tid\": 1, \"dur\": 1}]}")
            .ok());
    // Complete event whose pid has no process_name metadata.
    EXPECT_FALSE(
        validateChromeTrace(
            "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", "
            "\"pid\": 1, \"tid\": 1, \"ts\": 0, \"dur\": 1}]}")
            .ok());
}

TEST_F(ExportTest, AttributionMatchesTimeNsByCategory)
{
    const RunResult result = smallRun();
    const AttributionReport report = buildAttribution(result);
    const auto totals = report.categoryTotalsNs();

    // Same keys, same totals (to rounding): the report re-derives the
    // category split from the timeline that execute() streamed into
    // timeNsByCategory.
    EXPECT_EQ(totals.size(), result.timeNsByCategory.size());
    for (const auto &[category, ns] : result.timeNsByCategory) {
        ASSERT_TRUE(totals.count(category)) << category;
        EXPECT_NEAR(totals.at(category), ns, 1e-6 * (1.0 + ns))
            << category;
    }
    EXPECT_NEAR(report.totalNs, result.totalNs,
                1e-6 * (1.0 + result.totalNs));
    EXPECT_NEAR(report.totalEnergyPj, result.energyPj,
                1e-6 * (1.0 + result.energyPj));
}

TEST_F(ExportTest, AttributionReportShape)
{
    const RunResult result = smallRun();
    const AttributionReport report = buildAttribution(result);

    // HMult on the A100 near-bank config offloads element-wise work:
    // a PIM row and at least one GPU-mode cell must be populated.
    ASSERT_TRUE(report.rows.count("PIM"));
    EXPECT_GT(report.rows.at("PIM").at("PIM").ns, 0.0);
    double gpuNs = 0.0;
    for (const auto &[category, cells] : report.rows) {
        (void)category;
        for (const auto &[mode, cell] : cells) {
            if (mode == "GPU-compute" || mode == "GPU-bandwidth")
                gpuNs += cell.ns;
        }
    }
    EXPECT_GT(gpuNs, 0.0);

    // Pinned print format: header columns and the total row. The table
    // renders through one code path for every consumer, so this is the
    // regression surface.
    std::string text;
    {
        std::FILE *f = std::tmpfile();
        ASSERT_NE(f, nullptr);
        printAttribution(result, f);
        std::rewind(f);
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    EXPECT_NE(text.find("category"), std::string::npos);
    EXPECT_NE(text.find("GPU-comp ms"), std::string::npos);
    EXPECT_NE(text.find("PIM ms"), std::string::npos);
    EXPECT_NE(text.find("total"), std::string::npos);
    EXPECT_NE(text.find("100.0%"), std::string::npos);
}

TEST_F(ExportTest, TimelineLeavesExecuteInCanonicalOrder)
{
    const RunResult result = smallRun();
    ASSERT_FALSE(result.timeline.empty());
    EXPECT_TRUE(timelineIsCanonical(result.timeline));
    for (const GanttEntry &entry : result.timeline)
        EXPECT_GE(entry.endNs, entry.startNs) << entry.phase;
}

TEST_F(ExportTest, MetricsJsonCarriesHeaderAndEntries)
{
    MetricsRegistry::global().counter("test.export.counter").add(3);
    MetricsRegistry::global().gauge("test.export.gauge").set(1.5);
    const std::string json =
        metricsJson(MetricsRegistry::global().snapshot(), "test");

    std::string error;
    const auto doc = parseJson(json, &error);
    ASSERT_NE(doc, nullptr) << error;
    ASSERT_NE(doc->find("schema_version"), nullptr);
    ASSERT_NE(doc->find("git_sha"), nullptr);
    ASSERT_NE(doc->find("build_type"), nullptr);
    ASSERT_NE(doc->find("threads"), nullptr);
    const JsonValue *metrics = doc->find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->isArray());
    bool sawCounter = false;
    for (const JsonValue &entry : metrics->array()) {
        ASSERT_NE(entry.find("name"), nullptr);
        ASSERT_NE(entry.find("kind"), nullptr);
        ASSERT_NE(entry.find("value"), nullptr);
        if (entry.find("name")->string() == "test.export.counter") {
            sawCounter = true;
            EXPECT_EQ(entry.find("kind")->string(), "counter");
            EXPECT_GE(entry.find("value")->number(), 3.0);
        }
    }
    EXPECT_TRUE(sawCounter);
}

TEST_F(ExportTest, MetricsJsonTimeseriesSectionValidates)
{
    TimeSeries series("test.export.ts", 1000.0, 8);
    series.observe(100.0, 4.0);
    series.observe(1500.0, 8.0);
    const std::string json =
        metricsJson(MetricsRegistry::global().snapshot(), "test",
                    {series.snapshot()});
    ASSERT_TRUE(validateMetricsJson(json).ok())
        << validateMetricsJson(json).message();

    std::string error;
    const auto doc = parseJson(json, &error);
    ASSERT_NE(doc, nullptr) << error;
    const JsonValue *ts = doc->find("timeseries");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->isArray());
    ASSERT_EQ(ts->array().size(), 1u);
    const JsonValue &entry = ts->array()[0];
    EXPECT_EQ(entry.find("name")->string(), "test.export.ts");
    EXPECT_DOUBLE_EQ(entry.find("tick_ns")->number(), 1000.0);
    const JsonValue *points = entry.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->array().size(), 2u);
    EXPECT_DOUBLE_EQ(points->array()[0].find("sum")->number(), 4.0);
    EXPECT_DOUBLE_EQ(points->array()[1].find("start_ns")->number(),
                     1000.0);
}

TEST_F(ExportTest, ValidatorRejectsBrokenTimeseries)
{
    // Out-of-order windows are the invariant a buggy exporter would
    // break first; the validator must catch them, and a plain document
    // with no timeseries section must stay valid.
    const std::string good =
        metricsJson(MetricsRegistry::global().snapshot(), "test");
    EXPECT_TRUE(validateMetricsJson(good).ok());

    const std::string bad =
        "{\"schema_version\":\"1\",\"git_sha\":\"x\","
        "\"build_type\":\"t\",\"threads\":\"1\",\"source\":\"test\","
        "\"metrics\":[{\"name\":\"a\",\"kind\":\"counter\","
        "\"value\":1,\"count\":1,\"sum\":1}],"
        "\"timeseries\":[{\"name\":\"s\",\"tick_ns\":1000.0,"
        "\"dropped_late\":0,\"evicted_windows\":0,\"points\":["
        "{\"start_ns\":1000.0,\"count\":1,\"sum\":1,\"min\":1,"
        "\"max\":1,\"p50\":1,\"p99\":1,\"rate_per_s\":1},"
        "{\"start_ns\":0.0,\"count\":1,\"sum\":1,\"min\":1,"
        "\"max\":1,\"p50\":1,\"p99\":1,\"rate_per_s\":1}]}]}";
    const Status status = validateMetricsJson(bad);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("order"), std::string::npos)
        << status.message();
}

TEST_F(ExportTest, PrometheusTextExposesFamiliesContiguously)
{
    MetricsRegistry::global().counter("test.export.prom").add(7);
    TimeSeries series("test.export.prom_ts", 1000.0, 8);
    series.observe(500.0, 2.0);
    const std::string text =
        prometheusText(MetricsRegistry::global().snapshot(),
                       {series.snapshot()});

    EXPECT_NE(text.find("# TYPE anaheim_test_export_prom counter"),
              std::string::npos);
    EXPECT_NE(text.find("anaheim_test_export_prom 7"),
              std::string::npos);
    EXPECT_NE(text.find("anaheim_series_rate{series=\"test.export."
                        "prom_ts\"}"),
              std::string::npos);
    // Exposition format: every sample of a family must sit under that
    // family's single TYPE line — a sample line naming family F after
    // a TYPE line for a different family is a format violation.
    std::istringstream lines(text);
    std::string line, family;
    for (; std::getline(lines, line);) {
        if (line.rfind("# TYPE ", 0) == 0) {
            const size_t space = line.find(' ', 7);
            family = line.substr(7, space - 7);
            continue;
        }
        if (line.empty() || line[0] == '#')
            continue;
        const size_t nameEnd = line.find_first_of("{ ");
        ASSERT_NE(nameEnd, std::string::npos) << line;
        const std::string name = line.substr(0, nameEnd);
        EXPECT_TRUE(name == family ||
                    name.rfind(family + "_", 0) == 0)
            << "sample '" << name << "' outside its family '" << family
            << "'";
    }
}

TEST_F(ExportTest, MetricsCsvHasHeaderAndRows)
{
    MetricsRegistry::global().counter("test.export.csv").add();
    const std::string csv =
        metricsCsv(MetricsRegistry::global().snapshot());
    EXPECT_EQ(csv.rfind("name,kind,value,count,sum\n", 0), 0u);
    EXPECT_NE(csv.find("test.export.csv,counter,"), std::string::npos);
}

TEST_F(ExportTest, PublishRunMetricsExposesRunTotals)
{
    const RunResult result = smallRun();
    // execute() already published; check the gauges carry this run
    // under the run.last.* alias.
    const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
    const MetricsSnapshot::Entry *total =
        snapshot.find("run.last.total_ns");
    ASSERT_NE(total, nullptr);
    EXPECT_DOUBLE_EQ(total->value, result.totalNs);
    const MetricsSnapshot::Entry *execs = snapshot.find("run.executions");
    ASSERT_NE(execs, nullptr);
    EXPECT_GE(execs->value, 1.0);
    for (const auto &[category, ns] : result.timeNsByCategory) {
        const MetricsSnapshot::Entry *entry =
            snapshot.find("run.last.time_ns." + category);
        ASSERT_NE(entry, nullptr) << category;
        EXPECT_DOUBLE_EQ(entry->value, ns) << category;
    }
}

TEST_F(ExportTest, PublishRunMetricsNamespacesGaugesByRunId)
{
    // Two interleaved runs published under distinct ids must not
    // clobber each other's gauges; run.last.* follows the later one.
    RunResult a;
    a.totalNs = 1111.0;
    RunResult b;
    b.totalNs = 2222.0;
    publishRunMetrics(a, 41u);
    publishRunMetrics(b, 42u);
    const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
    const MetricsSnapshot::Entry *ga = snapshot.find("run.41.total_ns");
    ASSERT_NE(ga, nullptr);
    EXPECT_DOUBLE_EQ(ga->value, 1111.0);
    const MetricsSnapshot::Entry *gb = snapshot.find("run.42.total_ns");
    ASSERT_NE(gb, nullptr);
    EXPECT_DOUBLE_EQ(gb->value, 2222.0);
    const MetricsSnapshot::Entry *last =
        snapshot.find("run.last.total_ns");
    ASSERT_NE(last, nullptr);
    EXPECT_DOUBLE_EQ(last->value, 2222.0);
}

TEST_F(ExportTest, ConfigSummaryNamesTheArchitecturePoint)
{
    const auto kv = configSummary(AnaheimConfig::a100NearBank());
    auto value = [&](const std::string &key) -> std::string {
        for (const auto &[k, v] : kv)
            if (k == key)
                return v;
        return "<missing>";
    };
    EXPECT_EQ(value("gpu"), "A100 80GB");
    EXPECT_EQ(value("pim_enabled"), "true");
    EXPECT_EQ(value("pim_variant"), "near-bank");
    EXPECT_EQ(value("obs_trace"), "false");
}

} // namespace
} // namespace anaheim::obs

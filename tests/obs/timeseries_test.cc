/**
 * @file
 * Time-series telemetry tests (DESIGN.md §17): log-bucket layout math,
 * window materialization over simulated time (idle gaps, ring
 * wrap-around, late drops), windowed quantiles, registry namespacing,
 * the burn-rate evaluator's fire/resolve edges, and the disabled path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "support/error_matchers.h"

namespace anaheim::obs {
namespace {

TEST(LogBuckets, IndexLayoutAndBounds)
{
    // Underflow: everything below 1 (and non-numeric garbage the
    // caller failed to drop) lands in bucket 0.
    EXPECT_EQ(LogBuckets::index(0.0), 0u);
    EXPECT_EQ(LogBuckets::index(0.999), 0u);
    EXPECT_EQ(LogBuckets::index(-5.0), 0u);

    // First octave [1, 2) spans buckets 1..4.
    EXPECT_EQ(LogBuckets::index(1.0), 1u);
    EXPECT_EQ(LogBuckets::index(1.99), 4u);
    // Octave boundaries advance by kSubPerOctave.
    EXPECT_EQ(LogBuckets::index(2.0), 5u);
    EXPECT_EQ(LogBuckets::index(4.0), 9u);

    // Beyond 2^40: overflow bucket.
    EXPECT_EQ(LogBuckets::index(std::ldexp(1.0, 41)), LogBuckets::kCount - 1);
    EXPECT_EQ(LogBuckets::index(std::numeric_limits<double>::max()),
              LogBuckets::kCount - 1);
}

TEST(LogBuckets, EveryValueFallsInsideItsBucket)
{
    // Sweep decades; index() must agree with lowerBound() and the next
    // bucket's lowerBound() — this pins the <= ~9% relative-error
    // guarantee the header advertises.
    for (double v = 1.0; v < std::ldexp(1.0, 39); v *= 1.37) {
        const size_t i = LogBuckets::index(v);
        ASSERT_LT(i, LogBuckets::kCount - 1) << v;
        EXPECT_GE(v, LogBuckets::lowerBound(i)) << v;
        EXPECT_LT(v, LogBuckets::lowerBound(i + 1)) << v;
        const double mid = LogBuckets::midpoint(i);
        EXPECT_GE(mid, LogBuckets::lowerBound(i));
        EXPECT_LE(mid, LogBuckets::lowerBound(i + 1));
    }
}

TEST(TimeSeries, EmptySeriesSnapshotsEmpty)
{
    TimeSeries series("test.ts.empty", 1000.0, 8);
    const SeriesSnapshot snap = series.snapshot();
    EXPECT_TRUE(snap.points.empty());
    EXPECT_EQ(snap.droppedLate, 0u);
    EXPECT_EQ(snap.evictedWindows, 0u);
}

TEST(TimeSeries, EmptyWindowExportsZeroes)
{
    TimeSeries series("test.ts.zero", 1000.0, 8);
    series.advanceTo(500.0); // materialize window 0, observe nothing
    const SeriesSnapshot snap = series.snapshot();
    ASSERT_EQ(snap.points.size(), 1u);
    const SeriesPoint &p = snap.points[0];
    EXPECT_EQ(p.count, 0u);
    EXPECT_DOUBLE_EQ(p.sum, 0.0);
    EXPECT_DOUBLE_EQ(p.p50, 0.0);
    EXPECT_DOUBLE_EQ(p.p99, 0.0);
    EXPECT_DOUBLE_EQ(p.ratePerSec(), 0.0);
    EXPECT_DOUBLE_EQ(p.mean(), 0.0);
}

TEST(TimeSeries, ObservationsLandInTheirWindows)
{
    TimeSeries series("test.ts.windows", 1000.0, 8);
    series.observe(100.0, 4.0);
    series.observe(900.0, 8.0);
    series.observe(1100.0, 16.0);
    const SeriesSnapshot snap = series.snapshot();
    ASSERT_EQ(snap.points.size(), 2u);
    EXPECT_DOUBLE_EQ(snap.points[0].startNs, 0.0);
    EXPECT_EQ(snap.points[0].count, 2u);
    EXPECT_DOUBLE_EQ(snap.points[0].sum, 12.0);
    EXPECT_DOUBLE_EQ(snap.points[0].min, 4.0);
    EXPECT_DOUBLE_EQ(snap.points[0].max, 8.0);
    EXPECT_DOUBLE_EQ(snap.points[1].startNs, 1000.0);
    EXPECT_EQ(snap.points[1].count, 1u);
    // One event in a 1000 ns window = 1e6 events per simulated second.
    EXPECT_DOUBLE_EQ(snap.points[1].ratePerSec(), 1e6);
}

TEST(TimeSeries, IdleGapsMaterializeAsZeroWindows)
{
    TimeSeries series("test.ts.gap", 1000.0, 16);
    series.observe(100.0, 1.0);
    series.observe(5500.0, 1.0); // windows 1..4 were idle
    const SeriesSnapshot snap = series.snapshot();
    ASSERT_EQ(snap.points.size(), 6u);
    for (size_t i = 1; i <= 4; ++i) {
        EXPECT_EQ(snap.points[i].count, 0u) << i;
        EXPECT_DOUBLE_EQ(snap.points[i].startNs, 1000.0 * i);
    }
    EXPECT_EQ(snap.points[5].count, 1u);
}

TEST(TimeSeries, RingWrapEvictsOldestWindows)
{
    TimeSeries series("test.ts.wrap", 1000.0, 4);
    for (int w = 0; w < 10; ++w)
        series.observe(w * 1000.0 + 500.0, static_cast<double>(w));
    const SeriesSnapshot snap = series.snapshot();
    ASSERT_EQ(snap.points.size(), 4u);
    EXPECT_EQ(snap.evictedWindows, 6u);
    // The ring keeps the most recent windows, oldest first.
    EXPECT_DOUBLE_EQ(snap.points.front().startNs, 6000.0);
    EXPECT_DOUBLE_EQ(snap.points.back().startNs, 9000.0);
    EXPECT_DOUBLE_EQ(snap.points.back().sum, 9.0);
}

TEST(TimeSeries, LateObservationsAreDroppedAndCounted)
{
    TimeSeries series("test.ts.late", 1000.0, 2);
    series.observe(500.0, 1.0);
    series.observe(9500.0, 1.0); // ring now starts at window 8
    series.observe(700.0, 1.0);  // window 0 was evicted: late
    const SeriesSnapshot snap = series.snapshot();
    EXPECT_EQ(snap.droppedLate, 1u);
    // The first sample's window was itself evicted by the forward jump,
    // so only the recent observation survives in the ring.
    uint64_t total = 0;
    for (const SeriesPoint &p : snap.points)
        total += p.count;
    EXPECT_EQ(total, 1u);
}

TEST(TimeSeries, NonFiniteAndNegativeTimeDropped)
{
    Counter &dropped =
        MetricsRegistry::global().counter("obs.dropped_samples");
    const uint64_t before = dropped.value();
    TimeSeries series("test.ts.nonfinite", 1000.0, 8);
    series.observe(100.0, std::numeric_limits<double>::quiet_NaN());
    series.observe(100.0, std::numeric_limits<double>::infinity());
    series.observe(-5.0, 1.0);
    EXPECT_EQ(dropped.value(), before + 3);
    EXPECT_TRUE(series.snapshot().points.empty());
}

TEST(TimeSeries, QuantilesBracketTheSamplesAndStayOrdered)
{
    TimeSeries series("test.ts.quant", 1000.0, 8);
    // 90 fast observations and ten 100x outliers: p50 must sit near
    // the bulk, p99 must see the tail, both clamped into [min, max].
    for (int i = 0; i < 90; ++i)
        series.observe(10.0 * i, 100.0);
    for (int i = 0; i < 10; ++i)
        series.observe(900.0 + i, 10000.0);
    const SeriesSnapshot snap = series.snapshot();
    ASSERT_EQ(snap.points.size(), 1u);
    const SeriesPoint &p = snap.points[0];
    EXPECT_EQ(p.count, 100u);
    EXPECT_GE(p.p50, p.min);
    EXPECT_LE(p.p50, 120.0); // within one log bucket of the bulk
    EXPECT_GE(p.p99, 1000.0); // sees the tail
    EXPECT_LE(p.p99, p.max);
    EXPECT_LE(p.p50, p.p99);
}

TEST(TimeSeries, TailTotalsSumTheMostRecentWindows)
{
    TimeSeries series("test.ts.tail", 1000.0, 8);
    for (int w = 0; w < 5; ++w)
        series.observe(w * 1000.0 + 500.0, 2.0);
    const auto [count, sum] = series.tailTotals(2);
    EXPECT_EQ(count, 2u);
    EXPECT_DOUBLE_EQ(sum, 4.0);
    const auto [all, allSum] = series.tailTotals(100);
    EXPECT_EQ(all, 5u);
    EXPECT_DOUBLE_EQ(allSum, 10.0);
}

TEST(TimeSeries, SubTickEventsShareOneWindow)
{
    // Tick far larger than the event spacing: everything lands in one
    // window (the scheduler's tick can exceed single event gaps).
    TimeSeries series("test.ts.subtick", 1e9, 8);
    for (int i = 0; i < 50; ++i)
        series.observe(i * 10.0, 1.0);
    const SeriesSnapshot snap = series.snapshot();
    ASSERT_EQ(snap.points.size(), 1u);
    EXPECT_EQ(snap.points[0].count, 50u);
}

TEST(TimeSeries, DisabledSamplingIsANoOp)
{
    Counter &dropped =
        MetricsRegistry::global().counter("obs.dropped_samples");
    const uint64_t droppedBefore = dropped.value();
    setSeriesSamplingEnabled(false);
    TimeSeries series("test.ts.disabled", 1000.0, 8);
    series.observe(100.0, 1.0);
    // Even a bad sample costs nothing on the disabled path.
    series.observe(100.0, std::numeric_limits<double>::quiet_NaN());
    setSeriesSamplingEnabled(true);
    EXPECT_TRUE(series.snapshot().points.empty());
    EXPECT_EQ(dropped.value(), droppedBefore);
    series.observe(100.0, 1.0);
    EXPECT_EQ(series.snapshot().points.size(), 1u);
}

TEST(TimeSeriesRegistryTest, FindOrCreateAndTickMismatch)
{
    TimeSeries &a =
        TimeSeriesRegistry::global().series("test.reg.a", 1000.0);
    TimeSeries &b =
        TimeSeriesRegistry::global().series("test.reg.a", 1000.0);
    EXPECT_EQ(&a, &b);
    EXPECT_ANAHEIM_ERROR(
        TimeSeriesRegistry::global().series("test.reg.a", 2000.0),
        InvalidArgument, "test.reg.a");
}

TEST(TimeSeriesRegistryTest, EpochsAreMonotone)
{
    const uint64_t first = TimeSeriesRegistry::global().beginEpoch();
    const uint64_t second = TimeSeriesRegistry::global().beginEpoch();
    EXPECT_LT(first, second);
}

TEST(TimeSeriesRegistryTest, SnapshotAllIsSortedByName)
{
    TimeSeriesRegistry::global().series("test.reg.zz", 500.0);
    TimeSeriesRegistry::global().series("test.reg.mm", 500.0);
    const auto snaps = TimeSeriesRegistry::global().snapshotAll();
    ASSERT_GE(snaps.size(), 2u);
    for (size_t i = 1; i < snaps.size(); ++i)
        EXPECT_LE(snaps[i - 1].name, snaps[i].name);
}

TEST(BurnRate, FiresOnlyWhenBothWindowsBurn)
{
    BurnRateConfig config;
    config.sloTarget = 0.9; // error budget: 10% misses
    config.fastWindowTicks = 2;
    config.slowWindowTicks = 4;
    config.burnThreshold = 1.0;
    BurnRateEvaluator burn(config);

    // Healthy traffic: no burn.
    for (int i = 0; i < 4; ++i) {
        const auto eval = burn.update(100, 100);
        EXPECT_FALSE(eval.firing);
        EXPECT_DOUBLE_EQ(eval.fastBurn, 0.0);
    }

    // One bad window: fast window burns, slow window still diluted by
    // three healthy windows -> (25 bad / 400 total) / 0.1 < 1.
    auto eval = burn.update(75, 100);
    EXPECT_GT(eval.fastBurn, 1.0);
    EXPECT_LT(eval.slowBurn, 1.0);
    EXPECT_FALSE(eval.firing);
    EXPECT_FALSE(eval.fired);

    // Sustained burn: both windows cross the threshold -> one fired
    // edge, then steady firing.
    eval = burn.update(50, 100);
    EXPECT_TRUE(eval.firing);
    EXPECT_TRUE(eval.fired);
    eval = burn.update(50, 100);
    EXPECT_TRUE(eval.firing);
    EXPECT_FALSE(eval.fired) << "no re-fire while already firing";
    EXPECT_EQ(burn.alertsFired(), 1u);
    EXPECT_EQ(burn.ticksFiring(), 2u);

    // Recovery: the fast window clears first, and the alert resolves.
    bool resolved = false;
    for (int i = 0; i < 4 && !resolved; ++i)
        resolved = burn.update(100, 100).resolved;
    EXPECT_TRUE(resolved);
    EXPECT_FALSE(burn.firing());
    EXPECT_EQ(burn.alertsResolved(), 1u);
}

TEST(BurnRate, ZeroTrafficBurnsNothing)
{
    BurnRateConfig config;
    config.fastWindowTicks = 1;
    config.slowWindowTicks = 2;
    BurnRateEvaluator burn(config);
    for (int i = 0; i < 5; ++i) {
        const auto eval = burn.update(0, 0);
        EXPECT_FALSE(eval.firing);
        EXPECT_DOUBLE_EQ(eval.fastBurn, 0.0);
        EXPECT_DOUBLE_EQ(eval.slowBurn, 0.0);
    }
}

TEST(BurnRate, TotalFailureBurnsAtFullRate)
{
    BurnRateConfig config;
    config.sloTarget = 0.95;
    config.fastWindowTicks = 1;
    config.slowWindowTicks = 1;
    BurnRateEvaluator burn(config);
    const auto eval = burn.update(0, 100);
    // All traffic failing burns budget at 1/(1-0.95) = 20x.
    EXPECT_NEAR(eval.fastBurn, 20.0, 1e-9);
    EXPECT_TRUE(eval.firing);
}

} // namespace
} // namespace anaheim::obs

/**
 * @file
 * Metrics-registry tests: find-or-create identity, counter/gauge/
 * histogram arithmetic, kind-mismatch rejection, snapshot ordering,
 * and concurrent updates from many threads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "support/error_matchers.h"

namespace anaheim::obs {
namespace {

TEST(Metrics, CounterFindOrCreateReturnsSameInstrument)
{
    Counter &a = MetricsRegistry::global().counter("test.metrics.c1");
    Counter &b = MetricsRegistry::global().counter("test.metrics.c1");
    EXPECT_EQ(&a, &b);
    a.reset();
    a.add();
    a.add(9);
    EXPECT_EQ(b.value(), 10u);
}

TEST(Metrics, GaugeSetAndAdd)
{
    Gauge &gauge = MetricsRegistry::global().gauge("test.metrics.g1");
    gauge.set(2.5);
    gauge.add(1.25);
    EXPECT_DOUBLE_EQ(gauge.value(), 3.75);
    gauge.reset();
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(Metrics, HistogramBucketsAndOverflow)
{
    Histogram &hist = MetricsRegistry::global().histogram(
        "test.metrics.h1", {1.0, 10.0, 100.0});
    hist.reset();
    hist.observe(0.5);   // <= 1
    hist.observe(1.0);   // <= 1 (bounds are inclusive)
    hist.observe(5.0);   // <= 10
    hist.observe(500.0); // overflow
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_DOUBLE_EQ(hist.sum(), 506.5);
    const auto counts = hist.bucketCounts();
    ASSERT_EQ(counts.size(), 4u); // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(counts[3], 1u);
}

TEST(Metrics, KindMismatchRaises)
{
    MetricsRegistry::global().counter("test.metrics.kind");
    EXPECT_ANAHEIM_ERROR(MetricsRegistry::global().gauge(
                             "test.metrics.kind"),
                         InvalidArgument, "test.metrics.kind");
}

TEST(Metrics, SnapshotIsSortedAndFindable)
{
    MetricsRegistry::global().counter("test.metrics.zz").add(7);
    MetricsRegistry::global().gauge("test.metrics.aa").set(1.5);

    const MetricsSnapshot snapshot = MetricsRegistry::global().snapshot();
    ASSERT_GE(snapshot.entries.size(), 2u);
    for (size_t i = 1; i < snapshot.entries.size(); ++i) {
        EXPECT_LT(snapshot.entries[i - 1].name, snapshot.entries[i].name);
    }
    const MetricsSnapshot::Entry *entry =
        snapshot.find("test.metrics.aa");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->kind, "gauge");
    EXPECT_DOUBLE_EQ(entry->value, 1.5);
    EXPECT_EQ(snapshot.find("test.metrics.nonexistent"), nullptr);
}

TEST(Metrics, ConcurrentCounterAddsAreLossless)
{
    Counter &counter =
        MetricsRegistry::global().counter("test.metrics.mt");
    counter.reset();
    constexpr int kThreads = 8;
    constexpr int kAddsPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (int i = 0; i < kAddsPerThread; ++i)
                counter.add();
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(),
              static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(Metrics, HistogramDropsNonFiniteAndCountsThem)
{
    Counter &dropped =
        MetricsRegistry::global().counter("obs.dropped_samples");
    const uint64_t droppedBefore = dropped.value();
    Histogram &hist = MetricsRegistry::global().histogram(
        "test.metrics.nonfinite", {1.0, 10.0});
    hist.reset();
    hist.observe(std::numeric_limits<double>::quiet_NaN());
    hist.observe(std::numeric_limits<double>::infinity());
    hist.observe(-std::numeric_limits<double>::infinity());
    hist.observe(5.0);
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_DOUBLE_EQ(hist.sum(), 5.0);
    EXPECT_EQ(dropped.value(), droppedBefore + 3);
}

TEST(Metrics, HistogramCountMatchesBucketsUnderConcurrentResets)
{
    // count() derives from the same bucket array snapshot() reads, so
    // even with reset() racing observe() every view stays internally
    // consistent: count == sum of bucket counts, never a mix of
    // pre-reset buckets with a post-reset total.
    Histogram &hist = MetricsRegistry::global().histogram(
        "test.metrics.race", {1.0, 10.0, 100.0});
    hist.reset();
    std::atomic<bool> stop{false};
    std::thread observer([&] {
        int i = 0;
        while (!stop.load(std::memory_order_relaxed))
            hist.observe(static_cast<double>(++i % 200));
    });
    std::thread resetter([&] {
        for (int i = 0; i < 100; ++i)
            hist.reset();
    });
    for (int i = 0; i < 200; ++i) {
        const auto counts = hist.bucketCounts();
        uint64_t total = 0;
        for (uint64_t c : counts)
            total += c;
        // A bucketCounts() view must never imply more samples than the
        // histogram has seen in total since the last racing reset; the
        // derived count() is the same sum, so they agree by
        // construction.
        EXPECT_EQ(counts.size(), 4u);
        EXPECT_LE(total, hist.count() + 200u);
    }
    resetter.join();
    stop.store(true, std::memory_order_relaxed);
    observer.join();
    hist.reset();
    hist.observe(2.0);
    EXPECT_EQ(hist.count(), 1u);
}

TEST(Metrics, ResetAllZeroesButKeepsInstruments)
{
    Counter &counter =
        MetricsRegistry::global().counter("test.metrics.reset");
    counter.add(5);
    const size_t before = MetricsRegistry::global().size();
    MetricsRegistry::global().resetAll();
    EXPECT_EQ(MetricsRegistry::global().size(), before);
    EXPECT_EQ(counter.value(), 0u); // same instrument, zeroed
}

} // namespace
} // namespace anaheim::obs

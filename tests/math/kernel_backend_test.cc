/**
 * @file
 * Backend-equivalence matrix: every kernel backend compiled into this
 * binary must be bitwise identical to the division-based reference
 * oracle, across every context-grade prime size and every degree the
 * library accepts, in both transform directions.
 *
 * The matrix runs three ways in CI (see tests/CMakeLists.txt):
 *   - plain: runtime CPUID dispatch picks the widest backend;
 *   - ANAHEIM_NTT_BACKEND=scalar: env override pins the scalar lanes;
 *   - ANAHEIM_NTT_REFERENCE=1: the oracle itself is forced, so the
 *     "lazy" entry points must route through it and trivially agree.
 * The per-backend loops below additionally pin each compiled backend
 * programmatically via setBackend(), so one run of the plain binary
 * still covers scalar, AVX2, and AVX-512 wherever the host CPU allows.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "math/kernels.h"
#include "math/modarith.h"
#include "math/ntt.h"
#include "math/primes.h"

namespace anaheim {
namespace {

using kernels::Backend;

/** Context-grade prime sizes: smallest NTT-friendly, the 40-bit scale
 *  primes, the ~50-bit first primes, and the largest the lazy kernels
 *  accept (59-bit boundary, q < kLazyModulusBound). A degree-n prime
 *  needs q ≡ 1 (mod 2n); 30-bit primes exist for every n tested. */
constexpr int kPrimeBits[] = {30, 40, 50, 59};

class KernelBackendMatrix : public ::testing::Test
{
  protected:
    void TearDown() override { kernels::resetBackend(); }
};

/** Runnable backends compiled into this binary (CPUID-filtered). */
std::vector<const kernels::KernelOps *>
runnableBackends()
{
    std::vector<const kernels::KernelOps *> out;
    for (const kernels::KernelOps *ops : kernels::compiledBackends()) {
        if (kernels::cpuSupports(ops->backend))
            out.push_back(ops);
    }
    return out;
}

TEST_F(KernelBackendMatrix, TransformsBitwiseMatchReferenceEverywhere)
{
    for (size_t n = 4; n <= 4096; n *= 2) {
        for (const int bits : kPrimeBits) {
            const auto primes = generateNttPrimes(n, bits, 1);
            ASSERT_FALSE(primes.empty()) << "no " << bits
                                         << "-bit prime for n=" << n;
            const uint64_t q = primes[0];
            if (q >= NttTable::kLazyModulusBound)
                continue;
            const auto table = NttTable::shared(q, n);

            Rng rng(n * 1000 + static_cast<size_t>(bits));
            const CoeffVector input = sampleUniform(rng, n, q);

            // Oracle: division-based reference, both directions.
            CoeffVector refFwd = input;
            table->forwardReference(refFwd.data());
            CoeffVector refRound = refFwd;
            table->inverseReference(refRound.data());
            ASSERT_EQ(refRound, input)
                << "reference roundtrip broken at n=" << n;

            for (const kernels::KernelOps *ops : runnableBackends()) {
                ASSERT_TRUE(kernels::setBackend(ops->backend));
                CoeffVector fwd = input;
                table->forwardLazy(fwd.data());
                EXPECT_EQ(fwd, refFwd)
                    << ops->name << " forward diverges from reference "
                    << "at n=" << n << " q=" << q << " (" << bits
                    << "-bit)";
                CoeffVector inv = fwd;
                table->inverseLazy(inv.data());
                EXPECT_EQ(inv, input)
                    << ops->name << " inverse diverges from reference "
                    << "at n=" << n << " q=" << q << " (" << bits
                    << "-bit)";
            }
        }
    }
}

TEST_F(KernelBackendMatrix, DispatchedEntryPointsMatchReference)
{
    // Whatever dispatch resolves to right now — CPUID best, an env
    // override, or the forced oracle — forward()/inverse() must equal
    // the reference bit for bit. This is the body the env-variant ctest
    // entries (ANAHEIM_NTT_BACKEND=scalar, ANAHEIM_NTT_REFERENCE=1)
    // exercise without any programmatic override.
    for (size_t n : {size_t{8}, size_t{256}, size_t{4096}}) {
        const uint64_t q = generateNttPrimes(n, 40, 1)[0];
        const auto table = NttTable::shared(q, n);
        Rng rng(n);
        const CoeffVector input = sampleUniform(rng, n, q);

        CoeffVector ref = input;
        table->forwardReference(ref.data());
        CoeffVector got = input;
        table->forward(got.data());
        EXPECT_EQ(got, ref) << "dispatched forward at n=" << n;

        table->inverseReference(ref.data());
        table->inverse(got.data());
        EXPECT_EQ(got, ref) << "dispatched inverse at n=" << n;
        EXPECT_EQ(got, input) << "dispatched roundtrip at n=" << n;
    }
}

TEST_F(KernelBackendMatrix, ElementWiseOpsMatchScalarBackend)
{
    // The element-wise kernel paths (Shoup/Barrett/add/sub/neg) must
    // agree across backends too — they share the approximate-quotient
    // trick with the transforms.
    const size_t n = 1031; // odd: exercises every vector tail path
    const uint64_t q = generateNttPrimes(2048, 50, 1)[0];
    Rng rng(7);
    const CoeffVector a = sampleUniform(rng, n, q);
    const CoeffVector b = sampleUniform(rng, n, q);
    const uint64_t w = rng.uniform(q);
    const ShoupMul prepared(w, q);
    const Barrett br(q);

    // Random gather permutation with negation bits for permuteNeg —
    // indices may repeat (the kernel contract is a plain gather), and
    // a sprinkle of zero sources exercises the -0 == 0 fold.
    std::vector<uint64_t> idx(n);
    CoeffVector srcWithZeros = a;
    for (size_t i = 0; i < n; ++i) {
        idx[i] = rng.uniform(n);
        if (rng.uniform(2) == 1)
            idx[i] |= kernels::kPermuteNegBit;
        if (rng.uniform(16) == 0)
            srcWithZeros[i] = 0;
    }

    const kernels::KernelOps &scalar = kernels::scalarOps();
    auto runAll = [&](const kernels::KernelOps &ops) {
        std::vector<CoeffVector> out;
        CoeffVector t(n);
        ops.mulShoup(t.data(), a.data(), n, prepared.operand(),
                     prepared.precon(), q);
        out.push_back(t);
        t = b;
        ops.mulShoupAcc(t.data(), a.data(), n, prepared.operand(),
                        prepared.precon(), q);
        out.push_back(t);
        ops.subMulShoup(t.data(), a.data(), b.data(), n,
                        prepared.operand(), prepared.precon(), q);
        out.push_back(t);
        ops.addMod(t.data(), a.data(), b.data(), n, q);
        out.push_back(t);
        ops.subMod(t.data(), a.data(), b.data(), n, q);
        out.push_back(t);
        ops.negMod(t.data(), a.data(), n, q);
        out.push_back(t);
        ops.mulBarrett(t.data(), a.data(), b.data(), n, br);
        out.push_back(t);
        t = b;
        ops.macBarrett(t.data(), a.data(), a.data(), n, br);
        out.push_back(t);
        ops.permuteNeg(t.data(), srcWithZeros.data(), idx.data(), n, q);
        out.push_back(t);
        return out;
    };

    const auto expect = runAll(scalar);
    for (const kernels::KernelOps *ops : runnableBackends()) {
        const auto got = runAll(*ops);
        ASSERT_EQ(got.size(), expect.size());
        for (size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], expect[i])
                << ops->name << " element-wise op " << i;
    }
}

TEST_F(KernelBackendMatrix, MatrixHoldsUnderConcurrentTransforms)
{
    // The TSan leg runs this at ANAHEIM_THREADS=4: shared tables, many
    // threads transforming distinct buffers; results must stay bitwise
    // equal to the serially-computed reference.
    setParallelThreads(4);
    const size_t n = 1024;
    const uint64_t q = generateNttPrimes(n, 50, 1)[0];
    const auto table = NttTable::shared(q, n);

    constexpr size_t kJobs = 32;
    std::vector<CoeffVector> inputs(kJobs), outputs(kJobs);
    std::vector<CoeffVector> expected(kJobs);
    for (size_t j = 0; j < kJobs; ++j) {
        Rng rng(j + 1);
        inputs[j] = sampleUniform(rng, n, q);
        expected[j] = inputs[j];
        table->forwardReference(expected[j].data());
        outputs[j] = inputs[j];
    }
    parallelFor(0, kJobs, [&](size_t j) {
        table->forwardLazy(outputs[j].data());
    });
    for (size_t j = 0; j < kJobs; ++j)
        EXPECT_EQ(outputs[j], expected[j]) << "job " << j;

    parallelFor(0, kJobs, [&](size_t j) {
        table->inverseLazy(outputs[j].data());
    });
    for (size_t j = 0; j < kJobs; ++j)
        EXPECT_EQ(outputs[j], inputs[j]) << "job " << j << " roundtrip";
    setParallelThreads(defaultThreadCount());
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/parallel.h"
#include "common/rng.h"
#include "math/kernels.h"
#include "math/modarith.h"
#include "math/ntt.h"
#include "math/primes.h"
#include "support/error_matchers.h"

namespace anaheim {
namespace {

/** Primes across every bit width a context can request, per degree. */
std::vector<uint64_t>
contextGradePrimes(size_t n)
{
    std::vector<uint64_t> primes;
    for (unsigned bits : {28, 30, 40, 50, 59}) {
        const auto batch = generateNttPrimes(n, bits, 1);
        primes.push_back(batch[0]);
    }
    return primes;
}

class NttTest : public ::testing::TestWithParam<size_t>
{
  protected:
    size_t n() const { return GetParam(); }
};

TEST_P(NttTest, ForwardInverseRoundTrip)
{
    const uint64_t q = generateNttPrimes(n(), 40, 1)[0];
    const NttTable table(q, n());
    Rng rng(7);
    auto data = sampleUniform(rng, n(), q);
    auto copy = data;
    table.forward(copy);
    EXPECT_NE(copy, data) << "forward NTT should change the data";
    table.inverse(copy);
    EXPECT_EQ(copy, data);
}

TEST_P(NttTest, ConvolutionTheorem)
{
    // NTT(a) .* NTT(b) == NTT(a *negacyclic* b): the property polynomial
    // multiplication in CKKS relies on.
    const uint64_t q = generateNttPrimes(n(), 40, 1)[0];
    const NttTable table(q, n());
    Rng rng(8);
    const auto a = sampleUniform(rng, n(), q);
    const auto b = sampleUniform(rng, n(), q);

    std::vector<uint64_t> expect(n(), 0);
    {
        // Reference O(N^2) negacyclic convolution.
        for (size_t i = 0; i < n(); ++i) {
            for (size_t j = 0; j < n(); ++j) {
                const uint64_t prod = mulMod(a[i], b[j], q);
                const size_t idx = i + j;
                if (idx < n())
                    expect[idx] = addMod(expect[idx], prod, q);
                else
                    expect[idx - n()] = subMod(expect[idx - n()], prod, q);
            }
        }
    }

    auto ea = a;
    auto eb = b;
    table.forward(ea);
    table.forward(eb);
    std::vector<uint64_t> prod(n());
    for (size_t i = 0; i < n(); ++i)
        prod[i] = mulMod(ea[i], eb[i], q);
    table.inverse(prod);
    EXPECT_EQ(prod, expect);
}

TEST_P(NttTest, TransformIsLinear)
{
    const uint64_t q = generateNttPrimes(n(), 30, 1)[0];
    const NttTable table(q, n());
    Rng rng(9);
    const auto a = sampleUniform(rng, n(), q);
    const auto b = sampleUniform(rng, n(), q);
    const uint64_t c = rng.uniform(q);

    CoeffVector combo(n());
    for (size_t i = 0; i < n(); ++i)
        combo[i] = addMod(mulMod(c, a[i], q), b[i], q);

    auto ea = a, eb = b, ecombo = combo;
    table.forward(ea);
    table.forward(eb);
    table.forward(ecombo);
    for (size_t i = 0; i < n(); ++i)
        EXPECT_EQ(ecombo[i], addMod(mulMod(c, ea[i], q), eb[i], q));
}

TEST_P(NttTest, EvalExponentsAreConsistent)
{
    // Slot j must hold the evaluation of the input at psi^{e_j}; verify
    // against a direct evaluation for random polynomials.
    const uint64_t q = generateNttPrimes(n(), 30, 1)[0];
    const NttTable table(q, n());
    const uint64_t psi = findPrimitiveRoot(q, n());
    Rng rng(10);
    const auto a = sampleUniform(rng, n(), q);
    auto ea = a;
    table.forward(ea);
    const auto &exps = table.evalExponents();
    for (size_t j = 0; j < n(); j += std::max<size_t>(1, n() / 16)) {
        const uint64_t point = powMod(psi, exps[j], q);
        uint64_t value = 0;
        uint64_t power = 1;
        for (size_t i = 0; i < n(); ++i) {
            value = addMod(value, mulMod(a[i], power, q), q);
            power = mulMod(power, point, q);
        }
        EXPECT_EQ(ea[j], value) << "slot " << j;
    }
}

TEST_P(NttTest, ExponentMapIsABijection)
{
    const uint64_t q = generateNttPrimes(n(), 30, 1)[0];
    const NttTable table(q, n());
    const auto &exps = table.evalExponents();
    const auto &slots = table.slotOfExponent();
    std::vector<bool> seen(2 * n(), false);
    for (size_t j = 0; j < n(); ++j) {
        EXPECT_EQ(exps[j] % 2, 1u) << "even exponent";
        EXPECT_FALSE(seen[exps[j]]) << "duplicate exponent";
        seen[exps[j]] = true;
        EXPECT_EQ(slots[exps[j]], static_cast<int32_t>(j));
    }
}

TEST_P(NttTest, LazyKernelsMatchReferenceBitwise)
{
    // The tentpole invariant: for every context-grade prime, the Harvey
    // lazy-reduction kernels and the division-based reference kernels
    // produce bit-identical outputs, in both directions, including when
    // chained (forward then inverse on the lazy path).
    // Under ANAHEIM_NTT_REFERENCE or ANAHEIM_NTT_BACKEND=reference the
    // default dispatch goes to the oracle, but the lazy kernels
    // themselves stay testable directly.
    const bool refForced = kernels::nttReferenceForced();
    for (uint64_t q : contextGradePrimes(n())) {
        const NttTable table(q, n());
        ASSERT_EQ(table.usesLazyKernels(), !refForced) << "q=" << q;
        Rng rng(q ^ n());
        for (int rep = 0; rep < 4; ++rep) {
            const auto data = sampleUniform(rng, n(), q);

            auto lazyFwd = data;
            auto refFwd = data;
            table.forwardLazy(lazyFwd.data());
            table.forwardReference(refFwd.data());
            EXPECT_EQ(lazyFwd, refFwd) << "forward, q=" << q;

            auto lazyInv = data;
            auto refInv = data;
            table.inverseLazy(lazyInv.data());
            table.inverseReference(refInv.data());
            EXPECT_EQ(lazyInv, refInv) << "inverse, q=" << q;

            auto roundTrip = data;
            table.forwardLazy(roundTrip.data());
            table.inverseLazy(roundTrip.data());
            EXPECT_EQ(roundTrip, data) << "round trip, q=" << q;
        }
    }
}

TEST_P(NttTest, LazyKernelsMatchReferenceUnderThreads)
{
    // Same identity with limb-level parallelism on top: one task per
    // prime at 4 threads, mirroring how Polynomial::toEval dispatches.
    const auto primes = contextGradePrimes(n());
    std::vector<CoeffVector> lazyOut(primes.size());
    std::vector<CoeffVector> refOut(primes.size());
    for (size_t i = 0; i < primes.size(); ++i) {
        Rng rng(primes[i] + i);
        lazyOut[i] = sampleUniform(rng, n(), primes[i]);
        refOut[i] = lazyOut[i];
    }
    setParallelThreads(4);
    parallelFor(0, primes.size(), [&](size_t i) {
        const NttTable &table = *NttTable::shared(primes[i], n());
        table.forwardLazy(lazyOut[i].data());
        table.inverseLazy(lazyOut[i].data());
        table.forwardLazy(lazyOut[i].data());
    });
    setParallelThreads(1);
    for (size_t i = 0; i < primes.size(); ++i) {
        const NttTable &table = *NttTable::shared(primes[i], n());
        table.forwardReference(refOut[i].data());
        table.inverseReference(refOut[i].data());
        table.forwardReference(refOut[i].data());
        EXPECT_EQ(lazyOut[i], refOut[i]) << "prime " << primes[i];
    }
    setParallelThreads(defaultThreadCount());
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttTest,
                         ::testing::Values<size_t>(4, 16, 64, 256, 1024,
                                                   4096));

TEST(NttTable, SharedCacheReturnsOneInstancePerKey)
{
    const size_t n = 64;
    // Generated against 2N so the same prime is NTT-friendly for both
    // degrees the test builds tables at.
    const uint64_t q = generateNttPrimes(2 * n, 30, 1)[0];
    const auto a = NttTable::shared(q, n);
    const auto b = NttTable::shared(q, n);
    EXPECT_EQ(a.get(), b.get()) << "same (q, n) must share one table";
    const auto c = NttTable::shared(q, 2 * n);
    EXPECT_NE(a.get(), c.get());
    const uint64_t q2 = generateNttPrimes(n, 31, 1)[0];
    const auto d = NttTable::shared(q2, n);
    EXPECT_NE(a.get(), d.get());
    EXPECT_EQ(a->modulus(), q);
    EXPECT_EQ(a->degree(), n);
}

TEST(NttTable, SharedCacheConcurrentLookupBuildsOnce)
{
    // Concurrent first lookups of the same (q, n) keys must build each
    // table exactly once and never tear the cache (TSan covers the
    // mutex/future discipline when this runs under the tsan build).
    NttTable::clearShared();
    const size_t n = 512;
    const auto primes = generateNttPrimes(n, 40, 6);
    setParallelThreads(4);
    std::vector<std::shared_ptr<const NttTable>> got(4 * primes.size());
    parallelFor(0, got.size(), [&](size_t i) {
        got[i] = NttTable::shared(primes[i % primes.size()], n);
    });
    setParallelThreads(defaultThreadCount());
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_NE(got[i], nullptr);
        EXPECT_EQ(got[i].get(), got[i % primes.size()].get())
            << "same key must resolve to one instance, i=" << i;
    }
    EXPECT_EQ(NttTable::sharedCacheSize(), primes.size());
}

TEST(NttTable, SharedCacheBoundsGrowthAndSupportsClear)
{
    // Sweeping more keys than the capacity must not grow the cache
    // without bound: the least recently used entries are recycled, and
    // evicted tables stay alive through outstanding shared_ptrs.
    NttTable::clearShared();
    const size_t n = 32;
    const auto primes =
        generateNttPrimes(n, 30, NttTable::kSharedCacheCapacity + 8);
    const auto first = NttTable::shared(primes[0], n);
    for (uint64_t q : primes)
        (void)NttTable::shared(q, n);
    EXPECT_LE(NttTable::sharedCacheSize(), NttTable::kSharedCacheCapacity);
    // primes[0] was the least recently used entry, so the sweep evicted
    // it; a fresh lookup rebuilds while the old instance stays valid.
    const auto rebuilt = NttTable::shared(primes[0], n);
    EXPECT_NE(first.get(), rebuilt.get());
    EXPECT_EQ(first->modulus(), rebuilt->modulus());
    NttTable::clearShared();
    EXPECT_EQ(NttTable::sharedCacheSize(), 0u);
    EXPECT_EQ(first->degree(), n) << "evicted table must remain usable";
}

TEST(NttTable, LazyGatingBoundaryPrimes)
{
    // Satellite audit of the q < 2^59 gate: the largest NTT-friendly
    // prime below the bound must take the lazy kernels and match the
    // oracle bitwise (its 4q is the closest any admitted modulus gets
    // to the 64-bit edge: 4q < 2^61); the smallest prime above must
    // fall back to the reference kernels and still round-trip.
    const size_t n = 256;
    uint64_t below = NttTable::kLazyModulusBound + 1 - 2 * n;
    while (!isPrime(below))
        below -= 2 * n; // keeps q == 1 (mod 2N)
    ASSERT_LT(below, NttTable::kLazyModulusBound);
    const NttTable lazyTable(below, n);
    if (!kernels::nttReferenceForced()) {
        EXPECT_TRUE(lazyTable.usesLazyKernels());
    }
    Rng rng(13);
    const auto data = sampleUniform(rng, n, below);
    auto lazy = data, ref = data;
    lazyTable.forwardLazy(lazy.data());
    lazyTable.forwardReference(ref.data());
    EXPECT_EQ(lazy, ref) << "forward at boundary prime " << below;
    lazy = data;
    ref = data;
    lazyTable.inverseLazy(lazy.data());
    lazyTable.inverseReference(ref.data());
    EXPECT_EQ(lazy, ref) << "inverse at boundary prime " << below;
    // Worst-case magnitudes: every coefficient at q-1.
    std::vector<uint64_t> maxed(n, below - 1);
    auto maxedRef = maxed;
    lazyTable.forwardLazy(maxed.data());
    lazyTable.forwardReference(maxedRef.data());
    EXPECT_EQ(maxed, maxedRef);

    uint64_t above = NttTable::kLazyModulusBound + 1;
    while (above % (2 * n) != 1 || !isPrime(above))
        above += 2;
    const NttTable refTable(above, n);
    EXPECT_FALSE(refTable.usesLazyKernels());
    auto copy = data;
    refTable.forward(copy.data());
    refTable.inverse(copy.data());
    EXPECT_EQ(copy, data);

    // And the widest primes the generator can emit (59 "bits" caps at
    // values below 2^59) must be admitted by the gate.
    for (uint64_t q : generateNttPrimes(n, 59, 2)) {
        ASSERT_LT(q, NttTable::kLazyModulusBound);
        EXPECT_TRUE(NttTable(q, n).usesLazyKernels() ||
                    kernels::nttReferenceForced());
    }
}

TEST(NttTable, LargeModulusFallsBackToReferenceKernels)
{
    // The lazy kernels are gated at q < 2^59; a larger NTT-friendly
    // prime must still transform correctly through the reference path.
    const size_t n = 64;
    uint64_t q = (uint64_t{1} << 59) + 1;
    while (q % (2 * n) != 1 || !isPrime(q))
        q += 2;
    ASSERT_GE(q, NttTable::kLazyModulusBound);
    const NttTable table(q, n);
    EXPECT_FALSE(table.usesLazyKernels());
    Rng rng(12);
    const auto data = sampleUniform(rng, n, q);
    auto copy = data;
    table.forward(copy);
    table.inverse(copy);
    EXPECT_EQ(copy, data);
}

// Reference negacyclic square of small signed coefficients mod q.
std::vector<uint64_t>
negaRef(const std::vector<int64_t> &a, uint64_t q, size_t n)
{
    std::vector<int64_t> wide(n, 0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            const int64_t prod = a[i] * a[j];
            const size_t idx = i + j;
            if (idx < n)
                wide[idx] += prod;
            else
                wide[idx - n] -= prod;
        }
    }
    std::vector<uint64_t> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = fromSigned(wide[i], q);
    return out;
}

TEST(Ntt, MultiPrimeAgreement)
{
    // The same integer polynomial transformed under several primes must
    // stay CRT-consistent after pointwise squaring.
    const size_t n = 128;
    const auto primes = generateNttPrimes(n, 30, 3);
    std::vector<int64_t> smallCoeffs(n);
    Rng rng(11);
    for (auto &c : smallCoeffs)
        c = static_cast<int64_t>(rng.uniform(1000)) - 500;

    for (uint64_t q : primes) {
        const NttTable table(q, n);
        std::vector<uint64_t> data(n);
        for (size_t i = 0; i < n; ++i)
            data[i] = fromSigned(smallCoeffs[i], q);
        const auto expect = negaRef(smallCoeffs, q, n);
        table.forward(data);
        for (auto &v : data)
            v = mulMod(v, v, q);
        table.inverse(data);
        EXPECT_EQ(data, expect) << "prime " << q;
    }
}

TEST(NttTableValidationTest, RejectsBadParametersAtBuild)
{
    // Non-power-of-two ring degrees fail at table build with a clear
    // message instead of producing garbage transforms.
    EXPECT_ANAHEIM_ERROR(NttTable(97, 12), InvalidArgument,
                         "power of two");
    EXPECT_ANAHEIM_ERROR(NttTable(97, 0), InvalidArgument,
                         "power of two");
    // 97 == 1 (mod 32) fails for N = 64 (needs q == 1 mod 128).
    EXPECT_ANAHEIM_ERROR(NttTable(97, 64), InvalidArgument,
                         "q == 1 (mod 2N)");
    // Even or tiny moduli are rejected before the root search.
    EXPECT_ANAHEIM_ERROR(NttTable(256, 16), InvalidArgument,
                         "odd prime");
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"
#include "math/ntt.h"
#include "math/primes.h"
#include "support/error_matchers.h"

namespace anaheim {
namespace {

class NttTest : public ::testing::TestWithParam<size_t>
{
  protected:
    size_t n() const { return GetParam(); }
};

TEST_P(NttTest, ForwardInverseRoundTrip)
{
    const uint64_t q = generateNttPrimes(n(), 40, 1)[0];
    const NttTable table(q, n());
    Rng rng(7);
    auto data = sampleUniform(rng, n(), q);
    auto copy = data;
    table.forward(copy);
    EXPECT_NE(copy, data) << "forward NTT should change the data";
    table.inverse(copy);
    EXPECT_EQ(copy, data);
}

TEST_P(NttTest, ConvolutionTheorem)
{
    // NTT(a) .* NTT(b) == NTT(a *negacyclic* b): the property polynomial
    // multiplication in CKKS relies on.
    const uint64_t q = generateNttPrimes(n(), 40, 1)[0];
    const NttTable table(q, n());
    Rng rng(8);
    const auto a = sampleUniform(rng, n(), q);
    const auto b = sampleUniform(rng, n(), q);

    std::vector<uint64_t> expect(n(), 0);
    {
        // Reference O(N^2) negacyclic convolution.
        for (size_t i = 0; i < n(); ++i) {
            for (size_t j = 0; j < n(); ++j) {
                const uint64_t prod = mulMod(a[i], b[j], q);
                const size_t idx = i + j;
                if (idx < n())
                    expect[idx] = addMod(expect[idx], prod, q);
                else
                    expect[idx - n()] = subMod(expect[idx - n()], prod, q);
            }
        }
    }

    auto ea = a;
    auto eb = b;
    table.forward(ea);
    table.forward(eb);
    std::vector<uint64_t> prod(n());
    for (size_t i = 0; i < n(); ++i)
        prod[i] = mulMod(ea[i], eb[i], q);
    table.inverse(prod);
    EXPECT_EQ(prod, expect);
}

TEST_P(NttTest, TransformIsLinear)
{
    const uint64_t q = generateNttPrimes(n(), 30, 1)[0];
    const NttTable table(q, n());
    Rng rng(9);
    const auto a = sampleUniform(rng, n(), q);
    const auto b = sampleUniform(rng, n(), q);
    const uint64_t c = rng.uniform(q);

    std::vector<uint64_t> combo(n());
    for (size_t i = 0; i < n(); ++i)
        combo[i] = addMod(mulMod(c, a[i], q), b[i], q);

    auto ea = a, eb = b, ecombo = combo;
    table.forward(ea);
    table.forward(eb);
    table.forward(ecombo);
    for (size_t i = 0; i < n(); ++i)
        EXPECT_EQ(ecombo[i], addMod(mulMod(c, ea[i], q), eb[i], q));
}

TEST_P(NttTest, EvalExponentsAreConsistent)
{
    // Slot j must hold the evaluation of the input at psi^{e_j}; verify
    // against a direct evaluation for random polynomials.
    const uint64_t q = generateNttPrimes(n(), 30, 1)[0];
    const NttTable table(q, n());
    const uint64_t psi = findPrimitiveRoot(q, n());
    Rng rng(10);
    const auto a = sampleUniform(rng, n(), q);
    auto ea = a;
    table.forward(ea);
    const auto &exps = table.evalExponents();
    for (size_t j = 0; j < n(); j += std::max<size_t>(1, n() / 16)) {
        const uint64_t point = powMod(psi, exps[j], q);
        uint64_t value = 0;
        uint64_t power = 1;
        for (size_t i = 0; i < n(); ++i) {
            value = addMod(value, mulMod(a[i], power, q), q);
            power = mulMod(power, point, q);
        }
        EXPECT_EQ(ea[j], value) << "slot " << j;
    }
}

TEST_P(NttTest, ExponentMapIsABijection)
{
    const uint64_t q = generateNttPrimes(n(), 30, 1)[0];
    const NttTable table(q, n());
    const auto &exps = table.evalExponents();
    const auto &slots = table.slotOfExponent();
    std::vector<bool> seen(2 * n(), false);
    for (size_t j = 0; j < n(); ++j) {
        EXPECT_EQ(exps[j] % 2, 1u) << "even exponent";
        EXPECT_FALSE(seen[exps[j]]) << "duplicate exponent";
        seen[exps[j]] = true;
        EXPECT_EQ(slots[exps[j]], static_cast<int32_t>(j));
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, NttTest,
                         ::testing::Values<size_t>(4, 16, 64, 256, 1024,
                                                   4096));

// Reference negacyclic square of small signed coefficients mod q.
std::vector<uint64_t>
negaRef(const std::vector<int64_t> &a, uint64_t q, size_t n)
{
    std::vector<int64_t> wide(n, 0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            const int64_t prod = a[i] * a[j];
            const size_t idx = i + j;
            if (idx < n)
                wide[idx] += prod;
            else
                wide[idx - n] -= prod;
        }
    }
    std::vector<uint64_t> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = fromSigned(wide[i], q);
    return out;
}

TEST(Ntt, MultiPrimeAgreement)
{
    // The same integer polynomial transformed under several primes must
    // stay CRT-consistent after pointwise squaring.
    const size_t n = 128;
    const auto primes = generateNttPrimes(n, 30, 3);
    std::vector<int64_t> smallCoeffs(n);
    Rng rng(11);
    for (auto &c : smallCoeffs)
        c = static_cast<int64_t>(rng.uniform(1000)) - 500;

    for (uint64_t q : primes) {
        const NttTable table(q, n);
        std::vector<uint64_t> data(n);
        for (size_t i = 0; i < n; ++i)
            data[i] = fromSigned(smallCoeffs[i], q);
        const auto expect = negaRef(smallCoeffs, q, n);
        table.forward(data);
        for (auto &v : data)
            v = mulMod(v, v, q);
        table.inverse(data);
        EXPECT_EQ(data, expect) << "prime " << q;
    }
}

TEST(NttTableValidationTest, RejectsBadParametersAtBuild)
{
    // Non-power-of-two ring degrees fail at table build with a clear
    // message instead of producing garbage transforms.
    EXPECT_ANAHEIM_ERROR(NttTable(97, 12), InvalidArgument,
                         "power of two");
    EXPECT_ANAHEIM_ERROR(NttTable(97, 0), InvalidArgument,
                         "power of two");
    // 97 == 1 (mod 32) fails for N = 64 (needs q == 1 mod 128).
    EXPECT_ANAHEIM_ERROR(NttTable(97, 64), InvalidArgument,
                         "q == 1 (mod 2N)");
    // Even or tiny moduli are rejected before the root search.
    EXPECT_ANAHEIM_ERROR(NttTable(256, 16), InvalidArgument,
                         "odd prime");
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include "math/modarith.h"
#include "math/primes.h"

namespace anaheim {
namespace {

TEST(Primes, IsPrimeKnownValues)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(97));
    EXPECT_FALSE(isPrime(1ULL << 32));
    EXPECT_TRUE(isPrime((1ULL << 61) - 1));      // Mersenne prime M61
    EXPECT_FALSE(isPrime((1ULL << 59) - 1));     // composite
    EXPECT_TRUE(isPrime(0xFFFFFFFF00000001ULL)); // Goldilocks prime
}

TEST(Primes, IsPrimeCarmichaelNumbers)
{
    // Classic Fermat pseudoprimes must be rejected.
    for (uint64_t n : {561ULL, 1105ULL, 1729ULL, 2465ULL, 6601ULL,
                       8911ULL, 825265ULL})
        EXPECT_FALSE(isPrime(n)) << n;
}

class NttPrimeGenTest
    : public ::testing::TestWithParam<std::tuple<size_t, unsigned>>
{
};

TEST_P(NttPrimeGenTest, PrimesSatisfyNttCondition)
{
    const auto [n, bits] = GetParam();
    const size_t count = 4;
    const auto primes = generateNttPrimes(n, bits, count);
    ASSERT_EQ(primes.size(), count);
    for (uint64_t q : primes) {
        EXPECT_TRUE(isPrime(q));
        EXPECT_LT(q, 1ULL << bits);
        EXPECT_GT(q, 1ULL << (bits - 1)) << "prime not near target width";
        EXPECT_EQ((q - 1) % (2 * n), 0u) << "q != 1 mod 2N";
    }
    // Distinctness.
    for (size_t i = 0; i < count; ++i)
        for (size_t j = i + 1; j < count; ++j)
            EXPECT_NE(primes[i], primes[j]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NttPrimeGenTest,
    ::testing::Combine(::testing::Values<size_t>(256, 1024, 4096, 65536),
                       ::testing::Values<unsigned>(28, 40, 50, 59)));

TEST(Primes, SkipListExcludesPrimes)
{
    const auto first = generateNttPrimes(1024, 30, 3);
    const auto second = generateNttPrimes(1024, 30, 3, first);
    for (uint64_t q : second) {
        for (uint64_t p : first)
            EXPECT_NE(q, p);
    }
}

TEST(Primes, PrimitiveRootHasExactOrder)
{
    const size_t n = 512;
    for (uint64_t q : generateNttPrimes(n, 28, 3)) {
        const uint64_t psi = findPrimitiveRoot(q, n);
        EXPECT_EQ(powMod(psi, n, q), q - 1) << "psi^N != -1";
        EXPECT_EQ(powMod(psi, 2 * n, q), 1u) << "psi^2N != 1";
    }
}

} // namespace
} // namespace anaheim

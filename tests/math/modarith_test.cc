#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"
#include "math/primes.h"

namespace anaheim {
namespace {

/** NTT primes at every bit width a context can request (28-bit PIM
 *  grade through the 59-bit generic-path ceiling). */
std::vector<uint64_t>
contextGradePrimes()
{
    std::vector<uint64_t> primes;
    for (unsigned bits : {28, 30, 40, 50, 59}) {
        const auto batch = generateNttPrimes(size_t{1} << 12, bits, 2);
        primes.insert(primes.end(), batch.begin(), batch.end());
    }
    return primes;
}

TEST(ModArith, AddSubNegBasics)
{
    const uint64_t q = 97;
    EXPECT_EQ(addMod(50, 60, q), (50 + 60) % q);
    EXPECT_EQ(addMod(96, 96, q), (96 + 96) % q);
    EXPECT_EQ(subMod(10, 20, q), (10 + q - 20) % q);
    EXPECT_EQ(subMod(20, 10, q), 10u);
    EXPECT_EQ(negMod(0, q), 0u);
    EXPECT_EQ(negMod(1, q), q - 1);
}

TEST(ModArith, MulModMatchesBigInt)
{
    Rng rng(1);
    const uint64_t q = (1ULL << 59) - 55; // any modulus < 2^63 works
    for (int i = 0; i < 1000; ++i) {
        const uint64_t a = rng.uniform(q);
        const uint64_t b = rng.uniform(q);
        const auto expect = static_cast<uint64_t>(
            static_cast<unsigned __int128>(a) * b % q);
        EXPECT_EQ(mulMod(a, b, q), expect);
    }
}

TEST(ModArith, PowModSmallCases)
{
    EXPECT_EQ(powMod(2, 10, 1000000007ULL), 1024u);
    EXPECT_EQ(powMod(3, 0, 7), 1u);
    EXPECT_EQ(powMod(5, 6, 7), 1u); // Fermat: 5^(7-1) = 1 mod 7
}

TEST(ModArith, InvModIsInverse)
{
    Rng rng(2);
    const uint64_t q = 0xFFFFFFFF00000001ULL >> 8 | 1; // arbitrary odd
    const uint64_t prime = 1000000007ULL;
    (void)q;
    for (int i = 0; i < 200; ++i) {
        const uint64_t a = 1 + rng.uniform(prime - 1);
        EXPECT_EQ(mulMod(a, invMod(a, prime), prime), 1u);
    }
}

TEST(ModArith, CenteredRoundTrip)
{
    const uint64_t q = 101;
    for (uint64_t a = 0; a < q; ++a) {
        const int64_t c = toCentered(a, q);
        EXPECT_GE(c, -static_cast<int64_t>(q) / 2);
        EXPECT_LE(c, static_cast<int64_t>(q) / 2);
        EXPECT_EQ(fromSigned(c, q), a);
    }
}

TEST(ModArith, FromSignedHandlesLargeMagnitudes)
{
    const uint64_t q = 97;
    EXPECT_EQ(fromSigned(-1, q), q - 1);
    EXPECT_EQ(fromSigned(-static_cast<int64_t>(q) * 5 - 3, q), q - 3);
    EXPECT_EQ(fromSigned(static_cast<int64_t>(q) * 7 + 3, q), 3u);
}

TEST(ShoupMul, MatchesMulModForAllContextPrimes)
{
    // The prepared-operand primitive must agree with the division-based
    // mulMod on every prime a context can hand it, for random operands
    // and the boundary values of both the multiplicand and the input.
    for (uint64_t q : contextGradePrimes()) {
        Rng rng(q);
        for (int i = 0; i < 200; ++i) {
            const uint64_t w = rng.uniform(q);
            const ShoupMul prepared(w, q);
            EXPECT_EQ(prepared.operand(), w);
            for (const uint64_t a :
                 {rng.uniform(q), uint64_t{0}, uint64_t{1}, q - 1}) {
                EXPECT_EQ(prepared.mul(a, q), mulMod(a, w, q))
                    << "a=" << a << " w=" << w << " q=" << q;
            }
        }
        // Multiplicand edges: 0, 1, q-1.
        for (const uint64_t w : {uint64_t{0}, uint64_t{1}, q - 1}) {
            const ShoupMul prepared(w, q);
            for (int i = 0; i < 50; ++i) {
                const uint64_t a = rng.uniform(q);
                EXPECT_EQ(prepared.mul(a, q), mulMod(a, w, q));
            }
        }
    }
}

TEST(ShoupMul, LazyFormIsBoundedAndCongruent)
{
    // The lazy product must stay < 2q and be congruent to a*w even for
    // unreduced inputs up to 4q — the exact contract the Harvey NTT
    // butterflies rely on.
    for (uint64_t q : contextGradePrimes()) {
        if (q >= (uint64_t{1} << 59))
            continue; // lazy form is only used below the NTT bound
        Rng rng(q + 1);
        for (int i = 0; i < 200; ++i) {
            const uint64_t w = rng.uniform(q);
            const ShoupMul prepared(w, q);
            const uint64_t a = rng.uniform(4 * q); // lazy-range input
            const uint64_t lazy = prepared.mulLazy(a, q);
            EXPECT_LT(lazy, 2 * q);
            EXPECT_EQ(lazy % q, mulMod(a % q, w, q));
            EXPECT_EQ(prepared.mul(a, q), mulMod(a % q, w, q));
        }
    }
}

TEST(ShoupMul, FreeFunctionsMatchWrapper)
{
    const uint64_t q = (1ULL << 59) - 55;
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const uint64_t w = rng.uniform(q);
        const uint64_t a = rng.uniform(q);
        const uint64_t precon = shoupPrecompute(w, q);
        const ShoupMul prepared(w, q);
        EXPECT_EQ(prepared.precon(), precon);
        EXPECT_EQ(mulModShoup(a, w, precon, q), prepared.mul(a, q));
        EXPECT_EQ(mulModShoupLazy(a, w, precon, q),
                  prepared.mulLazy(a, q));
    }
}

class BarrettParamTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BarrettParamTest, MatchesGenericMulMod)
{
    const uint64_t q = GetParam();
    const Barrett barrett(q);
    Rng rng(q);
    for (int i = 0; i < 500; ++i) {
        const uint64_t a = rng.uniform(q);
        const uint64_t b = rng.uniform(q);
        EXPECT_EQ(barrett.mulMod(a, b), mulMod(a, b, q))
            << "a=" << a << " b=" << b << " q=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Moduli, BarrettParamTest,
    ::testing::Values<uint64_t>(3, 97, (1ULL << 28) - 57,
                                (1ULL << 45) - 229, (1ULL << 59) - 55,
                                (1ULL << 61) - 1));

TEST(Barrett, ReducesFullRangeProducts)
{
    const uint64_t q = (1ULL << 61) - 1;
    const Barrett barrett(q);
    const unsigned __int128 x =
        static_cast<unsigned __int128>(q - 1) * (q - 1);
    EXPECT_EQ(barrett.reduce(x),
              static_cast<uint64_t>(x % q));
}

TEST(Barrett, OperandsNearQTimesTwoPow64)
{
    // x ~= q * 2^64 is where the quotient estimate's top-half split is
    // most stressed: xHi ~= q and the true quotient is ~2^64.
    for (const uint64_t q :
         {(1ULL << 59) - 55, (1ULL << 61) - 1, (1ULL << 62) - 57}) {
        const Barrett barrett(q);
        const unsigned __int128 pivot =
            static_cast<unsigned __int128>(q) << 64;
        for (int delta = -3; delta <= 3; ++delta) {
            const unsigned __int128 x =
                delta < 0 ? pivot - static_cast<unsigned>(-delta)
                          : pivot + static_cast<unsigned>(delta);
            EXPECT_EQ(barrett.reduce(x), static_cast<uint64_t>(x % q))
                << "q=" << q << " delta=" << delta;
        }
    }
}

TEST(Barrett, ModulusNearUpperBound)
{
    // Largest admissible modulus class (q just under 2^62): products of
    // maximal operands exercise the widest intermediate values the
    // quotient estimate ever sees.
    const uint64_t q = (1ULL << 62) - 57;
    const Barrett barrett(q);
    EXPECT_EQ(barrett.modulus(), q);
    EXPECT_EQ(barrett.mulMod(q - 1, q - 1),
              static_cast<uint64_t>(
                  static_cast<unsigned __int128>(q - 1) * (q - 1) % q));
    EXPECT_EQ(barrett.reduce(0), 0u);
    EXPECT_EQ(barrett.reduce(q), 0u);
    EXPECT_EQ(barrett.reduce(static_cast<unsigned __int128>(q) - 1),
              q - 1);
}

TEST(Barrett, RandomizedCrossCheckAgainstInt128Modulo)
{
    // Full-width random 128-bit operands (not just products of reduced
    // values) against the compiler's __int128 %.
    Rng rng(99);
    for (const uint64_t q : {3ULL, (1ULL << 28) - 57, (1ULL << 45) - 229,
                             (1ULL << 59) - 55, (1ULL << 62) - 57}) {
        const Barrett barrett(q);
        for (int i = 0; i < 2000; ++i) {
            const unsigned __int128 x =
                (static_cast<unsigned __int128>(rng.next()) << 64) |
                rng.next();
            EXPECT_EQ(barrett.reduce(x), static_cast<uint64_t>(x % q))
                << "q=" << q;
        }
    }
}

} // namespace
} // namespace anaheim

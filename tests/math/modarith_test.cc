#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"

namespace anaheim {
namespace {

TEST(ModArith, AddSubNegBasics)
{
    const uint64_t q = 97;
    EXPECT_EQ(addMod(50, 60, q), (50 + 60) % q);
    EXPECT_EQ(addMod(96, 96, q), (96 + 96) % q);
    EXPECT_EQ(subMod(10, 20, q), (10 + q - 20) % q);
    EXPECT_EQ(subMod(20, 10, q), 10u);
    EXPECT_EQ(negMod(0, q), 0u);
    EXPECT_EQ(negMod(1, q), q - 1);
}

TEST(ModArith, MulModMatchesBigInt)
{
    Rng rng(1);
    const uint64_t q = (1ULL << 59) - 55; // any modulus < 2^63 works
    for (int i = 0; i < 1000; ++i) {
        const uint64_t a = rng.uniform(q);
        const uint64_t b = rng.uniform(q);
        const auto expect = static_cast<uint64_t>(
            static_cast<unsigned __int128>(a) * b % q);
        EXPECT_EQ(mulMod(a, b, q), expect);
    }
}

TEST(ModArith, PowModSmallCases)
{
    EXPECT_EQ(powMod(2, 10, 1000000007ULL), 1024u);
    EXPECT_EQ(powMod(3, 0, 7), 1u);
    EXPECT_EQ(powMod(5, 6, 7), 1u); // Fermat: 5^(7-1) = 1 mod 7
}

TEST(ModArith, InvModIsInverse)
{
    Rng rng(2);
    const uint64_t q = 0xFFFFFFFF00000001ULL >> 8 | 1; // arbitrary odd
    const uint64_t prime = 1000000007ULL;
    (void)q;
    for (int i = 0; i < 200; ++i) {
        const uint64_t a = 1 + rng.uniform(prime - 1);
        EXPECT_EQ(mulMod(a, invMod(a, prime), prime), 1u);
    }
}

TEST(ModArith, CenteredRoundTrip)
{
    const uint64_t q = 101;
    for (uint64_t a = 0; a < q; ++a) {
        const int64_t c = toCentered(a, q);
        EXPECT_GE(c, -static_cast<int64_t>(q) / 2);
        EXPECT_LE(c, static_cast<int64_t>(q) / 2);
        EXPECT_EQ(fromSigned(c, q), a);
    }
}

TEST(ModArith, FromSignedHandlesLargeMagnitudes)
{
    const uint64_t q = 97;
    EXPECT_EQ(fromSigned(-1, q), q - 1);
    EXPECT_EQ(fromSigned(-static_cast<int64_t>(q) * 5 - 3, q), q - 3);
    EXPECT_EQ(fromSigned(static_cast<int64_t>(q) * 7 + 3, q), 3u);
}

class BarrettParamTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BarrettParamTest, MatchesGenericMulMod)
{
    const uint64_t q = GetParam();
    const Barrett barrett(q);
    Rng rng(q);
    for (int i = 0; i < 500; ++i) {
        const uint64_t a = rng.uniform(q);
        const uint64_t b = rng.uniform(q);
        EXPECT_EQ(barrett.mulMod(a, b), mulMod(a, b, q))
            << "a=" << a << " b=" << b << " q=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Moduli, BarrettParamTest,
    ::testing::Values<uint64_t>(3, 97, (1ULL << 28) - 57,
                                (1ULL << 45) - 229, (1ULL << 59) - 55,
                                (1ULL << 61) - 1));

TEST(Barrett, ReducesFullRangeProducts)
{
    const uint64_t q = (1ULL << 61) - 1;
    const Barrett barrett(q);
    const unsigned __int128 x =
        static_cast<unsigned __int128>(q - 1) * (q - 1);
    EXPECT_EQ(barrett.reduce(x),
              static_cast<uint64_t>(x % q));
}

} // namespace
} // namespace anaheim

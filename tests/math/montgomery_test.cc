#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"
#include "math/montgomery.h"
#include "math/primes.h"

namespace anaheim {
namespace {

TEST(Montgomery, RoundTripConversion)
{
    const uint64_t q = generateNttPrimes(1024, 28, 1)[0];
    const Montgomery mont(q);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const uint64_t a = rng.uniform(q);
        EXPECT_EQ(mont.fromMont(mont.toMont(a)), a);
    }
}

TEST(Montgomery, ProductMatchesGenericPath)
{
    // The PIM MMAC datapath (Montgomery, 28-bit) must agree with the
    // generic 128-bit reduction the CKKS library uses.
    const auto primes = generateNttPrimes(2048, 28, 4);
    Rng rng(4);
    for (uint64_t q : primes) {
        const Montgomery mont(q);
        for (int i = 0; i < 300; ++i) {
            const uint64_t a = rng.uniform(q);
            const uint64_t b = rng.uniform(q);
            EXPECT_EQ(mont.mulMod(a, b), mulMod(a, b, q));
        }
    }
}

TEST(Montgomery, MontgomeryFormMacChains)
{
    // Accumulating in Montgomery form (as the MMAC units do across a
    // PAccum instruction) must match plain-domain accumulation.
    const uint64_t q = generateNttPrimes(1024, 27, 1)[0];
    const Montgomery mont(q);
    Rng rng(5);
    uint64_t plainAcc = 0;
    uint32_t montAcc = 0;
    for (int i = 0; i < 64; ++i) {
        const uint64_t a = rng.uniform(q);
        const uint64_t b = rng.uniform(q);
        plainAcc = addMod(plainAcc, mulMod(a, b, q), q);
        const uint32_t prod = mont.mulMont(mont.toMont(a), mont.toMont(b));
        montAcc = static_cast<uint32_t>(
            addMod(montAcc, prod, q));
    }
    EXPECT_EQ(mont.fromMont(montAcc), plainAcc);
}

TEST(MontgomeryDeath, RejectsWideModulus)
{
    EXPECT_DEATH(Montgomery(1ULL << 29), "Montgomery modulus");
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include <cmath>

#include "math/primes.h"
#include "rns/basis.h"

namespace anaheim {
namespace {

RnsBasis
makeBasis(size_t n, size_t count, unsigned bits = 30)
{
    return RnsBasis(generateNttPrimes(n, bits, count), n);
}

TEST(RnsBasis, ConstructionBuildsTables)
{
    const auto basis = makeBasis(64, 3);
    EXPECT_EQ(basis.size(), 3u);
    EXPECT_EQ(basis.degree(), 64u);
    for (size_t i = 0; i < basis.size(); ++i) {
        EXPECT_EQ(basis.table(i).modulus(), basis.prime(i));
        EXPECT_EQ(basis.table(i).degree(), 64u);
    }
}

TEST(RnsBasis, SliceSharesTables)
{
    const auto basis = makeBasis(64, 4);
    const auto sub = basis.slice(1, 2);
    EXPECT_EQ(sub.size(), 2u);
    EXPECT_EQ(sub.prime(0), basis.prime(1));
    EXPECT_EQ(sub.prime(1), basis.prime(2));
    // Shared table objects, not copies.
    EXPECT_EQ(sub.tablePtr(0).get(), basis.tablePtr(1).get());
}

TEST(RnsBasis, ConcatPreservesOrder)
{
    const size_t n = 64;
    const auto qPrimes = generateNttPrimes(n, 30, 2);
    const auto pPrimes = generateNttPrimes(n, 30, 2, qPrimes);
    const RnsBasis q(qPrimes, n);
    const RnsBasis p(pPrimes, n);
    const auto joined = q.concat(p);
    ASSERT_EQ(joined.size(), 4u);
    EXPECT_EQ(joined.prime(0), qPrimes[0]);
    EXPECT_EQ(joined.prime(1), qPrimes[1]);
    EXPECT_EQ(joined.prime(2), pPrimes[0]);
    EXPECT_EQ(joined.prime(3), pPrimes[1]);
}

TEST(RnsBasis, LogProductAddsUp)
{
    const auto basis = makeBasis(64, 3);
    double expect = 0.0;
    for (size_t i = 0; i < basis.size(); ++i)
        expect += std::log2(static_cast<double>(basis.prime(i)));
    EXPECT_NEAR(basis.logProduct(), expect, 1e-9);
    // 3 primes just below 2^30 ⇒ log product just below 90.
    EXPECT_LT(basis.logProduct(), 90.0);
    EXPECT_GT(basis.logProduct(), 87.0);
}

} // namespace
} // namespace anaheim

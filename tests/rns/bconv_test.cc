#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"
#include "math/primes.h"
#include "rns/bconv.h"

namespace anaheim {
namespace {

// All tests use <= 4 source primes of <= 30 bits so the source product
// fits in unsigned __int128 and CRT reconstruction is exact.
struct BconvFixture {
    BconvFixture(size_t n, size_t ls, size_t lt, unsigned bits = 28)
    {
        auto qp = generateNttPrimes(n, bits, ls);
        auto pp = generateNttPrimes(n, bits, lt, qp);
        source = RnsBasis(qp, n);
        target = RnsBasis(pp, n);
    }
    RnsBasis source, target;
};

unsigned __int128
crtReconstruct(const std::vector<uint64_t> &residues, const RnsBasis &basis)
{
    // Garner-style reconstruction; product must fit in 128 bits.
    unsigned __int128 value = 0;
    unsigned __int128 modulus = 1;
    for (size_t i = 0; i < basis.size(); ++i) {
        const uint64_t q = basis.prime(i);
        const uint64_t current = static_cast<uint64_t>(value % q);
        const uint64_t modInv =
            invMod(static_cast<uint64_t>(modulus % q), q);
        const uint64_t diff = subMod(residues[i], current, q);
        const uint64_t t = mulMod(diff, modInv, q);
        value += modulus * t;
        modulus *= q;
    }
    return value;
}

TEST(BasisConverter, ScalarConversionExactOrQOverflow)
{
    BconvFixture fx(64, 3, 2);
    Rng rng(21);
    unsigned __int128 product = 1;
    for (size_t i = 0; i < fx.source.size(); ++i)
        product *= fx.source.prime(i);

    for (int trial = 0; trial < 200; ++trial) {
        // Random value below the source product.
        std::vector<uint64_t> residues(fx.source.size());
        for (size_t i = 0; i < residues.size(); ++i)
            residues[i] = rng.uniform(fx.source.prime(i));
        const unsigned __int128 value = crtReconstruct(residues, fx.source);

        BasisConverter conv(fx.source, fx.target);
        const auto out = conv.convertScalar(residues);
        // Fast BConv returns value + e*Q for a small nonnegative e < L.
        for (size_t j = 0; j < fx.target.size(); ++j) {
            const uint64_t pj = fx.target.prime(j);
            bool matched = false;
            for (unsigned e = 0; e <= fx.source.size(); ++e) {
                const uint64_t candidate = static_cast<uint64_t>(
                    (value + e * product) % pj);
                if (candidate == out[j]) {
                    matched = true;
                    break;
                }
            }
            EXPECT_TRUE(matched) << "limb " << j << " trial " << trial;
        }
    }
}

TEST(BasisConverter, OverflowMultipleIsConsistentAcrossTargetLimbs)
{
    // Fast BConv returns value + e*Q; crucially the SAME integer e must
    // apply to every target limb, otherwise the output would not
    // represent any single integer and CKKS noise analysis would break.
    BconvFixture fx(32, 3, 3);
    BasisConverter conv(fx.source, fx.target);
    unsigned __int128 product = 1;
    for (size_t i = 0; i < fx.source.size(); ++i)
        product *= fx.source.prime(i);

    Rng rng(77);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<uint64_t> residues(fx.source.size());
        for (size_t i = 0; i < residues.size(); ++i)
            residues[i] = rng.uniform(fx.source.prime(i));
        const unsigned __int128 value = crtReconstruct(residues, fx.source);
        const auto out = conv.convertScalar(residues);

        // Find e from limb 0, then require it to explain every limb.
        int foundE = -1;
        for (unsigned e = 0; e <= fx.source.size(); ++e) {
            if (static_cast<uint64_t>(
                    (value + e * product) % fx.target.prime(0)) == out[0]) {
                foundE = static_cast<int>(e);
                break;
            }
        }
        ASSERT_GE(foundE, 0) << "no overflow multiple explains limb 0";
        for (size_t j = 1; j < fx.target.size(); ++j) {
            EXPECT_EQ(out[j],
                      static_cast<uint64_t>((value + foundE * product) %
                                            fx.target.prime(j)))
                << "limb " << j << " disagrees on e=" << foundE;
        }
    }
}

TEST(BasisConverter, ZeroConvertsToZero)
{
    BconvFixture fx(32, 3, 3);
    BasisConverter conv(fx.source, fx.target);
    const std::vector<uint64_t> residues(fx.source.size(), 0);
    const auto out = conv.convertScalar(residues);
    for (uint64_t limb : out)
        EXPECT_EQ(limb, 0u);
}

TEST(BasisConverter, VectorPathMatchesScalarPath)
{
    BconvFixture fx(16, 2, 3);
    BasisConverter conv(fx.source, fx.target);
    Rng rng(22);
    const size_t n = 16;
    std::vector<CoeffVector> input(fx.source.size());
    for (size_t i = 0; i < input.size(); ++i)
        input[i] = sampleUniform(rng, n, fx.source.prime(i));

    const auto out = conv.convert(input);
    ASSERT_EQ(out.size(), fx.target.size());
    for (size_t c = 0; c < n; ++c) {
        std::vector<uint64_t> residues(fx.source.size());
        for (size_t i = 0; i < residues.size(); ++i)
            residues[i] = input[i][c];
        const auto scalar = conv.convertScalar(residues);
        for (size_t j = 0; j < out.size(); ++j)
            EXPECT_EQ(out[j][c], scalar[j]) << "coeff " << c;
    }
}

class BconvShapeTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(BconvShapeTest, OutputShapeMatchesTarget)
{
    const auto [ls, lt] = GetParam();
    BconvFixture fx(32, ls, lt);
    BasisConverter conv(fx.source, fx.target);
    std::vector<CoeffVector> input(ls, CoeffVector(32, 7));
    const auto out = conv.convert(input);
    EXPECT_EQ(out.size(), lt);
    for (const auto &limb : out)
        EXPECT_EQ(limb.size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BconvShapeTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{1, 4},
                      std::pair<size_t, size_t>{4, 1},
                      std::pair<size_t, size_t>{2, 3},
                      std::pair<size_t, size_t>{4, 4}));

} // namespace
} // namespace anaheim

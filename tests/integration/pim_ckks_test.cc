/**
 * Integration tests: the bit-exact PIM functional unit (28-bit
 * Montgomery MMAC lanes) executing real CKKS kernels must produce
 * exactly what the CPU library computes — the property that makes PIM
 * offloading transparent to the programmer (§V-C).
 */

#include <gtest/gtest.h>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "common/rng.h"
#include "math/modarith.h"
#include "pim/functional.h"

namespace anaheim {
namespace {

/** CKKS parameters whose primes all fit the PIM units' 28-bit bound. */
CkksParams
pimFriendlyParams()
{
    CkksParams params;
    params.n = 256;
    params.levels = 4;
    params.alpha = 2;
    params.logScale = 24;
    params.firstModulusBits = 27;
    return params;
}

class PimCkksIntegration : public ::testing::Test
{
  protected:
    PimCkksIntegration()
        : context_(pimFriendlyParams()), encoder_(context_),
          keygen_(context_, 77), rng_(78)
    {
    }

    Polynomial
    randomPoly(const RnsBasis &basis)
    {
        Polynomial p(basis, Domain::Eval);
        for (size_t i = 0; i < basis.size(); ++i)
            p.limb(i) = sampleUniform(rng_, basis.degree(), basis.prime(i));
        return p;
    }

    static PimVector
    toPim(const CoeffVector &limb)
    {
        return PimVector(limb.begin(), limb.end());
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    Rng rng_;
};

TEST_F(PimCkksIntegration, AllPrimesFitThePimDatapath)
{
    for (size_t i = 0; i < context_.qpBasis().size(); ++i)
        EXPECT_LT(context_.qpBasis().prime(i), 1ULL << 28) << "limb " << i;
}

TEST_F(PimCkksIntegration, KeyMultOnPimMatchesKeySwitcher)
{
    // The paper's centerpiece offload: KeyMult = PAccum<D> per limb.
    const EvalKey evk = keygen_.makeRelinKey();
    const KeySwitcher sw(context_);
    const size_t level = context_.maxLevel();
    const Polynomial a = randomPoly(context_.levelBasis(level));

    const auto digits = sw.modUp(a);
    const auto [d0, d1] = sw.keyMult(digits, evk);

    // Re-execute the accumulation limb-by-limb on the functional PIM
    // unit and demand bit-exact agreement.
    const RnsBasis extBasis = context_.extendedBasis(level);
    for (size_t limb = 0; limb < extBasis.size(); ++limb) {
        const PimFunctionalUnit unit(extBasis.prime(limb));
        std::vector<PimVector> aOps, bOps, pOps;
        for (size_t j = 0; j < digits.size(); ++j) {
            const Polynomial keyB = sw.restrictToExtended(evk.b[j], level);
            const Polynomial keyA = sw.restrictToExtended(evk.a[j], level);
            aOps.push_back(toPim(keyB.limb(limb)));  // -> x = d0
            bOps.push_back(toPim(keyA.limb(limb)));  // -> y = d1
            pOps.push_back(toPim(digits[j].limb(limb)));
        }
        const auto [x, y] = unit.pAccum(aOps, bOps, pOps);
        for (size_t c = 0; c < x.size(); ++c) {
            ASSERT_EQ(static_cast<uint64_t>(x[c]), d0.limb(limb)[c])
                << "limb " << limb << " coeff " << c;
            ASSERT_EQ(static_cast<uint64_t>(y[c]), d1.limb(limb)[c])
                << "limb " << limb << " coeff " << c;
        }
    }
}

TEST_F(PimCkksIntegration, TensorOnPimMatchesEvaluatorTensor)
{
    // HMULT's tensor stage (x = b1*b2, y = b1*a2 + a1*b2, z = a1*a2).
    const size_t level = 3;
    const RnsBasis basis = context_.levelBasis(level);
    const Polynomial b1 = randomPoly(basis);
    const Polynomial a1 = randomPoly(basis);
    const Polynomial b2 = randomPoly(basis);
    const Polynomial a2 = randomPoly(basis);

    Polynomial d0 = b1;
    d0.mulEq(b2);
    Polynomial d1 = b1;
    d1.mulEq(a2);
    d1.macEq(a1, b2);
    Polynomial d2 = a1;
    d2.mulEq(a2);

    for (size_t limb = 0; limb < basis.size(); ++limb) {
        const PimFunctionalUnit unit(basis.prime(limb));
        const auto [x, y, z] =
            unit.tensor(toPim(b1.limb(limb)), toPim(a1.limb(limb)),
                        toPim(b2.limb(limb)), toPim(a2.limb(limb)));
        for (size_t c = 0; c < x.size(); ++c) {
            ASSERT_EQ(static_cast<uint64_t>(x[c]), d0.limb(limb)[c]);
            ASSERT_EQ(static_cast<uint64_t>(y[c]), d1.limb(limb)[c]);
            ASSERT_EQ(static_cast<uint64_t>(z[c]), d2.limb(limb)[c]);
        }
    }
}

TEST_F(PimCkksIntegration, HAddOnPimDecryptsCorrectly)
{
    // Full loop: encrypt on the "GPU", add on the PIM unit, decrypt.
    CkksEncryptor encryptor(context_, 81);
    const CkksDecryptor decryptor(context_, keygen_.secretKey());

    std::vector<std::complex<double>> u(encoder_.slots());
    std::vector<std::complex<double>> v(encoder_.slots());
    for (size_t i = 0; i < u.size(); ++i) {
        u[i] = {0.25 * std::cos(0.1 * i), 0.0};
        v[i] = {0.25 * std::sin(0.1 * i), 0.0};
    }
    const auto ctU = encryptor.encrypt(
        encoder_.encode(u, context_.maxLevel()), keygen_.secretKey());
    const auto ctV = encryptor.encrypt(
        encoder_.encode(v, context_.maxLevel()), keygen_.secretKey());

    Ciphertext sum = ctU;
    for (size_t limb = 0; limb < ctU.b.limbCount(); ++limb) {
        const PimFunctionalUnit unit(ctU.b.basis().prime(limb));
        const auto b = unit.add(toPim(ctU.b.limb(limb)),
                                toPim(ctV.b.limb(limb)));
        const auto a = unit.add(toPim(ctU.a.limb(limb)),
                                toPim(ctV.a.limb(limb)));
        sum.b.limb(limb).assign(b.begin(), b.end());
        sum.a.limb(limb).assign(a.begin(), a.end());
    }

    const auto out = encoder_.decode(decryptor.decrypt(sum));
    for (size_t i = 0; i < u.size(); ++i)
        EXPECT_NEAR(out[i].real(), (u[i] + v[i]).real(), 1e-4) << i;
}

TEST_F(PimCkksIntegration, ModDownEpOnPimMatchesRescaleStep)
{
    // ModDown's element-wise epilogue: x = P^-1 * (a - b) mod q_i.
    const size_t level = context_.maxLevel();
    const RnsBasis basis = context_.levelBasis(level);
    const Polynomial a = randomPoly(basis);
    const Polynomial b = randomPoly(basis);

    for (size_t limb = 0; limb < basis.size(); ++limb) {
        const uint64_t q = basis.prime(limb);
        const uint64_t pInv = context_.pInvModQ()[limb];
        const PimFunctionalUnit unit(q);
        const auto out =
            unit.modDownEp(toPim(a.limb(limb)), toPim(b.limb(limb)),
                           static_cast<uint32_t>(pInv));
        for (size_t c = 0; c < out.size(); ++c) {
            const uint64_t expect = mulMod(
                pInv, subMod(a.limb(limb)[c], b.limb(limb)[c], q), q);
            ASSERT_EQ(static_cast<uint64_t>(out[c]), expect);
        }
    }
}

} // namespace
} // namespace anaheim

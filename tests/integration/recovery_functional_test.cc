/**
 * @file
 * End-to-end detect-and-recover on real ciphertext data: a CKKS HADD
 * executed limb-by-limb on the functional PIM unit under BER-driven
 * fault injection, with detection at the coherence write-back boundary
 * (ECC's uncorrectable latch, or the ciphertext checksum when ECC is
 * off) and recovery by replaying from the pristine inputs — the
 * functional analog of the framework's checkpoint rollback. The
 * recovered result must be bitwise identical to the fault-free run and
 * decrypt correctly.
 */

#include <gtest/gtest.h>

#include <complex>
#include <optional>

#include "ckks/encryptor.h"
#include "ckks/integrity.h"
#include "pim/functional.h"
#include "sim/ecc.h"
#include "sim/health.h"
#include "sim/readpath.h"

namespace anaheim {
namespace {

/** CKKS parameters whose primes all fit the PIM units' 28-bit bound. */
CkksParams
pimFriendlyParams()
{
    CkksParams params;
    params.n = 256;
    params.levels = 4;
    params.alpha = 2;
    params.logScale = 24;
    params.firstModulusBits = 27;
    return params;
}

class FunctionalRecoveryTest : public ::testing::Test
{
  protected:
    FunctionalRecoveryTest()
        : context_(pimFriendlyParams()), encoder_(context_),
          keygen_(context_, 91), encryptor_(context_, 92)
    {
        std::vector<std::complex<double>> u(encoder_.slots());
        std::vector<std::complex<double>> v(encoder_.slots());
        for (size_t i = 0; i < u.size(); ++i) {
            u[i] = {0.25 * std::cos(0.1 * i), 0.0};
            v[i] = {0.25 * std::sin(0.1 * i), 0.0};
        }
        expected_.resize(u.size());
        for (size_t i = 0; i < u.size(); ++i)
            expected_[i] = u[i] + v[i];
        ctU_.emplace(encryptor_.encrypt(
            encoder_.encode(u, context_.maxLevel()), keygen_.secretKey()));
        ctV_.emplace(encryptor_.encrypt(
            encoder_.encode(v, context_.maxLevel()), keygen_.secretKey()));
    }

    static PimVector
    toPim(const CoeffVector &limb)
    {
        return PimVector(limb.begin(), limb.end());
    }

    /** HADD on the PIM unit, limb by limb, through `path` when one is
     *  attached. Each (component, limb) pair gets its own fault-site
     *  limb coordinate, as distinct PIM rows would; `limbOffset`
     *  relocates the whole ciphertext to a different physical region
     *  (spare rows after a quarantine remap). */
    Ciphertext
    addOnPim(const Ciphertext &x, const Ciphertext &y, PimDataPath *path,
             size_t limbOffset = 0)
    {
        Ciphertext sum = x;
        const size_t limbCount = x.b.limbCount();
        for (size_t comp = 0; comp < 2; ++comp) {
            const Polynomial &px = comp ? x.a : x.b;
            const Polynomial &py = comp ? y.a : y.b;
            Polynomial &out = comp ? sum.a : sum.b;
            for (size_t limb = 0; limb < limbCount; ++limb) {
                PimFunctionalUnit unit(px.basis().prime(limb));
                unit.attachReadPath(path);
                if (path != nullptr)
                    path->setLimb(limbOffset + comp * limbCount + limb);
                const PimVector r = unit.add(toPim(px.limb(limb)),
                                             toPim(py.limb(limb)));
                out.limb(limb).assign(r.begin(), r.end());
            }
        }
        return sum;
    }

    static void
    expectBitwiseEqual(const Ciphertext &a, const Ciphertext &b)
    {
        ASSERT_EQ(a.b.limbCount(), b.b.limbCount());
        for (size_t limb = 0; limb < a.b.limbCount(); ++limb) {
            EXPECT_EQ(a.b.limb(limb), b.b.limb(limb)) << "b limb " << limb;
            EXPECT_EQ(a.a.limb(limb), b.a.limb(limb)) << "a limb " << limb;
        }
    }

    void
    expectDecryptsToSum(const Ciphertext &ct)
    {
        const CkksDecryptor decryptor(context_, keygen_.secretKey());
        const auto out = encoder_.decode(decryptor.decrypt(ct));
        for (size_t i = 0; i < expected_.size(); ++i)
            EXPECT_NEAR(out[i].real(), expected_[i].real(), 1e-4) << i;
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    CkksEncryptor encryptor_;
    std::optional<Ciphertext> ctU_, ctV_;
    std::vector<std::complex<double>> expected_;
};

TEST_F(FunctionalRecoveryTest,
       UncorrectableWriteBackFaultReplaysToExactResult)
{
    // Fault-free PIM run: the golden value the producer seals.
    const Ciphertext golden = addOnPim(*ctU_, *ctV_, nullptr);
    const CiphertextChecksum seal = sealCiphertext(golden);

    // BER placed so the first attempt sees a double-bit (uncorrectable)
    // event somewhere in the op's reads/write-backs with this seed,
    // while replays — which re-sample the transient faults under a new
    // epoch — soon come back clean.
    FaultConfig faults;
    faults.ber = 4e-4;
    faults.seed = 1;
    PimDataPath path(faults, /*eccEnabled=*/true);

    std::optional<Ciphertext> sum;
    std::optional<Ciphertext> corruptAttempt;
    size_t attempts = 0;
    for (attempts = 1; attempts <= 50; ++attempts) {
        path.clearUncorrectableSeen();
        sum.emplace(addOnPim(*ctU_, *ctV_, &path));
        // Write-back boundary: the detected-uncorrectable latch is the
        // signal the framework's retry/rollback policy keys on.
        if (!path.uncorrectableSeen())
            break;
        if (!corruptAttempt)
            corruptAttempt = sum;
        // "Roll back": inputs are the checkpoint and stay pristine;
        // the next epoch models the replayed segment.
        path.nextEpoch();
    }
    ASSERT_LE(attempts, 50u) << "no clean replay within the budget";

    // The fault was detected, not silently absorbed.
    ASSERT_TRUE(corruptAttempt.has_value())
        << "seed produced no uncorrectable event; test is vacuous";
    EXPECT_GT(path.counters().uncorrectable, 0u);
    EXPECT_GT(path.counters().corrected, 0u);
    EXPECT_EQ(path.counters().silent, 0u);

    // The poisoned attempt differs from the sealed value and the
    // ciphertext checksum backstop catches it too.
    const Status corruptStatus = verifyCiphertext(*corruptAttempt, seal);
    EXPECT_EQ(corruptStatus.code(), ErrorCode::DataCorruption);

    // The recovered result is bitwise the golden run, passes
    // verification, and decrypts to u + v.
    expectBitwiseEqual(*sum, golden);
    EXPECT_TRUE(verifyCiphertext(*sum, seal).ok());
    expectDecryptsToSum(*sum);
}

TEST_F(FunctionalRecoveryTest, ChecksumIsTheOnlyNetWithoutEcc)
{
    // With ECC off every fault is silent at the word boundary: the
    // per-limb rolling checksum at the write-back boundary is the only
    // detector left, and replay-from-inputs the only recovery.
    const Ciphertext golden = addOnPim(*ctU_, *ctV_, nullptr);
    const CiphertextChecksum seal = sealCiphertext(golden);

    FaultConfig faults;
    faults.ber = 1e-5;
    faults.seed = 3;
    PimDataPath path(faults, /*eccEnabled=*/false);

    std::optional<Ciphertext> sum;
    size_t mismatches = 0;
    size_t attempts = 0;
    for (attempts = 1; attempts <= 50; ++attempts) {
        sum.emplace(addOnPim(*ctU_, *ctV_, &path));
        if (verifyCiphertext(*sum, seal).ok())
            break;
        ++mismatches;
        path.nextEpoch();
    }
    ASSERT_LE(attempts, 50u) << "no clean replay within the budget";

    EXPECT_GT(mismatches, 0u);
    EXPECT_GT(path.counters().silent, 0u);
    EXPECT_EQ(path.counters().corrected, 0u); // nothing ever detected
    EXPECT_FALSE(path.uncorrectableSeen());
    expectBitwiseEqual(*sum, golden);
    expectDecryptsToSum(*sum);
}

TEST_F(FunctionalRecoveryTest,
       StuckAtSiteIsClassifiedPermanentAndRemappedToSpareRows)
{
    // The graceful-degradation ladder on real ciphertext data. A
    // stuck-at cell (a *permanent* fault) poisons the same words on
    // every replay — epoch bumps do not help, which is exactly how
    // the health monitor tells it from a transient. After the
    // permanent threshold the site is quarantined and the operands
    // are remapped to spare rows (a disjoint fault-site region);
    // the replay there must be bitwise the golden run.
    const Ciphertext golden = addOnPim(*ctU_, *ctV_, nullptr);
    const CiphertextChecksum seal = sealCiphertext(golden);

    // Two cells stuck at one in the physical region limb coordinate 0
    // maps to, on bits the stored codeword has clear — a guaranteed
    // detected-uncorrectable (double-bit) event on every read of that
    // word, independent of the replay epoch.
    const uint64_t codeword = SecDed3932::encode(
        static_cast<uint32_t>(ctU_->b.limb(0)[7]));
    uint64_t stuckMask = 0;
    int stuckBits = 0;
    for (unsigned bit = 0;
         bit < SecDed3932::kCodeBits && stuckBits < 2; ++bit) {
        if (((codeword >> bit) & 1) == 0) {
            stuckMask |= uint64_t{1} << bit;
            ++stuckBits;
        }
    }
    ASSERT_EQ(stuckBits, 2);
    FaultConfig faults;
    faults.targets.push_back(
        {0, operandWord(0, 7), stuckMask, FaultKind::StuckAtOne});
    PimDataPath path(faults, /*eccEnabled=*/true);

    HealthConfig healthConfig;
    healthConfig.enabled = true;
    healthConfig.permanentThreshold = 3;
    // One die group, one "bank" per mapped region, 8 lanes.
    HealthMonitor monitor(healthConfig, 1, 2, 8);
    const FaultSiteId site{FaultSiteId::Kind::Bank, 0, 0};
    const size_t kSpareOffset = 64; // remap target region

    std::optional<Ciphertext> sum;
    size_t failedReplays = 0;
    size_t attempts = 0;
    for (attempts = 1; attempts <= 10; ++attempts) {
        path.clearUncorrectableSeen();
        const size_t offset =
            monitor.isQuarantined(site) ? kSpareOffset : 0;
        sum.emplace(addOnPim(*ctU_, *ctV_, &path, offset));
        if (!path.uncorrectableSeen())
            break;
        ++failedReplays;
        monitor.recordError(site, static_cast<double>(attempts));
        path.nextEpoch(); // the replay a transient would survive
    }
    ASSERT_LE(attempts, 10u) << "remap never produced a clean run";

    // Replay alone never cleared the fault: it failed deterministically
    // exactly until the monitor quarantined the region.
    ASSERT_GT(failedReplays, 0u)
        << "stuck-at site produced no detected fault; test is vacuous";
    EXPECT_EQ(failedReplays, healthConfig.permanentThreshold);
    EXPECT_TRUE(monitor.isQuarantined(site));
    EXPECT_EQ(attempts, healthConfig.permanentThreshold + 1);

    // The remapped run is bitwise the golden value, passes the
    // ciphertext checksum, and decrypts to u + v.
    expectBitwiseEqual(*sum, golden);
    EXPECT_TRUE(verifyCiphertext(*sum, seal).ok());
    expectDecryptsToSum(*sum);
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include <complex>

#include "boot/dft.h"
#include "common/rng.h"

namespace anaheim {
namespace {

using Complex = std::complex<double>;

std::vector<Complex>
randomVec(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> v(n);
    for (auto &x : v)
        x = {2.0 * rng.uniformReal() - 1.0, 2.0 * rng.uniformReal() - 1.0};
    return v;
}

double
maxError(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    double err = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        err = std::max(err, std::abs(a[i] - b[i]));
    return err;
}

class DftPlanTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(DftPlanTest, FactorsComposeToReferenceTransforms)
{
    const auto [slots, fftIter] = GetParam();
    const DftPlan plan(slots, fftIter);
    const auto v = randomVec(slots, slots + fftIter);

    // CoeffToSlot factors applied in order must equal the reference.
    {
        const auto factors = plan.coeffToSlotFactors({1.0, 0.0});
        ASSERT_EQ(factors.size(), fftIter);
        auto cur = v;
        for (const auto &factor : factors)
            cur = factor.apply(cur);
        EXPECT_LT(maxError(cur, plan.applyCoeffToSlot(v)), 1e-9);
    }
    // Same for SlotToCoeff.
    {
        const auto factors = plan.slotToCoeffFactors({1.0, 0.0});
        auto cur = v;
        for (const auto &factor : factors)
            cur = factor.apply(cur);
        EXPECT_LT(maxError(cur, plan.applySlotToCoeff(v)), 1e-9);
    }
}

TEST_P(DftPlanTest, CtsThenStcIsIdentity)
{
    // The bit-reversal-free factorization must still satisfy
    // StC(CtS(x)) == x, since EvalMod between them is slot-wise.
    const auto [slots, fftIter] = GetParam();
    const DftPlan plan(slots, fftIter);
    const auto v = randomVec(slots, 1000 + slots);
    const auto roundTrip = plan.applySlotToCoeff(plan.applyCoeffToSlot(v));
    EXPECT_LT(maxError(roundTrip, v), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DftPlanTest,
    ::testing::Values(std::pair<size_t, size_t>{8, 1},
                      std::pair<size_t, size_t>{8, 3},
                      std::pair<size_t, size_t>{64, 1},
                      std::pair<size_t, size_t>{64, 2},
                      std::pair<size_t, size_t>{64, 3},
                      std::pair<size_t, size_t>{64, 6},
                      std::pair<size_t, size_t>{256, 2},
                      std::pair<size_t, size_t>{256, 4}));

TEST(DftPlan, FactorsAreSparse)
{
    // Each factor groups ceil(log n / fftIter) radix-2 stages, so its
    // diagonal count is bounded by 2^(stages+1) - 1.
    const DftPlan plan(256, 4);
    for (const auto &factor : plan.coeffToSlotFactors({1.0, 0.0})) {
        EXPECT_LE(factor.diagonalCount(), 7u); // 2 stages -> <= 2^3-1
        EXPECT_GE(factor.diagonalCount(), 2u);
    }
}

TEST(DftPlan, ExtraScaleIsAppliedOnce)
{
    const DftPlan plan(64, 2);
    const auto v = randomVec(64, 7);
    const auto factors = plan.coeffToSlotFactors({0.25, 0.0});
    auto cur = v;
    for (const auto &factor : factors)
        cur = factor.apply(cur);
    auto expect = plan.applyCoeffToSlot(v);
    for (auto &x : expect)
        x *= 0.25;
    EXPECT_LT(maxError(cur, expect), 1e-9);
}

} // namespace
} // namespace anaheim

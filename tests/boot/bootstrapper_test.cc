#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "boot/bootstrapper.h"
#include "ckks/encryptor.h"
#include "common/rng.h"
#include "math/modarith.h"

namespace anaheim {
namespace {

using Complex = std::complex<double>;

class BootstrapTest : public ::testing::Test
{
  protected:
    BootstrapTest()
        : context_(CkksParams::bootstrapParams(1 << 11)),
          encoder_(context_), keygen_(context_, 11),
          encryptor_(context_, 23),
          decryptor_(context_, keygen_.secretKey()),
          evaluator_(context_, encoder_)
    {
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    CkksEncryptor encryptor_;
    CkksDecryptor decryptor_;
    CkksEvaluator evaluator_;
};

TEST_F(BootstrapTest, ModRaisePreservesMessage)
{
    Rng rng(111);
    std::vector<Complex> msg(encoder_.slots());
    for (auto &v : msg)
        v = {(rng.uniformReal() - 0.5) / 16.0, 0.0};
    auto ct = encryptor_.encrypt(encoder_.encode(msg, 1),
                                 keygen_.secretKey());

    // Build a bare bootstrapper only to reach modRaise.
    Bootstrapper boot(context_, encoder_, evaluator_, keygen_);
    const auto raised = boot.modRaise(ct);
    EXPECT_EQ(raised.level, context_.maxLevel());

    // After ModRaise the ciphertext decrypts to m + q0*I; reducing the
    // decryption mod q0 must recover the original message.
    const auto pt = decryptor_.decrypt(raised);
    Polynomial poly = pt.poly;
    poly.toCoeff();
    const uint64_t q0 = context_.qBasis().prime(0);

    const auto original = decryptor_.decrypt(ct);
    Polynomial origPoly = original.poly;
    origPoly.toCoeff();
    for (size_t c = 0; c < 64; ++c) {
        EXPECT_EQ(poly.limb(0)[c] % q0, origPoly.limb(0)[c]) << c;
    }
}

TEST_F(BootstrapTest, BootstrapRestoresLevelsAndMessage)
{
    Rng rng(112);
    std::vector<Complex> msg(encoder_.slots());
    for (auto &v : msg) {
        v = {(2.0 * rng.uniformReal() - 1.0) / 32.0,
             (2.0 * rng.uniformReal() - 1.0) / 32.0};
    }
    auto ct = encryptor_.encrypt(encoder_.encode(msg, 1),
                                 keygen_.secretKey());

    Bootstrapper boot(context_, encoder_, evaluator_, keygen_);
    const auto refreshed = boot.bootstrap(ct);
    EXPECT_EQ(refreshed.level, boot.outputLevel());
    EXPECT_GT(refreshed.level, 1u)
        << "bootstrapping must yield usable levels";

    const auto out = encoder_.decode(decryptor_.decrypt(refreshed));
    double worst = 0.0;
    for (size_t i = 0; i < msg.size(); ++i)
        worst = std::max(worst, std::abs(out[i] - msg[i]));
    // Bootstrapping precision target: well below the message amplitude
    // (1/32); 2^-10 absolute is in line with typical CKKS bootstraps.
    EXPECT_LT(worst, 1.0 / 1024.0);
}

TEST(BootstrapSweep, SmallerRingAlsoBootstraps)
{
    // Second parameter point: N = 2^10 (512 slots). The DFT factors,
    // level schedule and sine approximant all rescale automatically.
    const CkksContext context(CkksParams::bootstrapParams(1 << 10));
    const CkksEncoder encoder(context);
    KeyGenerator keygen(context, 21);
    CkksEncryptor encryptor(context, 22);
    const CkksDecryptor decryptor(context, keygen.secretKey());
    const CkksEvaluator evaluator(context, encoder);

    Rng rng(211);
    std::vector<Complex> msg(encoder.slots());
    for (auto &v : msg)
        v = {(2.0 * rng.uniformReal() - 1.0) / 32.0, 0.0};
    auto ct = encryptor.encrypt(encoder.encode(msg, 1),
                                keygen.secretKey());

    Bootstrapper boot(context, encoder, evaluator, keygen);
    const auto refreshed = boot.bootstrap(ct);
    EXPECT_GT(refreshed.level, 1u);
    const auto out = encoder.decode(decryptor.decrypt(refreshed));
    double worst = 0.0;
    for (size_t i = 0; i < msg.size(); ++i)
        worst = std::max(worst, std::abs(out[i] - msg[i]));
    EXPECT_LT(worst, 1.0 / 1024.0);
}

TEST_F(BootstrapTest, BootstrappedCiphertextSupportsFurtherOps)
{
    Rng rng(113);
    std::vector<Complex> msg(encoder_.slots());
    for (auto &v : msg)
        v = {(2.0 * rng.uniformReal() - 1.0) / 32.0, 0.0};
    auto ct = encryptor_.encrypt(encoder_.encode(msg, 1),
                                 keygen_.secretKey());

    Bootstrapper boot(context_, encoder_, evaluator_, keygen_);
    auto refreshed = boot.bootstrap(ct);

    // L_eff check: consume a multiplicative level post-bootstrap.
    const auto relin = keygen_.makeRelinKey();
    auto squared =
        evaluator_.rescale(evaluator_.square(refreshed, relin));
    const auto out = encoder_.decode(decryptor_.decrypt(squared));
    for (size_t i = 0; i < msg.size(); i += 97) {
        const Complex expect = msg[i] * msg[i];
        EXPECT_LT(std::abs(out[i] - expect), 1e-3) << "slot " << i;
    }
}

} // namespace
} // namespace anaheim

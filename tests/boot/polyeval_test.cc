#include <gtest/gtest.h>

#include <cmath>

#include "boot/polyeval.h"
#include "ckks/encryptor.h"
#include "common/rng.h"

namespace anaheim {
namespace {

TEST(MonomialToChebyshev, MatchesDirectEvaluation)
{
    const std::vector<double> mono = {0.5, -1.0, 0.25, 2.0, -0.75};
    const auto cheb = monomialToChebyshev(mono);
    for (double x = -1.0; x <= 1.0; x += 0.05) {
        double direct = 0.0, power = 1.0;
        for (double c : mono) {
            direct += c * power;
            power *= x;
        }
        EXPECT_NEAR(chebyshevEvalPlain(cheb, x), direct, 1e-12)
            << "x=" << x;
    }
}

TEST(MonomialToChebyshev, LowDegreeIdentities)
{
    // x^2 = (T_0 + T_2) / 2.
    const auto cheb = monomialToChebyshev({0.0, 0.0, 1.0});
    EXPECT_NEAR(cheb[0], 0.5, 1e-15);
    EXPECT_NEAR(cheb[1], 0.0, 1e-15);
    EXPECT_NEAR(cheb[2], 0.5, 1e-15);
}

class PolyEvalTest : public ::testing::Test
{
  protected:
    PolyEvalTest()
        : context_(CkksParams::testParams(1 << 9, 10, 2)),
          encoder_(context_), keygen_(context_, 17),
          encryptor_(context_, 19),
          decryptor_(context_, keygen_.secretKey()),
          evaluator_(context_, encoder_), relin_(keygen_.makeRelinKey()),
          polyEval_(evaluator_, encoder_, relin_)
    {
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    CkksEncryptor encryptor_;
    CkksDecryptor decryptor_;
    CkksEvaluator evaluator_;
    EvalKey relin_;
    PolynomialEvaluator polyEval_;
};

TEST_F(PolyEvalTest, EvaluatesMonomialPolynomials)
{
    Rng rng(33);
    std::vector<std::complex<double>> msg(encoder_.slots());
    for (auto &v : msg)
        v = {2.0 * rng.uniformReal() - 1.0, 0.0};
    const auto ct = encryptor_.encrypt(
        encoder_.encode(msg, context_.maxLevel()), keygen_.secretKey());

    const std::vector<double> poly = {0.1, 0.5, -0.3, 0.0, 0.2};
    const auto result = polyEval_.evaluate(ct, poly);
    const auto out = encoder_.decode(decryptor_.decrypt(result));
    for (size_t i = 0; i < msg.size(); i += 13) {
        double expect = 0.0, power = 1.0;
        for (double c : poly) {
            expect += c * power;
            power *= msg[i].real();
        }
        EXPECT_NEAR(out[i].real(), expect, 1e-3) << "slot " << i;
    }
}

TEST_F(PolyEvalTest, EvaluatesSmoothFunctions)
{
    Rng rng(34);
    std::vector<std::complex<double>> msg(encoder_.slots());
    for (auto &v : msg)
        v = {2.0 * rng.uniformReal() - 1.0, 0.0};
    const auto ct = encryptor_.encrypt(
        encoder_.encode(msg, context_.maxLevel()), keygen_.secretKey());

    auto sigmoid = [](double t) { return 1.0 / (1.0 + std::exp(-3.0 * t)); };
    const auto result = polyEval_.evaluateFunction(ct, sigmoid, 15);
    const auto out = encoder_.decode(decryptor_.decrypt(result));
    for (size_t i = 0; i < msg.size(); i += 17)
        EXPECT_NEAR(out[i].real(), sigmoid(msg[i].real()), 2e-3)
            << "slot " << i;
}

} // namespace
} // namespace anaheim

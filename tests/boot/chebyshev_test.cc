#include <gtest/gtest.h>

#include <cmath>

#include "boot/chebyshev.h"
#include "ckks/encryptor.h"
#include "common/rng.h"

namespace anaheim {
namespace {

TEST(ChebyshevFit, ReproducesSmoothFunctions)
{
    const auto coeffs =
        chebyshevFit([](double x) { return std::exp(x); }, 15);
    for (double x = -1.0; x <= 1.0; x += 0.05) {
        EXPECT_NEAR(chebyshevEvalPlain(coeffs, x), std::exp(x), 1e-10)
            << "x=" << x;
    }
}

TEST(ChebyshevFit, ReproducesOscillatoryFunctions)
{
    // The EvalMod regime: a scaled cosine with several periods.
    const auto coeffs = chebyshevFit(
        [](double x) { return std::cos(12.0 * x - 0.2); }, 47);
    for (double x = -1.0; x <= 1.0; x += 0.01) {
        EXPECT_NEAR(chebyshevEvalPlain(coeffs, x),
                    std::cos(12.0 * x - 0.2), 1e-8);
    }
}

TEST(ChebyshevFit, LowDegreeExactForPolynomials)
{
    // f(x) = 2x^2 - 1 = T_2 exactly.
    const auto coeffs =
        chebyshevFit([](double x) { return 2.0 * x * x - 1.0; }, 4);
    EXPECT_NEAR(coeffs[0], 0.0, 1e-12);
    EXPECT_NEAR(coeffs[1], 0.0, 1e-12);
    EXPECT_NEAR(coeffs[2], 1.0, 1e-12);
    EXPECT_NEAR(coeffs[3], 0.0, 1e-12);
    EXPECT_NEAR(coeffs[4], 0.0, 1e-12);
}

class ChebyshevHomTest : public ::testing::Test
{
  protected:
    ChebyshevHomTest()
        : context_(CkksParams::testParams(1 << 9, 12, 3)),
          encoder_(context_), keygen_(context_, 3),
          encryptor_(context_, 13),
          decryptor_(context_, keygen_.secretKey()),
          evaluator_(context_, encoder_),
          relin_(keygen_.makeRelinKey()),
          cheby_(evaluator_, encoder_, relin_)
    {
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    CkksEncryptor encryptor_;
    CkksDecryptor decryptor_;
    CkksEvaluator evaluator_;
    EvalKey relin_;
    ChebyshevEvaluator cheby_;
};

TEST_F(ChebyshevHomTest, HomomorphicMatchesPlainEvaluation)
{
    Rng rng(91);
    std::vector<std::complex<double>> msg(encoder_.slots());
    for (auto &v : msg)
        v = {2.0 * rng.uniformReal() - 1.0, 0.0};
    const auto ct = encryptor_.encrypt(
        encoder_.encode(msg, context_.maxLevel()), keygen_.secretKey());

    const auto coeffs =
        chebyshevFit([](double x) { return std::sin(3.0 * x); }, 15);
    const auto result = cheby_.evaluate(ct, coeffs);
    const auto out = encoder_.decode(decryptor_.decrypt(result));
    for (size_t i = 0; i < msg.size(); ++i) {
        EXPECT_NEAR(out[i].real(),
                    chebyshevEvalPlain(coeffs, msg[i].real()), 2e-3)
            << "slot " << i;
    }
}

TEST_F(ChebyshevHomTest, HigherDegreeStillAccurate)
{
    Rng rng(92);
    std::vector<std::complex<double>> msg(encoder_.slots());
    for (auto &v : msg)
        v = {2.0 * rng.uniformReal() - 1.0, 0.0};
    const auto ct = encryptor_.encrypt(
        encoder_.encode(msg, context_.maxLevel()), keygen_.secretKey());

    const auto coeffs = chebyshevFit(
        [](double x) { return std::cos(8.0 * x + 0.3); }, 31);
    const auto result = cheby_.evaluate(ct, coeffs);
    EXPECT_LE(ChebyshevEvaluator::depthForDegree(31),
              context_.maxLevel() - result.level);
    const auto out = encoder_.decode(decryptor_.decrypt(result));
    for (size_t i = 0; i < msg.size(); i += 7) {
        EXPECT_NEAR(out[i].real(),
                    chebyshevEvalPlain(coeffs, msg[i].real()), 5e-3)
            << "slot " << i;
    }
}

TEST_F(ChebyshevHomTest, DepthMatchesPrediction)
{
    Rng rng(93);
    std::vector<std::complex<double>> msg(encoder_.slots(), {0.5, 0.0});
    const auto ct = encryptor_.encrypt(
        encoder_.encode(msg, context_.maxLevel()), keygen_.secretKey());
    const auto coeffs =
        chebyshevFit([](double x) { return x * x * x; }, 7);
    const auto result = cheby_.evaluate(ct, coeffs);
    const size_t consumed = context_.maxLevel() - result.level;
    EXPECT_LE(consumed, ChebyshevEvaluator::depthForDegree(7));
}

} // namespace
} // namespace anaheim

/**
 * Cross-module property tests: invariants the paper's argument rests on,
 * checked over parameter sweeps rather than single points.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "anaheim/framework.h"
#include "anaheim/workloads.h"
#include "support/error_matchers.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "common/rng.h"
#include "gpu/gpumodel.h"
#include "pim/layout.h"

namespace anaheim {
namespace {

using Complex = std::complex<double>;

// ---------------------------------------------------------------- CKKS

/** Homomorphic pipeline correctness across ring degrees and digit
 *  configurations. */
class CkksSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(CkksSweepTest, MultiplyRotateRoundTrip)
{
    const auto [logN, alpha] = GetParam();
    const CkksContext context(
        CkksParams::testParams(size_t{1} << logN, 6, alpha));
    const CkksEncoder encoder(context);
    KeyGenerator keygen(context, logN * 100 + alpha);
    CkksEncryptor encryptor(context, 3);
    const CkksDecryptor decryptor(context, keygen.secretKey());
    const CkksEvaluator evaluator(context, encoder);

    Rng rng(logN);
    std::vector<Complex> u(encoder.slots()), v(encoder.slots());
    for (size_t i = 0; i < u.size(); ++i) {
        u[i] = {rng.uniformReal() - 0.5, rng.uniformReal() - 0.5};
        v[i] = {rng.uniformReal() - 0.5, 0.0};
    }
    const auto ctU = encryptor.encrypt(
        encoder.encode(u, context.maxLevel()), keygen.secretKey());
    const auto ctV = encryptor.encrypt(
        encoder.encode(v, context.maxLevel()), keygen.secretKey());

    const auto relin = keygen.makeRelinKey();
    auto keys = keygen.makeGaloisKeys({5});
    const auto result = evaluator.rotate(
        evaluator.rescale(evaluator.multiply(ctU, ctV, relin)), 5, keys);
    const auto out = encoder.decode(decryptor.decrypt(result));
    for (size_t i = 0; i < u.size(); i += 31) {
        const auto expect = u[(i + 5) % u.size()] * v[(i + 5) % u.size()];
        EXPECT_LT(std::abs(out[i] - expect), 1e-3)
            << "logN=" << logN << " alpha=" << alpha << " slot " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CkksSweepTest,
    ::testing::Values(std::tuple<size_t, size_t>{9, 1},
                      std::tuple<size_t, size_t>{9, 3},
                      std::tuple<size_t, size_t>{10, 2},
                      std::tuple<size_t, size_t>{11, 2},
                      std::tuple<size_t, size_t>{10, 6}));

TEST(CkksProperties, HomomorphismIsLinear)
{
    // decrypt(a*ct1 + ct2) == a*m1 + m2 for scalar a.
    const CkksContext context(CkksParams::testParams(1 << 9, 5, 2));
    const CkksEncoder encoder(context);
    KeyGenerator keygen(context, 7);
    CkksEncryptor encryptor(context, 9);
    const CkksDecryptor decryptor(context, keygen.secretKey());
    const CkksEvaluator evaluator(context, encoder);

    Rng rng(1);
    std::vector<Complex> m1(encoder.slots()), m2(encoder.slots());
    for (size_t i = 0; i < m1.size(); ++i) {
        m1[i] = {rng.uniformReal() - 0.5, 0.0};
        m2[i] = {rng.uniformReal() - 0.5, 0.0};
    }
    const auto ct1 = encryptor.encrypt(
        encoder.encode(m1, context.maxLevel()), keygen.secretKey());
    const auto ct2 = encryptor.encrypt(
        encoder.encode(m2, context.maxLevel()), keygen.secretKey());
    const auto combo =
        evaluator.add(evaluator.mulInteger(ct1, 3), ct2);
    const auto out = encoder.decode(decryptor.decrypt(combo));
    for (size_t i = 0; i < m1.size(); i += 17)
        EXPECT_LT(std::abs(out[i] - (3.0 * m1[i] + m2[i])), 1e-4);
}

// --------------------------------------------------------------- trace

TEST(TraceProperties, ElementWiseIntensityStaysMemoryBound)
{
    // §IV-D: element-wise kernels have < 2 int-ops per byte; the fused
    // accumulations (PAccum/CAccum reusing buffered operands) raise
    // this slightly but stay far below the 10-40 ops/byte GPUs want.
    for (const auto &[info, seq] : makeAllWorkloads()) {
        for (const auto &op : seq.ops) {
            if (kernelClass(op.type) != KernelClass::ElementWise)
                continue;
            const double bytes = op.readBytes() + op.writeBytes();
            ASSERT_GT(bytes, 0.0) << info.name;
            const bool fusedAccum = op.type == KernelType::EwPAccum ||
                                    op.type == KernelType::EwCAccum;
            EXPECT_LT(op.intOps() / bytes, fusedAccum ? 4.0 : 2.0)
                << info.name << " op " << kernelTypeName(op.type);
        }
    }
}

TEST(TraceProperties, EveryPimEligibleOpIsElementWise)
{
    for (const auto &[info, seq] : makeAllWorkloads()) {
        (void)info;
        for (const auto &op : seq.ops) {
            if (op.pimEligible) {
                EXPECT_EQ(kernelClass(op.type), KernelClass::ElementWise);
            }
            EXPECT_GT(op.limbs, 0u);
            EXPECT_GT(op.n, 0u);
        }
    }
}

// ----------------------------------------------------------------- gpu

TEST(GpuProperties, RooflineMonotonicInBandwidth)
{
    const auto hadd = buildHAdd(TraceParams{});
    GpuConfig fast = GpuConfig::a100_80gb();
    fast.dramBwGBs *= 2.0;
    const GpuModel slowModel(GpuConfig::a100_80gb(),
                             LibraryProfile::cheddar());
    const GpuModel fastModel(fast, LibraryProfile::cheddar());
    EXPECT_LT(fastModel.run(hadd.ops[0]).timeNs,
              slowModel.run(hadd.ops[0]).timeNs);
}

TEST(GpuProperties, RooflineMonotonicInCompute)
{
    KernelOp ntt;
    ntt.type = KernelType::Ntt;
    ntt.n = 1 << 16;
    ntt.limbs = 54;
    ntt.reads = {{OperandKind::Working, 54}};
    ntt.writes = {{OperandKind::Working, 54}};
    GpuConfig strong = GpuConfig::a100_80gb();
    strong.intTops *= 2.0;
    const GpuModel weakModel(GpuConfig::a100_80gb(),
                             LibraryProfile::cheddar());
    const GpuModel strongModel(strong, LibraryProfile::cheddar());
    EXPECT_LT(strongModel.run(ntt).timeNs, weakModel.run(ntt).timeNs);
}

// ----------------------------------------------------------------- pim

TEST(PimProperties, LayoutAllocationExhaustionIsRecoverable)
{
    ColumnPartitionLayout layout(DramConfig::hbm2A100(), 512, 1 << 16, 8);
    EXPECT_ANAHEIM_ERROR(
        for (int i = 0; i < 100000; ++i) layout.allocate(1, 64),
        ResourceExhausted, "exceeds bank rows");
    // The failed allocation left the allocator usable: capacity that
    // was not claimed can still be handed out.
    const size_t used = layout.rowsUsed();
    EXPECT_LE(used, layout.rowCapacity());
    EXPECT_NO_THROW(layout.allocate(
        1, (layout.rowCapacity() - used) / layout.rowsPerRowGroup()));
}

TEST(PimProperties, PolyGroupWidthBoundedByColumnGroups)
{
    ColumnPartitionLayout layout(DramConfig::hbm2A100(), 512, 1 << 16, 8);
    EXPECT_ANAHEIM_ERROR(layout.allocate(9, 1), InvalidArgument,
                         "wider than the column groups");
}

// ----------------------------------------------------------- framework

TEST(FrameworkProperties, ExecutionIsDeterministic)
{
    const auto seq = buildHMult(TraceParams{});
    const AnaheimFramework framework(AnaheimConfig::a100NearBank());
    const auto r1 = framework.execute(seq);
    const auto r2 = framework.execute(seq);
    EXPECT_DOUBLE_EQ(r1.totalNs, r2.totalNs);
    EXPECT_DOUBLE_EQ(r1.energyPj, r2.energyPj);
    EXPECT_EQ(r1.timeline.size(), r2.timeline.size());
}

TEST(FrameworkProperties, SpeedupBoundedByAmdahl)
{
    // PIM cannot speed a workload beyond the element-wise share it
    // offloads.
    const auto boot = makeBootWorkload();
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.pimEnabled = false;
    const auto base = AnaheimFramework(config).execute(boot);
    config.pimEnabled = true;
    const auto pim = AnaheimFramework(config).execute(boot);

    const double ewShare =
        base.timeNsByCategory.at("ElementWise") / base.totalNs;
    const double amdahlLimit = 1.0 / (1.0 - ewShare);
    EXPECT_LT(base.totalNs / pim.totalNs, amdahlLimit);
}

TEST(FrameworkProperties, DisablingPimLeavesNoPimTime)
{
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.pimEnabled = false;
    const auto result =
        AnaheimFramework(config).execute(makeBootWorkload());
    EXPECT_EQ(result.timeNsByCategory.count("PIM"), 0u);
    EXPECT_DOUBLE_EQ(result.pimInternalBytes, 0.0);
}

TEST(FrameworkProperties, WorkloadEnergyScalesWithTime)
{
    // Longer workloads cost more energy under the same configuration.
    const AnaheimFramework framework(AnaheimConfig::a100NearBank());
    const auto boot = framework.execute(makeBootWorkload());
    const auto sort = framework.execute(makeSortWorkload());
    EXPECT_GT(sort.totalNs, boot.totalNs);
    EXPECT_GT(sort.energyPj, boot.energyPj);
}

} // namespace
} // namespace anaheim

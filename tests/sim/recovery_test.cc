/**
 * @file
 * Detect-and-recover tests for AnaheimFramework::execute: periodic ECC
 * scrub passes, segment-group checkpointing, checksum-mismatch and
 * retry-exhaustion rollbacks, the bounded-replay budget, and the
 * pinned-counter regression backing the fault-campaign smoke cell.
 */

#include <gtest/gtest.h>

#include <string>

#include "anaheim/framework.h"
#include "anaheim/workloads.h"

namespace anaheim {
namespace {

class RecoveryTest : public ::testing::Test
{
  protected:
    static OpSequence
    chainedHMult(size_t repeats)
    {
        OpSequence seq = buildHMult(TraceParams{});
        const OpSequence one = seq;
        for (size_t r = 1; r < repeats; ++r)
            seq.append(one);
        seq.name = "hmult_chain";
        return seq;
    }

    static size_t
    countPhase(const RunResult &result, const std::string &phase)
    {
        size_t n = 0;
        for (const auto &entry : result.timeline)
            n += entry.phase == phase;
        return n;
    }

    static RunResult
    cleanRun(const OpSequence &seq)
    {
        return AnaheimFramework(AnaheimConfig::a100NearBank()).execute(seq);
    }
};

TEST_F(RecoveryTest, ScrubCadenceChargesTimeAndEnergy)
{
    const OpSequence seq = chainedHMult(2);
    const RunResult clean = cleanRun(seq);

    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.scrub.enabled = true;
    config.resilience.scrub.intervalNs = clean.totalNs / 8.0;
    const RunResult run = AnaheimFramework(config).execute(seq);

    EXPECT_GT(run.resilience.scrubPasses, 3u);
    EXPECT_EQ(countPhase(run, "Scrub"), run.resilience.scrubPasses);
    EXPECT_GT(run.timeNsByCategory.at("Scrub"), 0.0);
    EXPECT_GT(run.totalNs, clean.totalNs);
    EXPECT_GT(run.energyPj, clean.energyPj);
    // Fault-free data: a scrub finds nothing to repair or surface.
    EXPECT_EQ(run.resilience.scrubCorrected, 0u);
    EXPECT_EQ(run.resilience.scrubUncorrectable, 0u);
    EXPECT_EQ(run.resilience.unrecovered, 0u);
}

TEST_F(RecoveryTest, CheckpointCadenceFollowsInterval)
{
    const OpSequence seq = chainedHMult(3);
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.checkpoint.enabled = true;
    config.resilience.checkpoint.intervalSegments = 4;
    const RunResult run = AnaheimFramework(config).execute(seq);

    EXPECT_GT(run.resilience.checkpoints, 0u);
    EXPECT_EQ(countPhase(run, "Checkpoint"), run.resilience.checkpoints);
    EXPECT_LE(run.resilience.checkpoints, seq.ops.size() / 4);
    EXPECT_GT(run.timeNsByCategory.at("Checkpoint"), 0.0);
    // Nothing ever went wrong, so snapshots are the only new activity.
    EXPECT_EQ(run.resilience.rollbacks, 0u);
    EXPECT_EQ(run.resilience.replayedSegments, 0u);
    EXPECT_EQ(run.resilience.unrecovered, 0u);
}

TEST_F(RecoveryTest, CleanRunWithFullMachineryVerifiesWithoutMismatch)
{
    const OpSequence seq = chainedHMult(2);
    const RunResult clean = cleanRun(seq);

    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.checksumEnabled = true;
    config.resilience.scrub.enabled = true;
    config.resilience.scrub.intervalNs = clean.totalNs / 4.0;
    config.resilience.checkpoint.enabled = true;
    config.resilience.checkpoint.intervalSegments = 8;
    const RunResult run = AnaheimFramework(config).execute(seq);

    // Every verification pass shows up in the timeline, including the
    // end-of-trace one, and none of them finds anything.
    EXPECT_GT(run.resilience.checksumChecks, 0u);
    EXPECT_EQ(countPhase(run, "Verify"), run.resilience.checksumChecks);
    EXPECT_EQ(run.resilience.checksumMismatches, 0u);
    EXPECT_EQ(run.resilience.rollbacks, 0u);
    EXPECT_EQ(run.resilience.gpuFallbacks, 0u);
    EXPECT_EQ(run.resilience.unrecovered, 0u);
    EXPECT_GT(run.totalNs, clean.totalNs); // detection is not free
}

TEST_F(RecoveryTest, LaneChecksumMismatchRollsBackAndRecovers)
{
    // Lane flips are silent at the unit: only the ciphertext checksum
    // at a write-back boundary can catch them, and only a checkpoint
    // rollback can repair them.
    const OpSequence seq = chainedHMult(3);
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.laneBer = 2e-9;
    config.resilience.checksumEnabled = true;
    config.resilience.checkpoint.enabled = true;
    config.resilience.checkpoint.intervalSegments = 2;
    config.resilience.checkpoint.maxRollbacks = 64;
    const RunResult run = AnaheimFramework(config).execute(seq);

    EXPECT_GT(run.resilience.laneFaults, 0u);
    EXPECT_GT(run.resilience.checksumMismatches, 0u);
    EXPECT_GT(run.resilience.rollbacks, 0u);
    EXPECT_EQ(countPhase(run, "Rollback"), run.resilience.rollbacks);
    EXPECT_GE(run.resilience.replayedSegments, run.resilience.rollbacks);
    // Every detected corruption was replayed away: nothing leaked.
    EXPECT_EQ(run.resilience.unrecovered, 0u);
    EXPECT_EQ(run.resilience.gpuFallbacks, 0u);
    EXPECT_EQ(run.resilience.silentErrors, 0u);
}

TEST_F(RecoveryTest, RetryExhaustionRollsBackWhenCheckpointed)
{
    // With a zero retry budget every detected-uncorrectable ECC event
    // immediately escalates; a checkpoint turns what used to be a GPU
    // fallback into a bounded replay.
    const OpSequence seq = chainedHMult(2);
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.ber = 5e-6;
    config.resilience.maxPimRetries = 0;
    config.resilience.checkpoint.enabled = true;
    config.resilience.checkpoint.intervalSegments = 2;
    config.resilience.checkpoint.maxRollbacks = 64;
    const RunResult run = AnaheimFramework(config).execute(seq);

    EXPECT_GT(run.resilience.eccUncorrectable, 0u);
    EXPECT_EQ(run.resilience.pimRetries, 0u);
    EXPECT_GT(run.resilience.rollbacks, 0u);
    EXPECT_EQ(run.resilience.gpuFallbacks, 0u);
    EXPECT_EQ(run.resilience.unrecovered, 0u);
    EXPECT_EQ(countPhase(run, "Rollback"), run.resilience.rollbacks);
}

TEST_F(RecoveryTest, RollbackBudgetBoundsReplayStorms)
{
    // At BER 1e-3 every attempt sees multi-bit events with near
    // certainty, so replays can never succeed: the budget must cap the
    // storm and hand the remaining segments to the GPU.
    const OpSequence seq = chainedHMult(2);
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.ber = 1e-3;
    config.resilience.checkpoint.enabled = true;
    config.resilience.checkpoint.intervalSegments = 4;
    config.resilience.checkpoint.maxRollbacks = 3;
    const RunResult run = AnaheimFramework(config).execute(seq);

    EXPECT_EQ(run.resilience.rollbacks, 3u);
    EXPECT_EQ(countPhase(run, "Rollback"), 3u);
    // Once the budget is spent the old policy takes over.
    EXPECT_GT(run.resilience.gpuFallbacks, 0u);
}

TEST_F(RecoveryTest, GpuFallbackPathIsStableAtFixedSeed)
{
    // Satellite check on the pre-existing fallback branch: with
    // checkpointing off, retry exhaustion still abandons the segment
    // to the GPU, reproducibly at a fixed fault seed.
    const OpSequence seq = buildHMult(TraceParams{});
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.ber = 1e-3;
    config.resilience.faultSeed = 20260806;
    const RunResult a = AnaheimFramework(config).execute(seq);
    const RunResult b = AnaheimFramework(config).execute(seq);

    EXPECT_GT(a.resilience.gpuFallbacks, 0u);
    EXPECT_EQ(a.resilience.rollbacks, 0u);
    EXPECT_EQ(a.resilience.gpuFallbacks, b.resilience.gpuFallbacks);
    EXPECT_EQ(a.resilience.pimRetries, b.resilience.pimRetries);
    EXPECT_DOUBLE_EQ(a.totalNs, b.totalNs);
    // Each fallback re-runs its segment as a GPU timeline entry.
    size_t gpuEntries = 0;
    for (const auto &entry : a.timeline)
        gpuEntries += entry.device == "GPU";
    const RunResult clean = cleanRun(seq);
    size_t cleanGpuEntries = 0;
    for (const auto &entry : clean.timeline)
        cleanGpuEntries += entry.device == "GPU";
    EXPECT_EQ(gpuEntries, cleanGpuEntries + a.resilience.gpuFallbacks);
}

TEST_F(RecoveryTest, IdenticalSeedsReproduceIdenticalRecoveryRuns)
{
    const OpSequence seq = chainedHMult(2);
    auto run = [&](uint64_t seed) {
        AnaheimConfig config = AnaheimConfig::a100NearBank();
        config.resilience.ber = 1e-5;
        config.resilience.laneBer = 1e-10;
        config.resilience.retentionBerPerWindow = 1e-7;
        config.resilience.faultSeed = seed;
        config.resilience.checksumEnabled = true;
        config.resilience.scrub.enabled = true;
        config.resilience.scrub.intervalNs = 50.0e3;
        config.resilience.checkpoint.enabled = true;
        config.resilience.checkpoint.intervalSegments = 8;
        config.resilience.checkpoint.maxRollbacks = 32;
        return AnaheimFramework(config).execute(seq);
    };
    const RunResult a = run(7);
    const RunResult b = run(7);
    const RunResult c = run(8);

    EXPECT_DOUBLE_EQ(a.totalNs, b.totalNs);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
    EXPECT_EQ(a.resilience.faultyWords, b.resilience.faultyWords);
    EXPECT_EQ(a.resilience.laneFaults, b.resilience.laneFaults);
    EXPECT_EQ(a.resilience.retentionFaultyWords,
              b.resilience.retentionFaultyWords);
    EXPECT_EQ(a.resilience.scrubPasses, b.resilience.scrubPasses);
    EXPECT_EQ(a.resilience.checkpoints, b.resilience.checkpoints);
    EXPECT_EQ(a.resilience.rollbacks, b.resilience.rollbacks);
    EXPECT_EQ(a.resilience.checksumMismatches,
              b.resilience.checksumMismatches);
    EXPECT_EQ(a.timeline.size(), b.timeline.size());
    EXPECT_NE(a.resilience.faultyWords, c.resilience.faultyWords);
}

TEST_F(RecoveryTest, CampaignSmokeCellRegression)
{
    // The exact configuration of bench_fault_campaign --smoke's
    // recovering cell (ber 1e-5, scrub 50us, checkpoint every 8), first
    // trial. Counters are pinned: any change to the fault streams, the
    // maintenance cadence or the recovery policy must show up here.
    const OpSequence seq = chainedHMult(4);
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.ber = 1e-5;
    config.resilience.laneBer = 1e-10;
    config.resilience.retentionBerPerWindow = 1e-7;
    config.resilience.faultSeed = 0x0ddfa117u;
    config.resilience.checksumEnabled = true;
    config.resilience.scrub.enabled = true;
    config.resilience.scrub.intervalNs = 50.0e3;
    config.resilience.checkpoint.enabled = true;
    config.resilience.checkpoint.intervalSegments = 8;
    config.resilience.checkpoint.maxRollbacks = 32;
    const RunResult run = AnaheimFramework(config).execute(seq);
    const RunResult again = AnaheimFramework(config).execute(seq);

    // Bitwise-stable across runs...
    EXPECT_DOUBLE_EQ(run.totalNs, again.totalNs);
    EXPECT_EQ(run.resilience.faultyWords, again.resilience.faultyWords);
    // ...internally consistent with the timeline...
    EXPECT_EQ(run.resilience.scrubPasses, countPhase(run, "Scrub"));
    EXPECT_EQ(run.resilience.checkpoints, countPhase(run, "Checkpoint"));
    EXPECT_EQ(run.resilience.rollbacks, countPhase(run, "Rollback"));
    EXPECT_EQ(run.resilience.checksumChecks, countPhase(run, "Verify"));
    // ...and pinned against the recorded baseline.
    const ResilienceStats &s = run.resilience;
    EXPECT_EQ(s.faultyWords, 2668600u);
    EXPECT_EQ(s.eccCorrected, 2668115u);
    EXPECT_EQ(s.eccUncorrectable, 485u);
    EXPECT_EQ(s.laneFaults, 1u);
    EXPECT_EQ(s.retentionFaultyWords, 427609u);
    EXPECT_EQ(s.scrubPasses, 168u);
    EXPECT_EQ(s.scrubCorrected, 426864u);
    EXPECT_EQ(s.scrubUncorrectable, 1u);
    EXPECT_EQ(s.checksumChecks, 34u);
    EXPECT_EQ(s.checksumMismatches, 1u);
    EXPECT_EQ(s.checkpoints, 14u);
    EXPECT_EQ(s.rollbacks, 32u); // budget exhausted at this rate...
    EXPECT_EQ(s.replayedSegments, 111u);
    EXPECT_EQ(s.pimRetries, 95u);
    EXPECT_EQ(s.gpuFallbacks, 6u); // ...then the fallback policy
    EXPECT_EQ(s.unrecovered, 0u);  // but nothing ever leaked
}

} // namespace
} // namespace anaheim

/**
 * @file
 * HealthMonitor / ResourceMap unit tests: permanent-fault
 * classification from error history, quarantine bookkeeping over the
 * lockstep device geometry, and the deterministic permanent-damage
 * model shared by banks and lanes.
 */

#include <gtest/gtest.h>

#include "sim/fault.h"
#include "sim/health.h"
#include "support/error_matchers.h"

namespace anaheim {
namespace {

HealthConfig
enabledConfig(size_t threshold = 3, double windowNs = 0.0)
{
    HealthConfig config;
    config.enabled = true;
    config.permanentThreshold = threshold;
    config.windowNs = windowNs;
    return config;
}

// ------------------------------------------------------ health monitor

TEST(HealthMonitor, QuarantinesASiteAtThePermanentThreshold)
{
    HealthMonitor monitor(enabledConfig(3), 5, 512, 8);
    const FaultSiteId bank{FaultSiteId::Kind::Bank, 2, 17};
    EXPECT_FALSE(monitor.recordError(bank, 10.0));
    EXPECT_FALSE(monitor.recordError(bank, 20.0));
    EXPECT_FALSE(monitor.isQuarantined(bank));
    // The third strike classifies the site permanent.
    EXPECT_TRUE(monitor.recordError(bank, 30.0));
    EXPECT_TRUE(monitor.isQuarantined(bank));
    EXPECT_EQ(monitor.errorEvents(), 3u);
    EXPECT_EQ(monitor.resources().quarantinedBanks(), 1u);
    EXPECT_EQ(monitor.resources().quarantinedLanes(), 0u);
}

TEST(HealthMonitor, ErrorsAgainstAQuarantinedSiteAreIgnored)
{
    HealthMonitor monitor(enabledConfig(1), 5, 512, 8);
    const FaultSiteId bank{FaultSiteId::Kind::Bank, 0, 3};
    EXPECT_TRUE(monitor.recordError(bank, 1.0));
    // Already quarantined: never reported as *newly* quarantined again
    // and not double-counted in the quarantine set.
    EXPECT_FALSE(monitor.recordError(bank, 2.0));
    EXPECT_EQ(monitor.resources().quarantinedBanks(), 1u);
}

TEST(HealthMonitor, DistinctSitesAccumulateIndependently)
{
    HealthMonitor monitor(enabledConfig(2), 5, 512, 8);
    const FaultSiteId bankA{FaultSiteId::Kind::Bank, 1, 7};
    const FaultSiteId bankB{FaultSiteId::Kind::Bank, 1, 8};
    const FaultSiteId lane{FaultSiteId::Kind::MmacLane, 1, 7};
    EXPECT_FALSE(monitor.recordError(bankA, 1.0));
    EXPECT_FALSE(monitor.recordError(bankB, 2.0));
    EXPECT_FALSE(monitor.recordError(lane, 3.0)); // same (group, index)
    EXPECT_TRUE(monitor.recordError(bankA, 4.0));
    EXPECT_FALSE(monitor.isQuarantined(bankB));
    EXPECT_FALSE(monitor.isQuarantined(lane));
    EXPECT_TRUE(monitor.recordError(lane, 5.0));
    EXPECT_EQ(monitor.resources().quarantinedBanks(), 1u);
    EXPECT_EQ(monitor.resources().quarantinedLanes(), 1u);
}

TEST(HealthMonitor, OldEventsAgeOutOfTheWindow)
{
    // Two strikes 1 ms apart with a 0.5 ms window: the first has aged
    // out by the time the second lands, so the site is never
    // classified permanent — transient upsets spread over time do not
    // quarantine healthy hardware.
    HealthMonitor monitor(enabledConfig(2, 0.5e6), 5, 512, 8);
    const FaultSiteId bank{FaultSiteId::Kind::Bank, 0, 0};
    EXPECT_FALSE(monitor.recordError(bank, 0.0));
    EXPECT_FALSE(monitor.recordError(bank, 1.0e6));
    EXPECT_FALSE(monitor.isQuarantined(bank));
    // A burst inside the window does quarantine.
    EXPECT_TRUE(monitor.recordError(bank, 1.2e6));
    EXPECT_TRUE(monitor.isQuarantined(bank));
}

TEST(HealthMonitor, RecordCleanResetsTheHistory)
{
    HealthMonitor monitor(enabledConfig(2), 5, 512, 8);
    const FaultSiteId bank{FaultSiteId::Kind::Bank, 3, 100};
    EXPECT_FALSE(monitor.recordError(bank, 1.0));
    monitor.recordClean(bank); // e.g. a scrub pass verified it clean
    EXPECT_FALSE(monitor.recordError(bank, 2.0));
    EXPECT_TRUE(monitor.recordError(bank, 3.0));
    // Quarantined sites stay quarantined even after recordClean.
    monitor.recordClean(bank);
    EXPECT_TRUE(monitor.isQuarantined(bank));
}

TEST(HealthMonitor, CapacityFloorTracksQuarantinedBanks)
{
    HealthConfig config = enabledConfig(1);
    config.minCapacityFraction = 0.75;
    HealthMonitor monitor(config, 2, 4, 8); // 8 banks total
    EXPECT_DOUBLE_EQ(monitor.capacityFraction(), 1.0);
    EXPECT_FALSE(monitor.belowCapacityFloor());
    monitor.recordError({FaultSiteId::Kind::Bank, 0, 0}, 1.0);
    EXPECT_DOUBLE_EQ(monitor.capacityFraction(), 7.0 / 8.0);
    EXPECT_FALSE(monitor.belowCapacityFloor()); // 0.875 >= 0.75
    monitor.recordError({FaultSiteId::Kind::Bank, 0, 1}, 2.0);
    monitor.recordError({FaultSiteId::Kind::Bank, 1, 2}, 3.0);
    EXPECT_DOUBLE_EQ(monitor.capacityFraction(), 5.0 / 8.0);
    EXPECT_TRUE(monitor.belowCapacityFloor());
}

TEST(HealthMonitor, RejectsBadConfigurationAndCoordinates)
{
    HealthConfig config = enabledConfig(0);
    EXPECT_ANAHEIM_ERROR(HealthMonitor(config, 5, 512, 8),
                         InvalidArgument, "threshold");
    config = enabledConfig(1);
    config.minCapacityFraction = 1.5;
    EXPECT_ANAHEIM_ERROR(HealthMonitor(config, 5, 512, 8),
                         InvalidArgument, "capacity");
    HealthMonitor monitor(enabledConfig(1), 5, 512, 8);
    EXPECT_ANAHEIM_ERROR(
        monitor.recordError({FaultSiteId::Kind::Bank, 5, 0}, 1.0),
        InvalidArgument, "die group");
    EXPECT_ANAHEIM_ERROR(
        monitor.recordError({FaultSiteId::Kind::Bank, 0, 512}, 1.0),
        InvalidArgument, "resource span");
    EXPECT_ANAHEIM_ERROR(
        monitor.recordError({FaultSiteId::Kind::MmacLane, 0, 8}, 1.0),
        InvalidArgument, "resource span");
}

// -------------------------------------------------------- resource map

TEST(ResourceMap, GroupQueriesAndWorstGroup)
{
    HealthMonitor monitor(enabledConfig(1), 3, 16, 8);
    monitor.recordError({FaultSiteId::Kind::Bank, 0, 2}, 1.0);
    monitor.recordError({FaultSiteId::Kind::Bank, 2, 5}, 2.0);
    monitor.recordError({FaultSiteId::Kind::Bank, 2, 9}, 3.0);
    monitor.recordError({FaultSiteId::Kind::MmacLane, 1, 4}, 4.0);
    const ResourceMap &map = monitor.resources();

    EXPECT_EQ(map.quarantinedBanks(), 3u);
    EXPECT_EQ(map.quarantinedLanes(), 1u);
    EXPECT_EQ(map.quarantinedBanksInGroup(0), 1u);
    EXPECT_EQ(map.quarantinedBanksInGroup(1), 0u);
    EXPECT_EQ(map.quarantinedBanksInGroup(2), 2u);
    EXPECT_EQ(map.maxQuarantinedBanksPerGroup(), 2u);
    EXPECT_EQ(map.quarantinedLanesInGroup(1), 1u);
    EXPECT_EQ(map.maxQuarantinedLanesPerGroup(), 1u);
    EXPECT_EQ(map.offlineBanksInGroup(2),
              (std::vector<size_t>{5, 9}));
    EXPECT_TRUE(map.offlineBanksInGroup(1).empty());
    // 45 healthy of 48 banks.
    EXPECT_DOUBLE_EQ(map.bankCapacityFraction(), 45.0 / 48.0);
}

// -------------------------------------------- permanent damage model

TEST(PermanentFaultyWords, ProportionalAndNeverZeroWhileAccessing)
{
    // No failed units or no accesses: no damage.
    EXPECT_EQ(permanentFaultyWords(1000, 0, 512), 0u);
    EXPECT_EQ(permanentFaultyWords(0, 3, 512), 0u);
    // Proportional share of the lockstep stripe.
    EXPECT_EQ(permanentFaultyWords(5120, 1, 512), 10u);
    EXPECT_EQ(permanentFaultyWords(5120, 8, 512), 80u);
    // A stuck-at site cannot be missed by a replay: even when the
    // proportional share rounds to zero, at least one word is hit —
    // this is exactly what makes the failure deterministic across
    // retries, unlike a transient.
    EXPECT_EQ(permanentFaultyWords(10, 1, 512), 1u);
    EXPECT_EQ(permanentFaultyWords(1, 1, 512), 1u);
}

TEST(PermanentBankSampling, DeterministicPerSeedAndEpochFree)
{
    FaultConfig config;
    config.permanentBankRate = 5e-3;
    config.seed = 1234;
    const FaultModel model(config);
    const auto a = model.samplePermanentBanks(5, 512);
    const auto b = model.samplePermanentBanks(5, 512);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].dieGroup, b[i].dieGroup);
        EXPECT_EQ(a[i].bank, b[i].bank);
    }
    EXPECT_GT(a.size(), 0u); // ~13 expected failures over 2560 banks
    // A different seed draws a different device.
    config.seed = 1235;
    const auto c = FaultModel(config).samplePermanentBanks(5, 512);
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i)
        differs = !(a[i].dieGroup == c[i].dieGroup &&
                    a[i].bank == c[i].bank);
    EXPECT_TRUE(differs);
}

TEST(PermanentBankSampling, ExplicitBanksMergeWithTheDraw)
{
    FaultConfig config;
    config.permanentBanks.push_back({1, 7});
    config.permanentBanks.push_back({1, 7}); // duplicate collapses
    config.permanentBanks.push_back({0, 3});
    const FaultModel model(config);
    const auto banks = model.samplePermanentBanks(5, 512);
    ASSERT_EQ(banks.size(), 2u); // sorted by (dieGroup, bank), unique
    EXPECT_EQ(banks[0].dieGroup, 0u);
    EXPECT_EQ(banks[0].bank, 3u);
    EXPECT_EQ(banks[1].dieGroup, 1u);
    EXPECT_EQ(banks[1].bank, 7u);
    // Out-of-range explicit banks are dropped, not an error (a config
    // written for a bigger device still runs on a smaller one).
    EXPECT_TRUE(model.samplePermanentBanks(1, 3).empty());
}

} // namespace
} // namespace anaheim

/**
 * @file
 * Fault-injection + resilience tests across all four layers: the
 * SEC-DED (39,32) code itself, the seedable fault model, the
 * PimFunctionalUnit read path, and AnaheimFramework's
 * retry-then-GPU-fallback policy.
 */

#include <gtest/gtest.h>

#include "anaheim/framework.h"
#include "anaheim/workloads.h"
#include "common/rng.h"
#include "math/primes.h"
#include "pim/functional.h"
#include "poly/checksum.h"
#include "sim/ecc.h"
#include "sim/fault.h"
#include "sim/readpath.h"
#include "support/error_matchers.h"

namespace anaheim {
namespace {

// ---------------------------------------------------------------- ecc

TEST(SecDed, RoundTripsCleanWords)
{
    Rng rng(7);
    for (int trial = 0; trial < 2000; ++trial) {
        const uint32_t word = static_cast<uint32_t>(rng.next());
        const auto decoded = SecDed3932::decode(SecDed3932::encode(word));
        EXPECT_EQ(decoded.outcome, EccOutcome::Clean);
        EXPECT_EQ(decoded.data, word);
    }
    for (uint32_t word : {0u, 1u, 0xffffffffu, 0x0fffffffu}) {
        const auto decoded = SecDed3932::decode(SecDed3932::encode(word));
        EXPECT_EQ(decoded.outcome, EccOutcome::Clean);
        EXPECT_EQ(decoded.data, word);
    }
}

TEST(SecDed, CorrectsEverySingleBitFlip)
{
    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        const uint32_t word = static_cast<uint32_t>(rng.next());
        const uint64_t codeword = SecDed3932::encode(word);
        for (unsigned bit = 0; bit < SecDed3932::kCodeBits; ++bit) {
            const auto decoded =
                SecDed3932::decode(codeword ^ (uint64_t{1} << bit));
            EXPECT_EQ(decoded.outcome, EccOutcome::Corrected)
                << "bit " << bit;
            EXPECT_EQ(decoded.data, word) << "bit " << bit;
        }
    }
}

TEST(SecDed, DetectsEveryDoubleBitFlip)
{
    Rng rng(13);
    for (int trial = 0; trial < 10; ++trial) {
        const uint32_t word = static_cast<uint32_t>(rng.next());
        const uint64_t codeword = SecDed3932::encode(word);
        for (unsigned b1 = 0; b1 < SecDed3932::kCodeBits; ++b1) {
            for (unsigned b2 = b1 + 1; b2 < SecDed3932::kCodeBits; ++b2) {
                const uint64_t corrupted = codeword ^
                                           (uint64_t{1} << b1) ^
                                           (uint64_t{1} << b2);
                EXPECT_EQ(SecDed3932::decode(corrupted).outcome,
                          EccOutcome::Uncorrectable)
                    << "bits " << b1 << "," << b2;
            }
        }
    }
}

// -------------------------------------------------------- fault model

TEST(FaultModel, IdenticalSeedsReproduceIdenticalFaultSites)
{
    FaultConfig config;
    config.ber = 1e-2;
    config.seed = 42;
    const FaultModel modelA(config);
    const FaultModel modelB(config);
    config.seed = 43;
    const FaultModel modelC(config);

    bool anyFault = false;
    bool seedsDiffer = false;
    for (size_t limb = 0; limb < 4; ++limb) {
        for (size_t word = 0; word < 512; ++word) {
            const uint64_t a = modelA.corrupt(0, limb, word, 0, 39);
            const uint64_t b = modelB.corrupt(0, limb, word, 0, 39);
            const uint64_t c = modelC.corrupt(0, limb, word, 0, 39);
            EXPECT_EQ(a, b);
            anyFault |= a != 0;
            seedsDiffer |= a != c;
        }
    }
    EXPECT_TRUE(anyFault);   // 2048 words * 39 bits at 1e-2 BER
    EXPECT_TRUE(seedsDiffer);
}

TEST(FaultModel, EpochResamplesTransientFaults)
{
    FaultConfig config;
    config.ber = 0.5; // every word faulted with near certainty
    const FaultModel model(config);
    bool epochsDiffer = false;
    for (size_t word = 0; word < 64 && !epochsDiffer; ++word) {
        epochsDiffer = model.corrupt(0, 0, word, 0, 39) !=
                       model.corrupt(0, 0, word, 1, 39);
    }
    EXPECT_TRUE(epochsDiffer);
}

TEST(FaultModel, TargetedStuckAtFaultsPersistAcrossEpochs)
{
    FaultConfig config;
    config.targets.push_back({0, 5, 0b11, FaultKind::StuckAtOne});
    const FaultModel model(config);
    for (uint64_t epoch = 0; epoch < 3; ++epoch) {
        EXPECT_EQ(model.corrupt(0, 0, 5, epoch, 39), 0b11u);
        EXPECT_EQ(model.corrupt(0b11, 0, 5, epoch, 39), 0b11u);
    }
    // Other coordinates are untouched.
    EXPECT_EQ(model.corrupt(0, 0, 6, 0, 39), 0u);
    EXPECT_EQ(model.corrupt(0, 1, 5, 0, 39), 0u);
}

TEST(FaultModel, RejectsBadConfiguration)
{
    FaultConfig config;
    config.ber = 1.5;
    EXPECT_ANAHEIM_ERROR(FaultModel model(config), InvalidArgument,
                         "bit-error rate");
    config.ber = 0.0;
    config.targets.push_back({0, 0, 0, FaultKind::Transient});
    EXPECT_ANAHEIM_ERROR(FaultModel model(config), InvalidArgument,
                         "empty bit mask");
}

TEST(FaultModel, EventSamplingIsDeterministicAndScales)
{
    FaultConfig config;
    config.ber = 1e-4;
    config.seed = 99;
    const FaultModel model(config);
    const auto a = model.sampleEvents(1 << 20, 7);
    const auto b = model.sampleEvents(1 << 20, 7);
    EXPECT_EQ(a.faulty, b.faulty);
    EXPECT_EQ(a.singleBit, b.singleBit);
    EXPECT_EQ(a.multiBit, b.multiBit);
    // ~39e-4 faulty words per read: expect thousands over 2^20 reads.
    EXPECT_GT(a.faulty, 1000u);
    EXPECT_GT(a.singleBit, a.multiBit);
    // BER 0 never produces events.
    const FaultModel clean(FaultConfig{});
    EXPECT_EQ(clean.sampleEvents(1 << 20, 7).faulty, 0u);
}

TEST(FaultModel, DatapathSitesAreDisjoint)
{
    // Three targeted faults at the *same array offset* but different
    // fault sites must never shadow each other.
    FaultConfig config;
    config.targets.push_back(
        {0, siteWord(FaultSite::WriteBack, 9), 0b1, FaultKind::Transient});
    config.targets.push_back(
        {0, siteWord(FaultSite::MmacLane, 9), 0b10, FaultKind::Transient});
    const FaultModel model(config);

    // The operand-read site (tag 0) at offset 9 stays clean...
    EXPECT_EQ(model.corrupt(0, 0, 9, 0, 39), 0u);
    // ...the write-back site sees only its own mask...
    EXPECT_EQ(model.corrupt(0, 0, siteWord(FaultSite::WriteBack, 9), 0, 39),
              0b1u);
    // ...and the lane site (corruptLane folds the tag itself) its own.
    EXPECT_EQ(model.corruptLane(0, 0, 9, 0), 0b10u);
}

TEST(FaultModel, LaneEventSamplingIsDeterministicAndUnclassified)
{
    FaultConfig config;
    config.laneBer = 1e-6;
    config.seed = 77;
    const FaultModel model(config);
    const auto a = model.sampleLaneEvents(1 << 22, 3);
    const auto b = model.sampleLaneEvents(1 << 22, 3);
    EXPECT_EQ(a.faulty, b.faulty);
    // ~28e-6 per lane op over 4M ops: expect on the order of 100 hits.
    EXPECT_GT(a.faulty, 0u);
    // No ECC on the lane: no single/multi classification exists.
    EXPECT_EQ(a.singleBit, 0u);
    EXPECT_EQ(a.multiBit, 0u);
    // A zero rate never produces lane events.
    const FaultModel clean(FaultConfig{});
    EXPECT_EQ(clean.sampleLaneEvents(1 << 22, 3).faulty, 0u);
}

TEST(FaultModel, RetentionSamplingIsKeyedByWindow)
{
    FaultConfig config;
    config.retentionBerPerWindow = 1e-4;
    config.seed = 78;
    const FaultModel model(config);
    const auto a = model.sampleRetention(1, 1 << 20);
    EXPECT_EQ(a.faulty, model.sampleRetention(1, 1 << 20).faulty);
    EXPECT_GT(a.faulty, 0u);
    EXPECT_EQ(a.faulty, a.singleBit + a.multiBit);
    EXPECT_GT(a.singleBit, a.multiBit); // singles dominate at low rates
    // Distinct refresh windows draw independently.
    bool differs = false;
    for (uint64_t window = 2; window < 8 && !differs; ++window)
        differs = model.sampleRetention(window, 1 << 20).faulty != a.faulty;
    EXPECT_TRUE(differs);
    EXPECT_EQ(model.sampleRetention(1, 0).faulty, 0u);
}

// ----------------------------------------------------- pim read path

class ReadPathTest : public ::testing::Test
{
  protected:
    static constexpr uint64_t kQ = 268369921; // 28-bit NTT prime

    PimVector
    randomVector(size_t n, uint64_t seed)
    {
        Rng rng(seed);
        PimVector v(n);
        for (auto &x : v)
            x = static_cast<uint32_t>(rng.uniform(kQ));
        return v;
    }
};

TEST_F(ReadPathTest, SingleBitFlipIsCorrectedExactly)
{
    const PimFunctionalUnit golden(kQ);
    PimFunctionalUnit unit(kQ);
    const auto a = randomVector(256, 1);
    const auto b = randomVector(256, 2);

    FaultConfig faults;
    // One flipped bit in operand a's word 17, one in operand b's
    // word 40 (slot 1): both inside SEC's reach.
    faults.targets.push_back(
        {0, operandWord(0, 17), uint64_t{1} << 12, FaultKind::Transient});
    faults.targets.push_back(
        {0, operandWord(1, 40), uint64_t{1} << 3, FaultKind::Transient});
    PimReadPath path(faults, /*eccEnabled=*/true);
    unit.attachReadPath(&path);

    EXPECT_EQ(unit.add(a, b), golden.add(a, b));
    EXPECT_EQ(path.counters().corrected, 2u);
    EXPECT_EQ(path.counters().uncorrectable, 0u);
    EXPECT_EQ(path.counters().silent, 0u);
    EXPECT_FALSE(path.uncorrectableSeen());
}

TEST_F(ReadPathTest, DoubleBitFlipIsDetectedUncorrectable)
{
    PimFunctionalUnit unit(kQ);
    const auto a = randomVector(64, 3);

    FaultConfig faults;
    faults.targets.push_back(
        {0, operandWord(0, 9), 0b101, FaultKind::Transient});
    PimReadPath path(faults, /*eccEnabled=*/true);
    unit.attachReadPath(&path);

    unit.move(a);
    EXPECT_EQ(path.counters().uncorrectable, 1u);
    EXPECT_TRUE(path.uncorrectableSeen());
    path.clearUncorrectableSeen();
    EXPECT_FALSE(path.uncorrectableSeen());
}

TEST_F(ReadPathTest, WithoutEccFaultsAreSilent)
{
    const PimFunctionalUnit golden(kQ);
    PimFunctionalUnit unit(kQ);
    const auto a = randomVector(64, 4);

    FaultConfig faults;
    faults.targets.push_back(
        {0, operandWord(0, 9), uint64_t{1} << 2, FaultKind::Transient});
    PimReadPath path(faults, /*eccEnabled=*/false);
    unit.attachReadPath(&path);

    const auto out = unit.move(a);
    EXPECT_NE(out, golden.move(a)); // corruption reached the output
    EXPECT_EQ(path.counters().silent, 1u);
    EXPECT_EQ(path.counters().corrected, 0u);
    EXPECT_EQ(path.counters().uncorrectable, 0u);
    EXPECT_FALSE(path.uncorrectableSeen()); // nothing detected it
}

TEST_F(ReadPathTest, WriteBackSingleBitFlipIsCorrected)
{
    const PimFunctionalUnit golden(kQ);
    PimFunctionalUnit unit(kQ);
    const auto a = randomVector(256, 9);
    const auto b = randomVector(256, 10);

    FaultConfig faults;
    // One flipped driver bit while storing result word 17: the next
    // read's SEC decode repairs it in place.
    faults.targets.push_back(
        {0, siteWord(FaultSite::WriteBack, operandWord(0, 17)),
         uint64_t{1} << 7, FaultKind::Transient});
    PimReadPath path(faults, /*eccEnabled=*/true);
    unit.attachReadPath(&path);

    EXPECT_EQ(unit.add(a, b), golden.add(a, b));
    EXPECT_EQ(path.counters().wordsWritten, a.size());
    EXPECT_EQ(path.counters().corrected, 1u);
    EXPECT_EQ(path.counters().silent, 0u);
    EXPECT_FALSE(path.uncorrectableSeen());
}

TEST_F(ReadPathTest, WriteBackDoubleBitFlipIsUncorrectable)
{
    PimFunctionalUnit unit(kQ);
    const auto a = randomVector(64, 11);
    const auto b = randomVector(64, 12);

    FaultConfig faults;
    faults.targets.push_back(
        {0, siteWord(FaultSite::WriteBack, operandWord(0, 9)), 0b101,
         FaultKind::Transient});
    PimReadPath path(faults, /*eccEnabled=*/true);
    unit.attachReadPath(&path);

    unit.add(a, b);
    EXPECT_EQ(path.counters().uncorrectable, 1u);
    EXPECT_TRUE(path.uncorrectableSeen());
}

TEST_F(ReadPathTest, LaneFaultIsSilentUntilAChecksumCatchesIt)
{
    const PimFunctionalUnit golden(kQ);
    PimFunctionalUnit unit(kQ);
    const auto a = randomVector(128, 13);
    const auto b = randomVector(128, 14);
    const PimVector clean = golden.mult(a, b);

    FaultConfig faults;
    // A post-multiply transient flip inside lane op 33. ECC never sees
    // the 28-bit MMAC datapath, so nothing on the unit detects it.
    faults.targets.push_back(
        {0, siteWord(FaultSite::MmacLane, 33), uint64_t{1} << 2,
         FaultKind::Transient});
    PimReadPath path(faults, /*eccEnabled=*/true);
    unit.attachReadPath(&path);

    const PimVector out = unit.mult(a, b);
    size_t diffs = 0;
    for (size_t i = 0; i < out.size(); ++i)
        diffs += out[i] != clean[i];
    EXPECT_EQ(diffs, 1u);
    EXPECT_NE(out[33], clean[33]);
    EXPECT_EQ(path.counters().laneFaults, 1u);
    EXPECT_EQ(path.counters().silent, 1u);
    EXPECT_EQ(path.counters().corrected, 0u);
    EXPECT_EQ(path.counters().uncorrectable, 0u);
    EXPECT_FALSE(path.uncorrectableSeen());
    // The limb-level rolling checksum downstream does catch it.
    EXPECT_NE(limbChecksum(out), limbChecksum(clean));
}

TEST_F(ReadPathTest, StuckAtSiteFailsEveryReplayGeneration)
{
    // The nextEpoch() contract: transient BER faults re-sample on a
    // replay, stuck-at faults persist by construction. A retry/replay
    // loop into a stuck-at site must therefore fail deterministically
    // on every generation — the signature the health monitor uses to
    // classify a site permanent.
    PimFunctionalUnit unit(kQ);
    auto a = randomVector(64, 21);
    a[9] = 0; // encode(0) has bits 0/2 clear: StuckAtOne lands 2 flips
    FaultConfig faults;
    faults.targets.push_back(
        {0, operandWord(0, 9), 0b101, FaultKind::StuckAtOne});
    PimReadPath path(faults, /*eccEnabled=*/true);
    unit.attachReadPath(&path);

    for (uint64_t generation = 0; generation < 4; ++generation) {
        path.clearUncorrectableSeen();
        unit.move(a);
        EXPECT_TRUE(path.uncorrectableSeen())
            << "generation " << generation;
        path.nextEpoch(); // the replay that would clear a transient
    }
    EXPECT_EQ(path.counters().uncorrectable, 4u);
    EXPECT_EQ(path.counters().corrected, 0u);
}

TEST_F(ReadPathTest, TransientFaultsResampleAcrossReplayGenerations)
{
    // The counterpart: at a heavy transient BER some words that failed
    // in one generation read clean in the next — replay is the right
    // response to a transient, and only to a transient.
    PimFunctionalUnit unit(kQ);
    const auto a = randomVector(256, 22);
    FaultConfig faults;
    faults.ber = 1e-3;
    faults.seed = 4321;
    PimReadPath path(faults, /*eccEnabled=*/true);
    unit.attachReadPath(&path);

    std::vector<uint64_t> faultyPerGen;
    for (uint64_t generation = 0; generation < 4; ++generation) {
        path.resetCounters();
        unit.move(a);
        faultyPerGen.push_back(path.counters().faultyWords);
        path.nextEpoch();
    }
    bool differs = false;
    for (size_t g = 1; g < faultyPerGen.size(); ++g)
        differs |= faultyPerGen[g] != faultyPerGen[0];
    EXPECT_TRUE(differs);
}

TEST_F(ReadPathTest, EccKeepsOutputsExactUnderModerateBer)
{
    const PimFunctionalUnit golden(kQ);
    PimFunctionalUnit unit(kQ);
    const auto a = randomVector(4096, 5);
    const auto b = randomVector(4096, 6);

    FaultConfig faults;
    faults.ber = 1e-4; // single-bit territory: ~32 upsets in 16k reads
    faults.seed = 1234;
    PimReadPath path(faults, /*eccEnabled=*/true);
    unit.attachReadPath(&path);

    const auto out = unit.mult(a, b);
    if (path.counters().uncorrectable == 0) {
        EXPECT_EQ(out, golden.mult(a, b));
        EXPECT_EQ(path.counters().silent, 0u);
    }
    EXPECT_GT(path.counters().faultyWords, 0u);
    EXPECT_GT(path.counters().corrected, 0u);
}

TEST_F(ReadPathTest, DetachedPathIsBitwiseIdenticalGoldenPath)
{
    const PimFunctionalUnit golden(kQ);
    PimFunctionalUnit unit(kQ);
    FaultConfig faults;
    faults.ber = 1e-2;
    PimReadPath path(faults, true);
    unit.attachReadPath(&path);
    unit.attachReadPath(nullptr); // detach again

    const auto a = randomVector(128, 7);
    const auto b = randomVector(128, 8);
    EXPECT_EQ(unit.add(a, b), golden.add(a, b));
    EXPECT_EQ(unit.mult(a, b), golden.mult(a, b));
    EXPECT_EQ(unit.tensor(a, b, a, b), golden.tensor(a, b, a, b));
}

// ------------------------------------------------ framework fallback

class FrameworkResilienceTest : public ::testing::Test
{
  protected:
    RunResult
    run(double ber, bool ecc, uint64_t seed = 0x0ddfa117u)
    {
        AnaheimConfig config = AnaheimConfig::a100NearBank();
        config.resilience.ber = ber;
        config.resilience.eccEnabled = ecc;
        config.resilience.faultSeed = seed;
        const AnaheimFramework framework(config);
        return framework.execute(buildHMult(TraceParams{}));
    }
};

TEST_F(FrameworkResilienceTest, ZeroBerLeavesTimingAndEnergyUntouched)
{
    const RunResult clean = run(0.0, true);
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    const AnaheimFramework baseline(config);
    const RunResult reference =
        baseline.execute(buildHMult(TraceParams{}));
    EXPECT_DOUBLE_EQ(clean.totalNs, reference.totalNs);
    EXPECT_DOUBLE_EQ(clean.energyPj, reference.energyPj);
    EXPECT_EQ(clean.resilience.faultyWords, 0u);
    EXPECT_EQ(clean.resilience.pimRetries, 0u);
    EXPECT_EQ(clean.resilience.gpuFallbacks, 0u);
}

TEST_F(FrameworkResilienceTest, UncorrectableEventsRetryThenFallBack)
{
    // At BER 1e-3, a multi-megaword PIM segment sees double-bit events
    // with near certainty on every attempt: the framework must charge
    // retries and then abandon the segment to the GPU.
    const RunResult faulty = run(1e-3, true);
    const RunResult clean = run(0.0, true);
    EXPECT_GT(faulty.resilience.eccUncorrectable, 0u);
    EXPECT_GT(faulty.resilience.pimRetries, 0u);
    EXPECT_GT(faulty.resilience.gpuFallbacks, 0u);
    EXPECT_GT(faulty.totalNs, clean.totalNs);
    EXPECT_GT(faulty.energyPj, clean.energyPj);
    // Each fallback shows up as a GPU timeline entry re-running the
    // abandoned segment.
    size_t gpuEntries = 0;
    for (const auto &entry : faulty.timeline)
        gpuEntries += entry.device == "GPU";
    size_t cleanGpuEntries = 0;
    for (const auto &entry : clean.timeline)
        cleanGpuEntries += entry.device == "GPU";
    EXPECT_EQ(gpuEntries,
              cleanGpuEntries + faulty.resilience.gpuFallbacks);
}

TEST_F(FrameworkResilienceTest, RetryBudgetBoundsReplays)
{
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.ber = 1e-3;
    config.resilience.maxPimRetries = 0;
    const AnaheimFramework framework(config);
    const RunResult result =
        framework.execute(buildHMult(TraceParams{}));
    EXPECT_EQ(result.resilience.pimRetries, 0u);
    EXPECT_GT(result.resilience.gpuFallbacks, 0u);
}

TEST_F(FrameworkResilienceTest, WithoutEccFaultsPassSilently)
{
    const RunResult result = run(1e-3, false);
    EXPECT_GT(result.resilience.silentErrors, 0u);
    EXPECT_EQ(result.resilience.pimRetries, 0u);
    EXPECT_EQ(result.resilience.gpuFallbacks, 0u);
    EXPECT_EQ(result.resilience.eccCorrected, 0u);
    // Undetected faults cost nothing in time: same schedule as clean.
    const RunResult clean = run(0.0, true);
    EXPECT_DOUBLE_EQ(result.totalNs, clean.totalNs);
}

TEST_F(FrameworkResilienceTest, IdenticalSeedsReproduceIdenticalRuns)
{
    const RunResult a = run(1e-4, true, 7);
    const RunResult b = run(1e-4, true, 7);
    const RunResult c = run(1e-4, true, 8);
    EXPECT_DOUBLE_EQ(a.totalNs, b.totalNs);
    EXPECT_EQ(a.resilience.faultyWords, b.resilience.faultyWords);
    EXPECT_EQ(a.resilience.eccCorrected, b.resilience.eccCorrected);
    EXPECT_EQ(a.resilience.pimRetries, b.resilience.pimRetries);
    EXPECT_EQ(a.resilience.gpuFallbacks, b.resilience.gpuFallbacks);
    EXPECT_NE(a.resilience.faultyWords, c.resilience.faultyWords);
}

} // namespace
} // namespace anaheim

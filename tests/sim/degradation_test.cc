/**
 * @file
 * End-to-end graceful-degradation tests of the framework escalation
 * ladder: permanent faults must be classified by the health monitor,
 * quarantined, and executed around via replan + replay — with GPU
 * fallback reserved for the capacity floor or an exhausted budget —
 * and the whole campaign must stay bitwise deterministic in the fault
 * seed, including across thread counts.
 */

#include <gtest/gtest.h>

#include "anaheim/framework.h"
#include "common/parallel.h"
#include "trace/builders.h"

namespace anaheim {
namespace {

/** Chained-HMULT trace long enough to cross checkpoint intervals. */
OpSequence
hmultChain(size_t repeats)
{
    OpSequence seq = buildHMult(TraceParams{});
    const OpSequence one = seq;
    for (size_t r = 1; r < repeats; ++r)
        seq.append(one);
    seq.name = "hmult_chain";
    return seq;
}

/** Full escalation ladder: ECC + checksums + checkpoints + health. */
AnaheimConfig
degradationConfig()
{
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    ResilienceConfig &rc = config.resilience;
    rc.checksumEnabled = true;
    rc.checkpoint.enabled = true;
    rc.checkpoint.intervalSegments = 8;
    rc.checkpoint.maxRollbacks = 32;
    rc.health.enabled = true;
    rc.health.permanentThreshold = 2;
    return config;
}

uint64_t
fallbackCauseSum(const ResilienceStats &res)
{
    return res.gpuFallbacksRetryExhausted +
           res.gpuFallbacksUncheckpointed +
           res.gpuFallbacksCapacityFloor;
}

TEST(Degradation, SinglePermanentBankQuarantinesRemapsAndCompletes)
{
    // The acceptance scenario: one permanently failed bank at a fixed
    // seed. Health monitoring must classify it permanent after
    // repeated deterministic failures, quarantine it, replan on the
    // remaining 511 banks, and finish the run on PIM — zero GPU
    // fallbacks, zero unrecovered corruption.
    AnaheimConfig config = degradationConfig();
    config.resilience.permanentBanks.push_back({2, 17});
    const RunResult result =
        AnaheimFramework(config).execute(hmultChain(2));
    const ResilienceStats &res = result.resilience;

    EXPECT_GT(res.permanentFaultyWords, 0u);
    EXPECT_GT(res.healthErrorEvents, 0u);
    EXPECT_EQ(res.quarantinedBanks, 1u);
    EXPECT_EQ(res.migrations, 1u);
    EXPECT_EQ(res.gpuFallbacks, 0u);
    EXPECT_EQ(res.unrecovered, 0u);
    EXPECT_FALSE(result.pimOffline);
    EXPECT_DOUBLE_EQ(result.pimCapacityFraction,
                     (5.0 * 512.0 - 1.0) / (5.0 * 512.0));
    // After the migration the failed bank is out of the datapath: the
    // damage stops accumulating, so the run ends with the same
    // permanent word count a single pre-quarantine window produced.
    // The Quarantine/Migrate phases must be visible on the timeline.
    size_t quarantineEntries = 0;
    size_t migrateEntries = 0;
    for (const GanttEntry &entry : result.timeline) {
        quarantineEntries += entry.phase == "Quarantine" ? 1 : 0;
        migrateEntries += entry.phase == "Migrate" ? 1 : 0;
    }
    EXPECT_EQ(quarantineEntries, 1u);
    EXPECT_EQ(migrateEntries, 1u);
}

TEST(Degradation, HealthDisabledBurnsTheRollbackBudgetAndFallsBack)
{
    // Same single-dead-bank device with the monitor off: replay storms
    // into the stuck site until the rollback budget dies, then the
    // segment is abandoned to the GPU — the pre-quarantine behavior
    // the health monitor exists to avoid.
    AnaheimConfig config = degradationConfig();
    config.resilience.permanentBanks.push_back({2, 17});
    config.resilience.health.enabled = false;
    const RunResult result =
        AnaheimFramework(config).execute(hmultChain(2));
    const ResilienceStats &res = result.resilience;

    EXPECT_EQ(res.rollbacks, 32u); // maxRollbacks
    EXPECT_GT(res.gpuFallbacks, 0u);
    EXPECT_EQ(res.gpuFallbacks, res.gpuFallbacksRetryExhausted);
    EXPECT_EQ(res.migrations, 0u);
    EXPECT_EQ(res.quarantinedBanks, 0u);
    EXPECT_DOUBLE_EQ(result.pimCapacityFraction, 1.0);
}

TEST(Degradation, FallbackCausesAlwaysSumToTheAggregate)
{
    // Across very different escalation paths the per-cause counters
    // must partition the aggregate exactly.
    for (const bool health : {false, true}) {
        for (const bool checkpoint : {false, true}) {
            AnaheimConfig config = degradationConfig();
            config.resilience.permanentBanks.push_back({0, 0});
            config.resilience.health.enabled = health;
            config.resilience.checkpoint.enabled = checkpoint;
            const RunResult result =
                AnaheimFramework(config).execute(hmultChain(2));
            EXPECT_EQ(fallbackCauseSum(result.resilience),
                      result.resilience.gpuFallbacks)
                << "health=" << health << " checkpoint=" << checkpoint;
        }
    }
}

TEST(Degradation, WithoutCheckpointFallbacksAreTaggedUncheckpointed)
{
    AnaheimConfig config = degradationConfig();
    config.resilience.permanentBanks.push_back({0, 0});
    config.resilience.health.enabled = false;
    config.resilience.checkpoint.enabled = false;
    const RunResult result =
        AnaheimFramework(config).execute(hmultChain(2));
    const ResilienceStats &res = result.resilience;
    EXPECT_GT(res.gpuFallbacks, 0u);
    EXPECT_EQ(res.gpuFallbacks, res.gpuFallbacksUncheckpointed);
    EXPECT_EQ(res.gpuFallbacksRetryExhausted, 0u);
}

TEST(Degradation, CapacityFloorSendsRemainingPimWorkToTheGpu)
{
    // A floor just under full capacity: quarantining the two dead
    // banks drops the healthy fraction below it, so the framework
    // must abandon PIM offload instead of running a degraded device
    // it considers slower than the GPU — and still finish clean.
    AnaheimConfig config = degradationConfig();
    config.resilience.permanentBanks.push_back({1, 5});
    config.resilience.permanentBanks.push_back({3, 9});
    config.resilience.health.minCapacityFraction = 0.9999;
    const RunResult result =
        AnaheimFramework(config).execute(hmultChain(2));
    const ResilienceStats &res = result.resilience;

    EXPECT_TRUE(result.pimOffline);
    EXPECT_EQ(res.quarantinedBanks, 2u);
    EXPECT_GT(res.gpuFallbacksCapacityFloor, 0u);
    EXPECT_EQ(res.unrecovered, 0u);
    EXPECT_LT(result.pimCapacityFraction, 0.9999);
}

TEST(Degradation, PermanentLaneFaultIsCaughtByChecksumsAndQuarantined)
{
    // No ECC reaches the MMAC datapath: a dead lane corrupts silently
    // and only the write-back checksum sees it. The monitor must
    // attribute the mismatches to the lane, quarantine it, and the
    // degraded model serializes its multiplies onto the survivors.
    AnaheimConfig config = degradationConfig();
    config.resilience.permanentLanes.push_back({0, 3});
    const RunResult result =
        AnaheimFramework(config).execute(hmultChain(2));
    const ResilienceStats &res = result.resilience;

    EXPECT_GT(res.permanentLaneFaults, 0u);
    EXPECT_GT(res.checksumMismatches, 0u);
    EXPECT_EQ(res.quarantinedLanes, 1u);
    EXPECT_GE(res.migrations, 1u);
    EXPECT_EQ(res.unrecovered, 0u);
    EXPECT_EQ(res.gpuFallbacks, 0u);
    // Banks were never suspects: full bank capacity remains.
    EXPECT_EQ(res.quarantinedBanks, 0u);
    EXPECT_DOUBLE_EQ(result.pimCapacityFraction, 1.0);
}

TEST(Degradation, QuarantineSlowsPimDownButKeepsItFasterThanFallback)
{
    // The degraded device pays real time (511-bank striping is longer
    // per limb), and the fallback path pays much more.
    AnaheimConfig clean = degradationConfig();
    AnaheimConfig degraded = clean;
    degraded.resilience.permanentBanks.push_back({2, 17});
    AnaheimConfig fallback = degraded;
    fallback.resilience.health.enabled = false;

    const OpSequence seq = hmultChain(2);
    const double cleanNs =
        AnaheimFramework(clean).execute(seq).totalNs;
    const double degradedNs =
        AnaheimFramework(degraded).execute(seq).totalNs;
    const double fallbackNs =
        AnaheimFramework(fallback).execute(seq).totalNs;
    EXPECT_GT(degradedNs, cleanNs);
    EXPECT_GT(fallbackNs, degradedNs);
}

TEST(Degradation, CampaignIsBitwiseDeterministicAcrossThreadCounts)
{
    // The whole fault campaign — Monte-Carlo bank draw, transient
    // events, quarantine points, migration replays — must be a pure
    // function of the fault seed, independent of the host pool width
    // (ANAHEIM_THREADS). Counters and simulated time compare exactly.
    AnaheimConfig config = degradationConfig();
    config.resilience.ber = 1e-7;
    config.resilience.permanentBankRate = 2e-3;
    config.resilience.faultSeed = 20260808;
    const OpSequence seq = hmultChain(2);

    const size_t restore = parallelThreadCount();
    setParallelThreads(1);
    const RunResult serial = AnaheimFramework(config).execute(seq);
    setParallelThreads(4);
    const RunResult threaded = AnaheimFramework(config).execute(seq);
    setParallelThreads(restore);

    EXPECT_EQ(serial.totalNs, threaded.totalNs);
    EXPECT_EQ(serial.energyPj, threaded.energyPj);
    const ResilienceStats &a = serial.resilience;
    const ResilienceStats &b = threaded.resilience;
    EXPECT_EQ(a.faultyWords, b.faultyWords);
    EXPECT_EQ(a.permanentFaultyWords, b.permanentFaultyWords);
    EXPECT_EQ(a.pimRetries, b.pimRetries);
    EXPECT_EQ(a.rollbacks, b.rollbacks);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.quarantinedBanks, b.quarantinedBanks);
    EXPECT_EQ(a.quarantinedLanes, b.quarantinedLanes);
    EXPECT_EQ(a.gpuFallbacks, b.gpuFallbacks);
    EXPECT_EQ(a.healthErrorEvents, b.healthErrorEvents);
    EXPECT_EQ(a.unrecovered, b.unrecovered);
    ASSERT_EQ(serial.timeline.size(), threaded.timeline.size());
    for (size_t i = 0; i < serial.timeline.size(); ++i) {
        EXPECT_EQ(serial.timeline[i].startNs,
                  threaded.timeline[i].startNs);
        EXPECT_EQ(serial.timeline[i].phase, threaded.timeline[i].phase);
    }
    // The run actually exercised the machinery under test.
    EXPECT_GT(a.migrations + a.rollbacks + a.gpuFallbacks, 0u);
}

} // namespace
} // namespace anaheim

/**
 * @file
 * Tests for the shared limb-parallel execution engine: pool mechanics
 * (reuse, exception propagation, grain edge cases, the ANAHEIM_THREADS=1
 * serial fallback) and the determinism property — parallel and serial
 * executions of the limb-partitioned hot paths (NTT, BConv, keyswitch)
 * must produce bitwise-identical results on random polynomials.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <vector>

#include "ckks/keys.h"
#include "ckks/keyswitch.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "math/primes.h"
#include "poly/polynomial.h"
#include "rns/bconv.h"
#include "support/error_matchers.h"

namespace anaheim {
namespace {

/** Restores the global pool width when a test returns. */
class ThreadGuard
{
  public:
    ThreadGuard() : saved_(parallelThreadCount()) {}
    ~ThreadGuard() { setParallelThreads(saved_); }

  private:
    size_t saved_;
};

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce)
{
    ThreadGuard guard;
    setParallelThreads(4);
    std::vector<std::atomic<int>> visits(1000);
    parallelFor(0, visits.size(), 7, [&](size_t i) { ++visits[i]; });
    for (size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, PoolIsReusedAcrossCalls)
{
    ThreadGuard guard;
    setParallelThreads(4);
    const size_t widthBefore = parallelThreadCount();
    std::atomic<uint64_t> sum{0};
    for (int round = 0; round < 50; ++round)
        parallelFor(0, 64, 1, [&](size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 50u * (64u * 63u / 2));
    // Repeated loops run on the same pool; no teardown/respawn between.
    EXPECT_EQ(parallelThreadCount(), widthBefore);
}

TEST(ParallelForTest, GrainEdgeCases)
{
    ThreadGuard guard;
    setParallelThreads(4);

    // Empty and inverted ranges are no-ops.
    bool touched = false;
    parallelFor(5, 5, 1, [&](size_t) { touched = true; });
    parallelFor(7, 3, 1, [&](size_t) { touched = true; });
    EXPECT_FALSE(touched);

    // grain == 0 is treated as 1.
    std::vector<std::atomic<int>> a(17);
    parallelFor(0, a.size(), 0, [&](size_t i) { ++a[i]; });
    for (auto &v : a)
        EXPECT_EQ(v.load(), 1);

    // grain larger than the range runs the whole range (inline).
    std::vector<std::atomic<int>> b(9);
    parallelFor(0, b.size(), 100, [&](size_t i) { ++b[i]; });
    for (auto &v : b)
        EXPECT_EQ(v.load(), 1);

    // Nonzero begin with a grain that does not divide the count.
    std::vector<std::atomic<int>> c(23);
    parallelFor(3, 23, 4, [&](size_t i) { ++c[i]; });
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(c[i].load(), i >= 3 ? 1 : 0) << "index " << i;
}

TEST(ParallelForTest, DegenerateRangesNeitherDeadlockNorSkip)
{
    ThreadGuard guard;
    setParallelThreads(4);

    // Range smaller than the thread count: every index exactly once,
    // idle workers must not spin or claim phantom chunks.
    std::vector<std::atomic<int>> tiny(2);
    parallelFor(0, tiny.size(), 1, [&](size_t i) { ++tiny[i]; });
    for (auto &v : tiny)
        EXPECT_EQ(v.load(), 1);

    // A single-index range with a grain much larger than it.
    std::atomic<int> one{0};
    parallelFor(41, 42, 64, [&](size_t i) {
        EXPECT_EQ(i, 41u);
        ++one;
    });
    EXPECT_EQ(one.load(), 1);

    // Chunk-count rounding: grains that leave a short tail (the shape
    // vectorized kernels hand over when N is not a multiple of the
    // vector width) must neither skip the tail nor run it twice.
    for (size_t grain : {3, 5, 8, 13}) {
        std::vector<std::atomic<int>> v(67); // prime: never divides
        parallelFor(0, v.size(), grain, [&](size_t i) { ++v[i]; });
        for (size_t i = 0; i < v.size(); ++i)
            EXPECT_EQ(v[i].load(), 1) << "grain " << grain << " i " << i;
    }
}

TEST(ParallelForTest, RangesNearSizeMaxDoNotWrapTheCursor)
{
    // Regression: the old implementation advanced a raw offset cursor
    // with fetch_add(grain); for ranges ending near SIZE_MAX the adds
    // wrapped past `end` and re-admitted bogus indices. The chunk-index
    // cursor cannot wrap. (Found while auditing the vectorized tails.)
    ThreadGuard guard;
    setParallelThreads(4);
    const size_t end = std::numeric_limits<size_t>::max();
    const size_t begin = end - 70;
    std::atomic<uint64_t> count{0};
    std::atomic<bool> outOfRange{false};
    parallelFor(begin, end, 16, [&](size_t i) {
        if (i < begin || i >= end)
            outOfRange = true;
        ++count;
    });
    EXPECT_EQ(count.load(), 70u);
    EXPECT_FALSE(outOfRange.load());
}

TEST(ParallelForTest, ExceptionPropagatesToCaller)
{
    ThreadGuard guard;
    setParallelThreads(4);
    EXPECT_THROW(
        parallelFor(0, 256, 1,
                    [](size_t i) {
                        if (i == 97)
                            throw std::runtime_error("boom at 97");
                    }),
        std::runtime_error);
    // The pool survives a throwing loop and keeps working.
    std::atomic<int> count{0};
    parallelFor(0, 32, 1, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForTest, NestedCallsRunInline)
{
    ThreadGuard guard;
    setParallelThreads(4);
    std::vector<std::atomic<int>> visits(16 * 16);
    parallelFor(0, 16, 1, [&](size_t outer) {
        parallelFor(0, 16, 1, [&](size_t inner) {
            ++visits[outer * 16 + inner];
        });
    });
    for (auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, SingleThreadFallbackRunsOnCaller)
{
    ThreadGuard guard;
    setParallelThreads(1);
    EXPECT_EQ(parallelThreadCount(), 1u);
    const auto caller = std::this_thread::get_id();
    parallelFor(0, 64, 1, [&](size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ParallelForTest, EnvVariableControlsDefaultWidth)
{
    // defaultThreadCount() is what the global pool is sized with on
    // first use; exercise its parsing directly.
    setenv("ANAHEIM_THREADS", "1", 1);
    EXPECT_EQ(defaultThreadCount(), 1u);
    setenv("ANAHEIM_THREADS", "6", 1);
    EXPECT_EQ(defaultThreadCount(), 6u);
    setenv("ANAHEIM_THREADS", "999999", 1);
    EXPECT_EQ(defaultThreadCount(), ThreadPool::kMaxThreads);
    setenv("ANAHEIM_THREADS", "garbage", 1);
    EXPECT_GE(defaultThreadCount(), 1u); // falls back to hardware
    unsetenv("ANAHEIM_THREADS");
    EXPECT_GE(defaultThreadCount(), 1u);
}

// ---------------------------------------------------------------------
// Determinism property: limb partitioning only, so the parallel engine
// must be bitwise identical to the serial fallback on every hot path.
// ---------------------------------------------------------------------

Polynomial
randomPolynomial(const RnsBasis &basis, uint64_t seed, Domain domain)
{
    Rng rng(seed);
    Polynomial p(basis, domain);
    for (size_t i = 0; i < basis.size(); ++i)
        p.limb(i) = sampleUniform(rng, basis.degree(), basis.prime(i));
    return p;
}

class ParallelDeterminismTest : public ::testing::Test
{
  protected:
    ParallelDeterminismTest()
        : context_(CkksParams::testParams(1 << 10, 6, 2))
    {
    }

    CkksContext context_;
    ThreadGuard guard_;
};

TEST_F(ParallelDeterminismTest, NttRoundTripMatchesSerial)
{
    const auto base =
        randomPolynomial(context_.qBasis(), 1234, Domain::Coeff);

    setParallelThreads(1);
    Polynomial serial = base;
    serial.toEval();
    Polynomial serialBack = serial;
    serialBack.toCoeff();

    setParallelThreads(4);
    Polynomial parallel = base;
    parallel.toEval();
    Polynomial parallelBack = parallel;
    parallelBack.toCoeff();

    EXPECT_TRUE(serial == parallel);
    EXPECT_TRUE(serialBack == parallelBack);
    EXPECT_TRUE(serialBack == base);
}

TEST_F(ParallelDeterminismTest, ElementWiseOpsMatchSerial)
{
    const auto a = randomPolynomial(context_.qBasis(), 5, Domain::Eval);
    const auto b = randomPolynomial(context_.qBasis(), 6, Domain::Eval);

    setParallelThreads(1);
    Polynomial sumS = a + b;
    Polynomial prodS = mul(a, b);
    Polynomial macS = a;
    macS.macEq(a, b);

    setParallelThreads(4);
    Polynomial sumP = a + b;
    Polynomial prodP = mul(a, b);
    Polynomial macP = a;
    macP.macEq(a, b);

    EXPECT_TRUE(sumS == sumP);
    EXPECT_TRUE(prodS == prodP);
    EXPECT_TRUE(macS == macP);
}

TEST_F(ParallelDeterminismTest, BasisConversionMatchesSerial)
{
    const BasisConverter conv(context_.qBasis(), context_.pBasis());
    Rng rng(99);
    std::vector<CoeffVector> input(context_.qBasis().size());
    for (size_t i = 0; i < input.size(); ++i) {
        input[i] = sampleUniform(rng, context_.degree(),
                                 context_.qBasis().prime(i));
    }

    setParallelThreads(1);
    const auto serial = conv.convert(input);
    setParallelThreads(4);
    const auto parallel = conv.convert(input);
    EXPECT_EQ(serial, parallel);

    // The direct scalar path agrees with the vector path on width-1
    // inputs.
    std::vector<uint64_t> residues(input.size());
    for (size_t i = 0; i < input.size(); ++i)
        residues[i] = input[i][0];
    const auto scalar = conv.convertScalar(residues);
    ASSERT_EQ(scalar.size(), serial.size());
    for (size_t j = 0; j < scalar.size(); ++j)
        EXPECT_EQ(scalar[j], serial[j][0]) << "target limb " << j;
}

TEST_F(ParallelDeterminismTest, KeySwitchMatchesSerial)
{
    KeyGenerator keygen(context_, 7);
    const EvalKey evk = keygen.makeRelinKey();
    const KeySwitcher switcher(context_);
    const auto a = randomPolynomial(context_.qBasis(), 31, Domain::Eval);

    setParallelThreads(1);
    const auto [d0s, d1s] = switcher.keySwitch(a, evk);
    setParallelThreads(4);
    const auto [d0p, d1p] = switcher.keySwitch(a, evk);

    EXPECT_TRUE(d0s == d0p);
    EXPECT_TRUE(d1s == d1p);
}

TEST(BConvValidationTest, RaggedInputIsRejected)
{
    const auto primes = generateNttPrimes(8, 30, 3);
    const RnsBasis source({primes[0], primes[1]}, 8);
    const RnsBasis target({primes[2]}, 8);
    const BasisConverter conv(source, target);
    std::vector<CoeffVector> ragged = {CoeffVector(8, 1),
                                       CoeffVector(4, 1)};
    EXPECT_ANAHEIM_ERROR(conv.convert(ragged), InvalidArgument,
                         "ragged input");
    std::vector<CoeffVector> empty = {CoeffVector(), CoeffVector()};
    EXPECT_ANAHEIM_ERROR(conv.convert(empty), InvalidArgument,
                         "zero-length limbs");
    std::vector<CoeffVector> shortCount = {CoeffVector(8, 1)};
    EXPECT_ANAHEIM_ERROR(conv.convert(shortCount), InvalidArgument,
                         "limb count mismatch");
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"

namespace anaheim {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42), c(43);
    bool anyDiff = false;
    for (int i = 0; i < 64; ++i) {
        const uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        anyDiff |= va != c.next();
    }
    EXPECT_TRUE(anyDiff) << "different seeds must diverge";
}

TEST(Rng, UniformRespectsBound)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 97ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.uniform(bound), bound);
    }
}

TEST(Rng, UniformIsRoughlyUniform)
{
    Rng rng(8);
    const uint64_t bound = 10;
    std::vector<int> buckets(bound, 0);
    const int samples = 20000;
    for (int i = 0; i < samples; ++i)
        ++buckets[rng.uniform(bound)];
    for (uint64_t b = 0; b < bound; ++b) {
        EXPECT_NEAR(buckets[b], samples / static_cast<int>(bound),
                    samples / 20)
            << "bucket " << b;
    }
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(9);
    double sum = 0.0, sumSq = 0.0;
    const int samples = 50000;
    for (int i = 0; i < samples; ++i) {
        const double x = rng.gaussian();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / samples, 0.0, 0.03);
    EXPECT_NEAR(sumSq / samples, 1.0, 0.05);
}

TEST(Samplers, TernaryHammingWeightExact)
{
    Rng rng(10);
    const auto secret = sampleTernary(rng, 1024, 64);
    size_t nonzero = 0;
    for (int8_t v : secret) {
        EXPECT_GE(v, -1);
        EXPECT_LE(v, 1);
        nonzero += v != 0;
    }
    EXPECT_EQ(nonzero, 64u);
}

TEST(Samplers, DenseTernaryIsBalanced)
{
    Rng rng(11);
    const auto secret = sampleTernary(rng, 1 << 14);
    int plus = 0, minus = 0;
    for (int8_t v : secret) {
        plus += v == 1;
        minus += v == -1;
    }
    // Each with probability 1/4.
    EXPECT_NEAR(plus, 1 << 12, 300);
    EXPECT_NEAR(minus, 1 << 12, 300);
}

TEST(Samplers, ErrorStandardDeviation)
{
    Rng rng(12);
    const auto errs = sampleError(rng, 1 << 14, 3.2);
    double sumSq = 0.0;
    for (int64_t e : errs)
        sumSq += static_cast<double>(e) * e;
    EXPECT_NEAR(std::sqrt(sumSq / errs.size()), 3.2, 0.2);
}

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512.00B");
    EXPECT_EQ(formatBytes(2048), "2.00KB");
    EXPECT_EQ(formatBytes(136.0 * 1024 * 1024), "136.00MB");
    EXPECT_EQ(formatBytes(1.5 * 1024 * 1024 * 1024), "1.50GB");
}

TEST(Units, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(29.3e-3), "29.30ms");
    EXPECT_EQ(formatSeconds(1.22), "1.22s");
    EXPECT_EQ(formatSeconds(5e-7), "500.00ns");
    EXPECT_EQ(formatSeconds(3.5e-6), "3.50us");
}

TEST(Units, FormatJoules)
{
    EXPECT_EQ(formatJoules(0.0081), "8.10mJ");
    EXPECT_EQ(formatJoules(3.2), "3.20J");
    EXPECT_EQ(formatJoules(4.2e-6), "4.20uJ");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(ANAHEIM_PANIC("broken invariant ", 42),
                 "broken invariant 42");
}

TEST(LoggingDeath, AssertCarriesMessage)
{
    const int x = 3;
    EXPECT_DEATH(ANAHEIM_ASSERT(x == 4, "x was ", x), "x was 3");
}

} // namespace
} // namespace anaheim

/**
 * @file
 * Error-path coverage for the recoverable error layer: every former
 * exit(1) site in library code now throws AnaheimError, and callers
 * can catch, inspect, and continue.
 */

#include <gtest/gtest.h>

#include "common/status.h"
#include "math/primes.h"
#include "pim/layout.h"
#include "support/error_matchers.h"
#include "trace/builders.h"
#include "trace/validate.h"

namespace anaheim {
namespace {

TEST(Status, BasicsAndNames)
{
    const Status ok = Status::okStatus();
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.toString(), "Ok");

    const Status bad(ErrorCode::InvalidArgument, "ragged input");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(bad.toString(), "InvalidArgument: ragged input");

    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "Ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::ResourceExhausted),
                 "ResourceExhausted");
    EXPECT_STREQ(errorCodeName(ErrorCode::DataCorruption),
                 "DataCorruption");
}

TEST(Status, AnaheimErrorCarriesCodeAndMessage)
{
    try {
        ANAHEIM_RAISE(DataCorruption, "bank ", 3, " poisoned");
        FAIL() << "ANAHEIM_RAISE did not throw";
    } catch (const AnaheimError &error) {
        EXPECT_EQ(error.code(), ErrorCode::DataCorruption);
        EXPECT_STREQ(error.what(), "bank 3 poisoned");
        EXPECT_EQ(error.status().toString(),
                  "DataCorruption: bank 3 poisoned");
    }
}

TEST(Status, CaptureHelperReturnsOkWhenNothingThrows)
{
    const Status status = test_support::captureStatus([] {});
    EXPECT_TRUE(status.ok());
}

TEST(ErrorPaths, InvalidTraceIsCatchable)
{
    OpSequence seq = buildHAdd(TraceParams{});
    seq.ops[0].limbs = 0;
    EXPECT_ANAHEIM_ERROR(checkTrace(seq), InvalidArgument, "zero limbs");
    // The caller survives and can validate a repaired trace.
    EXPECT_NO_THROW(checkTrace(buildHAdd(TraceParams{})));
}

TEST(ErrorPaths, PrimeGenerationExhaustionIsCatchable)
{
    // 2N = 2^21 exceeds the 10-bit candidate range: no prime can
    // satisfy q == 1 (mod 2N), so the search range is exhausted.
    EXPECT_ANAHEIM_ERROR(generateNttPrimes(1 << 20, 10, 1),
                         ResourceExhausted, "could not find");
    // Out-of-range bit widths are rejected as caller error.
    EXPECT_ANAHEIM_ERROR(generateNttPrimes(1 << 10, 60, 1),
                         InvalidArgument, "bit width");
    // A feasible request still succeeds afterwards.
    EXPECT_EQ(generateNttPrimes(8, 30, 2).size(), 2u);
}

TEST(ErrorPaths, LayoutRejectionIsCatchable)
{
    ColumnPartitionLayout layout(DramConfig::hbm2A100(), 512, 1 << 16, 8);
    EXPECT_ANAHEIM_ERROR(layout.allocate(9, 1), InvalidArgument,
                         "wider than the column groups");
    EXPECT_ANAHEIM_ERROR(layout.allocate(1, 1 << 20), ResourceExhausted,
                         "exceeds bank rows");
    // Rejections leave the allocator consistent for further use.
    EXPECT_EQ(layout.rowsUsed(), 0u);
    EXPECT_NO_THROW(layout.allocate(2, 4));
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include "dram/bank.h"
#include "dram/controller.h"

namespace anaheim {
namespace {

DramTiming
testTiming()
{
    DramTiming timing;
    timing.tCkNs = 1.0;
    timing.tRCD = 10;
    timing.tRP = 12;
    timing.tRAS = 30;
    timing.tCCD = 2;
    timing.tWR = 16;
    timing.tRTP = 5;
    timing.tWTR = 8;
    return timing;
}

TEST(BankEngine, RespectsActToReadDelay)
{
    BankEngine bank(testTiming());
    const int64_t actAt = bank.issue(DramCommand::Act);
    const int64_t readAt = bank.issue(DramCommand::Rd);
    EXPECT_GE(readAt - actAt, 10) << "tRCD violated";
}

TEST(BankEngine, BackToBackReadsSpacedByTccd)
{
    BankEngine bank(testTiming());
    bank.issue(DramCommand::Act);
    const int64_t first = bank.issue(DramCommand::Rd);
    const int64_t second = bank.issue(DramCommand::Rd);
    EXPECT_GE(second - first, 2) << "tCCD violated";
}

TEST(BankEngine, PrechargeRespectsRasAndWr)
{
    BankEngine bank(testTiming());
    const int64_t actAt = bank.issue(DramCommand::Act);
    bank.issue(DramCommand::Wr);
    const int64_t preAt = bank.issue(DramCommand::Pre);
    EXPECT_GE(preAt - actAt, 30) << "tRAS violated";
    // And a new ACT waits tRP.
    const int64_t nextAct = bank.issue(DramCommand::Act);
    EXPECT_GE(nextAct - preAt, 12) << "tRP violated";
}

TEST(BankEngine, WriteRecoveryBeforePrecharge)
{
    BankEngine bank(testTiming());
    bank.issue(DramCommand::Act);
    // Push past tRAS with reads so tWR becomes the binding constraint.
    for (int i = 0; i < 20; ++i)
        bank.issue(DramCommand::Rd);
    const int64_t writeAt = bank.issue(DramCommand::Wr);
    const int64_t preAt = bank.issue(DramCommand::Pre);
    EXPECT_GE(preAt - writeAt, 16) << "tWR violated";
}

TEST(BankEngine, ActivateRowHandlesOpenRow)
{
    BankEngine bank(testTiming());
    bank.activateRow();
    EXPECT_TRUE(bank.rowOpen());
    bank.activateRow(); // implicit precharge
    EXPECT_EQ(bank.counts().acts, 2u);
    EXPECT_EQ(bank.counts().pres, 1u);
}

TEST(BankEngineDeath, ReadOnPrechargedBankPanics)
{
    BankEngine bank(testTiming());
    EXPECT_DEATH(bank.issue(DramCommand::Rd), "precharged");
}

TEST(AddressMap, DecomposesAndRotatesAcrossBanks)
{
    const DramConfig config = DramConfig::hbm2A100();
    const auto r0 = mapAddress(config, 0, false);
    EXPECT_EQ(r0.bank, 0u);
    EXPECT_EQ(r0.row, 0u);
    EXPECT_EQ(r0.column, 0u);
    // Next chunk: same row, next column.
    const auto r1 = mapAddress(config, config.chunkBytes, false);
    EXPECT_EQ(r1.bank, 0u);
    EXPECT_EQ(r1.column, 1u);
    // One full row later: next bank.
    const auto r2 = mapAddress(config, config.rowBytes, false);
    EXPECT_EQ(r2.bank, 1u);
    EXPECT_EQ(r2.row, 0u);
}

TEST(MemoryController, SequentialStreamIsRowHitDominated)
{
    const DramConfig config = DramConfig::hbm2A100();
    MemoryController controller(config, config.banksPerDie);
    for (uint64_t addr = 0; addr < 8 * config.rowBytes;
         addr += config.chunkBytes)
        controller.enqueue(mapAddress(config, addr, false));
    controller.drain();
    EXPECT_GT(controller.rowHitRate(), 0.9);
}

TEST(MemoryController, RowHitRateIsZeroBeforeAnyDrain)
{
    // Regression: with no accesses the hit rate must be 0, not 0/0.
    const DramConfig config = DramConfig::hbm2A100();
    const MemoryController idle(config, config.banksPerDie);
    EXPECT_EQ(idle.rowHitRate(), 0.0);

    // Enqueued-but-not-drained requests still count no accesses.
    MemoryController pending(config, config.banksPerDie);
    pending.enqueue(mapAddress(config, 0, false));
    EXPECT_EQ(pending.rowHitRate(), 0.0);
}

TEST(MemoryController, FrFcfsPrefersRowHits)
{
    const DramConfig config = DramConfig::hbm2A100();
    MemoryController hitFriendly(config, 1);
    MemoryController thrash(config, 1);
    // Same requests; one ordering alternates rows (worst case), FR-FCFS
    // should still reorder them into row hits within the queue window.
    for (int i = 0; i < 16; ++i) {
        DramRequest a{false, 0, 0, static_cast<uint64_t>(i)};
        DramRequest b{false, 0, 1, static_cast<uint64_t>(i)};
        hitFriendly.enqueue(a);
        hitFriendly.enqueue(b);
        thrash.enqueue(a);
        thrash.enqueue(b);
    }
    const double ns = hitFriendly.drain();
    (void)ns;
    // With FR-FCFS all row-0 requests drain before row 1: 1 ACT each.
    EXPECT_EQ(hitFriendly.counts().acts, 2u);
}

TEST(DramConfig, PresetsMatchTableIII)
{
    const auto a100 = DramConfig::hbm2A100();
    EXPECT_EQ(a100.dies, 40u);
    EXPECT_EQ(a100.banksPerDie, 64u);
    EXPECT_NEAR(a100.externalBwGBs, 1802.0, 1.0);
    const auto rtx = DramConfig::gddr6xRtx4090();
    EXPECT_EQ(rtx.dies, 12u);
    EXPECT_EQ(rtx.banksPerDie, 32u);
    EXPECT_NEAR(rtx.externalBwGBs, 939.0, 1.0);
    // 256-bit chunks, 8Kb rows (§VI-B).
    EXPECT_EQ(a100.chunkBytes, 32u);
    EXPECT_EQ(a100.chunksPerRow(), 32u);
}


TEST(BankEngine, RefreshStallsAccrueOverLongStreams)
{
    DramTiming timing = testTiming();
    timing.tREFI = 200;
    timing.tRFC = 50;
    BankEngine bank(timing);
    bank.issue(DramCommand::Act);
    for (int i = 0; i < 1000; ++i)
        bank.issue(DramCommand::Rd);
    // 1000 reads at tCCD=2 span ~2000 cycles -> ~10+ refresh windows,
    // each stealing tRFC.
    EXPECT_GT(bank.refreshes(), 8u);
    EXPECT_GE(bank.cycle(),
              static_cast<int64_t>(2000 + bank.refreshes() * 50));
}

TEST(BankEngine, ShortBurstsSeeNoRefresh)
{
    BankEngine bank(testTiming()); // tREFI = 5900 default
    bank.issue(DramCommand::Act);
    for (int i = 0; i < 16; ++i)
        bank.issue(DramCommand::Rd);
    EXPECT_EQ(bank.refreshes(), 0u);
}

} // namespace
} // namespace anaheim


/**
 * @file
 * DRAM retention-decay and scrub tests: the BankEngine's per-window
 * decay sampling (deterministic in the fault seed), the scrub visit
 * that repairs correctable decay and surfaces uncorrectable loss, and
 * the ScrubEngine pass cost model.
 */

#include <gtest/gtest.h>

#include "dram/bank.h"
#include "dram/scrub.h"
#include "sim/fault.h"
#include "support/error_matchers.h"

namespace anaheim {
namespace {

DramTiming
shortRefreshTiming()
{
    DramTiming timing;
    timing.tCkNs = 1.0;
    // A tiny refresh window so a short command stream crosses many.
    timing.tREFI = 100;
    timing.tRFC = 10;
    return timing;
}

/** Issue enough row activity to push the bank past `rows` row cycles
 *  (each ACT/RD/PRE round crosses tens of cycles). */
void
runRows(BankEngine &bank, int rows)
{
    for (int r = 0; r < rows; ++r) {
        bank.activateRow();
        bank.issue(DramCommand::Rd);
        bank.issue(DramCommand::Pre);
    }
}

TEST(BankRetention, NoFaultModelNoDecay)
{
    BankEngine bank(shortRefreshTiming());
    runRows(bank, 50);
    EXPECT_GT(bank.refreshes(), 0u);
    EXPECT_EQ(bank.retention().windows, 0u);
    EXPECT_EQ(bank.retention().faultyWords, 0u);
}

TEST(BankRetention, DecayAccumulatesPerWindowDeterministically)
{
    FaultConfig faults;
    faults.retentionBerPerWindow = 2e-3;
    faults.seed = 411;
    const FaultModel model(faults);

    auto run = [&] {
        BankEngine bank(shortRefreshTiming());
        bank.attachFaultModel(&model, /*residentWords=*/1 << 16);
        runRows(bank, 50);
        return bank.retention();
    };
    const RetentionCounters a = run();
    const RetentionCounters b = run();

    EXPECT_GT(a.windows, 0u);
    EXPECT_GT(a.faultyWords, 0u);
    EXPECT_GT(a.singleBit, a.multiBit); // singles dominate at low rates
    EXPECT_EQ(a.faultyWords, a.singleBit + a.multiBit);
    EXPECT_EQ(a.pendingCorrectable, a.singleBit);
    EXPECT_EQ(a.pendingUncorrectable, a.multiBit);
    // Same seed, same command stream: identical decay history.
    EXPECT_EQ(a.windows, b.windows);
    EXPECT_EQ(a.faultyWords, b.faultyWords);
    EXPECT_EQ(a.singleBit, b.singleBit);
    EXPECT_EQ(a.multiBit, b.multiBit);
}

TEST(BankRetention, ScrubRepairsCorrectableAndSurfacesUncorrectable)
{
    FaultConfig faults;
    faults.retentionBerPerWindow = 5e-3; // high enough for multi-bit
    faults.seed = 412;
    const FaultModel model(faults);

    BankEngine bank(shortRefreshTiming());
    bank.attachFaultModel(&model, 1 << 16);
    runRows(bank, 80);

    const RetentionCounters before = bank.retention();
    ASSERT_GT(before.pendingCorrectable, 0u);
    ASSERT_GT(before.pendingUncorrectable, 0u);

    const uint64_t surfaced = bank.scrub();
    EXPECT_EQ(surfaced, before.pendingUncorrectable);
    EXPECT_EQ(bank.retention().pendingCorrectable, 0u);
    EXPECT_EQ(bank.retention().pendingUncorrectable, 0u);
    // Cumulative history is preserved across the scrub.
    EXPECT_EQ(bank.retention().faultyWords, before.faultyWords);
    // More activity accumulates fresh pendings.
    runRows(bank, 80);
    EXPECT_GT(bank.retention().pendingCorrectable, 0u);
}

TEST(ScrubEngine, PassCostScalesWithFootprint)
{
    const DramConfig dram = DramConfig::hbm2A100();
    ScrubConfig config;
    config.enabled = true;
    config.intervalNs = 10e3;
    const ScrubEngine scrubber(dram, config);

    const ScrubPassStats small = scrubber.pass(1e6);
    const ScrubPassStats large = scrubber.pass(64e6);
    EXPECT_GT(small.timeNs, 0.0);
    EXPECT_GT(small.energyPj, 0.0);
    EXPECT_GT(large.timeNs, small.timeNs);
    EXPECT_GT(large.energyPj, small.energyPj);
    EXPECT_EQ(large.wordsScrubbed, static_cast<uint64_t>(64e6 / 4));
    // Identical inputs price identically (pure cost model).
    EXPECT_DOUBLE_EQ(scrubber.pass(1e6).timeNs, small.timeNs);
    // Empty footprint costs nothing.
    EXPECT_DOUBLE_EQ(scrubber.pass(0.0).timeNs, 0.0);
}

TEST(ScrubEngine, RejectsNonPositiveInterval)
{
    ScrubConfig config;
    config.enabled = true;
    config.intervalNs = 0.0;
    EXPECT_ANAHEIM_ERROR(ScrubEngine(DramConfig::hbm2A100(), config),
                         InvalidArgument, "scrub interval");
}

} // namespace
} // namespace anaheim

/**
 * Edge cases and failure injection for the CKKS evaluator: level
 * exhaustion, scale adjustment, misuse that must die loudly rather
 * than corrupt ciphertexts.
 */

#include <gtest/gtest.h>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "common/rng.h"

namespace anaheim {
namespace {

using Complex = std::complex<double>;

class EdgeTest : public ::testing::Test
{
  protected:
    EdgeTest()
        : context_(CkksParams::testParams(1 << 9, 5, 2)),
          encoder_(context_), keygen_(context_, 3),
          encryptor_(context_, 5),
          decryptor_(context_, keygen_.secretKey()),
          evaluator_(context_, encoder_)
    {
    }

    Ciphertext
    encrypt(double value, size_t level)
    {
        std::vector<Complex> msg(encoder_.slots(), {value, 0.0});
        return encryptor_.encrypt(encoder_.encode(msg, level),
                                  keygen_.secretKey());
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    CkksEncryptor encryptor_;
    CkksDecryptor decryptor_;
    CkksEvaluator evaluator_;
};

TEST_F(EdgeTest, OperationsWorkAtLevelOne)
{
    // The bottom of the modulus chain still supports additive ops —
    // exactly the state bootstrapping picks a ciphertext up from.
    auto ct = encrypt(0.25, 1);
    const auto sum = evaluator_.add(ct, ct);
    const auto out = encoder_.decode(decryptor_.decrypt(sum));
    EXPECT_NEAR(out[0].real(), 0.5, 1e-4);
}

TEST_F(EdgeTest, RescaleAtLevelOneDies)
{
    auto ct = encrypt(0.25, 1);
    EXPECT_DEATH(evaluator_.rescale(ct), "no prime left");
}

TEST_F(EdgeTest, RaisingLevelByTruncationDies)
{
    auto ct = encrypt(0.25, 2);
    EXPECT_DEATH(evaluator_.dropToLevel(ct, 3), "cannot raise level");
}

TEST_F(EdgeTest, MulPlainRejectsLowerLevelPlaintext)
{
    auto ct = encrypt(0.25, 4);
    std::vector<Complex> msg(encoder_.slots(), {1.0, 0.0});
    const auto pt = encoder_.encode(msg, 2);
    EXPECT_DEATH(evaluator_.mulPlain(ct, pt), "plaintext level too low");
}

TEST_F(EdgeTest, RotationWithoutKeyDies)
{
    auto ct = encrypt(0.25, 3);
    GaloisKeys empty;
    EXPECT_DEATH(evaluator_.rotate(ct, 1, empty), "missing Galois key");
}

TEST_F(EdgeTest, ZeroRotationIsIdentityWithoutKeys)
{
    auto ct = encrypt(0.25, 3);
    GaloisKeys empty;
    const auto out = evaluator_.rotate(ct, 0, empty); // no key needed
    EXPECT_EQ(out.level, ct.level);
    const auto decoded = encoder_.decode(decryptor_.decrypt(out));
    EXPECT_NEAR(decoded[7].real(), 0.25, 1e-4);
}

TEST_F(EdgeTest, FullSlotRotationWrapsToIdentity)
{
    auto ct = encrypt(0.25, 3);
    GaloisKeys empty;
    const int full = static_cast<int>(encoder_.slots());
    // Rotation by the slot count is the identity (5^(N/2) = 1 orbit).
    const auto out = evaluator_.rotate(ct, full, empty);
    const auto decoded = encoder_.decode(decryptor_.decrypt(out));
    EXPECT_NEAR(decoded[3].real(), 0.25, 1e-4);
}

TEST_F(EdgeTest, AdjustScaleExactlyRetargets)
{
    auto ct = encrypt(0.5, 4);
    const double target = ct.scale * 1.01; // deliberately off
    const auto adjusted = evaluator_.adjustScaleTo(ct, target);
    EXPECT_EQ(adjusted.level, ct.level - 1);
    EXPECT_NEAR(adjusted.scale / target, 1.0, 1e-9);
    const auto out = encoder_.decode(decryptor_.decrypt(adjusted));
    EXPECT_NEAR(out[0].real(), 0.5, 1e-4);
}

TEST_F(EdgeTest, MismatchedScaleAddTriggersAlignment)
{
    // Force two ciphertexts onto different rescale histories, then add;
    // the evaluator must align scales without corrupting the message.
    const auto relin = keygen_.makeRelinKey();
    auto deep = encrypt(0.5, 5);
    deep = evaluator_.rescale(evaluator_.square(deep, relin)); // 0.25
    auto shallow = encrypt(0.25, 5);

    const auto sum = evaluator_.add(deep, shallow);
    const auto out = encoder_.decode(decryptor_.decrypt(sum));
    EXPECT_NEAR(out[0].real(), 0.5, 1e-3);
}

TEST_F(EdgeTest, NegateIsInvolution)
{
    auto ct = encrypt(0.33, 3);
    const auto twice = evaluator_.negate(evaluator_.negate(ct));
    const auto out = encoder_.decode(decryptor_.decrypt(twice));
    EXPECT_NEAR(out[0].real(), 0.33, 1e-4);
}

TEST_F(EdgeTest, SubtractingCiphertextFromItselfIsZero)
{
    auto ct = encrypt(0.7, 4);
    const auto zero = evaluator_.sub(ct, ct);
    const auto out = encoder_.decode(decryptor_.decrypt(zero));
    for (size_t i = 0; i < out.size(); i += 61)
        EXPECT_NEAR(std::abs(out[i]), 0.0, 1e-6);
}

TEST_F(EdgeTest, PublicKeyCiphertextsComposeWithSymmetricOnes)
{
    auto pk = keygen_.makePublicKey();
    std::vector<Complex> msg(encoder_.slots(), {0.25, 0.0});
    const auto pkCt = encryptor_.encrypt(
        encoder_.encode(msg, context_.maxLevel()), pk);
    const auto skCt = encrypt(0.5, context_.maxLevel());
    const auto sum = evaluator_.add(pkCt, skCt);
    const auto out = encoder_.decode(decryptor_.decrypt(sum));
    EXPECT_NEAR(out[0].real(), 0.75, 1e-4);
}

} // namespace
} // namespace anaheim

/**
 * @file
 * Ciphertext integrity-seal tests: seal/verify round trips, detection
 * of corruption in either component, and header (level/scale)
 * tampering.
 */

#include <gtest/gtest.h>

#include <complex>

#include "ckks/encryptor.h"
#include "ckks/integrity.h"

namespace anaheim {
namespace {

class CiphertextIntegrityTest : public ::testing::Test
{
  protected:
    CiphertextIntegrityTest()
        : context_(CkksParams::testParams(1 << 8, 4, 2)),
          encoder_(context_), keygen_(context_, 55),
          encryptor_(context_, 56)
    {
    }

    Ciphertext
    encryptRamp()
    {
        std::vector<std::complex<double>> u(encoder_.slots());
        for (size_t i = 0; i < u.size(); ++i)
            u[i] = {0.5 * static_cast<double>(i) / u.size(), 0.0};
        return encryptor_.encrypt(encoder_.encode(u, context_.maxLevel()),
                                  keygen_.secretKey());
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    CkksEncryptor encryptor_;
};

TEST_F(CiphertextIntegrityTest, SealVerifyRoundTrip)
{
    const Ciphertext ct = encryptRamp();
    const CiphertextChecksum seal = sealCiphertext(ct);
    EXPECT_TRUE(verifyCiphertext(ct, seal).ok());
    EXPECT_EQ(seal, sealCiphertext(ct));
    EXPECT_EQ(seal.level, ct.level);
    EXPECT_EQ(seal.scale, ct.scale);
}

TEST_F(CiphertextIntegrityTest, DetectsCorruptionInEitherComponent)
{
    const Ciphertext clean = encryptRamp();
    const CiphertextChecksum seal = sealCiphertext(clean);

    Ciphertext hitB = clean;
    hitB.b.limb(0)[3] ^= 1;
    const Status statusB = verifyCiphertext(hitB, seal);
    EXPECT_EQ(statusB.code(), ErrorCode::DataCorruption);
    EXPECT_NE(statusB.message().find("component b"), std::string::npos)
        << statusB.message();

    Ciphertext hitA = clean;
    hitA.a.limb(1)[7] ^= 0b10;
    const Status statusA = verifyCiphertext(hitA, seal);
    EXPECT_EQ(statusA.code(), ErrorCode::DataCorruption);
    EXPECT_NE(statusA.message().find("component a"), std::string::npos)
        << statusA.message();
}

TEST_F(CiphertextIntegrityTest, DetectsHeaderTampering)
{
    const Ciphertext clean = encryptRamp();
    const CiphertextChecksum seal = sealCiphertext(clean);

    Ciphertext tampered = clean;
    tampered.scale *= 2.0;
    const Status status = verifyCiphertext(tampered, seal);
    EXPECT_EQ(status.code(), ErrorCode::DataCorruption);
    EXPECT_NE(status.message().find("header"), std::string::npos)
        << status.message();
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "ckks/encoder.h"
#include "common/rng.h"

namespace anaheim {
namespace {

using Complex = std::complex<double>;

std::vector<Complex>
randomMessage(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> msg(count);
    for (auto &v : msg)
        v = {2.0 * rng.uniformReal() - 1.0, 2.0 * rng.uniformReal() - 1.0};
    return msg;
}

double
maxError(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    double err = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        err = std::max(err, std::abs(a[i] - b[i]));
    return err;
}

class EncoderTest : public ::testing::Test
{
  protected:
    EncoderTest()
        : context_(CkksParams::testParams(1 << 10, 6, 2)),
          encoder_(context_)
    {
    }
    CkksContext context_;
    CkksEncoder encoder_;
};

TEST_F(EncoderTest, EncodeDecodeRoundTrip)
{
    const auto msg = randomMessage(encoder_.slots(), 101);
    const auto pt = encoder_.encode(msg, context_.maxLevel());
    const auto decoded = encoder_.decode(pt);
    EXPECT_LT(maxError(msg, decoded), 1e-8);
}

TEST_F(EncoderTest, EncodeRealRoundTrip)
{
    Rng rng(102);
    std::vector<double> msg(encoder_.slots());
    for (auto &v : msg)
        v = 2.0 * rng.uniformReal() - 1.0;
    const auto pt = encoder_.encodeReal(msg, 3);
    const auto decoded = encoder_.decode(pt);
    for (size_t i = 0; i < msg.size(); ++i) {
        EXPECT_NEAR(decoded[i].real(), msg[i], 1e-8);
        EXPECT_NEAR(decoded[i].imag(), 0.0, 1e-8);
    }
}

TEST_F(EncoderTest, ShortMessagesAreZeroPadded)
{
    const std::vector<Complex> msg = {{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
    const auto decoded =
        encoder_.decode(encoder_.encode(msg, context_.maxLevel()));
    EXPECT_NEAR(decoded[0].real(), 1.0, 1e-8);
    EXPECT_NEAR(decoded[2].real(), 3.0, 1e-8);
    for (size_t i = 3; i < encoder_.slots(); ++i)
        EXPECT_NEAR(std::abs(decoded[i]), 0.0, 1e-8);
}

TEST_F(EncoderTest, EmbedForwardMatchesDirectEvaluation)
{
    // Slot j must be the evaluation at zeta^{5^j}, the property slot
    // rotation via automorphism relies on.
    const size_t slots = encoder_.slots();
    const size_t m = 4 * slots;
    Rng rng(103);
    std::vector<Complex> w(slots);
    for (auto &v : w)
        v = {rng.uniformReal() - 0.5, rng.uniformReal() - 0.5};
    auto fast = w;
    encoder_.embedForward(fast);

    size_t fivePow = 1;
    for (size_t j = 0; j < slots; j += slots / 8) {
        Complex direct = 0.0;
        // Recompute 5^j mod 2N from scratch for the probed slots.
        size_t g = 1;
        for (size_t t = 0; t < j; ++t)
            g = g * 5 % m;
        for (size_t i = 0; i < slots; ++i) {
            const double angle =
                2.0 * M_PI * static_cast<double>(g * i % m) / m;
            direct += w[i] * Complex{std::cos(angle), std::sin(angle)};
        }
        EXPECT_LT(std::abs(fast[j] - direct), 1e-6 * (1.0 + std::abs(direct)))
            << "slot " << j;
    }
    (void)fivePow;
}

TEST_F(EncoderTest, EmbedInverseIsLeftInverse)
{
    auto w = randomMessage(encoder_.slots(), 104);
    const auto original = w;
    encoder_.embedInverse(w);
    encoder_.embedForward(w);
    EXPECT_LT(maxError(w, original), 1e-9);
}

TEST_F(EncoderTest, PolynomialProductMatchesSlotwiseProduct)
{
    // encode(u) * encode(v) (ring product) must decode to u .* v at
    // scale Delta^2 — the algebra HMULT is built on.
    const auto u = randomMessage(encoder_.slots(), 105);
    const auto v = randomMessage(encoder_.slots(), 106);
    auto ptU = encoder_.encode(u, context_.maxLevel());
    const auto ptV = encoder_.encode(v, context_.maxLevel());
    ptU.poly.mulEq(ptV.poly);
    ptU.scale *= ptV.scale;
    const auto decoded = encoder_.decode(ptU);
    for (size_t i = 0; i < u.size(); ++i)
        EXPECT_LT(std::abs(decoded[i] - u[i] * v[i]), 1e-6);
}

TEST_F(EncoderTest, AutomorphismRotatesSlots)
{
    const auto msg = randomMessage(encoder_.slots(), 107);
    for (int r : {1, 2, 5, 17}) {
        auto pt = encoder_.encode(msg, 2);
        const uint64_t k = [&] {
            uint64_t g = 1;
            for (int i = 0; i < r; ++i)
                g = g * 5 % (2 * context_.degree());
            return g;
        }();
        pt.poly = pt.poly.automorphism(k);
        const auto rotated = encoder_.decode(pt);
        for (size_t i = 0; i < msg.size(); ++i) {
            const auto expect = msg[(i + r) % msg.size()];
            EXPECT_LT(std::abs(rotated[i] - expect), 1e-7)
                << "r=" << r << " slot " << i;
        }
    }
}

TEST_F(EncoderTest, ConjugationAutomorphismConjugatesSlots)
{
    const auto msg = randomMessage(encoder_.slots(), 108);
    auto pt = encoder_.encode(msg, 2);
    pt.poly = pt.poly.automorphism(2 * context_.degree() - 1);
    const auto conj = encoder_.decode(pt);
    for (size_t i = 0; i < msg.size(); ++i)
        EXPECT_LT(std::abs(conj[i] - std::conj(msg[i])), 1e-7);
}

} // namespace
} // namespace anaheim

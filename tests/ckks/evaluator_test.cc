#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "common/rng.h"
#include "math/modarith.h"

namespace anaheim {
namespace {

using Complex = std::complex<double>;

class EvaluatorTest : public ::testing::Test
{
  protected:
    EvaluatorTest()
        : context_(CkksParams::testParams(1 << 10, 6, 2)),
          encoder_(context_), keygen_(context_, 7),
          encryptor_(context_, 17),
          decryptor_(context_, keygen_.secretKey()),
          evaluator_(context_, encoder_)
    {
    }

    std::vector<Complex>
    randomMessage(uint64_t seed, double amplitude = 1.0)
    {
        Rng rng(seed);
        std::vector<Complex> msg(encoder_.slots());
        for (auto &v : msg) {
            v = {amplitude * (2.0 * rng.uniformReal() - 1.0),
                 amplitude * (2.0 * rng.uniformReal() - 1.0)};
        }
        return msg;
    }

    Ciphertext
    encrypt(const std::vector<Complex> &msg,
            size_t level = 0)
    {
        if (level == 0)
            level = context_.maxLevel();
        return encryptor_.encrypt(encoder_.encode(msg, level),
                                  keygen_.secretKey());
    }

    std::vector<Complex>
    decrypt(const Ciphertext &ct)
    {
        return encoder_.decode(decryptor_.decrypt(ct));
    }

    static double
    maxError(const std::vector<Complex> &a, const std::vector<Complex> &b)
    {
        double err = 0.0;
        for (size_t i = 0; i < a.size(); ++i)
            err = std::max(err, std::abs(a[i] - b[i]));
        return err;
    }

    CkksContext context_;
    CkksEncoder encoder_;
    KeyGenerator keygen_;
    CkksEncryptor encryptor_;
    CkksDecryptor decryptor_;
    CkksEvaluator evaluator_;
};

TEST_F(EvaluatorTest, EncryptDecryptRoundTripSymmetric)
{
    const auto msg = randomMessage(1);
    EXPECT_LT(maxError(decrypt(encrypt(msg)), msg), 1e-6);
}

TEST_F(EvaluatorTest, EncryptDecryptRoundTripPublicKey)
{
    const auto msg = randomMessage(2);
    auto pk = keygen_.makePublicKey();
    const auto ct =
        encryptor_.encrypt(encoder_.encode(msg, context_.maxLevel()), pk);
    EXPECT_LT(maxError(decrypt(ct), msg), 1e-5);
}

TEST_F(EvaluatorTest, HAddAddsSlotwise)
{
    const auto u = randomMessage(3);
    const auto v = randomMessage(4);
    const auto sum = evaluator_.add(encrypt(u), encrypt(v));
    auto expect = u;
    for (size_t i = 0; i < expect.size(); ++i)
        expect[i] += v[i];
    EXPECT_LT(maxError(decrypt(sum), expect), 1e-5);
}

TEST_F(EvaluatorTest, HSubSubtractsSlotwise)
{
    const auto u = randomMessage(5);
    const auto v = randomMessage(6);
    const auto diff = evaluator_.sub(encrypt(u), encrypt(v));
    auto expect = u;
    for (size_t i = 0; i < expect.size(); ++i)
        expect[i] -= v[i];
    EXPECT_LT(maxError(decrypt(diff), expect), 1e-5);
}

TEST_F(EvaluatorTest, AddAlignsMismatchedLevels)
{
    const auto u = randomMessage(7);
    const auto v = randomMessage(8);
    const auto low = evaluator_.dropToLevel(encrypt(u), 3);
    const auto sum = evaluator_.add(low, encrypt(v));
    EXPECT_EQ(sum.level, 3u);
    auto expect = u;
    for (size_t i = 0; i < expect.size(); ++i)
        expect[i] += v[i];
    EXPECT_LT(maxError(decrypt(sum), expect), 1e-5);
}

TEST_F(EvaluatorTest, PMultMultipliesByPlaintext)
{
    const auto u = randomMessage(9);
    const auto p = randomMessage(10);
    const auto pt = encoder_.encode(p, context_.maxLevel());
    auto prod = evaluator_.mulPlain(encrypt(u), pt);
    prod = evaluator_.rescale(prod);
    auto expect = u;
    for (size_t i = 0; i < expect.size(); ++i)
        expect[i] *= p[i];
    EXPECT_LT(maxError(decrypt(prod), expect), 1e-5);
}

TEST_F(EvaluatorTest, HMultMultipliesSlotwise)
{
    const auto u = randomMessage(11);
    const auto v = randomMessage(12);
    const auto relin = keygen_.makeRelinKey();
    auto prod = evaluator_.multiply(encrypt(u), encrypt(v), relin);
    prod = evaluator_.rescale(prod);
    auto expect = u;
    for (size_t i = 0; i < expect.size(); ++i)
        expect[i] *= v[i];
    EXPECT_LT(maxError(decrypt(prod), expect), 1e-4);
}

TEST_F(EvaluatorTest, MultiplicativeDepthChain)
{
    // Repeated squaring down the level budget: x^(2^k).
    const auto relin = keygen_.makeRelinKey();
    std::vector<Complex> msg(encoder_.slots(), {0.9, 0.0});
    auto ct = encrypt(msg);
    double expect = 0.9;
    for (int depth = 0; depth < 4; ++depth) {
        ct = evaluator_.rescale(evaluator_.square(ct, relin));
        expect *= expect;
    }
    const auto out = decrypt(ct);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i].real(), expect, 2e-3);
}

TEST_F(EvaluatorTest, MulConstScalesAllSlots)
{
    const auto u = randomMessage(13);
    auto ct = evaluator_.mulConst(encrypt(u), {0.5, 0.25});
    ct = evaluator_.rescale(ct);
    auto expect = u;
    for (auto &v : expect)
        v *= Complex{0.5, 0.25};
    EXPECT_LT(maxError(decrypt(ct), expect), 1e-5);
}

TEST_F(EvaluatorTest, MulIntegerKeepsScale)
{
    const auto u = randomMessage(14, 0.1);
    auto ct = evaluator_.mulInteger(encrypt(u), -3);
    EXPECT_EQ(ct.level, context_.maxLevel());
    auto expect = u;
    for (auto &v : expect)
        v *= -3.0;
    EXPECT_LT(maxError(decrypt(ct), expect), 1e-5);
}

TEST_F(EvaluatorTest, AddConstShiftsAllSlots)
{
    const auto u = randomMessage(15);
    auto ct = evaluator_.addConst(encrypt(u), {1.5, -0.5});
    auto expect = u;
    for (auto &v : expect)
        v += Complex{1.5, -0.5};
    EXPECT_LT(maxError(decrypt(ct), expect), 1e-5);
}

class RotationTest : public EvaluatorTest,
                     public ::testing::WithParamInterface<int>
{
};

TEST_P(RotationTest, HRotRotatesSlots)
{
    const int r = GetParam();
    const auto u = randomMessage(16);
    GaloisKeys keys = keygen_.makeGaloisKeys({r});
    const auto rotated = evaluator_.rotate(encrypt(u), r, keys);
    const auto out = decrypt(rotated);
    const size_t slots = u.size();
    for (size_t i = 0; i < slots; ++i) {
        const auto expect =
            u[(i + static_cast<size_t>(
                       (r % static_cast<int>(slots) + slots)) %
               slots) %
              slots];
        EXPECT_LT(std::abs(out[i] - expect), 1e-4)
            << "r=" << r << " i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, RotationTest,
                         ::testing::Values(1, 2, 3, 8, 100, 511, -1, -7));

TEST_F(EvaluatorTest, ConjugateConjugatesSlots)
{
    const auto u = randomMessage(17);
    GaloisKeys keys = keygen_.makeGaloisKeys({}, true);
    const auto out = decrypt(evaluator_.conjugate(encrypt(u), keys));
    for (size_t i = 0; i < u.size(); ++i)
        EXPECT_LT(std::abs(out[i] - std::conj(u[i])), 1e-4);
}

TEST_F(EvaluatorTest, HoistedRotationsMatchIndividualRotations)
{
    const auto u = randomMessage(18);
    const std::vector<int> rotations = {1, 2, 4, 8};
    GaloisKeys keys = keygen_.makeGaloisKeys(rotations);
    const auto ct = encrypt(u);
    const auto hoisted = evaluator_.rotateHoisted(ct, rotations, keys);
    ASSERT_EQ(hoisted.size(), rotations.size());
    for (size_t k = 0; k < rotations.size(); ++k) {
        const auto individual = evaluator_.rotate(ct, rotations[k], keys);
        EXPECT_LT(maxError(decrypt(hoisted[k]), decrypt(individual)),
                  1e-5)
            << "rotation " << rotations[k];
    }
}

TEST_F(EvaluatorTest, KeySwitchPreservesProductWithTarget)
{
    // keySwitch(a, evk_t) must yield (d0, d1) with d0 + d1*s ~ a*t.
    const auto relin = keygen_.makeRelinKey(); // t = s^2
    Rng rng(19);
    const RnsBasis basis = context_.levelBasis(context_.maxLevel());
    Polynomial a(basis, Domain::Eval);
    for (size_t i = 0; i < basis.size(); ++i)
        a.limb(i) = sampleUniform(rng, basis.degree(), basis.prime(i));

    KeySwitcher sw(context_);
    auto [d0, d1] = sw.keySwitch(a, relin);

    const auto &s = keygen_.secretKey().s;
    Polynomial lhs = d0;
    lhs.macEq(d1, s.firstLimbs(basis.size()));

    Polynomial sSq = s.firstLimbs(basis.size());
    sSq.mulEq(sSq);
    Polynomial rhs = a;
    rhs.mulEq(sSq);

    // The difference is keyswitching noise: small relative to the
    // 40-bit primes. Check the first limb's centered magnitude.
    Polynomial diff = lhs - rhs;
    diff.toCoeff();
    const uint64_t q0 = basis.prime(0);
    for (size_t c = 0; c < 16; ++c) {
        const int64_t centered = toCentered(diff.limb(0)[c], q0);
        EXPECT_LT(std::abs(centered), int64_t{1} << 36)
            << "noise too large at coeff " << c;
    }
}

TEST_F(EvaluatorTest, RescaleDividesScale)
{
    const auto u = randomMessage(20);
    auto ct = encrypt(u);
    const double before = ct.scale;
    const uint64_t qLast = context_.qBasis().prime(ct.level - 1);
    ct = evaluator_.rescale(ct);
    EXPECT_EQ(ct.level, context_.maxLevel() - 1);
    EXPECT_NEAR(ct.scale, before / static_cast<double>(qLast),
                before * 1e-12);
}

TEST_F(EvaluatorTest, DeepRotationChainStaysAccurate)
{
    // MinKS-style iterated rotation: rotate by 1, eight times, must land
    // on rotation by 8 (the identity MinKS exploits, §III-B).
    const auto u = randomMessage(21);
    GaloisKeys keys = keygen_.makeGaloisKeys({1, 8});
    auto ct = encrypt(u);
    for (int i = 0; i < 8; ++i)
        ct = evaluator_.rotate(ct, 1, keys);
    const auto direct = evaluator_.rotate(encrypt(u), 8, keys);
    EXPECT_LT(maxError(decrypt(ct), decrypt(direct)), 1e-3);
}

} // namespace
} // namespace anaheim

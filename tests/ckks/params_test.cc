#include <gtest/gtest.h>

#include "ckks/context.h"
#include "ckks/params.h"
#include "math/modarith.h"

namespace anaheim {
namespace {

TEST(CkksParams, DnumMatchesDefinition)
{
    CkksParams params = CkksParams::testParams(1 << 10, 8, 2);
    EXPECT_EQ(params.dnum(), 4u);
    params.levels = 7;
    EXPECT_EQ(params.dnum(), 4u); // ceil(7/2)
    params.alpha = 7;
    EXPECT_EQ(params.dnum(), 1u);
}

TEST(CkksParams, PaperParamsMatchTableIV)
{
    const auto params = CkksParams::paperParams();
    EXPECT_EQ(params.n, size_t{1} << 16);
    EXPECT_EQ(params.levels, 54u);
    EXPECT_EQ(params.alpha, 14u);
    EXPECT_EQ(params.dnum(), 4u); // D = 4, the paper's default
}

TEST(CkksParams, SecurityBoundAnchoredAtPaperValue)
{
    EXPECT_NEAR(CkksParams::maxLogPQ(1 << 16), 1623.0, 1e-9);
    EXPECT_NEAR(CkksParams::maxLogPQ(1 << 15), 1623.0 / 2, 1e-9);
}

TEST(CkksParams, TestParamsAreSmallAndValid)
{
    const auto params = CkksParams::testParams();
    params.validate(); // must not die
    EXPECT_LE(params.n, size_t{1} << 12);
}

TEST(CkksParamsDeath, ValidateRejectsBadCombos)
{
    CkksParams params = CkksParams::testParams();
    params.alpha = params.levels + 1;
    EXPECT_DEATH(params.validate(), "bad alpha");

    params = CkksParams::testParams();
    params.firstModulusBits = params.logScale;
    EXPECT_DEATH(params.validate(), "first modulus");
}

TEST(CkksContext, BasesAreDisjointAndOrdered)
{
    const CkksContext context(CkksParams::testParams(1 << 9, 5, 2));
    EXPECT_EQ(context.qBasis().size(), 5u);
    EXPECT_EQ(context.pBasis().size(), 2u);
    EXPECT_EQ(context.qpBasis().size(), 7u);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(context.qpBasis().prime(i), context.qBasis().prime(i));
    for (size_t i = 0; i < 2; ++i)
        EXPECT_EQ(context.qpBasis().prime(5 + i), context.pBasis().prime(i));
    // All primes distinct.
    for (size_t i = 0; i < 7; ++i)
        for (size_t j = i + 1; j < 7; ++j)
            EXPECT_NE(context.qpBasis().prime(i), context.qpBasis().prime(j));
}

TEST(CkksContext, DigitRangesTileTheLevels)
{
    const CkksContext context(CkksParams::testParams(1 << 9, 5, 2));
    // 5 levels, alpha=2 -> digits [0,2) [2,4) [4,5).
    EXPECT_EQ(context.dnum(), 3u);
    EXPECT_EQ(context.digitRange(0), (std::pair<size_t, size_t>{0, 2}));
    EXPECT_EQ(context.digitRange(1), (std::pair<size_t, size_t>{2, 4}));
    EXPECT_EQ(context.digitRange(2), (std::pair<size_t, size_t>{4, 5}));
    EXPECT_EQ(context.digitsAtLevel(5), 3u);
    EXPECT_EQ(context.digitsAtLevel(4), 2u);
    EXPECT_EQ(context.digitsAtLevel(1), 1u);
}

TEST(CkksContext, GadgetConstantsAreConsistent)
{
    const CkksContext context(CkksParams::testParams(1 << 9, 5, 2));
    for (size_t i = 0; i < context.maxLevel(); ++i) {
        const uint64_t qi = context.qBasis().prime(i);
        EXPECT_EQ(mulMod(context.pModQ()[i], context.pInvModQ()[i], qi),
                  1u);
    }
}

TEST(CkksContext, ConverterCacheReturnsSameInstance)
{
    const CkksContext context(CkksParams::testParams(1 << 9, 5, 2));
    const auto &c1 =
        context.converter(context.pBasis(), context.levelBasis(3));
    const auto &c2 =
        context.converter(context.pBasis(), context.levelBasis(3));
    EXPECT_EQ(&c1, &c2);
}

} // namespace
} // namespace anaheim

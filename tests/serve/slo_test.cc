/**
 * @file
 * SLO-machinery unit tests: the simulated-time token bucket must
 * refill/clamp deterministically, and the service estimator must price
 * traces fault-free, inflate PIM-heavy estimates on a degraded
 * geometry, and fall back to GPU-only pricing when PIM is offline.
 */

#include <gtest/gtest.h>

#include "anaheim/framework.h"
#include "serve/slo.h"
#include "sim/health.h"
#include "trace/builders.h"

namespace anaheim {
namespace {

OpSequence
pimHeavyTrace()
{
    const TraceParams params;
    OpSequence seq = buildHAdd(params);
    const OpSequence add = seq;
    const OpSequence mult = buildPMult(params);
    seq.append(mult);
    for (size_t r = 1; r < 20; ++r) {
        seq.append(add);
        seq.append(mult);
    }
    seq.name = "ew";
    return seq;
}

TEST(TokenBucket, ConsumesAndRefillsOverSimulatedTime)
{
    // 5e8 requests/second = 0.5 tokens per simulated ns.
    serve::TokenBucket bucket(5e8, 2.0);
    EXPECT_EQ(bucket.tokens(), 2.0); // starts full: bursts admit

    EXPECT_TRUE(bucket.tryAcquire(0.0));
    EXPECT_TRUE(bucket.tryAcquire(0.0));
    EXPECT_FALSE(bucket.tryAcquire(0.0)); // burst spent
    EXPECT_FALSE(bucket.tryAcquire(1.0)); // only 0.5 accrued
    EXPECT_TRUE(bucket.tryAcquire(2.0));  // 1.0 accrued
    EXPECT_FALSE(bucket.tryAcquire(2.0));
}

TEST(TokenBucket, RefillClampsAtBurst)
{
    serve::TokenBucket bucket(5e8, 2.0);
    EXPECT_TRUE(bucket.tryAcquire(0.0));
    // A long idle gap accrues far more than burst; the clamp caps the
    // backlog a tenant can bank.
    EXPECT_TRUE(bucket.tryAcquire(1e9));
    EXPECT_TRUE(bucket.tryAcquire(1e9));
    EXPECT_FALSE(bucket.tryAcquire(1e9));
}

TEST(ServiceEstimator, PricesTracesFaultFree)
{
    // Estimates must be identical with and without resilience knobs:
    // they answer "how long on a clean device".
    AnaheimConfig faulty = AnaheimConfig::a100NearBank();
    faulty.resilience.ber = 1e-5;
    faulty.resilience.checksumEnabled = true;
    const std::vector<OpSequence> traces = {pimHeavyTrace()};

    const serve::ServiceEstimator clean(AnaheimConfig::a100NearBank(),
                                        traces);
    const serve::ServiceEstimator stripped(faulty, traces);
    EXPECT_GT(clean.estimate(0).totalNs, 0.0);
    EXPECT_EQ(clean.estimate(0).totalNs, stripped.estimate(0).totalNs);
    // PIM-heavy trace: most of the price is PIM time.
    EXPECT_GT(clean.estimate(0).pimNs, clean.estimate(0).gpuNs);
    // Indexing cycles like stream->trace assignment does.
    EXPECT_EQ(clean.estimate(7).totalNs, clean.estimate(0).totalNs);
    EXPECT_FALSE(clean.degraded());
}

TEST(ServiceEstimator, RepricesOnDegradedGeometry)
{
    const AnaheimConfig config = AnaheimConfig::a100NearBank();
    const std::vector<OpSequence> traces = {pimHeavyTrace()};
    serve::ServiceEstimator estimator(config, traces);
    const double healthyNs = estimator.estimate(0).totalNs;

    // Quarantine a sizeable slice of one die group: the lockstep
    // device follows its worst group, so PIM work must slow down.
    ResourceMap resources;
    resources.dieGroups = config.pim.dieGroups;
    resources.banksPerDieGroup = config.pim.banksPerDieGroup;
    resources.lanesPerUnit = config.pim.lanes;
    for (size_t b = 0; b < config.pim.banksPerDieGroup / 4; ++b)
        resources.quarantined.push_back(
            {FaultSiteId::Kind::Bank, 0, b});
    estimator.reprice(resources, false);

    EXPECT_TRUE(estimator.degraded());
    EXPECT_GT(estimator.estimate(0).totalNs, healthyNs);
}

TEST(ServiceEstimator, PimOfflineFallsBackToGpuPricing)
{
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    const std::vector<OpSequence> traces = {pimHeavyTrace()};
    serve::ServiceEstimator estimator(config, traces);

    estimator.reprice(ResourceMap{}, true);
    EXPECT_TRUE(estimator.degraded());
    // Everything runs on the GPU now; the estimate must say so.
    EXPECT_EQ(estimator.estimate(0).pimNs, 0.0);
    EXPECT_GT(estimator.estimate(0).totalNs, 0.0);

    // And it must equal a from-scratch GPU-only pricing.
    AnaheimConfig gpuOnly = config;
    gpuOnly.pimEnabled = false;
    const serve::ServiceEstimator reference(gpuOnly, traces);
    EXPECT_EQ(estimator.estimate(0).totalNs,
              reference.estimate(0).totalNs);
}

} // namespace
} // namespace anaheim

/**
 * @file
 * Serving-scheduler tests: the multi-tenant event loop must be a pure
 * function of (config, traces, seeds) — bitwise identical across
 * reruns and host thread counts — batching must change scheduling
 * only (never any per-request result), overlap must beat the serial
 * baseline, and the RunContext stepping API must reproduce
 * AnaheimFramework::execute exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "anaheim/framework.h"
#include "anaheim/runcontext.h"
#include "common/parallel.h"
#include "serve/scheduler.h"
#include "trace/builders.h"

namespace anaheim {
namespace {

/** GPU-heavy tenant trace. */
OpSequence
hmultTrace()
{
    OpSequence seq = buildHMult(TraceParams{});
    seq.name = "hmult";
    return seq;
}

/** PIM-heavy tenant trace: all-element-wise HADD/PMULT pairs. */
OpSequence
ewTrace(size_t pairs)
{
    const TraceParams params;
    OpSequence seq = buildHAdd(params);
    const OpSequence add = seq;
    const OpSequence mult = buildPMult(params);
    seq.append(mult);
    for (size_t r = 1; r < pairs; ++r) {
        seq.append(add);
        seq.append(mult);
    }
    seq.name = "ew";
    return seq;
}

std::vector<OpSequence>
mixedTraces()
{
    return {hmultTrace(), ewTrace(30)};
}

ServeConfig
servingConfig(double offeredRps)
{
    ServeConfig serve;
    serve.streams = 8;
    serve.requestsPerStream = 3;
    serve.offeredRps = offeredRps;
    serve.priorityClasses = 2;
    return serve;
}

void
foldDouble(std::vector<uint64_t> &out, double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    out.push_back(bits);
}

/** Bitwise digest of everything a serve run decides: request
 *  lifecycles, per-run totals, full timelines, aggregate stats. */
std::vector<uint64_t>
digest(const serve::ServeResult &result)
{
    std::vector<uint64_t> out;
    foldDouble(out, result.stats.makespanNs);
    foldDouble(out, result.stats.gpuBusyNs);
    foldDouble(out, result.stats.pimBusyNs);
    out.push_back(result.stats.admitted);
    out.push_back(result.stats.rejected);
    out.push_back(result.stats.completed);
    out.push_back(result.stats.rejectedQueueFull);
    out.push_back(result.stats.rejectedRateLimited);
    out.push_back(result.stats.shedDeadline);
    out.push_back(result.stats.deadlineMet);
    out.push_back(result.stats.preemptions);
    out.push_back(result.stats.preemptionResumes);
    foldDouble(out, result.stats.preemptionOverheadNs);
    out.push_back(result.stats.repriceEvents);
    out.push_back(result.stats.batches);
    out.push_back(result.stats.batchedOps);
    for (const double l : result.stats.latenciesNs)
        foldDouble(out, l);
    for (const serve::ServeStreamResult &stream : result.streams) {
        out.push_back(stream.priority);
        out.push_back(stream.pimRetries);
        out.push_back(stream.rollbacks);
        out.push_back(stream.gpuFallbacks);
        out.push_back(stream.migrations);
        out.push_back(stream.unrecovered);
        for (const serve::ServeRequest &req : stream.requests) {
            foldDouble(out, req.arrivalNs);
            foldDouble(out, req.startNs);
            foldDouble(out, req.endNs);
            out.push_back(req.rejected ? 1 : 0);
            out.push_back(static_cast<uint64_t>(req.cause));
            out.push_back(req.deadlineMet ? 1 : 0);
            foldDouble(out, req.result.totalNs);
            foldDouble(out, req.result.energyPj);
            for (const GanttEntry &entry : req.result.timeline) {
                foldDouble(out, entry.startNs);
                foldDouble(out, entry.endNs);
                foldDouble(out, entry.energyPj);
            }
        }
    }
    return out;
}

TEST(Serve, RerunIsBitwiseIdentical)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    const serve::ServeScheduler sched(fw, servingConfig(8000.0));
    EXPECT_EQ(digest(sched.run(traces)), digest(sched.run(traces)));
}

TEST(Serve, DeterministicAcrossThreadCounts)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    const serve::ServeScheduler sched(fw, servingConfig(8000.0));

    setParallelThreads(1);
    const auto one = digest(sched.run(traces));
    setParallelThreads(4);
    const auto four = digest(sched.run(traces));
    setParallelThreads(0); // restore the default pool
    EXPECT_EQ(one, four);
}

TEST(Serve, BatchingChangesSchedulingNotResults)
{
    // Faults + checksums on: the fault draws are the most fragile
    // per-request state, and they must be keyed by (request, op),
    // never by dispatch order.
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.ber = 1e-6;
    config.resilience.checksumEnabled = true;
    const AnaheimFramework fw(config);
    const auto traces = mixedTraces();

    ServeConfig on = servingConfig(8000.0);
    ServeConfig off = on;
    off.batching = false;
    const auto withBatch =
        serve::ServeScheduler(fw, on).run(traces);
    const auto without =
        serve::ServeScheduler(fw, off).run(traces);

    ASSERT_GT(withBatch.stats.batches, 0u);
    EXPECT_EQ(without.stats.batches, 0u);
    ASSERT_EQ(withBatch.streams.size(), without.streams.size());
    for (size_t s = 0; s < withBatch.streams.size(); ++s) {
        const auto &a = withBatch.streams[s].requests;
        const auto &b = without.streams[s].requests;
        ASSERT_EQ(a.size(), b.size());
        for (size_t k = 0; k < a.size(); ++k) {
            const RunResult &ra = a[k].result;
            const RunResult &rb = b[k].result;
            // Start/end times and transition charges may differ; the
            // computation itself — work, energy, traffic, faults —
            // must not.
            EXPECT_EQ(ra.energyPj, rb.energyPj);
            EXPECT_EQ(ra.gpuDramBytes, rb.gpuDramBytes);
            EXPECT_EQ(ra.pimInternalBytes, rb.pimInternalBytes);
            EXPECT_EQ(ra.resilience.faultyWords,
                      rb.resilience.faultyWords);
            EXPECT_EQ(ra.resilience.eccCorrected,
                      rb.resilience.eccCorrected);
            EXPECT_EQ(ra.resilience.eccUncorrectable,
                      rb.resilience.eccUncorrectable);
            EXPECT_EQ(ra.resilience.silentErrors,
                      rb.resilience.silentErrors);
            EXPECT_EQ(ra.resilience.pimRetries,
                      rb.resilience.pimRetries);
            EXPECT_EQ(ra.resilience.checksumMismatches,
                      rb.resilience.checksumMismatches);
            EXPECT_EQ(ra.resilience.unrecovered,
                      rb.resilience.unrecovered);
            ASSERT_EQ(ra.timeline.size(), rb.timeline.size());
            for (size_t e = 0; e < ra.timeline.size(); ++e) {
                EXPECT_EQ(ra.timeline[e].phase, rb.timeline[e].phase);
                EXPECT_EQ(ra.timeline[e].device,
                          rb.timeline[e].device);
                EXPECT_EQ(ra.timeline[e].cls, rb.timeline[e].cls);
                EXPECT_EQ(ra.timeline[e].energyPj,
                          rb.timeline[e].energyPj);
            }
        }
    }
}

TEST(Serve, OverlapBeatsSerialBaseline)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    const ServeConfig overlapped = servingConfig(12000.0);
    ServeConfig serial = overlapped;
    serial.overlap = false;
    serial.batching = false;

    const auto fast =
        serve::ServeScheduler(fw, overlapped).run(traces).stats;
    const auto slow =
        serve::ServeScheduler(fw, serial).run(traces).stats;
    ASSERT_EQ(fast.completed, slow.completed);
    // The GPU-heavy/PIM-heavy mix leaves plenty of cross-trace
    // parallelism; 1.3x is a conservative floor for this population
    // (the serving bench demonstrates ~1.9x at saturation).
    EXPECT_LT(fast.makespanNs * 1.3, slow.makespanNs);
}

TEST(Serve, CrossTraceGpuPimOverlapExists)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    const auto result =
        serve::ServeScheduler(fw, servingConfig(12000.0)).run(traces);

    // Some GPU span of one stream must run while another stream's PIM
    // span is in flight — the defining schedule shape of the overlap
    // scheduler (visible as parallel tracks in the Perfetto export).
    bool found = false;
    const auto &streams = result.streams;
    for (size_t i = 0; i < streams.size() && !found; ++i) {
        for (const serve::ServeRequest &ri : streams[i].requests) {
            for (const GanttEntry &a : ri.result.timeline) {
                if (a.device != "GPU")
                    continue;
                for (size_t j = 0; j < streams.size(); ++j) {
                    if (j == i)
                        continue;
                    for (const serve::ServeRequest &rj :
                         streams[j].requests) {
                        for (const GanttEntry &b : rj.result.timeline) {
                            if (b.device == "PIM" &&
                                a.startNs < b.endNs &&
                                b.startNs < a.endNs &&
                                a.endNs > a.startNs &&
                                b.endNs > b.startNs)
                                found = true;
                        }
                    }
                }
            }
            if (found)
                break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Serve, AdmissionRejectsBeyondQueueLimit)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    ServeConfig serve = servingConfig(5e6); // everyone arrives at once
    serve.requestsPerStream = 8;
    serve.maxQueuedPerStream = 2;
    const auto result = serve::ServeScheduler(fw, serve).run(traces);

    const auto &stats = result.stats;
    EXPECT_GT(stats.rejected, 0u);
    EXPECT_EQ(stats.admitted + stats.rejected,
              static_cast<uint64_t>(serve.streams) *
                  serve.requestsPerStream);
    EXPECT_EQ(stats.completed, stats.admitted);
    // Every rejection here is a queue overflow, and the cause split
    // must say so exactly.
    EXPECT_EQ(stats.rejectedQueueFull, stats.rejected);
    EXPECT_EQ(stats.rejectedRateLimited, 0u);
    EXPECT_EQ(stats.shedDeadline, 0u);
    // Rejected requests carry no run result and the queue-full cause.
    for (const auto &stream : result.streams) {
        for (const auto &req : stream.requests) {
            if (req.rejected) {
                EXPECT_TRUE(req.result.timeline.empty());
                EXPECT_EQ(req.cause, serve::RejectCause::QueueFull);
            } else {
                EXPECT_EQ(req.cause, serve::RejectCause::None);
            }
        }
    }
}

/** Sums per-request reject causes and checks they partition the
 *  aggregate counters exactly — no double counting, nothing dropped. */
void
expectCausePartition(const serve::ServeResult &result,
                     const ServeConfig &serve)
{
    const serve::ServeStats &stats = result.stats;
    EXPECT_EQ(stats.rejected, stats.rejectedQueueFull +
                                  stats.rejectedRateLimited +
                                  stats.shedDeadline);
    EXPECT_EQ(stats.admitted + stats.rejected,
              static_cast<uint64_t>(serve.streams) *
                  serve.requestsPerStream);
    EXPECT_EQ(stats.completed, stats.admitted);
    uint64_t queueFull = 0;
    uint64_t rateLimited = 0;
    uint64_t shed = 0;
    for (const auto &stream : result.streams) {
        for (const auto &req : stream.requests) {
            EXPECT_EQ(req.rejected,
                      req.cause != serve::RejectCause::None);
            queueFull += req.cause == serve::RejectCause::QueueFull;
            rateLimited += req.cause == serve::RejectCause::RateLimited;
            shed += req.cause == serve::RejectCause::DeadlineShed;
        }
    }
    EXPECT_EQ(queueFull, stats.rejectedQueueFull);
    EXPECT_EQ(rateLimited, stats.rejectedRateLimited);
    EXPECT_EQ(shed, stats.shedDeadline);
}

TEST(Serve, PercentileHandlesEdgeCases)
{
    serve::ServeStats stats;
    // Empty sample: every percentile is 0, including the boundaries.
    EXPECT_EQ(stats.percentileNs(50.0), 0.0);
    EXPECT_EQ(stats.percentileNs(0.0), 0.0);
    EXPECT_EQ(stats.percentileNs(100.0), 0.0);

    stats.latenciesNs = {5.0};
    EXPECT_EQ(stats.percentileNs(0.0), 5.0);
    EXPECT_EQ(stats.percentileNs(50.0), 5.0);
    EXPECT_EQ(stats.percentileNs(100.0), 5.0);

    stats.latenciesNs = {5.0, 1.0, 3.0};
    EXPECT_EQ(stats.percentileNs(0.0), 1.0);   // minimum
    EXPECT_EQ(stats.percentileNs(100.0), 5.0); // maximum
    EXPECT_EQ(stats.percentileNs(34.0), 3.0);  // nearest rank 2 of 3
    EXPECT_EQ(stats.percentileNs(50.0), 3.0);
    EXPECT_EQ(stats.percentileNs(99.0), 5.0);
    // Out-of-range p clamps instead of indexing out of bounds.
    EXPECT_EQ(stats.percentileNs(-10.0), 1.0);
    EXPECT_EQ(stats.percentileNs(250.0), 5.0);
}

TEST(Serve, RateLimiterRejectsWithDedicatedCause)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    ServeConfig serve = servingConfig(50000.0); // well past the limit
    serve.requestsPerStream = 6;
    serve.rateLimitRps = 2000.0; // per stream; offered is ~6250/stream
    serve.rateLimitBurst = 1.0;
    const auto result = serve::ServeScheduler(fw, serve).run(traces);

    EXPECT_GT(result.stats.rejectedRateLimited, 0u);
    EXPECT_EQ(result.stats.rejectedQueueFull, 0u);
    EXPECT_EQ(result.stats.shedDeadline, 0u);
    expectCausePartition(result, serve);
}

TEST(Serve, DeadlineSheddingDropsGuaranteedMisses)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    // Everyone arrives at once; the deadline covers a couple of
    // service times, so the back of each queue is a guaranteed miss
    // and must be shed instead of executed.
    const double serviceNs =
        std::max(fw.execute(traces[0]).totalNs,
                 fw.execute(traces[1]).totalNs);
    ServeConfig serve = servingConfig(5e6);
    serve.requestsPerStream = 8;
    // Two deadline classes exercise the per-class round-robin.
    serve.deadlineClassNs = {2.0 * serviceNs, 3.0 * serviceNs};
    const auto result = serve::ServeScheduler(fw, serve).run(traces);

    EXPECT_GT(result.stats.shedDeadline, 0u);
    EXPECT_GT(result.stats.deadlineMet, 0u);
    EXPECT_EQ(result.stats.rejectedRateLimited, 0u);
    expectCausePartition(result, serve);
    // Goodput only counts deadline-met completions.
    EXPECT_LE(result.stats.goodputRps(), result.stats.throughputRps());
    EXPECT_LE(result.stats.deadlineMet, result.stats.completed);
    for (const auto &stream : result.streams) {
        for (const auto &req : stream.requests) {
            if (req.cause == serve::RejectCause::DeadlineShed)
                EXPECT_TRUE(req.result.timeline.empty());
            if (req.deadlineMet) {
                EXPECT_FALSE(req.rejected);
                EXPECT_LE(req.endNs, req.deadlineNs);
            }
        }
    }
}

TEST(Serve, ClosedLoopRejectionReleasesNext)
{
    // A rate-limited closed-loop stream must keep draining: each
    // rejection immediately releases the stream's next request, so
    // every request resolves (the pre-fix scheduler stranded the
    // remainder of the stream and under-reported totals).
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    ServeConfig serve;
    serve.streams = 2;
    serve.requestsPerStream = 5;
    serve.arrival = ArrivalKind::Closed;
    serve.rateLimitRps = 1000.0; // slower than the service rate
    serve.rateLimitBurst = 1.0;
    const auto result = serve::ServeScheduler(fw, serve).run(traces);

    EXPECT_EQ(result.stats.completed + result.stats.rejected,
              static_cast<uint64_t>(serve.streams) *
                  serve.requestsPerStream);
    EXPECT_GT(result.stats.rejectedRateLimited, 0u);
    // The bucket starts full, so every stream serves at least one.
    for (const auto &stream : result.streams) {
        uint64_t done = 0;
        for (const auto &req : stream.requests) {
            done += !req.rejected;
            // Resolved one way or the other — nothing stranded.
            EXPECT_TRUE(req.rejected || req.endNs > 0.0);
        }
        EXPECT_GE(done, 1u);
    }
    expectCausePartition(result, serve);
}

TEST(Serve, PreemptionLeavesRunResultsIdentical)
{
    // Preemption changes WHO waits, never WHAT any run computes: the
    // save/restore passes bill the device horizon and ServeStats, so a
    // preempted run's RunResult must match the no-preemption schedule
    // bit for bit (the "resumes bitwise-identically" guarantee).
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    ServeConfig on = servingConfig(12000.0);
    on.preemption = true;
    // Batching off: fused followers skip transition charges, and the
    // two schedules batch differently — keep the comparison exact.
    on.batching = false;
    ServeConfig off = on;
    off.preemption = false;

    const auto withPreempt = serve::ServeScheduler(fw, on).run(traces);
    const auto without = serve::ServeScheduler(fw, off).run(traces);

    ASSERT_GT(withPreempt.stats.preemptions, 0u);
    // Every preempted run has costed work left, so it always comes
    // back and pays its restore.
    EXPECT_EQ(withPreempt.stats.preemptionResumes,
              withPreempt.stats.preemptions);
    EXPECT_GT(withPreempt.stats.preemptionOverheadNs, 0.0);
    EXPECT_EQ(without.stats.preemptions, 0u);
    EXPECT_EQ(without.stats.preemptionOverheadNs, 0.0);
    ASSERT_EQ(withPreempt.streams.size(), without.streams.size());
    for (size_t s = 0; s < withPreempt.streams.size(); ++s) {
        const auto &a = withPreempt.streams[s].requests;
        const auto &b = without.streams[s].requests;
        ASSERT_EQ(a.size(), b.size());
        for (size_t k = 0; k < a.size(); ++k) {
            const RunResult &ra = a[k].result;
            const RunResult &rb = b[k].result;
            EXPECT_EQ(ra.energyPj, rb.energyPj);
            EXPECT_EQ(ra.gpuDramBytes, rb.gpuDramBytes);
            EXPECT_EQ(ra.pimInternalBytes, rb.pimInternalBytes);
            ASSERT_EQ(ra.timeline.size(), rb.timeline.size());
            for (size_t e = 0; e < ra.timeline.size(); ++e) {
                EXPECT_EQ(ra.timeline[e].phase, rb.timeline[e].phase);
                EXPECT_EQ(ra.timeline[e].device,
                          rb.timeline[e].device);
                // Durations are differences of absolute timestamps,
                // and the two schedules embed the run at different
                // offsets — allow the resulting last-bit float noise,
                // nothing more.
                EXPECT_NEAR(ra.timeline[e].endNs -
                                ra.timeline[e].startNs,
                            rb.timeline[e].endNs -
                                rb.timeline[e].startNs,
                            1e-6);
                EXPECT_EQ(ra.timeline[e].energyPj,
                          rb.timeline[e].energyPj);
            }
        }
    }
}

/** The full SLO + resilience stack in one config: faults, recovery,
 *  health quarantine, deadlines, rate limits and preemption. */
ServeConfig
resilientServeConfig()
{
    ServeConfig serve = servingConfig(10000.0);
    serve.requestsPerStream = 4;
    serve.deadlineNs = 1e9; // generous: estimator on, shedding rare
    serve.rateLimitRps = 5000.0;
    serve.rateLimitBurst = 2.0;
    serve.preemption = true;
    return serve;
}

AnaheimConfig
faultyDeviceConfig()
{
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    ResilienceConfig &rc = config.resilience;
    rc.ber = 1e-6;
    rc.checksumEnabled = true;
    rc.checkpoint.enabled = true;
    rc.checkpoint.intervalSegments = 8;
    rc.checkpoint.maxRollbacks = 32;
    rc.health.enabled = true;
    rc.health.permanentThreshold = 2;
    rc.permanentBanks.push_back({2, 17});
    return config;
}

TEST(Serve, ServeUnderFaultsIsDeterministic)
{
    // Satellite of the §16 determinism story: with every new policy ON
    // and a faulty device, a serve run is still a pure function of
    // (config, traces, seeds). The serve_determinism_threads4 ctest
    // entry reruns this under ANAHEIM_THREADS=4.
    const AnaheimFramework fw(faultyDeviceConfig());
    const auto traces = mixedTraces();
    const serve::ServeScheduler sched(fw, resilientServeConfig());
    EXPECT_EQ(digest(sched.run(traces)), digest(sched.run(traces)));
}

TEST(Serve, TelemetrySamplingPreservesBitwiseDeterminism)
{
    // §17: time-series sampling observes the schedule, it must never
    // steer it. A run with a telemetry tick must be bitwise identical
    // to the same run with telemetry off, and a sampled rerun must be
    // bitwise identical to itself (incl. under ANAHEIM_THREADS=4 via
    // the serve_determinism_threads4 ctest entry). Alert counters are
    // simulated-time artifacts, so they replay exactly too.
    const AnaheimFramework fw(faultyDeviceConfig());
    const auto traces = mixedTraces();

    ServeConfig sampled = resilientServeConfig();
    sampled.telemetry.tickNs = 3.0e6;
    sampled.telemetry.sloTarget = 0.9;
    sampled.telemetry.fastWindowTicks = 2;
    sampled.telemetry.slowWindowTicks = 6;
    ServeConfig unsampled = sampled;
    unsampled.telemetry.tickNs = 0.0; // telemetry disabled

    const serve::ServeScheduler sampledSched(fw, sampled);
    const auto first = sampledSched.run(traces);
    const auto second = sampledSched.run(traces);
    EXPECT_EQ(digest(first), digest(second));
    EXPECT_EQ(first.stats.alertsFired, second.stats.alertsFired);
    EXPECT_EQ(first.stats.alertsResolved, second.stats.alertsResolved);
    EXPECT_EQ(first.stats.alertTicksFiring,
              second.stats.alertTicksFiring);

    const auto off = serve::ServeScheduler(fw, unsampled).run(traces);
    EXPECT_EQ(digest(first), digest(off));
    EXPECT_EQ(off.stats.alertsFired, 0u);
    EXPECT_EQ(off.stats.alertTicksFiring, 0u);
}

TEST(Serve, DegradationRepricesWithoutStallingTenants)
{
    // One permanently dead bank trips quarantine mid-serve: the
    // scheduler must re-price queued work on the degraded geometry
    // (repriceEvents > 0), surface per-tenant fault bills, and keep
    // every tenant serving — one stream's fault storm cannot starve
    // the rest.
    const AnaheimFramework fw(faultyDeviceConfig());
    const auto traces = mixedTraces();
    const ServeConfig serve = resilientServeConfig();
    const auto result = serve::ServeScheduler(fw, serve).run(traces);

    EXPECT_GT(result.stats.repriceEvents, 0u);
    expectCausePartition(result, serve);
    uint64_t totalRetries = 0;
    for (const auto &stream : result.streams) {
        uint64_t done = 0;
        for (const auto &req : stream.requests)
            done += !req.rejected;
        EXPECT_GE(done, 1u); // every tenant kept serving
        totalRetries += stream.pimRetries + stream.rollbacks +
                        stream.gpuFallbacks + stream.migrations;
    }
    // The fault storm must actually be visible in the per-tenant bill.
    EXPECT_GT(totalRetries, 0u);
}

TEST(Serve, RunContextMatchesExecute)
{
    // The slimmed execute() IS the RunContext loop; pin the
    // equivalence (including fault/recovery state) against drift.
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.ber = 1e-6;
    config.resilience.checksumEnabled = true;
    config.resilience.checkpoint.enabled = true;
    config.resilience.checkpoint.intervalSegments = 8;
    const AnaheimFramework fw(config);
    OpSequence seq = hmultTrace();
    seq.append(hmultTrace());

    const RunResult viaExecute = fw.execute(seq);
    RunContext ctx(fw, seq);
    while (!ctx.done())
        ctx.step();
    const RunResult viaContext = ctx.finish();

    EXPECT_EQ(viaExecute.totalNs, viaContext.totalNs);
    EXPECT_EQ(viaExecute.energyPj, viaContext.energyPj);
    EXPECT_EQ(viaExecute.gpuDramBytes, viaContext.gpuDramBytes);
    EXPECT_EQ(viaExecute.pimInternalBytes,
              viaContext.pimInternalBytes);
    EXPECT_EQ(viaExecute.resilience.faultyWords,
              viaContext.resilience.faultyWords);
    EXPECT_EQ(viaExecute.resilience.rollbacks,
              viaContext.resilience.rollbacks);
    EXPECT_EQ(viaExecute.resilience.checksumChecks,
              viaContext.resilience.checksumChecks);
    ASSERT_EQ(viaExecute.timeline.size(), viaContext.timeline.size());
    for (size_t e = 0; e < viaExecute.timeline.size(); ++e) {
        EXPECT_EQ(viaExecute.timeline[e].startNs,
                  viaContext.timeline[e].startNs);
        EXPECT_EQ(viaExecute.timeline[e].endNs,
                  viaContext.timeline[e].endNs);
        EXPECT_EQ(viaExecute.timeline[e].phase,
                  viaContext.timeline[e].phase);
        EXPECT_EQ(viaExecute.timeline[e].device,
                  viaContext.timeline[e].device);
    }
}

} // namespace
} // namespace anaheim

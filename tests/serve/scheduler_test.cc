/**
 * @file
 * Serving-scheduler tests: the multi-tenant event loop must be a pure
 * function of (config, traces, seeds) — bitwise identical across
 * reruns and host thread counts — batching must change scheduling
 * only (never any per-request result), overlap must beat the serial
 * baseline, and the RunContext stepping API must reproduce
 * AnaheimFramework::execute exactly.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "anaheim/framework.h"
#include "anaheim/runcontext.h"
#include "common/parallel.h"
#include "serve/scheduler.h"
#include "trace/builders.h"

namespace anaheim {
namespace {

/** GPU-heavy tenant trace. */
OpSequence
hmultTrace()
{
    OpSequence seq = buildHMult(TraceParams{});
    seq.name = "hmult";
    return seq;
}

/** PIM-heavy tenant trace: all-element-wise HADD/PMULT pairs. */
OpSequence
ewTrace(size_t pairs)
{
    const TraceParams params;
    OpSequence seq = buildHAdd(params);
    const OpSequence add = seq;
    const OpSequence mult = buildPMult(params);
    seq.append(mult);
    for (size_t r = 1; r < pairs; ++r) {
        seq.append(add);
        seq.append(mult);
    }
    seq.name = "ew";
    return seq;
}

std::vector<OpSequence>
mixedTraces()
{
    return {hmultTrace(), ewTrace(30)};
}

ServeConfig
servingConfig(double offeredRps)
{
    ServeConfig serve;
    serve.streams = 8;
    serve.requestsPerStream = 3;
    serve.offeredRps = offeredRps;
    serve.priorityClasses = 2;
    return serve;
}

void
foldDouble(std::vector<uint64_t> &out, double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    out.push_back(bits);
}

/** Bitwise digest of everything a serve run decides: request
 *  lifecycles, per-run totals, full timelines, aggregate stats. */
std::vector<uint64_t>
digest(const serve::ServeResult &result)
{
    std::vector<uint64_t> out;
    foldDouble(out, result.stats.makespanNs);
    foldDouble(out, result.stats.gpuBusyNs);
    foldDouble(out, result.stats.pimBusyNs);
    out.push_back(result.stats.admitted);
    out.push_back(result.stats.rejected);
    out.push_back(result.stats.completed);
    out.push_back(result.stats.batches);
    out.push_back(result.stats.batchedOps);
    for (const double l : result.stats.latenciesNs)
        foldDouble(out, l);
    for (const serve::ServeStreamResult &stream : result.streams) {
        out.push_back(stream.priority);
        for (const serve::ServeRequest &req : stream.requests) {
            foldDouble(out, req.arrivalNs);
            foldDouble(out, req.startNs);
            foldDouble(out, req.endNs);
            out.push_back(req.rejected ? 1 : 0);
            foldDouble(out, req.result.totalNs);
            foldDouble(out, req.result.energyPj);
            for (const GanttEntry &entry : req.result.timeline) {
                foldDouble(out, entry.startNs);
                foldDouble(out, entry.endNs);
                foldDouble(out, entry.energyPj);
            }
        }
    }
    return out;
}

TEST(Serve, RerunIsBitwiseIdentical)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    const serve::ServeScheduler sched(fw, servingConfig(8000.0));
    EXPECT_EQ(digest(sched.run(traces)), digest(sched.run(traces)));
}

TEST(Serve, DeterministicAcrossThreadCounts)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    const serve::ServeScheduler sched(fw, servingConfig(8000.0));

    setParallelThreads(1);
    const auto one = digest(sched.run(traces));
    setParallelThreads(4);
    const auto four = digest(sched.run(traces));
    setParallelThreads(0); // restore the default pool
    EXPECT_EQ(one, four);
}

TEST(Serve, BatchingChangesSchedulingNotResults)
{
    // Faults + checksums on: the fault draws are the most fragile
    // per-request state, and they must be keyed by (request, op),
    // never by dispatch order.
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.ber = 1e-6;
    config.resilience.checksumEnabled = true;
    const AnaheimFramework fw(config);
    const auto traces = mixedTraces();

    ServeConfig on = servingConfig(8000.0);
    ServeConfig off = on;
    off.batching = false;
    const auto withBatch =
        serve::ServeScheduler(fw, on).run(traces);
    const auto without =
        serve::ServeScheduler(fw, off).run(traces);

    ASSERT_GT(withBatch.stats.batches, 0u);
    EXPECT_EQ(without.stats.batches, 0u);
    ASSERT_EQ(withBatch.streams.size(), without.streams.size());
    for (size_t s = 0; s < withBatch.streams.size(); ++s) {
        const auto &a = withBatch.streams[s].requests;
        const auto &b = without.streams[s].requests;
        ASSERT_EQ(a.size(), b.size());
        for (size_t k = 0; k < a.size(); ++k) {
            const RunResult &ra = a[k].result;
            const RunResult &rb = b[k].result;
            // Start/end times and transition charges may differ; the
            // computation itself — work, energy, traffic, faults —
            // must not.
            EXPECT_EQ(ra.energyPj, rb.energyPj);
            EXPECT_EQ(ra.gpuDramBytes, rb.gpuDramBytes);
            EXPECT_EQ(ra.pimInternalBytes, rb.pimInternalBytes);
            EXPECT_EQ(ra.resilience.faultyWords,
                      rb.resilience.faultyWords);
            EXPECT_EQ(ra.resilience.eccCorrected,
                      rb.resilience.eccCorrected);
            EXPECT_EQ(ra.resilience.eccUncorrectable,
                      rb.resilience.eccUncorrectable);
            EXPECT_EQ(ra.resilience.silentErrors,
                      rb.resilience.silentErrors);
            EXPECT_EQ(ra.resilience.pimRetries,
                      rb.resilience.pimRetries);
            EXPECT_EQ(ra.resilience.checksumMismatches,
                      rb.resilience.checksumMismatches);
            EXPECT_EQ(ra.resilience.unrecovered,
                      rb.resilience.unrecovered);
            ASSERT_EQ(ra.timeline.size(), rb.timeline.size());
            for (size_t e = 0; e < ra.timeline.size(); ++e) {
                EXPECT_EQ(ra.timeline[e].phase, rb.timeline[e].phase);
                EXPECT_EQ(ra.timeline[e].device,
                          rb.timeline[e].device);
                EXPECT_EQ(ra.timeline[e].cls, rb.timeline[e].cls);
                EXPECT_EQ(ra.timeline[e].energyPj,
                          rb.timeline[e].energyPj);
            }
        }
    }
}

TEST(Serve, OverlapBeatsSerialBaseline)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    const ServeConfig overlapped = servingConfig(12000.0);
    ServeConfig serial = overlapped;
    serial.overlap = false;
    serial.batching = false;

    const auto fast =
        serve::ServeScheduler(fw, overlapped).run(traces).stats;
    const auto slow =
        serve::ServeScheduler(fw, serial).run(traces).stats;
    ASSERT_EQ(fast.completed, slow.completed);
    // The GPU-heavy/PIM-heavy mix leaves plenty of cross-trace
    // parallelism; 1.3x is a conservative floor for this population
    // (the serving bench demonstrates ~1.9x at saturation).
    EXPECT_LT(fast.makespanNs * 1.3, slow.makespanNs);
}

TEST(Serve, CrossTraceGpuPimOverlapExists)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    const auto result =
        serve::ServeScheduler(fw, servingConfig(12000.0)).run(traces);

    // Some GPU span of one stream must run while another stream's PIM
    // span is in flight — the defining schedule shape of the overlap
    // scheduler (visible as parallel tracks in the Perfetto export).
    bool found = false;
    const auto &streams = result.streams;
    for (size_t i = 0; i < streams.size() && !found; ++i) {
        for (const serve::ServeRequest &ri : streams[i].requests) {
            for (const GanttEntry &a : ri.result.timeline) {
                if (a.device != "GPU")
                    continue;
                for (size_t j = 0; j < streams.size(); ++j) {
                    if (j == i)
                        continue;
                    for (const serve::ServeRequest &rj :
                         streams[j].requests) {
                        for (const GanttEntry &b : rj.result.timeline) {
                            if (b.device == "PIM" &&
                                a.startNs < b.endNs &&
                                b.startNs < a.endNs &&
                                a.endNs > a.startNs &&
                                b.endNs > b.startNs)
                                found = true;
                        }
                    }
                }
            }
            if (found)
                break;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Serve, AdmissionRejectsBeyondQueueLimit)
{
    const AnaheimFramework fw(AnaheimConfig::a100NearBank());
    const auto traces = mixedTraces();
    ServeConfig serve = servingConfig(5e6); // everyone arrives at once
    serve.requestsPerStream = 8;
    serve.maxQueuedPerStream = 2;
    const auto result = serve::ServeScheduler(fw, serve).run(traces);

    const auto &stats = result.stats;
    EXPECT_GT(stats.rejected, 0u);
    EXPECT_EQ(stats.admitted + stats.rejected,
              static_cast<uint64_t>(serve.streams) *
                  serve.requestsPerStream);
    EXPECT_EQ(stats.completed, stats.admitted);
    // Rejected requests carry no run result.
    for (const auto &stream : result.streams) {
        for (const auto &req : stream.requests) {
            if (req.rejected)
                EXPECT_TRUE(req.result.timeline.empty());
        }
    }
}

TEST(Serve, RunContextMatchesExecute)
{
    // The slimmed execute() IS the RunContext loop; pin the
    // equivalence (including fault/recovery state) against drift.
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.resilience.ber = 1e-6;
    config.resilience.checksumEnabled = true;
    config.resilience.checkpoint.enabled = true;
    config.resilience.checkpoint.intervalSegments = 8;
    const AnaheimFramework fw(config);
    OpSequence seq = hmultTrace();
    seq.append(hmultTrace());

    const RunResult viaExecute = fw.execute(seq);
    RunContext ctx(fw, seq);
    while (!ctx.done())
        ctx.step();
    const RunResult viaContext = ctx.finish();

    EXPECT_EQ(viaExecute.totalNs, viaContext.totalNs);
    EXPECT_EQ(viaExecute.energyPj, viaContext.energyPj);
    EXPECT_EQ(viaExecute.gpuDramBytes, viaContext.gpuDramBytes);
    EXPECT_EQ(viaExecute.pimInternalBytes,
              viaContext.pimInternalBytes);
    EXPECT_EQ(viaExecute.resilience.faultyWords,
              viaContext.resilience.faultyWords);
    EXPECT_EQ(viaExecute.resilience.rollbacks,
              viaContext.resilience.rollbacks);
    EXPECT_EQ(viaExecute.resilience.checksumChecks,
              viaContext.resilience.checksumChecks);
    ASSERT_EQ(viaExecute.timeline.size(), viaContext.timeline.size());
    for (size_t e = 0; e < viaExecute.timeline.size(); ++e) {
        EXPECT_EQ(viaExecute.timeline[e].startNs,
                  viaContext.timeline[e].startNs);
        EXPECT_EQ(viaExecute.timeline[e].endNs,
                  viaContext.timeline[e].endNs);
        EXPECT_EQ(viaExecute.timeline[e].phase,
                  viaContext.timeline[e].phase);
        EXPECT_EQ(viaExecute.timeline[e].device,
                  viaContext.timeline[e].device);
    }
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include "anaheim/planner.h"
#include "anaheim/workloads.h"
#include "sim/health.h"

namespace anaheim {
namespace {

TEST(PimMemoryPlanner, BootstrapFitsA100)
{
    const PimMemoryPlanner planner(DramConfig::hbm2A100(),
                                   PimConfig::nearBankA100());
    const auto plan = planner.plan(makeBootWorkload());
    EXPECT_GT(plan.pimKernels, 0u);
    EXPECT_GT(plan.peakRowsPerBank, 0u);
    EXPECT_TRUE(plan.fits)
        << "peak " << plan.peakRowsPerBank << " rows per bank";
}

TEST(PimMemoryPlanner, PeakTracksTheLargestAccumulation)
{
    // The KeyMult/MAC PAccum over the extended modulus with its evk
    // operands must dominate the per-kernel demand.
    const PimMemoryPlanner planner(DramConfig::hbm2A100(),
                                   PimConfig::nearBankA100());
    const auto boot = makeBootWorkload();
    const auto plan = planner.plan(boot);
    const KernelOp &peak = boot.ops[plan.peakOpIndex];
    EXPECT_TRUE(peak.type == KernelType::EwPAccum ||
                peak.type == KernelType::EwCAccum)
        << kernelTypeName(peak.type);
}

TEST(PimMemoryPlanner, GpuOnlyTraceNeedsNoPimRows)
{
    OpSequence seq;
    seq.name = "compute-only";
    seq.n = 1 << 16;
    KernelOp ntt;
    ntt.type = KernelType::Ntt;
    ntt.n = seq.n;
    ntt.limbs = 54;
    ntt.reads = {{OperandKind::Working, 54}};
    ntt.writes = {{OperandKind::Working, 54}};
    seq.ops.push_back(ntt);
    const PimMemoryPlanner planner(DramConfig::hbm2A100(),
                                   PimConfig::nearBankA100());
    const auto plan = planner.plan(seq);
    EXPECT_EQ(plan.pimKernels, 0u);
    EXPECT_EQ(plan.peakRowsPerBank, 0u);
    EXPECT_TRUE(plan.fits);
}

TEST(PimMemoryPlanner, SmallerDeviceHasTighterBudget)
{
    // The RTX 4090's per-bank capacity (24GB over 384 banks) is larger
    // per bank than the A100's (80GB over 2560), but its die groups are
    // smaller so each bank holds more chunks per limb — the planner
    // must still find bootstrapping feasible on both.
    const PimMemoryPlanner a100(DramConfig::hbm2A100(),
                                PimConfig::nearBankA100());
    const PimMemoryPlanner rtx(DramConfig::gddr6xRtx4090(),
                               PimConfig::nearBankRtx4090());
    const auto boot = makeBootWorkload();
    EXPECT_TRUE(a100.plan(boot).fits);
    EXPECT_TRUE(rtx.plan(boot).fits);
    // The 4090 needs more rows per bank for the same kernel.
    EXPECT_GT(rtx.plan(boot).peakRowsPerBank,
              a100.plan(boot).peakRowsPerBank);
}

TEST(PimMemoryPlanner, FailureAwarePlanAllocatesAroundOfflineBanks)
{
    // A quarantine set tightens the per-healthy-bank budget: the
    // degraded plan needs at least as many rows per bank, and enough
    // quarantine must eventually break feasibility.
    const PimMemoryPlanner planner(DramConfig::hbm2A100(),
                                   PimConfig::nearBankA100());
    const auto boot = makeBootWorkload();
    const auto healthyPlan = planner.plan(boot);

    ResourceMap map;
    map.dieGroups = 5;
    map.banksPerDieGroup = 512;
    map.lanesPerUnit = 8;
    for (size_t b = 0; b < 128; ++b)
        map.quarantined.push_back({FaultSiteId::Kind::Bank, 2, b});
    const auto degradedPlan = planner.plan(boot, map);
    EXPECT_TRUE(degradedPlan.fits);
    EXPECT_GT(degradedPlan.peakRowsPerBank,
              healthyPlan.peakRowsPerBank);
    // An empty quarantine set reproduces the healthy plan exactly.
    const auto samePlan = planner.plan(boot, ResourceMap{
                                                 5, 512, 8, {}});
    EXPECT_EQ(samePlan.peakRowsPerBank, healthyPlan.peakRowsPerBank);
    EXPECT_EQ(samePlan.pimKernels, healthyPlan.pimKernels);
}

} // namespace
} // namespace anaheim

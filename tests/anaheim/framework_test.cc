#include <gtest/gtest.h>

#include "anaheim/framework.h"
#include "anaheim/workloads.h"
#include "gpu/gpumodel.h"
#include "trace/builders.h"

namespace anaheim {
namespace {

double
categoryShare(const RunResult &result, const char *category)
{
    const auto it = result.timeNsByCategory.find(category);
    if (it == result.timeNsByCategory.end())
        return 0.0;
    return it->second / result.totalNs;
}

TEST(GpuModel, ElementWiseOpsAreMemoryBound)
{
    // §IV-D: element-wise ops have < 2 ops/byte; NTT is compute-bound.
    const GpuModel gpu(GpuConfig::a100_80gb(), LibraryProfile::cheddar());
    const auto hadd = buildHAdd(TraceParams{});
    const auto stats = gpu.run(hadd.ops[0]);
    EXPECT_TRUE(stats.memoryBound());

    KernelOp ntt;
    ntt.type = KernelType::Ntt;
    ntt.n = 1 << 16;
    ntt.limbs = 54;
    ntt.reads = {{OperandKind::Working, 54}};
    ntt.writes = {{OperandKind::Working, 54}};
    const auto nttStats = gpu.run(ntt);
    EXPECT_FALSE(nttStats.memoryBound());
}

TEST(GpuModel, CheddarBeatsPhantomOnNtt)
{
    // Fig. 2a: ~1.8x NTT advantage for Cheddar over Phantom.
    KernelOp ntt;
    ntt.type = KernelType::Ntt;
    ntt.n = 1 << 16;
    ntt.limbs = 54;
    ntt.reads = {{OperandKind::Working, 54}};
    ntt.writes = {{OperandKind::Working, 54}};
    const GpuModel cheddar(GpuConfig::a100_80gb(),
                           LibraryProfile::cheddar());
    const GpuModel phantom(GpuConfig::a100_80gb(),
                           LibraryProfile::phantom());
    const double ratio =
        phantom.run(ntt).timeNs / cheddar.run(ntt).timeNs;
    EXPECT_NEAR(ratio, 1.8, 0.2);
}

TEST(GpuModel, EvkOperandsAlwaysStream)
{
    const GpuModel gpu(GpuConfig::a100_80gb(), LibraryProfile::cheddar());
    KernelOp keyMult;
    keyMult.type = KernelType::EwPAccum;
    keyMult.n = 1 << 16;
    keyMult.limbs = 68;
    keyMult.fanIn = 4;
    keyMult.reads = {{OperandKind::Working, 4 * 68},
                     {OperandKind::Evk, 2 * 4 * 68}};
    keyMult.writes = {{OperandKind::Intermediate, 2 * 68}};
    const auto traffic = gpu.traffic(keyMult, true);
    // The evk (136MB+) must be in the DRAM reads even when fused.
    EXPECT_GE(traffic.dramReadBytes, 2 * 4 * 68 * limbBytes(1 << 16));
}

class FrameworkTest : public ::testing::Test
{
  protected:
    RunResult
    run(const OpSequence &seq, AnaheimConfig config)
    {
        const AnaheimFramework framework(config);
        return framework.execute(seq);
    }
};

TEST_F(FrameworkTest, ElementWiseDominatesBootWithoutPim)
{
    // Fig. 2b: element-wise ops are 45-48% of bootstrapping on A100
    // and 68-69% on RTX 4090 with hoisting.
    const auto boot = makeBootWorkload();
    AnaheimConfig a100 = AnaheimConfig::a100NearBank();
    a100.pimEnabled = false;
    const auto resultA100 = run(boot, a100);
    const double shareA100 = categoryShare(resultA100, "ElementWise");
    EXPECT_GT(shareA100, 0.35);
    EXPECT_LT(shareA100, 0.60);

    AnaheimConfig rtx = AnaheimConfig::rtx4090NearBank();
    rtx.pimEnabled = false;
    const auto resultRtx = run(boot, rtx);
    const double shareRtx = categoryShare(resultRtx, "ElementWise");
    EXPECT_GT(shareRtx, shareA100)
        << "RTX 4090's higher compute/BW ratio must raise the share";
}

TEST_F(FrameworkTest, PimSpeedsUpBootstrapping)
{
    const auto boot = makeBootWorkload();
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.pimEnabled = false;
    const auto baseline = run(boot, config);
    config.pimEnabled = true;
    const auto withPim = run(boot, config);

    const double speedup = baseline.totalNs / withPim.totalNs;
    // Fig. 8: 1.24-1.74x on A100 near-bank.
    EXPECT_GT(speedup, 1.1);
    EXPECT_LT(speedup, 2.5);
    // Energy must improve too (1.38-2.05x in the paper).
    EXPECT_GT(baseline.energyPj / withPim.energyPj, 1.1);
}

TEST_F(FrameworkTest, PimReducesGpuSideDramTraffic)
{
    // Fig. 4b: 6.15x lower GPU-side DRAM access with PIM.
    const auto boot = makeBootWorkload();
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.pimEnabled = false;
    const auto baseline = run(boot, config);
    config.pimEnabled = true;
    const auto withPim = run(boot, config);
    const double reduction = baseline.gpuDramBytes / withPim.gpuDramBytes;
    EXPECT_GT(reduction, 2.0);
    EXPECT_LT(reduction, 20.0);
    EXPECT_GT(withPim.pimInternalBytes, 0.0);
}

TEST_F(FrameworkTest, TimelineIsContiguousAndOrdered)
{
    const auto seq = buildHMult(TraceParams{});
    const auto result =
        run(seq, AnaheimConfig::a100NearBank());
    ASSERT_FALSE(result.timeline.empty());
    double cursor = 0.0;
    for (const auto &entry : result.timeline) {
        EXPECT_DOUBLE_EQ(entry.startNs, cursor)
            << "GPU and PIM kernels must not overlap (§V-C)";
        EXPECT_GE(entry.endNs, entry.startNs);
        cursor = entry.endNs;
    }
    EXPECT_DOUBLE_EQ(cursor, result.totalNs);
}

TEST_F(FrameworkTest, VariantSpeedupOrdering)
{
    // Fig. 8: near-bank A100 >= custom-HBM A100 speedups; RTX 4090
    // sees the smallest gains (8x vs 16x internal bandwidth).
    const auto boot = makeBootWorkload();
    auto speedupOf = [&](AnaheimConfig config) {
        config.pimEnabled = false;
        const double base = run(boot, config).totalNs;
        config.pimEnabled = true;
        return base / run(boot, config).totalNs;
    };
    const double nearBank = speedupOf(AnaheimConfig::a100NearBank());
    const double customHbm = speedupOf(AnaheimConfig::a100CustomHbm());
    EXPECT_GT(nearBank, 1.0);
    EXPECT_GT(customHbm, 1.0);
    EXPECT_GE(nearBank, customHbm * 0.95)
        << "custom-HBM should trail (or match) near-bank slightly";
}

TEST_F(FrameworkTest, AllWorkloadsExecuteOnAllConfigs)
{
    const auto workloads = makeAllWorkloads();
    ASSERT_EQ(workloads.size(), 6u);
    for (const auto &config :
         {AnaheimConfig::a100NearBank(), AnaheimConfig::a100CustomHbm(),
          AnaheimConfig::rtx4090NearBank()}) {
        for (const auto &[info, seq] : workloads) {
            const auto result = run(seq, config);
            EXPECT_GT(result.totalNs, 0.0) << info.name;
            EXPECT_GT(result.energyPj, 0.0) << info.name;
        }
    }
}

TEST_F(FrameworkTest, EdpImprovesWithPim)
{
    // Headline: 1.62-3.14x EDP improvement.
    for (const auto &[info, seq] : makeAllWorkloads()) {
        AnaheimConfig config = AnaheimConfig::a100NearBank();
        config.pimEnabled = false;
        const auto base = run(seq, config);
        config.pimEnabled = true;
        const auto pim = run(seq, config);
        EXPECT_GT(base.edp() / pim.edp(), 1.2) << info.name;
    }
}

TEST_F(FrameworkTest, ExtraFuseHelpsGpuOnlyRuns)
{
    TraceOptions noBasic;
    noBasic.basicFuse = false;
    const auto unfused = buildBootstrap(TraceParams{}, 3.5,
                                        TraceLtAlgorithm::Hoisting,
                                        noBasic);
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.pimEnabled = false;
    config.fusion.extraFuse = false;
    const auto without = run(unfused, config);
    config.fusion.extraFuse = true;
    const auto with = run(unfused, config);
    EXPECT_LT(with.totalNs, without.totalNs);
}

} // namespace
} // namespace anaheim

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"
#include "math/primes.h"
#include "poly/polynomial.h"

namespace anaheim {
namespace {

RnsBasis
makeBasis(size_t n, size_t count)
{
    return RnsBasis(generateNttPrimes(n, 30, count), n);
}

Polynomial
randomPoly(const RnsBasis &basis, Rng &rng, Domain domain = Domain::Eval)
{
    Polynomial p(basis, domain);
    for (size_t i = 0; i < basis.size(); ++i)
        p.limb(i) = sampleUniform(rng, basis.degree(), basis.prime(i));
    return p;
}

TEST(Polynomial, ZeroInitialized)
{
    const auto basis = makeBasis(32, 2);
    const Polynomial p(basis);
    for (size_t i = 0; i < p.limbCount(); ++i)
        for (uint64_t c : p.limb(i))
            EXPECT_EQ(c, 0u);
}

TEST(Polynomial, DomainRoundTrip)
{
    const auto basis = makeBasis(64, 3);
    Rng rng(31);
    auto p = randomPoly(basis, rng, Domain::Coeff);
    const auto original = p;
    p.toEval();
    EXPECT_EQ(p.domain(), Domain::Eval);
    p.toCoeff();
    EXPECT_EQ(p, original);
}

TEST(Polynomial, AddSubInverse)
{
    const auto basis = makeBasis(64, 2);
    Rng rng(32);
    const auto a = randomPoly(basis, rng);
    const auto b = randomPoly(basis, rng);
    auto sum = a + b;
    sum -= b;
    EXPECT_EQ(sum, a);
}

TEST(Polynomial, EvalDomainMultIsNegacyclicConvolution)
{
    const auto basis = makeBasis(64, 2);
    Rng rng(33);
    auto a = randomPoly(basis, rng, Domain::Coeff);
    auto b = randomPoly(basis, rng, Domain::Coeff);

    std::vector<CoeffVector> expect(basis.size());
    for (size_t i = 0; i < basis.size(); ++i)
        expect[i] = negacyclicMultiply(a.limb(i), b.limb(i),
                                       basis.prime(i));

    a.toEval();
    b.toEval();
    a.mulEq(b);
    a.toCoeff();
    for (size_t i = 0; i < basis.size(); ++i)
        EXPECT_EQ(a.limb(i), expect[i]) << "limb " << i;
}

TEST(Polynomial, MacMatchesMulThenAdd)
{
    const auto basis = makeBasis(32, 3);
    Rng rng(34);
    const auto a = randomPoly(basis, rng);
    const auto b = randomPoly(basis, rng);
    auto acc1 = randomPoly(basis, rng);
    auto acc2 = acc1;

    acc1.macEq(a, b);
    auto prod = a;
    prod.mulEq(b);
    acc2 += prod;
    EXPECT_EQ(acc1, acc2);
}

TEST(Polynomial, NegateIsAdditiveInverse)
{
    const auto basis = makeBasis(32, 2);
    Rng rng(35);
    const auto a = randomPoly(basis, rng);
    auto neg = a;
    neg.negate();
    auto sum = a + neg;
    EXPECT_EQ(sum, Polynomial(basis));
}

TEST(Polynomial, ScalarMultPerLimb)
{
    const auto basis = makeBasis(16, 2);
    Rng rng(36);
    auto a = randomPoly(basis, rng);
    const auto original = a;
    std::vector<uint64_t> scalars = {3, 5};
    a.mulScalarEq(scalars);
    for (size_t i = 0; i < basis.size(); ++i)
        for (size_t c = 0; c < basis.degree(); ++c)
            EXPECT_EQ(a.limb(i)[c],
                      mulMod(original.limb(i)[c], scalars[i],
                             basis.prime(i)));
}

class AutomorphismTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AutomorphismTest, EvalDomainMatchesCoeffDomain)
{
    const size_t n = 64;
    const auto basis = makeBasis(n, 2);
    const uint64_t k = GetParam();
    Rng rng(37);
    auto a = randomPoly(basis, rng, Domain::Coeff);

    // Path 1: permute coefficients, then NTT.
    auto viaCoeff = a.automorphism(k);
    viaCoeff.toEval();

    // Path 2: NTT, then permute slots.
    auto aEval = a;
    aEval.toEval();
    const auto viaEval = aEval.automorphism(k);

    EXPECT_EQ(viaCoeff, viaEval) << "k=" << k;
}

TEST_P(AutomorphismTest, ComposesMultiplicatively)
{
    const size_t n = 32;
    const auto basis = makeBasis(n, 1);
    const uint64_t k = GetParam() % (2 * n);
    if ((k & 1) == 0)
        GTEST_SKIP();
    Rng rng(38);
    const auto a = randomPoly(basis, rng, Domain::Coeff);
    const uint64_t k2 = 5;
    const auto once = a.automorphism(k).automorphism(k2);
    const auto combined = a.automorphism((k * k2) % (2 * n));
    EXPECT_EQ(once, combined);
}

INSTANTIATE_TEST_SUITE_P(GaloisElements, AutomorphismTest,
                         ::testing::Values<uint64_t>(1, 3, 5, 25, 127,
                                                     63));

TEST(Polynomial, AutomorphismIdentity)
{
    const auto basis = makeBasis(32, 2);
    Rng rng(39);
    const auto a = randomPoly(basis, rng);
    EXPECT_EQ(a.automorphism(1), a);
}

TEST(Polynomial, AutomorphismConjugationInvolution)
{
    // k = 2N-1 is CKKS conjugation; applying it twice is identity.
    const size_t n = 64;
    const auto basis = makeBasis(n, 2);
    Rng rng(40);
    const auto a = randomPoly(basis, rng);
    EXPECT_EQ(a.automorphism(2 * n - 1).automorphism(2 * n - 1), a);
}

TEST(Polynomial, FirstLimbsViewsPrefix)
{
    const auto basis = makeBasis(16, 4);
    Rng rng(41);
    const auto a = randomPoly(basis, rng);
    const auto prefix = a.firstLimbs(2);
    EXPECT_EQ(prefix.limbCount(), 2u);
    EXPECT_EQ(prefix.limb(0), a.limb(0));
    EXPECT_EQ(prefix.limb(1), a.limb(1));
}

TEST(Polynomial, FromSignedReducesCorrectly)
{
    const auto basis = makeBasis(8, 2);
    std::vector<int64_t> coeffs = {0, 1, -1, 5, -5, 100, -100, 7};
    const auto p = polynomialFromSigned(basis, coeffs);
    EXPECT_EQ(p.domain(), Domain::Coeff);
    for (size_t i = 0; i < basis.size(); ++i) {
        for (size_t c = 0; c < coeffs.size(); ++c)
            EXPECT_EQ(p.limb(i)[c], fromSigned(coeffs[c], basis.prime(i)));
    }
}

} // namespace
} // namespace anaheim

/**
 * @file
 * Rolling per-limb checksum tests: determinism, sensitivity to value /
 * position / limb-count changes, and the Status-typed verification
 * used at coherence write-back boundaries.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/modarith.h"
#include "math/primes.h"
#include "poly/checksum.h"
#include "poly/polynomial.h"

namespace anaheim {
namespace {

RnsBasis
makeBasis(size_t n, size_t count)
{
    return RnsBasis(generateNttPrimes(n, 30, count), n);
}

Polynomial
randomPoly(const RnsBasis &basis, Rng &rng)
{
    Polynomial p(basis, Domain::Eval);
    for (size_t i = 0; i < basis.size(); ++i)
        p.limb(i) = sampleUniform(rng, basis.degree(), basis.prime(i));
    return p;
}

TEST(LimbChecksum, DeterministicAndValueSensitive)
{
    Rng rng(101);
    std::vector<uint64_t> limb(512);
    for (auto &w : limb)
        w = rng.next();

    const uint64_t digest = limbChecksum(limb);
    EXPECT_EQ(digest, limbChecksum(limb));

    auto flipped = limb;
    flipped[200] ^= 1; // one LSB flip must change the digest
    EXPECT_NE(digest, limbChecksum(flipped));
}

TEST(LimbChecksum, PositionSensitive)
{
    std::vector<uint64_t> limb{1, 2, 3, 4};
    std::vector<uint64_t> swapped{1, 3, 2, 4};
    EXPECT_NE(limbChecksum(limb), limbChecksum(swapped));
}

TEST(LimbChecksum, WordWidthViewsAgree)
{
    // The 32-bit (PIM storage) view digests the same residues the
    // 64-bit view does, element for element.
    std::vector<uint64_t> wide{7, 1u << 20, 268369920};
    std::vector<uint32_t> narrow{7, 1u << 20, 268369920};
    EXPECT_EQ(limbChecksum(wide), limbChecksum(narrow));
}

TEST(PolyChecksum, SealVerifyRoundTrip)
{
    const auto basis = makeBasis(64, 3);
    Rng rng(102);
    const auto p = randomPoly(basis, rng);
    const ChecksumTag tag = polyChecksum(p);
    EXPECT_EQ(tag.perLimb.size(), p.limbCount());
    EXPECT_TRUE(verifyPolyChecksum(p, tag).ok());
    EXPECT_EQ(tag, polyChecksum(p));
}

TEST(PolyChecksum, CorruptResidueReportsDataCorruptionWithLimb)
{
    const auto basis = makeBasis(64, 3);
    Rng rng(103);
    auto p = randomPoly(basis, rng);
    const ChecksumTag tag = polyChecksum(p);

    p.limb(1)[17] ^= 0b100; // silent corruption in limb 1
    const Status status = verifyPolyChecksum(p, tag);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::DataCorruption);
    EXPECT_NE(status.message().find("limb 1"), std::string::npos)
        << status.message();
}

TEST(PolyChecksum, LimbCountMismatchIsCorruption)
{
    const auto basis = makeBasis(64, 3);
    Rng rng(104);
    const auto p = randomPoly(basis, rng);
    ChecksumTag tag = polyChecksum(p);
    tag.perLimb.pop_back();
    const Status status = verifyPolyChecksum(p, tag);
    EXPECT_EQ(status.code(), ErrorCode::DataCorruption);
    EXPECT_NE(status.message().find("limb count"), std::string::npos);
}

} // namespace
} // namespace anaheim

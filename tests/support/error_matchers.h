/**
 * @file
 * Test helpers for the recoverable error layer: run a statement,
 * capture the AnaheimError it throws as a Status, and assert on the
 * code and message. Replaces the EXPECT_DEATH pattern for conditions
 * that used to exit(1) and are now recoverable — these run in-process,
 * so they are fast and sanitizer-friendly.
 */

#ifndef ANAHEIM_TESTS_SUPPORT_ERROR_MATCHERS_H
#define ANAHEIM_TESTS_SUPPORT_ERROR_MATCHERS_H

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/status.h"

namespace anaheim::test_support {

/** Run `fn`; return the thrown AnaheimError as a Status, or Ok. */
template <typename Fn>
Status
captureStatus(Fn &&fn)
{
    try {
        std::forward<Fn>(fn)();
    } catch (const AnaheimError &error) {
        return error.status();
    }
    return Status::okStatus();
}

} // namespace anaheim::test_support

/** Expect `stmt` to throw AnaheimError with the given ErrorCode member
 *  name and a message containing `substr`. */
#define EXPECT_ANAHEIM_ERROR(stmt, code_, substr)                            \
    do {                                                                     \
        const ::anaheim::Status capturedStatus_ =                            \
            ::anaheim::test_support::captureStatus([&] { stmt; });           \
        EXPECT_EQ(capturedStatus_.code(), ::anaheim::ErrorCode::code_)       \
            << "status was: " << capturedStatus_.toString();                 \
        EXPECT_NE(capturedStatus_.message().find(substr),                    \
                  std::string::npos)                                         \
            << "status was: " << capturedStatus_.toString();                 \
    } while (0)

#endif // ANAHEIM_TESTS_SUPPORT_ERROR_MATCHERS_H

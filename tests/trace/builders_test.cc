#include <gtest/gtest.h>

#include "trace/builders.h"
#include "trace/counting.h"

namespace anaheim {
namespace {

TEST(TraceParams, PaperDefaultsMatchTableIV)
{
    const TraceParams params;
    EXPECT_EQ(params.n, size_t{1} << 16);
    EXPECT_EQ(params.level, 54u);
    EXPECT_EQ(params.alpha, 14u);
    EXPECT_EQ(params.digits(), 4u);
    EXPECT_EQ(params.extended(), 68u);
}

TEST(TraceParams, DnumSweepKeepsLimbBudget)
{
    for (size_t d : {2u, 3u, 4u, 6u}) {
        const auto params = TraceParams::forDnum(d);
        EXPECT_EQ(params.digits(), d) << "D=" << d;
        // Total limbs stay near the security budget of 68.
        EXPECT_NEAR(static_cast<double>(params.level + params.alpha), 68.0,
                    1.0)
            << "D=" << d;
    }
}

TEST(TraceSizes, PolynomialAndEvkMatchPaperFigures)
{
    // §III-A: "a polynomial can be as large as 17MB and an evk 136MB".
    const TraceParams params;
    const double polyBytes = params.level * limbBytes(params.n);
    EXPECT_NEAR(polyBytes / 1e6, 14.2, 1.0); // L=54 of the 64-limb max
    EXPECT_NEAR(evkBytes(params) / 1e6, 142.6, 3.0);
}

TEST(TraceBuilders, HAddIsPureElementWise)
{
    const auto seq = buildHAdd(TraceParams{});
    ASSERT_EQ(seq.ops.size(), 1u);
    EXPECT_EQ(kernelClass(seq.ops[0].type), KernelClass::ElementWise);
    EXPECT_TRUE(seq.ops[0].pimEligible);
    // Arithmetic intensity below 2 ops/byte (§IV-D).
    EXPECT_LT(seq.totalIntOps() / seq.totalBytes(), 2.0);
}

TEST(TraceBuilders, KeySwitchContainsAllThreePhases)
{
    const auto seq = buildKeySwitch(TraceParams{}, "KeyMult");
    EXPECT_GT(seq.countType(KernelType::Intt), 0u);
    EXPECT_GT(seq.countType(KernelType::Ntt), 0u);
    EXPECT_GT(seq.countType(KernelType::BConv), 0u);
    EXPECT_EQ(seq.countType(KernelType::EwPAccum), 1u);

    // The KeyMult PAccum must read a full evk (2*D polys over PQ).
    const TraceParams params;
    double evkRead = 0.0;
    for (const auto &op : seq.ops) {
        for (const auto &operand : op.reads) {
            if (operand.kind == OperandKind::Evk)
                evkRead += operand.limbs * limbBytes(op.n);
        }
    }
    EXPECT_NEAR(evkRead, evkBytes(params), 1.0);
}

TEST(TraceBuilders, HMultHasTensorAndRelin)
{
    const auto seq = buildHMult(TraceParams{});
    EXPECT_EQ(seq.countType(KernelType::EwTensor), 1u);
    EXPECT_GE(seq.countType(KernelType::EwAdd), 1u);
}

TEST(TraceBuilders, HRotAutomorphismBetweenKeyMultAndModDown)
{
    const auto seq = buildHRot(TraceParams{});
    int autIdx = -1, keyMultIdx = -1, modDownIdx = -1;
    for (size_t i = 0; i < seq.ops.size(); ++i) {
        if (seq.ops[i].type == KernelType::Automorphism)
            autIdx = static_cast<int>(i);
        if (seq.ops[i].type == KernelType::EwPAccum && keyMultIdx < 0)
            keyMultIdx = static_cast<int>(i);
        if (seq.ops[i].phase == std::string("ModDown") && modDownIdx < 0)
            modDownIdx = static_cast<int>(i);
    }
    ASSERT_GE(autIdx, 0);
    EXPECT_GT(autIdx, keyMultIdx);
    EXPECT_LT(autIdx, modDownIdx);
}

TEST(TraceBuilders, HoistingSharesOneModUp)
{
    const size_t k = 8;
    const auto hoisted = buildLinearTransform(
        TraceParams{}, k, TraceLtAlgorithm::Hoisting);
    const auto base =
        buildLinearTransform(TraceParams{}, k, TraceLtAlgorithm::Base);
    // Hoisting performs ~1/K of Base's ModSwitch work: compare (I)NTT
    // limb counts (the Fig. 1 table's 2.47x reduction driver).
    EXPECT_LT(countNttLimbOps(hoisted), countNttLimbOps(base) / 2.0);
}

TEST(TraceBuilders, HoistingMovesElementWiseToExtendedModulus)
{
    // Hoisting's MAC accumulation runs at L+alpha limbs; Base's at L.
    const auto hoisted = buildLinearTransform(
        TraceParams{}, 8, TraceLtAlgorithm::Hoisting);
    size_t maxMacLimbs = 0;
    for (const auto &op : hoisted.ops) {
        if (op.phase == std::string("MAC"))
            maxMacLimbs = std::max(maxMacLimbs, op.limbs);
    }
    EXPECT_EQ(maxMacLimbs, TraceParams{}.extended());
}

TEST(TraceCounting, MinKsUsesOneEvkHoistingUsesK)
{
    // Fig. 1 table: MinKS needs ~4x fewer evks (one per transform),
    // hoisting one per BSGS baby/giant rotation.
    const TraceParams params;
    const auto hoist = analyzeLinearTransforms(
        params, 3, 8, TraceLtAlgorithm::Hoisting);
    const auto minKs =
        analyzeLinearTransforms(params, 3, 8, TraceLtAlgorithm::MinKS);
    EXPECT_NEAR(hoist.evkBytes / minKs.evkBytes, 6.0, 2.5)
        << "paper reports ~4x fewer evks for MinKS";
    // Hoisting needs far fewer NTT ops; MinKS does not reduce them.
    EXPECT_LT(hoist.nttOps, minKs.nttOps / 2.0);
    // Hoisting's plaintexts are larger (extended modulus).
    EXPECT_GT(hoist.plaintextBytes, minKs.plaintextBytes);
    // MinKS requires a cache big enough to actually reuse the evk.
    EXPECT_GT(minKs.cacheBytes, evkBytes(params));
}

TEST(TraceBuilders, BootstrapLevelsEffMatchesPaper)
{
    // Paper: L 2 -> 54 -> 24 with L_eff = 11 at the fftIter mix 3/4.
    EXPECT_NEAR(bootstrapLevelsEff(TraceParams{}, 3.5), 11.0, 1.0);
    // Increasing fftIter costs levels (Fig. 3's trade-off).
    EXPECT_GT(bootstrapLevelsEff(TraceParams{}, 3.0),
              bootstrapLevelsEff(TraceParams{}, 5.0));
}

TEST(TraceBuilders, BootstrapElementWiseShareGrowsWithHoisting)
{
    const auto hoisted =
        buildBootstrap(TraceParams{}, 3.5, TraceLtAlgorithm::Hoisting);
    const auto minKs =
        buildBootstrap(TraceParams{}, 3.5, TraceLtAlgorithm::MinKS);

    auto elementWiseOps = [](const OpSequence &seq) {
        double ew = 0, total = 0;
        for (const auto &op : seq.ops) {
            const double bytes = op.readBytes() + op.writeBytes();
            total += bytes;
            if (kernelClass(op.type) == KernelClass::ElementWise)
                ew += bytes;
        }
        return ew / total;
    };
    // Hoisting raises the element-wise share (§IV-B).
    EXPECT_GT(elementWiseOps(hoisted), elementWiseOps(minKs));
}

TEST(TraceBuilders, AutFuseRemovesAutomorphismRoundTrips)
{
    TraceOptions with;
    TraceOptions without;
    without.autFuse = false;
    const auto fused = buildLinearTransform(
        TraceParams{}, 8, TraceLtAlgorithm::Hoisting, with);
    const auto plain = buildLinearTransform(
        TraceParams{}, 8, TraceLtAlgorithm::Hoisting, without);
    EXPECT_LT(fused.totalBytes(), plain.totalBytes());
    EXPECT_LT(fused.countType(KernelType::Automorphism),
              plain.countType(KernelType::Automorphism));
}

class DnumSweepTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(DnumSweepTest, EvkSizeGrowsWithDnum)
{
    const auto params = TraceParams::forDnum(GetParam());
    // evk = 2*D*(L+alpha) limbs: more digits, more key material.
    if (GetParam() > 2) {
        const auto smaller = TraceParams::forDnum(GetParam() - 1);
        EXPECT_GT(evkBytes(params), evkBytes(smaller) * 0.99);
    }
    const auto boot =
        buildBootstrap(params, 3.5, TraceLtAlgorithm::Hoisting);
    EXPECT_GT(boot.ops.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Dnums, DnumSweepTest,
                         ::testing::Values<size_t>(2, 3, 4, 6));

} // namespace
} // namespace anaheim

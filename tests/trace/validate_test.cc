#include <gtest/gtest.h>

#include "anaheim/workloads.h"
#include "support/error_matchers.h"
#include "trace/validate.h"

namespace anaheim {
namespace {

TEST(TraceValidate, AllBuildersProduceValidTraces)
{
    for (const auto &[info, seq] : makeAllWorkloads()) {
        const auto issues = validateTrace(seq);
        EXPECT_TRUE(issues.empty())
            << info.name << ": op " << (issues.empty() ? 0 : issues[0].opIndex)
            << " "
            << (issues.empty() ? "" : issues[0].description);
    }
    for (auto algorithm :
         {TraceLtAlgorithm::Base, TraceLtAlgorithm::Hoisting,
          TraceLtAlgorithm::MinKS}) {
        const auto seq =
            buildLinearTransform(TraceParams{}, 8, algorithm);
        EXPECT_TRUE(validateTrace(seq).empty());
    }
    EXPECT_TRUE(validateTrace(buildHMult(TraceParams{})).empty());
    EXPECT_TRUE(validateTrace(buildHRot(TraceParams{})).empty());
    EXPECT_TRUE(validateTrace(buildRescale(TraceParams{})).empty());
}

TEST(TraceValidate, DetectsZeroLimbOps)
{
    OpSequence seq = buildHAdd(TraceParams{});
    seq.ops[0].limbs = 0;
    const auto issues = validateTrace(seq);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].description.find("zero limbs"), std::string::npos);
}

TEST(TraceValidate, DetectsMislabeledPimEligibility)
{
    OpSequence seq = buildHMult(TraceParams{});
    for (auto &op : seq.ops) {
        if (op.type == KernelType::Ntt) {
            op.pimEligible = true;
            break;
        }
    }
    const auto issues = validateTrace(seq);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].description.find("PIM-eligible"),
              std::string::npos);
}

TEST(TraceValidate, DetectsDegreeMismatch)
{
    OpSequence seq = buildHAdd(TraceParams{});
    seq.ops[0].n = 1024;
    EXPECT_FALSE(validateTrace(seq).empty());
}

TEST(TraceValidate, CheckTraceThrowsRecoverableErrorOnBadTrace)
{
    OpSequence seq = buildHAdd(TraceParams{});
    seq.ops[0].writes.clear();
    EXPECT_ANAHEIM_ERROR(checkTrace(seq), InvalidArgument,
                         "invalid trace");
    const Status status = checkTraceStatus(seq);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("writes nothing"), std::string::npos);
    // A valid trace passes both forms without throwing.
    EXPECT_TRUE(checkTraceStatus(buildHAdd(TraceParams{})).ok());
    EXPECT_NO_THROW(checkTrace(buildHAdd(TraceParams{})));
}

} // namespace
} // namespace anaheim

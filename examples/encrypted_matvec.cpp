/**
 * Encrypted matrix-vector product — the homomorphic linear transform at
 * the heart of bootstrapping and private DNN inference (§III-B), run
 * with all four algorithm variants (Base / Hoisting / MinKS / BSGS) and
 * cross-checked against the plain product. Also prints the evk-count
 * vs computation trade-off the paper analyzes.
 *
 *   ./encrypted_matvec
 */

#include <chrono>
#include <cstdio>

#include "ckks/encryptor.h"
#include "common/status.h"
#include "lintrans/lintrans.h"

using namespace anaheim;
using Complex = std::complex<double>;

static int
run()
{
    const CkksContext context(CkksParams::testParams(1 << 11, 6, 2));
    const CkksEncoder encoder(context);
    KeyGenerator keygen(context, 7);
    CkksEncryptor encryptor(context);
    const CkksDecryptor decryptor(context, keygen.secretKey());
    const CkksEvaluator evaluator(context, encoder);
    const LinearTransformer transformer(context, encoder, evaluator);

    // A banded matrix (8 diagonals) on the slot vector, like one DFT
    // factor of CoeffToSlot.
    Rng rng(99);
    const auto matrix = DiagMatrix::random(
        encoder.slots(), {0, 1, 2, 3, 8, 16, 24, 32}, rng);

    std::vector<Complex> x(encoder.slots());
    for (auto &value : x)
        value = {2.0 * rng.uniformReal() - 1.0,
                 2.0 * rng.uniformReal() - 1.0};
    const auto expect = matrix.apply(x);

    const auto ct = encryptor.encrypt(
        encoder.encode(x, context.maxLevel()), keygen.secretKey());

    std::printf("encrypted mat-vec, %zu slots, %zu diagonals\n",
                encoder.slots(), matrix.diagonalCount());
    std::printf("%-14s %10s %10s %12s\n", "algorithm", "time", "evks",
                "max error");

    const struct {
        const char *name;
        LinTransAlgorithm algorithm;
    } algorithms[] = {
        {"Base", LinTransAlgorithm::Base},
        {"Hoisting", LinTransAlgorithm::Hoisting},
        {"MinKS", LinTransAlgorithm::MinKS},
        {"BSGS-hoist", LinTransAlgorithm::BsgsHoisting},
    };
    for (const auto &entry : algorithms) {
        const auto rotations = LinearTransformer::requiredRotations(
            matrix, entry.algorithm);
        auto keys = keygen.makeGaloisKeys(rotations);

        const auto start = std::chrono::steady_clock::now();
        const auto result = evaluator.rescale(transformer.apply(
            ct, matrix, keys, entry.algorithm));
        const auto stop = std::chrono::steady_clock::now();

        const auto out = encoder.decode(decryptor.decrypt(result));
        double worst = 0.0;
        for (size_t i = 0; i < out.size(); ++i)
            worst = std::max(worst, std::abs(out[i] - expect[i]));
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        std::printf("%-14s %8.1fms %10zu %12.3e\n", entry.name, ms,
                    rotations.size(), worst);
    }
    std::printf("note: MinKS trades one evk for extra rotations — the\n"
                "ASIC-vs-GPU algorithm choice discussed in the paper.\n");
    return 0;
}

int
main()
{
    return runGuardedMain("encrypted_matvec", run);
}

/**
 * PIM explorer: drive the Anaheim architecture model interactively —
 * run any workload on any of the three Table III configurations and
 * print the resulting schedule summary, DRAM traffic and energy, plus
 * a per-instruction microbenchmark for a chosen buffer size.
 *
 *   ./pim_explorer [workload] [config] [B]
 *     workload: boot | helr | sort | rnn | resnet20 | resnet18 (boot)
 *     config:   a100 | chbm | rtx4090                          (a100)
 *     B:        PIM data-buffer entries                        (default)
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "anaheim/framework.h"
#include "anaheim/workloads.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/report.h"

using namespace anaheim;

static int
run(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "boot";
    const std::string configName = argc > 2 ? argv[2] : "a100";
    const int bufferEntries = argc > 3 ? std::atoi(argv[3]) : 0;

    AnaheimConfig config =
        configName == "chbm"      ? AnaheimConfig::a100CustomHbm()
        : configName == "rtx4090" ? AnaheimConfig::rtx4090NearBank()
                                  : AnaheimConfig::a100NearBank();
    if (bufferEntries > 0)
        config.pim.bufferEntries = static_cast<size_t>(bufferEntries);

    OpSequence seq;
    if (workload == "helr")
        seq = makeHelrWorkload();
    else if (workload == "sort")
        seq = makeSortWorkload();
    else if (workload == "rnn")
        seq = makeRnnWorkload();
    else if (workload == "resnet20")
        seq = makeResNet20Workload();
    else if (workload == "resnet18")
        seq = makeResNet18AespaWorkload();
    else
        seq = makeBootWorkload();

    std::printf("workload %s on %s (PIM B=%zu, %s layout)\n",
                seq.name.c_str(), config.gpu.name.c_str(),
                config.pim.bufferEntries,
                config.pim.columnPartition ? "column-partitioned"
                                           : "contiguous");
    std::printf("trace: %zu kernels, %.1f G int-ops, %s logical bytes\n",
                seq.ops.size(), seq.totalIntOps() / 1e9,
                formatBytes(seq.totalBytes()).c_str());

    AnaheimConfig baseline = config;
    baseline.pimEnabled = false;
    const auto base = AnaheimFramework(baseline).execute(seq);
    const auto pim = AnaheimFramework(config).execute(seq);

    auto report = [](const char *label, const RunResult &result) {
        std::printf("\n%s: %s, %s, EDP %.3e Js\n", label,
                    formatSeconds(result.totalSeconds()).c_str(),
                    formatJoules(result.energyJoules()).c_str(),
                    result.edp());
        obs::printAttribution(result);
        std::printf("  GPU DRAM traffic %s\n",
                    formatBytes(result.gpuDramBytes).c_str());
        if (result.pimInternalBytes > 0) {
            std::printf("  PIM internal traffic %s\n",
                        formatBytes(result.pimInternalBytes).c_str());
        }
    };
    report("GPU baseline", base);
    report("Anaheim", pim);

    std::printf("\nAnaheim vs baseline: %.2fx speedup, %.2fx energy, "
                "%.2fx EDP\n",
                base.totalNs / pim.totalNs,
                base.energyJoules() / pim.energyJoules(),
                base.edp() / pim.edp());
    return 0;
}

int
main(int argc, char **argv)
{
    return runGuardedMain("pim_explorer", [&] { return run(argc, argv); });
}

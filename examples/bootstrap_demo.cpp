/**
 * Bootstrapping demo: exhaust a ciphertext's level budget with repeated
 * squarings, refresh it with full CKKS bootstrapping (ModRaise ->
 * CoeffToSlot -> EvalMod -> SlotToCoeff), and keep computing — the
 * defining capability of *fully* homomorphic encryption (§II-C).
 *
 *   ./bootstrap_demo
 */

#include <chrono>
#include <cstdio>

#include "boot/bootstrapper.h"
#include "ckks/encryptor.h"
#include "common/status.h"

using namespace anaheim;
using Complex = std::complex<double>;

static int
run()
{
    const CkksContext context(CkksParams::bootstrapParams(1 << 11));
    const CkksEncoder encoder(context);
    KeyGenerator keygen(context, 5);
    CkksEncryptor encryptor(context);
    const CkksDecryptor decryptor(context, keygen.secretKey());
    const CkksEvaluator evaluator(context, encoder);

    std::printf("bootstrap demo: N=%zu, L=%zu, alpha=%zu (D=%zu)\n",
                context.degree(), context.maxLevel(), context.alpha(),
                context.dnum());

    std::printf("preparing bootstrapper (DFT factors + keys)...\n");
    const auto setupStart = std::chrono::steady_clock::now();
    Bootstrapper boot(context, encoder, evaluator, keygen);
    const double setupS =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - setupStart)
            .count();
    std::printf("  setup %.1fs; bootstrap output level = %zu "
                "(CtS %zu + EvalMod %zu + StC %zu levels consumed)\n",
                setupS, boot.outputLevel(), boot.coeffToSlotDepth(),
                boot.evalModDepth(), boot.slotToCoeffDepth());

    // Message small relative to q0/Delta, per CKKS bootstrap practice.
    Rng rng(6);
    std::vector<Complex> msg(encoder.slots());
    for (auto &v : msg)
        v = {(2.0 * rng.uniformReal() - 1.0) / 64.0, 0.0};

    auto ct = encryptor.encrypt(encoder.encode(msg, 3),
                                keygen.secretKey());
    const auto relin = keygen.makeRelinKey();

    // Burn the level budget.
    auto expect = msg;
    while (ct.level > 1) {
        ct = evaluator.rescale(evaluator.square(ct, relin));
        for (auto &v : expect)
            v *= v;
        std::printf("  squared; level now %zu\n", ct.level);
    }

    std::printf("level exhausted — bootstrapping...\n");
    const auto start = std::chrono::steady_clock::now();
    ct = boot.bootstrap(ct);
    const double bootS =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("  bootstrap took %.1fs; level restored to %zu\n", bootS,
                ct.level);

    // Keep computing on the refreshed ciphertext.
    ct = evaluator.rescale(evaluator.square(ct, relin));
    for (auto &v : expect)
        v *= v;

    const auto out = encoder.decode(decryptor.decrypt(ct));
    double worst = 0.0;
    for (size_t i = 0; i < out.size(); ++i)
        worst = std::max(worst, std::abs(out[i] - expect[i]));
    std::printf("post-bootstrap square: max error %.3e at level %zu\n",
                worst, ct.level);
    return 0;
}

int
main()
{
    return runGuardedMain("bootstrap_demo", run);
}

/**
 * Quickstart: the CKKS basics end to end — encode a complex vector,
 * encrypt it, compute homomorphically (add, multiply, rotate), decrypt
 * and check the error.
 *
 *   ./quickstart
 */

#include <complex>
#include <cstdio>
#include <vector>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "common/status.h"

using namespace anaheim;
using Complex = std::complex<double>;

static int
run()
{
    // Small, fast parameters: N = 2^12 (2048 slots), 8 levels.
    const CkksContext context(CkksParams::testParams(1 << 12, 8, 2));
    const CkksEncoder encoder(context);
    KeyGenerator keygen(context, /*seed=*/2024);
    CkksEncryptor encryptor(context);
    const CkksDecryptor decryptor(context, keygen.secretKey());
    const CkksEvaluator evaluator(context, encoder);

    std::printf("CKKS quickstart: N=%zu, %zu slots, L=%zu levels\n",
                context.degree(), encoder.slots(), context.maxLevel());

    // Messages.
    std::vector<Complex> u(encoder.slots()), v(encoder.slots());
    for (size_t i = 0; i < u.size(); ++i) {
        u[i] = {0.5 * std::cos(0.01 * i), 0.0};
        v[i] = {0.25, 0.25};
    }

    // Encrypt.
    auto ctU = encryptor.encrypt(encoder.encode(u, context.maxLevel()),
                                 keygen.secretKey());
    auto ctV = encryptor.encrypt(encoder.encode(v, context.maxLevel()),
                                 keygen.secretKey());

    // HADD: u + v.
    const auto sum = evaluator.add(ctU, ctV);

    // HMULT: u * v (tensor + relinearize + rescale).
    const auto relin = keygen.makeRelinKey();
    const auto prod =
        evaluator.rescale(evaluator.multiply(ctU, ctV, relin));

    // HROT: rotate u left by 3 slots.
    auto galois = keygen.makeGaloisKeys({3});
    const auto rotated = evaluator.rotate(ctU, 3, galois);

    // Decrypt and verify.
    auto check = [&](const char *label, const Ciphertext &ct,
                     auto expectAt) {
        const auto out = encoder.decode(decryptor.decrypt(ct));
        double worst = 0.0;
        for (size_t i = 0; i < out.size(); ++i)
            worst = std::max(worst, std::abs(out[i] - expectAt(i)));
        std::printf("  %-18s max error %.3e  (level %zu)\n", label, worst,
                    ct.level);
    };
    check("u + v", sum, [&](size_t i) { return u[i] + v[i]; });
    check("u * v", prod, [&](size_t i) { return u[i] * v[i]; });
    check("u <<< 3", rotated,
          [&](size_t i) { return u[(i + 3) % u.size()]; });

    std::printf("done.\n");
    return 0;
}

int
main()
{
    return runGuardedMain("quickstart", run);
}

/**
 * Private logistic-regression inference (the HELR workload's serving
 * side): the client encrypts feature vectors; the server computes
 * sigmoid(w . x + b) under encryption — a dot product via rotations
 * plus an encrypted sigmoid through arbitrary polynomial evaluation
 * (§V-C's "DNN support" routines) — and never sees the data.
 *
 *   ./private_inference
 */

#include <cmath>
#include <cstdio>

#include "boot/polyeval.h"
#include "ckks/encryptor.h"
#include "common/status.h"

using namespace anaheim;
using Complex = std::complex<double>;

static int
run()
{
    const CkksContext context(CkksParams::testParams(1 << 11, 12, 3));
    const CkksEncoder encoder(context);
    KeyGenerator keygen(context, 123);
    CkksEncryptor encryptor(context);
    const CkksDecryptor decryptor(context, keygen.secretKey());
    const CkksEvaluator evaluator(context, encoder);
    const EvalKey relin = keygen.makeRelinKey();
    const PolynomialEvaluator polyEval(evaluator, encoder, relin);

    // A batch of samples packed one-per-slot-group: 16 features.
    const size_t features = 16;
    const size_t batch = encoder.slots() / features;
    Rng rng(9);
    std::vector<double> weights(features), x(encoder.slots());
    for (auto &w : weights)
        w = 0.8 * (2.0 * rng.uniformReal() - 1.0) / features;
    for (auto &v : x)
        v = 2.0 * rng.uniformReal() - 1.0;

    std::printf("private inference: %zu samples x %zu features\n", batch,
                features);

    // Client: encrypt the feature matrix.
    const auto ct = encryptor.encrypt(
        encoder.encodeReal(x, context.maxLevel()), keygen.secretKey());

    // Server: logits = w . x via PMULT + rotate-and-sum tree.
    std::vector<double> weightPlain(encoder.slots());
    for (size_t i = 0; i < encoder.slots(); ++i)
        weightPlain[i] = weights[i % features];
    auto logits = evaluator.rescale(evaluator.mulPlain(
        ct, encoder.encodeReal(weightPlain, context.maxLevel())));

    std::vector<int> shifts;
    for (size_t step = features / 2; step >= 1; step /= 2)
        shifts.push_back(static_cast<int>(step));
    auto keys = keygen.makeGaloisKeys(shifts);
    for (int step : shifts)
        logits = evaluator.add(logits, evaluator.rotate(logits, step, keys));

    // Server: sigmoid via degree-15 polynomial evaluation.
    const auto scores = polyEval.evaluateFunction(
        logits, [](double t) { return 1.0 / (1.0 + std::exp(-4.0 * t)); },
        15);

    // Client: decrypt and compare against the plain pipeline.
    const auto out = encoder.decode(decryptor.decrypt(scores));
    double worst = 0.0;
    for (size_t s = 0; s < std::min<size_t>(batch, 512); ++s) {
        double logit = 0.0;
        for (size_t f = 0; f < features; ++f)
            logit += weights[f] * x[s * features + f];
        const double expect = 1.0 / (1.0 + std::exp(-4.0 * logit));
        worst = std::max(worst,
                         std::abs(out[s * features].real() - expect));
    }
    std::printf("sigmoid(w.x) under encryption: max error %.3e over %zu "
                "samples\n",
                worst, std::min<size_t>(batch, 512));
    std::printf("done — the server never saw a feature or a score.\n");
    return 0;
}

int
main()
{
    return runGuardedMain("private_inference", run);
}

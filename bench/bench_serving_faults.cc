/**
 * @file
 * Serving-under-faults chaos benchmark (DESIGN.md §16): the full SLO
 * stack — deadline classes, per-tenant token-bucket rate limiting,
 * priority preemption, and mid-serve degradation re-pricing — swept
 * across fault scenarios x offered load against one simulated GPU+PIM
 * device.
 *
 * Scenarios: a healthy device, a transient-fault device (BER 1e-6,
 * heavy enough that the ECC/checksum/checkpoint recovery ladder is
 * visibly exercised), and a degraded device (BER 1e-7 plus one
 * permanently dead bank that health monitoring quarantines
 * mid-serve). Each row reports availability
 * (completed/offered), goodput (deadline-met completions per second),
 * tail latency, and the three-way rejection split (queue-full vs
 * rate-limited vs deadline-shed — the causes partition `rejected`
 * exactly, which the validator re-checks).
 *
 * Two headline gates (scripts/validate_serving_faults.py):
 *   - goodput_floor_ratio: degraded-device goodput at moderate load
 *     must stay within 20% of the healthy baseline (>= 0.8);
 *   - preempt_identical: a preempted run's RunResult (energy, traffic,
 *     fault counters, per-step durations) must match the unpreempted
 *     schedule — preemption pays with scheduler time, never with any
 *     tenant's computation.
 *
 * Flags:
 *   --streams=N      concurrent client streams (default 8)
 *   --requests=N     requests per stream (default 6)
 *   --seed=S         arrival-process seed
 *   --smoke          two load points for ctest
 *   --json <path>    machine-readable sweep
 *   --trace/--metrics <path>  Perfetto / metrics export (per-stream
 *                    tracks plus Shed/Preempt/Alert event lanes; the
 *                    metrics JSON carries a per-run timeseries section)
 *   --prom <path>    Prometheus text exposition of the same metrics
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/status.h"
#include "serve/scheduler.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

struct Options {
    size_t streams = 8;
    size_t requests = 6;
    uint64_t seed = 0x5eedca11u;
    bool smoke = false;
    std::vector<double> multipliers{0.25, 0.5, 1.0, 2.0};
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opts.smoke = true;
            opts.multipliers = {0.25, 2.0};
        } else if (arg.rfind("--streams=", 0) == 0) {
            opts.streams = std::strtoull(arg.c_str() + 10, nullptr, 0);
        } else if (arg.rfind("--requests=", 0) == 0) {
            opts.requests = std::strtoull(arg.c_str() + 11, nullptr, 0);
        } else if (arg.rfind("--seed=", 0) == 0) {
            opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
        } else if ((arg == "--json" || arg == "--trace" ||
                    arg == "--metrics" || arg == "--prom") &&
                   i + 1 < argc) {
            ++i; // handled by bench::JsonScope
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            std::exit(2);
        }
    }
    return opts;
}

/** GPU-heavy tenant: chained HMULTs (NTT/BConv dominated). */
OpSequence
buildGpuHeavy()
{
    OpSequence seq = buildHMult(TraceParams{});
    seq.name = "hmult_chain";
    return seq;
}

/** PIM-heavy tenant: element-wise HADD/PMULT pairs, all offloaded. */
OpSequence
buildPimHeavy(size_t pairs)
{
    const TraceParams params;
    OpSequence seq = buildHAdd(params);
    const OpSequence add = seq;
    const OpSequence mult = buildPMult(params);
    seq.append(mult);
    for (size_t r = 1; r < pairs; ++r) {
        seq.append(add);
        seq.append(mult);
    }
    seq.name = "ew_chain";
    return seq;
}

/** One fault scenario of the sweep. */
struct Scenario {
    const char *name;
    double ber;
    bool permanentBank;
};

/** Every scenario pays for the same recovery ladder (ECC + checksums
 *  + checkpoints + health monitoring); only the injected faults vary,
 *  so goodput deltas measure fault recovery, not policy overhead. */
AnaheimConfig
configFor(const Scenario &scenario)
{
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    ResilienceConfig &rc = config.resilience;
    rc.ber = scenario.ber;
    rc.checksumEnabled = true;
    rc.checkpoint.enabled = true;
    rc.checkpoint.intervalSegments = 4;
    rc.checkpoint.maxRollbacks = 32;
    rc.health.enabled = true;
    rc.health.permanentThreshold = 2;
    if (scenario.permanentBank)
        rc.permanentBanks.push_back({2, 17});
    return config;
}

/** Per-step durations + schedule-independent totals must match between
 *  a preempting and a non-preempting schedule (timestamps may differ:
 *  the runs embed at different offsets). */
bool
resultsIdentical(const serve::ServeResult &a, const serve::ServeResult &b)
{
    if (a.streams.size() != b.streams.size())
        return false;
    for (size_t s = 0; s < a.streams.size(); ++s) {
        const auto &ra = a.streams[s].requests;
        const auto &rb = b.streams[s].requests;
        if (ra.size() != rb.size())
            return false;
        for (size_t k = 0; k < ra.size(); ++k) {
            const RunResult &x = ra[k].result;
            const RunResult &y = rb[k].result;
            if (x.energyPj != y.energyPj ||
                x.gpuDramBytes != y.gpuDramBytes ||
                x.pimInternalBytes != y.pimInternalBytes ||
                x.resilience.faultyWords != y.resilience.faultyWords ||
                x.resilience.pimRetries != y.resilience.pimRetries ||
                x.resilience.rollbacks != y.resilience.rollbacks ||
                x.resilience.unrecovered != y.resilience.unrecovered ||
                x.timeline.size() != y.timeline.size())
                return false;
            for (size_t e = 0; e < x.timeline.size(); ++e) {
                const double da =
                    x.timeline[e].endNs - x.timeline[e].startNs;
                const double db =
                    y.timeline[e].endNs - y.timeline[e].startNs;
                if (x.timeline[e].phase != y.timeline[e].phase ||
                    x.timeline[e].device != y.timeline[e].device ||
                    std::abs(da - db) > 1e-6)
                    return false;
            }
        }
    }
    return true;
}

} // namespace

static int
run(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    bench::JsonScope json(
        opts.smoke ? "serving_faults_smoke" : "serving_faults", argc,
        argv);
    AnaheimConfig healthy = AnaheimConfig::a100NearBank();
    bench::reportConfig(json.report(), healthy);
    json.report().metric("smoke", opts.smoke ? "yes" : "no");
    json.report().metric("streams", static_cast<double>(opts.streams));
    json.report().metric("requests_per_stream",
                         static_cast<double>(opts.requests));
    json.report().metric("arrival_seed",
                         static_cast<double>(opts.seed));

    // Trace population and serial capacity, calibrated on the
    // healthy-scenario framework — recovery-ladder overhead included —
    // so load multipliers and deadline classes are sized against what
    // a request actually costs under the serving policy.
    const AnaheimFramework calib(configFor({"healthy", 0.0, false}));
    const OpSequence gpuHeavy = buildGpuHeavy();
    const double gpuHeavyNs = calib.execute(gpuHeavy).totalNs;
    const double pairNs = calib.execute(buildPimHeavy(1)).totalNs;
    const size_t pairs = std::max<size_t>(
        1, static_cast<size_t>(gpuHeavyNs / pairNs + 0.5));
    const OpSequence pimHeavy = buildPimHeavy(pairs);
    const double pimHeavyNs = calib.execute(pimHeavy).totalNs;
    const std::vector<OpSequence> traces = {gpuHeavy, pimHeavy};
    const double meanServiceNs = (gpuHeavyNs + pimHeavyNs) / 2.0;
    const double serialCapacityRps = 1e9 / meanServiceNs;
    json.report().metric("serial_capacity_rps", serialCapacityRps);

    // The SLO policy under test: two deadline classes spanning a few
    // service times, a per-tenant rate limit at 1.5x the fair share,
    // a short queue, and priority preemption.
    const auto serveFor = [&](double offeredRps) {
        ServeConfig serve;
        serve.streams = opts.streams;
        serve.requestsPerStream = opts.requests;
        serve.offeredRps = offeredRps;
        serve.arrivalSeed = opts.seed;
        serve.priorityClasses = 2;
        serve.maxQueuedPerStream = 2;
        serve.deadlineClassNs = {3.0 * meanServiceNs,
                                 6.0 * meanServiceNs};
        serve.rateLimitRps =
            1.5 * serialCapacityRps / static_cast<double>(opts.streams);
        // Burst deeper than the queue: an over-rate tenant hits the
        // queue-full wall before its bucket empties, so both rejection
        // causes show up in the sweep.
        serve.rateLimitBurst = 3.0;
        serve.preemption = true;
        // Telemetry tick ~= one mean service time, with a tight SLO and
        // a short fast/slow pair: sized so the degraded scenario's
        // deadline misses burn the error budget visibly within a smoke
        // run, firing the Alert lane (gated by validate_serving_faults).
        serve.telemetry.tickNs = meanServiceNs;
        serve.telemetry.sloTarget = 0.9;
        serve.telemetry.fastWindowTicks = 2;
        serve.telemetry.slowWindowTicks = 6;
        serve.telemetry.burnThreshold = 1.0;
        return serve;
    };

    const std::vector<Scenario> scenarios = {
        {"healthy", 0.0, false},
        {"transient", 1e-6, false},
        {"degraded", 1e-7, true},
    };
    const uint64_t totalRequests =
        static_cast<uint64_t>(opts.streams) * opts.requests;

    bench::header("Serving under faults: SLO stack (deadlines + rate "
                  "limit + preemption) x fault scenarios x load");
    std::printf("  service: hmult %.3f ms, ew %.3f ms; serial capacity "
                "%.0f req/s; deadlines {3x, 6x} mean service\n\n",
                gpuHeavyNs * 1e-6, pimHeavyNs * 1e-6,
                serialCapacityRps);
    std::printf("%-10s %-8s %9s %8s %9s %9s %6s %6s %6s %8s %8s\n",
                "scenario", "load", "goodput", "avail", "p99 ms",
                "dl-met", "q-full", "r-lim", "shed", "preempt",
                "reprice");

    // goodput keyed by load multiplier for the healthy baseline.
    std::map<double, double> healthyGoodput;
    double floorRatio = std::numeric_limits<double>::infinity();
    uint64_t sweepQueueFull = 0;
    uint64_t sweepRateLimited = 0;
    uint64_t sweepShed = 0;
    uint64_t sweepAlertsFired = 0;
    uint64_t sweepAlertTicks = 0;
    bool partitionOk = true;

    for (const Scenario &scenario : scenarios) {
        const AnaheimFramework fw(configFor(scenario));
        for (const double mult : opts.multipliers) {
            const double offeredRps = mult * serialCapacityRps;
            const auto result =
                serve::ServeScheduler(fw, serveFor(offeredRps))
                    .run(traces);
            const serve::ServeStats &st = result.stats;

            const double availability =
                static_cast<double>(st.completed) /
                static_cast<double>(totalRequests);
            const double goodput = st.goodputRps();
            if (scenario.ber == 0.0 && !scenario.permanentBank)
                healthyGoodput[mult] = goodput;
            // The headline resilience gate: degraded-device goodput at
            // the moderate (lowest) load vs the healthy baseline.
            if (scenario.permanentBank && mult == opts.multipliers[0] &&
                healthyGoodput[mult] > 0.0)
                floorRatio = std::min(floorRatio,
                                      goodput / healthyGoodput[mult]);
            partitionOk = partitionOk &&
                          st.rejected == st.rejectedQueueFull +
                                             st.rejectedRateLimited +
                                             st.shedDeadline;
            sweepQueueFull += st.rejectedQueueFull;
            sweepRateLimited += st.rejectedRateLimited;
            sweepShed += st.shedDeadline;
            sweepAlertsFired += st.alertsFired;
            sweepAlertTicks += st.alertTicksFiring;

            uint64_t tenantRetries = 0;
            uint64_t tenantFallbacks = 0;
            for (const auto &stream : result.streams) {
                tenantRetries += stream.pimRetries + stream.rollbacks;
                tenantFallbacks += stream.gpuFallbacks;
            }

            std::printf("%-10s %6.2fx %7.0f/s %7.2f%% %9.3f %9llu "
                        "%6llu %6llu %6llu %8llu %8llu\n",
                        scenario.name, mult, goodput,
                        100.0 * availability,
                        st.percentileNs(99.0) * 1e-6,
                        static_cast<unsigned long long>(st.deadlineMet),
                        static_cast<unsigned long long>(
                            st.rejectedQueueFull),
                        static_cast<unsigned long long>(
                            st.rejectedRateLimited),
                        static_cast<unsigned long long>(st.shedDeadline),
                        static_cast<unsigned long long>(st.preemptions),
                        static_cast<unsigned long long>(
                            st.repriceEvents));

            bench::JsonReport &report = json.report();
            report.beginRow();
            report.rowMetric("scenario", scenario.name);
            report.rowMetric("ber", scenario.ber);
            report.rowMetric("permanent_banks",
                             scenario.permanentBank ? 1.0 : 0.0);
            report.rowMetric("load_multiplier", mult);
            report.rowMetric("offered_rps", offeredRps);
            report.rowMetric("availability", availability);
            report.rowMetric("goodput_rps", goodput);
            report.rowMetric("throughput_rps", st.throughputRps());
            report.rowMetric("p50_ms", st.percentileNs(50.0) * 1e-6);
            report.rowMetric("p99_ms", st.percentileNs(99.0) * 1e-6);
            report.rowMetric("deadline_met",
                             static_cast<double>(st.deadlineMet));
            report.rowMetric("admitted",
                             static_cast<double>(st.admitted));
            report.rowMetric("completed",
                             static_cast<double>(st.completed));
            report.rowMetric("rejected",
                             static_cast<double>(st.rejected));
            report.rowMetric("rejected_queue_full",
                             static_cast<double>(st.rejectedQueueFull));
            report.rowMetric(
                "rejected_rate_limited",
                static_cast<double>(st.rejectedRateLimited));
            report.rowMetric("shed_deadline",
                             static_cast<double>(st.shedDeadline));
            report.rowMetric("preemptions",
                             static_cast<double>(st.preemptions));
            report.rowMetric("preemption_overhead_ns",
                             st.preemptionOverheadNs);
            report.rowMetric("reprice_events",
                             static_cast<double>(st.repriceEvents));
            report.rowMetric("alerts_fired",
                             static_cast<double>(st.alertsFired));
            report.rowMetric("alert_ticks_firing",
                             static_cast<double>(st.alertTicksFiring));
            report.rowMetric("tenant_retries",
                             static_cast<double>(tenantRetries));
            report.rowMetric("tenant_gpu_fallbacks",
                             static_cast<double>(tenantFallbacks));
        }
    }

    // Preemption-identity experiment: same faulty device, same
    // arrivals, preemption on vs off (batching off so transition
    // charges can't shift between requests; admission policies off so
    // both schedules execute the identical request set). The schedules
    // differ — the computations must not.
    ServeConfig identOn = serveFor(0.5 * serialCapacityRps);
    identOn.batching = false;
    identOn.deadlineClassNs.clear();
    identOn.rateLimitRps = 0.0;
    identOn.maxQueuedPerStream = 64;
    ServeConfig identOff = identOn;
    identOff.preemption = false;
    const AnaheimFramework faultyFw(configFor(scenarios[1]));
    const auto preempted =
        serve::ServeScheduler(faultyFw, identOn).run(traces);
    const auto unpreempted =
        serve::ServeScheduler(faultyFw, identOff).run(traces);
    const bool identical = resultsIdentical(preempted, unpreempted);
    json.report().metric(
        "preempt_identical",
        identical && unpreempted.stats.preemptions == 0 ? 1.0 : 0.0);
    json.report().metric(
        "preemptions_observed",
        static_cast<double>(preempted.stats.preemptions));
    json.report().metric("goodput_floor_ratio",
                         std::isfinite(floorRatio) ? floorRatio : 0.0);
    json.report().metric("causes_partition_ok", partitionOk ? 1.0 : 0.0);
    json.report().metric("sweep_rejected_queue_full",
                         static_cast<double>(sweepQueueFull));
    json.report().metric("sweep_rejected_rate_limited",
                         static_cast<double>(sweepRateLimited));
    json.report().metric("sweep_shed_deadline",
                         static_cast<double>(sweepShed));
    json.report().metric("sweep_alerts_fired",
                         static_cast<double>(sweepAlertsFired));
    json.report().metric("sweep_alert_ticks_firing",
                         static_cast<double>(sweepAlertTicks));

    std::printf("\n  preemption identity: %s (%llu preemptions); "
                "degraded goodput floor %.3f of healthy; "
                "%llu SLO burn alerts over the sweep\n",
                identical ? "BIT-IDENTICAL" : "DIVERGED",
                static_cast<unsigned long long>(
                    preempted.stats.preemptions),
                std::isfinite(floorRatio) ? floorRatio : 0.0,
                static_cast<unsigned long long>(sweepAlertsFired));
    bench::note("goodput = deadline-met completions/s; availability = "
                "completed/offered. rejected splits exactly into "
                "queue-full + rate-limited + deadline-shed. The "
                "degraded scenario quarantines one dead bank mid-serve "
                "and re-prices queued work on the degraded geometry");
    return 0;
}

int
main(int argc, char **argv)
{
    return runGuardedMain("bench_serving_faults",
                          [&] { return run(argc, argv); });
}

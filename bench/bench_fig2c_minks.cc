/**
 * Fig. 2c: T_boot,eff breakdown for D=4 under MinKS / Hoisting / Base
 * on A100 80GB — showing why GPUs choose hoisting (§III-C) and how
 * hoisting inflates the element-wise share (§IV-B).
 */

#include <cstdio>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/status.h"
#include "trace/builders.h"

using namespace anaheim;

static int
run(int argc, char **argv)
{
    bench::JsonScope json("fig2c_minks", argc, argv);
    bench::header("Fig. 2c — T_boot,eff for MinKS / Hoisting / Base "
                  "(D=4, A100 80GB, no PIM)");

    const TraceParams params;
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.pimEnabled = false;
    const AnaheimFramework framework(config);

    const struct {
        const char *name;
        TraceLtAlgorithm algorithm;
    } rows[] = {
        {"MinKS", TraceLtAlgorithm::MinKS},
        {"Hoist", TraceLtAlgorithm::Hoisting},
        {"Base", TraceLtAlgorithm::Base},
    };

    std::printf("%-8s %12s %10s %10s %10s | %12s %8s\n", "Algo", "EW ms",
                "NTT ms", "BConv ms", "Aut ms", "T_boot,eff", "EW %");
    for (const auto &row : rows) {
        const OpSequence boot =
            buildBootstrap(params, 3.5, row.algorithm);
        const auto result = framework.execute(boot);
        auto ms = [&](const char *cat) {
            const auto it = result.timeNsByCategory.find(cat);
            return it == result.timeNsByCategory.end() ? 0.0
                                                       : it->second * 1e-6;
        };
        const double leff = bootstrapLevelsEff(params, 3.5);
        std::printf("%-8s %10.2f %10.2f %10.2f %10.2f | %10.2fms %7.1f%%\n",
                    row.name, ms("ElementWise"), ms("(I)NTT"),
                    ms("BConv"), ms("Automorphism"),
                    result.totalNs * 1e-6 / leff,
                    100.0 * ms("ElementWise") / (result.totalNs * 1e-6));
    }
    std::printf("\n");
    bench::note("paper: MinKS hardly speeds up GPUs (evks stream from "
                "DRAM regardless); hoisting wins while raising the "
                "element-wise share from ~28%% to 45-48%%");
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_fig2c_minks",
                          [&] { return run(argc, argv); });
}

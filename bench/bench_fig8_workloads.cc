/**
 * Fig. 8: execution-time, energy-efficiency and EDP improvements of
 * Anaheim over the GPU baseline for the six workloads, on all three
 * PIM configurations of Table III.
 */

#include <cstdio>

#include "anaheim/framework.h"
#include "anaheim/workloads.h"
#include "bench_util.h"
#include "common/status.h"
#include "obs/report.h"

using namespace anaheim;

static int
run(int argc, char **argv)
{
    bench::JsonScope json("fig8_workloads", argc, argv);
    bench::header("Fig. 8 — workload speedup / energy / EDP gains from "
                  "Anaheim");

    const struct {
        const char *name;
        AnaheimConfig config;
    } configs[] = {
        {"A100 near-bank", AnaheimConfig::a100NearBank()},
        {"A100 custom-HBM", AnaheimConfig::a100CustomHbm()},
        {"RTX4090 near-bank", AnaheimConfig::rtx4090NearBank()},
    };
    const auto workloads = makeAllWorkloads();
    bench::reportConfig(json.report(), configs[0].config);

    bool attributed = false;
    for (const auto &cfg : configs) {
        std::printf("\n-- %s --\n", cfg.name);
        std::printf("%-16s %10s %10s | %8s %8s %8s\n", "Workload",
                    "base ms", "PIM ms", "speedup", "energy", "EDP");
        double minSpeed = 1e9, maxSpeed = 0, minEdp = 1e9, maxEdp = 0;
        for (const auto &[info, seq] : workloads) {
            const bool oom =
                cfg.config.dram.capacityBytes < 30e9 &&
                (std::string(info.name) == "ResNet20" ||
                 std::string(info.name) == "ResNet18-AESPA");
            if (oom) {
                // §VII-B / Table V: both CNNs exceed the 4090's 24GB.
                std::printf("%-16s %10s %10s | %8s %8s %8s\n", info.name,
                            "-", "-", "OoM", "OoM", "OoM");
                continue;
            }
            AnaheimConfig base = cfg.config;
            base.pimEnabled = false;
            const auto baseline = AnaheimFramework(base).execute(seq);
            const auto pim = AnaheimFramework(cfg.config).execute(seq);
            const double speedup = baseline.totalNs / pim.totalNs;
            const double energy =
                baseline.energyJoules() / pim.energyJoules();
            const double edp = baseline.edp() / pim.edp();
            std::printf("%-16s %10.2f %10.2f | %7.2fx %7.2fx %7.2fx\n",
                        info.name, baseline.totalNs * 1e-6,
                        pim.totalNs * 1e-6, speedup, energy, edp);
            if (!attributed) {
                // Where the first workload's time goes on the first
                // configuration (kernel class x GPU/PIM x bound).
                obs::printAttribution(pim);
                attributed = true;
            }
            minSpeed = std::min(minSpeed, speedup);
            maxSpeed = std::max(maxSpeed, speedup);
            minEdp = std::min(minEdp, edp);
            maxEdp = std::max(maxEdp, edp);
        }
        std::printf("   speedup range %.2f-%.2fx, EDP range %.2f-%.2fx\n",
                    minSpeed, maxSpeed, minEdp, maxEdp);
    }
    std::printf("\n");
    bench::note("paper: speedups 1.24-1.74x (A100 NB), 1.17-1.55x (A100 "
                "cHBM), 1.06-1.49x (4090 NB); EDP 1.62-3.14x; HELR gains "
                "least (ModSwitch-dominated, 196-slot bootstrap)");
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_fig8_workloads",
                          [&] { return run(argc, argv); });
}

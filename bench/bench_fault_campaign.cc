/**
 * @file
 * Monte Carlo fault-injection campaign over the detect-and-recover
 * stack: raw fault rate x scrub interval x checkpoint interval.
 *
 * Each campaign cell runs a long HMULT chain (the worst case for
 * all-or-nothing recovery) through the full framework several times
 * with different fault seeds, with all three fault sites live (storage
 * BER, MMAC lane flips, retention decay) and ciphertext checksums on.
 * Reported per cell: mean recovery activity (scrubs, checkpoints,
 * rollbacks, replayed segments), the unrecovered-corruption rate
 * across trials, and the time/energy overhead relative to the
 * fault-free run. The interesting trade-off is visible directly:
 * tighter scrub/checkpoint intervals buy a lower unrecovered rate at a
 * higher standing overhead.
 *
 * Flags:
 *   --ber=X          sweep only this raw fault rate
 *   --trials=N       Monte Carlo trials per cell (default 5)
 *   --repeats=N      HMULTs chained into the long trace (default 8)
 *   --fault-seed=S   base fault seed (trial t uses S + t * 1000003)
 *   --smoke          tiny grid / two trials for ctest
 *   --json <path>    machine-readable resilience curve
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/status.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

struct Options {
    std::vector<double> bers{1e-6, 1e-5, 1e-4};
    size_t trials = 5;
    size_t repeats = 8;
    uint64_t seed = 0x0ddfa117u;
    bool smoke = false;
    std::string jsonPath;
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opts.smoke = true;
            opts.bers = {1e-5};
            opts.trials = 2;
            opts.repeats = 4;
        } else if (arg.rfind("--ber=", 0) == 0) {
            opts.bers = {std::strtod(arg.c_str() + 6, nullptr)};
        } else if (arg.rfind("--trials=", 0) == 0) {
            opts.trials = std::strtoull(arg.c_str() + 9, nullptr, 0);
        } else if (arg.rfind("--repeats=", 0) == 0) {
            opts.repeats = std::strtoull(arg.c_str() + 10, nullptr, 0);
        } else if (arg.rfind("--fault-seed=", 0) == 0) {
            opts.seed = std::strtoull(arg.c_str() + 13, nullptr, 0);
        } else if (arg == "--json" && i + 1 < argc) {
            opts.jsonPath = argv[++i];
        } else if ((arg == "--trace" || arg == "--metrics") &&
                   i + 1 < argc) {
            ++i; // handled by bench::JsonScope
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            std::exit(2);
        }
    }
    return opts;
}

/** One campaign cell: (fault rate, scrub interval, checkpoint
 *  interval), checksums always on. scrubNs == 0 disables scrubbing;
 *  ckptSegments == 0 disables checkpointing (detection still runs, but
 *  recovery degrades to GPU fallback / unrecovered). */
struct Cell {
    double ber = 0.0;
    double scrubNs = 0.0;
    size_t ckptSegments = 0;
};

struct CellResult {
    double scrubPasses = 0.0;
    double scrubCorrected = 0.0;
    double checkpoints = 0.0;
    double rollbacks = 0.0;
    double replayedSegments = 0.0;
    double checksumMismatches = 0.0;
    double gpuFallbacks = 0.0;
    double unrecoveredRate = 0.0;
    double timeOvhdPct = 0.0;
    double energyOvhdPct = 0.0;
};

CellResult
runCell(const Cell &cell, const Options &opts, const OpSequence &seq,
        const RunResult &base)
{
    CellResult out;
    for (size_t trial = 0; trial < opts.trials; ++trial) {
        AnaheimConfig config = AnaheimConfig::a100NearBank();
        ResilienceConfig &rc = config.resilience;
        // All three fault sites scale with the cell's raw rate. The
        // lane datapath sees ~10^7 multiplies per segment with no ECC,
        // so its per-op rate sits far below the storage BER (as it
        // does physically: logic upsets are much rarer than cell
        // upsets); retention decays more slowly than reads upset.
        rc.ber = cell.ber;
        rc.laneBer = cell.ber * 1e-5;
        rc.retentionBerPerWindow = cell.ber * 1e-2;
        rc.faultSeed = opts.seed + trial * 1000003ull;
        rc.checksumEnabled = true;
        rc.scrub.enabled = cell.scrubNs > 0.0;
        if (rc.scrub.enabled)
            rc.scrub.intervalNs = cell.scrubNs;
        rc.checkpoint.enabled = cell.ckptSegments > 0;
        if (rc.checkpoint.enabled) {
            rc.checkpoint.intervalSegments = cell.ckptSegments;
            // Long chains need a deeper replay budget than the
            // single-workload default.
            rc.checkpoint.maxRollbacks = 32;
        }

        const RunResult run = AnaheimFramework(config).execute(seq);
        const ResilienceStats &r = run.resilience;
        out.scrubPasses += static_cast<double>(r.scrubPasses);
        out.scrubCorrected += static_cast<double>(r.scrubCorrected);
        out.checkpoints += static_cast<double>(r.checkpoints);
        out.rollbacks += static_cast<double>(r.rollbacks);
        out.replayedSegments += static_cast<double>(r.replayedSegments);
        out.checksumMismatches += static_cast<double>(r.checksumMismatches);
        out.gpuFallbacks += static_cast<double>(r.gpuFallbacks);
        out.unrecoveredRate += r.unrecovered > 0 ? 1.0 : 0.0;
        out.timeOvhdPct +=
            100.0 * (run.totalNs - base.totalNs) / base.totalNs;
        out.energyOvhdPct +=
            100.0 * (run.energyPj - base.energyPj) / base.energyPj;
    }
    const double trials = static_cast<double>(opts.trials);
    out.scrubPasses /= trials;
    out.scrubCorrected /= trials;
    out.checkpoints /= trials;
    out.rollbacks /= trials;
    out.replayedSegments /= trials;
    out.checksumMismatches /= trials;
    out.gpuFallbacks /= trials;
    out.unrecoveredRate /= trials;
    out.timeOvhdPct /= trials;
    out.energyOvhdPct /= trials;
    return out;
}

} // namespace

static int
run(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    bench::JsonScope json(opts.smoke ? "fault_campaign_smoke"
                                     : "fault_campaign",
                          argc, argv);
    json.report().metric("smoke", opts.smoke ? "yes" : "no");
    json.report().metric("trials", static_cast<double>(opts.trials));
    json.report().metric("repeats", static_cast<double>(opts.repeats));
    json.report().metric("fault_seed", static_cast<double>(opts.seed));
    bench::reportConfig(json.report(), AnaheimConfig::a100NearBank());

    const TraceParams params;
    OpSequence seq = buildHMult(params);
    OpSequence one = seq;
    for (size_t r = 1; r < opts.repeats; ++r)
        seq.append(one);
    seq.name = "hmult_chain";

    const RunResult base =
        AnaheimFramework(AnaheimConfig::a100NearBank()).execute(seq);

    bench::header(
        "Fault campaign: rate x scrub interval x checkpoint interval (" +
        std::to_string(opts.repeats) + " chained HMULTs, " +
        std::to_string(opts.trials) + " trials/cell, checksums on)");

    std::vector<double> scrubIntervals{0.0, 50.0e3, 200.0e3};
    std::vector<size_t> ckptIntervals{0, 8, 32};
    if (opts.smoke) {
        scrubIntervals = {0.0, 50.0e3};
        ckptIntervals = {0, 8};
    }

    std::printf("%-10s %-9s %-6s %7s %7s %7s %9s %8s %8s %10s %10s\n",
                "rate", "scrub-ns", "ckpt", "scrubs", "ckpts", "rbacks",
                "replayed", "mismat", "unrec", "time-ovhd", "en-ovhd");
    for (const double ber : opts.bers) {
        for (const double scrubNs : scrubIntervals) {
            for (const size_t ckpt : ckptIntervals) {
                const Cell cell{ber, scrubNs, ckpt};
                const CellResult res = runCell(cell, opts, seq, base);
                std::printf("%-10.1e %-9.0f %-6zu %7.1f %7.1f %7.1f "
                            "%9.1f %8.1f %7.0f%% %9.2f%% %9.2f%%\n",
                            ber, scrubNs, ckpt, res.scrubPasses,
                            res.checkpoints, res.rollbacks,
                            res.replayedSegments, res.checksumMismatches,
                            100.0 * res.unrecoveredRate, res.timeOvhdPct,
                            res.energyOvhdPct);
                bench::JsonReport &report = json.report();
                report.beginRow();
                report.rowMetric("ber", ber);
                report.rowMetric("scrub_interval_ns", scrubNs);
                report.rowMetric("checkpoint_interval_segments",
                                 static_cast<double>(ckpt));
                report.rowMetric("scrub_passes", res.scrubPasses);
                report.rowMetric("scrub_corrected", res.scrubCorrected);
                report.rowMetric("checkpoints", res.checkpoints);
                report.rowMetric("rollbacks", res.rollbacks);
                report.rowMetric("replayed_segments",
                                 res.replayedSegments);
                report.rowMetric("checksum_mismatches",
                                 res.checksumMismatches);
                report.rowMetric("gpu_fallbacks", res.gpuFallbacks);
                report.rowMetric("unrecovered_rate", res.unrecoveredRate);
                report.rowMetric("time_overhead_pct", res.timeOvhdPct);
                report.rowMetric("energy_overhead_pct",
                                 res.energyOvhdPct);
            }
        }
    }
    bench::note("ckpt = 0: detection without checkpointing — "
                "uncorrectable events fall back to the GPU and checksum "
                "mismatches go unrecovered; nonzero ckpt converts both "
                "into bounded rollback replays");
    return 0;
}

int
main(int argc, char **argv)
{
    // Out-of-range rates raise AnaheimError from the fault-model /
    // scrubber validation; report them cleanly instead of aborting.
    return runGuardedMain("bench_fault_campaign",
                          [&] { return run(argc, argv); });
}

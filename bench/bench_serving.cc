/**
 * @file
 * Multi-tenant serving benchmark: open-loop Poisson load against the
 * ServeScheduler (DESIGN.md §15), reporting a throughput-vs-latency
 * (p50/p99) curve plus device-utilization and batching columns for
 * each offered-load point.
 *
 * The stream population alternates a GPU-heavy trace (an HMULT chain:
 * ~90% GPU roofline time) with a PIM-heavy trace (an element-wise
 * HADD/PMULT chain calibrated to the same service time), so the two
 * device clocks carry comparable demand and cross-trace GPU<->PIM
 * overlap is the dominant effect. Every load point runs twice on
 * identical arrivals: once serialized (overlap and batching off — the
 * back-to-back baseline) and once with the full scheduler; the
 * speedup_vs_serial column is the throughput ratio at equal offered
 * load, and is expected to exceed 1.5x at saturating load with the
 * default 8 streams.
 *
 * Flags:
 *   --streams=N      concurrent client streams (default 8)
 *   --requests=N     requests per stream (default 4)
 *   --seed=S         arrival-process seed
 *   --repeats=N      HMULTs chained into the GPU-heavy trace
 *   --smoke          two load points / two requests for ctest
 *   --json <path>    machine-readable curve
 *   --trace/--metrics <path>   Perfetto / metrics export (the trace
 *                    shows one track per stream; GPU spans of one
 *                    stream overlap PIM spans of others; the metrics
 *                    JSON carries a per-run timeseries section)
 *   --prom <path>    Prometheus text exposition of the same metrics
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/status.h"
#include "serve/scheduler.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

struct Options {
    size_t streams = 8;
    size_t requests = 4;
    uint64_t seed = 0x5eedca11u;
    size_t repeats = 1;
    bool smoke = false;
    std::vector<double> multipliers{0.25, 0.5, 1.0, 2.0, 4.0};
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            // Keep the default requests/stream: the top load point must
            // still clear the 1.5x overlap bar the validator enforces,
            // and shorter runs are ramp-dominated.
            opts.smoke = true;
            opts.multipliers = {0.5, 4.0};
        } else if (arg.rfind("--streams=", 0) == 0) {
            opts.streams = std::strtoull(arg.c_str() + 10, nullptr, 0);
        } else if (arg.rfind("--requests=", 0) == 0) {
            opts.requests = std::strtoull(arg.c_str() + 11, nullptr, 0);
        } else if (arg.rfind("--seed=", 0) == 0) {
            opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
        } else if (arg.rfind("--repeats=", 0) == 0) {
            opts.repeats = std::strtoull(arg.c_str() + 10, nullptr, 0);
        } else if ((arg == "--json" || arg == "--trace" ||
                    arg == "--metrics" || arg == "--prom") &&
                   i + 1 < argc) {
            ++i; // handled by bench::JsonScope
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            std::exit(2);
        }
    }
    return opts;
}

/** GPU-heavy tenant: chained HMULTs (NTT/BConv dominated). */
OpSequence
buildGpuHeavy(size_t repeats)
{
    const TraceParams params;
    OpSequence seq = buildHMult(params);
    const OpSequence one = seq;
    for (size_t r = 1; r < repeats; ++r)
        seq.append(one);
    seq.name = "hmult_chain";
    return seq;
}

/** PIM-heavy tenant: an element-wise HADD/PMULT chain with `pairs`
 *  add+mult pairs — every op offloads, so the trace is ~100% PIM. */
OpSequence
buildPimHeavy(size_t pairs)
{
    const TraceParams params;
    OpSequence seq = buildHAdd(params);
    const OpSequence add = seq;
    const OpSequence mult = buildPMult(params);
    seq.append(mult);
    for (size_t r = 1; r < pairs; ++r) {
        seq.append(add);
        seq.append(mult);
    }
    seq.name = "ew_chain";
    return seq;
}

struct LoadPoint {
    double offeredRps = 0.0;
    serve::ServeStats serial;
    serve::ServeStats overlapped;
};

} // namespace

static int
run(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    bench::JsonScope json(opts.smoke ? "serving_smoke" : "serving",
                          argc, argv);
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    bench::reportConfig(json.report(), config);
    json.report().metric("smoke", opts.smoke ? "yes" : "no");
    json.report().metric("streams",
                         static_cast<double>(opts.streams));
    json.report().metric("requests_per_stream",
                         static_cast<double>(opts.requests));
    json.report().metric("arrival_seed",
                         static_cast<double>(opts.seed));

    const AnaheimFramework fw(config);
    const OpSequence gpuHeavy = buildGpuHeavy(opts.repeats);
    // Calibrate the PIM-heavy chain to the GPU-heavy service time so
    // aggregate demand splits evenly across the two device clocks.
    const double gpuHeavyNs = fw.execute(gpuHeavy).totalNs;
    const double pairNs = fw.execute(buildPimHeavy(1)).totalNs;
    const size_t pairs = std::max<size_t>(
        1, static_cast<size_t>(gpuHeavyNs / pairNs + 0.5));
    const OpSequence pimHeavy = buildPimHeavy(pairs);
    const double pimHeavyNs = fw.execute(pimHeavy).totalNs;
    const std::vector<OpSequence> traces = {gpuHeavy, pimHeavy};

    // Serial capacity: requests per second when every request runs
    // back-to-back on the combined device — the load sweep's unit.
    const double meanServiceNs = (gpuHeavyNs + pimHeavyNs) / 2.0;
    const double serialCapacityRps = 1e9 / meanServiceNs;
    json.report().metric("serial_capacity_rps", serialCapacityRps);

    bench::header(
        "Multi-tenant serving: open-loop Poisson load, " +
        std::to_string(opts.streams) + " streams x " +
        std::to_string(opts.requests) +
        " requests (hmult_chain / ew_chain alternating)");
    std::printf("  service: hmult_chain %.3f ms, ew_chain %.3f ms "
                "(%zu ew pairs), serial capacity %.0f req/s\n\n",
                gpuHeavyNs * 1e-6, pimHeavyNs * 1e-6, pairs,
                serialCapacityRps);
    std::printf("%-12s %10s %10s %8s %9s %9s %7s %7s %8s\n",
                "offered", "serial", "overlap", "speedup", "p50 ms",
                "p99 ms", "gpu", "pim", "batched");

    double peakSpeedup = 0.0;
    for (const double mult : opts.multipliers) {
        LoadPoint point;
        point.offeredRps = mult * serialCapacityRps;

        ServeConfig serveCfg;
        serveCfg.streams = opts.streams;
        serveCfg.requestsPerStream = opts.requests;
        serveCfg.offeredRps = point.offeredRps;
        serveCfg.arrivalSeed = opts.seed;
        // Two scheduling classes: GPU-heavy tenants (even streams) win
        // PIM dispatch ties, so their short element-wise segments jump
        // ahead of the long ew chains and the GPU never starves.
        serveCfg.priorityClasses = 2;
        // One telemetry window per mean service time: queue depth,
        // busy fractions and latency evolve over a handful of windows
        // even at smoke scale (--metrics gets a timeseries section,
        // --prom the text exposition).
        serveCfg.telemetry.tickNs = meanServiceNs;

        ServeConfig serialCfg = serveCfg;
        serialCfg.overlap = false;
        serialCfg.batching = false;
        point.serial =
            serve::ServeScheduler(fw, serialCfg).run(traces).stats;
        point.overlapped =
            serve::ServeScheduler(fw, serveCfg).run(traces).stats;

        const serve::ServeStats &ov = point.overlapped;
        const double speedup =
            point.serial.throughputRps() > 0.0
                ? ov.throughputRps() / point.serial.throughputRps()
                : 0.0;
        peakSpeedup = std::max(peakSpeedup, speedup);
        double meanNs = 0.0;
        for (const double l : ov.latenciesNs)
            meanNs += l;
        meanNs /= ov.latenciesNs.empty()
                      ? 1.0
                      : static_cast<double>(ov.latenciesNs.size());

        std::printf("%9.0f/s %8.0f/s %8.0f/s %7.2fx %9.3f %9.3f "
                    "%6.0f%% %6.0f%% %8llu\n",
                    point.offeredRps, point.serial.throughputRps(),
                    ov.throughputRps(), speedup,
                    ov.percentileNs(50.0) * 1e-6,
                    ov.percentileNs(99.0) * 1e-6,
                    100.0 * ov.gpuUtil(), 100.0 * ov.pimUtil(),
                    static_cast<unsigned long long>(ov.batchedOps));

        bench::JsonReport &report = json.report();
        report.beginRow();
        report.rowMetric("offered_rps", point.offeredRps);
        report.rowMetric("throughput_rps", ov.throughputRps());
        report.rowMetric("serial_throughput_rps",
                         point.serial.throughputRps());
        report.rowMetric("speedup_vs_serial", speedup);
        report.rowMetric("p50_ms", ov.percentileNs(50.0) * 1e-6);
        report.rowMetric("p99_ms", ov.percentileNs(99.0) * 1e-6);
        report.rowMetric("mean_ms", meanNs * 1e-6);
        report.rowMetric("gpu_util", ov.gpuUtil());
        report.rowMetric("pim_util", ov.pimUtil());
        report.rowMetric("batches", static_cast<double>(ov.batches));
        report.rowMetric("batched_ops",
                         static_cast<double>(ov.batchedOps));
        report.rowMetric("admitted", static_cast<double>(ov.admitted));
        report.rowMetric("rejected", static_cast<double>(ov.rejected));
        report.rowMetric("completed",
                         static_cast<double>(ov.completed));
    }
    json.report().metric("peak_speedup_vs_serial", peakSpeedup);

    bench::note("speedup_vs_serial = overlapped/serial throughput on "
                "identical Poisson arrivals; serial = overlap+batching "
                "off (back-to-back device). GPU-heavy and PIM-heavy "
                "tenants alternate, so the gain is cross-trace "
                "GPU<->PIM overlap plus fused PIM dispatches");
    return 0;
}

int
main(int argc, char **argv)
{
    return runGuardedMain("bench_serving",
                          [&] { return run(argc, argv); });
}

/**
 * Fig. 3: T_boot,eff breakdown as fftIter varies — more/sparser DFT
 * factors reduce per-boot element-wise work but cost levels (lower
 * L_eff), degrading T_boot,eff beyond fftIter = 4.
 */

#include <cstdio>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/status.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

void
sweep(const AnaheimConfig &base, const char *gpuName)
{
    std::printf("\n-- %s --\n", gpuName);
    std::printf("%-10s %8s | %10s %10s | %10s %12s\n", "fftIter", "L_eff",
                "EW ms", "total ms", "EW share", "T_boot,eff");
    const TraceParams params;
    double best = 1e30;
    double bestIter = 0.0;
    for (double fftIter : {3.0, 3.5, 4.0, 5.0, 6.0}) {
        AnaheimConfig config = base;
        config.pimEnabled = false;
        const OpSequence boot =
            buildBootstrap(params, fftIter, TraceLtAlgorithm::Hoisting);
        const auto result = AnaheimFramework(config).execute(boot);
        const double leff = bootstrapLevelsEff(params, fftIter);
        const double ew =
            result.timeNsByCategory.count("ElementWise")
                ? result.timeNsByCategory.at("ElementWise") * 1e-6
                : 0.0;
        const double tbe = result.totalNs * 1e-6 / leff;
        std::printf("%-10.1f %8.1f | %10.2f %10.2f | %9.1f%% %10.2fms\n",
                    fftIter, leff, ew, result.totalNs * 1e-6,
                    100.0 * ew / (result.totalNs * 1e-6), tbe);
        if (tbe < best) {
            best = tbe;
            bestIter = fftIter;
        }
    }
    std::printf("   best T_boot,eff at fftIter = %.1f\n", bestIter);
}

} // namespace

static int
run(int argc, char **argv)
{
    bench::JsonScope json("fig3_fftiter", argc, argv);
    bench::header("Fig. 3 — T_boot,eff vs fftIter (hoisting, no PIM)");
    sweep(AnaheimConfig::a100NearBank(), "A100 80GB");
    sweep(AnaheimConfig::rtx4090NearBank(), "RTX 4090");
    std::printf("\n");
    bench::note("paper: the fftIter 3/4 mix is best; fftIter > 4 "
                "degrades T_boot,eff because L_eff drops faster than "
                "the element-wise share");
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_fig3_fftiter",
                          [&] { return run(argc, argv); });
}

/**
 * @file
 * NTT kernel microbenchmark: division-based reference butterflies vs the
 * Harvey/Shoup lazy-reduction kernels, at N = 2^12 .. 2^16.
 *
 * Reports ns per butterfly (a transform is N/2 * log2 N butterflies) and
 * full-transform throughput for both directions, plus the speedup of the
 * lazy path — the acceptance gate for the kernel rewrite is >= 2x on the
 * full forward transform at N = 2^16. Before timing, the two paths are
 * cross-checked bitwise on the same input.
 *
 * Emits BENCH_ntt.json (override with --json <path>) so the perf
 * trajectory of the kernels is machine-readable across PRs.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "math/kernels.h"
#include "math/ntt.h"
#include "math/primes.h"

namespace anaheim {
namespace {

using Clock = std::chrono::steady_clock;

/** Best-of-3 wall time of fn(), in nanoseconds. */
template <typename Fn>
double
bestNs(Fn &&fn)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = Clock::now();
        fn();
        const double ns =
            std::chrono::duration<double, std::nano>(Clock::now() - start)
                .count();
        best = std::min(best, ns);
    }
    return best;
}

struct KernelTiming {
    double nsPerTransform = 0.0;
    double nsPerButterfly = 0.0;
    double transformsPerSec = 0.0;
};

KernelTiming
time_kernel(const std::function<void(uint64_t *)> &kernel,
            CoeffVector data, size_t n, size_t reps)
{
    // Transforms run in place, repeatedly: outputs are canonical
    // residues, which are valid inputs again, so both paths execute the
    // identical instruction mix with no copy overhead in the loop.
    KernelTiming t;
    const double ns = bestNs([&] {
        for (size_t r = 0; r < reps; ++r)
            kernel(data.data());
    });
    const double butterflies =
        0.5 * static_cast<double>(n) * std::log2(static_cast<double>(n));
    t.nsPerTransform = ns / static_cast<double>(reps);
    t.nsPerButterfly = t.nsPerTransform / butterflies;
    t.transformsPerSec = 1e9 / t.nsPerTransform;
    return t;
}

} // namespace
} // namespace anaheim

static int
run(int argc, char **argv)
{
    using namespace anaheim;

    std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    if (jsonPath.empty())
        jsonPath = "BENCH_ntt.json"; // the tracked perf-trajectory file

    bench::header("NTT kernels: Harvey/Shoup lazy reduction vs "
                  "division-based reference");
    bench::note("40-bit NTT primes; best-of-3; a transform is "
                "N/2*log2(N) butterflies");

    bench::JsonReport report("ntt_kernels");
    report.metric("prime_bits", 40);

    std::printf("\n  %-6s %-12s  %13s  %13s  %8s   %13s\n", "logN",
                "kernel", "fwd ns/bfly", "inv ns/bfly", "fwd x",
                "fwd xforms/s");

    bool identical = true;
    double speedupAt64k = 0.0;
    std::string bestBackend = "none";
    for (unsigned logN = 12; logN <= 16; ++logN) {
        const size_t n = size_t{1} << logN;
        const uint64_t q = generateNttPrimes(n, 40, 1)[0];
        const auto table = NttTable::shared(q, n);
        Rng rng(logN);
        const auto input = sampleUniform(rng, n, q);

        const size_t reps = std::max<size_t>(1, (size_t{1} << 22) / n);
        const auto refFwd = time_kernel(
            [&](uint64_t *d) { table->forwardReference(d); }, input, n,
            reps);
        const auto refInv = time_kernel(
            [&](uint64_t *d) { table->inverseReference(d); }, input, n,
            reps);

        std::printf("  %-6u %-12s  %13.2f  %13.2f  %8s   %13.0f\n",
                    logN, "reference", refFwd.nsPerButterfly,
                    refInv.nsPerButterfly, "", refFwd.transformsPerSec);
        report.beginRow();
        report.rowMetric("logn", logN);
        report.rowMetric("n", static_cast<double>(n));
        report.rowMetric("q", static_cast<double>(q));
        report.rowMetric("backend", "reference");
        report.rowMetric("fwd_ns_per_butterfly", refFwd.nsPerButterfly);
        report.rowMetric("inv_ns_per_butterfly", refInv.nsPerButterfly);
        report.rowMetric("fwd_transforms_per_sec",
                         refFwd.transformsPerSec);
        report.rowMetric("fwd_speedup", 1.0);

        // One timed row per compiled-and-runnable lazy backend, pinned
        // programmatically; the widest (last) one is what CPUID
        // dispatch picks by default.
        for (const kernels::KernelOps *ops : kernels::compiledBackends()) {
            if (!kernels::cpuSupports(ops->backend))
                continue;
            kernels::setBackend(ops->backend);

            // Bitwise cross-check before timing, both directions.
            {
                auto lazy = input, ref = input;
                table->forwardLazy(lazy.data());
                table->forwardReference(ref.data());
                identical = identical && lazy == ref;
                table->inverseLazy(lazy.data());
                table->inverseReference(ref.data());
                identical = identical && lazy == ref;
            }

            const auto lazyFwd = time_kernel(
                [&](uint64_t *d) { table->forwardLazy(d); }, input, n,
                reps);
            const auto lazyInv = time_kernel(
                [&](uint64_t *d) { table->inverseLazy(d); }, input, n,
                reps);
            const double fwdSpeedup =
                refFwd.nsPerTransform / lazyFwd.nsPerTransform;
            if (logN == 16 && fwdSpeedup > speedupAt64k) {
                speedupAt64k = fwdSpeedup;
                bestBackend = ops->name;
            }

            std::printf("  %-6s %-12s  %13.2f  %13.2f  %7.2fx   "
                        "%13.0f\n",
                        "", ops->name, lazyFwd.nsPerButterfly,
                        lazyInv.nsPerButterfly, fwdSpeedup,
                        lazyFwd.transformsPerSec);
            report.beginRow();
            report.rowMetric("logn", logN);
            report.rowMetric("n", static_cast<double>(n));
            report.rowMetric("q", static_cast<double>(q));
            report.rowMetric("backend", ops->name);
            report.rowMetric("fwd_ns_per_butterfly",
                             lazyFwd.nsPerButterfly);
            report.rowMetric("inv_ns_per_butterfly",
                             lazyInv.nsPerButterfly);
            report.rowMetric("fwd_transforms_per_sec",
                             lazyFwd.transformsPerSec);
            report.rowMetric("fwd_speedup", fwdSpeedup);
        }
        kernels::resetBackend();
    }

    bench::note("");
    bench::note(std::string("lazy output bitwise identical to "
                            "reference: ") +
                (identical ? "yes" : "NO"));
    std::printf("  full-transform forward speedup at N=2^16: %.2fx "
                "(best backend: %s; acceptance gate: >= 2x)\n",
                speedupAt64k, bestBackend.c_str());

    report.metric("bitwise_identical", identical ? "yes" : "no");
    report.metric("fwd_speedup_at_2e16", speedupAt64k);
    report.metric("best_backend", bestBackend);
    report.write(jsonPath);
    return identical ? 0 : 1;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return anaheim::runGuardedMain("bench_ntt_kernels",
                          [&] { return run(argc, argv); });
}

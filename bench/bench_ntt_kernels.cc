/**
 * @file
 * NTT kernel microbenchmark: division-based reference butterflies vs the
 * Harvey/Shoup lazy-reduction kernels, at N = 2^12 .. 2^16.
 *
 * Reports ns per butterfly (a transform is N/2 * log2 N butterflies) and
 * full-transform throughput for both directions, plus the speedup of the
 * lazy path — the acceptance gate for the kernel rewrite is >= 2x on the
 * full forward transform at N = 2^16. Before timing, the two paths are
 * cross-checked bitwise on the same input.
 *
 * Emits BENCH_ntt.json (override with --json <path>) so the perf
 * trajectory of the kernels is machine-readable across PRs.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "math/ntt.h"
#include "math/primes.h"

namespace anaheim {
namespace {

using Clock = std::chrono::steady_clock;

/** Best-of-3 wall time of fn(), in nanoseconds. */
template <typename Fn>
double
bestNs(Fn &&fn)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = Clock::now();
        fn();
        const double ns =
            std::chrono::duration<double, std::nano>(Clock::now() - start)
                .count();
        best = std::min(best, ns);
    }
    return best;
}

struct KernelTiming {
    double nsPerTransform = 0.0;
    double nsPerButterfly = 0.0;
    double transformsPerSec = 0.0;
};

KernelTiming
time_kernel(const std::function<void(uint64_t *)> &kernel,
            std::vector<uint64_t> data, size_t n, size_t reps)
{
    // Transforms run in place, repeatedly: outputs are canonical
    // residues, which are valid inputs again, so both paths execute the
    // identical instruction mix with no copy overhead in the loop.
    KernelTiming t;
    const double ns = bestNs([&] {
        for (size_t r = 0; r < reps; ++r)
            kernel(data.data());
    });
    const double butterflies =
        0.5 * static_cast<double>(n) * std::log2(static_cast<double>(n));
    t.nsPerTransform = ns / static_cast<double>(reps);
    t.nsPerButterfly = t.nsPerTransform / butterflies;
    t.transformsPerSec = 1e9 / t.nsPerTransform;
    return t;
}

} // namespace
} // namespace anaheim

static int
run(int argc, char **argv)
{
    using namespace anaheim;

    std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    if (jsonPath.empty())
        jsonPath = "BENCH_ntt.json"; // the tracked perf-trajectory file

    bench::header("NTT kernels: Harvey/Shoup lazy reduction vs "
                  "division-based reference");
    bench::note("40-bit NTT primes; best-of-3; a transform is "
                "N/2*log2(N) butterflies");

    bench::JsonReport report("ntt_kernels");
    report.metric("prime_bits", 40);

    std::printf("\n  %-6s %-9s  %13s  %13s  %8s   %13s\n", "logN",
                "kernel", "fwd ns/bfly", "inv ns/bfly", "fwd x",
                "fwd xforms/s");

    bool identical = true;
    double speedupAt64k = 0.0;
    for (unsigned logN = 12; logN <= 16; ++logN) {
        const size_t n = size_t{1} << logN;
        const uint64_t q = generateNttPrimes(n, 40, 1)[0];
        const auto table = NttTable::shared(q, n);
        Rng rng(logN);
        const auto input = sampleUniform(rng, n, q);

        // Bitwise cross-check before timing, both directions.
        {
            auto lazy = input, ref = input;
            table->forwardLazy(lazy.data());
            table->forwardReference(ref.data());
            identical = identical && lazy == ref;
            table->inverseLazy(lazy.data());
            table->inverseReference(ref.data());
            identical = identical && lazy == ref;
        }

        const size_t reps = std::max<size_t>(1, (size_t{1} << 22) / n);
        const auto refFwd = time_kernel(
            [&](uint64_t *d) { table->forwardReference(d); }, input, n,
            reps);
        const auto refInv = time_kernel(
            [&](uint64_t *d) { table->inverseReference(d); }, input, n,
            reps);
        const auto lazyFwd = time_kernel(
            [&](uint64_t *d) { table->forwardLazy(d); }, input, n, reps);
        const auto lazyInv = time_kernel(
            [&](uint64_t *d) { table->inverseLazy(d); }, input, n, reps);

        const double fwdSpeedup =
            refFwd.nsPerTransform / lazyFwd.nsPerTransform;
        const double invSpeedup =
            refInv.nsPerTransform / lazyInv.nsPerTransform;
        if (logN == 16)
            speedupAt64k = fwdSpeedup;

        std::printf("  %-6u %-9s  %13.2f  %13.2f  %8s   %13.0f\n", logN,
                    "reference", refFwd.nsPerButterfly,
                    refInv.nsPerButterfly, "", refFwd.transformsPerSec);
        std::printf("  %-6s %-9s  %13.2f  %13.2f  %7.2fx   %13.0f\n", "",
                    "shoup", lazyFwd.nsPerButterfly,
                    lazyInv.nsPerButterfly, fwdSpeedup,
                    lazyFwd.transformsPerSec);

        report.beginRow();
        report.rowMetric("logn", logN);
        report.rowMetric("n", static_cast<double>(n));
        report.rowMetric("q", static_cast<double>(q));
        report.rowMetric("ref_fwd_ns_per_butterfly",
                         refFwd.nsPerButterfly);
        report.rowMetric("ref_inv_ns_per_butterfly",
                         refInv.nsPerButterfly);
        report.rowMetric("shoup_fwd_ns_per_butterfly",
                         lazyFwd.nsPerButterfly);
        report.rowMetric("shoup_inv_ns_per_butterfly",
                         lazyInv.nsPerButterfly);
        report.rowMetric("ref_fwd_transforms_per_sec",
                         refFwd.transformsPerSec);
        report.rowMetric("shoup_fwd_transforms_per_sec",
                         lazyFwd.transformsPerSec);
        report.rowMetric("fwd_speedup", fwdSpeedup);
        report.rowMetric("inv_speedup", invSpeedup);
    }

    bench::note("");
    bench::note(std::string("lazy output bitwise identical to "
                            "reference: ") +
                (identical ? "yes" : "NO"));
    std::printf("  full-transform forward speedup at N=2^16: %.2fx "
                "(acceptance gate: >= 2x)\n",
                speedupAt64k);

    report.metric("bitwise_identical", identical ? "yes" : "no");
    report.metric("fwd_speedup_at_2e16", speedupAt64k);
    report.write(jsonPath);
    return identical ? 0 : 1;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return anaheim::runGuardedMain("bench_ntt_kernels",
                          [&] { return run(argc, argv); });
}

/**
 * Fig. 9: microbenchmark of PIM instructions as the data-buffer entry
 * count B varies from 4 to 64 — speedup and energy efficiency versus
 * the GPU-side (external-DRAM) execution of the same op, for all three
 * Anaheim configurations.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/status.h"
#include "pim/kernelmodel.h"

using namespace anaheim;

namespace {

void
sweep(const DramConfig &dram, const PimConfig &base, const char *name)
{
    std::printf("\n-- %s --\n", name);
    const struct {
        PimOpcode opcode;
        size_t fanIn;
        const char *label;
    } instrs[] = {
        {PimOpcode::Add, 1, "Add"},       {PimOpcode::Mult, 1, "Mult"},
        {PimOpcode::Mac, 1, "MAC"},       {PimOpcode::PMult, 1, "PMult"},
        {PimOpcode::CMac, 1, "CMAC"},     {PimOpcode::Tensor, 1, "Tensor"},
        {PimOpcode::ModDownEp, 1, "ModDownEp"},
        {PimOpcode::PAccum, 4, "PAccum<4>"},
        {PimOpcode::CAccum, 8, "CAccum<8>"},
    };
    std::printf("%-10s", "Instr");
    for (size_t b : {4u, 8u, 16u, 32u, 64u})
        std::printf("   B=%-8zu", b);
    std::printf("(speedup vs GPU DRAM path; '-' unsupported)\n");

    for (const auto &instr : instrs) {
        std::printf("%-10s", instr.label);
        for (size_t b : {4u, 8u, 16u, 32u, 64u}) {
            PimConfig config = base;
            config.bufferEntries = b;
            const PimKernelModel model(dram, config);
            if (!pimInstrSupported(instr.opcode, instr.fanIn, b)) {
                std::printf("   %-10s", "-");
                continue;
            }
            const auto pim =
                model.execute(instr.opcode, instr.fanIn, 54, 1 << 16);
            const auto gpu =
                model.baseline(instr.opcode, instr.fanIn, 54, 1 << 16);
            std::printf("   %-9.2f", gpu.timeNs / pim.timeNs);
        }
        // Energy efficiency at the default B.
        const PimKernelModel model(dram, base);
        const auto pim =
            model.execute(instr.opcode, instr.fanIn, 54, 1 << 16);
        const auto gpu =
            model.baseline(instr.opcode, instr.fanIn, 54, 1 << 16);
        std::printf("  | energy %.2fx @B=%zu\n",
                    gpu.energyPj / pim.energyPj, base.bufferEntries);
    }
}

} // namespace

static int
run(int argc, char **argv)
{
    bench::JsonScope json("fig9_pim_micro", argc, argv);
    bench::header("Fig. 9 — PIM instruction microbenchmark vs buffer "
                  "entries B");
    sweep(DramConfig::hbm2A100(), PimConfig::nearBankA100(),
          "A100 near-bank (default B=16)");
    sweep(DramConfig::hbm2A100(), PimConfig::customHbmA100(),
          "A100 custom-HBM (default B=16)");
    sweep(DramConfig::gddr6xRtx4090(), PimConfig::nearBankRtx4090(),
          "RTX 4090 near-bank (default B=32)");
    std::printf("\n");
    bench::note("paper: 1.65-10.33x speedups and 2.63-17.39x energy "
                "gains at the default B; PAccum/CAccum gain most "
                "(7.26/3.98/3.63x and 10.33/4.31/6.20x); gains saturate "
                "with B, fastest for custom-HBM");
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_fig9_pim_micro",
                          [&] { return run(argc, argv); });
}

/**
 * Fig. 2a: execution-time breakdown of the basic CKKS functions (HADD,
 * PMULT, HMULT, HROT) on A100 80GB under Phantom / 100x / Cheddar.
 */

#include <cstdio>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/status.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

double
timeOf(const OpSequence &seq, const LibraryProfile &library)
{
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    config.library = library;
    config.pimEnabled = false;
    return AnaheimFramework(config).execute(seq).totalNs * 1e-6; // ms
}

} // namespace

static int
run(int argc, char **argv)
{
    bench::JsonScope json("fig2a_basic_ops", argc, argv);
    bench::header("Fig. 2a — basic CKKS function times on A100 80GB "
                  "(N=2^16, L=54, alpha=14)");

    const TraceParams params;
    const struct {
        const char *name;
        OpSequence seq;
    } functions[] = {
        {"HADD", buildHAdd(params)},
        {"PMULT", buildPMult(params)},
        {"HMULT", buildHMult(params)},
        {"HROT", buildHRot(params)},
    };
    const struct {
        const char *name;
        LibraryProfile profile;
    } libraries[] = {
        {"Phantom", LibraryProfile::phantom()},
        {"100x", LibraryProfile::lib100x()},
        {"Cheddar", LibraryProfile::cheddar()},
    };

    std::printf("%-8s", "Func");
    for (const auto &lib : libraries)
        std::printf(" %12s", lib.name);
    std::printf("   Cheddar speedup vs Phantom\n");

    for (const auto &fn : functions) {
        std::printf("%-8s", fn.name);
        double phantomMs = 0, cheddarMs = 0;
        for (const auto &lib : libraries) {
            const double ms = timeOf(fn.seq, lib.profile);
            std::printf(" %10.3fms", ms);
            if (std::string(lib.name) == "Phantom")
                phantomMs = ms;
            if (std::string(lib.name) == "Cheddar")
                cheddarMs = ms;
        }
        std::printf("   %.2fx\n", phantomMs / cheddarMs);
    }
    std::printf("\n");
    bench::note("paper: Cheddar 1.79x (HMULT) / 1.73x (HROT) faster than "
                "Phantom, driven by 1.80-1.81x faster (I)NTT; HADD/PMULT "
                "are bandwidth-bound and library-insensitive");
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_fig2a_basic_ops",
                          [&] { return run(argc, argv); });
}

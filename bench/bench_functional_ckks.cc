/**
 * Google-benchmark microbenchmarks of the functional CKKS library —
 * the substrate everything else is validated against. Measures the
 * primitive costs (NTT, element-wise ops, keyswitching, rotation,
 * encode) at test-scale parameters on the host CPU.
 */

#include <benchmark/benchmark.h>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "common/rng.h"
#include "common/status.h"
#include "math/ntt.h"
#include "math/primes.h"
#include "pim/functional.h"

using namespace anaheim;

namespace {

struct Fixture {
    Fixture()
        : context(CkksParams::testParams(1 << 12, 8, 2)),
          encoder(context), keygen(context, 41), encryptor(context, 43),
          evaluator(context, encoder), relin(keygen.makeRelinKey()),
          keys(keygen.makeGaloisKeys({1, 8}))
    {
        Rng rng(47);
        std::vector<std::complex<double>> msg(encoder.slots());
        for (auto &v : msg)
            v = {rng.uniformReal() - 0.5, rng.uniformReal() - 0.5};
        ct = encryptor.encrypt(encoder.encode(msg, context.maxLevel()),
                               keygen.secretKey());
        pt = encoder.encode(msg, context.maxLevel());
    }

    CkksContext context;
    CkksEncoder encoder;
    KeyGenerator keygen;
    CkksEncryptor encryptor;
    CkksEvaluator evaluator;
    EvalKey relin;
    GaloisKeys keys;
    Ciphertext ct;
    Plaintext pt;
};

Fixture &
fixture()
{
    static Fixture instance;
    return instance;
}

void
BM_NttForward(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const uint64_t q = generateNttPrimes(n, 50, 1)[0];
    const NttTable table(q, n);
    Rng rng(3);
    auto data = sampleUniform(rng, n, q);
    for (auto _ : state) {
        table.forward(data.data());
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NttForward)->Arg(1 << 10)->Arg(1 << 12)->Arg(1 << 14);

void
BM_HAdd(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        auto out = f.evaluator.add(f.ct, f.ct);
        benchmark::DoNotOptimize(out.b.limb(0).data());
    }
}
BENCHMARK(BM_HAdd);

void
BM_PMult(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        auto out = f.evaluator.mulPlain(f.ct, f.pt);
        benchmark::DoNotOptimize(out.b.limb(0).data());
    }
}
BENCHMARK(BM_PMult);

void
BM_HMult(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        auto out = f.evaluator.multiply(f.ct, f.ct, f.relin);
        benchmark::DoNotOptimize(out.b.limb(0).data());
    }
}
BENCHMARK(BM_HMult);

void
BM_HRot(benchmark::State &state)
{
    auto &f = fixture();
    for (auto _ : state) {
        auto out = f.evaluator.rotate(f.ct, 1, f.keys);
        benchmark::DoNotOptimize(out.b.limb(0).data());
    }
}
BENCHMARK(BM_HRot);

void
BM_HoistedRotations(benchmark::State &state)
{
    auto &f = fixture();
    const std::vector<int> rotations = {1, 8};
    for (auto _ : state) {
        auto out = f.evaluator.rotateHoisted(f.ct, rotations, f.keys);
        benchmark::DoNotOptimize(out.front().b.limb(0).data());
    }
}
BENCHMARK(BM_HoistedRotations);

void
BM_Encode(benchmark::State &state)
{
    auto &f = fixture();
    std::vector<std::complex<double>> msg(f.encoder.slots(), {0.5, 0.1});
    for (auto _ : state) {
        auto out = f.encoder.encode(msg, f.context.maxLevel());
        benchmark::DoNotOptimize(out.poly.limb(0).data());
    }
}
BENCHMARK(BM_Encode);

void
BM_PimFunctionalPAccum(benchmark::State &state)
{
    const uint64_t q = generateNttPrimes(1024, 28, 1)[0];
    const PimFunctionalUnit unit(q);
    Rng rng(31);
    std::vector<PimVector> a(4), b(4), p(4);
    for (int k = 0; k < 4; ++k) {
        a[k].resize(4096);
        b[k].resize(4096);
        p[k].resize(4096);
        for (size_t i = 0; i < 4096; ++i) {
            a[k][i] = static_cast<uint32_t>(rng.uniform(q));
            b[k][i] = static_cast<uint32_t>(rng.uniform(q));
            p[k][i] = static_cast<uint32_t>(rng.uniform(q));
        }
    }
    for (auto _ : state) {
        auto out = unit.pAccum(a, b, p);
        benchmark::DoNotOptimize(out.first.data());
    }
    state.SetItemsProcessed(state.iterations() * 4096 * 8);
}
BENCHMARK(BM_PimFunctionalPAccum);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): the shared `--json <path>`
// flag the other benches take is translated into google-benchmark's own
// JSON reporter flags so the output lands in one machine-readable file.
static int
run(int argc, char **argv)
{
    std::vector<std::string> storage;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc) {
            storage.push_back("--benchmark_out=" + std::string(argv[i + 1]));
            storage.push_back("--benchmark_out_format=json");
            ++i;
        } else {
            args.push_back(argv[i]);
        }
    }
    for (auto &flag : storage)
        args.push_back(flag.data());
    int count = static_cast<int>(args.size());
    ::benchmark::Initialize(&count, args.data());
    if (::benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_functional_ckks",
                          [&] { return run(argc, argv); });
}

/**
 * Ablation (§VI-B, §VI-D design-choice studies beyond the paper's
 * figures): how Anaheim's PIM execution scales with the die-group
 * count (limb-level parallelism), the banks-per-unit ratio of the
 * custom-HBM variant, and the column-group width of the data layout.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/status.h"
#include "pim/kernelmodel.h"

using namespace anaheim;

static int
run(int argc, char **argv)
{
    bench::JsonScope json("ablation_scaling", argc, argv);
    bench::header("Ablation — PIM scalability and layout choices");

    // 1. Die groups: limb-level parallelism (§VI-B "high scalability").
    std::printf("\nKeyMult PAccum<4> (68 limbs) vs die groups "
                "(A100 near-bank):\n");
    std::printf("  %-10s %12s %10s\n", "dieGroups", "time", "speedup");
    double base = 0.0;
    for (size_t groups : {1u, 2u, 5u, 10u}) {
        PimConfig config = PimConfig::nearBankA100();
        config.dieGroups = groups;
        const PimKernelModel model(DramConfig::hbm2A100(), config);
        const auto stats = model.execute(PimOpcode::PAccum, 4, 68, 1 << 16);
        if (base == 0.0)
            base = stats.timeNs;
        std::printf("  %-10zu %10.1fus %9.2fx\n", groups,
                    stats.timeNs * 1e-3, base / stats.timeNs);
    }

    // 2. Banks per unit on the custom-HBM logic die: more banks per
    // unit hides ACT/PRE better but serializes streaming.
    std::printf("\ncustom-HBM banks-per-unit trade-off (PAccum<4>):\n");
    std::printf("  %-14s %12s\n", "banksPerUnit", "time");
    for (size_t banks : {2u, 4u, 8u, 16u}) {
        PimConfig config = PimConfig::customHbmA100();
        config.banksPerUnit = banks;
        const PimKernelModel model(DramConfig::hbm2A100(), config);
        const auto stats = model.execute(PimOpcode::PAccum, 4, 68, 1 << 16);
        std::printf("  %-14zu %10.1fus\n", banks, stats.timeNs * 1e-3);
    }

    // 3. Column-partitioning on/off across instructions (extends the
    // Fig. 10 w/o-CP data point to the full ISA).
    std::printf("\ncolumn partitioning ablation per instruction "
                "(A100 near-bank, B=16):\n");
    std::printf("  %-12s %12s %12s %10s\n", "instr", "with CP", "w/o CP",
                "slowdown");
    struct InstrRow {
        PimOpcode op;
        size_t fanIn;
        const char *label;
    };
    const InstrRow rows[] = {{PimOpcode::Add, 1, "Add"},
                             {PimOpcode::Mac, 1, "MAC"},
                             {PimOpcode::PMult, 1, "PMult"},
                             {PimOpcode::Tensor, 1, "Tensor"},
                             {PimOpcode::PAccum, 4, "PAccum<4>"}};
    for (const auto &[op, fanIn, label] : rows) {
        PimConfig with = PimConfig::nearBankA100();
        PimConfig without = PimConfig::nearBankA100();
        without.columnPartition = false;
        const PimKernelModel mWith(DramConfig::hbm2A100(), with);
        const PimKernelModel mWithout(DramConfig::hbm2A100(), without);
        const auto a = mWith.execute(op, fanIn, 54, 1 << 16);
        const auto b = mWithout.execute(op, fanIn, 54, 1 << 16);
        std::printf("  %-12s %10.1fus %10.1fus %9.2fx\n", label,
                    a.timeNs * 1e-3, b.timeNs * 1e-3,
                    b.timeNs / a.timeNs);
    }

    std::printf("\n");
    bench::note("expected shapes: near-linear die-group scaling; "
                "banks-per-unit serializes streaming (the paper picks 8 "
                "for area, not speed); CP slowdown grows with operand "
                "count (worst for PAccum/Tensor), matching §VI-C");
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_ablation_scaling",
                          [&] { return run(argc, argv); });
}

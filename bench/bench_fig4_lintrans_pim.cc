/**
 * Fig. 4a: Gantt comparison of an optimized linear transform (K=8,
 * hoisting) on A100: GPU-only, hypothetical 4x-bandwidth DRAM, and PIM
 * offloading. Fig. 4b: bootstrapping DRAM access volume and energy
 * with and without PIM, plus the unlimited-cache ideal.
 */

#include <cstdio>
#include <map>

#include "anaheim/framework.h"
#include "anaheim/workloads.h"
#include "bench_util.h"
#include "common/status.h"
#include "common/units.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

void
printGantt(const char *label, const RunResult &result)
{
    // Condense the timeline into phase segments.
    std::printf("  %-12s total %8.2f us | ", label, result.totalNs * 1e-3);
    std::string lastKey;
    double segStart = 0.0;
    for (size_t i = 0; i <= result.timeline.size(); ++i) {
        const bool flush = i == result.timeline.size() ||
                           result.timeline[i].device + "/" +
                                   result.timeline[i].phase !=
                               lastKey;
        if (flush && !lastKey.empty()) {
            const double end = i == result.timeline.size()
                                   ? result.totalNs
                                   : result.timeline[i].startNs;
            std::printf("[%s %.0fus] ", lastKey.c_str(),
                        (end - segStart) * 1e-3);
        }
        if (i < result.timeline.size() && flush) {
            lastKey = result.timeline[i].device + "/" +
                      result.timeline[i].phase;
            segStart = result.timeline[i].startNs;
        }
    }
    std::printf("\n");
}

} // namespace

static int
run(int argc, char **argv)
{
    bench::JsonScope json("fig4_lintrans_pim", argc, argv);
    bench::header("Fig. 4a — linear transform (K=8, hoisting) on A100: "
                  "GPU-only vs 4x-BW DRAM vs PIM");

    const TraceParams params;
    const OpSequence lt =
        buildLinearTransform(params, 8, TraceLtAlgorithm::Hoisting);

    AnaheimConfig gpuOnly = AnaheimConfig::a100NearBank();
    gpuOnly.pimEnabled = false;
    const auto resultGpu = AnaheimFramework(gpuOnly).execute(lt);

    AnaheimConfig fourX = gpuOnly;
    fourX.gpu.dramBwGBs *= 4.0;
    const auto result4x = AnaheimFramework(fourX).execute(lt);

    const AnaheimConfig withPim = AnaheimConfig::a100NearBank();
    const auto resultPim = AnaheimFramework(withPim).execute(lt);

    printGantt("w/o PIM", resultGpu);
    printGantt("4x BW DRAM", result4x);
    printGantt("PIM", resultPim);
    std::printf("  speedups: 4x-BW %.2fx, PIM %.2fx\n",
                resultGpu.totalNs / result4x.totalNs,
                resultGpu.totalNs / resultPim.totalNs);
    json.report().metric("lt_speedup_4xbw",
                         resultGpu.totalNs / result4x.totalNs);
    json.report().metric("lt_speedup_pim",
                         resultGpu.totalNs / resultPim.totalNs);
    bench::note("paper: 4x BW helps element-wise ops 2.84x but barely "
                "touches ModSwitch; PIM obtains similar gains without "
                "raising external bandwidth");

    bench::header("Fig. 4b — bootstrapping GPU-side DRAM access and "
                  "DRAM energy");
    const OpSequence boot = makeBootWorkload();
    const auto bootGpu = AnaheimFramework(gpuOnly).execute(boot);
    const auto bootPim = AnaheimFramework(withPim).execute(boot);

    // Ideal: unlimited cache, MinKS (only compulsory evk/plaintext
    // misses).
    double idealBytes = 0.0;
    const OpSequence bootMinKs =
        buildBootstrap(params, 3.5, TraceLtAlgorithm::MinKS);
    {
        std::map<const void *, bool> seen;
        double evkOnce = 0.0;
        for (const auto &op : bootMinKs.ops) {
            for (const auto &operand : op.reads) {
                if (operand.kind == OperandKind::PlainConst)
                    idealBytes += operand.limbs * limbBytes(op.n);
            }
        }
        // One evk per distinct rotation; MinKS reuses a single one per
        // transform plus relinearization/conjugation keys: ~4 evks.
        evkOnce = 4.0 * 2.0 * params.digits() * params.extended() *
                  limbBytes(params.n);
        idealBytes += evkOnce;
    }

    std::printf("  %-12s %14s %14s\n", "Config", "GPU DRAM", "energy");
    std::printf("  %-12s %14s %12.3fJ\n", "w/o PIM",
                formatBytes(bootGpu.gpuDramBytes).c_str(),
                bootGpu.energyJoules());
    std::printf("  %-12s %14s %12.3fJ  (+%s PIM-internal)\n", "PIM",
                formatBytes(bootPim.gpuDramBytes).c_str(),
                bootPim.energyJoules(),
                formatBytes(bootPim.pimInternalBytes).c_str());
    std::printf("  %-12s %14s\n", "ideal", formatBytes(idealBytes).c_str());
    std::printf("  reduction: %.2fx vs baseline (paper: 6.15x); "
                "PIM vs ideal: %.2fx (paper: 1.86x); energy %.2fx "
                "(paper: 2.87x DRAM energy)\n",
                bootGpu.gpuDramBytes / bootPim.gpuDramBytes,
                bootPim.gpuDramBytes / idealBytes,
                bootGpu.energyJoules() / bootPim.energyJoules());
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_fig4_lintrans_pim",
                          [&] { return run(argc, argv); });
}

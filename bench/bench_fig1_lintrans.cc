/**
 * Fig. 1 (table): evk / plaintext footprints, (I)NTT op counts and
 * cache requirements for a collection of linear transforms
 * (CoeffToSlot) under Base / Hoisting / MinKS.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/status.h"
#include "common/units.h"
#include "trace/counting.h"

using namespace anaheim;

static int
run(int argc, char **argv)
{
    bench::JsonScope json("fig1_lintrans", argc, argv);
    bench::header("Fig. 1 table — linear-transform algorithm comparison "
                  "(CoeffToSlot, D=4, K=8 per transform)");

    const TraceParams params; // N=2^16, L=54, alpha=14
    const size_t transforms = 4; // CoeffToSlot at fftIter ~ 4
    const size_t k = 8;

    std::printf("%-10s %14s %16s %12s %14s\n", "Algorithm", "evk bytes",
                "plaintext bytes", "(I)NTT ops", "cache needed");
    struct Row {
        const char *name;
        TraceLtAlgorithm algorithm;
    };
    const Row rows[] = {
        {"Base", TraceLtAlgorithm::Base},
        {"Hoisting", TraceLtAlgorithm::Hoisting},
        {"MinKS", TraceLtAlgorithm::MinKS},
    };
    double baseNtt = 0.0, hoistNtt = 0.0;
    double hoistEvk = 0.0, minKsEvk = 0.0;
    for (const auto &row : rows) {
        const auto costs =
            analyzeLinearTransforms(params, transforms, k, row.algorithm);
        std::printf("%-10s %14s %16s %12.0f %14s\n", row.name,
                    formatBytes(costs.evkBytes).c_str(),
                    formatBytes(costs.plaintextBytes).c_str(),
                    costs.nttOps, formatBytes(costs.cacheBytes).c_str());
        if (row.algorithm == TraceLtAlgorithm::Base)
            baseNtt = costs.nttOps;
        if (row.algorithm == TraceLtAlgorithm::Hoisting) {
            hoistNtt = costs.nttOps;
            hoistEvk = costs.evkBytes;
        }
        if (row.algorithm == TraceLtAlgorithm::MinKS)
            minKsEvk = costs.evkBytes;
    }

    std::printf("\n");
    bench::note("paper: hoisting cuts (I)NTT ops ~2.47x vs Base; "
                "MinKS needs ~4x fewer evks but ~217MB of cache");
    std::printf("  measured: (I)NTT reduction %.2fx, evk reduction "
                "(hoist/MinKS) %.2fx\n",
                baseNtt / hoistNtt, hoistEvk / minKsEvk);
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_fig1_lintrans",
                          [&] { return run(argc, argv); });
}

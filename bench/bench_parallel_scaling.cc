/**
 * @file
 * Host-side limb-parallel scaling: wall-clock time and speedup of the
 * parallelFor-threaded hot paths (multi-limb NTT, BConv, hybrid
 * keyswitch, and the bootstrap DFT-factor build) at 1/2/4/8 threads.
 *
 * Also verifies the engine's determinism guarantee end to end: the
 * output at every thread count is compared bitwise against the
 * single-thread run. Speedups depend on the machine's core count —
 * on a single-core host all configurations legitimately report ~1x.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "boot/dft.h"
#include "ckks/keys.h"
#include "ckks/keyswitch.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "math/kernels.h"
#include "poly/polynomial.h"
#include "rns/bconv.h"

namespace anaheim {
namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** Best-of-3 wall time of fn(), in milliseconds. */
template <typename Fn>
double
bestMs(Fn &&fn)
{
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = Clock::now();
        fn();
        best = std::min(best, msSince(start));
    }
    return best;
}

Polynomial
randomPolynomial(const RnsBasis &basis, uint64_t seed, Domain domain)
{
    Rng rng(seed);
    Polynomial p(basis, domain);
    for (size_t i = 0; i < basis.size(); ++i)
        p.limb(i) = sampleUniform(rng, basis.degree(), basis.prime(i));
    return p;
}

struct OpResult {
    double ms = 0.0;
    bool identical = true; // vs the 1-thread reference output
};

struct OpRow {
    std::string name;
    std::vector<OpResult> results; // one per thread configuration
};

void
printTable(const std::vector<size_t> &threadCounts,
           const std::vector<OpRow> &rows)
{
    std::printf("  %-22s", "op");
    for (size_t t : threadCounts)
        std::printf("  %7zu thr", t);
    std::printf("   identical\n");
    for (const auto &row : rows) {
        std::printf("  %-22s", row.name.c_str());
        for (const auto &r : row.results)
            std::printf("  %8.2f ms", r.ms);
        bool allSame = true;
        for (const auto &r : row.results)
            allSame = allSame && r.identical;
        std::printf("   %s\n", allSame ? "yes" : "NO");
        std::printf("  %-22s", "  speedup");
        const double base = row.results.front().ms;
        for (const auto &r : row.results)
            std::printf("  %8.2fx  ", r.ms > 0 ? base / r.ms : 0.0);
        std::printf("\n");
    }
}

} // namespace
} // namespace anaheim

static int
run(int argc, char **argv)
{
    using namespace anaheim;

    bench::JsonScope json("parallel_scaling", argc, argv);
    // Headline numbers depend on which NTT kernel backend dispatch
    // resolved to; stamp it into the JSON so cross-machine trend
    // comparisons do not mix SIMD tiers.
    const char *backend = kernels::backendName(kernels::activeBackend());
    json.report().metric("backend", backend);
    bench::header("Parallel scaling of host CKKS hot paths "
                  "(N = 2^14, L = 8)");
    bench::note("best-of-3 wall time; speedup relative to 1 thread; "
                "outputs checked bitwise against the 1-thread run");
    std::printf("  hardware threads available: %zu\n", defaultThreadCount());
    std::printf("  ntt kernel backend: %s\n\n", backend);

    const std::vector<size_t> threadCounts = {1, 2, 4, 8};

    // Shared setup (thread count does not affect any of this).
    const size_t n = size_t{1} << 14;
    const CkksContext context(CkksParams::testParams(n, 8, 2));
    const auto nttInput = randomPolynomial(context.qBasis(), 42,
                                           Domain::Coeff);
    const BasisConverter bconv(context.qBasis(), context.pBasis());
    Rng rng(7);
    std::vector<CoeffVector> bconvInput(context.qBasis().size());
    for (size_t i = 0; i < bconvInput.size(); ++i) {
        bconvInput[i] = sampleUniform(rng, n, context.qBasis().prime(i));
    }
    KeyGenerator keygen(context, 7);
    const EvalKey evk = keygen.makeRelinKey();
    const KeySwitcher switcher(context);
    const auto ksInput = randomPolynomial(context.qBasis(), 43,
                                          Domain::Eval);
    const DftPlan dftPlan(size_t{1} << 10, 2);

    std::vector<OpRow> rows(4);
    rows[0].name = "NTT (toEval, 8 limbs)";
    rows[1].name = "BConv (8 -> 2 limbs)";
    rows[2].name = "keyswitch (hybrid)";
    rows[3].name = "boot DFT factors";

    // 1-thread reference outputs for the bitwise-identity check.
    Polynomial nttRef;
    std::vector<CoeffVector> bconvRef;
    Polynomial ksRef0, ksRef1;
    std::vector<DiagMatrix> dftRef;

    for (size_t cfg = 0; cfg < threadCounts.size(); ++cfg) {
        setParallelThreads(threadCounts[cfg]);

        Polynomial nttOut;
        rows[0].results.push_back({bestMs([&] {
                                       nttOut = nttInput;
                                       nttOut.toEval();
                                   }),
                                   true});

        std::vector<CoeffVector> bconvOut;
        rows[1].results.push_back(
            {bestMs([&] { bconvOut = bconv.convert(bconvInput); }), true});

        std::pair<Polynomial, Polynomial> ksOut;
        rows[2].results.push_back(
            {bestMs([&] { ksOut = switcher.keySwitch(ksInput, evk); }),
             true});

        std::vector<DiagMatrix> dftOut;
        rows[3].results.push_back(
            {bestMs([&] { dftOut = dftPlan.coeffToSlotFactors(1.0); }),
             true});

        if (cfg == 0) {
            nttRef = nttOut;
            bconvRef = bconvOut;
            ksRef0 = ksOut.first;
            ksRef1 = ksOut.second;
            dftRef = std::move(dftOut);
        } else {
            rows[0].results[cfg].identical = nttOut == nttRef;
            rows[1].results[cfg].identical = bconvOut == bconvRef;
            rows[2].results[cfg].identical =
                ksOut.first == ksRef0 && ksOut.second == ksRef1;
            bool dftSame = dftOut.size() == dftRef.size();
            for (size_t f = 0; dftSame && f < dftOut.size(); ++f)
                dftSame = dftOut[f].diagonals() == dftRef[f].diagonals();
            rows[3].results[cfg].identical = dftSame;
        }
    }
    setParallelThreads(defaultThreadCount());

    printTable(threadCounts, rows);
    for (const auto &row : rows) {
        json.report().beginRow();
        json.report().rowMetric("op", row.name);
        for (size_t cfg = 0; cfg < threadCounts.size(); ++cfg) {
            json.report().rowMetric(
                "ms_" + std::to_string(threadCounts[cfg]) + "thr",
                row.results[cfg].ms);
            json.report().rowMetric(
                "identical_" + std::to_string(threadCounts[cfg]) + "thr",
                row.results[cfg].identical ? "yes" : "no");
        }
    }
    bench::note("");
    bench::note("limb/column partitioning only — no accumulation-order "
                "changes, so 'identical' must read yes everywhere");
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return anaheim::runGuardedMain("bench_parallel_scaling",
                          [&] { return run(argc, argv); });
}

/**
 * Fig. 2b: T_boot,eff breakdown on A100 80GB and RTX 4090 as the
 * decomposition number D varies (hoisting, Cheddar).
 */

#include <cstdio>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/status.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

void
sweep(const AnaheimConfig &base, const char *gpuName)
{
    std::printf("\n-- %s --\n", gpuName);
    std::printf("%-4s %6s %6s | %10s %10s %10s %10s | %12s\n", "D", "L",
                "alpha", "EW ms", "NTT ms", "BConv ms", "Aut ms",
                "T_boot,eff");
    for (size_t d : {2u, 3u, 4u, 6u}) {
        const TraceParams params = TraceParams::forDnum(d);
        // The RTX 4090's 24GB cannot hold the D=6 evk working set
        // (§VII-B reports OoM).
        const double evkWorkingSetGb =
            40.0 * 2.0 * d * params.extended() * limbBytes(params.n) / 1e9;
        // ~40 resident rotation/relin keys plus plaintexts, ciphertexts
        // and framework overhead exhaust 24GB once the keys alone pass
        // ~8GB — the D=6 OoM of §VII-B.
        if (base.dram.capacityBytes < 30e9 && evkWorkingSetGb > 8.0) {
            std::printf("%-4zu %6zu %6zu | %43s | %12s\n", d, params.level,
                        params.alpha, "", "OoM");
            continue;
        }
        AnaheimConfig config = base;
        config.pimEnabled = false;
        const OpSequence boot =
            buildBootstrap(params, 3.5, TraceLtAlgorithm::Hoisting);
        const auto result = AnaheimFramework(config).execute(boot);
        const double leff = bootstrapLevelsEff(params, 3.5);
        auto ms = [&](const char *cat) {
            const auto it = result.timeNsByCategory.find(cat);
            return it == result.timeNsByCategory.end() ? 0.0
                                                       : it->second * 1e-6;
        };
        std::printf("%-4zu %6zu %6zu | %10.2f %10.2f %10.2f %10.2f | "
                    "%10.2fms\n",
                    d, params.level, params.alpha, ms("ElementWise"),
                    ms("(I)NTT"), ms("BConv"), ms("Automorphism"),
                    result.totalNs * 1e-6 / leff);
    }
}

} // namespace

static int
run(int argc, char **argv)
{
    bench::JsonScope json("fig2b_dnum", argc, argv);
    bench::header("Fig. 2b — T_boot,eff breakdown vs decomposition "
                  "number D (hoisting, Cheddar, no PIM)");
    sweep(AnaheimConfig::a100NearBank(), "A100 80GB");
    sweep(AnaheimConfig::rtx4090NearBank(), "RTX 4090");
    std::printf("\n");
    bench::note("paper: element-wise ops reach 45-48%% of bootstrapping "
                "on A100 and 68-69%% on RTX 4090 regardless of D; the "
                "4090 goes OoM at D=6");
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_fig2b_dnum",
                          [&] { return run(argc, argv); });
}

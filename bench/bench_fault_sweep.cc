/**
 * @file
 * BER sweep of the PIM resilience layer, ECC on vs off.
 *
 * Part 1 drives the functional unit's word-read path directly: a
 * PMULT-sized multiply at each BER, counting faulty/corrected/
 * uncorrectable/silent words and comparing against the fault-free
 * golden output (exact-output rate is the headline).
 *
 * Part 2 runs the HMULT trace through the full framework and reports
 * the recovery machinery's cost: retries, GPU fallbacks, and the
 * time/energy overhead relative to the fault-free run.
 *
 * Flags:
 *   --ber=X         sweep only this raw bit-error rate
 *   --fault-seed=S  fault-site seed (identical seeds => identical runs)
 *   --ecc=on|off    restrict to one ECC setting (default: both)
 *   --smoke         small vectors / short sweep for ctest
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "math/primes.h"
#include "pim/functional.h"
#include "sim/readpath.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

struct Options {
    std::vector<double> bers{1e-7, 1e-6, 1e-5, 1e-4, 1e-3};
    uint64_t seed = 0x0ddfa117u;
    bool runEccOn = true;
    bool runEccOff = true;
    size_t words = 1u << 16;
    bool smoke = false;
    std::string jsonPath;
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opts.smoke = true;
            opts.bers = {1e-4};
            opts.words = 1u << 12;
        } else if (arg.rfind("--ber=", 0) == 0) {
            opts.bers = {std::strtod(arg.c_str() + 6, nullptr)};
        } else if (arg.rfind("--fault-seed=", 0) == 0) {
            opts.seed = std::strtoull(arg.c_str() + 13, nullptr, 0);
        } else if (arg == "--ecc=on") {
            opts.runEccOff = false;
        } else if (arg == "--ecc=off") {
            opts.runEccOn = false;
        } else if (arg == "--json" && i + 1 < argc) {
            opts.jsonPath = argv[++i];
        } else if ((arg == "--trace" || arg == "--metrics") &&
                   i + 1 < argc) {
            ++i; // handled by bench::JsonScope
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            std::exit(2);
        }
    }
    return opts;
}

void
functionalSweep(const Options &opts, bench::JsonReport &report)
{
    bench::header("Functional PIM read path: word outcomes per BER "
                  "(SEC-DED (39,32), " +
                  std::to_string(opts.words) + " words/operand)");

    const uint64_t q = generateNttPrimes(1024, 28, 1)[0];
    PimFunctionalUnit unit(q);
    Rng rng(7);
    PimVector a(opts.words), b(opts.words);
    for (auto &w : a)
        w = static_cast<uint32_t>(rng.uniform(q));
    for (auto &w : b)
        w = static_cast<uint32_t>(rng.uniform(q));
    const PimVector golden = unit.mult(a, b);

    std::printf("%-10s %-4s %12s %10s %10s %8s %8s %11s\n", "BER", "ECC",
                "words", "faulty", "corrected", "uncorr", "silent",
                "out-errors");
    for (const double ber : opts.bers) {
        for (const bool ecc : {true, false}) {
            if ((ecc && !opts.runEccOn) || (!ecc && !opts.runEccOff))
                continue;
            FaultConfig faults;
            faults.ber = ber;
            faults.seed = opts.seed;
            PimReadPath path(faults, ecc);
            unit.attachReadPath(&path);
            const PimVector out = unit.mult(a, b);
            unit.attachReadPath(nullptr);

            size_t outputErrors = 0;
            for (size_t i = 0; i < out.size(); ++i)
                outputErrors += out[i] != golden[i];
            const auto &c = path.counters();
            std::printf("%-10.1e %-4s %12llu %10llu %10llu %8llu %8llu "
                        "%11zu\n",
                        ber, ecc ? "on" : "off",
                        static_cast<unsigned long long>(c.wordsRead),
                        static_cast<unsigned long long>(c.faultyWords),
                        static_cast<unsigned long long>(c.corrected),
                        static_cast<unsigned long long>(c.uncorrectable),
                        static_cast<unsigned long long>(c.silent),
                        outputErrors);
            report.beginRow();
            report.rowMetric("sweep", "functional");
            report.rowMetric("ber", ber);
            report.rowMetric("ecc", ecc ? "on" : "off");
            report.rowMetric("words_read",
                             static_cast<double>(c.wordsRead));
            report.rowMetric("faulty_words",
                             static_cast<double>(c.faultyWords));
            report.rowMetric("corrected", static_cast<double>(c.corrected));
            report.rowMetric("uncorrectable",
                             static_cast<double>(c.uncorrectable));
            report.rowMetric("silent", static_cast<double>(c.silent));
            report.rowMetric("output_errors",
                             static_cast<double>(outputErrors));
        }
    }
    bench::note("with ECC on, every single-bit upset is repaired in "
                "place: out-errors stays 0 until double-bit events "
                "appear (~BER^2 per 39-bit word)");
}

void
frameworkSweep(const Options &opts, bench::JsonReport &report)
{
    bench::header("Framework HMULT under faults: retry/fallback cost "
                  "per BER (A100 near-bank PIM)");

    const TraceParams params;
    const OpSequence seq = buildHMult(params);

    AnaheimConfig clean = AnaheimConfig::a100NearBank();
    const RunResult base = AnaheimFramework(clean).execute(seq);

    std::printf("%-10s %-4s %10s %10s %10s %8s %10s %10s %10s\n", "BER",
                "ECC", "corrected", "uncorr", "silent", "retries",
                "fallbacks", "time-ovhd", "energy-ovhd");
    for (const double ber : opts.bers) {
        for (const bool ecc : {true, false}) {
            if ((ecc && !opts.runEccOn) || (!ecc && !opts.runEccOff))
                continue;
            AnaheimConfig config = AnaheimConfig::a100NearBank();
            config.resilience.ber = ber;
            config.resilience.faultSeed = opts.seed;
            config.resilience.eccEnabled = ecc;
            const RunResult run = AnaheimFramework(config).execute(seq);
            const auto &r = run.resilience;
            const double timeOvhd =
                100.0 * (run.totalNs - base.totalNs) / base.totalNs;
            const double energyOvhd =
                100.0 * (run.energyPj - base.energyPj) / base.energyPj;
            std::printf(
                "%-10.1e %-4s %10llu %10llu %10llu %8llu %10llu %9.2f%% "
                "%9.2f%%\n",
                ber, ecc ? "on" : "off",
                static_cast<unsigned long long>(r.eccCorrected),
                static_cast<unsigned long long>(r.eccUncorrectable),
                static_cast<unsigned long long>(r.silentErrors),
                static_cast<unsigned long long>(r.pimRetries),
                static_cast<unsigned long long>(r.gpuFallbacks),
                timeOvhd, energyOvhd);
            report.beginRow();
            report.rowMetric("sweep", "framework");
            report.rowMetric("ber", ber);
            report.rowMetric("ecc", ecc ? "on" : "off");
            report.rowMetric("faulty_words",
                             static_cast<double>(r.faultyWords));
            report.rowMetric("ecc_corrected",
                             static_cast<double>(r.eccCorrected));
            report.rowMetric("ecc_uncorrectable",
                             static_cast<double>(r.eccUncorrectable));
            report.rowMetric("silent_errors",
                             static_cast<double>(r.silentErrors));
            report.rowMetric("pim_retries",
                             static_cast<double>(r.pimRetries));
            report.rowMetric("gpu_fallbacks",
                             static_cast<double>(r.gpuFallbacks));
            report.rowMetric("time_overhead_pct", timeOvhd);
            report.rowMetric("energy_overhead_pct", energyOvhd);
        }
    }
    bench::note("ECC off never detects, so timing matches the clean run "
                "and all faults land as silent errors; ECC on pays "
                "replays, then a GPU fallback once the retry budget "
                "(default 2) is spent");
}

} // namespace

int
main(int argc, char **argv)
{
    // An out-of-range --ber / --fault-seed raises AnaheimError from the
    // fault-model validation; report it cleanly instead of aborting.
    return runGuardedMain("bench_fault_sweep", [&] {
        const Options opts = parseOptions(argc, argv);
        bench::JsonScope json("fault_sweep", argc, argv);
        json.report().metric("smoke", opts.smoke ? "yes" : "no");
        json.report().metric("fault_seed", static_cast<double>(opts.seed));
        functionalSweep(opts, json.report());
        frameworkSweep(opts, json.report());
        if (opts.smoke)
            bench::note("smoke mode: reduced vector sizes and BER list");
        return 0;
    });
}

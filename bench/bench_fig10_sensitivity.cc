/**
 * Fig. 10: sensitivity of the algorithmic contributions — incremental
 * kernel fusion on the GPU baseline (+BasicFuse, +ExtraFuse) and on
 * Anaheim (+BasicFuse, +AutFuse), plus the column-partitioning data
 * layout ablation (w/o CP).
 */

#include <cstdio>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/status.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

double
elementWiseMs(const RunResult &result)
{
    double ms = 0.0;
    for (const auto &[cat, ns] : result.timeNsByCategory) {
        if (cat == "ElementWise" || cat == "PIM")
            ms += ns * 1e-6;
    }
    return ms;
}

void
sweep(AnaheimConfig gpuConfig, const char *name)
{
    std::printf("\n-- %s --\n", name);
    const TraceParams params;
    std::printf("%-22s %12s %12s %12s\n", "Configuration", "total ms",
                "EW/PIM ms", "vs prev");

    auto boot = [&](bool basicFuse, bool autFuse) {
        TraceOptions options;
        options.basicFuse = basicFuse;
        options.autFuse = autFuse;
        return buildBootstrap(params, 3.5, TraceLtAlgorithm::Hoisting,
                              options);
    };

    double prev = 0.0;
    auto row = [&](const char *label, const AnaheimConfig &config,
                   const OpSequence &seq) {
        const auto result = AnaheimFramework(config).execute(seq);
        const double total = result.totalNs * 1e-6;
        std::printf("%-22s %12.2f %12.2f", label, total,
                    elementWiseMs(result));
        if (prev > 0.0)
            std::printf(" %10.2fx", prev / total);
        std::printf("\n");
        prev = total;
        return result;
    };

    // GPU-only arm.
    AnaheimConfig base = gpuConfig;
    base.pimEnabled = false;
    base.fusion.extraFuse = false;
    prev = 0.0;
    row("Base (GPU)", base, boot(false, false));
    row("+BasicFuse (GPU)", base, boot(true, false));
    AnaheimConfig extra = base;
    extra.fusion.extraFuse = true;
    row("+ExtraFuse (GPU)", extra, boot(true, false));

    // Anaheim arm.
    AnaheimConfig pim = gpuConfig;
    pim.pimEnabled = true;
    pim.fusion.extraFuse = true;
    prev = 0.0;
    row("PIM-Base", pim, boot(false, false));
    row("PIM +BasicFuse", pim, boot(true, false));
    row("PIM +AutFuse", pim, boot(true, true));

    // Column-partitioning ablation on the full configuration.
    AnaheimConfig noCp = pim;
    noCp.pim.columnPartition = false;
    const auto withCp = AnaheimFramework(pim).execute(boot(true, true));
    const auto withoutCp =
        AnaheimFramework(noCp).execute(boot(true, true));
    std::printf("%-22s %12.2f %12.2f  (element-wise %.2fx slower)\n",
                "PIM w/o CP layout", withoutCp.totalNs * 1e-6,
                elementWiseMs(withoutCp),
                elementWiseMs(withoutCp) / elementWiseMs(withCp));

    // (No) pipelining, §V-C: upper bound on what overlapping PIM and
    // GPU kernels could still gain — with perfect overlap the critical
    // path is max(GPU time, PIM time).
    const double pimMs =
        withCp.timeNsByCategory.count("PIM")
            ? withCp.timeNsByCategory.at("PIM") * 1e-6
            : 0.0;
    const double gpuMs = withCp.totalNs * 1e-6 - pimMs;
    const double pipelined = std::max(gpuMs, pimMs);
    std::printf("%-22s %12.2f %12s  (upper bound: only %.1f%% left for "
                "pipelining)\n",
                "PIM + ideal pipeline", pipelined, "-",
                100.0 * (withCp.totalNs * 1e-6 - pipelined) /
                    (withCp.totalNs * 1e-6));
}

} // namespace

static int
run(int argc, char **argv)
{
    bench::JsonScope json("fig10_sensitivity", argc, argv);
    bench::header("Fig. 10 — fusion and data-layout sensitivity "
                  "(bootstrapping)");
    bench::reportConfig(json.report(), AnaheimConfig::a100NearBank());
    sweep(AnaheimConfig::a100NearBank(), "A100 80GB near-bank");
    sweep(AnaheimConfig::rtx4090NearBank(), "RTX 4090 near-bank");
    std::printf("\n");
    bench::note("paper: fusions cut element-wise time 27-37%% on the "
                "GPU and 40-57%% on Anaheim (A100); AutFuse adds "
                "1.01-1.09x; w/o CP the element-wise time is 2.24x "
                "(A100) / 2.11x (4090) slower, nullifying the gains");
    return 0;
}

int
main(int argc, char **argv)
{
    // Recoverable library errors (bad traces, infeasible
    // parameters) surface as AnaheimError; report them
    // cleanly instead of aborting.
    return runGuardedMain("bench_fig10_sensitivity",
                          [&] { return run(argc, argv); });
}

/**
 * @file
 * Shared helpers for the figure-regeneration benches: table printing and
 * machine-readable JSON output. Every bench prints the same rows/series
 * the paper reports, with the paper's published values alongside where
 * available so shape fidelity is auditable (EXPERIMENTS.md records the
 * comparison), and accepts `--json <path>` to additionally emit its key
 * metrics as a JSON document so the perf trajectory stays comparable
 * across PRs (e.g. BENCH_ntt.json from bench_ntt_kernels).
 *
 * Every bench also accepts, for free via JsonScope:
 *   --trace <path>    enable host-span tracing for the whole run and
 *                     write a Chrome trace-event / Perfetto JSON file
 *                     merging host spans with every simulated timeline
 *   --metrics <path>  dump the global metrics registry on exit
 *                     (JSON, or CSV when the path ends in .csv)
 *   --prom <path>     dump the metrics registry plus every recorded
 *                     time series as Prometheus text exposition
 * and each --json document opens with a self-describing header block
 * (schema version, git SHA, build type, thread count).
 */

#ifndef ANAHEIM_BENCH_UTIL_H
#define ANAHEIM_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace anaheim::bench {

inline void
header(const std::string &title)
{
    std::printf("\n==================================================="
                "===========================\n");
    std::printf("%s\n", title.c_str());
    std::printf("====================================================="
                "=========================\n");
}

inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

/** Path following `--<flag> <path>` in argv, or "" when absent. */
inline std::string
pathFromArgs(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return argv[i + 1];
    }
    return "";
}

/** Path following a `--json` flag in argv, or "" when absent. */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    return pathFromArgs(argc, argv, "--json");
}

/**
 * Tiny structured-result collector: top-level metrics plus an optional
 * array of row objects, serialized as one JSON document. Values are
 * either numbers or strings; insertion order is preserved so diffs of
 * successive runs stay readable.
 *
 *   JsonReport report("ntt_kernels");
 *   report.metric("machine_threads", 4);
 *   report.beginRow();
 *   report.rowMetric("n", 4096);
 *   report.rowMetric("speedup", 3.1);
 *   report.write(path); // no-op when path is empty
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string benchName)
        : benchName_(std::move(benchName))
    {
    }

    void
    metric(const std::string &key, double value)
    {
        metrics_.emplace_back(key, encodeNumber(value));
    }

    void
    metric(const std::string &key, const std::string &value)
    {
        metrics_.emplace_back(key, encodeString(value));
    }

    /** Start a new entry in the "rows" array; subsequent rowMetric()
     *  calls populate it. */
    void beginRow() { rows_.emplace_back(); }

    void
    rowMetric(const std::string &key, double value)
    {
        rows_.back().emplace_back(key, encodeNumber(value));
    }

    void
    rowMetric(const std::string &key, const std::string &value)
    {
        rows_.back().emplace_back(key, encodeString(value));
    }

    /** Serialize to `path`; returns false (silently) for an empty path,
     *  prints a warning and returns false when the file can't open. */
    bool
    write(const std::string &path) const
    {
        if (path.empty())
            return false;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "bench: cannot write JSON to %s\n",
                         path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"bench\": %s",
                     encodeString(benchName_).c_str());
        // Self-describing header: every bench JSON states which commit,
        // build type, and thread count produced it.
        for (const auto &[key, value] : obs::exportHeader()) {
            std::fprintf(f, ",\n  %s: %s", encodeString(key).c_str(),
                         encodeString(value).c_str());
        }
        for (const auto &[key, encoded] : metrics_) {
            std::fprintf(f, ",\n  %s: %s", encodeString(key).c_str(),
                         encoded.c_str());
        }
        if (!rows_.empty()) {
            std::fprintf(f, ",\n  \"rows\": [");
            for (size_t r = 0; r < rows_.size(); ++r) {
                std::fprintf(f, "%s\n    {", r == 0 ? "" : ",");
                for (size_t k = 0; k < rows_[r].size(); ++k) {
                    std::fprintf(f, "%s%s: %s", k == 0 ? "" : ", ",
                                 encodeString(rows_[r][k].first).c_str(),
                                 rows_[r][k].second.c_str());
                }
                std::fprintf(f, "}");
            }
            std::fprintf(f, "\n  ]");
        }
        std::fprintf(f, "\n}\n");
        std::fclose(f);
        std::printf("  JSON written to %s\n", path.c_str());
        return true;
    }

  private:
    static std::string
    encodeNumber(double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.10g", value);
        return buf;
    }

    static std::string
    encodeString(const std::string &value)
    {
        std::string out = "\"";
        for (char c : value) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        out += '"';
        return out;
    }

    std::string benchName_;
    std::vector<std::pair<std::string, std::string>> metrics_;
    std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/**
 * One-line `--json`/`--trace`/`--metrics` support for a bench main:
 * declares a JsonReport, times the whole run, enables host-span tracing
 * for the scope's lifetime when `--trace <path>` is given, and on
 * destruction appends `total_ms`, writes the JSON document (`--json
 * <path>`), the Chrome trace (`--trace <path>`), and the metrics dump
 * (`--metrics <path>`). All three are no-ops without their flag.
 *
 *   int main(int argc, char **argv) {
 *       bench::JsonScope json("fig1_lintrans", argc, argv);
 *       ...
 *       json.report().metric("speedup", s); // optional extras
 *   }
 */
class JsonScope
{
  public:
    JsonScope(std::string benchName, int argc, char **argv)
        : report_(std::move(benchName)),
          path_(jsonPathFromArgs(argc, argv)),
          tracePath_(pathFromArgs(argc, argv, "--trace")),
          metricsPath_(pathFromArgs(argc, argv, "--metrics")),
          promPath_(pathFromArgs(argc, argv, "--prom")),
          start_(std::chrono::steady_clock::now())
    {
        if (!tracePath_.empty())
            obs::setTracingEnabled(true);
    }

    ~JsonScope()
    {
        if (!tracePath_.empty()) {
            if (obs::writeChromeTrace(tracePath_))
                std::printf("  trace written to %s\n", tracePath_.c_str());
        }
        if (!metricsPath_.empty()) {
            if (obs::writeMetrics(metricsPath_))
                std::printf("  metrics written to %s\n",
                            metricsPath_.c_str());
        }
        if (!promPath_.empty()) {
            if (obs::writePrometheus(promPath_))
                std::printf("  prometheus text written to %s\n",
                            promPath_.c_str());
        }
        if (path_.empty())
            return;
        const double totalMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start_)
                .count();
        report_.metric("total_ms", totalMs);
        report_.write(path_);
    }

    JsonScope(const JsonScope &) = delete;
    JsonScope &operator=(const JsonScope &) = delete;

    JsonReport &report() { return report_; }

  private:
    JsonReport report_;
    std::string path_;
    std::string tracePath_;
    std::string metricsPath_;
    std::string promPath_;
    std::chrono::steady_clock::time_point start_;
};

/** Record the load-bearing knobs of a resolved AnaheimConfig into a
 *  report (one `config.<key>` metric each), so result JSON states the
 *  architecture point that produced it. */
inline void
reportConfig(JsonReport &report, const AnaheimConfig &config)
{
    for (const auto &[key, value] : obs::configSummary(config))
        report.metric("config." + key, value);
}

} // namespace anaheim::bench

#endif // ANAHEIM_BENCH_UTIL_H

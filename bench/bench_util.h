/**
 * @file
 * Shared table-printing helpers for the figure-regeneration benches.
 * Every bench prints the same rows/series the paper reports, with the
 * paper's published values alongside where available so shape fidelity
 * is auditable (EXPERIMENTS.md records the comparison).
 */

#ifndef ANAHEIM_BENCH_UTIL_H
#define ANAHEIM_BENCH_UTIL_H

#include <cstdio>
#include <string>

namespace anaheim::bench {

inline void
header(const std::string &title)
{
    std::printf("\n==================================================="
                "===========================\n");
    std::printf("%s\n", title.c_str());
    std::printf("====================================================="
                "=========================\n");
}

inline void
note(const std::string &text)
{
    std::printf("  %s\n", text.c_str());
}

} // namespace anaheim::bench

#endif // ANAHEIM_BENCH_UTIL_H

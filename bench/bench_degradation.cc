/**
 * @file
 * Monte Carlo permanent-fault degradation campaign: availability and
 * throughput vs permanent bank-failure rate.
 *
 * Each campaign cell fixes a per-bank permanent-failure probability,
 * samples `--trials` devices (each trial draws its own failed-bank set
 * from its fault seed), and runs a long chained-HMULT trace through
 * the full escalation ladder — ECC retry, checkpoint rollback/replay,
 * health-monitor quarantine + remap + replay, and GPU redirection once
 * healthy capacity falls under the configured floor. Reported per
 * cell: the mean failed/quarantined bank counts, migrations,
 * availability (the fraction of trials finishing with zero unrecovered
 * corruption), throughput relative to the fault-free run, the ending
 * healthy-capacity fraction, and the per-cause GPU fallback split.
 *
 * Flags:
 *   --rate=X         sweep only this permanent bank-failure rate
 *   --trials=N       Monte Carlo trials per cell (default 5)
 *   --repeats=N      HMULTs chained into the long trace (default 6)
 *   --fault-seed=S   base fault seed (trial t uses S + t * 1000003)
 *   --smoke          tiny grid / two trials for ctest
 *   --json <path>    machine-readable degradation curve
 *   --trace/--metrics <path>   Perfetto / metrics export
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "anaheim/framework.h"
#include "bench_util.h"
#include "common/status.h"
#include "obs/report.h"
#include "sim/fault.h"
#include "trace/builders.h"

using namespace anaheim;

namespace {

struct Options {
    std::vector<double> rates{0.0, 5e-4, 2e-3, 8e-3, 0.6};
    size_t trials = 5;
    size_t repeats = 6;
    uint64_t seed = 0x0ddfa117u;
    bool smoke = false;
};

Options
parseOptions(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opts.smoke = true;
            // One clean cell, one quarantine cell, one floor cell.
            opts.rates = {0.0, 2e-3, 0.6};
            opts.trials = 2;
            opts.repeats = 3;
        } else if (arg.rfind("--rate=", 0) == 0) {
            opts.rates = {std::strtod(arg.c_str() + 7, nullptr)};
        } else if (arg.rfind("--trials=", 0) == 0) {
            opts.trials = std::strtoull(arg.c_str() + 9, nullptr, 0);
        } else if (arg.rfind("--repeats=", 0) == 0) {
            opts.repeats = std::strtoull(arg.c_str() + 10, nullptr, 0);
        } else if (arg.rfind("--fault-seed=", 0) == 0) {
            opts.seed = std::strtoull(arg.c_str() + 13, nullptr, 0);
        } else if ((arg == "--json" || arg == "--trace" ||
                    arg == "--metrics") &&
                   i + 1 < argc) {
            ++i; // handled by bench::JsonScope
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            std::exit(2);
        }
    }
    return opts;
}

/** Degradation-campaign resilience policy: everything on. */
AnaheimConfig
campaignConfig(double rate, uint64_t faultSeed)
{
    AnaheimConfig config = AnaheimConfig::a100NearBank();
    ResilienceConfig &rc = config.resilience;
    // A small transient storage BER keeps the retry path honest next
    // to the permanent faults (quarantine must not trigger on it).
    rc.ber = 1e-7;
    rc.permanentBankRate = rate;
    rc.faultSeed = faultSeed;
    rc.checksumEnabled = true;
    rc.checkpoint.enabled = true;
    rc.checkpoint.intervalSegments = 8;
    rc.checkpoint.maxRollbacks = 32;
    rc.health.enabled = true;
    rc.health.permanentThreshold = 2;
    rc.health.minCapacityFraction = 0.5;
    return config;
}

struct CellResult {
    double failedBanks = 0.0;
    double quarantinedBanks = 0.0;
    double migrations = 0.0;
    double rollbacks = 0.0;
    double availability = 0.0;        ///< trials with zero unrecovered
    double capacityFraction = 0.0;    ///< ending healthy-bank fraction
    double throughputVsHealthy = 0.0; ///< healthy time / degraded time
    double offlineRate = 0.0;        ///< trials ending PIM-offline
    double fbRetryExhausted = 0.0;
    double fbUncheckpointed = 0.0;
    double fbCapacityFloor = 0.0;
};

CellResult
runCell(double rate, const Options &opts, const OpSequence &seq,
        const RunResult &base)
{
    CellResult out;
    for (size_t trial = 0; trial < opts.trials; ++trial) {
        const uint64_t seed = opts.seed + trial * 1000003ull;
        const AnaheimConfig config = campaignConfig(rate, seed);

        // The trial's device: count its failed banks directly from the
        // fault model (the run only reports what it quarantined).
        FaultConfig faults;
        faults.seed = seed;
        faults.permanentBankRate = rate;
        const size_t failed =
            rate > 0.0 ? FaultModel(faults)
                             .samplePermanentBanks(
                                 config.pim.dieGroups,
                                 config.pim.banksPerDieGroup)
                             .size()
                       : 0;

        const RunResult run = AnaheimFramework(config).execute(seq);
        const ResilienceStats &r = run.resilience;
        out.failedBanks += static_cast<double>(failed);
        out.quarantinedBanks += static_cast<double>(r.quarantinedBanks);
        out.migrations += static_cast<double>(r.migrations);
        out.rollbacks += static_cast<double>(r.rollbacks);
        out.availability += r.unrecovered == 0 ? 1.0 : 0.0;
        out.capacityFraction += run.pimCapacityFraction;
        out.throughputVsHealthy += base.totalNs / run.totalNs;
        out.offlineRate += run.pimOffline ? 1.0 : 0.0;
        out.fbRetryExhausted +=
            static_cast<double>(r.gpuFallbacksRetryExhausted);
        out.fbUncheckpointed +=
            static_cast<double>(r.gpuFallbacksUncheckpointed);
        out.fbCapacityFloor +=
            static_cast<double>(r.gpuFallbacksCapacityFloor);
    }
    const double trials = static_cast<double>(opts.trials);
    out.failedBanks /= trials;
    out.quarantinedBanks /= trials;
    out.migrations /= trials;
    out.rollbacks /= trials;
    out.availability /= trials;
    out.capacityFraction /= trials;
    out.throughputVsHealthy /= trials;
    out.offlineRate /= trials;
    out.fbRetryExhausted /= trials;
    out.fbUncheckpointed /= trials;
    out.fbCapacityFloor /= trials;
    return out;
}

} // namespace

static int
run(int argc, char **argv)
{
    const Options opts = parseOptions(argc, argv);
    bench::JsonScope json(opts.smoke ? "degradation_smoke"
                                     : "degradation",
                          argc, argv);
    json.report().metric("smoke", opts.smoke ? "yes" : "no");
    json.report().metric("trials", static_cast<double>(opts.trials));
    json.report().metric("repeats", static_cast<double>(opts.repeats));
    json.report().metric("fault_seed", static_cast<double>(opts.seed));
    bench::reportConfig(json.report(), campaignConfig(0.0, opts.seed));

    const TraceParams params;
    OpSequence seq = buildHMult(params);
    OpSequence one = seq;
    for (size_t r = 1; r < opts.repeats; ++r)
        seq.append(one);
    seq.name = "hmult_chain";

    // Healthy-device baseline under the same resilience policy, so
    // the throughput column isolates degradation (not the checkpoint /
    // checksum overhead, which bench_fault_campaign already reports).
    const RunResult base =
        AnaheimFramework(campaignConfig(0.0, opts.seed)).execute(seq);

    bench::header(
        "Permanent-fault degradation campaign (" +
        std::to_string(opts.repeats) + " chained HMULTs, " +
        std::to_string(opts.trials) +
        " trials/cell; ECC + checksums + checkpoint + health on)");

    std::printf("%-10s %8s %8s %7s %7s %7s %9s %9s %8s %9s\n", "rate",
                "failed", "quarant", "migr", "rbacks", "avail",
                "capacity", "thruput", "offline", "fb-floor");
    for (const double rate : opts.rates) {
        const CellResult res = runCell(rate, opts, seq, base);
        std::printf("%-10.1e %8.1f %8.1f %7.1f %7.1f %6.0f%% %9.4f "
                    "%8.3fx %7.0f%% %9.1f\n",
                    rate, res.failedBanks, res.quarantinedBanks,
                    res.migrations, res.rollbacks,
                    100.0 * res.availability, res.capacityFraction,
                    res.throughputVsHealthy, 100.0 * res.offlineRate,
                    res.fbCapacityFloor);
        bench::JsonReport &report = json.report();
        report.beginRow();
        report.rowMetric("permanent_bank_rate", rate);
        report.rowMetric("failed_banks", res.failedBanks);
        report.rowMetric("quarantined_banks", res.quarantinedBanks);
        report.rowMetric("migrations", res.migrations);
        report.rowMetric("rollbacks", res.rollbacks);
        report.rowMetric("availability", res.availability);
        report.rowMetric("capacity_fraction", res.capacityFraction);
        report.rowMetric("throughput_vs_healthy",
                         res.throughputVsHealthy);
        report.rowMetric("pim_offline_rate", res.offlineRate);
        report.rowMetric("gpu_fallbacks_retry_exhausted",
                         res.fbRetryExhausted);
        report.rowMetric("gpu_fallbacks_uncheckpointed",
                         res.fbUncheckpointed);
        report.rowMetric("gpu_fallbacks_capacity_floor",
                         res.fbCapacityFloor);
    }

    // End-of-run availability report for one representative trial of
    // the most degraded cell (also exercises the obs helper).
    const double worst = opts.rates.back();
    const RunResult sample =
        AnaheimFramework(campaignConfig(worst, opts.seed)).execute(seq);
    std::printf("\nAvailability report (rate %.1e, seed trial 0):\n",
                worst);
    obs::printAvailability(sample);

    bench::note("availability = fraction of trials finishing with zero "
                "unrecovered corruption; quarantine+remap keeps the "
                "device available until the healthy-bank capacity floor "
                "(0.5), past which PIM segments redirect to the GPU "
                "(fb-floor)");
    return 0;
}

int
main(int argc, char **argv)
{
    return runGuardedMain("bench_degradation",
                          [&] { return run(argc, argv); });
}

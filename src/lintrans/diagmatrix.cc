#include "diagmatrix.h"

#include <cmath>

#include "common/logging.h"

namespace anaheim {

std::vector<DiagMatrix::Complex> &
DiagMatrix::diagonal(size_t d)
{
    ANAHEIM_ASSERT(d < slots_, "diagonal index out of range");
    auto it = diags_.find(d);
    if (it == diags_.end())
        it = diags_.emplace(d, std::vector<Complex>(slots_, 0.0)).first;
    return it->second;
}

std::vector<DiagMatrix::Complex>
DiagMatrix::apply(const std::vector<Complex> &input) const
{
    ANAHEIM_ASSERT(input.size() == slots_, "vector size mismatch");
    std::vector<Complex> out(slots_, 0.0);
    for (const auto &[d, diag] : diags_) {
        for (size_t i = 0; i < slots_; ++i)
            out[i] += diag[i] * input[(i + d) % slots_];
    }
    return out;
}

DiagMatrix::Complex
DiagMatrix::at(size_t row, size_t col) const
{
    const size_t d = (col + slots_ - row) % slots_;
    const auto it = diags_.find(d);
    return it == diags_.end() ? Complex{0.0, 0.0} : it->second[row];
}

DiagMatrix
DiagMatrix::compose(const DiagMatrix &other) const
{
    ANAHEIM_ASSERT(slots_ == other.slots_, "slot count mismatch");
    // (this * other) diagonal e: sum over d1 + d2 = e (mod n) of
    // diag1_{d1}[i] * diag2_{d2}[(i + d1) mod n].
    DiagMatrix out(slots_);
    for (const auto &[d1, diag1] : diags_) {
        for (const auto &[d2, diag2] : other.diags_) {
            const size_t e = (d1 + d2) % slots_;
            auto &dst = out.diagonal(e);
            for (size_t i = 0; i < slots_; ++i)
                dst[i] += diag1[i] * diag2[(i + d1) % slots_];
        }
    }
    return out;
}

DiagMatrix &
DiagMatrix::scale(Complex factor)
{
    for (auto &[d, diag] : diags_) {
        (void)d;
        for (auto &v : diag)
            v *= factor;
    }
    return *this;
}

DiagMatrix
DiagMatrix::fromDense(const std::vector<std::vector<Complex>> &dense,
                      double tolerance)
{
    const size_t n = dense.size();
    DiagMatrix out(n);
    for (size_t d = 0; d < n; ++d) {
        double maxAbs = 0.0;
        for (size_t i = 0; i < n; ++i)
            maxAbs = std::max(maxAbs, std::abs(dense[i][(i + d) % n]));
        if (maxAbs <= tolerance)
            continue;
        auto &diag = out.diagonal(d);
        for (size_t i = 0; i < n; ++i)
            diag[i] = dense[i][(i + d) % n];
    }
    return out;
}

DiagMatrix
DiagMatrix::random(size_t slots, const std::vector<size_t> &diags, Rng &rng)
{
    DiagMatrix out(slots);
    for (size_t d : diags) {
        auto &diag = out.diagonal(d);
        for (auto &v : diag) {
            v = {2.0 * rng.uniformReal() - 1.0,
                 2.0 * rng.uniformReal() - 1.0};
        }
    }
    return out;
}

} // namespace anaheim

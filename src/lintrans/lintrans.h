/**
 * @file
 * Homomorphic linear transforms in the diagonal packing of [32], in the
 * algorithm variants §III-B of the paper contrasts:
 *
 *  - Base: one full HROT + PMULT per diagonal (K ModUps, K ModDowns).
 *  - Hoisting [8], [32]: ModUp once, per-diagonal automorphism/KeyMult,
 *    PMULT and accumulation in the extended modulus PQ, one ModDown.
 *  - MinKS [32], [46]: iterated rotation by one, reusing a single evk.
 *  - BSGS hoisting: baby-step/giant-step with hoisted baby rotations,
 *    the variant bootstrapping uses (footnote 1 of the paper).
 *
 * Hoisting and MinKS are mutually exclusive (Fig. 1); both are provided
 * so their trade-off can be reproduced functionally and measured by the
 * trace layer.
 */

#ifndef ANAHEIM_LINTRANS_LINTRANS_H
#define ANAHEIM_LINTRANS_LINTRANS_H

#include <vector>

#include "ckks/evaluator.h"
#include "diagmatrix.h"

namespace anaheim {

enum class LinTransAlgorithm { Base, Hoisting, MinKS, BsgsHoisting };

class LinearTransformer
{
  public:
    LinearTransformer(const CkksContext &context,
                      const CkksEncoder &encoder,
                      const CkksEvaluator &evaluator)
        : context_(context), encoder_(encoder), evaluator_(evaluator)
    {
    }

    /**
     * Evaluate matrix * ct homomorphically. The result carries scale
     * ct.scale * Delta and is NOT rescaled (callers fold rescaling into
     * their own level schedule).
     */
    Ciphertext apply(const Ciphertext &ct, const DiagMatrix &matrix,
                     const GaloisKeys &keys,
                     LinTransAlgorithm algorithm) const;

    /** Rotation distances whose Galois keys `apply` will look up. */
    static std::vector<int> requiredRotations(const DiagMatrix &matrix,
                                              LinTransAlgorithm algorithm);

    /** Baby-step count used by the BSGS variant for this matrix. */
    static size_t bsgsBabyCount(const DiagMatrix &matrix);

  private:
    Ciphertext applyBase(const Ciphertext &ct, const DiagMatrix &matrix,
                         const GaloisKeys &keys) const;
    Ciphertext applyHoisting(const Ciphertext &ct, const DiagMatrix &matrix,
                             const GaloisKeys &keys) const;
    Ciphertext applyMinKs(const Ciphertext &ct, const DiagMatrix &matrix,
                          const GaloisKeys &keys) const;
    Ciphertext applyBsgs(const Ciphertext &ct, const DiagMatrix &matrix,
                         const GaloisKeys &keys) const;

    const CkksContext &context_;
    const CkksEncoder &encoder_;
    const CkksEvaluator &evaluator_;
};

} // namespace anaheim

#endif // ANAHEIM_LINTRANS_LINTRANS_H

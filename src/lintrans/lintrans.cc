#include "lintrans.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"

namespace anaheim {

namespace {

using Complex = std::complex<double>;

/** Cyclically pre-rotate a diagonal vector by -shift (diag >>> shift),
 *  the plaintext preprocessing of §V-B. */
std::vector<Complex>
preRotate(const std::vector<Complex> &diag, size_t shift)
{
    const size_t n = diag.size();
    std::vector<Complex> out(n);
    for (size_t j = 0; j < n; ++j)
        out[j] = diag[(j + n - shift % n) % n];
    return out;
}

} // namespace

size_t
LinearTransformer::bsgsBabyCount(const DiagMatrix &matrix)
{
    size_t maxDiag = 0;
    for (const auto &[d, diag] : matrix.diagonals()) {
        (void)diag;
        maxDiag = std::max(maxDiag, d);
    }
    const auto span = static_cast<double>(maxDiag + 1);
    size_t b = static_cast<size_t>(std::ceil(std::sqrt(span)));
    return std::max<size_t>(b, 1);
}

std::vector<int>
LinearTransformer::requiredRotations(const DiagMatrix &matrix,
                                     LinTransAlgorithm algorithm)
{
    std::set<int> rotations;
    switch (algorithm) {
      case LinTransAlgorithm::Base:
      case LinTransAlgorithm::Hoisting:
        for (const auto &[d, diag] : matrix.diagonals()) {
            (void)diag;
            if (d != 0)
                rotations.insert(static_cast<int>(d));
        }
        break;
      case LinTransAlgorithm::MinKS:
        if (matrix.diagonalCount() > 1 ||
            !matrix.diagonals().count(0)) {
            rotations.insert(1);
        }
        break;
      case LinTransAlgorithm::BsgsHoisting: {
        const size_t b = bsgsBabyCount(matrix);
        for (const auto &[d, diag] : matrix.diagonals()) {
            (void)diag;
            if (d % b != 0)
                rotations.insert(static_cast<int>(d % b));
            if (d / b != 0)
                rotations.insert(static_cast<int>(d / b * b));
        }
        break;
      }
    }
    return {rotations.begin(), rotations.end()};
}

Ciphertext
LinearTransformer::apply(const Ciphertext &ct, const DiagMatrix &matrix,
                         const GaloisKeys &keys,
                         LinTransAlgorithm algorithm) const
{
    ANAHEIM_ASSERT(matrix.slots() == encoder_.slots(),
                   "matrix/ring slot mismatch");
    ANAHEIM_ASSERT(matrix.diagonalCount() > 0, "empty linear transform");
    switch (algorithm) {
      case LinTransAlgorithm::Base:
        return applyBase(ct, matrix, keys);
      case LinTransAlgorithm::Hoisting:
        return applyHoisting(ct, matrix, keys);
      case LinTransAlgorithm::MinKS:
        return applyMinKs(ct, matrix, keys);
      case LinTransAlgorithm::BsgsHoisting:
        return applyBsgs(ct, matrix, keys);
    }
    ANAHEIM_PANIC("unknown linear transform algorithm");
}

Ciphertext
LinearTransformer::applyBase(const Ciphertext &ct, const DiagMatrix &matrix,
                             const GaloisKeys &keys) const
{
    Ciphertext acc;
    bool first = true;
    for (const auto &[d, diag] : matrix.diagonals()) {
        const Plaintext pt = encoder_.encode(diag, ct.level);
        const Ciphertext rotated =
            d == 0 ? ct
                   : evaluator_.rotate(ct, static_cast<int>(d), keys);
        Ciphertext term = evaluator_.mulPlain(rotated, pt);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = evaluator_.add(acc, term);
        }
    }
    return acc;
}

Ciphertext
LinearTransformer::applyHoisting(const Ciphertext &ct,
                                 const DiagMatrix &matrix,
                                 const GaloisKeys &keys) const
{
    const KeySwitcher &sw = evaluator_.keySwitcher();
    const size_t level = ct.level;
    const RnsBasis extBasis = context_.extendedBasis(level);
    const double ptScale = std::ldexp(1.0, context_.params().logScale);

    // Hoisting: one ModUp of a, shared across every rotation (Fig. 1).
    const auto digits = sw.modUp(ct.a);

    Polynomial acc0Ext(extBasis, Domain::Eval);
    Polynomial acc1Ext(extBasis, Domain::Eval);
    Polynomial accB(ct.b.basis(), Domain::Eval);
    Polynomial accA(ct.a.basis(), Domain::Eval);
    bool extendedUsed = false;

    for (const auto &[d, diag] : matrix.diagonals()) {
        if (d == 0) {
            // No keyswitch needed: PMULT directly in the base modulus.
            const Plaintext pt = encoder_.encode(diag, level, ptScale);
            accB.macEq(ct.b, pt.poly);
            accA.macEq(ct.a, pt.poly);
            continue;
        }
        const uint64_t k = KeyGenerator::rotationGaloisElt(
            static_cast<int>(d), context_.degree());
        const auto it = keys.find(k);
        ANAHEIM_ASSERT(it != keys.end(), "missing rotation key for d=", d);

        std::vector<Polynomial> rotated;
        rotated.reserve(digits.size());
        for (const auto &digit : digits)
            rotated.push_back(digit.automorphism(k));
        auto [e0, e1] = sw.keyMult(rotated, it->second);

        // PMULT and accumulation in the extended modulus PQ, so that a
        // single ModDown suffices for the whole transform (§III-B).
        const Plaintext ptExt =
            encoder_.encodeAtBasis(diag, extBasis, ptScale);
        acc0Ext.macEq(e0, ptExt.poly);
        acc1Ext.macEq(e1, ptExt.poly);
        extendedUsed = true;

        const Plaintext pt = encoder_.encode(diag, level, ptScale);
        accB.macEq(ct.b.automorphism(k), pt.poly);
    }

    Ciphertext out;
    out.level = level;
    out.scale = ct.scale * ptScale;
    if (extendedUsed) {
        out.b = sw.modDown(acc0Ext) + accB;
        out.a = sw.modDown(acc1Ext) + accA;
    } else {
        out.b = std::move(accB);
        out.a = std::move(accA);
    }
    return out;
}

Ciphertext
LinearTransformer::applyMinKs(const Ciphertext &ct, const DiagMatrix &matrix,
                              const GaloisKeys &keys) const
{
    // MinKS: HROT([u], d) realized as d successive rotations by one, so
    // a single evk_1 serves every diagonal (§III-B).
    Ciphertext current = ct;
    size_t position = 0;
    Ciphertext acc;
    bool first = true;
    for (const auto &[d, diag] : matrix.diagonals()) {
        while (position < d) {
            current = evaluator_.rotate(current, 1, keys);
            ++position;
        }
        const Plaintext pt = encoder_.encode(diag, current.level);
        Ciphertext term = evaluator_.mulPlain(current, pt);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = evaluator_.add(acc, term);
        }
    }
    return acc;
}

Ciphertext
LinearTransformer::applyBsgs(const Ciphertext &ct, const DiagMatrix &matrix,
                             const GaloisKeys &keys) const
{
    const size_t b = bsgsBabyCount(matrix);
    const double ptScale = std::ldexp(1.0, context_.params().logScale);

    // Group diagonals by giant step g = d / b.
    std::map<size_t, std::vector<std::pair<size_t, const std::vector<
        Complex> *>>> giants;
    std::set<int> babySteps;
    for (const auto &[d, diag] : matrix.diagonals()) {
        giants[d / b].emplace_back(d % b, &diag);
        if (d % b != 0)
            babySteps.insert(static_cast<int>(d % b));
    }

    // Baby rotations computed with hoisting (one shared ModUp).
    std::map<size_t, Ciphertext> babies;
    babies.emplace(0, ct);
    if (!babySteps.empty()) {
        const std::vector<int> rotations(babySteps.begin(),
                                         babySteps.end());
        auto rotated = evaluator_.rotateHoisted(ct, rotations, keys);
        for (size_t i = 0; i < rotations.size(); ++i) {
            babies.emplace(static_cast<size_t>(rotations[i]),
                           std::move(rotated[i]));
        }
    }

    Ciphertext acc;
    bool first = true;
    for (const auto &[g, terms] : giants) {
        const size_t shift = g * b;
        // Inner sum over baby steps, with diagonals pre-rotated by the
        // giant shift (the p >> R preprocessing of §V-B).
        Ciphertext inner;
        bool innerFirst = true;
        for (const auto &[baby, diag] : terms) {
            const auto pre = preRotate(*diag, shift);
            const Plaintext pt =
                encoder_.encode(pre, babies.at(baby).level, ptScale);
            Ciphertext term = evaluator_.mulPlain(babies.at(baby), pt);
            if (innerFirst) {
                inner = std::move(term);
                innerFirst = false;
            } else {
                inner = evaluator_.add(inner, term);
            }
        }
        if (shift != 0) {
            inner = evaluator_.rotate(inner, static_cast<int>(shift), keys);
        }
        if (first) {
            acc = std::move(inner);
            first = false;
        } else {
            acc = evaluator_.add(acc, inner);
        }
    }
    return acc;
}

} // namespace anaheim

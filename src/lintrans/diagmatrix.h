/**
 * @file
 * Diagonal-packed representation of a linear transform on slot vectors
 * (Halevi–Shoup [32]), the form every homomorphic linear-transform
 * algorithm in the paper consumes: (M u)_i = sum_d diag_d[i] *
 * u[(i+d) mod n], so M u = sum_d diag_d ⊙ (u <<< d).
 */

#ifndef ANAHEIM_LINTRANS_DIAGMATRIX_H
#define ANAHEIM_LINTRANS_DIAGMATRIX_H

#include <complex>
#include <cstddef>
#include <map>
#include <vector>

#include "common/rng.h"

namespace anaheim {

class DiagMatrix
{
  public:
    using Complex = std::complex<double>;

    DiagMatrix() = default;
    explicit DiagMatrix(size_t slots) : slots_(slots) {}

    size_t slots() const { return slots_; }

    /** Diagonal accessor; creates the diagonal zero-filled. */
    std::vector<Complex> &diagonal(size_t d);
    const std::map<size_t, std::vector<Complex>> &diagonals() const
    {
        return diags_;
    }
    size_t diagonalCount() const { return diags_.size(); }

    /** Reference application to a plain vector (tests / planning). */
    std::vector<Complex> apply(const std::vector<Complex> &input) const;

    /** Matrix product this * other (apply `other` first). */
    DiagMatrix compose(const DiagMatrix &other) const;

    /** Scale every entry by a constant. */
    DiagMatrix &scale(Complex factor);

    /** Dense element M[row][col]; zero when off every stored diagonal.*/
    Complex at(size_t row, size_t col) const;

    /**
     * Extract the diagonal form of a dense matrix, dropping diagonals
     * whose largest entry is below `tolerance`.
     */
    static DiagMatrix fromDense(
        const std::vector<std::vector<Complex>> &dense,
        double tolerance = 1e-12);

    /** Random test matrix with the given diagonal indices. */
    static DiagMatrix random(size_t slots, const std::vector<size_t> &diags,
                             Rng &rng);

  private:
    size_t slots_ = 0;
    std::map<size_t, std::vector<Complex>> diags_;
};

} // namespace anaheim

#endif // ANAHEIM_LINTRANS_DIAGMATRIX_H

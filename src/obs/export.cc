#include "export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/parallel.h"
#include "obs/json.h"

namespace anaheim::obs {

namespace {

/** Format version of every exported document (bench JSON, metrics,
 *  trace "otherData"); bump on breaking layout changes. */
constexpr int kSchemaVersion = 1;

const char *
gitSha()
{
#ifdef ANAHEIM_GIT_SHA
    return ANAHEIM_GIT_SHA;
#else
    return "unknown";
#endif
}

const char *
buildType()
{
#ifdef ANAHEIM_BUILD_TYPE
    return ANAHEIM_BUILD_TYPE;
#else
    return "unknown";
#endif
}

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", value);
    return buf;
}

void
appendEvent(std::ostringstream &out, bool &first, const std::string &body)
{
    out << (first ? "\n    {" : ",\n    {") << body << "}";
    first = false;
}

std::string
metadataEvent(const char *name, uint64_t pid, uint64_t tid,
              const std::string &value)
{
    std::ostringstream oss;
    oss << "\"name\": \"" << name << "\", \"ph\": \"M\", \"pid\": " << pid
        << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
        << jsonEscape(value) << "\"}";
    return oss.str();
}

} // namespace

std::string
jsonEscape(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
exportHeader()
{
    return {
        {"schema_version", std::to_string(kSchemaVersion)},
        {"git_sha", gitSha()},
        {"build_type", buildType()},
        {"threads", std::to_string(parallelThreadCount())},
    };
}

std::string
chromeTraceJson(const TraceCollector &collector)
{
    const std::vector<HostSpan> host = collector.hostSpans();
    const std::vector<SimSpan> sim = collector.simSpans();
    const std::vector<std::string> runs = collector.runNames();

    constexpr uint64_t kHostPid = 1;
    constexpr uint64_t kSimPidBase = 1000;

    std::ostringstream out;
    out << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {";
    bool firstHeader = true;
    for (const auto &[key, value] : exportHeader()) {
        out << (firstHeader ? "" : ", ") << "\"" << key << "\": \""
            << jsonEscape(value) << "\"";
        firstHeader = false;
    }
    out << "},\n  \"traceEvents\": [";
    bool first = true;

    // --- Host process: one track per traced thread. ---
    if (!host.empty()) {
        appendEvent(out, first,
                    metadataEvent("process_name", kHostPid, 0,
                                  "host (wall clock)"));
        std::set<uint32_t> tids;
        for (const HostSpan &span : host)
            tids.insert(span.tid);
        for (uint32_t tid : tids) {
            appendEvent(out, first,
                        metadataEvent("thread_name", kHostPid, tid,
                                      tid == 0 ? "main"
                                               : "worker " +
                                                     std::to_string(tid)));
        }
        for (const HostSpan &span : host) {
            std::ostringstream body;
            body << "\"name\": \"" << jsonEscape(span.name)
                 << "\", \"cat\": \"host\", \"ph\": \"X\", \"ts\": "
                 << formatDouble(span.startUs)
                 << ", \"dur\": " << formatDouble(span.durUs)
                 << ", \"pid\": " << kHostPid
                 << ", \"tid\": " << span.tid
                 << ", \"args\": {\"depth\": " << span.depth << "}";
            appendEvent(out, first, body.str());
        }
    }

    // --- One process group per recorded simulated run. ---
    for (size_t run = 0; run < runs.size(); ++run) {
        appendEvent(out, first,
                    metadataEvent("process_name", kSimPidBase + run, 0,
                                  "sim: " + runs[run] + " #" +
                                      std::to_string(run)));
    }
    // Lane -> tid, per run, in first-seen order with GPU/PIM pinned
    // first so the viewer layout is stable.
    std::map<uint64_t, std::map<std::string, uint64_t>> laneTids;
    auto laneTid = [&](uint64_t pid, const std::string &lane) {
        auto &lanes = laneTids[pid];
        if (lanes.empty()) {
            lanes["GPU"] = 1;
            lanes["PIM"] = 2;
        }
        const auto it = lanes.find(lane);
        if (it != lanes.end())
            return it->second;
        const uint64_t tid = lanes.size() + 1;
        lanes.emplace(lane, tid);
        return tid;
    };
    for (const SimSpan &span : sim) {
        const uint64_t pid = kSimPidBase + span.run;
        const uint64_t tid = laneTid(pid, span.lane);
        std::ostringstream body;
        body << "\"name\": \"" << jsonEscape(span.name)
             << "\", \"cat\": \"" << jsonEscape(span.category)
             << "\", \"ph\": \"X\", \"ts\": " << formatDouble(span.startUs)
             << ", \"dur\": " << formatDouble(span.durUs)
             << ", \"pid\": " << pid << ", \"tid\": " << tid
             << ", \"args\": {\"lane\": \"" << jsonEscape(span.lane)
             << "\", \"energy_pj\": " << formatDouble(span.energyPj)
             << "}";
        appendEvent(out, first, body.str());
    }
    for (const auto &[pid, lanes] : laneTids) {
        for (const auto &[lane, tid] : lanes) {
            appendEvent(out, first,
                        metadataEvent("thread_name", pid, tid, lane));
        }
    }

    out << "\n  ]\n}\n";
    return out.str();
}

bool
writeChromeTrace(const std::string &path, const TraceCollector &collector)
{
    if (path.empty())
        return false;
    std::ofstream file(path);
    if (!file) {
        ANAHEIM_WARN("cannot write trace to ", path);
        return false;
    }
    file << chromeTraceJson(collector);
    return static_cast<bool>(file);
}

namespace {

Status
invalid(const std::string &what)
{
    return Status(ErrorCode::InvalidArgument, what);
}

} // namespace

Status
validateChromeTrace(const std::string &json)
{
    std::string error;
    const auto doc = parseJson(json, &error);
    if (doc == nullptr)
        return invalid("trace is not valid JSON: " + error);
    if (!doc->isObject())
        return invalid("trace document is not an object");
    const JsonValue *events = doc->find("traceEvents");
    if (events == nullptr || !events->isArray())
        return invalid("missing \"traceEvents\" array");

    std::set<double> namedPids;
    size_t completeEvents = 0;
    for (size_t i = 0; i < events->array().size(); ++i) {
        const JsonValue &event = events->array()[i];
        const std::string at = " (event " + std::to_string(i) + ")";
        if (!event.isObject())
            return invalid("traceEvents entry is not an object" + at);
        const JsonValue *ph = event.find("ph");
        const JsonValue *pid = event.find("pid");
        const JsonValue *tid = event.find("tid");
        const JsonValue *name = event.find("name");
        if (ph == nullptr || !ph->isString())
            return invalid("event missing string \"ph\"" + at);
        if (pid == nullptr || !pid->isNumber())
            return invalid("event missing numeric \"pid\"" + at);
        if (tid == nullptr || !tid->isNumber())
            return invalid("event missing numeric \"tid\"" + at);
        if (name == nullptr || !name->isString())
            return invalid("event missing string \"name\"" + at);
        if (ph->string() == "M") {
            if (name->string() == "process_name")
                namedPids.insert(pid->number());
            continue;
        }
        if (ph->string() != "X")
            return invalid("unexpected phase \"" + ph->string() + "\"" +
                           at);
        const JsonValue *ts = event.find("ts");
        const JsonValue *dur = event.find("dur");
        if (ts == nullptr || !ts->isNumber())
            return invalid("complete event missing numeric \"ts\"" + at);
        if (dur == nullptr || !dur->isNumber())
            return invalid("complete event missing numeric \"dur\"" + at);
        if (ts->number() < 0.0 || dur->number() < 0.0)
            return invalid("negative ts/dur" + at);
        ++completeEvents;
    }
    if (completeEvents == 0)
        return invalid("trace contains no complete (\"X\") events");
    for (size_t i = 0; i < events->array().size(); ++i) {
        const JsonValue &event = events->array()[i];
        const JsonValue *ph = event.find("ph");
        if (ph->string() == "M")
            continue;
        if (namedPids.count(event.find("pid")->number()) == 0) {
            return invalid("event " + std::to_string(i) +
                           " references a pid with no process_name");
        }
    }
    return Status::okStatus();
}

Status
validateChromeTraceFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        return invalid("cannot open " + path);
    std::ostringstream contents;
    contents << file.rdbuf();
    return validateChromeTrace(contents.str());
}

std::string
metricsJson(const MetricsSnapshot &snapshot, const std::string &source,
            const std::vector<SeriesSnapshot> &series)
{
    std::ostringstream out;
    out << "{\n  \"source\": \"" << jsonEscape(source) << "\"";
    for (const auto &[key, value] : exportHeader())
        out << ",\n  \"" << key << "\": \"" << jsonEscape(value) << "\"";
    out << ",\n  \"metrics\": [";
    bool first = true;
    for (const MetricsSnapshot::Entry &entry : snapshot.entries) {
        out << (first ? "\n    {" : ",\n    {") << "\"name\": \""
            << jsonEscape(entry.name) << "\", \"kind\": \"" << entry.kind
            << "\", \"value\": " << formatDouble(entry.value);
        if (entry.kind == "histogram") {
            out << ", \"count\": " << entry.count
                << ", \"sum\": " << formatDouble(entry.sum)
                << ", \"buckets\": [";
            for (size_t i = 0; i < entry.buckets.size(); ++i) {
                const auto &[bound, count] = entry.buckets[i];
                out << (i == 0 ? "" : ", ") << "{\"le\": ";
                if (std::isinf(bound))
                    out << "\"inf\"";
                else
                    out << formatDouble(bound);
                out << ", \"count\": " << count << "}";
            }
            out << "]";
        }
        out << "}";
        first = false;
    }
    out << "\n  ]";
    if (!series.empty()) {
        out << ",\n  \"timeseries\": [";
        bool firstSeries = true;
        for (const SeriesSnapshot &snap : series) {
            out << (firstSeries ? "\n    {" : ",\n    {")
                << "\"name\": \"" << jsonEscape(snap.name)
                << "\", \"tick_ns\": " << formatDouble(snap.tickNs)
                << ", \"dropped_late\": " << snap.droppedLate
                << ", \"evicted_windows\": " << snap.evictedWindows
                << ", \"points\": [";
            for (size_t i = 0; i < snap.points.size(); ++i) {
                const SeriesPoint &p = snap.points[i];
                out << (i == 0 ? "\n      {" : ",\n      {")
                    << "\"start_ns\": " << formatDouble(p.startNs)
                    << ", \"count\": " << p.count
                    << ", \"sum\": " << formatDouble(p.sum)
                    << ", \"min\": " << formatDouble(p.min)
                    << ", \"max\": " << formatDouble(p.max)
                    << ", \"p50\": " << formatDouble(p.p50)
                    << ", \"p99\": " << formatDouble(p.p99)
                    << ", \"rate_per_s\": "
                    << formatDouble(p.ratePerSec()) << "}";
            }
            out << (snap.points.empty() ? "]" : "\n    ]") << "}";
            firstSeries = false;
        }
        out << "\n  ]";
    }
    out << "\n}\n";
    return out.str();
}

Status
validateMetricsJson(const std::string &json)
{
    std::string error;
    const auto doc = parseJson(json, &error);
    if (doc == nullptr)
        return invalid("metrics document is not valid JSON: " + error);
    if (!doc->isObject())
        return invalid("metrics document is not an object");
    for (const char *key :
         {"schema_version", "git_sha", "build_type", "threads"}) {
        const JsonValue *field = doc->find(key);
        if (field == nullptr || !field->isString())
            return invalid(std::string("missing header field \"") +
                           key + "\"");
    }
    const JsonValue *metrics = doc->find("metrics");
    if (metrics == nullptr || !metrics->isArray())
        return invalid("missing \"metrics\" array");
    for (size_t i = 0; i < metrics->array().size(); ++i) {
        const JsonValue &entry = metrics->array()[i];
        const std::string at = " (metric " + std::to_string(i) + ")";
        const JsonValue *name = entry.find("name");
        const JsonValue *kind = entry.find("kind");
        const JsonValue *value = entry.find("value");
        if (name == nullptr || !name->isString())
            return invalid("metric missing string \"name\"" + at);
        if (kind == nullptr || !kind->isString() ||
            (kind->string() != "counter" && kind->string() != "gauge" &&
             kind->string() != "histogram"))
            return invalid("metric missing known \"kind\"" + at);
        if (value == nullptr || !value->isNumber())
            return invalid("metric missing numeric \"value\"" + at);
    }
    const JsonValue *series = doc->find("timeseries");
    if (series == nullptr)
        return Status::okStatus(); // section is optional
    if (!series->isArray())
        return invalid("\"timeseries\" is not an array");
    for (size_t i = 0; i < series->array().size(); ++i) {
        const JsonValue &entry = series->array()[i];
        const std::string at = " (series " + std::to_string(i) + ")";
        const JsonValue *name = entry.find("name");
        const JsonValue *tick = entry.find("tick_ns");
        const JsonValue *points = entry.find("points");
        if (name == nullptr || !name->isString())
            return invalid("series missing string \"name\"" + at);
        if (tick == nullptr || !tick->isNumber() ||
            tick->number() <= 0.0)
            return invalid("series missing positive \"tick_ns\"" + at);
        if (points == nullptr || !points->isArray())
            return invalid("series missing \"points\" array" + at);
        double lastStart = -1.0;
        for (size_t j = 0; j < points->array().size(); ++j) {
            const JsonValue &point = points->array()[j];
            const std::string where = " (series " + std::to_string(i) +
                                      ", point " + std::to_string(j) +
                                      ")";
            for (const char *key : {"start_ns", "count", "sum", "min",
                                    "max", "p50", "p99", "rate_per_s"}) {
                const JsonValue *field = point.find(key);
                if (field == nullptr || !field->isNumber())
                    return invalid(std::string("point missing numeric "
                                               "\"") +
                                   key + "\"" + where);
            }
            if (point.find("start_ns")->number() <= lastStart)
                return invalid("points not in start_ns order" + where);
            lastStart = point.find("start_ns")->number();
            if (point.find("count")->number() < 0.0)
                return invalid("negative count" + where);
            if (point.find("count")->number() > 0.0 &&
                point.find("p99")->number() <
                    point.find("p50")->number())
                return invalid("p99 below p50" + where);
        }
    }
    return Status::okStatus();
}

std::string
metricsCsv(const MetricsSnapshot &snapshot)
{
    std::ostringstream out;
    out << "name,kind,value,count,sum\n";
    for (const MetricsSnapshot::Entry &entry : snapshot.entries) {
        out << entry.name << "," << entry.kind << ","
            << formatDouble(entry.value) << "," << entry.count << ","
            << formatDouble(entry.sum) << "\n";
    }
    return out.str();
}

bool
writeMetrics(const std::string &path, MetricsRegistry &registry)
{
    if (path.empty())
        return false;
    std::ofstream file(path);
    if (!file) {
        ANAHEIM_WARN("cannot write metrics to ", path);
        return false;
    }
    const MetricsSnapshot snapshot = registry.snapshot();
    const bool csv =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv) {
        file << metricsCsv(snapshot);
    } else {
        file << metricsJson(snapshot, "anaheim",
                            TimeSeriesRegistry::global().snapshotAll());
    }
    return static_cast<bool>(file);
}

namespace {

/** Prometheus metric name: `anaheim_` prefix, [a-zA-Z0-9_] body. */
std::string
promName(const std::string &name)
{
    std::string out = "anaheim_";
    out.reserve(out.size() + name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Prometheus label value: escape backslash, quote and newline. */
std::string
promLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

std::string
promNumber(double value)
{
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    return formatDouble(value);
}

} // namespace

std::string
prometheusText(const MetricsSnapshot &snapshot,
               const std::vector<SeriesSnapshot> &series)
{
    std::ostringstream out;
    for (const MetricsSnapshot::Entry &entry : snapshot.entries) {
        const std::string name = promName(entry.name);
        if (entry.kind == "counter") {
            out << "# TYPE " << name << " counter\n"
                << name << " " << entry.count << "\n";
        } else if (entry.kind == "gauge") {
            out << "# TYPE " << name << " gauge\n"
                << name << " " << promNumber(entry.value) << "\n";
        } else if (entry.kind == "histogram") {
            out << "# TYPE " << name << " histogram\n";
            uint64_t cumulative = 0;
            for (const auto &[bound, count] : entry.buckets) {
                cumulative += count;
                out << name << "_bucket{le=\"" << promNumber(bound)
                    << "\"} " << cumulative << "\n";
            }
            out << name << "_sum " << promNumber(entry.sum) << "\n"
                << name << "_count " << entry.count << "\n";
        }
    }
    // Each series exposes its most recent window as one sample in five
    // gauge families, so a scrape (or a finished run's dump) reads as
    // current state. All samples of a family stay contiguous under one
    // TYPE line, as the exposition format requires.
    const auto statOf = [](const SeriesPoint &p, size_t stat) {
        switch (stat) {
        case 0: return p.ratePerSec();
        case 1: return p.p50;
        case 2: return p.p99;
        case 3: return static_cast<double>(p.count);
        default: return p.mean();
        }
    };
    const char *statNames[] = {"rate", "p50", "p99", "count", "mean"};
    for (size_t stat = 0; stat < 5; ++stat) {
        bool typed = false;
        for (const SeriesSnapshot &snap : series) {
            if (snap.points.empty())
                continue;
            if (!typed) {
                out << "# TYPE anaheim_series_" << statNames[stat]
                    << " gauge\n";
                typed = true;
            }
            out << "anaheim_series_" << statNames[stat] << "{series=\""
                << promLabelValue(snap.name) << "\"} "
                << promNumber(statOf(snap.points.back(), stat)) << "\n";
        }
    }
    return out.str();
}

bool
writePrometheus(const std::string &path, MetricsRegistry &registry,
                TimeSeriesRegistry &seriesRegistry)
{
    if (path.empty())
        return false;
    std::ofstream file(path);
    if (!file) {
        ANAHEIM_WARN("cannot write prometheus text to ", path);
        return false;
    }
    file << prometheusText(registry.snapshot(),
                           seriesRegistry.snapshotAll());
    return static_cast<bool>(file);
}

} // namespace anaheim::obs

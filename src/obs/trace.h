/**
 * @file
 * Scoped tracing runtime: RAII host-side spans plus an explicit
 * simulated-time track, collected into per-thread buffers and exported
 * as Chrome trace-event / Perfetto JSON (obs/export.h).
 *
 * Two clocks, deliberately kept apart:
 *  - HOST spans (`OBS_SPAN("keyswitch/modup")`) measure wall-clock time
 *    of this process — where the functional library and the simulator
 *    themselves spend time. Timestamps are microseconds since the
 *    process trace epoch (first collector use).
 *  - SIM spans carry *simulated* nanoseconds from the architecture
 *    model (`RunResult::timeline`); they are recorded explicitly with
 *    start/end and never touch the host clock. Each recorded run gets
 *    its own run id so successive `execute()` calls don't overlap at
 *    t = 0 in the viewer.
 *
 * Threading: every thread appends to its own buffer guarded by its own
 * uncontended mutex (lock-free-ish: the fast path never blocks on other
 * threads), so the limb-parallel engine can trace without serializing.
 * Buffers are owned by the collector and outlive their threads.
 *
 * Overhead when disabled: `OBS_SPAN` costs one relaxed atomic load and
 * a branch — safe for hot paths. Enable via `ANAHEIM_TRACE=1`,
 * `obs::setTracingEnabled(true)`, or `AnaheimConfig::obs.trace` (which
 * scopes enablement to the framework's simulated timeline).
 */

#ifndef ANAHEIM_OBS_TRACE_H
#define ANAHEIM_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace anaheim::obs {

namespace detail {
extern std::atomic<bool> gTracingEnabled;
} // namespace detail

/** Whether host-span recording is live (one relaxed load). */
inline bool
tracingEnabled()
{
    return detail::gTracingEnabled.load(std::memory_order_relaxed);
}

/** Flip span recording at runtime (initial value: ANAHEIM_TRACE env). */
void setTracingEnabled(bool enabled);

/** One completed host-side span. */
struct HostSpan {
    /** Static string ("layer/what"); macro call sites pass literals. */
    const char *name = "";
    /** Stable per-thread index in registration order (0 = first thread
     *  that traced, usually the main thread). */
    uint32_t tid = 0;
    /** Nesting depth within the owning thread at open time (0 = top). */
    uint32_t depth = 0;
    /** Microseconds since the process trace epoch. */
    double startUs = 0.0;
    double durUs = 0.0;
};

/** One simulated-timeline span (explicit timestamps, sim clock). */
struct SimSpan {
    std::string name;     ///< phase ("ModUp", "Scrub", ...)
    std::string lane;     ///< track: "GPU", "PIM", "Scrub", ...
    std::string category; ///< breakdown category (kernel class / phase)
    uint32_t run = 0;     ///< which recorded run this span belongs to
    double startUs = 0.0; ///< simulated time, microseconds
    double durUs = 0.0;
    double energyPj = 0.0;
};

/**
 * Process-wide span sink. Host spans land in per-thread buffers; sim
 * spans and run registration serialize on one mutex (they are emitted
 * once per run, not per kernel-invocation hot path).
 */
class TraceCollector
{
  public:
    static TraceCollector &global();

    /** Register a simulated run; returns its run id for SimSpan::run. */
    uint32_t beginRun(const std::string &name);

    void recordSimSpan(SimSpan span);

    /** Snapshot of every completed host span across all threads,
     *  ordered by (tid, startUs). */
    std::vector<HostSpan> hostSpans() const;

    /** Snapshot of the simulated track in record order. */
    std::vector<SimSpan> simSpans() const;

    /** Names of the recorded runs, indexed by run id. */
    std::vector<std::string> runNames() const;

    /** Drop every recorded span and run (buffers stay registered). */
    void clear();

    /** Microseconds elapsed on the host clock since the trace epoch. */
    static double nowUs();

    // Internal: called by ScopedSpan only.
    struct ThreadBuffer;
    static ThreadBuffer &localBuffer();

  private:
    TraceCollector() = default;
};

/** RAII host span; use via OBS_SPAN. Inactive (and nearly free) when
 *  tracing is disabled at open time. */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
    {
        if (tracingEnabled())
            open(name);
    }

    ~ScopedSpan()
    {
        if (name_ != nullptr)
            close();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    void open(const char *name);
    void close();

    const char *name_ = nullptr;
    double startUs_ = 0.0;
    uint32_t depth_ = 0;
};

} // namespace anaheim::obs

#define ANAHEIM_OBS_CONCAT2(a, b) a##b
#define ANAHEIM_OBS_CONCAT(a, b) ANAHEIM_OBS_CONCAT2(a, b)

/** Open a host-clock span for the rest of the enclosing scope. */
#define OBS_SPAN(name)                                                       \
    ::anaheim::obs::ScopedSpan ANAHEIM_OBS_CONCAT(obsSpan_,                  \
                                                  __COUNTER__)(name)

#endif // ANAHEIM_OBS_TRACE_H

/**
 * @file
 * Trace and metrics exporters.
 *
 * Chrome trace-event / Perfetto JSON: one document merging the host
 * span tree (pid 1, one tid per traced thread) with every recorded
 * simulated run (pid 1000+run, one tid per lane — GPU, PIM, Scrub,
 * Checkpoint, Rollback, Verify). Open the file in https://ui.perfetto.dev
 * or chrome://tracing. Timestamps are microseconds ("X" complete
 * events); process/thread names ride "M" metadata events.
 *
 * Metrics: the registry snapshot as a flat JSON document (with the
 * same self-describing header block the bench JSON reports carry) or
 * as name,kind,value CSV.
 */

#ifndef ANAHEIM_OBS_EXPORT_H
#define ANAHEIM_OBS_EXPORT_H

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace anaheim::obs {

/** The Chrome trace document for the collector's current contents. */
std::string chromeTraceJson(
    const TraceCollector &collector = TraceCollector::global());

/** Write chromeTraceJson() to `path`; false on I/O failure (with a
 *  warning) or when `path` is empty (silently). */
bool writeChromeTrace(
    const std::string &path,
    const TraceCollector &collector = TraceCollector::global());

/**
 * Schema-check a Chrome trace document: parses the JSON, requires a
 * "traceEvents" array whose entries carry name/ph/pid/tid (and ts/dur
 * for "X" events), and requires every "X" event to be attributable to
 * a named process. Returns Ok or InvalidArgument with the first
 * violation.
 */
Status validateChromeTrace(const std::string &json);

/** validateChromeTrace() over a file's contents. */
Status validateChromeTraceFile(const std::string &path);

/** The metrics document for a registry snapshot; when `series` is
 *  non-empty a "timeseries" section follows the flat metrics array
 *  (one entry per series: name, tick, per-window
 *  count/sum/min/max/p50/p99/rate points). */
std::string metricsJson(
    const MetricsSnapshot &snapshot,
    const std::string &source = "anaheim",
    const std::vector<SeriesSnapshot> &series = {});

/**
 * Schema-check a metrics JSON document: self-describing header,
 * metrics entries with known kinds, and — when a "timeseries" section
 * is present — per-series tick/points invariants (non-negative
 * counts, windows in start order, p99 >= p50). Returns Ok or
 * InvalidArgument with the first violation. Mirrored by
 * scripts/validate_trace.py for CI artifacts.
 */
Status validateMetricsJson(const std::string &json);

/** Write the global registry's snapshot to `path`: CSV when the path
 *  ends in ".csv", JSON otherwise (with the timeseries section when
 *  any series is registered). Empty path: no-op, returns false. */
bool writeMetrics(
    const std::string &path,
    MetricsRegistry &registry = MetricsRegistry::global());

/** name,kind,value,count,sum CSV for a snapshot. */
std::string metricsCsv(const MetricsSnapshot &snapshot);

/**
 * Prometheus text exposition (version 0.0.4) of a metrics snapshot
 * plus the registered time series: counters/gauges as flat samples,
 * histograms as cumulative `_bucket{le=...}` + `_sum`/`_count`
 * families, and every series' most recent window as
 * `anaheim_series_{rate,p50,p99,count,mean}{series="<name>"}` gauges —
 * so a finished (or scraped) run diffs with standard PromQL tooling.
 * Metric names are sanitized ([a-zA-Z0-9_], `anaheim_` prefix).
 */
std::string prometheusText(
    const MetricsSnapshot &snapshot,
    const std::vector<SeriesSnapshot> &series = {});

/** Write prometheusText() of the global registries to `path`; false on
 *  I/O failure (with a warning) or when `path` is empty (silently). */
bool writePrometheus(
    const std::string &path,
    MetricsRegistry &registry = MetricsRegistry::global(),
    TimeSeriesRegistry &seriesRegistry = TimeSeriesRegistry::global());

/** JSON string escaping shared by the exporters. */
std::string jsonEscape(const std::string &value);

/** Self-describing header fields stamped into every export: schema
 *  version, git SHA, build type, resolved thread count. */
std::vector<std::pair<std::string, std::string>> exportHeader();

} // namespace anaheim::obs

#endif // ANAHEIM_OBS_EXPORT_H

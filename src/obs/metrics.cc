#include "metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.h"

namespace anaheim::obs {

namespace {

/** Shared drop counter for non-finite observations, also fed by the
 *  time-series layer (obs/timeseries.cc). Function-local so plain
 *  Histogram construction never touches the registry. */
Counter &
droppedSamples()
{
    static Counter &counter =
        MetricsRegistry::global().counter("obs.dropped_samples");
    return counter;
}

} // namespace

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)), buckets_(bounds_.size() + 1)
{
    ANAHEIM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
                  InvalidArgument,
                  "histogram bounds must be sorted ascending");
}

void
Histogram::observe(double value)
{
    // NaN compares false against every bound (lower_bound would pick
    // an arbitrary bucket) and ±inf poisons the running sum: drop
    // non-finite samples instead of silently mis-bucketing them.
    if (!std::isfinite(value)) {
        droppedSamples().add();
        return;
    }
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const size_t bucket = static_cast<size_t>(it - bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    double current = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed)) {
    }
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (const auto &bucket : buckets_)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> counts(buckets_.size());
    for (size_t i = 0; i < buckets_.size(); ++i)
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
    return counts;
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

const MetricsSnapshot::Entry *
MetricsSnapshot::find(const std::string &name) const
{
    for (const Entry &entry : entries) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

struct MetricsRegistry::Instrument {
    const char *kind = "";
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
};

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *registry = new MetricsRegistry();
    // Leaked deliberately: call sites cache instrument references in
    // function-local statics whose teardown order is unspecified.
    return *registry;
}

MetricsRegistry::Instrument &
MetricsRegistry::lookup(const std::string &name, const char *kind)
{
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
        auto instrument = std::make_unique<Instrument>();
        instrument->kind = kind;
        it = instruments_.emplace(name, std::move(instrument)).first;
    }
    ANAHEIM_CHECK(std::string(it->second->kind) == kind,
                  InvalidArgument, "metric '", name,
                  "' already registered as a ", it->second->kind,
                  ", requested as a ", kind);
    return *it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Instrument &instrument = lookup(name, "counter");
    if (!instrument.counter)
        instrument.counter = std::make_unique<Counter>();
    return *instrument.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Instrument &instrument = lookup(name, "gauge");
    if (!instrument.gauge)
        instrument.gauge = std::make_unique<Gauge>();
    return *instrument.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upperBounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Instrument &instrument = lookup(name, "histogram");
    if (!instrument.histogram) {
        instrument.histogram =
            std::make_unique<Histogram>(std::move(upperBounds));
    } else {
        ANAHEIM_CHECK(instrument.histogram->bounds() == upperBounds,
                      InvalidArgument, "histogram '", name,
                      "' re-registered with different bounds");
    }
    return *instrument.histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.entries.reserve(instruments_.size());
    for (const auto &[name, instrument] : instruments_) {
        MetricsSnapshot::Entry entry;
        entry.name = name;
        entry.kind = instrument->kind;
        if (instrument->counter) {
            entry.value =
                static_cast<double>(instrument->counter->value());
            entry.count = instrument->counter->value();
        } else if (instrument->gauge) {
            entry.value = instrument->gauge->value();
        } else if (instrument->histogram) {
            const Histogram &h = *instrument->histogram;
            // One bucket read serves both the count and the bucket
            // list, so the entry can never report a count its own
            // buckets disagree with (even mid-reset).
            const auto counts = h.bucketCounts();
            for (const uint64_t c : counts)
                entry.count += c;
            entry.sum = h.sum();
            entry.value =
                entry.count > 0
                    ? entry.sum / static_cast<double>(entry.count)
                    : 0.0;
            const auto &bounds = h.bounds();
            for (size_t i = 0; i < counts.size(); ++i) {
                const double bound =
                    i < bounds.size()
                        ? bounds[i]
                        : std::numeric_limits<double>::infinity();
                entry.buckets.emplace_back(bound, counts[i]);
            }
        }
        snap.entries.push_back(std::move(entry));
    }
    // std::map iteration is already name-sorted; keep the invariant
    // explicit for readers of MetricsSnapshot.
    return snap;
}

size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return instruments_.size();
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, instrument] : instruments_) {
        (void)name;
        if (instrument->counter)
            instrument->counter->reset();
        if (instrument->gauge)
            instrument->gauge->reset();
        if (instrument->histogram)
            instrument->histogram->reset();
    }
}

} // namespace anaheim::obs

#include "json.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace anaheim::obs {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool value)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = value;
    return v;
}

JsonValue
JsonValue::makeNumber(double value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = value;
    return v;
}

JsonValue
JsonValue::makeString(std::string value)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(value);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> values)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(values);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.object_ = std::move(members);
    return v;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::unique_ptr<JsonValue> parse(std::string *error)
    {
        JsonValue value;
        if (!parseValue(value)) {
            if (error != nullptr)
                *error = error_;
            return nullptr;
        }
        skipWhitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            if (error != nullptr)
                *error = error_;
            return nullptr;
        }
        return std::make_unique<JsonValue>(std::move(value));
    }

  private:
    bool fail(const std::string &what)
    {
        if (error_.empty()) {
            std::ostringstream oss;
            oss << what << " at offset " << pos_;
            error_ = oss.str();
        }
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool consume(char c)
    {
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        const size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': return parseString(out);
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out = JsonValue::makeBool(true);
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out = JsonValue::makeBool(false);
            return true;
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out = JsonValue::makeNull();
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start)
            return fail("expected a value");
        // Reject strtod-isms JSON forbids (hex, inf, nan, leading '+').
        for (const char *p = start; p != end; ++p) {
            const char ch = *p;
            const bool ok = (ch >= '0' && ch <= '9') || ch == '-' ||
                            ch == '+' || ch == '.' || ch == 'e' ||
                            ch == 'E';
            if (!ok)
                return fail("malformed number");
        }
        if (*start == '+')
            return fail("malformed number");
        pos_ += static_cast<size_t>(end - start);
        out = JsonValue::makeNumber(value);
        return true;
    }

    bool parseString(JsonValue &out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = JsonValue::makeString(std::move(s));
        return true;
    }

    bool parseRawString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    // Keep \uXXXX escapes verbatim; the exporters never
                    // emit them and the validator only compares ASCII.
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    out += "\\u";
                    out += text_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                  }
                  default: return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool parseArray(JsonValue &out)
    {
        if (!consume('['))
            return fail("expected array");
        std::vector<JsonValue> values;
        skipWhitespace();
        if (consume(']')) {
            out = JsonValue::makeArray(std::move(values));
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            values.push_back(std::move(value));
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            return fail("expected ',' or ']'");
        }
        out = JsonValue::makeArray(std::move(values));
        return true;
    }

    bool parseObject(JsonValue &out)
    {
        if (!consume('{'))
            return fail("expected object");
        std::map<std::string, JsonValue> members;
        skipWhitespace();
        if (consume('}')) {
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWhitespace();
            std::string key;
            if (!parseRawString(key))
                return false;
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue value;
            if (!parseValue(value))
                return false;
            members.emplace(std::move(key), std::move(value));
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            return fail("expected ',' or '}'");
        }
        out = JsonValue::makeObject(std::move(members));
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::unique_ptr<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    return Parser(text).parse(error);
}

} // namespace anaheim::obs

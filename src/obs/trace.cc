#include "trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace anaheim::obs {

namespace detail {

namespace {

bool
envTraceDefault()
{
    const char *env = std::getenv("ANAHEIM_TRACE");
    if (env == nullptr)
        return false;
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "") != 0 &&
           std::strcmp(env, "off") != 0 && std::strcmp(env, "false") != 0;
}

} // namespace

std::atomic<bool> gTracingEnabled{envTraceDefault()};

} // namespace detail

void
setTracingEnabled(bool enabled)
{
    detail::gTracingEnabled.store(enabled, std::memory_order_relaxed);
}

/** Per-thread span buffer. Only its owning thread appends; the mutex
 *  exists so snapshot readers can race-free copy while the owner keeps
 *  writing — for the owner it is always uncontended. */
struct TraceCollector::ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<HostSpan> spans;
    uint32_t tid = 0;
    uint32_t depth = 0;
};

namespace {

using ThreadBuffer = TraceCollector::ThreadBuffer;

struct CollectorState {
    mutable std::mutex mutex;
    /** Buffers outlive their threads (worker pools tear down and
     *  respawn); the collector owns them for the process lifetime. */
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    std::vector<SimSpan> simSpans;
    std::vector<std::string> runNames;
};

CollectorState &
state()
{
    static CollectorState *s = new CollectorState(); // never destroyed:
    // worker threads may record spans during process teardown.
    return *s;
}

std::chrono::steady_clock::time_point
epoch()
{
    static const auto e = std::chrono::steady_clock::now();
    return e;
}

} // namespace

TraceCollector &
TraceCollector::global()
{
    static TraceCollector collector;
    (void)epoch(); // pin the epoch at first collector touch
    return collector;
}

double
TraceCollector::nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch())
        .count();
}

TraceCollector::ThreadBuffer &
TraceCollector::localBuffer()
{
    thread_local ThreadBuffer *buffer = [] {
        auto owned = std::make_unique<ThreadBuffer>();
        ThreadBuffer *raw = owned.get();
        CollectorState &s = state();
        std::lock_guard<std::mutex> lock(s.mutex);
        raw->tid = static_cast<uint32_t>(s.buffers.size());
        s.buffers.push_back(std::move(owned));
        return raw;
    }();
    return *buffer;
}

uint32_t
TraceCollector::beginRun(const std::string &name)
{
    CollectorState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.runNames.push_back(name);
    return static_cast<uint32_t>(s.runNames.size() - 1);
}

void
TraceCollector::recordSimSpan(SimSpan span)
{
    CollectorState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.simSpans.push_back(std::move(span));
}

std::vector<HostSpan>
TraceCollector::hostSpans() const
{
    CollectorState &s = state();
    std::vector<const ThreadBuffer *> buffers;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        for (const auto &buffer : s.buffers)
            buffers.push_back(buffer.get());
    }
    std::vector<HostSpan> all;
    for (const ThreadBuffer *buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        all.insert(all.end(), buffer->spans.begin(), buffer->spans.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const HostSpan &a, const HostSpan &b) {
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.startUs < b.startUs;
                     });
    return all;
}

std::vector<SimSpan>
TraceCollector::simSpans() const
{
    CollectorState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.simSpans;
}

std::vector<std::string>
TraceCollector::runNames() const
{
    CollectorState &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.runNames;
}

void
TraceCollector::clear()
{
    CollectorState &s = state();
    std::vector<ThreadBuffer *> buffers;
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        s.simSpans.clear();
        s.runNames.clear();
        for (const auto &buffer : s.buffers)
            buffers.push_back(buffer.get());
    }
    for (ThreadBuffer *buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        buffer->spans.clear();
    }
}

void
ScopedSpan::open(const char *name)
{
    ThreadBuffer &buffer = TraceCollector::localBuffer();
    name_ = name;
    depth_ = buffer.depth++;
    startUs_ = TraceCollector::nowUs();
}

void
ScopedSpan::close()
{
    const double endUs = TraceCollector::nowUs();
    ThreadBuffer &buffer = TraceCollector::localBuffer();
    buffer.depth = depth_; // unwind nesting even if disabled mid-span
    HostSpan span;
    span.name = name_;
    span.tid = buffer.tid;
    span.depth = depth_;
    span.startUs = startUs_;
    span.durUs = endUs - startUs_;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.spans.push_back(span);
}

} // namespace anaheim::obs

/**
 * @file
 * Process-wide metrics registry: named counters, gauges and histograms
 * that the previously ad-hoc statistics (ResilienceStats fields, DRAM
 * command counts, GPU roofline op/byte totals, PIM datapath events)
 * publish into, giving every bench and example one snapshot/export path
 * (obs/export.h: `--metrics <path>` JSON or CSV).
 *
 * Concurrency: instrument-side updates are relaxed atomic adds — safe
 * from the limb-parallel workers and cheap enough for per-kernel-model
 * call sites. Registration (name -> instrument lookup) takes a mutex;
 * hot paths should look up once and keep the reference:
 *
 *     static obs::Counter &kernels =
 *         obs::MetricsRegistry::global().counter("gpu.kernels");
 *     kernels.add();
 *
 * Instruments live for the process lifetime; references never dangle.
 */

#ifndef ANAHEIM_OBS_METRICS_H
#define ANAHEIM_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace anaheim::obs {

/** Monotonic event count. */
class Counter
{
  public:
    void add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    void add(double delta)
    {
        double current = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(current, current + delta,
                                             std::memory_order_relaxed)) {
        }
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Fixed-bound histogram: counts per bucket (<= bound), plus an
 *  overflow bucket and a running sum. Non-finite observations are
 *  dropped (NaN has no bucket; ±inf would corrupt the sum) and counted
 *  in the process-wide `obs.dropped_samples` counter.
 *
 *  Consistency under concurrent observers: the sample count IS the sum
 *  of the bucket counts — there is no separate count cell to tear
 *  against — so any snapshot satisfies count() == Σ bucketCounts()
 *  even while observers race with reset(). The running sum is a
 *  separate relaxed cell: a mean derived from a mid-reset snapshot may
 *  transiently mix pre- and post-reset samples, but counts never go
 *  negative and never disagree with the buckets. */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upperBounds);

    void observe(double value);

    const std::vector<double> &bounds() const { return bounds_; }
    /** Per-bucket counts; size() == bounds().size() + 1 (overflow). */
    std::vector<uint64_t> bucketCounts() const;
    /** Total samples: Σ bucketCounts(), by construction. */
    uint64_t count() const;
    double sum() const;
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> buckets_;
    std::atomic<double> sum_{0.0};
};

/** Point-in-time copy of every registered instrument. */
struct MetricsSnapshot {
    struct Entry {
        std::string name;
        std::string kind; ///< "counter", "gauge" or "histogram"
        double value = 0.0;
        /** Histogram extras (count/sum, per-bucket upper-bound+count;
         *  the last bucket's bound is +inf). */
        uint64_t count = 0;
        double sum = 0.0;
        std::vector<std::pair<double, uint64_t>> buckets;
    };
    /** Sorted by name for stable exports and diffs. */
    std::vector<Entry> entries;

    /** Entry by exact name, or nullptr. */
    const Entry *find(const std::string &name) const;
};

class MetricsRegistry
{
  public:
    static MetricsRegistry &global();

    /** Find-or-create by name. Raises AnaheimError (InvalidArgument)
     *  when `name` is already registered as a different kind. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** The bounds of an existing histogram win; a conflicting re-spec
     *  of bounds raises. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> upperBounds);

    MetricsSnapshot snapshot() const;

    /** Number of registered instruments. */
    size_t size() const;

    /** Zero every instrument (instruments stay registered; references
     *  held by call sites remain valid). */
    void resetAll();

  private:
    MetricsRegistry() = default;

    struct Instrument;
    Instrument &lookup(const std::string &name, const char *kind);

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Instrument>> instruments_;
};

} // namespace anaheim::obs

#endif // ANAHEIM_OBS_METRICS_H

/**
 * @file
 * Minimal JSON value model + recursive-descent parser. Exists so the
 * exporters' output can be schema-validated in-process (tests, the
 * trace validator behind CI) without an external dependency; it is a
 * strict-enough subset parser (no comments, no trailing commas,
 * doubles for all numbers) — not a general-purpose JSON library.
 */

#ifndef ANAHEIM_OBS_JSON_H
#define ANAHEIM_OBS_JSON_H

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace anaheim::obs {

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return number_; }
    const std::string &string() const { return string_; }
    const std::vector<JsonValue> &array() const { return array_; }
    const std::map<std::string, JsonValue> &object() const
    {
        return object_;
    }

    /** Object member by key, or nullptr (also for non-objects). */
    const JsonValue *find(const std::string &key) const;

    static JsonValue makeNull();
    static JsonValue makeBool(bool value);
    static JsonValue makeNumber(double value);
    static JsonValue makeString(std::string value);
    static JsonValue makeArray(std::vector<JsonValue> values);
    static JsonValue makeObject(std::map<std::string, JsonValue> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/**
 * Parse `text` as one JSON document. On failure returns nullptr and,
 * when `error` is non-null, stores a message with the byte offset.
 * Trailing non-whitespace after the document is an error.
 */
std::unique_ptr<JsonValue> parseJson(const std::string &text,
                                     std::string *error = nullptr);

} // namespace anaheim::obs

#endif // ANAHEIM_OBS_JSON_H

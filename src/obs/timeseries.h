/**
 * @file
 * Streaming time-series telemetry (DESIGN.md §17): windowed samplers
 * over *simulated* time that turn the end-of-run counter snapshots of
 * obs/metrics.h into evolution curves — how goodput, queue depth, tail
 * latency and rejection causes change while a serving run is under
 * load — plus the SLO burn-rate evaluator the scheduler drives its
 * `Alert` timeline lane from.
 *
 * Model: every `TimeSeries` is a ring of fixed-duration windows (the
 * registry-wide tick is chosen by the emitter, e.g. the serving
 * scheduler's `ServeTelemetryConfig::tickNs`). Each window holds a
 * count, a sum, min/max, and a fixed log-bucketed (HDR-style)
 * histogram — 4 sub-buckets per octave, so any non-negative value is
 * bucketed with <= ~9% relative error and a window can answer
 * rate/p50/p99 without storing samples. Idle gaps in simulated time
 * materialize as zero-count windows; when the ring wraps, the oldest
 * windows are evicted (bounded memory under open-ended runs).
 *
 * Concurrency: updates and snapshots serialize on a per-series mutex —
 * series sit on scheduler-event granularity, not kernel hot paths.
 * The process-wide enable flag (`seriesSamplingEnabled()`) keeps the
 * disabled path at one relaxed atomic load and a branch, mirroring
 * OBS_SPAN.
 *
 * Everything is a pure function of the observed (timestamp, value)
 * pairs: no wall clock, no randomness, so sampled serve runs stay
 * bitwise deterministic.
 */

#ifndef ANAHEIM_OBS_TIMESERIES_H
#define ANAHEIM_OBS_TIMESERIES_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace anaheim::obs {

namespace detail {
extern std::atomic<bool> gSeriesEnabled;
} // namespace detail

/** Whether time-series sampling is live (one relaxed load). */
inline bool
seriesSamplingEnabled()
{
    return detail::gSeriesEnabled.load(std::memory_order_relaxed);
}

/** Flip series recording at runtime (default: enabled; the cost sits
 *  on scheduler ticks, not kernel hot paths). */
void setSeriesSamplingEnabled(bool enabled);

/** Fixed log-bucket layout shared by every window: bucket 0 holds
 *  [0, 1), then 4 geometric sub-buckets per octave up to 2^40, then
 *  one overflow bucket. Pure integer/frexp arithmetic — identical
 *  bucketing on every platform. */
struct LogBuckets {
    static constexpr size_t kOctaves = 40;
    static constexpr size_t kSubPerOctave = 4;
    /** underflow + octaves*sub + overflow */
    static constexpr size_t kCount = 2 + kOctaves * kSubPerOctave;

    /** Bucket index for a finite value >= 0. Callers must drop
     *  non-finite values first (TimeSeries::observe does). */
    static size_t index(double value);

    /** Inclusive lower bound of bucket `i` (0 for the underflow
     *  bucket). */
    static double lowerBound(size_t i);

    /** Geometric midpoint used as the quantile estimate for a rank
     *  that lands in bucket `i`. */
    static double midpoint(size_t i);
};

/** One closed (or in-progress) window of a series, as exported. */
struct SeriesPoint {
    double startNs = 0.0; ///< window start, simulated time
    double durNs = 0.0;   ///< window duration (the series tick)
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0; ///< 0 when the window is empty
    double max = 0.0;
    double p50 = 0.0; ///< log-bucket estimate clamped into [min, max]
    double p99 = 0.0;
    /** Observations per second of simulated time. */
    double ratePerSec() const
    {
        return durNs > 0.0 ? static_cast<double>(count) / (durNs * 1e-9)
                           : 0.0;
    }
    double mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
};

/** Point-in-time copy of one series. */
struct SeriesSnapshot {
    std::string name;
    double tickNs = 0.0;
    std::vector<SeriesPoint> points;
    /** Observations older than the ring's reach when they arrived. */
    uint64_t droppedLate = 0;
    /** Windows evicted by ring wrap-around. */
    uint64_t evictedWindows = 0;
};

/**
 * One named windowed-histogram series. Observations carry their own
 * simulated timestamp; the series maps them onto fixed windows of
 * `tickNs`, zero-filling idle gaps and evicting the oldest windows
 * once `capacity` is exceeded. A gauge-style series simply observes
 * one value per tick; an event-style series observes each event
 * (value = latency, or 1.0 for pure rates).
 */
class TimeSeries
{
  public:
    TimeSeries(std::string name, double tickNs, size_t capacity);

    /** Record `value` into the window containing `simNs`. Non-finite
     *  values and negative timestamps are dropped (counted in
     *  `obs.dropped_samples`); observations older than the retained
     *  ring are dropped and counted in the snapshot's `droppedLate`.
     *  No-op (one relaxed load) while sampling is disabled. */
    void observe(double simNs, double value);

    /** Materialize every window up to (and containing) `simNs`, so
     *  trailing idle time exports as explicit zero-count windows. */
    void advanceTo(double simNs);

    const std::string &name() const { return name_; }
    double tickNs() const { return tickNs_; }

    SeriesSnapshot snapshot() const;

    /** Sum of (count, sum) over the most recent `windows` windows —
     *  the burn-rate evaluator's view. */
    std::pair<uint64_t, double> tailTotals(size_t windows) const;

  private:
    struct Window {
        uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::vector<uint32_t> buckets; ///< lazily sized kCount
    };

    Window *windowFor(double simNs); ///< nullptr = dropped
    static SeriesPoint pointOf(const Window &window, double startNs,
                               double durNs);

    const std::string name_;
    const double tickNs_;
    const size_t capacity_;

    mutable std::mutex mutex_;
    std::deque<Window> windows_;
    /** Window index (simNs / tickNs) of windows_.front(). */
    uint64_t baseIndex_ = 0;
    uint64_t droppedLate_ = 0;
    uint64_t evicted_ = 0;
};

/**
 * Process-wide find-or-create registry for time series, the
 * simulated-time sibling of MetricsRegistry. Series live for the
 * process lifetime; references never dangle. Emitters that run many
 * times per process (the serving scheduler) prefix their series with
 * a `beginEpoch()` serial so successive runs never collide.
 */
class TimeSeriesRegistry
{
  public:
    static TimeSeriesRegistry &global();

    /** Find-or-create by name. Raises AnaheimError (InvalidArgument)
     *  when `name` exists with a different tick. */
    TimeSeries &series(const std::string &name, double tickNs,
                       size_t capacity = kDefaultCapacity);

    /** Monotone per-process run serial for series namespacing. */
    uint64_t beginEpoch();

    std::vector<SeriesSnapshot> snapshotAll() const;

    size_t size() const;

    /** Drop every registered series (tests only — outstanding
     *  references dangle). */
    void clear();

    static constexpr size_t kDefaultCapacity = 1024;

  private:
    TimeSeriesRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<TimeSeries>> series_;
    std::atomic<uint64_t> epoch_{0};
};

/** Fast/slow window pair knobs for one burn-rate alert. */
struct BurnRateConfig {
    /** Success-ratio objective (e.g. 0.95 deadline-met). */
    double sloTarget = 0.95;
    /** Short window: catches fast burns, in ticks. */
    size_t fastWindowTicks = 3;
    /** Long window: filters blips, in ticks. */
    size_t slowWindowTicks = 12;
    /** Error-budget burn rate BOTH windows must reach to fire
     *  (1.0 = burning budget exactly at the objective rate). */
    double burnThreshold = 1.0;
};

/**
 * Multi-window SLO burn-rate evaluator over a good/total ratio (the
 * classic fast+slow pair: alert only when the error budget is burning
 * in both the recent past and the sustained past, so a single bad
 * window can't page and a long slow burn can't hide). Fed one closed
 * window per tick by the emitter; windows with no traffic burn
 * nothing.
 */
class BurnRateEvaluator
{
  public:
    explicit BurnRateEvaluator(BurnRateConfig config);

    struct Evaluation {
        bool firing = false;
        /** Transition edges this tick. */
        bool fired = false;
        bool resolved = false;
        double fastBurn = 0.0;
        double slowBurn = 0.0;
    };

    /** Feed one closed window's (good, total) pair. */
    Evaluation update(uint64_t good, uint64_t total);

    bool firing() const { return firing_; }
    uint64_t alertsFired() const { return alertsFired_; }
    uint64_t alertsResolved() const { return alertsResolved_; }
    uint64_t ticksFiring() const { return ticksFiring_; }

  private:
    double burnOver(size_t windows) const;

    const BurnRateConfig config_;
    /** Last slowWindowTicks windows of (good, total). */
    std::deque<std::pair<uint64_t, uint64_t>> history_;
    bool firing_ = false;
    uint64_t alertsFired_ = 0;
    uint64_t alertsResolved_ = 0;
    uint64_t ticksFiring_ = 0;
};

} // namespace anaheim::obs

#endif // ANAHEIM_OBS_TIMESERIES_H

#include "timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/status.h"
#include "obs/metrics.h"

namespace anaheim::obs {

namespace detail {
namespace {

bool
initialSeriesEnabled()
{
    const char *env = std::getenv("ANAHEIM_TIMESERIES");
    if (env == nullptr)
        return true;
    return !(env[0] == '0' && env[1] == '\0');
}

} // namespace

std::atomic<bool> gSeriesEnabled{initialSeriesEnabled()};

} // namespace detail

void
setSeriesSamplingEnabled(bool enabled)
{
    detail::gSeriesEnabled.store(enabled, std::memory_order_relaxed);
}

namespace {

/** Shared counter for every dropped (non-finite / negative-time)
 *  observation, also used by obs::Histogram. */
Counter &
droppedSamplesCounter()
{
    static Counter &counter =
        MetricsRegistry::global().counter("obs.dropped_samples");
    return counter;
}

// Sub-bucket thresholds on the frexp mantissa m in [0.5, 1):
// a value v = m * 2^e sits in octave e-1, sub-bucket by m against
// 2^-0.75, 2^-0.5, 2^-0.25. Exact literals keep bucketing identical
// across libm implementations.
constexpr double kSub1 = 0.59460355750136051; // 2^-0.75
constexpr double kSub2 = 0.70710678118654757; // 2^-0.5
constexpr double kSub3 = 0.84089641525371450; // 2^-0.25

/** 2^(1/4): the geometric growth between consecutive sub-buckets. */
constexpr double kGrowth = 1.1892071150027210;
/** 2^(1/8): half a sub-bucket, the midpoint factor. */
constexpr double kHalfGrowth = 1.0905077326652577;

} // namespace

size_t
LogBuckets::index(double value)
{
    if (!(value >= 1.0))
        return 0; // [0, 1)
    int exp = 0;
    const double mantissa = std::frexp(value, &exp);
    // value in [2^(exp-1), 2^exp): octave exp-1, counted from 0.
    const size_t octave = static_cast<size_t>(exp - 1);
    if (octave >= kOctaves)
        return kCount - 1; // overflow
    size_t sub = 3;
    if (mantissa < kSub1)
        sub = 0;
    else if (mantissa < kSub2)
        sub = 1;
    else if (mantissa < kSub3)
        sub = 2;
    return 1 + octave * kSubPerOctave + sub;
}

double
LogBuckets::lowerBound(size_t i)
{
    if (i == 0)
        return 0.0;
    if (i >= kCount - 1)
        return std::ldexp(1.0, static_cast<int>(kOctaves)); // 2^40
    double bound = 1.0;
    // Exact octave step via ldexp, then up to 3 growth multiplies.
    const size_t steps = i - 1;
    bound = std::ldexp(1.0, static_cast<int>(steps / kSubPerOctave));
    for (size_t s = 0; s < steps % kSubPerOctave; ++s)
        bound *= kGrowth;
    return bound;
}

double
LogBuckets::midpoint(size_t i)
{
    if (i == 0)
        return 0.5;
    return lowerBound(i) * kHalfGrowth;
}

TimeSeries::TimeSeries(std::string name, double tickNs, size_t capacity)
    : name_(std::move(name)), tickNs_(tickNs),
      capacity_(std::max<size_t>(capacity, 2))
{
    ANAHEIM_CHECK(tickNs_ > 0.0, InvalidArgument, "time series '",
                  name_, "': tick must be positive, got ", tickNs_);
}

TimeSeries::Window *
TimeSeries::windowFor(double simNs)
{
    const uint64_t index =
        static_cast<uint64_t>(std::floor(simNs / tickNs_));
    if (windows_.empty()) {
        baseIndex_ = index;
        windows_.emplace_back();
        return &windows_.back();
    }
    if (index < baseIndex_) {
        ++droppedLate_;
        return nullptr; // older than the retained ring
    }
    // Extend forward, materializing idle-gap windows as zero-count
    // entries, and evict from the front once past capacity.
    while (index >= baseIndex_ + windows_.size()) {
        windows_.emplace_back();
        if (windows_.size() > capacity_) {
            windows_.pop_front();
            ++baseIndex_;
            ++evicted_;
        }
    }
    return &windows_[static_cast<size_t>(index - baseIndex_)];
}

void
TimeSeries::observe(double simNs, double value)
{
    if (!seriesSamplingEnabled())
        return;
    if (!std::isfinite(value) || !std::isfinite(simNs) || simNs < 0.0) {
        droppedSamplesCounter().add();
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    Window *window = windowFor(simNs);
    if (window == nullptr)
        return;
    const double magnitude = value < 0.0 ? 0.0 : value;
    if (window->buckets.empty())
        window->buckets.assign(LogBuckets::kCount, 0);
    ++window->buckets[LogBuckets::index(magnitude)];
    if (window->count == 0) {
        window->min = value;
        window->max = value;
    } else {
        window->min = std::min(window->min, value);
        window->max = std::max(window->max, value);
    }
    ++window->count;
    window->sum += value;
}

void
TimeSeries::advanceTo(double simNs)
{
    if (!seriesSamplingEnabled())
        return;
    if (!std::isfinite(simNs) || simNs < 0.0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    (void)windowFor(simNs);
}

SeriesPoint
TimeSeries::pointOf(const Window &window, double startNs, double durNs)
{
    SeriesPoint point;
    point.startNs = startNs;
    point.durNs = durNs;
    point.count = window.count;
    point.sum = window.sum;
    point.min = window.min;
    point.max = window.max;
    if (window.count == 0)
        return point;
    // Nearest-rank quantiles over the log buckets, estimated at the
    // bucket's geometric midpoint and clamped into the window's true
    // [min, max] (a single-sample window reports the sample exactly).
    const auto quantile = [&](double q) {
        const uint64_t rank = std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::ceil(q * static_cast<double>(window.count))));
        uint64_t seen = 0;
        for (size_t i = 0; i < window.buckets.size(); ++i) {
            seen += window.buckets[i];
            if (seen >= rank) {
                return std::clamp(LogBuckets::midpoint(i), window.min,
                                  window.max);
            }
        }
        return window.max;
    };
    point.p50 = quantile(0.50);
    point.p99 = quantile(0.99);
    return point;
}

SeriesSnapshot
TimeSeries::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SeriesSnapshot snap;
    snap.name = name_;
    snap.tickNs = tickNs_;
    snap.droppedLate = droppedLate_;
    snap.evictedWindows = evicted_;
    snap.points.reserve(windows_.size());
    for (size_t i = 0; i < windows_.size(); ++i) {
        const double startNs =
            static_cast<double>(baseIndex_ + i) * tickNs_;
        snap.points.push_back(pointOf(windows_[i], startNs, tickNs_));
    }
    return snap;
}

std::pair<uint64_t, double>
TimeSeries::tailTotals(size_t windows) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t count = 0;
    double sum = 0.0;
    const size_t have = windows_.size();
    for (size_t i = have > windows ? have - windows : 0; i < have; ++i) {
        count += windows_[i].count;
        sum += windows_[i].sum;
    }
    return {count, sum};
}

TimeSeriesRegistry &
TimeSeriesRegistry::global()
{
    static TimeSeriesRegistry *registry = new TimeSeriesRegistry();
    // Leaked deliberately, like MetricsRegistry: emitters cache series
    // references whose teardown order is unspecified.
    return *registry;
}

TimeSeries &
TimeSeriesRegistry::series(const std::string &name, double tickNs,
                           size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = series_.find(name);
    if (it == series_.end()) {
        it = series_
                 .emplace(name, std::make_unique<TimeSeries>(
                                    name, tickNs, capacity))
                 .first;
    }
    ANAHEIM_CHECK(it->second->tickNs() == tickNs, InvalidArgument,
                  "time series '", name, "' already registered with "
                  "tick ", it->second->tickNs(), " ns, requested ",
                  tickNs, " ns");
    return *it->second;
}

uint64_t
TimeSeriesRegistry::beginEpoch()
{
    return epoch_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SeriesSnapshot>
TimeSeriesRegistry::snapshotAll() const
{
    std::vector<const TimeSeries *> all;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        all.reserve(series_.size());
        for (const auto &[name, series] : series_)
            all.push_back(series.get());
    }
    std::vector<SeriesSnapshot> snaps;
    snaps.reserve(all.size());
    for (const TimeSeries *series : all)
        snaps.push_back(series->snapshot());
    return snaps;
}

size_t
TimeSeriesRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return series_.size();
}

void
TimeSeriesRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    series_.clear();
}

BurnRateEvaluator::BurnRateEvaluator(BurnRateConfig config)
    : config_(config)
{
    ANAHEIM_CHECK(config_.sloTarget > 0.0 && config_.sloTarget < 1.0,
                  InvalidArgument,
                  "burn-rate SLO target must be in (0, 1), got ",
                  config_.sloTarget);
    ANAHEIM_CHECK(config_.fastWindowTicks >= 1 &&
                      config_.slowWindowTicks >=
                          config_.fastWindowTicks,
                  InvalidArgument,
                  "burn-rate windows must satisfy 1 <= fast <= slow");
    ANAHEIM_CHECK(config_.burnThreshold > 0.0, InvalidArgument,
                  "burn threshold must be positive");
}

double
BurnRateEvaluator::burnOver(size_t windows) const
{
    uint64_t good = 0;
    uint64_t total = 0;
    const size_t have = history_.size();
    for (size_t i = have > windows ? have - windows : 0; i < have; ++i) {
        good += history_[i].first;
        total += history_[i].second;
    }
    if (total == 0)
        return 0.0; // no traffic burns no budget
    const double errorRate =
        1.0 - static_cast<double>(good) / static_cast<double>(total);
    return errorRate / (1.0 - config_.sloTarget);
}

BurnRateEvaluator::Evaluation
BurnRateEvaluator::update(uint64_t good, uint64_t total)
{
    ANAHEIM_CHECK(good <= total, InvalidArgument,
                  "burn-rate window has good ", good, " > total ",
                  total);
    history_.emplace_back(good, total);
    while (history_.size() > config_.slowWindowTicks)
        history_.pop_front();

    Evaluation eval;
    eval.fastBurn = burnOver(config_.fastWindowTicks);
    eval.slowBurn = burnOver(config_.slowWindowTicks);
    const bool breach = eval.fastBurn >= config_.burnThreshold &&
                        eval.slowBurn >= config_.burnThreshold;
    eval.fired = breach && !firing_;
    eval.resolved = !breach && firing_;
    firing_ = breach;
    eval.firing = firing_;
    if (eval.fired)
        ++alertsFired_;
    if (eval.resolved)
        ++alertsResolved_;
    if (firing_)
        ++ticksFiring_;
    return eval;
}

} // namespace anaheim::obs

#include "report.h"

#include <cinttypes>

#include "obs/trace.h"

namespace anaheim::obs {

const std::vector<std::string> &
AttributionReport::modes()
{
    static const std::vector<std::string> kModes = {
        "GPU-compute", "GPU-bandwidth", "PIM", "Other"};
    return kModes;
}

std::map<std::string, double>
AttributionReport::categoryTotalsNs() const
{
    std::map<std::string, double> totals;
    for (const auto &[category, cells] : rows) {
        for (const auto &[mode, cell] : cells) {
            (void)mode;
            totals[category] += cell.ns;
        }
    }
    return totals;
}

std::string
attributionCategory(const GanttEntry &entry)
{
    if (entry.device == "PIM")
        return "PIM";
    if (entry.device == "GPU" && entry.bound != BoundBy::None)
        return kernelClassName(entry.cls);
    // Maintenance phases (Scrub/Checkpoint/Rollback/Verify) are
    // categorized by phase, matching execute()'s chargePhase().
    return entry.phase;
}

std::string
attributionMode(const GanttEntry &entry)
{
    if (entry.device == "PIM")
        return "PIM";
    if (entry.device == "GPU" && entry.bound == BoundBy::Compute)
        return "GPU-compute";
    if (entry.device == "GPU" && entry.bound == BoundBy::Bandwidth)
        return "GPU-bandwidth";
    return "Other";
}

AttributionReport
buildAttribution(const RunResult &result)
{
    AttributionReport report;
    for (const GanttEntry &entry : result.timeline) {
        AttributionCell &cell =
            report.rows[attributionCategory(entry)]
                       [attributionMode(entry)];
        const double durNs = entry.endNs - entry.startNs;
        cell.ns += durNs;
        cell.energyPj += entry.energyPj;
        ++cell.kernels;
        report.totalNs += durNs;
        report.totalEnergyPj += entry.energyPj;
    }
    return report;
}

void
printAttribution(const RunResult &result, std::FILE *out)
{
    const AttributionReport report = buildAttribution(result);
    std::fprintf(out,
                 "  %-14s %12s %12s %12s %12s | %10s %6s\n", "category",
                 "GPU-comp ms", "GPU-bw ms", "PIM ms", "other ms",
                 "total ms", "share");
    const double total = result.totalNs > 0.0 ? result.totalNs : 1.0;
    for (const auto &[category, cells] : report.rows) {
        double rowNs = 0.0;
        std::fprintf(out, "  %-14s", category.c_str());
        for (const std::string &mode : AttributionReport::modes()) {
            const auto it = cells.find(mode);
            const double ns = it == cells.end() ? 0.0 : it->second.ns;
            rowNs += ns;
            std::fprintf(out, " %12.3f", ns * 1e-6);
        }
        std::fprintf(out, " | %10.3f %5.1f%%\n", rowNs * 1e-6,
                     100.0 * rowNs / total);
    }
    std::fprintf(out, "  %-14s %12s %12s %12s %12s | %10.3f %5.1f%%\n",
                 "total", "", "", "", "", report.totalNs * 1e-6,
                 100.0 * report.totalNs / total);
}

uint32_t
recordRunTimeline(const std::string &name, const RunResult &result)
{
    const uint32_t run = TraceCollector::global().beginRun(name);
    recordRunTimeline(run, result);
    return run;
}

void
recordRunTimeline(uint32_t runId, const RunResult &result)
{
    TraceCollector &collector = TraceCollector::global();
    for (const GanttEntry &entry : result.timeline) {
        SimSpan span;
        span.name = entry.phase;
        // Maintenance phases get their own lanes so recovery overhead
        // is visible next to the GPU/PIM streams.
        span.lane = entry.device == "DRAM" ? entry.phase : entry.device;
        if (entry.device == "GPU" && entry.bound == BoundBy::None)
            span.lane = entry.phase; // Verify passes priced on the GPU
        span.category = attributionCategory(entry);
        span.run = runId;
        span.startUs = entry.startNs * 1e-3;
        span.durUs = (entry.endNs - entry.startNs) * 1e-3;
        span.energyPj = entry.energyPj;
        collector.recordSimSpan(std::move(span));
    }
}

namespace {

/** The per-run gauge block under one namespace prefix ("run.last" or
 *  "run.<id>"). */
void
publishRunGauges(const std::string &prefix, const RunResult &result,
                 MetricsRegistry &registry)
{
    registry.gauge(prefix + ".total_ns").set(result.totalNs);
    registry.gauge(prefix + ".energy_pj").set(result.energyPj);
    registry.gauge(prefix + ".gpu_dram_bytes").set(result.gpuDramBytes);
    registry.gauge(prefix + ".pim_internal_bytes")
        .set(result.pimInternalBytes);
    registry.gauge(prefix + ".timeline_entries")
        .set(static_cast<double>(result.timeline.size()));
    registry.gauge(prefix + ".pim_capacity_fraction")
        .set(result.pimCapacityFraction);
    registry.gauge(prefix + ".pim_offline")
        .set(result.pimOffline ? 1.0 : 0.0);
    // Per-run resilience bill as gauges (the resilience.* counters
    // aggregate across runs; these attribute the cost to one run —
    // in serving, to one tenant request).
    const ResilienceStats &res = result.resilience;
    registry.gauge(prefix + ".retries")
        .set(static_cast<double>(res.pimRetries));
    registry.gauge(prefix + ".rollbacks")
        .set(static_cast<double>(res.rollbacks));
    registry.gauge(prefix + ".gpu_fallbacks")
        .set(static_cast<double>(res.gpuFallbacks));
    registry.gauge(prefix + ".migrations")
        .set(static_cast<double>(res.migrations));
    registry.gauge(prefix + ".unrecovered")
        .set(static_cast<double>(res.unrecovered));
    for (const auto &[category, ns] : result.timeNsByCategory)
        registry.gauge(prefix + ".time_ns." + category).set(ns);
}

} // namespace

void
publishRunMetrics(const RunResult &result, MetricsRegistry &registry)
{
    const ResilienceStats &res = result.resilience;
    const std::pair<const char *, uint64_t> counters[] = {
        {"resilience.faulty_words", res.faultyWords},
        {"resilience.ecc_corrected", res.eccCorrected},
        {"resilience.ecc_uncorrectable", res.eccUncorrectable},
        {"resilience.silent_errors", res.silentErrors},
        {"resilience.pim_retries", res.pimRetries},
        // The GPU-fallback aggregate is published per cause; the sum
        // of the three reproduces the old resilience.gpu_fallbacks.
        {"resilience.gpu_fallbacks.retry_exhausted",
         res.gpuFallbacksRetryExhausted},
        {"resilience.gpu_fallbacks.uncheckpointed",
         res.gpuFallbacksUncheckpointed},
        {"resilience.gpu_fallbacks.capacity_floor",
         res.gpuFallbacksCapacityFloor},
        {"resilience.lane_faults", res.laneFaults},
        {"resilience.retention_faulty_words", res.retentionFaultyWords},
        {"resilience.scrub_passes", res.scrubPasses},
        {"resilience.scrub_corrected", res.scrubCorrected},
        {"resilience.scrub_uncorrectable", res.scrubUncorrectable},
        {"resilience.checksum_checks", res.checksumChecks},
        {"resilience.checksum_mismatches", res.checksumMismatches},
        {"resilience.checkpoints", res.checkpoints},
        {"resilience.rollbacks", res.rollbacks},
        {"resilience.replayed_segments", res.replayedSegments},
        {"resilience.unrecovered", res.unrecovered},
        {"resilience.permanent_faulty_words", res.permanentFaultyWords},
        {"resilience.permanent_lane_faults", res.permanentLaneFaults},
        {"resilience.health_events", res.healthErrorEvents},
        {"resilience.quarantined_banks", res.quarantinedBanks},
        {"resilience.quarantined_lanes", res.quarantinedLanes},
        {"resilience.migrations", res.migrations},
    };
    for (const auto &[name, value] : counters)
        registry.counter(name).add(value);

    registry.counter("run.executions").add();
    publishRunGauges("run.last", result, registry);
}

void
publishRunMetrics(const RunResult &result, uint32_t runId,
                  MetricsRegistry &registry)
{
    publishRunMetrics(result, registry);
    publishRunGauges("run." + std::to_string(runId), result, registry);
}

namespace {

std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", value);
    return buf;
}

} // namespace

std::vector<std::pair<std::string, std::string>>
configSummary(const AnaheimConfig &config)
{
    std::vector<std::pair<std::string, std::string>> kv;
    kv.emplace_back("gpu", config.gpu.name);
    kv.emplace_back("gpu_int_tops", formatDouble(config.gpu.intTops));
    kv.emplace_back("gpu_dram_gbs", formatDouble(config.gpu.dramBwGBs));
    kv.emplace_back("library", config.library.name);
    kv.emplace_back("pim_enabled", config.pimEnabled ? "true" : "false");
    kv.emplace_back("pim_variant",
                    config.pim.variant == PimVariant::NearBank
                        ? "near-bank"
                        : "custom-hbm");
    kv.emplace_back("pim_buffer_entries",
                    std::to_string(config.pim.bufferEntries));
    kv.emplace_back("pim_column_partition",
                    config.pim.columnPartition ? "true" : "false");
    kv.emplace_back("fusion_basic",
                    config.fusion.basicFuse ? "true" : "false");
    kv.emplace_back("fusion_extra",
                    config.fusion.extraFuse ? "true" : "false");
    kv.emplace_back("fusion_aut",
                    config.fusion.autFuse ? "true" : "false");
    kv.emplace_back("ber", formatDouble(config.resilience.ber));
    kv.emplace_back("lane_ber", formatDouble(config.resilience.laneBer));
    kv.emplace_back("ecc_enabled",
                    config.resilience.eccEnabled ? "true" : "false");
    kv.emplace_back("checksum_enabled",
                    config.resilience.checksumEnabled ? "true" : "false");
    kv.emplace_back("scrub_enabled",
                    config.resilience.scrub.enabled ? "true" : "false");
    kv.emplace_back("checkpoint_enabled",
                    config.resilience.checkpoint.enabled ? "true"
                                                         : "false");
    kv.emplace_back("health_enabled",
                    config.resilience.health.enabled ? "true" : "false");
    kv.emplace_back(
        "health_permanent_threshold",
        std::to_string(config.resilience.health.permanentThreshold));
    kv.emplace_back(
        "health_min_capacity_fraction",
        formatDouble(config.resilience.health.minCapacityFraction));
    kv.emplace_back("permanent_bank_rate",
                    formatDouble(config.resilience.permanentBankRate));
    kv.emplace_back(
        "permanent_banks",
        std::to_string(config.resilience.permanentBanks.size()));
    kv.emplace_back(
        "permanent_lanes",
        std::to_string(config.resilience.permanentLanes.size()));
    kv.emplace_back("obs_trace", config.obs.trace ? "true" : "false");
    kv.emplace_back("serve_streams", std::to_string(config.serve.streams));
    kv.emplace_back("serve_arrival",
                    config.serve.arrival == ArrivalKind::OpenPoisson
                        ? "open-poisson"
                        : "closed");
    kv.emplace_back("serve_offered_rps",
                    formatDouble(config.serve.offeredRps));
    kv.emplace_back("serve_batching",
                    config.serve.batching ? "true" : "false");
    kv.emplace_back("serve_max_batch",
                    std::to_string(config.serve.maxBatch));
    kv.emplace_back("serve_overlap",
                    config.serve.overlap ? "true" : "false");
    kv.emplace_back("serve_deadline_ns",
                    formatDouble(config.serve.deadlineNs));
    kv.emplace_back("serve_deadline_classes",
                    std::to_string(config.serve.deadlineClassNs.size()));
    kv.emplace_back("serve_rate_limit_rps",
                    formatDouble(config.serve.rateLimitRps));
    kv.emplace_back("serve_preemption",
                    config.serve.preemption ? "true" : "false");
    kv.emplace_back("serve_telemetry_tick_ns",
                    formatDouble(config.serve.telemetry.tickNs));
    kv.emplace_back("serve_slo_target",
                    formatDouble(config.serve.telemetry.sloTarget));
    return kv;
}

void
printAvailability(const RunResult &result, std::FILE *out)
{
    const ResilienceStats &res = result.resilience;
    std::fprintf(out,
                 "  availability: %s (unrecovered events: %" PRIu64
                 ", pim %s)\n",
                 res.unrecovered == 0 ? "OK" : "DEGRADED",
                 res.unrecovered,
                 result.pimOffline ? "offline (capacity floor)"
                                   : "online");
    std::fprintf(out,
                 "  capacity: %.4f healthy-bank fraction "
                 "(%" PRIu64 " banks, %" PRIu64 " lanes quarantined, "
                 "%" PRIu64 " migrations)\n",
                 result.pimCapacityFraction, res.quarantinedBanks,
                 res.quarantinedLanes, res.migrations);
    std::fprintf(out,
                 "  escalations: %" PRIu64 " retries, %" PRIu64
                 " rollbacks, gpu fallbacks %" PRIu64
                 " (retry-exhausted %" PRIu64 ", uncheckpointed %" PRIu64
                 ", capacity-floor %" PRIu64 ")\n",
                 res.pimRetries, res.rollbacks, res.gpuFallbacks,
                 res.gpuFallbacksRetryExhausted,
                 res.gpuFallbacksUncheckpointed,
                 res.gpuFallbacksCapacityFloor);
}

} // namespace anaheim::obs

/**
 * @file
 * Per-kernel attribution over a RunResult: the paper's Fig. 8/9-style
 * breakdown (kernel class x GPU-vs-PIM x compute-vs-bandwidth-bound)
 * computed from `RunResult::timeline` in one place, replacing the
 * per-bench printf breakdowns. Also the glue that publishes a run's
 * counters into the metrics registry and its timeline into the trace
 * collector.
 */

#ifndef ANAHEIM_OBS_REPORT_H
#define ANAHEIM_OBS_REPORT_H

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "anaheim/framework.h"
#include "obs/metrics.h"

namespace anaheim::obs {

/** One (category, execution-mode) cell of the attribution table. */
struct AttributionCell {
    double ns = 0.0;
    double energyPj = 0.0;
    uint64_t kernels = 0;
};

/**
 * Attribution of a run's time/energy. Rows are the paper's breakdown
 * categories — the four kernel classes for GPU work, "PIM" for
 * offloaded segments, and one row per maintenance phase (Scrub /
 * Checkpoint / Rollback / Verify). Columns split each row by what
 * bounded the time.
 */
struct AttributionReport {
    /** Fixed column order: GPU-compute, GPU-bandwidth, PIM, Other. */
    static const std::vector<std::string> &modes();

    /** rows[category][mode] — absent cells mean zero. */
    std::map<std::string, std::map<std::string, AttributionCell>> rows;
    double totalNs = 0.0;
    double totalEnergyPj = 0.0;

    /** Per-category time totals; reproduces `timeNsByCategory` exactly
     *  (same additions, grouped by timeline entry instead of streamed
     *  during execution). */
    std::map<std::string, double> categoryTotalsNs() const;
};

/** Breakdown category of one timeline entry: kernel-class name for GPU
 *  entries, "PIM" for PIM entries, the phase for maintenance entries —
 *  the key execute() uses for `timeNsByCategory`. */
std::string attributionCategory(const GanttEntry &entry);

/** Execution-mode column of one timeline entry. */
std::string attributionMode(const GanttEntry &entry);

/** Build the attribution table from a run's timeline. */
AttributionReport buildAttribution(const RunResult &result);

/** Print the table (category rows x mode columns, ms and % shares). */
void printAttribution(const RunResult &result, std::FILE *out = stdout);

/**
 * Record a run's simulated timeline into the global trace collector as
 * one run (its own process group in the exported trace): GPU and PIM
 * lanes plus one lane per maintenance phase.
 */
uint32_t recordRunTimeline(const std::string &name,
                           const RunResult &result);

/** Same, but into an already-begun run (one trace-collector run id per
 *  serve stream, many request timelines recorded onto it). */
void recordRunTimeline(uint32_t runId, const RunResult &result);

/**
 * Publish a run's statistics into `registry`: every ResilienceStats
 * counter under "resilience." and run totals as gauges. Counters
 * accumulate across runs; gauges are namespaced per run —
 * "run.<id>.total_ns" etc., mirroring the per-run Perfetto process
 * groups — so interleaved runs don't clobber each other, with a
 * "run.last.*" alias always holding the most recently published run.
 */
void publishRunMetrics(const RunResult &result, uint32_t runId,
                       MetricsRegistry &registry = MetricsRegistry::global());

/** Convenience overload without a run id: publishes the counters and
 *  the "run.last.*" gauges only. */
void publishRunMetrics(const RunResult &result,
                       MetricsRegistry &registry = MetricsRegistry::global());

/**
 * End-of-run availability report: unrecovered-corruption verdict,
 * healthy-bank capacity left after quarantine, and the escalation
 * counters (retries / rollbacks / migrations / per-cause GPU
 * fallbacks).
 */
void printAvailability(const RunResult &result, std::FILE *out = stdout);

/**
 * Flat key/value description of a resolved AnaheimConfig (gpu/dram/pim
 * names and the load-bearing knobs), for self-describing bench JSON
 * headers and metrics dumps.
 */
std::vector<std::pair<std::string, std::string>> configSummary(
    const AnaheimConfig &config);

} // namespace anaheim::obs

#endif // ANAHEIM_OBS_REPORT_H

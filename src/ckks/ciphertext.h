/**
 * @file
 * CKKS data objects: Plaintext (encoded, unencrypted) and Ciphertext
 * (a pair (b, a) in R_Q^2, §II-A). Both carry their active level (number
 * of Q limbs) and the exact scaling factor currently attached to the
 * underlying message.
 */

#ifndef ANAHEIM_CKKS_CIPHERTEXT_H
#define ANAHEIM_CKKS_CIPHERTEXT_H

#include "poly/polynomial.h"

namespace anaheim {

struct Plaintext {
    Polynomial poly;
    /** Number of active Q limbs. */
    size_t level = 0;
    /** Exact scale Delta currently multiplying the message. */
    double scale = 0.0;
};

struct Ciphertext {
    /** Decrypts as b + a * s. */
    Polynomial b;
    Polynomial a;
    size_t level = 0;
    double scale = 0.0;

    size_t degree() const { return b.degree(); }
};

} // namespace anaheim

#endif // ANAHEIM_CKKS_CIPHERTEXT_H

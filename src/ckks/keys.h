/**
 * @file
 * CKKS key material and generation.
 *
 * Evaluation keys (evks) follow the hybrid (Han–Ki) gadget decomposition
 * the paper assumes: an evk is 2*D polynomials in R_PQ (Table I), where
 * digit j encrypts g_j * t for the gadget factor g_j = P * Dhat_j *
 * [Dhat_j^{-1}]_{D_j}, which reduces to (P mod q_i) on the digit's own
 * primes and 0 elsewhere.
 */

#ifndef ANAHEIM_CKKS_KEYS_H
#define ANAHEIM_CKKS_KEYS_H

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "context.h"
#include "poly/polynomial.h"

namespace anaheim {

struct SecretKey {
    /** Secret over the full QP basis, evaluation domain. */
    Polynomial s;
    /** The raw ternary coefficients (needed to derive s^2 and phi(s)). */
    std::vector<int8_t> coeffs;
};

struct PublicKey {
    /** (b, a) with b = -a*s + e over the full Q basis. */
    Polynomial b;
    Polynomial a;
};

/** Evaluation key: D digit pairs over QP (2*D polynomials, Table I). */
struct EvalKey {
    std::vector<Polynomial> b;
    std::vector<Polynomial> a;

    size_t dnum() const { return b.size(); }

    /** Total size in bytes at word width `wordBytes` (paper: 4B words).*/
    double sizeBytes(size_t wordBytes = 8) const;
};

/** Keys for a set of rotations plus conjugation, indexed by Galois
 *  element. */
using GaloisKeys = std::map<uint64_t, EvalKey>;

class KeyGenerator
{
  public:
    KeyGenerator(const CkksContext &context, uint64_t seed = 1);

    const SecretKey &secretKey() const { return secret_; }

    PublicKey makePublicKey();

    /** Relinearization key: switches s^2 back to s. */
    EvalKey makeRelinKey();

    /** Key for the Galois automorphism X -> X^k. */
    EvalKey makeGaloisKey(uint64_t galoisElt);

    /** Key for cyclic slot rotation by r (k = 5^r mod 2N). */
    EvalKey makeRotationKey(int rotation);

    /** Key for slot conjugation (k = 2N - 1). */
    EvalKey makeConjugationKey();

    /** Galois keys for all rotations in `rotations` (+ conjugation when
     *  requested). */
    GaloisKeys makeGaloisKeys(const std::vector<int> &rotations,
                              bool withConjugation = false);

    /** Galois element for cyclic rotation by r at ring degree n. */
    static uint64_t rotationGaloisElt(int rotation, size_t n);

    /** Galois element for conjugation. */
    static uint64_t conjugationGaloisElt(size_t n);

  private:
    /** Build an evk switching key `target` (over QP, Eval) to s. */
    EvalKey makeSwitchingKey(const Polynomial &target);

    const CkksContext &context_;
    Rng rng_;
    SecretKey secret_;
};

} // namespace anaheim

#endif // ANAHEIM_CKKS_KEYS_H

#include "keys.h"

#include "common/logging.h"
#include "math/modarith.h"

namespace anaheim {

namespace {

/** Sample a uniform polynomial over `basis` directly in Eval domain. */
Polynomial
sampleUniformPoly(Rng &rng, const RnsBasis &basis)
{
    Polynomial p(basis, Domain::Eval);
    for (size_t i = 0; i < basis.size(); ++i)
        p.limb(i) = sampleUniform(rng, basis.degree(), basis.prime(i));
    return p;
}

/** Sample a small error polynomial over `basis`, returned in Eval. */
Polynomial
sampleErrorPoly(Rng &rng, const RnsBasis &basis, double sigma)
{
    const auto errs = sampleError(rng, basis.degree(), sigma);
    Polynomial p = polynomialFromSigned(basis, errs);
    p.toEval();
    return p;
}

} // namespace

double
EvalKey::sizeBytes(size_t wordBytes) const
{
    double total = 0.0;
    for (const auto &poly : b)
        total += static_cast<double>(poly.limbCount()) * poly.degree() *
                 wordBytes;
    return 2.0 * total; // a-part mirrors the b-part
}

KeyGenerator::KeyGenerator(const CkksContext &context, uint64_t seed)
    : context_(context), rng_(seed)
{
    const auto &params = context_.params();
    secret_.coeffs =
        sampleTernary(rng_, context_.degree(), params.hammingWeight);
    std::vector<int64_t> wide(secret_.coeffs.begin(), secret_.coeffs.end());
    secret_.s = polynomialFromSigned(context_.qpBasis(), wide);
    secret_.s.toEval();
}

PublicKey
KeyGenerator::makePublicKey()
{
    const auto &params = context_.params();
    const RnsBasis &basis = context_.qBasis();
    PublicKey pk;
    pk.a = sampleUniformPoly(rng_, basis);
    Polynomial e = sampleErrorPoly(rng_, basis, params.sigma);
    // b = -a*s + e over Q.
    Polynomial as = pk.a;
    as.mulEq(secret_.s.firstLimbs(basis.size()));
    pk.b = e - as;
    return pk;
}

EvalKey
KeyGenerator::makeSwitchingKey(const Polynomial &target)
{
    const auto &params = context_.params();
    const RnsBasis &qp = context_.qpBasis();
    const size_t levels = context_.maxLevel();
    const size_t dnum = context_.dnum();

    EvalKey evk;
    evk.b.reserve(dnum);
    evk.a.reserve(dnum);
    for (size_t j = 0; j < dnum; ++j) {
        Polynomial a = sampleUniformPoly(rng_, qp);
        Polynomial b = sampleErrorPoly(rng_, qp, params.sigma);
        // b = e - a*s + g_j * target. The gadget factor g_j reduces to
        // (P mod q_i) on the digit's own primes and 0 everywhere else.
        Polynomial as = a;
        as.mulEq(secret_.s);
        b -= as;
        const auto [digitBegin, digitEnd] = context_.digitRange(j);
        std::vector<uint64_t> gadget(qp.size(), 0);
        for (size_t i = digitBegin; i < digitEnd && i < levels; ++i)
            gadget[i] = context_.pModQ()[i];
        Polynomial scaledTarget = target;
        scaledTarget.mulScalarEq(gadget);
        b += scaledTarget;
        evk.b.push_back(std::move(b));
        evk.a.push_back(std::move(a));
    }
    return evk;
}

EvalKey
KeyGenerator::makeRelinKey()
{
    Polynomial sSquared = secret_.s;
    sSquared.mulEq(secret_.s);
    return makeSwitchingKey(sSquared);
}

EvalKey
KeyGenerator::makeGaloisKey(uint64_t galoisElt)
{
    return makeSwitchingKey(secret_.s.automorphism(galoisElt));
}

EvalKey
KeyGenerator::makeRotationKey(int rotation)
{
    return makeGaloisKey(rotationGaloisElt(rotation, context_.degree()));
}

EvalKey
KeyGenerator::makeConjugationKey()
{
    return makeGaloisKey(conjugationGaloisElt(context_.degree()));
}

GaloisKeys
KeyGenerator::makeGaloisKeys(const std::vector<int> &rotations,
                             bool withConjugation)
{
    GaloisKeys keys;
    for (int r : rotations) {
        const uint64_t k = rotationGaloisElt(r, context_.degree());
        if (!keys.count(k))
            keys.emplace(k, makeGaloisKey(k));
    }
    if (withConjugation) {
        const uint64_t k = conjugationGaloisElt(context_.degree());
        keys.emplace(k, makeGaloisKey(k));
    }
    return keys;
}

uint64_t
KeyGenerator::rotationGaloisElt(int rotation, size_t n)
{
    const uint64_t m = 2 * n;
    const size_t slots = n / 2;
    // Normalize the rotation into [0, slots).
    int64_t r = rotation % static_cast<int64_t>(slots);
    if (r < 0)
        r += static_cast<int64_t>(slots);
    uint64_t k = 1;
    for (int64_t i = 0; i < r; ++i)
        k = k * 5 % m;
    return k;
}

uint64_t
KeyGenerator::conjugationGaloisElt(size_t n)
{
    return 2 * n - 1;
}

} // namespace anaheim

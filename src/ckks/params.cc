#include "params.h"

#include "common/logging.h"

namespace anaheim {

void
CkksParams::validate() const
{
    ANAHEIM_ASSERT((n & (n - 1)) == 0 && n >= 8, "N must be a power of two");
    ANAHEIM_ASSERT(levels >= 1, "need at least one prime");
    ANAHEIM_ASSERT(alpha >= 1 && alpha <= levels, "bad alpha");
    ANAHEIM_ASSERT(logScale >= 20 && logScale <= 55, "bad logScale");
    ANAHEIM_ASSERT(firstModulusBits > logScale,
                   "first modulus must exceed the scale");
    ANAHEIM_ASSERT(firstModulusBits <= 59, "prime width beyond 59 bits");
}

double
CkksParams::maxLogPQ(size_t n)
{
    // Homomorphic-encryption-standard style bound, linear in N; anchored
    // at the value the paper uses (log PQ < 1623 at N = 2^16) [19].
    return 1623.0 * static_cast<double>(n) / 65536.0;
}

bool
CkksParams::satisfies128BitSecurity() const
{
    const double logQ =
        static_cast<double>(firstModulusBits) +
        static_cast<double>(levels - 1) * logScale;
    const double logP = static_cast<double>(alpha) * firstModulusBits;
    return logQ + logP < maxLogPQ(n);
}

CkksParams
CkksParams::testParams(size_t n, size_t levels, size_t alpha)
{
    CkksParams params;
    params.n = n;
    params.levels = levels;
    params.alpha = alpha;
    params.logScale = 40;
    params.firstModulusBits = 52;
    params.validate();
    return params;
}

CkksParams
CkksParams::paperParams()
{
    CkksParams params;
    params.n = size_t{1} << 16;
    params.levels = 54;
    params.alpha = 14;
    // The paper stores 28-bit primes and reaches Delta = 2^48..2^55 via
    // double-prime scaling [1]; for modeling purposes the logical scale
    // is what matters.
    params.logScale = 48;
    params.firstModulusBits = 55;
    return params;
}

CkksParams
CkksParams::bootstrapParams(size_t n)
{
    CkksParams params;
    params.n = n;
    params.levels = 17;
    params.alpha = 3;
    // The q0/Delta ratio (2^10) balances the scaled-sine linearization
    // error against keyswitch-noise amplification through the sine's
    // slope; the sparse secret (H_s = 2^5 / 2 in Table IV terms) bounds
    // the modulus multiple K after ModRaise.
    params.logScale = 48;
    params.firstModulusBits = 58;
    params.hammingWeight = 16;
    params.validate();
    return params;
}

} // namespace anaheim

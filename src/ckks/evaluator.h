/**
 * @file
 * CKKS evaluator: the homomorphic basic functions of §II-A — HADD,
 * PMULT, HMULT (tensor + relinearize), HROT (automorphism + keyswitch)
 * — plus rescaling, level management, conjugation and hoisted rotations.
 */

#ifndef ANAHEIM_CKKS_EVALUATOR_H
#define ANAHEIM_CKKS_EVALUATOR_H

#include <complex>
#include <vector>

#include "ciphertext.h"
#include "context.h"
#include "encoder.h"
#include "keys.h"
#include "keyswitch.h"

namespace anaheim {

class CkksEvaluator
{
  public:
    CkksEvaluator(const CkksContext &context, const CkksEncoder &encoder)
        : context_(context), encoder_(encoder), switcher_(context)
    {
    }

    const CkksContext &context() const { return context_; }
    const KeySwitcher &keySwitcher() const { return switcher_; }

    /** @name Additive ops (HADD family). Levels are aligned by dropping
     *  limbs; scales must match. */
    /// @{
    Ciphertext add(const Ciphertext &x, const Ciphertext &y) const;
    Ciphertext sub(const Ciphertext &x, const Ciphertext &y) const;
    Ciphertext negate(const Ciphertext &x) const;
    Ciphertext addPlain(const Ciphertext &x, const Plaintext &pt) const;
    Ciphertext subPlain(const Ciphertext &x, const Plaintext &pt) const;
    /// @}

    /** PMULT: plaintext-ciphertext multiplication; scale multiplies. */
    Ciphertext mulPlain(const Ciphertext &x, const Plaintext &pt) const;

    /** Multiply by a scalar (encoded at the ciphertext's level). */
    Ciphertext mulConst(const Ciphertext &x,
                        std::complex<double> value) const;

    /** Multiply by a small integer without consuming scale. */
    Ciphertext mulInteger(const Ciphertext &x, int64_t value) const;

    /** Add a scalar constant (encoded at the ciphertext's scale). */
    Ciphertext addConst(const Ciphertext &x,
                        std::complex<double> value) const;

    /** HMULT: ciphertext-ciphertext multiplication with
     *  relinearization under `relinKey`. Does not rescale. */
    Ciphertext multiply(const Ciphertext &x, const Ciphertext &y,
                        const EvalKey &relinKey) const;

    Ciphertext square(const Ciphertext &x, const EvalKey &relinKey) const;

    /** Drop the last prime and divide the scale by it. */
    Ciphertext rescale(const Ciphertext &x) const;

    /** Truncate to `level` limbs (message and scale unchanged). */
    Ciphertext dropToLevel(const Ciphertext &x, size_t level) const;

    /** HROT: cyclic slot rotation by r via automorphism + keyswitch.
     *  The GaloisKeys must contain the key for 5^r. */
    Ciphertext rotate(const Ciphertext &x, int rotation,
                      const GaloisKeys &keys) const;

    /** Slot-wise complex conjugation. */
    Ciphertext conjugate(const Ciphertext &x, const GaloisKeys &keys) const;

    /**
     * Hoisted rotations (§III-B): one ModUp shared across all rotations;
     * per-rotation automorphism of the decomposed digits, KeyMult, and
     * ModDown. Returns one ciphertext per requested rotation.
     */
    std::vector<Ciphertext> rotateHoisted(const Ciphertext &x,
                                          const std::vector<int> &rotations,
                                          const GaloisKeys &keys) const;

    /** Align two ciphertexts to a common level (drops limbs). */
    void matchLevels(Ciphertext &x, Ciphertext &y) const;

    /**
     * Exactly retarget a ciphertext's scale by multiplying with the
     * constant 1.0 encoded at the adjusting scale and rescaling.
     * Consumes one level.
     */
    Ciphertext adjustScaleTo(const Ciphertext &x, double targetScale) const;

  private:
    /** Equalize operand scales before addition (see adjustScaleTo). */
    void alignScales(Ciphertext &x, Ciphertext &y) const;

    Ciphertext applyGalois(const Ciphertext &x, uint64_t galoisElt,
                           const GaloisKeys &keys) const;

    const CkksContext &context_;
    const CkksEncoder &encoder_;
    KeySwitcher switcher_;
};

} // namespace anaheim

#endif // ANAHEIM_CKKS_EVALUATOR_H

/**
 * @file
 * CkksContext: the shared, immutable environment for one parameter set —
 * the Q and P prime chains with their NTT tables, the hybrid-keyswitching
 * digit partition, and a cache of basis converters.
 */

#ifndef ANAHEIM_CKKS_CONTEXT_H
#define ANAHEIM_CKKS_CONTEXT_H

#include <map>
#include <memory>
#include <vector>

#include "math/modarith.h"
#include "params.h"
#include "rns/basis.h"
#include "rns/bconv.h"

namespace anaheim {

class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);

    const CkksParams &params() const { return params_; }
    size_t degree() const { return params_.n; }
    size_t maxLevel() const { return params_.levels; }
    size_t alpha() const { return params_.alpha; }
    size_t dnum() const { return params_.dnum(); }

    /** Full ciphertext basis Q (L primes, q0 first). */
    const RnsBasis &qBasis() const { return qBasis_; }
    /** Special-prime basis P (alpha primes). */
    const RnsBasis &pBasis() const { return pBasis_; }
    /** Concatenated basis Q || P used by evaluation keys. */
    const RnsBasis &qpBasis() const { return qpBasis_; }

    /** Basis of a ciphertext with `level` active limbs: slice(Q, level).*/
    RnsBasis levelBasis(size_t level) const;

    /** Extended basis Q_level || P used during keyswitching. */
    RnsBasis extendedBasis(size_t level) const;

    /** Prime indices [begin, end) of hybrid-keyswitching digit j. */
    std::pair<size_t, size_t> digitRange(size_t j) const;

    /** Number of digits that cover a ciphertext at `level` limbs. */
    size_t digitsAtLevel(size_t level) const;

    /** P mod q_i for each Q prime (gadget factor of the matching digit). */
    const std::vector<uint64_t> &pModQ() const { return pModQ_; }
    /** P^-1 mod q_i for each Q prime (ModDown scaling). */
    const std::vector<uint64_t> &pInvModQ() const { return pInvModQ_; }
    /** Shoup-prepared companions of pInvModQ(): ModDown broadcasts
     *  P^-1 across every coefficient of limb i each keyswitch. */
    const std::vector<ShoupMul> &pInvModQPrepared() const
    {
        return pInvModQPrepared_;
    }

    /**
     * Cached converter between arbitrary sub-bases of this context.
     * Construction precomputes the qHat matrices; the cache keys on the
     * exact prime lists.
     */
    const BasisConverter &converter(const RnsBasis &source,
                                    const RnsBasis &target) const;

  private:
    CkksParams params_;
    RnsBasis qBasis_;
    RnsBasis pBasis_;
    RnsBasis qpBasis_;
    std::vector<uint64_t> pModQ_;
    std::vector<uint64_t> pInvModQ_;
    std::vector<ShoupMul> pInvModQPrepared_;
    mutable std::map<
        std::pair<std::vector<uint64_t>, std::vector<uint64_t>>,
        std::unique_ptr<BasisConverter>>
        converterCache_;
};

} // namespace anaheim

#endif // ANAHEIM_CKKS_CONTEXT_H

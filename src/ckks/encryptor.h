/**
 * @file
 * Encryption and decryption: [<u>] = (b, a) = (-a*s + <u> + e, a).
 */

#ifndef ANAHEIM_CKKS_ENCRYPTOR_H
#define ANAHEIM_CKKS_ENCRYPTOR_H

#include "ciphertext.h"
#include "context.h"
#include "encoder.h"
#include "keys.h"

namespace anaheim {

class CkksEncryptor
{
  public:
    CkksEncryptor(const CkksContext &context, uint64_t seed = 99)
        : context_(context), rng_(seed)
    {
    }

    /** Symmetric encryption under the secret key. */
    Ciphertext encrypt(const Plaintext &pt, const SecretKey &sk);

    /** Public-key encryption. */
    Ciphertext encrypt(const Plaintext &pt, const PublicKey &pk);

  private:
    const CkksContext &context_;
    Rng rng_;
};

class CkksDecryptor
{
  public:
    CkksDecryptor(const CkksContext &context, const SecretKey &sk)
        : context_(context), secret_(sk)
    {
    }

    /** Recover the plaintext b + a*s (scale and level preserved). */
    Plaintext decrypt(const Ciphertext &ct) const;

  private:
    const CkksContext &context_;
    const SecretKey &secret_;
};

} // namespace anaheim

#endif // ANAHEIM_CKKS_ENCRYPTOR_H

#include "encryptor.h"

#include "common/logging.h"

namespace anaheim {

Ciphertext
CkksEncryptor::encrypt(const Plaintext &pt, const SecretKey &sk)
{
    const RnsBasis basis = pt.poly.basis();
    ANAHEIM_ASSERT(pt.poly.domain() == Domain::Eval,
                   "plaintext must be in Eval domain");
    Ciphertext ct;
    ct.level = pt.level;
    ct.scale = pt.scale;

    Polynomial a(basis, Domain::Eval);
    for (size_t i = 0; i < basis.size(); ++i)
        a.limb(i) = sampleUniform(rng_, basis.degree(), basis.prime(i));

    const auto errs =
        sampleError(rng_, basis.degree(), context_.params().sigma);
    Polynomial e = polynomialFromSigned(basis, errs);
    e.toEval();

    // b = -a*s + m + e.
    Polynomial as = a;
    as.mulEq(sk.s.firstLimbs(basis.size()));
    ct.b = pt.poly + e - as;
    ct.a = std::move(a);
    return ct;
}

Ciphertext
CkksEncryptor::encrypt(const Plaintext &pt, const PublicKey &pk)
{
    const RnsBasis basis = pt.poly.basis();
    const size_t level = pt.level;
    Ciphertext ct;
    ct.level = level;
    ct.scale = pt.scale;

    // v: small ternary mask; e0, e1: fresh errors.
    const auto vCoeffs = sampleTernary(rng_, basis.degree());
    std::vector<int64_t> wide(vCoeffs.begin(), vCoeffs.end());
    Polynomial v = polynomialFromSigned(basis, wide);
    v.toEval();

    const double sigma = context_.params().sigma;
    Polynomial e0 = polynomialFromSigned(
        basis, sampleError(rng_, basis.degree(), sigma));
    e0.toEval();
    Polynomial e1 = polynomialFromSigned(
        basis, sampleError(rng_, basis.degree(), sigma));
    e1.toEval();

    Polynomial pkb = pk.b.firstLimbs(level);
    Polynomial pka = pk.a.firstLimbs(level);
    pkb.mulEq(v);
    pka.mulEq(v);
    ct.b = pkb + e0 + pt.poly;
    ct.a = pka + e1;
    return ct;
}

Plaintext
CkksDecryptor::decrypt(const Ciphertext &ct) const
{
    Plaintext pt;
    pt.level = ct.level;
    pt.scale = ct.scale;
    Polynomial as = ct.a;
    as.mulEq(secret_.s.firstLimbs(ct.level));
    pt.poly = ct.b + as;
    return pt;
}

} // namespace anaheim

/**
 * @file
 * Ciphertext-level integrity sealing over the per-limb rolling
 * checksums of src/poly/checksum.h.
 *
 * A ciphertext is sealed when it is produced (encryptor output, end of
 * a verified PIM segment, a restored checkpoint) and verified before
 * its residues are trusted again — at coherence write-back boundaries,
 * before a checkpoint snapshot, and before decryption. Verification
 * failure reports DataCorruption with the component and limb, so a
 * resilient caller can roll back to its last good snapshot and replay
 * instead of propagating poisoned residues.
 */

#ifndef ANAHEIM_CKKS_INTEGRITY_H
#define ANAHEIM_CKKS_INTEGRITY_H

#include "ciphertext.h"
#include "common/status.h"
#include "poly/checksum.h"

namespace anaheim {

/** Integrity metadata of one ciphertext: digests of both components
 *  plus the (level, scale) header it was sealed at. */
struct CiphertextChecksum {
    ChecksumTag b;
    ChecksumTag a;
    size_t level = 0;
    double scale = 0.0;

    bool operator==(const CiphertextChecksum &other) const
    {
        return b == other.b && a == other.a && level == other.level &&
               scale == other.scale;
    }
};

/** Seal: digest both components and capture the header. */
CiphertextChecksum sealCiphertext(const Ciphertext &ct);

/**
 * Verify a ciphertext against its seal. Ok when both component
 * digests and the header match; DataCorruption naming the failing
 * component otherwise.
 */
Status verifyCiphertext(const Ciphertext &ct,
                        const CiphertextChecksum &seal);

} // namespace anaheim

#endif // ANAHEIM_CKKS_INTEGRITY_H

#include "encoder.h"

#include <cmath>

#include "common/logging.h"
#include "math/modarith.h"

namespace anaheim {

namespace {

/** Bit-reversal permutation on a complex vector of power-of-two size. */
void
bitReversePermute(std::vector<std::complex<double>> &vals)
{
    const size_t n = vals.size();
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(vals[i], vals[j]);
    }
}

/**
 * Centered value of an RNS residue vector, reconstructed exactly.
 *
 * Decoded CKKS values (message * scale + noise) are always far below
 * the product of the first two primes, so an exact __int128 CRT over a
 * prefix of limbs whose product stays below 2^126 recovers the centered
 * integer with no rounding at all. Using more limbs would only confirm
 * the high digits are zero.
 */
long double
centeredValue(const std::vector<uint64_t> &residues, const RnsBasis &basis)
{
    // Greedily take limbs while the modulus product fits 126 bits.
    unsigned __int128 modulus = 1;
    size_t used = 0;
    while (used < residues.size()) {
        const uint64_t q = basis.prime(used);
        if (modulus > (static_cast<unsigned __int128>(1) << 126) / q)
            break;
        modulus *= q;
        ++used;
    }
    // Garner reconstruction over the prefix, exact in __int128.
    unsigned __int128 value = 0;
    unsigned __int128 product = 1;
    for (size_t i = 0; i < used; ++i) {
        const uint64_t qi = basis.prime(i);
        const uint64_t current = static_cast<uint64_t>(value % qi);
        const uint64_t inv = invMod(static_cast<uint64_t>(product % qi), qi);
        const uint64_t digit =
            mulMod(subMod(residues[i], current, qi), inv, qi);
        value += product * digit;
        product *= qi;
    }
    const bool negative = value > modulus / 2;
    const unsigned __int128 magnitude = negative ? modulus - value : value;
    long double result = 0.0L;
    long double base = 1.0L;
    // Convert the 128-bit magnitude in 32-bit chunks.
    unsigned __int128 rest = magnitude;
    while (rest > 0) {
        result += base * static_cast<long double>(
                             static_cast<uint32_t>(rest & 0xffffffffu));
        base *= 4294967296.0L;
        rest >>= 32;
    }
    return negative ? -result : result;
}

} // namespace

CkksEncoder::CkksEncoder(const CkksContext &context)
    : context_(context), slots_(context.degree() / 2)
{
    const size_t m = 2 * context.degree();
    rotGroup_.resize(slots_);
    size_t fivePow = 1;
    for (size_t j = 0; j < slots_; ++j) {
        rotGroup_[j] = fivePow;
        fivePow = fivePow * 5 % m;
    }
    ksiPows_.resize(m + 1);
    for (size_t k = 0; k <= m; ++k) {
        const double angle = 2.0 * M_PI * k / static_cast<double>(m);
        ksiPows_[k] = {std::cos(angle), std::sin(angle)};
    }
}

void
CkksEncoder::embedForward(std::vector<std::complex<double>> &vals) const
{
    // Special FFT (HEAAN formulation): vals[j] <- sum_i vals[i] *
    // zeta^{5^j * i} with zeta the primitive 2N-th root of unity.
    const size_t n = vals.size();
    const size_t m = 2 * context_.degree();
    ANAHEIM_ASSERT(n == slots_, "embed size mismatch");
    bitReversePermute(vals);
    for (size_t len = 2; len <= n; len <<= 1) {
        const size_t lenh = len >> 1;
        const size_t lenq = len << 2;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < lenh; ++j) {
                const size_t idx = (rotGroup_[j] % lenq) * (m / lenq);
                const auto u = vals[i + j];
                const auto v = vals[i + j + lenh] * ksiPows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
CkksEncoder::embedInverse(std::vector<std::complex<double>> &vals) const
{
    const size_t n = vals.size();
    const size_t m = 2 * context_.degree();
    ANAHEIM_ASSERT(n == slots_, "embed size mismatch");
    for (size_t len = n; len >= 2; len >>= 1) {
        const size_t lenh = len >> 1;
        const size_t lenq = len << 2;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < lenh; ++j) {
                const size_t idx =
                    (lenq - (rotGroup_[j] % lenq)) * (m / lenq);
                const auto u = vals[i + j] + vals[i + j + lenh];
                auto v = vals[i + j] - vals[i + j + lenh];
                v *= ksiPows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    bitReversePermute(vals);
    const double scale = 1.0 / static_cast<double>(n);
    for (auto &v : vals)
        v *= scale;
}

Plaintext
CkksEncoder::encode(const std::vector<std::complex<double>> &message,
                    size_t level, double scale) const
{
    return encodeAtBasis(message, context_.levelBasis(level), scale);
}

Plaintext
CkksEncoder::encodeAtBasis(const std::vector<std::complex<double>> &message,
                           const RnsBasis &basis, double scale) const
{
    ANAHEIM_ASSERT(message.size() <= slots_, "too many slots");
    if (scale == 0.0)
        scale = std::ldexp(1.0, context_.params().logScale);

    std::vector<std::complex<double>> vals(slots_, {0.0, 0.0});
    std::copy(message.begin(), message.end(), vals.begin());
    embedInverse(vals);

    std::vector<int64_t> coeffs(context_.degree());
    for (size_t i = 0; i < slots_; ++i) {
        coeffs[i] = llround(vals[i].real() * scale);
        coeffs[i + slots_] = llround(vals[i].imag() * scale);
    }
    Plaintext pt;
    pt.poly = polynomialFromSigned(basis, coeffs);
    pt.poly.toEval();
    pt.level = basis.size();
    pt.scale = scale;
    return pt;
}

Plaintext
CkksEncoder::encodeReal(const std::vector<double> &message, size_t level,
                        double scale) const
{
    std::vector<std::complex<double>> complexMsg(message.size());
    for (size_t i = 0; i < message.size(); ++i)
        complexMsg[i] = {message[i], 0.0};
    return encode(complexMsg, level, scale);
}

std::vector<std::complex<double>>
CkksEncoder::decode(const Plaintext &pt) const
{
    Polynomial poly = pt.poly;
    poly.toCoeff();
    const size_t l = poly.limbCount();
    const RnsBasis basis = poly.basis();

    std::vector<std::complex<double>> vals(slots_);
    std::vector<uint64_t> residues(l);
    for (size_t i = 0; i < slots_; ++i) {
        for (size_t k = 0; k < l; ++k)
            residues[k] = poly.limb(k)[i];
        const long double re = centeredValue(residues, basis);
        for (size_t k = 0; k < l; ++k)
            residues[k] = poly.limb(k)[i + slots_];
        const long double im = centeredValue(residues, basis);
        vals[i] = {static_cast<double>(re / pt.scale),
                   static_cast<double>(im / pt.scale)};
    }
    embedForward(vals);
    return vals;
}

} // namespace anaheim

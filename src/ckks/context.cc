#include "context.h"

#include "common/logging.h"
#include "math/modarith.h"
#include "math/primes.h"

namespace anaheim {

CkksContext::CkksContext(const CkksParams &params) : params_(params)
{
    params_.validate();
    const size_t n = params_.n;

    // Prime chain: q0 at firstModulusBits, the rest near 2^logScale, and
    // alpha special primes at firstModulusBits (largest available, the
    // standard choice to minimize ModDown noise).
    const auto q0 = generateNttPrimes(n, params_.firstModulusBits, 1);
    auto scalePrimes =
        generateNttPrimes(n, params_.logScale, params_.levels - 1, q0);
    std::vector<uint64_t> qPrimes = q0;
    qPrimes.insert(qPrimes.end(), scalePrimes.begin(), scalePrimes.end());

    std::vector<uint64_t> skip = qPrimes;
    const auto pPrimes =
        generateNttPrimes(n, params_.firstModulusBits, params_.alpha, skip);

    qBasis_ = RnsBasis(qPrimes, n);
    pBasis_ = RnsBasis(pPrimes, n);
    qpBasis_ = qBasis_.concat(pBasis_);

    pModQ_.resize(qPrimes.size());
    pInvModQ_.resize(qPrimes.size());
    pInvModQPrepared_.resize(qPrimes.size());
    for (size_t i = 0; i < qPrimes.size(); ++i) {
        const uint64_t qi = qPrimes[i];
        uint64_t pMod = 1;
        for (uint64_t p : pPrimes)
            pMod = mulMod(pMod, p % qi, qi);
        pModQ_[i] = pMod;
        pInvModQ_[i] = invMod(pMod, qi);
        pInvModQPrepared_[i] = ShoupMul(pInvModQ_[i], qi);
    }
}

RnsBasis
CkksContext::levelBasis(size_t level) const
{
    ANAHEIM_ASSERT(level >= 1 && level <= params_.levels,
                   "level out of range: ", level);
    return qBasis_.slice(0, level);
}

RnsBasis
CkksContext::extendedBasis(size_t level) const
{
    return levelBasis(level).concat(pBasis_);
}

std::pair<size_t, size_t>
CkksContext::digitRange(size_t j) const
{
    const size_t begin = j * params_.alpha;
    const size_t end = std::min(begin + params_.alpha, params_.levels);
    ANAHEIM_ASSERT(begin < end, "digit index out of range: ", j);
    return {begin, end};
}

size_t
CkksContext::digitsAtLevel(size_t level) const
{
    return (level + params_.alpha - 1) / params_.alpha;
}

const BasisConverter &
CkksContext::converter(const RnsBasis &source, const RnsBasis &target) const
{
    auto key = std::make_pair(source.primes(), target.primes());
    auto it = converterCache_.find(key);
    if (it == converterCache_.end()) {
        it = converterCache_
                 .emplace(std::move(key),
                          std::make_unique<BasisConverter>(source, target))
                 .first;
    }
    return *it->second;
}

} // namespace anaheim

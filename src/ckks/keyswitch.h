/**
 * @file
 * Hybrid keyswitching core: ModUp -> KeyMult -> ModDown (§II-B, Fig. 1).
 *
 * These are the three phases Anaheim's analysis revolves around: ModUp /
 * ModDown are ModSwitch variants (INTT + BConv + NTT), while KeyMult is
 * a pure element-wise multiply-accumulate over the extended modulus PQ —
 * the op class offloaded to PIM.
 */

#ifndef ANAHEIM_CKKS_KEYSWITCH_H
#define ANAHEIM_CKKS_KEYSWITCH_H

#include <utility>
#include <vector>

#include "context.h"
#include "keys.h"
#include "poly/polynomial.h"

namespace anaheim {

class KeySwitcher
{
  public:
    explicit KeySwitcher(const CkksContext &context) : context_(context) {}

    /**
     * Decompose a level-l polynomial (Eval domain) into its keyswitching
     * digits and raise each to the extended basis Q_l || P.
     */
    std::vector<Polynomial> modUp(const Polynomial &a) const;

    /**
     * Element-wise accumulation sum_j digits[j] * evk_j over the
     * extended basis; returns the (d0, d1) pair.
     */
    std::pair<Polynomial, Polynomial> keyMult(
        const std::vector<Polynomial> &digits, const EvalKey &evk) const;

    /** Scale an extended-basis polynomial back down by P into Q_l. */
    Polynomial modDown(const Polynomial &extended) const;

    /** Full keyswitch of `a` under `evk`: ModUp, KeyMult, ModDown. */
    std::pair<Polynomial, Polynomial> keySwitch(const Polynomial &a,
                                                const EvalKey &evk) const;

    /** Restrict an evk polynomial (over full QP) to Q_level || P. */
    Polynomial restrictToExtended(const Polynomial &keyPoly,
                                  size_t level) const;

  private:
    const CkksContext &context_;
};

} // namespace anaheim

#endif // ANAHEIM_CKKS_KEYSWITCH_H

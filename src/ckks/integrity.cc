#include "integrity.h"

namespace anaheim {

CiphertextChecksum
sealCiphertext(const Ciphertext &ct)
{
    CiphertextChecksum seal;
    seal.b = polyChecksum(ct.b);
    seal.a = polyChecksum(ct.a);
    seal.level = ct.level;
    seal.scale = ct.scale;
    return seal;
}

Status
verifyCiphertext(const Ciphertext &ct, const CiphertextChecksum &seal)
{
    if (ct.level != seal.level || ct.scale != seal.scale) {
        return Status(ErrorCode::DataCorruption,
                      detail::composeMessage(
                          "ciphertext header mismatch: sealed at level ",
                          seal.level, " scale ", seal.scale, ", found level ",
                          ct.level, " scale ", ct.scale));
    }
    Status status = verifyPolyChecksum(ct.b, seal.b);
    if (!status.ok()) {
        return Status(ErrorCode::DataCorruption,
                      detail::composeMessage("component b: ",
                                             status.message()));
    }
    status = verifyPolyChecksum(ct.a, seal.a);
    if (!status.ok()) {
        return Status(ErrorCode::DataCorruption,
                      detail::composeMessage("component a: ",
                                             status.message()));
    }
    return Status::okStatus();
}

} // namespace anaheim

#include "keyswitch.h"

#include "common/logging.h"
#include "common/parallel.h"
#include "obs/trace.h"
#include "math/kernels.h"
#include "math/modarith.h"

namespace anaheim {

std::vector<Polynomial>
KeySwitcher::modUp(const Polynomial &a) const
{
    OBS_SPAN("keyswitch/modup");
    ANAHEIM_ASSERT(a.domain() == Domain::Eval, "ModUp expects Eval input");
    const size_t level = a.limbCount();
    const size_t digits = context_.digitsAtLevel(level);
    const RnsBasis extBasis = context_.extendedBasis(level);

    std::vector<Polynomial> result;
    result.reserve(digits);
    for (size_t j = 0; j < digits; ++j) {
        const auto [begin, endFull] = context_.digitRange(j);
        const size_t end = std::min(endFull, level);

        // Digit residues in coefficient domain for the basis conversion;
        // one inverse-NTT task per digit limb.
        RnsBasis digitBasis = context_.qBasis().slice(begin, end - begin);
        std::vector<CoeffVector> digitCoeff(end - begin);
        parallelFor(begin, end, [&](size_t i) {
            digitCoeff[i - begin] = a.limb(i);
            digitBasis.table(i - begin).inverse(digitCoeff[i - begin]);
        });

        // Convert to every extended prime outside the digit; the target
        // basis is assembled from slices so NTT tables are shared.
        RnsBasis before = extBasis.slice(0, begin);
        RnsBasis after = extBasis.slice(end, extBasis.size() - end);
        RnsBasis target = before.concat(after);
        const BasisConverter &conv = context_.converter(digitBasis, target);
        auto converted = conv.convert(digitCoeff);

        // Assemble the extended polynomial: digit limbs are copied in
        // Eval domain untouched; converted limbs are NTT'd into place.
        // The converted index of extended limb i is closed-form (limbs
        // below the digit map 1:1, limbs above skip the digit), so the
        // per-limb forward NTTs parallelize without a running counter.
        Polynomial ext(extBasis, Domain::Eval);
        parallelFor(0, extBasis.size(), [&](size_t i) {
            if (i >= begin && i < end) {
                ext.limb(i) = a.limb(i);
            } else {
                const size_t convIdx = i < begin ? i : begin + (i - end);
                ext.limb(i) = std::move(converted[convIdx]);
                extBasis.table(i).forward(ext.limb(i));
            }
        });
        result.push_back(std::move(ext));
    }
    return result;
}

Polynomial
KeySwitcher::restrictToExtended(const Polynomial &keyPoly,
                                size_t level) const
{
    const size_t fullLevels = context_.maxLevel();
    const RnsBasis extBasis = context_.extendedBasis(level);
    Polynomial out(extBasis, Domain::Eval);
    for (size_t i = 0; i < level; ++i)
        out.limb(i) = keyPoly.limb(i);
    for (size_t i = 0; i < context_.alpha(); ++i)
        out.limb(level + i) = keyPoly.limb(fullLevels + i);
    return out;
}

std::pair<Polynomial, Polynomial>
KeySwitcher::keyMult(const std::vector<Polynomial> &digits,
                     const EvalKey &evk) const
{
    OBS_SPAN("keyswitch/keymult");
    ANAHEIM_ASSERT(!digits.empty(), "no digits");
    ANAHEIM_ASSERT(digits.size() <= evk.dnum(),
                   "more digits than evk provides");
    const size_t level = digits[0].limbCount() - context_.alpha();
    const RnsBasis extBasis = context_.extendedBasis(level);

    Polynomial d0(extBasis, Domain::Eval);
    Polynomial d1(extBasis, Domain::Eval);
    for (size_t j = 0; j < digits.size(); ++j) {
        d0.macEq(digits[j], restrictToExtended(evk.b[j], level));
        d1.macEq(digits[j], restrictToExtended(evk.a[j], level));
    }
    return {std::move(d0), std::move(d1)};
}

Polynomial
KeySwitcher::modDown(const Polynomial &extended) const
{
    OBS_SPAN("keyswitch/moddown");
    const size_t alpha = context_.alpha();
    ANAHEIM_ASSERT(extended.limbCount() > alpha, "nothing to scale down");
    const size_t level = extended.limbCount() - alpha;
    const RnsBasis qBasis = context_.levelBasis(level);

    // P-part residues in coefficient domain; one task per special limb.
    std::vector<CoeffVector> pCoeff(alpha);
    parallelFor(0, alpha, [&](size_t i) {
        pCoeff[i] = extended.limb(level + i);
        context_.pBasis().table(i).inverse(pCoeff[i]);
    });
    const BasisConverter &conv =
        context_.converter(context_.pBasis(), qBasis);
    auto converted = conv.convert(pCoeff);

    Polynomial out(qBasis, Domain::Eval);
    parallelFor(0, level, [&](size_t i) {
        const uint64_t qi = qBasis.prime(i);
        qBasis.table(i).forward(converted[i]);
        const ShoupMul &pInv = context_.pInvModQPrepared()[i];
        const auto &src = extended.limb(i);
        auto &dst = out.limb(i);
        kernels::active().subMulShoup(dst.data(), src.data(),
                                      converted[i].data(), dst.size(),
                                      pInv.operand(), pInv.precon(), qi);
    });
    return out;
}

std::pair<Polynomial, Polynomial>
KeySwitcher::keySwitch(const Polynomial &a, const EvalKey &evk) const
{
    OBS_SPAN("keyswitch/full");
    const auto digits = modUp(a);
    auto [d0, d1] = keyMult(digits, evk);
    return {modDown(d0), modDown(d1)};
}

} // namespace anaheim

/**
 * @file
 * CKKS encoder: canonical embedding between complex messages u in
 * C^{N/2} and plaintext polynomials (§II-A).
 *
 * Uses the special FFT over the 5^j orbit of 2N-th roots of unity, the
 * same formulation HEAAN introduced, so slot j of a plaintext is the
 * evaluation at zeta^{5^j}. Cyclic slot rotation by R then corresponds
 * exactly to the Galois automorphism X -> X^{5^R}.
 */

#ifndef ANAHEIM_CKKS_ENCODER_H
#define ANAHEIM_CKKS_ENCODER_H

#include <complex>
#include <vector>

#include "ciphertext.h"
#include "context.h"

namespace anaheim {

class CkksEncoder
{
  public:
    explicit CkksEncoder(const CkksContext &context);

    size_t slots() const { return slots_; }

    /**
     * Encode up to N/2 complex values (zero-padded) into a plaintext at
     * the given level; default scale is 2^logScale from the parameters.
     */
    Plaintext encode(const std::vector<std::complex<double>> &message,
                     size_t level, double scale = 0.0) const;

    /** Encode a real vector. */
    Plaintext encodeReal(const std::vector<double> &message, size_t level,
                         double scale = 0.0) const;

    /**
     * Encode over an explicit basis (e.g. the extended basis Q_l || P
     * that hoisted linear transforms PMULT in, §III-B). The returned
     * plaintext's `level` is the basis size.
     */
    Plaintext encodeAtBasis(const std::vector<std::complex<double>> &message,
                            const RnsBasis &basis,
                            double scale = 0.0) const;

    /** Decode a plaintext back into N/2 complex values. */
    std::vector<std::complex<double>> decode(const Plaintext &pt) const;

    /**
     * Forward special FFT: coefficients-as-complex -> slot values.
     * Exposed for the bootstrapping DFT-factor generator.
     */
    void embedForward(std::vector<std::complex<double>> &vals) const;

    /** Inverse special FFT (including the 1/slots scaling). */
    void embedInverse(std::vector<std::complex<double>> &vals) const;

  private:
    const CkksContext &context_;
    size_t slots_;
    /** rotGroup[j] = 5^j mod 2N. */
    std::vector<size_t> rotGroup_;
    /** ksiPows[k] = exp(2*pi*i*k / 2N). */
    std::vector<std::complex<double>> ksiPows_;
};

} // namespace anaheim

#endif // ANAHEIM_CKKS_ENCODER_H

/**
 * @file
 * CKKS parameter set (Table IV of the paper).
 *
 * The functional library accepts any ring degree and prime width; the
 * paper's hardware-model configuration (N = 2^16, 28-bit primes with
 * double-prime scaling, L <= 54, alpha <= 14, D = 4) is provided as a
 * named preset used by the trace/performance layers, while functional
 * tests default to small rings with wide primes for speed and precision.
 */

#ifndef ANAHEIM_CKKS_PARAMS_H
#define ANAHEIM_CKKS_PARAMS_H

#include <cstddef>

namespace anaheim {

struct CkksParams {
    /** Ring degree N (power of two). */
    size_t n = 1 << 12;
    /** Number of ciphertext primes L (level budget + 1). */
    size_t levels = 8;
    /** Number of special primes alpha; the digit size of hybrid
     *  keyswitching. D = ceil(L / alpha). */
    size_t alpha = 2;
    /** log2 of the scaling factor Delta. */
    unsigned logScale = 40;
    /** Bit width of the first (and special) primes; must exceed
     *  logScale to leave headroom for the final message. */
    unsigned firstModulusBits = 50;
    /** Gaussian error standard deviation. */
    double sigma = 3.2;
    /** Secret Hamming weight; 0 selects the dense ternary secret. */
    size_t hammingWeight = 0;

    /** Decomposition number D = ceil(L / alpha) (§II-C). */
    size_t dnum() const { return (levels + alpha - 1) / alpha; }
    size_t slots() const { return n / 2; }

    /** Abort (fatal) when the combination is internally inconsistent. */
    void validate() const;

    /**
     * Whether log2(PQ) respects the 128-bit-security bound for this N,
     * following the lattice-estimate table the paper cites [19]: the
     * paper's headline configuration keeps log PQ < 1623 at N = 2^16.
     */
    bool satisfies128BitSecurity() const;

    /** Upper bound on log2(PQ) for 128-bit security at ring degree n. */
    static double maxLogPQ(size_t n);

    /** Small functional-test parameters (fast on one CPU core). */
    static CkksParams testParams(size_t n = 1 << 10, size_t levels = 6,
                                 size_t alpha = 2);

    /** The paper's default evaluation parameters (Table IV); used by the
     *  analytical trace generators, not for functional execution. */
    static CkksParams paperParams();

    /** Parameters sized for the functional bootstrapping test. */
    static CkksParams bootstrapParams(size_t n = 1 << 11);
};

} // namespace anaheim

#endif // ANAHEIM_CKKS_PARAMS_H

#include "evaluator.h"

#include <cmath>

#include "common/logging.h"
#include "math/kernels.h"
#include "math/modarith.h"

namespace anaheim {

namespace {

// Scales matching within this relative bound are treated as equal; the
// residual mismatch injects at most this much relative error. Larger
// mismatches trigger exact scale adjustment (see alignScales).
constexpr double kScaleTolerance = 1e-9;

void
checkScalesMatch(double a, double b)
{
    ANAHEIM_ASSERT(std::abs(a - b) <= 1e-4 * std::abs(a),
                   "scale mismatch: ", a, " vs ", b);
}

} // namespace

Ciphertext
CkksEvaluator::adjustScaleTo(const Ciphertext &x, double targetScale) const
{
    // Multiply by the constant 1.0 encoded at exactly the scale that
    // lands on targetScale after one rescale. The constant's rounding
    // error is ~2^-logScale relative, so the adjustment is essentially
    // exact — this is what keeps deep circuits (EvalMod's double-angle
    // chain) from amplifying scale drift into the message.
    ANAHEIM_ASSERT(x.level >= 2, "cannot adjust scale at level 1");
    const uint64_t qLast = x.b.basis().prime(x.level - 1);
    const double needed =
        targetScale * static_cast<double>(qLast) / x.scale;
    ANAHEIM_ASSERT(needed >= 1.0, "scale adjustment would underflow");
    const std::vector<std::complex<double>> one(encoder_.slots(),
                                                {1.0, 0.0});
    const Plaintext pt = encoder_.encode(one, x.level, needed);
    return rescale(mulPlain(x, pt));
}

void
CkksEvaluator::alignScales(Ciphertext &x, Ciphertext &y) const
{
    if (std::abs(x.scale - y.scale) <= kScaleTolerance * x.scale)
        return;
    // Adjust the operand with more spare levels; the adjustment costs
    // one level. When neither side can pay, fall back to tolerating
    // the (asserted-small) mismatch.
    Ciphertext *adjust = x.level >= y.level ? &x : &y;
    const Ciphertext *other = adjust == &x ? &y : &x;
    if (adjust->level < 2) {
        checkScalesMatch(x.scale, y.scale);
        return;
    }
    *adjust = adjustScaleTo(*adjust, other->scale);
}

void
CkksEvaluator::matchLevels(Ciphertext &x, Ciphertext &y) const
{
    const size_t level = std::min(x.level, y.level);
    x = dropToLevel(x, level);
    y = dropToLevel(y, level);
}

Ciphertext
CkksEvaluator::dropToLevel(const Ciphertext &x, size_t level) const
{
    ANAHEIM_ASSERT(level >= 1 && level <= x.level,
                   "cannot raise level by truncation");
    if (level == x.level)
        return x;
    Ciphertext out;
    out.b = x.b.firstLimbs(level);
    out.a = x.a.firstLimbs(level);
    out.level = level;
    out.scale = x.scale;
    return out;
}

Ciphertext
CkksEvaluator::add(const Ciphertext &x, const Ciphertext &y) const
{
    Ciphertext lhs = x, rhs = y;
    alignScales(lhs, rhs);
    matchLevels(lhs, rhs);
    checkScalesMatch(lhs.scale, rhs.scale);
    lhs.b += rhs.b;
    lhs.a += rhs.a;
    return lhs;
}

Ciphertext
CkksEvaluator::sub(const Ciphertext &x, const Ciphertext &y) const
{
    Ciphertext lhs = x, rhs = y;
    alignScales(lhs, rhs);
    matchLevels(lhs, rhs);
    checkScalesMatch(lhs.scale, rhs.scale);
    lhs.b -= rhs.b;
    lhs.a -= rhs.a;
    return lhs;
}

Ciphertext
CkksEvaluator::negate(const Ciphertext &x) const
{
    Ciphertext out = x;
    out.b.negate();
    out.a.negate();
    return out;
}

Ciphertext
CkksEvaluator::addPlain(const Ciphertext &x, const Plaintext &pt) const
{
    ANAHEIM_ASSERT(pt.level >= x.level, "plaintext level too low");
    checkScalesMatch(x.scale, pt.scale);
    Ciphertext out = x;
    out.b += pt.poly.firstLimbs(x.level);
    return out;
}

Ciphertext
CkksEvaluator::subPlain(const Ciphertext &x, const Plaintext &pt) const
{
    ANAHEIM_ASSERT(pt.level >= x.level, "plaintext level too low");
    checkScalesMatch(x.scale, pt.scale);
    Ciphertext out = x;
    out.b -= pt.poly.firstLimbs(x.level);
    return out;
}

Ciphertext
CkksEvaluator::mulPlain(const Ciphertext &x, const Plaintext &pt) const
{
    ANAHEIM_ASSERT(pt.level >= x.level, "plaintext level too low");
    Ciphertext out = x;
    const Polynomial p = pt.poly.firstLimbs(x.level);
    out.b.mulEq(p);
    out.a.mulEq(p);
    out.scale = x.scale * pt.scale;
    return out;
}

Ciphertext
CkksEvaluator::mulConst(const Ciphertext &x,
                        std::complex<double> value) const
{
    const std::vector<std::complex<double>> msg(encoder_.slots(), value);
    const Plaintext pt = encoder_.encode(msg, x.level);
    return mulPlain(x, pt);
}

Ciphertext
CkksEvaluator::mulInteger(const Ciphertext &x, int64_t value) const
{
    Ciphertext out = x;
    std::vector<uint64_t> scalars(x.level);
    for (size_t i = 0; i < x.level; ++i)
        scalars[i] = fromSigned(value, x.b.basis().prime(i));
    out.b.mulScalarEq(scalars);
    out.a.mulScalarEq(scalars);
    return out;
}

Ciphertext
CkksEvaluator::addConst(const Ciphertext &x,
                        std::complex<double> value) const
{
    const std::vector<std::complex<double>> msg(encoder_.slots(), value);
    const Plaintext pt = encoder_.encode(msg, x.level, x.scale);
    return addPlain(x, pt);
}

Ciphertext
CkksEvaluator::multiply(const Ciphertext &x, const Ciphertext &y,
                        const EvalKey &relinKey) const
{
    Ciphertext lhs = x, rhs = y;
    matchLevels(lhs, rhs);

    // Tensor: (b1, a1) x (b2, a2) -> (b1*b2, b1*a2 + a1*b2, a1*a2).
    Polynomial d0 = lhs.b;
    d0.mulEq(rhs.b);
    Polynomial d1 = lhs.b;
    d1.mulEq(rhs.a);
    d1.macEq(lhs.a, rhs.b);
    Polynomial d2 = lhs.a;
    d2.mulEq(rhs.a);

    // Relinearize the s^2 component back onto (1, s).
    auto [k0, k1] = switcher_.keySwitch(d2, relinKey);
    Ciphertext out;
    out.b = d0 + k0;
    out.a = d1 + k1;
    out.level = lhs.level;
    out.scale = lhs.scale * rhs.scale;
    return out;
}

Ciphertext
CkksEvaluator::square(const Ciphertext &x, const EvalKey &relinKey) const
{
    return multiply(x, x, relinKey);
}

Ciphertext
CkksEvaluator::rescale(const Ciphertext &x) const
{
    ANAHEIM_ASSERT(x.level >= 2, "no prime left to rescale by");
    const size_t level = x.level;
    const RnsBasis &basis = x.b.basis();
    const uint64_t qLast = basis.prime(level - 1);
    Ciphertext out;
    out.level = level - 1;
    out.scale = x.scale / static_cast<double>(qLast);

    for (const Polynomial *src : {&x.b, &x.a}) {
        // INTT the last limb once, then fold it into every lower limb.
        CoeffVector last = src->limb(level - 1);
        basis.table(level - 1).inverse(last);

        Polynomial dst(basis.slice(0, level - 1), Domain::Eval);
        for (size_t i = 0; i + 1 < level; ++i) {
            const uint64_t qi = basis.prime(i);
            const ShoupMul qLastInv(invMod(qLast % qi, qi), qi);
            // Centered lift of the last limb into q_i for lower noise.
            std::vector<uint64_t> lifted(last.size());
            for (size_t c = 0; c < last.size(); ++c) {
                const uint64_t v = last[c];
                lifted[c] = v > qLast / 2
                                ? subMod(v % qi, qLast % qi, qi)
                                : v % qi;
            }
            basis.table(i).forward(lifted);
            const auto &limb = src->limb(i);
            auto &dstLimb = dst.limb(i);
            kernels::active().subMulShoup(
                dstLimb.data(), limb.data(), lifted.data(), limb.size(),
                qLastInv.operand(), qLastInv.precon(), qi);
        }
        if (src == &x.b)
            out.b = std::move(dst);
        else
            out.a = std::move(dst);
    }
    return out;
}

Ciphertext
CkksEvaluator::applyGalois(const Ciphertext &x, uint64_t galoisElt,
                           const GaloisKeys &keys) const
{
    const auto it = keys.find(galoisElt);
    ANAHEIM_ASSERT(it != keys.end(), "missing Galois key for k=",
                   galoisElt);
    Ciphertext out;
    out.level = x.level;
    out.scale = x.scale;
    out.b = x.b.automorphism(galoisElt);
    const Polynomial rotatedA = x.a.automorphism(galoisElt);
    auto [d0, d1] = switcher_.keySwitch(rotatedA, it->second);
    out.b += d0;
    out.a = std::move(d1);
    return out;
}

Ciphertext
CkksEvaluator::rotate(const Ciphertext &x, int rotation,
                      const GaloisKeys &keys) const
{
    const uint64_t k =
        KeyGenerator::rotationGaloisElt(rotation, context_.degree());
    if (k == 1)
        return x;
    return applyGalois(x, k, keys);
}

Ciphertext
CkksEvaluator::conjugate(const Ciphertext &x, const GaloisKeys &keys) const
{
    return applyGalois(
        x, KeyGenerator::conjugationGaloisElt(context_.degree()), keys);
}

std::vector<Ciphertext>
CkksEvaluator::rotateHoisted(const Ciphertext &x,
                             const std::vector<int> &rotations,
                             const GaloisKeys &keys) const
{
    // ModUp once (the hoisting optimization); per rotation only the
    // cheap automorphism of the digits, KeyMult and ModDown remain.
    const auto digits = switcher_.modUp(x.a);

    std::vector<Ciphertext> out;
    out.reserve(rotations.size());
    for (int r : rotations) {
        const uint64_t k =
            KeyGenerator::rotationGaloisElt(r, context_.degree());
        if (k == 1) {
            out.push_back(x);
            continue;
        }
        const auto it = keys.find(k);
        ANAHEIM_ASSERT(it != keys.end(), "missing Galois key for r=", r);
        std::vector<Polynomial> rotated;
        rotated.reserve(digits.size());
        for (const auto &digit : digits)
            rotated.push_back(digit.automorphism(k));
        auto [d0, d1] = switcher_.keyMult(rotated, it->second);
        Ciphertext ct;
        ct.level = x.level;
        ct.scale = x.scale;
        ct.b = x.b.automorphism(k) + switcher_.modDown(d0);
        ct.a = switcher_.modDown(d1);
        out.push_back(std::move(ct));
    }
    return out;
}

} // namespace anaheim

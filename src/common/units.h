/**
 * @file
 * Small helpers for formatting byte counts, times and ratios in the
 * report printers shared by benches and examples.
 */

#ifndef ANAHEIM_COMMON_UNITS_H
#define ANAHEIM_COMMON_UNITS_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace anaheim {

/** Format a byte count as e.g. "136.0MB" or "1.20GB". */
std::string formatBytes(double bytes);

/** Format a duration in seconds as e.g. "29.3ms" or "1.22s". */
std::string formatSeconds(double seconds);

/** Format energy in joules as e.g. "8.1mJ" or "3.2J". */
std::string formatJoules(double joules);

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

} // namespace anaheim

#endif // ANAHEIM_COMMON_UNITS_H

#include "rng.h"

#include <cmath>

#include "logging.h"

namespace anaheim {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::uniform(uint64_t bound)
{
    ANAHEIM_ASSERT(bound > 0, "uniform bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    // Box–Muller; one sample per call keeps the generator stateless w.r.t.
    // caching and easy to reason about for reproducibility.
    double u1 = uniformReal();
    while (u1 == 0.0)
        u1 = uniformReal();
    const double u2 = uniformReal();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

CoeffVector
sampleUniform(Rng &rng, size_t n, uint64_t q)
{
    CoeffVector out(n);
    for (auto &coeff : out)
        coeff = rng.uniform(q);
    return out;
}

std::vector<int8_t>
sampleTernary(Rng &rng, size_t n, size_t h)
{
    std::vector<int8_t> out(n, 0);
    if (h == 0) {
        for (auto &coeff : out) {
            const uint64_t r = rng.uniform(4);
            coeff = (r == 0) ? 1 : (r == 1) ? -1 : 0;
        }
        return out;
    }
    ANAHEIM_ASSERT(h <= n, "Hamming weight exceeds dimension");
    size_t placed = 0;
    while (placed < h) {
        const size_t idx = rng.uniform(n);
        if (out[idx] != 0)
            continue;
        out[idx] = (rng.uniform(2) == 0) ? 1 : -1;
        ++placed;
    }
    return out;
}

std::vector<int64_t>
sampleError(Rng &rng, size_t n, double sigma)
{
    std::vector<int64_t> out(n);
    for (auto &coeff : out)
        coeff = static_cast<int64_t>(std::lround(rng.gaussian() * sigma));
    return out;
}

} // namespace anaheim

#include "logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace anaheim {

namespace {

LogLevel
envLogLevel()
{
    const char *env = std::getenv("ANAHEIM_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Info;
    if (std::strcmp(env, "silent") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "none") == 0)
        return LogLevel::Silent;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "1") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "2") == 0)
        return LogLevel::Info;
    std::fprintf(stderr,
                 "warn: ignoring unknown ANAHEIM_LOG_LEVEL='%s' "
                 "(silent|warn|info)\n",
                 env);
    return LogLevel::Info;
}

std::atomic<int> gLevel{static_cast<int>(envLogLevel())};

std::chrono::steady_clock::time_point
processStart()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

// Touch the start time during static init so the first logged
// timestamp is near zero even if logging happens late.
[[maybe_unused]] const auto gStartAnchor = processStart();

/** One mutex serializes every emitted line: concurrent warn()/inform()
 *  from pool workers can never interleave partial lines. */
std::mutex &
sinkMutex()
{
    static std::mutex *mutex = new std::mutex(); // leaked: workers may
    // log during process teardown after static destructors start.
    return *mutex;
}

void
emitLine(std::FILE *stream, const char *prefix, const std::string &msg,
         const char *suffix)
{
    const double elapsedS =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      processStart())
            .count();
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fprintf(stream, "[%10.3fs] %s%s%s\n", elapsedS, prefix,
                 msg.c_str(), suffix);
    std::fflush(stream);
}

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(gLevel.load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    gLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::Info : LogLevel::Warn);
}

bool
verbose()
{
    return logLevel() >= LogLevel::Info;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    const std::string where =
        " (" + std::string(file) + ":" + std::to_string(line) + ")";
    emitLine(stderr, "panic: ", msg, where.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    const std::string where =
        " (" + std::string(file) + ":" + std::to_string(line) + ")";
    emitLine(stderr, "fatal: ", msg, where.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        emitLine(stderr, "warn: ", msg, "");
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emitLine(stdout, "info: ", msg, "");
}

} // namespace detail
} // namespace anaheim

/**
 * @file
 * Deterministic pseudo-random number generation and the samplers CKKS
 * key generation and encryption need: uniform-mod-q, centered binomial /
 * discrete gaussian error, and ternary secret sampling.
 */

#ifndef ANAHEIM_COMMON_RNG_H
#define ANAHEIM_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"

namespace anaheim {

/**
 * xoshiro256** PRNG. Fast, high-quality, and deterministic given a seed,
 * which keeps every test and benchmark in this repository reproducible.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform value in [0, bound) without modulo bias. */
    uint64_t uniform(uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Standard-normal sample (Box–Muller). */
    double gaussian();

  private:
    uint64_t state_[4];
};

/** Uniform polynomial coefficients in [0, q) for each of n slots.
 *  Returned as cache-line-aligned CoeffVector: uniform residues are
 *  coefficient data, and the kernels want aligned limbs. */
CoeffVector sampleUniform(Rng &rng, size_t n, uint64_t q);

/**
 * Ternary secret in {-1, 0, 1} with given Hamming weight h (number of
 * nonzero entries); h == 0 selects the dense ternary distribution where
 * each coefficient is -1/0/1 with probability 1/4, 1/2, 1/4.
 */
std::vector<int8_t> sampleTernary(Rng &rng, size_t n, size_t h = 0);

/** Discrete gaussian error with standard deviation sigma (default 3.2). */
std::vector<int64_t> sampleError(Rng &rng, size_t n, double sigma = 3.2);

} // namespace anaheim

#endif // ANAHEIM_COMMON_RNG_H

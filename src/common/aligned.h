/**
 * @file
 * Cache-line-aligned allocation for coefficient buffers.
 *
 * The vectorized NTT kernels issue 64-byte loads and stores at offsets
 * that are multiples of 64 from the buffer base. Plain std::vector
 * storage comes from malloc with only 16-byte alignment, so every
 * 512-bit access straddles a cache line — measured at a 10-15% slowdown
 * on the full transform. Allocating limb storage on a 64-byte boundary
 * makes every vector access line-aligned.
 *
 * The allocator is stateless and interoperates with std::vector; the
 * CoeffVector alias is the canonical storage type for anything the
 * kernel layer touches (polynomial limbs, base-conversion scratch,
 * key-switching accumulators).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace anaheim {

/** One cache line: covers AVX-512 (64-byte) vector accesses and keeps
 *  AVX2/scalar unaffected. */
inline constexpr std::size_t kCoeffAlignment = 64;

template <typename T, std::size_t Alignment = kCoeffAlignment>
struct AlignedAllocator {
    static_assert((Alignment & (Alignment - 1)) == 0,
                  "alignment must be a power of two");
    static_assert(Alignment >= alignof(T),
                  "alignment must not weaken the type's natural one");

    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment> &) noexcept
    {
    }

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Alignment>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{Alignment}));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
    }
};

template <typename T, typename U, std::size_t A>
bool
operator==(const AlignedAllocator<T, A> &, const AlignedAllocator<U, A> &)
{
    return true;
}

template <typename T, typename U, std::size_t A>
bool
operator!=(const AlignedAllocator<T, A> &, const AlignedAllocator<U, A> &)
{
    return false;
}

/** Storage for one limb (one RNS residue polynomial) — the type every
 *  buffer handed to the NTT / element-wise kernels should use. */
using CoeffVector = std::vector<uint64_t, AlignedAllocator<uint64_t>>;

} // namespace anaheim

/**
 * @file
 * Shared limb-parallel execution engine.
 *
 * Anaheim's premise is that the element-wise/limb-wise portion of CKKS is
 * embarrassingly parallel — the hardware model exploits it with 8-lane
 * MMAC units and column-partitioned PolyGroups (§VI-B). This engine
 * exploits the same structural parallelism on the host: a single
 * process-wide pool of worker threads that the limb-indexed hot loops
 * (NTT per limb, BConv stages, ModUp/ModDown, homomorphic DFT columns)
 * dispatch onto via parallelFor().
 *
 * Determinism guarantee: parallelFor(begin, end, grain, fn) invokes
 * fn(i) exactly once for every i in [begin, end), each index on exactly
 * one thread, with no reordering of the work *within* an index. Callers
 * partition output by index (one limb / one column per index), so the
 * result is bitwise identical to the serial loop — there is no
 * floating-point reassociation and no accumulation order change. Every
 * existing test therefore doubles as a determinism check.
 *
 * Pool lifetime and sizing: the global pool is created on first use and
 * lives for the remainder of the process. Its size comes from the
 * ANAHEIM_THREADS environment variable when set (clamped to
 * [1, kMaxThreads]), otherwise std::thread::hardware_concurrency().
 * Size 1 means no worker threads are spawned at all and every
 * parallelFor runs inline on the caller — the serial fallback.
 */

#ifndef ANAHEIM_COMMON_PARALLEL_H
#define ANAHEIM_COMMON_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace anaheim {

/**
 * Fixed-size pool of worker threads executing chunked index ranges.
 *
 * One parallel loop is active at a time (concurrent submissions from
 * different user threads serialize on an internal mutex). Nested
 * parallelFor calls — fn itself calling parallelFor — run inline on the
 * calling thread, so composition is safe and deadlock-free.
 */
class ThreadPool
{
  public:
    /** Hard cap on pool size; guards against absurd ANAHEIM_THREADS. */
    static constexpr size_t kMaxThreads = 256;

    /** @param threads Total worker count including the caller; 0 and 1
     *  both mean serial (no threads spawned). */
    explicit ThreadPool(size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution width (spawned workers + the calling thread). */
    size_t size() const { return workers_.size() + 1; }

    /**
     * Run fn(i) for every i in [begin, end), distributing contiguous
     * chunks of `grain` indices across the pool. The caller participates
     * in the work and the call returns only when every index has run.
     * The first exception thrown by fn is rethrown on the caller after
     * the loop drains (remaining chunks are skipped, in-flight indices
     * finish). grain == 0 is treated as 1.
     */
    void parallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t)> &fn);

    /**
     * Tear down the workers and respawn at a new size. Must only be
     * called while no loop is in flight (benchmarks and tests sweeping
     * thread counts); not safe concurrently with parallelFor.
     */
    void resize(size_t threads);

    /** The process-wide pool, created on first use (see file header). */
    static ThreadPool &global();

  private:
    struct Job {
        const std::function<void(size_t)> *fn = nullptr;
        size_t begin = 0;
        size_t end = 0;
        size_t grain = 1;
        /** Total chunks: ceil((end - begin) / grain). Workers claim
         *  chunk *indices* rather than raw offsets so the claim counter
         *  can never wrap past `end` and re-admit indices (an offset
         *  cursor overflows for ranges ending near SIZE_MAX). */
        size_t numChunks = 0;
        std::atomic<size_t> cursor{0};
        std::atomic<size_t> pending{0};
        std::mutex errorMutex;
        std::exception_ptr error;
    };

    void workerLoop();
    static void runChunks(Job &job);
    void spawn(size_t threads);
    void shutdown();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Job *job_ = nullptr;
    uint64_t generation_ = 0;
    bool stop_ = false;
    /** Serializes whole parallelFor calls from different user threads. */
    std::mutex submitMutex_;
};

/**
 * Pool size the global pool is built with: ANAHEIM_THREADS when set and
 * parseable (clamped to [1, ThreadPool::kMaxThreads]), otherwise
 * hardware_concurrency() (itself at least 1).
 */
size_t defaultThreadCount();

/** Execution width of the global pool. */
size_t parallelThreadCount();

/**
 * Rebuild the global pool at `threads` width. Quiescent use only
 * (benchmarks sweeping 1/2/4/8, tests pinning the serial fallback).
 */
void setParallelThreads(size_t threads);

/** parallelFor on the global pool; see ThreadPool::parallelFor. */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)> &fn);

/** Convenience overload with grain = 1 (one limb/column per task). */
inline void
parallelFor(size_t begin, size_t end,
            const std::function<void(size_t)> &fn)
{
    parallelFor(begin, end, 1, fn);
}

} // namespace anaheim

#endif // ANAHEIM_COMMON_PARALLEL_H

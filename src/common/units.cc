#include "units.h"

#include <cstdio>

namespace anaheim {

namespace {

std::string
formatScaled(double value, const char *const *suffixes, int count,
             double base)
{
    int idx = 0;
    while (value >= base && idx + 1 < count) {
        value /= base;
        ++idx;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2f%s", value, suffixes[idx]);
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    static const char *suffixes[] = {"B", "KB", "MB", "GB", "TB"};
    return formatScaled(bytes, suffixes, 5, 1024.0);
}

std::string
formatSeconds(double seconds)
{
    if (seconds < 1e-6) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.2fns", seconds * 1e9);
        return buf;
    }
    if (seconds < 1e-3) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.2fus", seconds * 1e6);
        return buf;
    }
    if (seconds < 1.0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
        return buf;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    return buf;
}

std::string
formatJoules(double joules)
{
    if (joules < 1e-3) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.2fuJ", joules * 1e6);
        return buf;
    }
    if (joules < 1.0) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.2fmJ", joules * 1e3);
        return buf;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2fJ", joules);
    return buf;
}

} // namespace anaheim

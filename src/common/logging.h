/**
 * @file
 * Status-message and error-handling helpers (gem5-style).
 *
 * Two error functions with distinct purposes:
 *  - panic():  something happened that should never happen regardless of
 *              what the user does, i.e. an internal bug. Calls abort().
 *  - fatal():  the run cannot continue due to a user-visible condition
 *              (bad configuration, invalid arguments). Calls exit(1).
 * Plus non-terminating status helpers warn() and inform().
 *
 * Every message is routed through one serialized, timestamped sink
 * (each line carries seconds since process start), so messages from
 * the limb-parallel workers never interleave mid-line. Verbosity is
 * controlled by a level — Silent < Warn < Info — whose initial value
 * comes from the ANAHEIM_LOG_LEVEL environment variable ("silent" /
 * "warn" / "info", or 0 / 1 / 2; default Info).
 */

#ifndef ANAHEIM_COMMON_LOGGING_H
#define ANAHEIM_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace anaheim {

/** Message severities the sink filters on (panic/fatal always print). */
enum class LogLevel {
    Silent = 0, ///< suppress warn() and inform()
    Warn = 1,   ///< warnings only
    Info = 2,   ///< warnings + informational status (default)
};

/** Current sink threshold. */
LogLevel logLevel();

/** Change the sink threshold at runtime (overrides the env default). */
void setLogLevel(LogLevel level);

namespace detail {

/** Stream-compose a message from a variadic pack. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Whether inform() messages are printed (compat shim: true iff the
 *  level is at least Info). */
void setVerbose(bool verbose);
bool verbose();

} // namespace anaheim

/** Internal-bug check: aborts with a message when something impossible
 *  happened. */
#define ANAHEIM_PANIC(...)                                                   \
    ::anaheim::detail::panicImpl(                                            \
        __FILE__, __LINE__, ::anaheim::detail::composeMessage(__VA_ARGS__))

/** User-error exit: terminates with exit(1) and a message. */
#define ANAHEIM_FATAL(...)                                                   \
    ::anaheim::detail::fatalImpl(                                            \
        __FILE__, __LINE__, ::anaheim::detail::composeMessage(__VA_ARGS__))

/** Non-fatal warning about questionable behaviour. */
#define ANAHEIM_WARN(...)                                                    \
    ::anaheim::detail::warnImpl(::anaheim::detail::composeMessage(__VA_ARGS__))

/** Informative status message (suppressed when verbosity is off). */
#define ANAHEIM_INFORM(...)                                                  \
    ::anaheim::detail::informImpl(                                           \
        ::anaheim::detail::composeMessage(__VA_ARGS__))

/** Invariant check that survives in release builds. */
#define ANAHEIM_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ANAHEIM_PANIC("assertion failed: " #cond " — ",                  \
                          ::anaheim::detail::composeMessage(__VA_ARGS__));   \
        }                                                                    \
    } while (0)

#endif // ANAHEIM_COMMON_LOGGING_H

#include "parallel.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "logging.h"

namespace anaheim {

namespace {

/** Nonzero while the current thread is executing loop chunks; nested
 *  parallelFor calls detect this and run inline. */
thread_local int tlsInLoop = 0;

} // namespace

ThreadPool::ThreadPool(size_t threads)
{
    spawn(threads);
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::spawn(size_t threads)
{
    const size_t clamped = std::min(std::max<size_t>(threads, 1),
                                    kMaxThreads);
    stop_ = false;
    workers_.reserve(clamped - 1);
    for (size_t i = 0; i + 1 < clamped; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
}

void
ThreadPool::resize(size_t threads)
{
    shutdown();
    spawn(threads);
}

void
ThreadPool::runChunks(Job &job)
{
    ++tlsInLoop;
    for (;;) {
        const size_t idx = job.cursor.fetch_add(1,
                                                std::memory_order_relaxed);
        if (idx >= job.numChunks)
            break;
        const size_t start = job.begin + idx * job.grain;
        // end - start, not start + grain: the addition can wrap for
        // ranges ending near SIZE_MAX.
        const size_t stop =
            job.end - start > job.grain ? start + job.grain : job.end;
        try {
            for (size_t i = start; i < stop; ++i)
                (*job.fn)(i);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(job.errorMutex);
                if (!job.error)
                    job.error = std::current_exception();
            }
            // Skip remaining chunks; in-flight indices on other
            // threads finish normally.
            job.cursor.store(job.numChunks, std::memory_order_relaxed);
        }
    }
    --tlsInLoop;
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        if (!job)
            continue;
        runChunks(*job);
        if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last worker out signals completion under the lock so the
            // submitter cannot miss the notification.
            std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t)> &fn)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    const size_t count = end - begin;
    // Serial fallback: pool of one, a range that fits a single chunk, or
    // a nested call from inside a running loop.
    if (workers_.empty() || count <= grain || tlsInLoop > 0) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> submitLock(submitMutex_);
    Job job;
    job.fn = &fn;
    job.begin = begin;
    job.end = end;
    job.grain = grain;
    // count / grain rather than (count + grain - 1): the rounding-up
    // addition overflows when count is near SIZE_MAX.
    job.numChunks = count / grain + (count % grain != 0 ? 1 : 0);
    job.cursor.store(0, std::memory_order_relaxed);
    job.pending.store(workers_.size(), std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++generation_;
    }
    wake_.notify_all();

    // The caller works too; chunks are claimed from the shared cursor.
    runChunks(job);

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return job.pending.load(std::memory_order_acquire) == 0;
        });
        job_ = nullptr;
    }
    if (job.error)
        std::rethrow_exception(job.error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("ANAHEIM_THREADS")) {
        char *endPtr = nullptr;
        const long parsed = std::strtol(env, &endPtr, 10);
        if (endPtr != env && *endPtr == '\0' && parsed >= 1) {
            return std::min<size_t>(static_cast<size_t>(parsed),
                                    ThreadPool::kMaxThreads);
        }
        ANAHEIM_WARN("ignoring unparseable ANAHEIM_THREADS='", env, "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t
parallelThreadCount()
{
    return ThreadPool::global().size();
}

void
setParallelThreads(size_t threads)
{
    ThreadPool::global().resize(threads);
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t)> &fn)
{
    ThreadPool::global().parallelFor(begin, end, grain, fn);
}

} // namespace anaheim

/**
 * @file
 * Recoverable error reporting for library code.
 *
 * Library-internal failure used to go through ANAHEIM_FATAL, i.e.
 * exit(1): correct for a CLI entry point, hostile to any caller that
 * wants to detect, report, or survive the condition (a resilient
 * framework retrying a corrupted PIM segment, a server rejecting one
 * bad request). This header replaces that with a value type plus a
 * typed exception:
 *
 *  - ErrorCode / Status: a code + message pair for APIs that prefer to
 *    return errors (validation passes, capture helpers in tests).
 *  - AnaheimError: an exception carrying a Status, thrown by library
 *    code via ANAHEIM_RAISE / ANAHEIM_CHECK. Callers catch it and
 *    recover; CLI and bench entry points may let it terminate.
 *
 * ANAHEIM_PANIC/ANAHEIM_ASSERT (logging.h) remain for internal-bug
 * invariants that no caller could meaningfully handle.
 */

#ifndef ANAHEIM_COMMON_STATUS_H
#define ANAHEIM_COMMON_STATUS_H

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "logging.h"

namespace anaheim {

enum class ErrorCode {
    Ok = 0,
    /** Caller handed the library something malformed (bad trace, ragged
     *  BConv input, non-NTT-friendly modulus). */
    InvalidArgument,
    /** A finite resource ran out (bank rows, prime search range). */
    ResourceExhausted,
    /** Data failed an integrity check (uncorrectable ECC event). */
    DataCorruption,
};

/** Human-readable name of an error code ("InvalidArgument", ...). */
const char *errorCodeName(ErrorCode code);

/** A code + message pair; Ok carries an empty message. */
class Status
{
  public:
    Status() = default;
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status okStatus() { return Status(); }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "InvalidArgument: <message>", or "Ok". */
    std::string toString() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/** Typed exception thrown by library code for recoverable failures. */
class AnaheimError : public std::runtime_error
{
  public:
    AnaheimError(ErrorCode code, const std::string &message)
        : std::runtime_error(message), code_(code)
    {
    }

    ErrorCode code() const { return code_; }
    Status status() const { return Status(code_, what()); }

  private:
    ErrorCode code_;
};

/**
 * Run a CLI/bench/example body under a recoverable-error guard:
 * AnaheimError escapes become a one-line "<program>: <Code>: <message>"
 * diagnostic on stderr and a nonzero exit instead of std::terminate
 * with a raw abort. Other std::exception escapes are reported the same
 * way (internal-bug invariants keep going through ANAHEIM_PANIC).
 *
 *   int main(int argc, char **argv) {
 *       return runGuardedMain("quickstart", [&] { ...; return 0; });
 *   }
 */
int runGuardedMain(const char *programName,
                   const std::function<int()> &body);

} // namespace anaheim

/** Throw an AnaheimError with a stream-composed message. */
#define ANAHEIM_RAISE(code, ...)                                             \
    throw ::anaheim::AnaheimError(                                           \
        ::anaheim::ErrorCode::code,                                          \
        ::anaheim::detail::composeMessage(__VA_ARGS__))

/** Validation check: throws AnaheimError when the condition fails.
 *  Unlike ANAHEIM_ASSERT this is for caller-recoverable conditions. */
#define ANAHEIM_CHECK(cond, code, ...)                                       \
    do {                                                                     \
        if (!(cond))                                                         \
            ANAHEIM_RAISE(code, __VA_ARGS__);                                \
    } while (0)

#endif // ANAHEIM_COMMON_STATUS_H

#include "status.h"

#include <cstdio>

namespace anaheim {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "Ok";
      case ErrorCode::InvalidArgument: return "InvalidArgument";
      case ErrorCode::ResourceExhausted: return "ResourceExhausted";
      case ErrorCode::DataCorruption: return "DataCorruption";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "Ok";
    return std::string(errorCodeName(code_)) + ": " + message_;
}

int
runGuardedMain(const char *programName, const std::function<int()> &body)
{
    try {
        return body();
    } catch (const AnaheimError &error) {
        std::fprintf(stderr, "%s: %s\n", programName,
                     error.status().toString().c_str());
    } catch (const std::exception &error) {
        std::fprintf(stderr, "%s: unhandled exception: %s\n", programName,
                     error.what());
    }
    return 1;
}

} // namespace anaheim

#include "status.h"

namespace anaheim {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "Ok";
      case ErrorCode::InvalidArgument: return "InvalidArgument";
      case ErrorCode::ResourceExhausted: return "ResourceExhausted";
      case ErrorCode::DataCorruption: return "DataCorruption";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "Ok";
    return std::string(errorCodeName(code_)) + ": " + message_;
}

} // namespace anaheim

#include "polynomial.h"

#include "common/logging.h"
#include "common/parallel.h"
#include "math/automorph.h"
#include "math/kernels.h"
#include "math/modarith.h"

namespace anaheim {

Polynomial::Polynomial(RnsBasis basis, Domain domain)
    : basis_(std::move(basis)), domain_(domain)
{
    limbs_.assign(basis_.size(), CoeffVector(basis_.degree(), 0));
}

void
Polynomial::toEval()
{
    if (domain_ == Domain::Eval)
        return;
    parallelFor(0, limbs_.size(),
                [&](size_t i) { basis_.table(i).forward(limbs_[i]); });
    domain_ = Domain::Eval;
}

void
Polynomial::toCoeff()
{
    if (domain_ == Domain::Coeff)
        return;
    parallelFor(0, limbs_.size(),
                [&](size_t i) { basis_.table(i).inverse(limbs_[i]); });
    domain_ = Domain::Coeff;
}

void
Polynomial::checkCompatible(const Polynomial &other) const
{
    ANAHEIM_ASSERT(limbs_.size() == other.limbs_.size(),
                   "limb count mismatch: ", limbs_.size(), " vs ",
                   other.limbs_.size());
    ANAHEIM_ASSERT(domain_ == other.domain_, "domain mismatch");
    for (size_t i = 0; i < limbs_.size(); ++i) {
        ANAHEIM_ASSERT(basis_.prime(i) == other.basis_.prime(i),
                       "prime mismatch at limb ", i);
    }
}

Polynomial &
Polynomial::operator+=(const Polynomial &other)
{
    checkCompatible(other);
    const kernels::KernelOps &ops = kernels::active();
    parallelFor(0, limbs_.size(), [&](size_t i) {
        auto &dst = limbs_[i];
        ops.addMod(dst.data(), dst.data(), other.limbs_[i].data(),
                   dst.size(), basis_.prime(i));
    });
    return *this;
}

Polynomial &
Polynomial::operator-=(const Polynomial &other)
{
    checkCompatible(other);
    const kernels::KernelOps &ops = kernels::active();
    parallelFor(0, limbs_.size(), [&](size_t i) {
        auto &dst = limbs_[i];
        ops.subMod(dst.data(), dst.data(), other.limbs_[i].data(),
                   dst.size(), basis_.prime(i));
    });
    return *this;
}

Polynomial &
Polynomial::mulEq(const Polynomial &other)
{
    checkCompatible(other);
    const kernels::KernelOps &ops = kernels::active();
    parallelFor(0, limbs_.size(), [&](size_t i) {
        auto &dst = limbs_[i];
        ops.mulBarrett(dst.data(), dst.data(), other.limbs_[i].data(),
                       dst.size(), basis_.table(i).barrett());
    });
    return *this;
}

Polynomial &
Polynomial::macEq(const Polynomial &a, const Polynomial &b)
{
    checkCompatible(a);
    checkCompatible(b);
    const kernels::KernelOps &ops = kernels::active();
    parallelFor(0, limbs_.size(), [&](size_t i) {
        auto &dst = limbs_[i];
        ops.macBarrett(dst.data(), a.limbs_[i].data(),
                       b.limbs_[i].data(), dst.size(),
                       basis_.table(i).barrett());
    });
    return *this;
}

Polynomial &
Polynomial::negate()
{
    const kernels::KernelOps &ops = kernels::active();
    parallelFor(0, limbs_.size(), [&](size_t i) {
        auto &dst = limbs_[i];
        ops.negMod(dst.data(), dst.data(), dst.size(), basis_.prime(i));
    });
    return *this;
}

Polynomial &
Polynomial::mulScalarEq(const std::vector<uint64_t> &scalarPerLimb)
{
    ANAHEIM_ASSERT(scalarPerLimb.size() == limbs_.size(),
                   "scalar vector size mismatch");
    const kernels::KernelOps &ops = kernels::active();
    parallelFor(0, limbs_.size(), [&](size_t i) {
        const uint64_t q = basis_.prime(i);
        const ShoupMul prepared(scalarPerLimb[i] % q, q);
        auto &dst = limbs_[i];
        ops.mulShoup(dst.data(), dst.data(), dst.size(),
                     prepared.operand(), prepared.precon(), q);
    });
    return *this;
}

Polynomial &
Polynomial::mulConstEq(uint64_t constant)
{
    const kernels::KernelOps &ops = kernels::active();
    parallelFor(0, limbs_.size(), [&](size_t i) {
        const uint64_t q = basis_.prime(i);
        const ShoupMul prepared(constant % q, q);
        auto &dst = limbs_[i];
        ops.mulShoup(dst.data(), dst.data(), dst.size(),
                     prepared.operand(), prepared.precon(), q);
    });
    return *this;
}

Polynomial
Polynomial::automorphism(uint64_t k) const
{
    const size_t n = degree();
    ANAHEIM_ASSERT((k & 1) == 1 && k < 2 * n, "Galois element must be odd");
    Polynomial out(basis_, domain_);
    // Both domains reduce to a gather permutation (with sign wraps on
    // coefficients); the shared tables depend only on (n, k), and the
    // active kernel backend runs the inner loop vectorized.
    const auto tbl = domain_ == Domain::Coeff
                         ? coeffAutomorphismTable(n, k)
                         : evalAutomorphismTable(basis_.table(0), k);
    const kernels::KernelOps &ops = kernels::active();
    parallelFor(0, limbs_.size(), [&](size_t i) {
        ops.permuteNeg(out.limbs_[i].data(), limbs_[i].data(),
                       tbl->data(), n, basis_.prime(i));
    });
    return out;
}

Polynomial &
Polynomial::mulMonomialEq(size_t power)
{
    const size_t n = degree();
    ANAHEIM_ASSERT(power < 2 * n, "monomial power out of range");
    if (power == 0)
        return *this;
    const Domain original = domain_;
    toCoeff();
    parallelFor(0, limbs_.size(), [&](size_t i) {
        const uint64_t q = basis_.prime(i);
        const auto &src = limbs_[i];
        CoeffVector dst(n);
        for (size_t c = 0; c < n; ++c) {
            const size_t target = (c + power) % (2 * n);
            if (target < n)
                dst[target] = src[c];
            else
                dst[target - n] = negMod(src[c], q);
        }
        limbs_[i] = std::move(dst);
    });
    if (original == Domain::Eval)
        toEval();
    return *this;
}

Polynomial
Polynomial::firstLimbs(size_t count) const
{
    ANAHEIM_ASSERT(count <= limbs_.size(), "firstLimbs out of range");
    Polynomial out;
    out.basis_ = basis_.slice(0, count);
    out.domain_ = domain_;
    out.limbs_.assign(limbs_.begin(), limbs_.begin() + count);
    return out;
}

bool
Polynomial::operator==(const Polynomial &other) const
{
    if (limbs_.size() != other.limbs_.size() || domain_ != other.domain_)
        return false;
    for (size_t i = 0; i < limbs_.size(); ++i) {
        if (basis_.prime(i) != other.basis_.prime(i) ||
            limbs_[i] != other.limbs_[i]) {
            return false;
        }
    }
    return true;
}

Polynomial
polynomialFromSigned(const RnsBasis &basis,
                     const std::vector<int64_t> &coeffs)
{
    ANAHEIM_ASSERT(coeffs.size() == basis.degree(),
                   "coefficient count mismatch");
    Polynomial out(basis, Domain::Coeff);
    for (size_t i = 0; i < basis.size(); ++i) {
        const uint64_t q = basis.prime(i);
        for (size_t c = 0; c < coeffs.size(); ++c)
            out.limb(i)[c] = fromSigned(coeffs[c], q);
    }
    return out;
}

CoeffVector
negacyclicMultiply(const CoeffVector &a, const CoeffVector &b, uint64_t q)
{
    const size_t n = a.size();
    ANAHEIM_ASSERT(b.size() == n, "size mismatch");
    CoeffVector out(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (a[i] == 0)
            continue;
        for (size_t j = 0; j < n; ++j) {
            const uint64_t prod = mulMod(a[i], b[j], q);
            const size_t idx = i + j;
            if (idx < n)
                out[idx] = addMod(out[idx], prod, q);
            else
                out[idx - n] = subMod(out[idx - n], prod, q);
        }
    }
    return out;
}

} // namespace anaheim

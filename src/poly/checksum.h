/**
 * @file
 * Cheap rolling integrity checksums over RNS residues.
 *
 * ECC guards individual stored words; it cannot see corruption that
 * bypasses the code — MMAC lane flips, >= 3-bit aliasing, anything
 * with ECC disabled. A per-limb rolling checksum over a polynomial's
 * residues closes that gap at the ciphertext level: sealed when a
 * value is produced, re-verified at coherence write-back boundaries
 * before corruption can propagate into the next GPU segment.
 *
 * The checksum is an order-sensitive 64-bit FNV-style fold with a
 * splitmix finalizer per element: one multiply + xor + mix per
 * residue, position-sensitive (swapped residues change the digest),
 * and any single-word change flips about half the digest bits. It is
 * an integrity check against random corruption, not a MAC — there is
 * no adversary inside the memory system.
 */

#ifndef ANAHEIM_POLY_CHECKSUM_H
#define ANAHEIM_POLY_CHECKSUM_H

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace anaheim {

class Polynomial;

/** Rolling 64-bit digest of one limb's residues. */
uint64_t limbChecksum(const uint64_t *residues, size_t count);

/** Convenience overload, generic over the vector allocator (limb
 *  storage is cache-line-aligned CoeffVector; tests use std::vector). */
template <class Alloc>
uint64_t
limbChecksum(const std::vector<uint64_t, Alloc> &residues)
{
    return limbChecksum(residues.data(), residues.size());
}

/** Same digest over 32-bit words (the PIM storage view of a limb). */
uint64_t limbChecksum(const std::vector<uint32_t> &words);

/** Per-limb digests of one polynomial; attached to ciphertext
 *  metadata by the integrity layer (src/ckks/integrity.h). */
struct ChecksumTag {
    std::vector<uint64_t> perLimb;

    bool operator==(const ChecksumTag &other) const
    {
        return perLimb == other.perLimb;
    }
    bool operator!=(const ChecksumTag &other) const
    {
        return !(*this == other);
    }
};

/** Seal: digest every limb of `poly`. */
ChecksumTag polyChecksum(const Polynomial &poly);

/**
 * Verify `poly` against a previously sealed tag. Ok when every limb
 * digest matches; DataCorruption naming the first mismatching limb
 * otherwise (a limb-count change is also corruption).
 */
Status verifyPolyChecksum(const Polynomial &poly, const ChecksumTag &tag);

} // namespace anaheim

#endif // ANAHEIM_POLY_CHECKSUM_H

/**
 * @file
 * RNS polynomial: an L x N matrix of residues (L limbs of N coefficients)
 * over a shared RnsBasis, tracked as being in coefficient or evaluation
 * (NTT) domain.
 *
 * Element-wise operations (the ops Anaheim offloads to PIM) are valid in
 * either domain as long as both operands agree; polynomial products
 * require the evaluation domain. Automorphism is supported exactly in
 * both domains.
 */

#ifndef ANAHEIM_POLY_POLYNOMIAL_H
#define ANAHEIM_POLY_POLYNOMIAL_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "rns/basis.h"

namespace anaheim {

/** Representation domain of a polynomial's limbs. */
enum class Domain { Coeff, Eval };

class Polynomial
{
  public:
    Polynomial() = default;

    /** Zero polynomial over the given basis. */
    explicit Polynomial(RnsBasis basis, Domain domain = Domain::Eval);

    size_t degree() const { return basis_.degree(); }
    size_t limbCount() const { return basis_.size(); }
    Domain domain() const { return domain_; }
    const RnsBasis &basis() const { return basis_; }

    /** Limb storage is cache-line aligned (CoeffVector) so the
     *  vectorized kernels never split a 64-byte access. */
    CoeffVector &limb(size_t i) { return limbs_[i]; }
    const CoeffVector &limb(size_t i) const { return limbs_[i]; }
    std::vector<CoeffVector> &limbs() { return limbs_; }
    const std::vector<CoeffVector> &limbs() const { return limbs_; }

    /** Override the domain tag without transforming (key import only). */
    void setDomain(Domain domain) { domain_ = domain; }

    /** In-place NTT of every limb; no-op when already in Eval domain. */
    void toEval();

    /** In-place inverse NTT of every limb. */
    void toCoeff();

    /** @name Element-wise modular arithmetic (in place, same basis and
     *  domain required). */
    /// @{
    Polynomial &operator+=(const Polynomial &other);
    Polynomial &operator-=(const Polynomial &other);
    Polynomial &mulEq(const Polynomial &other);
    /** this += a * b. */
    Polynomial &macEq(const Polynomial &a, const Polynomial &b);
    Polynomial &negate();
    /** Multiply every limb i by scalar mod prime(i). */
    Polynomial &mulScalarEq(const std::vector<uint64_t> &scalarPerLimb);
    /** Multiply every limb by the same small integer constant. */
    Polynomial &mulConstEq(uint64_t constant);
    /// @}

    friend Polynomial operator+(Polynomial lhs, const Polynomial &rhs)
    {
        lhs += rhs;
        return lhs;
    }
    friend Polynomial operator-(Polynomial lhs, const Polynomial &rhs)
    {
        lhs -= rhs;
        return lhs;
    }
    friend Polynomial
    mul(Polynomial lhs, const Polynomial &rhs)
    {
        lhs.mulEq(rhs);
        return lhs;
    }

    /**
     * Galois automorphism X -> X^k for odd k in [1, 2N). Exact in both
     * domains: coefficient domain permutes indices with sign, evaluation
     * domain permutes slots via the NTT tables' exponent maps.
     */
    Polynomial automorphism(uint64_t k) const;

    /**
     * Exact multiplication by the monomial X^power (power in [0, 2N)),
     * a negacyclic coefficient shift. Multiplying by X^{N/2} multiplies
     * every slot by i, which bootstrapping uses for its free real/imag
     * recombination. Preserves the domain.
     */
    Polynomial &mulMonomialEq(size_t power);

    /** Restrict to the first `count` limbs (view-copy; shares tables). */
    Polynomial firstLimbs(size_t count) const;

    /** Exact equality (basis primes, domain, residues). */
    bool operator==(const Polynomial &other) const;

  private:
    void checkCompatible(const Polynomial &other) const;

    RnsBasis basis_;
    Domain domain_ = Domain::Eval;
    std::vector<CoeffVector> limbs_;
};

/**
 * Build a polynomial from signed integer coefficients (length N),
 * reducing into every prime of the basis. Result is in Coeff domain.
 */
Polynomial polynomialFromSigned(const RnsBasis &basis,
                                const std::vector<int64_t> &coeffs);

/**
 * Reference negacyclic product of two coefficient vectors mod q —
 * O(N^2), used by tests to validate the NTT path.
 */
CoeffVector negacyclicMultiply(const CoeffVector &a, const CoeffVector &b,
                               uint64_t q);

} // namespace anaheim

#endif // ANAHEIM_POLY_POLYNOMIAL_H

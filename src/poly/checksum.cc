#include "checksum.h"

#include "polynomial.h"

namespace anaheim {

namespace {

/** splitmix64 finalizer: one corrupted residue avalanches through the
 *  rest of the fold. */
uint64_t
mix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr uint64_t kSeed = 0xcbf29ce484222325ULL;

template <typename Word>
uint64_t
foldWords(const Word *words, size_t count)
{
    uint64_t digest = kSeed;
    for (size_t i = 0; i < count; ++i)
        digest = digest * kFnvPrime ^ mix(static_cast<uint64_t>(words[i]));
    return digest;
}

} // namespace

uint64_t
limbChecksum(const uint64_t *residues, size_t count)
{
    return foldWords(residues, count);
}

uint64_t
limbChecksum(const std::vector<uint32_t> &words)
{
    return foldWords(words.data(), words.size());
}

ChecksumTag
polyChecksum(const Polynomial &poly)
{
    ChecksumTag tag;
    tag.perLimb.reserve(poly.limbCount());
    for (size_t i = 0; i < poly.limbCount(); ++i)
        tag.perLimb.push_back(limbChecksum(poly.limb(i)));
    return tag;
}

Status
verifyPolyChecksum(const Polynomial &poly, const ChecksumTag &tag)
{
    if (poly.limbCount() != tag.perLimb.size()) {
        return Status(ErrorCode::DataCorruption,
                      detail::composeMessage(
                          "checksum limb count mismatch: polynomial has ",
                          poly.limbCount(), " limbs, tag has ",
                          tag.perLimb.size()));
    }
    for (size_t i = 0; i < poly.limbCount(); ++i) {
        if (limbChecksum(poly.limb(i)) != tag.perLimb[i]) {
            return Status(ErrorCode::DataCorruption,
                          detail::composeMessage(
                              "checksum mismatch in limb ", i, " of ",
                              poly.limbCount()));
        }
    }
    return Status::okStatus();
}

} // namespace anaheim

/**
 * @file
 * Negacyclic number-theoretic transform (NTT) over Z_q[X]/(X^N + 1).
 *
 * The forward transform uses Cooley–Tukey decimation-in-time butterflies
 * with precomputed bit-reversed powers of the 2N-th root psi; the inverse
 * uses Gentleman–Sande with the inverse powers and the final 1/N scaling
 * folded in. Complexity N/2 log N butterflies per limb, matching the
 * FFT-based cost model the paper assumes (0.5 * N log N multiplies).
 */

#ifndef ANAHEIM_MATH_NTT_H
#define ANAHEIM_MATH_NTT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anaheim {

/**
 * Precomputed NTT tables for one prime and one ring degree.
 *
 * Instances are immutable after construction and safely shareable.
 */
class NttTable
{
  public:
    /**
     * @param q Prime with q == 1 (mod 2N).
     * @param n Ring degree, a power of two.
     */
    NttTable(uint64_t q, size_t n);

    uint64_t modulus() const { return q_; }
    size_t degree() const { return n_; }

    /** In-place forward negacyclic NTT (natural order in and out). */
    void forward(uint64_t *data) const;

    /** In-place inverse negacyclic NTT. */
    void inverse(uint64_t *data) const;

    /** Convenience overloads on vectors (size must equal N). */
    void forward(std::vector<uint64_t> &data) const;
    void inverse(std::vector<uint64_t> &data) const;

    /**
     * Odd exponent e_j such that output slot j of forward() holds the
     * evaluation of the input polynomial at psi^{e_j}. Computed
     * numerically at construction; it only depends on the transform
     * structure (identical across primes), and is what eval-domain
     * automorphism needs to permute slots exactly.
     */
    const std::vector<uint32_t> &evalExponents() const
    {
        return evalExponents_;
    }

    /** Inverse of evalExponents(): slot index evaluating at psi^e, or -1
     *  for even e (which never occurs as an evaluation point). */
    const std::vector<int32_t> &slotOfExponent() const
    {
        return slotOfExponent_;
    }

  private:
    uint64_t q_;
    size_t n_;
    unsigned logN_;
    /** psi^bitrev(i): forward twiddles. */
    std::vector<uint64_t> fwdTwiddles_;
    /** psi^-bitrev(i): inverse twiddles. */
    std::vector<uint64_t> invTwiddles_;
    /** N^-1 mod q. */
    uint64_t nInv_;
    std::vector<uint32_t> evalExponents_;
    std::vector<int32_t> slotOfExponent_;
};

} // namespace anaheim

#endif // ANAHEIM_MATH_NTT_H

/**
 * @file
 * Negacyclic number-theoretic transform (NTT) over Z_q[X]/(X^N + 1).
 *
 * The forward transform uses Cooley–Tukey decimation-in-time butterflies
 * with precomputed bit-reversed powers of the 2N-th root psi; the inverse
 * uses Gentleman–Sande with the inverse powers and the final 1/N scaling
 * folded in. Complexity N/2 log N butterflies per limb, matching the
 * FFT-based cost model the paper assumes (0.5 * N log N multiplies).
 *
 * Two butterfly implementations coexist (DESIGN.md §11):
 *
 * - The **Harvey lazy-reduction kernels** (default for q < 2^59): every
 *   twiddle carries a precomputed Shoup companion, so a butterfly costs
 *   one mulhi + two multiplies instead of a 128-bit product and a
 *   hardware division. Intermediate values are kept only partially
 *   reduced (< 4q forward, < 2q inverse) and a single final pass
 *   normalizes to [0, q), folding in N^-1 on the inverse path via a
 *   prepared operand.
 * - The **reference kernels** (`forwardReference`/`inverseReference`):
 *   the original fully-reduced mulMod loops, kept compiled as the
 *   bitwise-identity oracle. Setting the `ANAHEIM_NTT_REFERENCE`
 *   environment variable (to anything but "0") forces every transform
 *   through them; they are also the automatic fallback for q >= 2^59,
 *   where the lazy < 4q invariant would approach the word boundary.
 *
 * Both paths produce bit-identical outputs in [0, q).
 */

#ifndef ANAHEIM_MATH_NTT_H
#define ANAHEIM_MATH_NTT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "kernels.h"
#include "modarith.h"

namespace anaheim {

/**
 * Precomputed NTT tables for one prime and one ring degree.
 *
 * Instances are immutable after construction and safely shareable.
 */
class NttTable
{
  public:
    /** Largest modulus the lazy kernels accept: with q < 2^59 the < 4q
     *  forward invariant stays below 2^61, far from 64-bit overflow. */
    static constexpr uint64_t kLazyModulusBound = uint64_t{1} << 59;

    /**
     * @param q Prime with q == 1 (mod 2N).
     * @param n Ring degree, a power of two.
     */
    NttTable(uint64_t q, size_t n);

    /**
     * Process-wide cache of tables keyed by (q, n). Contexts, tests and
     * benches frequently rebuild bases over the same primes; the cache
     * makes repeated construction (twiddle powers, primitive-root
     * search, eval-exponent probing) a map lookup. Thread-safe, and a
     * table is built at most once per key even under concurrent lookups:
     * the first caller publishes a future and constructs outside the
     * cache lock, later callers wait on the future. Growth is bounded
     * (LRU eviction beyond kSharedCacheCapacity entries; outstanding
     * shared_ptrs keep evicted tables alive).
     */
    static std::shared_ptr<const NttTable> shared(uint64_t q, size_t n);

    /** Most (q, n) entries shared() retains; bench sweeps that touch
     *  more primes than this recycle the least recently used slots. */
    static constexpr size_t kSharedCacheCapacity = 64;

    /** Drop every cached shared() entry (eviction hook for sweeps and
     *  leak-checking tests). In-flight constructions are unaffected. */
    static void clearShared();

    /** Number of entries currently held by the shared() cache. */
    static size_t sharedCacheSize();

    uint64_t modulus() const { return q_; }
    size_t degree() const { return n_; }

    /** Barrett reducer for this table's prime, for element-wise kernels
     *  that need full products of two variable operands. */
    const Barrett &barrett() const { return barrett_; }

    /** True when forward()/inverse() dispatch to the lazy kernels:
     *  requires q < kLazyModulusBound and the reference oracle not being
     *  forced (ANAHEIM_NTT_REFERENCE / kernels::setBackend). Evaluated
     *  per call so programmatic backend overrides take effect on
     *  existing tables. */
    bool
    usesLazyKernels() const
    {
        return lazyCapable_ && !kernels::nttReferenceForced();
    }

    /** Raw-pointer views of the twiddle tables for the kernel backends.
     *  Valid for the lifetime of this table. */
    kernels::NttView forwardView() const;
    kernels::NttView inverseView() const;

    /** In-place forward negacyclic NTT (natural order in and out). */
    void forward(uint64_t *data) const;

    /** In-place inverse negacyclic NTT. */
    void inverse(uint64_t *data) const;

    /** Reference (fully-reduced mulMod) kernels: the identity oracle. */
    void forwardReference(uint64_t *data) const;
    void inverseReference(uint64_t *data) const;

    /** Harvey lazy-reduction kernels; require q < kLazyModulusBound. */
    void forwardLazy(uint64_t *data) const;
    void inverseLazy(uint64_t *data) const;

    /** Convenience overloads on vectors (size must equal N); generic
     *  over the allocator so cache-line-aligned CoeffVector limbs and
     *  plain std::vector test data both work. */
    template <class Alloc>
    void
    forward(std::vector<uint64_t, Alloc> &data) const
    {
        ANAHEIM_ASSERT(data.size() == n_, "NTT size mismatch");
        forward(data.data());
    }
    template <class Alloc>
    void
    inverse(std::vector<uint64_t, Alloc> &data) const
    {
        ANAHEIM_ASSERT(data.size() == n_, "NTT size mismatch");
        inverse(data.data());
    }

    /**
     * Odd exponent e_j such that output slot j of forward() holds the
     * evaluation of the input polynomial at psi^{e_j}. Computed
     * numerically at construction; it only depends on the transform
     * structure (identical across primes), and is what eval-domain
     * automorphism needs to permute slots exactly.
     */
    const std::vector<uint32_t> &evalExponents() const
    {
        return evalExponents_;
    }

    /** Inverse of evalExponents(): slot index evaluating at psi^e, or -1
     *  for even e (which never occurs as an evaluation point). */
    const std::vector<int32_t> &slotOfExponent() const
    {
        return slotOfExponent_;
    }

  private:
    uint64_t q_;
    size_t n_;
    unsigned logN_;
    /** psi^bitrev(i): forward twiddles. */
    std::vector<uint64_t> fwdTwiddles_;
    /** psi^-bitrev(i): inverse twiddles. */
    std::vector<uint64_t> invTwiddles_;
    /** floor(twiddle * 2^64 / q): Shoup companions, same indexing. */
    std::vector<uint64_t> fwdTwiddlesShoup_;
    std::vector<uint64_t> invTwiddlesShoup_;
    /** N^-1 mod q. */
    uint64_t nInv_;
    /** floor(nInv * 2^64 / q). */
    uint64_t nInvShoup_;
    /** invTwiddles_[1] * nInv mod q: the final inverse-stage twiddle
     *  with 1/N folded in, so the blocked kernels emit canonical values
     *  without a separate normalization pass. */
    uint64_t lastW_;
    uint64_t lastWShoup_;
    Barrett barrett_;
    bool lazyCapable_;
    std::vector<uint32_t> evalExponents_;
    std::vector<int32_t> slotOfExponent_;
};

} // namespace anaheim

#endif // ANAHEIM_MATH_NTT_H

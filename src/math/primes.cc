#include "primes.h"

#include <algorithm>

#include "common/logging.h"
#include "common/status.h"
#include "modarith.h"

namespace anaheim {

namespace {

bool
millerRabinWitness(uint64_t n, uint64_t a, uint64_t d, int r)
{
    uint64_t x = powMod(a % n, d, n);
    if (x == 1 || x == n - 1)
        return false;
    for (int i = 0; i < r - 1; ++i) {
        x = mulMod(x, x, n);
        if (x == n - 1)
            return false;
    }
    return true; // composite witness found
}

} // namespace

bool
isPrime(uint64_t n)
{
    if (n < 2)
        return false;
    for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                       23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n == p)
            return true;
        if (n % p == 0)
            return false;
    }
    uint64_t d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // This witness set is deterministic for all 64-bit integers.
    for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                       23ULL, 29ULL, 31ULL, 37ULL}) {
        if (millerRabinWitness(n, a, d, r))
            return false;
    }
    return true;
}

std::vector<uint64_t>
generateNttPrimes(size_t n, unsigned bits, size_t count,
                  const std::vector<uint64_t> &skip)
{
    ANAHEIM_CHECK(bits >= 10 && bits <= 59, InvalidArgument,
                  "prime bit width out of range: ", bits);
    const uint64_t step = 2 * static_cast<uint64_t>(n);
    std::vector<uint64_t> primes;
    // Largest candidate == 1 (mod 2N) below 2^bits.
    uint64_t candidate = ((1ULL << bits) - 1) / step * step + 1;
    while (primes.size() < count && candidate > step) {
        const bool excluded =
            std::find(skip.begin(), skip.end(), candidate) != skip.end();
        if (!excluded && isPrime(candidate))
            primes.push_back(candidate);
        candidate -= step;
    }
    if (primes.size() < count) {
        ANAHEIM_RAISE(ResourceExhausted, "could not find ", count,
                      " NTT primes of ", bits, " bits for N=", n,
                      " (found ", primes.size(), ")");
    }
    return primes;
}

uint64_t
findPrimitiveRoot(uint64_t q, size_t n)
{
    const uint64_t order = 2 * static_cast<uint64_t>(n);
    ANAHEIM_ASSERT((q - 1) % order == 0, "q != 1 mod 2N");
    const uint64_t cofactor = (q - 1) / order;
    for (uint64_t g = 2; g < q; ++g) {
        const uint64_t root = powMod(g, cofactor, q);
        // root has order dividing 2N; it is primitive iff root^N == -1.
        if (powMod(root, n, q) == q - 1)
            return root;
    }
    ANAHEIM_PANIC("no primitive root found for q=", q);
}

} // namespace anaheim

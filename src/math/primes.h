/**
 * @file
 * Generation of NTT-friendly RNS primes.
 *
 * CKKS with RNS needs primes satisfying Q_i == 1 (mod 2N) so that the
 * 2N-th root of unity exists and the negacyclic NTT is defined. Anaheim
 * additionally restricts primes below 2^28 for its PIM MMAC units; the
 * generic library accepts any bit width up to 59.
 */

#ifndef ANAHEIM_MATH_PRIMES_H
#define ANAHEIM_MATH_PRIMES_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anaheim {

/** Deterministic Miller–Rabin primality test, exact for 64-bit inputs. */
bool isPrime(uint64_t n);

/**
 * Generate `count` distinct primes p == 1 (mod 2N) close to (and below)
 * 2^bits, scanning downward. Throws AnaheimError(ResourceExhausted)
 * when the range is exhausted before `count` primes are found.
 *
 * @param n     Ring degree N.
 * @param bits  Target bit width (primes < 2^bits).
 * @param count Number of primes needed.
 * @param skip  Primes to exclude (already allocated to another basis).
 */
std::vector<uint64_t> generateNttPrimes(
    size_t n, unsigned bits, size_t count,
    const std::vector<uint64_t> &skip = {});

/**
 * Find a primitive 2N-th root of unity modulo q (q == 1 mod 2N).
 * Deterministic given q and n.
 */
uint64_t findPrimitiveRoot(uint64_t q, size_t n);

} // namespace anaheim

#endif // ANAHEIM_MATH_PRIMES_H

/**
 * @file
 * Policy-templated bodies for every kernel backend (DESIGN.md §13).
 *
 * The transforms and element-wise loops are written once against a
 * small SIMD policy (load/store, 64-bit add/sub/mullo/mulhi, a
 * conditional subtract, and — for lanes-wide backends — the shuffle
 * primitives the sub-vector-width butterfly stages need). Each backend
 * translation unit instantiates Kernels<Policy> under its own -m flags,
 * so the same algorithm compiles to scalar, AVX2, and AVX-512 code.
 *
 * Transform structure (forward; the inverse mirrors it):
 *
 * - **Cache-blocked recursion.** The Cooley–Tukey butterfly tree is
 *   walked depth-first: big-stride passes split the polynomial until a
 *   block fits kTileElems (32 KiB — under half a typical 48 KiB L1d),
 *   then the remaining log(tile) passes run tile-resident. A block of
 *   length `len` at offset `o` uses twiddle index n/len + o/len, which
 *   is exactly the bit-reversed table's binary-tree numbering, so the
 *   recursion needs no twiddle bookkeeping. Stage loops carry the
 *   index as a running counter — consecutive blocks of one stage have
 *   consecutive tree indices — keeping 64-bit divides out of the hot
 *   loops.
 * - **Radix-4 merged passes.** Wherever two consecutive stages both
 *   have vector-wide strides, they are fused: four strided loads and
 *   stores feed four butterflies, halving the memory traffic of the
 *   dominant passes.
 * - **Sub-width stages in registers.** Once the butterfly stride drops
 *   to or below the vector width, each aligned group of 2*W
 *   coefficients is independent for all remaining stages: the group is
 *   loaded into two vectors, the t == W stage needs no shuffle at all,
 *   and each narrower stage deinterleaves with policy shuffles. The
 *   group is stored once, after the folded normalization.
 * - **Lazy bounds.** Vector backends use a three-multiply approximate
 *   Shoup quotient (P::mulhiShoup drops the low partial product), so
 *   products land in [0, 4q) instead of Harvey's [0, 2q). Forward
 *   intermediates stay < 8q via a single csub-4q per butterfly;
 *   inverse intermediates stay < 4q. q < 2^59 is gated upstream, so
 *   8q < 2^62 never wraps. The scalar backend's native mulhi is exact,
 *   which only tightens the bounds.
 * - **Exactness.** The final normalization (forward) and the folded
 *   N^-1 last stage (inverse) produce canonical residues, so every
 *   backend is bitwise identical to the division-based reference.
 */

#ifndef ANAHEIM_MATH_KERNELS_KERNEL_IMPL_H
#define ANAHEIM_MATH_KERNELS_KERNEL_IMPL_H

#include <cstddef>
#include <cstdint>

#include "math/kernels.h"
#include "math/modarith.h"

namespace anaheim {
namespace kernels {

/** L1-resident tile: 4096 coefficients = 32 KiB of working set. */
inline constexpr size_t kTileElems = 4096;

template <class P>
struct Kernels {
    using V = typename P::V;
    static constexpr size_t W = P::kWidth;

    // ----------------------------------------------------------- utils

    /** a * w mod q in [0, 4q) from the Shoup companion; any 64-bit a.
     *  wPreHi is srl(wPre, 32), hoisted by the caller. */
    static V
    shoupLazy(V a, V w, V wPre, V wPreHi, V q)
    {
        return P::sub(P::mullo(a, w),
                      P::mullo(P::mulhiShoup(a, wPre, wPreHi), q));
    }

    /** Fully-reduced Shoup product (two csubs cover the [0, 4q) lazy
     *  range). */
    static V
    shoupFull(V a, V w, V wPre, V wPreHi, V q, V q2)
    {
        return P::csub(P::csub(shoupLazy(a, w, wPre, wPreHi, q), q2), q);
    }

    // ------------------------------------------------- forward (CT DIT)

    /** One radix-2 forward stage over every block of length blen in
     *  [o0, o0+l); t = blen/2 >= W. idx is the tree index of the first
     *  block. Inputs/outputs < 8q. */
    static void
    fwdStage2(const NttView &v, uint64_t *data, size_t o0, size_t l,
              size_t blen, size_t idx)
    {
        const size_t t = blen / 2;
        const V vq = P::set1(v.q);
        const V v4q = P::set1(4 * v.q);
        for (size_t o = o0; o < o0 + l; o += blen, ++idx) {
            uint64_t *blk = data + o;
            const V vw = P::set1(v.tw[idx]);
            const V vwp = P::set1(v.twShoup[idx]);
            const V vwph = P::srl(vwp, 32);
            for (size_t j = 0; j < t; j += W) {
                V u = P::load(blk + j);
                V x = P::load(blk + j + t);
                u = P::csub(u, v4q);
                const V s = shoupLazy(x, vw, vwp, vwph, vq);
                P::store(blk + j, P::add(u, s));
                P::store(blk + j + t, P::sub(P::add(u, v4q), s));
            }
        }
    }

    /** Two merged radix-2 forward stages (radix-4) over every block of
     *  length blen in [o0, o0+l); blen/4 >= W. Four loads and stores
     *  feed four butterflies. */
    static void
    fwdStage4(const NttView &v, uint64_t *data, size_t o0, size_t l,
              size_t blen, size_t idx)
    {
        const size_t qtr = blen / 4;
        const V vq = P::set1(v.q);
        const V v4q = P::set1(4 * v.q);
        for (size_t o = o0; o < o0 + l; o += blen, ++idx) {
            uint64_t *blk = data + o;
            const V w1 = P::set1(v.tw[idx]);
            const V w1p = P::set1(v.twShoup[idx]);
            const V w1ph = P::srl(w1p, 32);
            const V w2 = P::set1(v.tw[2 * idx]);
            const V w2p = P::set1(v.twShoup[2 * idx]);
            const V w2ph = P::srl(w2p, 32);
            const V w3 = P::set1(v.tw[2 * idx + 1]);
            const V w3p = P::set1(v.twShoup[2 * idx + 1]);
            const V w3ph = P::srl(w3p, 32);
            for (size_t j = 0; j < qtr; j += W) {
                V a = P::load(blk + j);
                V b = P::load(blk + j + qtr);
                V c = P::load(blk + j + 2 * qtr);
                V d = P::load(blk + j + 3 * qtr);
                // Stage 1: pairs (a, c) and (b, d), twiddle w1.
                a = P::csub(a, v4q);
                b = P::csub(b, v4q);
                const V sc = shoupLazy(c, w1, w1p, w1ph, vq);
                const V sd = shoupLazy(d, w1, w1p, w1ph, vq);
                V a1 = P::add(a, sc);
                V c1 = P::sub(P::add(a, v4q), sc);
                V b1 = P::add(b, sd);
                V d1 = P::sub(P::add(b, v4q), sd);
                // Stage 2: pairs (a1, b1) w2 and (c1, d1) w3.
                a1 = P::csub(a1, v4q);
                c1 = P::csub(c1, v4q);
                const V sb = shoupLazy(b1, w2, w2p, w2ph, vq);
                const V sd2 = shoupLazy(d1, w3, w3p, w3ph, vq);
                P::store(blk + j, P::add(a1, sb));
                P::store(blk + j + qtr, P::sub(P::add(a1, v4q), sb));
                P::store(blk + j + 2 * qtr, P::add(c1, sd2));
                P::store(blk + j + 3 * qtr,
                         P::sub(P::add(c1, v4q), sd2));
            }
        }
    }

    /** The t == W stage on one in-register chunk (x0, x1): the halves
     *  are already whole vectors, so no shuffle is needed. One twiddle
     *  covers the chunk. */
    static void
    fwdSmallStepFull(const NttView &v, V &x0, V &x1, size_t idx)
    {
        const V vq = P::set1(v.q);
        const V v4q = P::set1(4 * v.q);
        const V vw = P::set1(v.tw[idx]);
        const V vwp = P::set1(v.twShoup[idx]);
        const V vwph = P::srl(vwp, 32);
        const V u = P::csub(x0, v4q);
        const V s = shoupLazy(x1, vw, vwp, vwph, vq);
        x0 = P::add(u, s);
        x1 = P::sub(P::add(u, v4q), s);
    }

    /** One in-register stage with half-width T < W over the chunk
     *  (x0, x1) of 2W consecutive coefficients; idx is the tree index
     *  of the chunk's first block, whose W/T twiddles are contiguous. */
    template <int T>
    static void
    fwdSmallStep(const NttView &v, V &x0, V &x1, size_t idx)
    {
        const V vq = P::set1(v.q);
        const V v4q = P::set1(4 * v.q);
        const V wv = P::template expandTwiddles<T>(v.tw + idx);
        const V wp = P::template expandTwiddles<T>(v.twShoup + idx);
        const V wph = P::srl(wp, 32);
        V u, x;
        P::template deinterleave<T>(x0, x1, u, x);
        u = P::csub(u, v4q);
        const V s = shoupLazy(x, wv, wp, wph, vq);
        const V nu = P::add(u, s);
        const V nv = P::sub(P::add(u, v4q), s);
        x0 = P::template interleaveLo<T>(nu, nv);
        x1 = P::template interleaveHi<T>(nu, nv);
    }

    /** All remaining forward stages with half-width <= W, plus the
     *  final normalization from [0, 8q) to canonical [0, q). Processes
     *  one 2W-aligned chunk at a time entirely in registers.
     *  blen0 is the first remaining stage: 2W (t == W first) or W. */
    static void
    fwdSmallStages(const NttView &v, uint64_t *data, size_t o0, size_t l,
                   size_t blen0)
    {
        if constexpr (W > 1) {
            const V vq = P::set1(v.q);
            const V v2q = P::set1(2 * v.q);
            const V v4q = P::set1(4 * v.q);
            const bool full = blen0 == 2 * W;
            for (size_t o = o0; o < o0 + l; o += 2 * W) {
                V x0 = P::load(data + o);
                V x1 = P::load(data + o + W);
                // Stage indices are n/blen + o/blen with constant
                // blen — pure shifts.
                if (full) {
                    fwdSmallStepFull(v, x0, x1,
                                     (v.n + o) / (2 * W));
                }
                if constexpr (W >= 8) {
                    fwdSmallStep<4>(v, x0, x1, (v.n + o) / 8);
                }
                if constexpr (W >= 4) {
                    fwdSmallStep<2>(v, x0, x1, (v.n + o) / 4);
                }
                fwdSmallStep<1>(v, x0, x1, (v.n + o) / 2);
                x0 = P::csub(P::csub(P::csub(x0, v4q), v2q), vq);
                x1 = P::csub(P::csub(P::csub(x1, v4q), v2q), vq);
                P::store(data + o, x0);
                P::store(data + o + W, x1);
            }
        } else {
            (void)v;
            (void)data;
            (void)o0;
            (void)l;
            (void)blen0;
        }
    }

    /** Tile-resident stages: every remaining forward stage for the
     *  block [o0, o0+l), then normalization while the tile is hot. */
    static void
    fwdTile(const NttView &v, uint64_t *data, size_t o0, size_t l)
    {
        // Radix loops stop once the in-register chain can take over
        // (blen <= 2W); scalar has no such chain and runs to blen 2.
        constexpr size_t stop = W > 1 ? 2 * W : 1;
        size_t blen = l;
        while (blen > stop && blen / 4 >= W) {
            fwdStage4(v, data, o0, l, blen, v.n / blen + o0 / blen);
            blen >>= 2;
        }
        while (blen > stop && blen / 2 >= W) {
            fwdStage2(v, data, o0, l, blen, v.n / blen + o0 / blen);
            blen >>= 1;
        }
        if constexpr (W > 1) {
            // blen landed on W or 2W (l is a power of two >= 2W).
            fwdSmallStages(v, data, o0, l, blen);
            return;
        }
        // Scalar backend normalizes here.
        const uint64_t q = v.q;
        for (size_t i = o0; i < o0 + l; ++i) {
            uint64_t x = data[i];
            if (x >= 4 * q)
                x -= 4 * q;
            if (x >= 2 * q)
                x -= 2 * q;
            if (x >= q)
                x -= q;
            data[i] = x;
        }
    }

    /** Depth-first blocked recursion over block [o, o+len). */
    static void
    fwdRecurse(const NttView &v, uint64_t *data, size_t o, size_t len)
    {
        if (len <= kTileElems) {
            fwdTile(v, data, o, len);
            return;
        }
        if (len >= 4 * kTileElems) {
            fwdStage4(v, data, o, len, len, v.n / len + o / len);
            const size_t qtr = len / 4;
            for (size_t k = 0; k < 4; ++k)
                fwdRecurse(v, data, o + k * qtr, qtr);
            return;
        }
        // len == 2 * kTileElems: one radix-2 pass, two half tiles.
        fwdStage2(v, data, o, len, len, v.n / len + o / len);
        fwdRecurse(v, data, o, len / 2);
        fwdRecurse(v, data, o + len / 2, len / 2);
    }

    static void
    forwardLazy(const NttView &v, uint64_t *data)
    {
        fwdRecurse(v, data, 0, v.n);
    }

    // ------------------------------------------------ inverse (GS DIF)

    /** One radix-2 inverse stage over every block of length blen in
     *  [o0, o0+l); t = blen/2 >= W. When `final` (blen == n), N^-1 is
     *  folded in and outputs are canonical; otherwise inputs/outputs
     *  stay < 4q. */
    static void
    invStage2(const NttView &v, uint64_t *data, size_t o0, size_t l,
              size_t blen, size_t idx, bool final)
    {
        const size_t t = blen / 2;
        const V vq = P::set1(v.q);
        const V v2q = P::set1(2 * v.q);
        const V v4q = P::set1(4 * v.q);
        if (final) {
            const V ni = P::set1(v.nInv);
            const V nip = P::set1(v.nInvShoup);
            const V niph = P::srl(nip, 32);
            const V lw = P::set1(v.lastW);
            const V lwp = P::set1(v.lastWShoup);
            const V lwph = P::srl(lwp, 32);
            for (size_t o = o0; o < o0 + l; o += blen) {
                uint64_t *blk = data + o;
                for (size_t j = 0; j < t; j += W) {
                    const V u = P::load(blk + j);
                    const V x = P::load(blk + j + t);
                    P::store(blk + j, shoupFull(P::add(u, x), ni, nip,
                                                niph, vq, v2q));
                    P::store(blk + j + t,
                             shoupFull(P::sub(P::add(u, v4q), x), lw,
                                       lwp, lwph, vq, v2q));
                }
            }
            return;
        }
        for (size_t o = o0; o < o0 + l; o += blen, ++idx) {
            uint64_t *blk = data + o;
            const V vw = P::set1(v.tw[idx]);
            const V vwp = P::set1(v.twShoup[idx]);
            const V vwph = P::srl(vwp, 32);
            for (size_t j = 0; j < t; j += W) {
                const V u = P::load(blk + j);
                const V x = P::load(blk + j + t);
                P::store(blk + j, P::csub(P::add(u, x), v4q));
                P::store(blk + j + t,
                         shoupLazy(P::sub(P::add(u, v4q), x), vw, vwp,
                                   vwph, vq));
            }
        }
    }

    /** Two merged inverse stages over every block of length 2*blen in
     *  [o0, o0+l): stage blen (twiddles ia, ia+1 per block) then stage
     *  2*blen (twiddle ib). blen/2 >= W. `final` when 2*blen == n. */
    static void
    invStage4(const NttView &v, uint64_t *data, size_t o0, size_t l,
              size_t blen, size_t ia, size_t ib, bool final)
    {
        const size_t qtr = blen / 2;
        const V vq = P::set1(v.q);
        const V v2q = P::set1(2 * v.q);
        const V v4q = P::set1(4 * v.q);
        const V ni = P::set1(v.nInv);
        const V nip = P::set1(v.nInvShoup);
        const V niph = P::srl(nip, 32);
        const V lw = P::set1(v.lastW);
        const V lwp = P::set1(v.lastWShoup);
        const V lwph = P::srl(lwp, 32);
        for (size_t o = o0; o < o0 + l; o += 2 * blen, ia += 2, ++ib) {
            uint64_t *blk = data + o;
            const V wa = P::set1(v.tw[ia]);
            const V wap = P::set1(v.twShoup[ia]);
            const V waph = P::srl(wap, 32);
            const V wb = P::set1(v.tw[ia + 1]);
            const V wbp = P::set1(v.twShoup[ia + 1]);
            const V wbph = P::srl(wbp, 32);
            const V wc = P::set1(v.tw[ib]);
            const V wcp = P::set1(v.twShoup[ib]);
            const V wcph = P::srl(wcp, 32);
            for (size_t j = 0; j < qtr; j += W) {
                const V a = P::load(blk + j);
                const V b = P::load(blk + j + qtr);
                const V c = P::load(blk + j + blen);
                const V d = P::load(blk + j + blen + qtr);
                // Stage 1: (a, b) with wa; (c, d) with wb.
                const V s1 = P::csub(P::add(a, b), v4q);
                const V d1 = shoupLazy(P::sub(P::add(a, v4q), b), wa,
                                       wap, waph, vq);
                const V s2 = P::csub(P::add(c, d), v4q);
                const V d2 = shoupLazy(P::sub(P::add(c, v4q), d), wb,
                                       wbp, wbph, vq);
                // Stage 2: (s1, s2) and (d1, d2), twiddle ib.
                if (final) {
                    P::store(blk + j, shoupFull(P::add(s1, s2), ni,
                                                nip, niph, vq, v2q));
                    P::store(blk + j + blen,
                             shoupFull(P::sub(P::add(s1, v4q), s2), lw,
                                       lwp, lwph, vq, v2q));
                    P::store(blk + j + qtr,
                             shoupFull(P::add(d1, d2), ni, nip, niph,
                                       vq, v2q));
                    P::store(blk + j + blen + qtr,
                             shoupFull(P::sub(P::add(d1, v4q), d2), lw,
                                       lwp, lwph, vq, v2q));
                } else {
                    P::store(blk + j, P::csub(P::add(s1, s2), v4q));
                    P::store(blk + j + blen,
                             shoupLazy(P::sub(P::add(s1, v4q), s2), wc,
                                       wcp, wcph, vq));
                    P::store(blk + j + qtr,
                             P::csub(P::add(d1, d2), v4q));
                    P::store(blk + j + blen + qtr,
                             shoupLazy(P::sub(P::add(d1, v4q), d2), wc,
                                       wcp, wcph, vq));
                }
            }
        }
    }

    /** The t == W inverse stage on one in-register chunk; folds N^-1
     *  when it is also the transform's final stage (n == 2W). */
    static void
    invSmallStepFull(const NttView &v, V &x0, V &x1, size_t idx,
                     bool final)
    {
        const V vq = P::set1(v.q);
        const V v4q = P::set1(4 * v.q);
        if (final) {
            const V v2q = P::set1(2 * v.q);
            const V ni = P::set1(v.nInv);
            const V nip = P::set1(v.nInvShoup);
            const V niph = P::srl(nip, 32);
            const V lw = P::set1(v.lastW);
            const V lwp = P::set1(v.lastWShoup);
            const V lwph = P::srl(lwp, 32);
            const V s = shoupFull(P::add(x0, x1), ni, nip, niph, vq,
                                  v2q);
            const V d = shoupFull(P::sub(P::add(x0, v4q), x1), lw, lwp,
                                  lwph, vq, v2q);
            x0 = s;
            x1 = d;
            return;
        }
        const V vw = P::set1(v.tw[idx]);
        const V vwp = P::set1(v.twShoup[idx]);
        const V vwph = P::srl(vwp, 32);
        const V s = P::csub(P::add(x0, x1), v4q);
        const V d = shoupLazy(P::sub(P::add(x0, v4q), x1), vw, vwp,
                              vwph, vq);
        x0 = s;
        x1 = d;
    }

    /** One in-register inverse stage with half-width T < W. */
    template <int T>
    static void
    invSmallStep(const NttView &v, V &x0, V &x1, size_t idx)
    {
        const V vq = P::set1(v.q);
        const V v4q = P::set1(4 * v.q);
        const V wv = P::template expandTwiddles<T>(v.tw + idx);
        const V wp = P::template expandTwiddles<T>(v.twShoup + idx);
        const V wph = P::srl(wp, 32);
        V u, x;
        P::template deinterleave<T>(x0, x1, u, x);
        const V s = P::csub(P::add(u, x), v4q);
        const V d = shoupLazy(P::sub(P::add(u, v4q), x), wv, wp, wph,
                              vq);
        x0 = P::template interleaveLo<T>(s, d);
        x1 = P::template interleaveHi<T>(s, d);
    }

    /** The leading inverse stages with half-width <= W, in registers
     *  per 2W-aligned chunk: stages blen = 2 .. 2W (t = 1 .. W). */
    static void
    invSmallStages(const NttView &v, uint64_t *data, size_t o0,
                   size_t l)
    {
        if constexpr (W > 1) {
            const bool final = 2 * W == v.n;
            for (size_t o = o0; o < o0 + l; o += 2 * W) {
                V x0 = P::load(data + o);
                V x1 = P::load(data + o + W);
                invSmallStep<1>(v, x0, x1, (v.n + o) / 2);
                if constexpr (W >= 4) {
                    invSmallStep<2>(v, x0, x1, (v.n + o) / 4);
                }
                if constexpr (W >= 8) {
                    invSmallStep<4>(v, x0, x1, (v.n + o) / 8);
                }
                invSmallStepFull(v, x0, x1, (v.n + o) / (2 * W),
                                 final);
                P::store(data + o, x0);
                P::store(data + o + W, x1);
            }
        } else {
            (void)v;
            (void)data;
            (void)o0;
            (void)l;
        }
    }

    /** Tile-resident leading inverse stages for block [o0, o0+l):
     *  everything with blen <= l. */
    static void
    invTile(const NttView &v, uint64_t *data, size_t o0, size_t l)
    {
        size_t blen = 2;
        if constexpr (W > 1) {
            invSmallStages(v, data, o0, l);
            blen = 4 * W;
        }
        // Radix-4 merged pairs (blen, 2*blen) while they fit the tile.
        while (2 * blen <= l) {
            invStage4(v, data, o0, l, blen,
                      v.n / blen + o0 / blen,
                      v.n / (2 * blen) + o0 / (2 * blen),
                      2 * blen == v.n);
            blen <<= 2;
        }
        // Leftover radix-2 stage up to the tile length (log parity).
        while (blen <= l) {
            invStage2(v, data, o0, l, blen, v.n / blen + o0 / blen,
                      blen == v.n);
            blen <<= 1;
        }
    }

    static void
    invRecurse(const NttView &v, uint64_t *data, size_t o, size_t len)
    {
        if (len <= kTileElems) {
            invTile(v, data, o, len);
            return;
        }
        if (len >= 4 * kTileElems) {
            const size_t qtr = len / 4;
            for (size_t k = 0; k < 4; ++k)
                invRecurse(v, data, o + k * qtr, qtr);
            invStage4(v, data, o, len, len / 2,
                      v.n / (len / 2) + o / (len / 2),
                      v.n / len + o / len, len == v.n);
            return;
        }
        invRecurse(v, data, o, len / 2);
        invRecurse(v, data, o + len / 2, len / 2);
        invStage2(v, data, o, len, len, v.n / len + o / len,
                  len == v.n);
    }

    static void
    inverseLazy(const NttView &v, uint64_t *data)
    {
        if (v.n == 1)
            return; // N^-1 == 1: the transform is the identity.
        invRecurse(v, data, 0, v.n);
    }

    // ----------------------------------------------------- element-wise

    static void
    mulShoup(uint64_t *dst, const uint64_t *src, size_t n, uint64_t w,
             uint64_t wShoup, uint64_t q)
    {
        size_t i = 0;
        if constexpr (W > 1) {
            const V vq = P::set1(q);
            const V v2q = P::set1(2 * q);
            const V vw = P::set1(w);
            const V vwp = P::set1(wShoup);
            const V vwph = P::srl(vwp, 32);
            for (; i + W <= n; i += W)
                P::store(dst + i, shoupFull(P::load(src + i), vw, vwp,
                                            vwph, vq, v2q));
        }
        for (; i < n; ++i)
            dst[i] = mulModShoup(src[i], w, wShoup, q);
    }

    static void
    mulShoupAcc(uint64_t *acc, const uint64_t *src, size_t n, uint64_t w,
                uint64_t wShoup, uint64_t q)
    {
        size_t i = 0;
        if constexpr (W > 1) {
            const V vq = P::set1(q);
            const V v2q = P::set1(2 * q);
            const V vw = P::set1(w);
            const V vwp = P::set1(wShoup);
            const V vwph = P::srl(vwp, 32);
            for (; i + W <= n; i += W) {
                const V s = shoupFull(P::load(src + i), vw, vwp, vwph,
                                      vq, v2q);
                P::store(acc + i,
                         P::csub(P::add(P::load(acc + i), s), vq));
            }
        }
        for (; i < n; ++i)
            acc[i] = addMod(acc[i], mulModShoup(src[i], w, wShoup, q),
                            q);
    }

    static void
    subMulShoup(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                size_t n, uint64_t w, uint64_t wShoup, uint64_t q)
    {
        size_t i = 0;
        if constexpr (W > 1) {
            const V vq = P::set1(q);
            const V v2q = P::set1(2 * q);
            const V vw = P::set1(w);
            const V vwp = P::set1(wShoup);
            const V vwph = P::srl(vwp, 32);
            for (; i + W <= n; i += W) {
                const V d = P::csub(
                    P::add(P::sub(P::load(a + i), P::load(b + i)), vq),
                    vq);
                P::store(dst + i, shoupFull(d, vw, vwp, vwph, vq,
                                            v2q));
            }
        }
        for (; i < n; ++i)
            dst[i] = mulModShoup(anaheim::subMod(a[i], b[i], q), w,
                                 wShoup, q);
    }

    static void
    addModV(uint64_t *dst, const uint64_t *a, const uint64_t *b,
            size_t n, uint64_t q)
    {
        size_t i = 0;
        if constexpr (W > 1) {
            const V vq = P::set1(q);
            for (; i + W <= n; i += W) {
                P::store(dst + i,
                         P::csub(P::add(P::load(a + i), P::load(b + i)),
                                 vq));
            }
        }
        for (; i < n; ++i)
            dst[i] = anaheim::addMod(a[i], b[i], q);
    }

    static void
    subModV(uint64_t *dst, const uint64_t *a, const uint64_t *b,
            size_t n, uint64_t q)
    {
        size_t i = 0;
        if constexpr (W > 1) {
            const V vq = P::set1(q);
            for (; i + W <= n; i += W) {
                const V s = P::add(
                    P::sub(P::load(a + i), P::load(b + i)), vq);
                P::store(dst + i, P::csub(s, vq));
            }
        }
        for (; i < n; ++i)
            dst[i] = anaheim::subMod(a[i], b[i], q);
    }

    static void
    negModV(uint64_t *dst, const uint64_t *src, size_t n, uint64_t q)
    {
        size_t i = 0;
        if constexpr (W > 1) {
            const V vq = P::set1(q);
            // q - a lands on q when a == 0; the csub folds it to 0.
            for (; i + W <= n; i += W) {
                P::store(dst + i,
                         P::csub(P::sub(vq, P::load(src + i)), vq));
            }
        }
        for (; i < n; ++i)
            dst[i] = anaheim::negMod(src[i], q);
    }

    /** Word-sized Barrett product of canonical lanes; see
     *  Barrett::factor64(). Uses the exact mulhi — the quotient
     *  derivation depends on it. Result is in [0, 3q) before the two
     *  csubs. */
    static V
    barrettMul(V a, V b, V vq, V v2q, V vmu, unsigned k)
    {
        const V pHi = P::mulhi(a, b);
        const V pLo = P::mullo(a, b);
        const V c1 = P::or_(P::sll(pHi, 65 - k), P::srl(pLo, k - 1));
        const V c3 = P::or_(P::sll(P::mulhi(c1, vmu), 63 - k),
                            P::srl(P::mullo(c1, vmu), k + 1));
        V r = P::sub(pLo, P::mullo(c3, vq));
        r = P::csub(r, v2q);
        return P::csub(r, vq);
    }

    static void
    mulBarrett(uint64_t *dst, const uint64_t *a, const uint64_t *b,
               size_t n, const Barrett &br)
    {
        size_t i = 0;
        if constexpr (W > 1) {
            const unsigned k = br.shiftBits();
            const V vq = P::set1(br.modulus());
            const V v2q = P::set1(2 * br.modulus());
            const V vmu = P::set1(br.factor64());
            for (; i + W <= n; i += W) {
                P::store(dst + i, barrettMul(P::load(a + i),
                                             P::load(b + i), vq, v2q,
                                             vmu, k));
            }
        }
        for (; i < n; ++i)
            dst[i] = br.mulMod(a[i], b[i]);
    }

    static void
    macBarrett(uint64_t *acc, const uint64_t *a, const uint64_t *b,
               size_t n, const Barrett &br)
    {
        size_t i = 0;
        if constexpr (W > 1) {
            const unsigned k = br.shiftBits();
            const V vq = P::set1(br.modulus());
            const V v2q = P::set1(2 * br.modulus());
            const V vmu = P::set1(br.factor64());
            for (; i + W <= n; i += W) {
                const V p = barrettMul(P::load(a + i), P::load(b + i),
                                       vq, v2q, vmu, k);
                P::store(acc + i,
                         P::csub(P::add(P::load(acc + i), p), vq));
            }
        }
        for (; i < n; ++i)
            acc[i] = addMod(acc[i], br.mulMod(a[i], b[i]),
                            br.modulus());
    }

    static void
    permuteNegV(uint64_t *dst, const uint64_t *src, const uint64_t *idx,
                size_t n, uint64_t q)
    {
        size_t i = 0;
        if constexpr (W > 1) {
            const V vq = P::set1(q);
            const V vmask = P::set1(kPermuteIndexMask);
            for (; i + W <= n; i += W) {
                const V e = P::load(idx + i);
                const V r = P::gather(src, P::and_(e, vmask));
                // q - r lands on q when r == 0; the csub folds it to 0.
                const V neg = P::csub(P::sub(vq, r), vq);
                P::store(dst + i, P::blendHighBit(e, r, neg));
            }
        }
        for (; i < n; ++i) {
            const uint64_t e = idx[i];
            const uint64_t r = src[e & kPermuteIndexMask];
            dst[i] = (e & kPermuteNegBit) != 0 ? anaheim::negMod(r, q)
                                               : r;
        }
    }

    /** The backend's KernelOps table. */
    static KernelOps
    ops(const char *name, Backend backend)
    {
        KernelOps k;
        k.name = name;
        k.backend = backend;
        k.vectorWidth = W;
        k.minDegree = W == 1 ? 1 : 2 * W;
        k.nttForwardLazy = &forwardLazy;
        k.nttInverseLazy = &inverseLazy;
        k.mulShoup = &mulShoup;
        k.mulShoupAcc = &mulShoupAcc;
        k.subMulShoup = &subMulShoup;
        k.addMod = &addModV;
        k.subMod = &subModV;
        k.negMod = &negModV;
        k.mulBarrett = &mulBarrett;
        k.macBarrett = &macBarrett;
        k.permuteNeg = &permuteNegV;
        return k;
    }
};

} // namespace kernels
} // namespace anaheim

#endif // ANAHEIM_MATH_KERNELS_KERNEL_IMPL_H

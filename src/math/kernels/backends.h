/**
 * @file
 * Internal registry of compiled kernel backends. Each accessor is
 * defined in its own translation unit, compiled with the matching -m
 * flags; the ANAHEIM_HAVE_* macros (set target-wide by CMake) tell
 * dispatch.cc which ones exist in this binary.
 */

#ifndef ANAHEIM_MATH_KERNELS_BACKENDS_H
#define ANAHEIM_MATH_KERNELS_BACKENDS_H

#include "math/kernels.h"

namespace anaheim {
namespace kernels {

#ifdef ANAHEIM_HAVE_AVX2
const KernelOps &avx2Ops();
#endif
#ifdef ANAHEIM_HAVE_AVX512
const KernelOps &avx512Ops();
#endif

} // namespace kernels
} // namespace anaheim

#endif // ANAHEIM_MATH_KERNELS_BACKENDS_H

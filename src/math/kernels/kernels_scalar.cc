/**
 * @file
 * Scalar kernel backend: the policy-templated bodies instantiated with
 * one 64-bit lane. Bitwise identical to (and a drop-in replacement for)
 * the original hand-written Harvey/Shoup loops, but with the same
 * cache-blocked, radix-4 transform structure as the vector backends, so
 * the no-SIMD build exercises the identical control flow.
 */

#include "math/kernels/kernel_impl.h"

namespace anaheim {
namespace kernels {

namespace {

struct ScalarPolicy {
    using V = uint64_t;
    static constexpr size_t kWidth = 1;

    static V load(const uint64_t *p) { return *p; }
    static void store(uint64_t *p, V v) { *p = v; }
    static V set1(uint64_t x) { return x; }
    static V add(V a, V b) { return a + b; }
    static V sub(V a, V b) { return a - b; }
    static V mullo(V a, V b) { return a * b; }
    static V mulhi(V a, V b) { return mulHi64(a, b); }
    /** Scalar mulhi is native and exact — the [0, 4q) bound the
     *  kernel layer assumes for Shoup products only tightens to the
     *  classic [0, 2q). The bHi operand exists for the vector
     *  backends' three-multiply approximation. */
    static V
    mulhiShoup(V a, V b, V bHi)
    {
        (void)bHi;
        return mulHi64(a, b);
    }
    static V csub(V x, V m) { return x >= m ? x - m : x; }
    static V srl(V x, unsigned s) { return x >> s; }
    static V sll(V x, unsigned s) { return x << s; }
    static V or_(V a, V b) { return a | b; }
};

} // namespace

const KernelOps &
scalarOps()
{
    static const KernelOps ops =
        Kernels<ScalarPolicy>::ops("scalar", Backend::Scalar);
    return ops;
}

} // namespace kernels
} // namespace anaheim

/**
 * @file
 * AVX2 kernel backend: four 64-bit lanes per op. Compiled only when the
 * toolchain supports -mavx2 (ANAHEIM_HAVE_AVX2); executed only when
 * CPUID reports AVX2 at runtime.
 *
 * AVX2 has no 64-bit vector multiply or unsigned compare, so the policy
 * builds them from 32x32->64 products (vpmuludq) and sign-flipped
 * signed compares. The sub-width butterfly stages use 128-bit lane
 * permutes (t == 2) and 64-bit unpacks (t == 1); the unpack pair visits
 * blocks in the order [0, 2, 1, 3], so the matching twiddle expansion
 * applies the same permutation (vpermq 0xD8) to keep lanes aligned.
 */

#ifdef ANAHEIM_HAVE_AVX2

#include <immintrin.h>

#include "math/kernels/backends.h"
#include "math/kernels/kernel_impl.h"

namespace anaheim {
namespace kernels {

namespace {

struct Avx2Policy {
    using V = __m256i;
    static constexpr size_t kWidth = 4;

    static V
    load(const uint64_t *p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    }
    static void
    store(uint64_t *p, V v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
    static V
    set1(uint64_t x)
    {
        return _mm256_set1_epi64x(static_cast<long long>(x));
    }
    static V add(V a, V b) { return _mm256_add_epi64(a, b); }
    static V sub(V a, V b) { return _mm256_sub_epi64(a, b); }
    static V or_(V a, V b) { return _mm256_or_si256(a, b); }
    static V and_(V a, V b) { return _mm256_and_si256(a, b); }

    /** dst lane i = base[idx lane i] (64-bit indices, 8-byte scale). */
    static V
    gather(const uint64_t *base, V idx)
    {
        return _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(base), idx, 8);
    }

    /** Per-lane select: b where sel's bit 63 is set, else a. */
    static V
    blendHighBit(V sel, V a, V b)
    {
        const V m = _mm256_cmpgt_epi64(_mm256_setzero_si256(), sel);
        return _mm256_blendv_epi8(a, b, m);
    }
    static V
    srl(V x, unsigned s)
    {
        return _mm256_srl_epi64(x, _mm_cvtsi32_si128(static_cast<int>(s)));
    }
    static V
    sll(V x, unsigned s)
    {
        return _mm256_sll_epi64(x, _mm_cvtsi32_si128(static_cast<int>(s)));
    }

    /** Low 64 bits of the lane-wise product. */
    static V
    mullo(V a, V b)
    {
        const V lo = _mm256_mul_epu32(a, b); // alo * blo, full 64 bits
        const V cross =
            _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                             _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
        return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
    }

    /** High 64 bits of the lane-wise product (schoolbook, 4 vpmuludq). */
    static V
    mulhi(V a, V b)
    {
        const V aHi = _mm256_srli_epi64(a, 32);
        const V bHi = _mm256_srli_epi64(b, 32);
        const V t0 = _mm256_mul_epu32(a, b);
        const V t1 = _mm256_mul_epu32(aHi, b);
        const V t2 = _mm256_mul_epu32(a, bHi);
        const V t3 = _mm256_mul_epu32(aHi, bHi);
        const V m32 = _mm256_set1_epi64x(0xffffffffLL);
        const V w = _mm256_add_epi64(t1, _mm256_srli_epi64(t0, 32));
        const V w1 = _mm256_add_epi64(_mm256_and_si256(w, m32), t2);
        return _mm256_add_epi64(
            t3, _mm256_add_epi64(_mm256_srli_epi64(w, 32),
                                 _mm256_srli_epi64(w1, 32)));
    }

    /** Approximate Shoup quotient: the high product without the low
     *  partial t0 and without cross-term carries. Undershoots the
     *  exact quotient by at most 2, so Shoup products land in
     *  [0, 4q) — covered by the kernel layer's 8q/4q lazy bounds.
     *  bHi is srl(b, 32), hoisted by the caller. */
    static V
    mulhiShoup(V a, V b, V bHi)
    {
        const V aHi = _mm256_srli_epi64(a, 32);
        const V t1 = _mm256_mul_epu32(aHi, b);
        const V t2 = _mm256_mul_epu32(a, bHi);
        const V t3 = _mm256_mul_epu32(aHi, bHi);
        return _mm256_add_epi64(
            t3, _mm256_add_epi64(_mm256_srli_epi64(t1, 32),
                                 _mm256_srli_epi64(t2, 32)));
    }

    /** x >= m ? x - m : x, unsigned (values may exceed 2^63 in the
     *  Barrett path, so the signed compare gets a sign-flip bias). */
    static V
    csub(V x, V m)
    {
        const V bias = _mm256_set1_epi64x(
            static_cast<long long>(0x8000000000000000ULL));
        const V lt = _mm256_cmpgt_epi64(_mm256_xor_si256(m, bias),
                                        _mm256_xor_si256(x, bias));
        return _mm256_sub_epi64(x, _mm256_andnot_si256(lt, m));
    }

    /** Split the 2W-chunk (x0 = elems 0..3, x1 = 4..7) into u/v lanes
     *  of the half-width-T stage. T == 1 visits blocks as [0, 2, 1, 3]
     *  (unpack order); expandTwiddles<1> matches it. */
    template <int T>
    static void
    deinterleave(V x0, V x1, V &u, V &v)
    {
        if constexpr (T == 2) {
            u = _mm256_permute2x128_si256(x0, x1, 0x20);
            v = _mm256_permute2x128_si256(x0, x1, 0x31);
        } else {
            static_assert(T == 1, "unsupported half-width");
            u = _mm256_unpacklo_epi64(x0, x1);
            v = _mm256_unpackhi_epi64(x0, x1);
        }
    }

    template <int T>
    static V
    interleaveLo(V u, V v)
    {
        if constexpr (T == 2)
            return _mm256_permute2x128_si256(u, v, 0x20);
        else
            return _mm256_unpacklo_epi64(u, v);
    }

    template <int T>
    static V
    interleaveHi(V u, V v)
    {
        if constexpr (T == 2)
            return _mm256_permute2x128_si256(u, v, 0x31);
        else
            return _mm256_unpackhi_epi64(u, v);
    }

    /** Broadcast the per-block twiddles tw[0..W/T) into v-lane order. */
    template <int T>
    static V
    expandTwiddles(const uint64_t *tw)
    {
        const V raw =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(tw));
        if constexpr (T == 2)
            return _mm256_permute4x64_epi64(raw, 0x50); // [w0 w0 w1 w1]
        else
            return _mm256_permute4x64_epi64(raw, 0xD8); // [w0 w2 w1 w3]
    }
};

} // namespace

const KernelOps &
avx2Ops()
{
    static const KernelOps ops =
        Kernels<Avx2Policy>::ops("avx2", Backend::Avx2);
    return ops;
}

} // namespace kernels
} // namespace anaheim

#endif // ANAHEIM_HAVE_AVX2

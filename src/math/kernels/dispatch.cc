/**
 * @file
 * Kernel-backend dispatch: resolves which KernelOps table the process
 * uses, from (in priority order) the programmatic override set by
 * setBackend(), the ANAHEIM_NTT_BACKEND / ANAHEIM_NTT_REFERENCE
 * environment variables, and CPUID. The resolution is cached; tests
 * flip it with setBackend()/resetBackend().
 */

#include "math/kernels.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "math/kernels/backends.h"

namespace anaheim {
namespace kernels {

namespace {

/** Programmatic override; kNoOverride when dispatch follows env+CPUID. */
constexpr int kNoOverride = -1;
std::atomic<int> gOverride{kNoOverride};

bool
envReferenceForced()
{
    static const bool forced = [] {
        const char *env = std::getenv("ANAHEIM_NTT_REFERENCE");
        return env != nullptr && env[0] != '\0' &&
               std::string(env) != "0";
    }();
    return forced;
}

/** Resolve ANAHEIM_NTT_BACKEND + CPUID once; Reference when the oracle
 *  is forced by either env variable. */
Backend
envResolvedBackend()
{
    static const Backend resolved = [] {
        if (const char *env = std::getenv("ANAHEIM_NTT_BACKEND");
            env != nullptr && env[0] != '\0') {
            const auto parsed = backendFromName(env);
            if (!parsed) {
                ANAHEIM_WARN("ANAHEIM_NTT_BACKEND=", env,
                             " is not a backend name (want reference/"
                             "scalar/avx2/avx512); using auto dispatch");
            } else if (!cpuSupports(*parsed)) {
                ANAHEIM_WARN("ANAHEIM_NTT_BACKEND=", env,
                             " is not compiled in or not supported by "
                             "this CPU; using auto dispatch");
            } else {
                return *parsed;
            }
        }
        if (envReferenceForced())
            return Backend::Reference;
#ifdef ANAHEIM_HAVE_AVX512
        if (cpuSupports(Backend::Avx512))
            return Backend::Avx512;
#endif
#ifdef ANAHEIM_HAVE_AVX2
        if (cpuSupports(Backend::Avx2))
            return Backend::Avx2;
#endif
        return Backend::Scalar;
    }();
    return resolved;
}

const KernelOps &
opsFor(Backend b)
{
    switch (b) {
#ifdef ANAHEIM_HAVE_AVX512
    case Backend::Avx512:
        return avx512Ops();
#endif
#ifdef ANAHEIM_HAVE_AVX2
    case Backend::Avx2:
        return avx2Ops();
#endif
    default:
        // Reference has no element-wise table of its own: the oracle
        // only replaces the NTT transforms (NttTable dispatches those
        // via nttReferenceForced()); everything else runs scalar.
        return scalarOps();
    }
}

} // namespace

const KernelOps &
active()
{
    return opsFor(activeBackend());
}

std::vector<const KernelOps *>
compiledBackends()
{
    std::vector<const KernelOps *> list{&scalarOps()};
#ifdef ANAHEIM_HAVE_AVX2
    list.push_back(&avx2Ops());
#endif
#ifdef ANAHEIM_HAVE_AVX512
    list.push_back(&avx512Ops());
#endif
    return list;
}

bool
cpuSupports(Backend b)
{
    switch (b) {
    case Backend::Reference:
    case Backend::Scalar:
        return true;
    case Backend::Avx2:
#ifdef ANAHEIM_HAVE_AVX2
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case Backend::Avx512:
#ifdef ANAHEIM_HAVE_AVX512
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512dq") != 0;
#else
        return false;
#endif
    }
    return false;
}

bool
setBackend(Backend b)
{
    if (!cpuSupports(b))
        return false;
    gOverride.store(static_cast<int>(b), std::memory_order_release);
    return true;
}

void
resetBackend()
{
    gOverride.store(kNoOverride, std::memory_order_release);
}

Backend
activeBackend()
{
    const int ov = gOverride.load(std::memory_order_acquire);
    if (ov != kNoOverride)
        return static_cast<Backend>(ov);
    return envResolvedBackend();
}

bool
nttReferenceForced()
{
    return activeBackend() == Backend::Reference;
}

const char *
backendName(Backend b)
{
    switch (b) {
    case Backend::Reference:
        return "reference";
    case Backend::Scalar:
        return "scalar";
    case Backend::Avx2:
        return "avx2";
    case Backend::Avx512:
        return "avx512";
    }
    return "unknown";
}

std::optional<Backend>
backendFromName(std::string_view name)
{
    if (name == "reference")
        return Backend::Reference;
    if (name == "scalar")
        return Backend::Scalar;
    if (name == "avx2")
        return Backend::Avx2;
    if (name == "avx512")
        return Backend::Avx512;
    return std::nullopt;
}

void
nttForwardLazy(const NttView &v, uint64_t *data)
{
    const KernelOps &ops = active();
    if (v.n < ops.minDegree) {
        scalarOps().nttForwardLazy(v, data);
        return;
    }
    ops.nttForwardLazy(v, data);
}

void
nttInverseLazy(const NttView &v, uint64_t *data)
{
    const KernelOps &ops = active();
    if (v.n < ops.minDegree) {
        scalarOps().nttInverseLazy(v, data);
        return;
    }
    ops.nttInverseLazy(v, data);
}

} // namespace kernels
} // namespace anaheim

/**
 * @file
 * AVX-512 kernel backend: eight 64-bit lanes per op. Requires F (lane
 * arithmetic, permutex2var) and DQ (vpmullq); compiled only when the
 * toolchain supports both (ANAHEIM_HAVE_AVX512), executed only when
 * CPUID reports them.
 *
 * The unsigned conditional subtract is a single vpminuq against the
 * wrapped difference; the sub-width butterfly stages are two-source
 * permutes with precomputed index vectors, all in natural block order.
 */

#ifdef ANAHEIM_HAVE_AVX512

#include <immintrin.h>

#include "math/kernels/backends.h"
#include "math/kernels/kernel_impl.h"

namespace anaheim {
namespace kernels {

namespace {

struct Avx512Policy {
    using V = __m512i;
    static constexpr size_t kWidth = 8;

    static V load(const uint64_t *p) { return _mm512_loadu_si512(p); }
    static void store(uint64_t *p, V v) { _mm512_storeu_si512(p, v); }
    static V
    set1(uint64_t x)
    {
        return _mm512_set1_epi64(static_cast<long long>(x));
    }
    static V add(V a, V b) { return _mm512_add_epi64(a, b); }
    static V sub(V a, V b) { return _mm512_sub_epi64(a, b); }
    static V or_(V a, V b) { return _mm512_or_si512(a, b); }
    static V and_(V a, V b) { return _mm512_and_si512(a, b); }

    /** dst lane i = base[idx lane i] (64-bit indices, 8-byte scale). */
    static V
    gather(const uint64_t *base, V idx)
    {
        return _mm512_i64gather_epi64(idx, base, 8);
    }

    /** Per-lane select: b where sel's bit 63 is set, else a. */
    static V
    blendHighBit(V sel, V a, V b)
    {
        return _mm512_mask_blend_epi64(_mm512_movepi64_mask(sel), a, b);
    }
    static V mullo(V a, V b) { return _mm512_mullo_epi64(a, b); }
    static V
    srl(V x, unsigned s)
    {
        return _mm512_srl_epi64(x, _mm_cvtsi32_si128(static_cast<int>(s)));
    }
    static V
    sll(V x, unsigned s)
    {
        return _mm512_sll_epi64(x, _mm_cvtsi32_si128(static_cast<int>(s)));
    }

    /** High 64 bits of the lane-wise product (schoolbook, 4 vpmuludq). */
    static V
    mulhi(V a, V b)
    {
        const V aHi = _mm512_srli_epi64(a, 32);
        const V bHi = _mm512_srli_epi64(b, 32);
        const V t0 = _mm512_mul_epu32(a, b);
        const V t1 = _mm512_mul_epu32(aHi, b);
        const V t2 = _mm512_mul_epu32(a, bHi);
        const V t3 = _mm512_mul_epu32(aHi, bHi);
        const V m32 = _mm512_set1_epi64(0xffffffffLL);
        const V w = _mm512_add_epi64(t1, _mm512_srli_epi64(t0, 32));
        const V w1 = _mm512_add_epi64(_mm512_and_si512(w, m32), t2);
        return _mm512_add_epi64(
            t3, _mm512_add_epi64(_mm512_srli_epi64(w, 32),
                                 _mm512_srli_epi64(w1, 32)));
    }

    /** Approximate Shoup quotient: the high product without the low
     *  partial t0 and without cross-term carries. Undershoots the
     *  exact quotient by at most 2, so Shoup products land in
     *  [0, 4q) — covered by the kernel layer's 8q/4q lazy bounds.
     *  bHi is srl(b, 32), hoisted by the caller. */
    static V
    mulhiShoup(V a, V b, V bHi)
    {
        const V aHi = _mm512_srli_epi64(a, 32);
        const V t1 = _mm512_mul_epu32(aHi, b);
        const V t2 = _mm512_mul_epu32(a, bHi);
        const V t3 = _mm512_mul_epu32(aHi, bHi);
        return _mm512_add_epi64(
            t3, _mm512_add_epi64(_mm512_srli_epi64(t1, 32),
                                 _mm512_srli_epi64(t2, 32)));
    }

    /** x >= m ? x - m : x, unsigned: min(x, x - m) — the subtraction
     *  wraps above x exactly when x < m. */
    static V
    csub(V x, V m)
    {
        return _mm512_min_epu64(x, _mm512_sub_epi64(x, m));
    }

    template <int T>
    static void
    deinterleave(V x0, V x1, V &u, V &v)
    {
        if constexpr (T == 4) {
            u = _mm512_permutex2var_epi64(
                x0, _mm512_set_epi64(11, 10, 9, 8, 3, 2, 1, 0), x1);
            v = _mm512_permutex2var_epi64(
                x0, _mm512_set_epi64(15, 14, 13, 12, 7, 6, 5, 4), x1);
        } else if constexpr (T == 2) {
            u = _mm512_permutex2var_epi64(
                x0, _mm512_set_epi64(13, 12, 9, 8, 5, 4, 1, 0), x1);
            v = _mm512_permutex2var_epi64(
                x0, _mm512_set_epi64(15, 14, 11, 10, 7, 6, 3, 2), x1);
        } else {
            static_assert(T == 1, "unsupported half-width");
            u = _mm512_permutex2var_epi64(
                x0, _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0), x1);
            v = _mm512_permutex2var_epi64(
                x0, _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1), x1);
        }
    }

    template <int T>
    static V
    interleaveLo(V u, V v)
    {
        if constexpr (T == 4) {
            return _mm512_permutex2var_epi64(
                u, _mm512_set_epi64(11, 10, 9, 8, 3, 2, 1, 0), v);
        } else if constexpr (T == 2) {
            return _mm512_permutex2var_epi64(
                u, _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0), v);
        } else {
            return _mm512_permutex2var_epi64(
                u, _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0), v);
        }
    }

    template <int T>
    static V
    interleaveHi(V u, V v)
    {
        if constexpr (T == 4) {
            return _mm512_permutex2var_epi64(
                u, _mm512_set_epi64(15, 14, 13, 12, 7, 6, 5, 4), v);
        } else if constexpr (T == 2) {
            return _mm512_permutex2var_epi64(
                u, _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4), v);
        } else {
            return _mm512_permutex2var_epi64(
                u, _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4), v);
        }
    }

    template <int T>
    static V
    expandTwiddles(const uint64_t *tw)
    {
        const V raw = _mm512_loadu_si512(tw);
        if constexpr (T == 4) {
            return _mm512_permutexvar_epi64(
                _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0), raw);
        } else if constexpr (T == 2) {
            return _mm512_permutexvar_epi64(
                _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0), raw);
        } else {
            return raw;
        }
    }
};

} // namespace

const KernelOps &
avx512Ops()
{
    static const KernelOps ops =
        Kernels<Avx512Policy>::ops("avx512", Backend::Avx512);
    return ops;
}

} // namespace kernels
} // namespace anaheim

#endif // ANAHEIM_HAVE_AVX512

/**
 * @file
 * Scalar modular arithmetic over word-sized primes.
 *
 * The functional CKKS library works with 64-bit words and primes up to
 * 2^59 (generic path via 128-bit products). The Anaheim PIM hardware model
 * instead uses 28-bit primes with Montgomery reduction (see montgomery.h);
 * both paths are cross-checked in the test suite.
 */

#ifndef ANAHEIM_MATH_MODARITH_H
#define ANAHEIM_MATH_MODARITH_H

#include <cstdint>

namespace anaheim {

/** a + b mod q, assuming a, b < q. */
inline uint64_t
addMod(uint64_t a, uint64_t b, uint64_t q)
{
    const uint64_t sum = a + b;
    return sum >= q ? sum - q : sum;
}

/** a - b mod q, assuming a, b < q. */
inline uint64_t
subMod(uint64_t a, uint64_t b, uint64_t q)
{
    return a >= b ? a - b : a + q - b;
}

/** -a mod q, assuming a < q. */
inline uint64_t
negMod(uint64_t a, uint64_t q)
{
    return a == 0 ? 0 : q - a;
}

/** a * b mod q via a 128-bit product; valid for any q < 2^63. */
inline uint64_t
mulMod(uint64_t a, uint64_t b, uint64_t q)
{
    return static_cast<uint64_t>(
        static_cast<unsigned __int128>(a) * b % q);
}

/** High 64 bits of the 128-bit product a * b. */
inline uint64_t
mulHi64(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) * b) >> 64);
}

/** a * b + c mod q. */
inline uint64_t
macMod(uint64_t a, uint64_t b, uint64_t c, uint64_t q)
{
    return addMod(mulMod(a, b, q), c, q);
}

/**
 * Shoup precomputation for a fixed multiplicand w < q: floor(w * 2^64 / q).
 * With it, a * w mod q costs one mulhi, two multiplies, and at most one
 * conditional subtraction — no division (see ShoupMul).
 */
inline uint64_t
shoupPrecompute(uint64_t w, uint64_t q)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(w) << 64) / q);
}

/**
 * a * w mod q with a precomputed Shoup constant, reduced only to [0, 2q):
 * the lazy form Harvey-style NTT butterflies consume directly. Valid for
 * any 64-bit a, w < q, q < 2^63. Writing w*2^64 = wPrecon*q + b with
 * 0 <= b < q, the returned value is a*w - floor(a*wPrecon/2^64)*q =
 * (q*(a*wPrecon mod 2^64) + a*b) / 2^64 < q + a*q/2^64 < 2q.
 */
inline uint64_t
mulModShoupLazy(uint64_t a, uint64_t w, uint64_t wPrecon, uint64_t q)
{
    const uint64_t quot = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) * wPrecon) >> 64);
    return a * w - quot * q;
}

/** a * w mod q with a precomputed Shoup constant, fully reduced. */
inline uint64_t
mulModShoup(uint64_t a, uint64_t w, uint64_t wPrecon, uint64_t q)
{
    const uint64_t r = mulModShoupLazy(a, w, wPrecon, q);
    return r >= q ? r - q : r;
}

/**
 * Prepared fixed multiplicand for division-free modular products: carries
 * w together with its Shoup companion floor(w * 2^64 / q). Prepare once,
 * then every a * w mod q on the broadcast path costs one mulhi + one
 * multiply + at most one conditional subtraction — the same pattern the
 * 28-bit Montgomery path exposes as mulModPrepared. Requires w < q and
 * q < 2^63; the modulus is passed at multiply time so tables of prepared
 * constants stay two words per entry.
 */
class ShoupMul
{
  public:
    ShoupMul() = default;
    ShoupMul(uint64_t w, uint64_t q)
        : w_(w), wPrecon_(shoupPrecompute(w, q))
    {
    }

    uint64_t operand() const { return w_; }
    uint64_t precon() const { return wPrecon_; }

    /** a * w mod q, fully reduced; any 64-bit a. */
    uint64_t
    mul(uint64_t a, uint64_t q) const
    {
        return mulModShoup(a, w_, wPrecon_, q);
    }

    /** a * w mod q reduced only to [0, 2q); any 64-bit a. */
    uint64_t
    mulLazy(uint64_t a, uint64_t q) const
    {
        return mulModShoupLazy(a, w_, wPrecon_, q);
    }

  private:
    uint64_t w_ = 0;
    uint64_t wPrecon_ = 0;
};

/** a^e mod q by square-and-multiply. */
uint64_t powMod(uint64_t a, uint64_t e, uint64_t q);

/** Multiplicative inverse of a mod q (q prime), via Fermat. */
uint64_t invMod(uint64_t a, uint64_t q);

/**
 * Precomputed Barrett constant for fast reduction of 128-bit products
 * modulo a fixed prime q < 2^62. Matches the shoup-style word reduction
 * GPU FHE libraries use for element-wise kernels.
 */
class Barrett
{
  public:
    Barrett() = default;
    explicit Barrett(uint64_t q);

    uint64_t modulus() const { return q_; }

    /** Reduce a full 128-bit value modulo q. */
    uint64_t reduce(unsigned __int128 x) const;

    /** a * b mod q using the precomputed constant. */
    uint64_t
    mulMod(uint64_t a, uint64_t b) const
    {
        return reduce(static_cast<unsigned __int128>(a) * b);
    }

    /** Bit width k of the modulus: 2^(k-1) <= q < 2^k. */
    unsigned shiftBits() const { return shiftBits_; }

    /**
     * floor(2^(2k) / q): the single-word Barrett factor the vector
     * kernels use. For canonical inputs a, b < q the word-sized
     * reduction P - floor(floor(P/2^(k-1)) * factor / 2^(k+1)) * q
     * lands in [0, 3q) and two conditional subtractions make it
     * canonical — the same value reduce() computes.
     */
    uint64_t factor64() const { return factor64_; }

  private:
    uint64_t q_ = 0;
    /** floor(2^128 / q), stored as two 64-bit halves. */
    uint64_t ratioHi_ = 0;
    uint64_t ratioLo_ = 0;
    uint64_t factor64_ = 0;
    unsigned shiftBits_ = 0;
};

/** Centered representative of a mod q in (-q/2, q/2]. */
inline int64_t
toCentered(uint64_t a, uint64_t q)
{
    return a > q / 2 ? static_cast<int64_t>(a) - static_cast<int64_t>(q)
                     : static_cast<int64_t>(a);
}

/** Map a signed value into [0, q). */
inline uint64_t
fromSigned(int64_t a, uint64_t q)
{
    const int64_t r = a % static_cast<int64_t>(q);
    return r < 0 ? static_cast<uint64_t>(r + static_cast<int64_t>(q))
                 : static_cast<uint64_t>(r);
}

} // namespace anaheim

#endif // ANAHEIM_MATH_MODARITH_H

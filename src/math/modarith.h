/**
 * @file
 * Scalar modular arithmetic over word-sized primes.
 *
 * The functional CKKS library works with 64-bit words and primes up to
 * 2^59 (generic path via 128-bit products). The Anaheim PIM hardware model
 * instead uses 28-bit primes with Montgomery reduction (see montgomery.h);
 * both paths are cross-checked in the test suite.
 */

#ifndef ANAHEIM_MATH_MODARITH_H
#define ANAHEIM_MATH_MODARITH_H

#include <cstdint>

namespace anaheim {

/** a + b mod q, assuming a, b < q. */
inline uint64_t
addMod(uint64_t a, uint64_t b, uint64_t q)
{
    const uint64_t sum = a + b;
    return sum >= q ? sum - q : sum;
}

/** a - b mod q, assuming a, b < q. */
inline uint64_t
subMod(uint64_t a, uint64_t b, uint64_t q)
{
    return a >= b ? a - b : a + q - b;
}

/** -a mod q, assuming a < q. */
inline uint64_t
negMod(uint64_t a, uint64_t q)
{
    return a == 0 ? 0 : q - a;
}

/** a * b mod q via a 128-bit product; valid for any q < 2^63. */
inline uint64_t
mulMod(uint64_t a, uint64_t b, uint64_t q)
{
    return static_cast<uint64_t>(
        static_cast<unsigned __int128>(a) * b % q);
}

/** a * b + c mod q. */
inline uint64_t
macMod(uint64_t a, uint64_t b, uint64_t c, uint64_t q)
{
    return addMod(mulMod(a, b, q), c, q);
}

/** a^e mod q by square-and-multiply. */
uint64_t powMod(uint64_t a, uint64_t e, uint64_t q);

/** Multiplicative inverse of a mod q (q prime), via Fermat. */
uint64_t invMod(uint64_t a, uint64_t q);

/**
 * Precomputed Barrett constant for fast reduction of 128-bit products
 * modulo a fixed prime q < 2^62. Matches the shoup-style word reduction
 * GPU FHE libraries use for element-wise kernels.
 */
class Barrett
{
  public:
    Barrett() = default;
    explicit Barrett(uint64_t q);

    uint64_t modulus() const { return q_; }

    /** Reduce a full 128-bit value modulo q. */
    uint64_t reduce(unsigned __int128 x) const;

    /** a * b mod q using the precomputed constant. */
    uint64_t
    mulMod(uint64_t a, uint64_t b) const
    {
        return reduce(static_cast<unsigned __int128>(a) * b);
    }

  private:
    uint64_t q_ = 0;
    /** floor(2^128 / q), stored as two 64-bit halves. */
    uint64_t ratioHi_ = 0;
    uint64_t ratioLo_ = 0;
};

/** Centered representative of a mod q in (-q/2, q/2]. */
inline int64_t
toCentered(uint64_t a, uint64_t q)
{
    return a > q / 2 ? static_cast<int64_t>(a) - static_cast<int64_t>(q)
                     : static_cast<int64_t>(a);
}

/** Map a signed value into [0, q). */
inline uint64_t
fromSigned(int64_t a, uint64_t q)
{
    const int64_t r = a % static_cast<int64_t>(q);
    return r < 0 ? static_cast<uint64_t>(r + static_cast<int64_t>(q))
                 : static_cast<uint64_t>(r);
}

} // namespace anaheim

#endif // ANAHEIM_MATH_MODARITH_H

#include "ntt.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/logging.h"
#include "common/status.h"
#include "modarith.h"
#include "primes.h"

namespace anaheim {

namespace {

unsigned
log2Exact(size_t n)
{
    unsigned log = 0;
    while ((size_t{1} << log) < n)
        ++log;
    ANAHEIM_ASSERT((size_t{1} << log) == n, "N must be a power of two");
    return log;
}

/**
 * Bit-reversal permutation table for indices [0, n): rev[i] is i with its
 * low `bits` bits reversed. Built in O(n) by the standard recurrence
 * rev[i] = rev[i/2]/2 | (i&1) << (bits-1), replacing the old
 * O(log N)-per-index loop that ran 2N times per table build.
 */
std::vector<uint32_t>
bitReversalTable(size_t n, unsigned bits)
{
    std::vector<uint32_t> rev(n, 0);
    for (size_t i = 1; i < n; ++i) {
        rev[i] = static_cast<uint32_t>((rev[i >> 1] >> 1) |
                                       ((i & 1) << (bits - 1)));
    }
    return rev;
}

/** True when ANAHEIM_NTT_REFERENCE forces the oracle kernels; read once
 *  so every table in the process dispatches consistently. */
bool
referenceKernelsForced()
{
    static const bool forced = [] {
        const char *env = std::getenv("ANAHEIM_NTT_REFERENCE");
        return env != nullptr && env[0] != '\0' &&
               std::string(env) != "0";
    }();
    return forced;
}

} // namespace

NttTable::NttTable(uint64_t q, size_t n) : q_(q), n_(n)
{
    // Fail at table build with actionable messages, not later with
    // garbage transforms: the ring degree must be a power of two and
    // the prime must satisfy the NTT-friendliness condition.
    ANAHEIM_CHECK(n > 0 && (n & (n - 1)) == 0, InvalidArgument,
                  "NTT ring degree must be a nonzero power of two, got N=",
                  n);
    logN_ = log2Exact(n);
    ANAHEIM_CHECK(q > 2 && (q & 1) == 1, InvalidArgument,
                  "NTT modulus must be an odd prime > 2, got q=", q);
    ANAHEIM_CHECK((q - 1) % (2 * n) == 0, InvalidArgument,
                  "NTT prime must satisfy q == 1 (mod 2N) for a 2N-th "
                  "root of unity, got q=", q, ", N=", n,
                  " ((q-1) % 2N = ", (q - 1) % (2 * n), ")");
    barrett_ = Barrett(q);
    lazy_ = q < kLazyModulusBound && !referenceKernelsForced();
    const uint64_t psi = findPrimitiveRoot(q, n);
    const uint64_t psiInv = invMod(psi, q);

    fwdTwiddles_.resize(n);
    invTwiddles_.resize(n);
    uint64_t power = 1;
    uint64_t powerInv = 1;
    std::vector<uint64_t> fwd(n), inv(n);
    for (size_t i = 0; i < n; ++i) {
        fwd[i] = power;
        inv[i] = powerInv;
        power = mulMod(power, psi, q);
        powerInv = mulMod(powerInv, psiInv, q);
    }
    const auto rev = bitReversalTable(n, logN_ == 0 ? 1 : logN_);
    for (size_t i = 0; i < n; ++i) {
        fwdTwiddles_[i] = fwd[rev[i]];
        invTwiddles_[i] = inv[rev[i]];
    }
    fwdTwiddlesShoup_.resize(n);
    invTwiddlesShoup_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        fwdTwiddlesShoup_[i] = shoupPrecompute(fwdTwiddles_[i], q);
        invTwiddlesShoup_[i] = shoupPrecompute(invTwiddles_[i], q);
    }
    nInv_ = invMod(n, q);
    nInvShoup_ = shoupPrecompute(nInv_, q);

    // Determine which power of psi each output slot evaluates at, by
    // transforming the monomial X and looking the results up in a
    // psi-power table. Exact, and independent of algorithm details.
    std::vector<uint64_t> monomial(n, 0);
    if (n > 1)
        monomial[1] = 1;
    else
        monomial[0] = 1; // degenerate N=1 ring
    forward(monomial.data());
    std::unordered_map<uint64_t, uint32_t> exponentOf;
    exponentOf.reserve(n);
    power = psi; // psi^1; evaluation points are odd powers only
    const uint64_t psiSq = mulMod(psi, psi, q);
    for (size_t e = 1; e < 2 * n; e += 2) {
        exponentOf.emplace(power, static_cast<uint32_t>(e));
        power = mulMod(power, psiSq, q);
    }
    evalExponents_.assign(n, 1);
    slotOfExponent_.assign(2 * n, -1);
    for (size_t j = 0; j < n && n > 1; ++j) {
        const auto it = exponentOf.find(monomial[j]);
        ANAHEIM_ASSERT(it != exponentOf.end(), "slot ", j,
                       " is not an odd psi power");
        evalExponents_[j] = it->second;
        slotOfExponent_[it->second] = static_cast<int32_t>(j);
    }
}

std::shared_ptr<const NttTable>
NttTable::shared(uint64_t q, size_t n)
{
    static std::mutex mutex;
    static std::map<std::pair<uint64_t, size_t>,
                    std::shared_ptr<const NttTable>>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find({q, n});
    if (it == cache.end()) {
        it = cache
                 .emplace(std::make_pair(q, n),
                          std::make_shared<const NttTable>(q, n))
                 .first;
    }
    return it->second;
}

void
NttTable::forward(uint64_t *data) const
{
    if (lazy_)
        forwardLazy(data);
    else
        forwardReference(data);
}

void
NttTable::inverse(uint64_t *data) const
{
    if (lazy_)
        inverseLazy(data);
    else
        inverseReference(data);
}

void
NttTable::forwardReference(uint64_t *data) const
{
    // Cooley–Tukey DIT, merged with the psi^i pre-scaling that makes the
    // transform negacyclic (Longa–Naehrig formulation).
    const uint64_t q = q_;
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            const size_t j1 = 2 * i * t;
            const size_t j2 = j1 + t;
            const uint64_t w = fwdTwiddles_[m + i];
            for (size_t j = j1; j < j2; ++j) {
                const uint64_t u = data[j];
                const uint64_t v = mulMod(data[j + t], w, q);
                data[j] = addMod(u, v, q);
                data[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
NttTable::inverseReference(uint64_t *data) const
{
    // Gentleman–Sande DIF with folded psi^-i post-scaling and 1/N.
    const uint64_t q = q_;
    size_t t = 1;
    for (size_t m = n_; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            const size_t j2 = j1 + t;
            const uint64_t w = invTwiddles_[h + i];
            for (size_t j = j1; j < j2; ++j) {
                const uint64_t u = data[j];
                const uint64_t v = data[j + t];
                data[j] = addMod(u, v, q);
                data[j + t] = mulMod(subMod(u, v, q), w, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (size_t i = 0; i < n_; ++i)
        data[i] = mulMod(data[i], nInv_, q);
}

void
NttTable::forwardLazy(uint64_t *data) const
{
    // Harvey's lazy Cooley–Tukey: inputs of each butterfly stay < 4q,
    // outputs < 4q, and the only reductions are one conditional
    // subtraction of 2q on u and the implicit < 2q bound of the Shoup
    // product. With q < 2^59 every intermediate is < 2^61.
    const uint64_t q = q_;
    const uint64_t twoQ = 2 * q;
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            const size_t j1 = 2 * i * t;
            const size_t j2 = j1 + t;
            const uint64_t w = fwdTwiddles_[m + i];
            const uint64_t wShoup = fwdTwiddlesShoup_[m + i];
            for (size_t j = j1; j < j2; ++j) {
                uint64_t u = data[j]; // < 4q
                if (u >= twoQ)
                    u -= twoQ; // < 2q
                const uint64_t v =
                    mulModShoupLazy(data[j + t], w, wShoup, q); // < 2q
                data[j] = u + v;               // < 4q
                data[j + t] = u + twoQ - v;    // < 4q
            }
        }
    }
    // Single normalization pass from [0, 4q) to the canonical [0, q),
    // making the output bit-identical to the reference kernel's.
    for (size_t i = 0; i < n_; ++i) {
        uint64_t v = data[i];
        if (v >= twoQ)
            v -= twoQ;
        if (v >= q)
            v -= q;
        data[i] = v;
    }
}

void
NttTable::inverseLazy(uint64_t *data) const
{
    // Lazy Gentleman–Sande: all values stay < 2q throughout (sums are
    // folded back below 2q, twiddle products are lazy Shoup products).
    const uint64_t q = q_;
    const uint64_t twoQ = 2 * q;
    size_t t = 1;
    for (size_t m = n_; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            const size_t j2 = j1 + t;
            const uint64_t w = invTwiddles_[h + i];
            const uint64_t wShoup = invTwiddlesShoup_[h + i];
            for (size_t j = j1; j < j2; ++j) {
                const uint64_t u = data[j];     // < 2q
                const uint64_t v = data[j + t]; // < 2q
                uint64_t s = u + v;             // < 4q
                if (s >= twoQ)
                    s -= twoQ; // < 2q
                data[j] = s;
                data[j + t] =
                    mulModShoupLazy(u + twoQ - v, w, wShoup, q); // < 2q
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    // Final pass folds in N^-1 through its prepared operand and fully
    // reduces: mulModShoup is exact for any 64-bit input, so the < 2q
    // residues land on the same canonical values the reference computes.
    for (size_t i = 0; i < n_; ++i)
        data[i] = mulModShoup(data[i], nInv_, nInvShoup_, q);
}

void
NttTable::forward(std::vector<uint64_t> &data) const
{
    ANAHEIM_ASSERT(data.size() == n_, "NTT size mismatch");
    forward(data.data());
}

void
NttTable::inverse(std::vector<uint64_t> &data) const
{
    ANAHEIM_ASSERT(data.size() == n_, "NTT size mismatch");
    inverse(data.data());
}

} // namespace anaheim

#include "ntt.h"

#include <future>
#include <map>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/status.h"
#include "kernels.h"
#include "modarith.h"
#include "primes.h"

namespace anaheim {

namespace {

unsigned
log2Exact(size_t n)
{
    unsigned log = 0;
    while ((size_t{1} << log) < n)
        ++log;
    ANAHEIM_ASSERT((size_t{1} << log) == n, "N must be a power of two");
    return log;
}

/**
 * Bit-reversal permutation table for indices [0, n): rev[i] is i with its
 * low `bits` bits reversed. Built in O(n) by the standard recurrence
 * rev[i] = rev[i/2]/2 | (i&1) << (bits-1), replacing the old
 * O(log N)-per-index loop that ran 2N times per table build.
 */
std::vector<uint32_t>
bitReversalTable(size_t n, unsigned bits)
{
    std::vector<uint32_t> rev(n, 0);
    for (size_t i = 1; i < n; ++i) {
        rev[i] = static_cast<uint32_t>((rev[i >> 1] >> 1) |
                                       ((i & 1) << (bits - 1)));
    }
    return rev;
}

/**
 * The shared() table cache. Entries hold a shared_future so concurrent
 * first lookups of the same (q, n) build the table exactly once, with
 * the expensive construction running outside the cache mutex; lastUse
 * drives LRU eviction once the cache exceeds kSharedCacheCapacity.
 */
struct SharedTableCache {
    struct Entry {
        std::shared_future<std::shared_ptr<const NttTable>> future;
        uint64_t lastUse = 0;
        bool ready = false; ///< only completed entries are evictable
    };
    std::mutex mutex;
    std::map<std::pair<uint64_t, size_t>, Entry> entries;
    uint64_t tick = 0;
};

SharedTableCache &
sharedTableCache()
{
    static SharedTableCache cache;
    return cache;
}

} // namespace

NttTable::NttTable(uint64_t q, size_t n) : q_(q), n_(n)
{
    // Fail at table build with actionable messages, not later with
    // garbage transforms: the ring degree must be a power of two and
    // the prime must satisfy the NTT-friendliness condition.
    ANAHEIM_CHECK(n > 0 && (n & (n - 1)) == 0, InvalidArgument,
                  "NTT ring degree must be a nonzero power of two, got N=",
                  n);
    logN_ = log2Exact(n);
    ANAHEIM_CHECK(q > 2 && (q & 1) == 1, InvalidArgument,
                  "NTT modulus must be an odd prime > 2, got q=", q);
    ANAHEIM_CHECK((q - 1) % (2 * n) == 0, InvalidArgument,
                  "NTT prime must satisfy q == 1 (mod 2N) for a 2N-th "
                  "root of unity, got q=", q, ", N=", n,
                  " ((q-1) % 2N = ", (q - 1) % (2 * n), ")");
    barrett_ = Barrett(q);
    lazyCapable_ = q < kLazyModulusBound;
    const uint64_t psi = findPrimitiveRoot(q, n);
    const uint64_t psiInv = invMod(psi, q);

    fwdTwiddles_.resize(n);
    invTwiddles_.resize(n);
    uint64_t power = 1;
    uint64_t powerInv = 1;
    std::vector<uint64_t> fwd(n), inv(n);
    for (size_t i = 0; i < n; ++i) {
        fwd[i] = power;
        inv[i] = powerInv;
        power = mulMod(power, psi, q);
        powerInv = mulMod(powerInv, psiInv, q);
    }
    const auto rev = bitReversalTable(n, logN_ == 0 ? 1 : logN_);
    for (size_t i = 0; i < n; ++i) {
        fwdTwiddles_[i] = fwd[rev[i]];
        invTwiddles_[i] = inv[rev[i]];
    }
    fwdTwiddlesShoup_.resize(n);
    invTwiddlesShoup_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        fwdTwiddlesShoup_[i] = shoupPrecompute(fwdTwiddles_[i], q);
        invTwiddlesShoup_[i] = shoupPrecompute(invTwiddles_[i], q);
    }
    nInv_ = invMod(n, q);
    nInvShoup_ = shoupPrecompute(nInv_, q);
    lastW_ = n > 1 ? mulMod(invTwiddles_[1], nInv_, q) : nInv_;
    lastWShoup_ = shoupPrecompute(lastW_, q);

    // Determine which power of psi each output slot evaluates at, by
    // transforming the monomial X and looking the results up in a
    // psi-power table. Exact, and independent of algorithm details.
    std::vector<uint64_t> monomial(n, 0);
    if (n > 1)
        monomial[1] = 1;
    else
        monomial[0] = 1; // degenerate N=1 ring
    forward(monomial.data());
    std::unordered_map<uint64_t, uint32_t> exponentOf;
    exponentOf.reserve(n);
    power = psi; // psi^1; evaluation points are odd powers only
    const uint64_t psiSq = mulMod(psi, psi, q);
    for (size_t e = 1; e < 2 * n; e += 2) {
        exponentOf.emplace(power, static_cast<uint32_t>(e));
        power = mulMod(power, psiSq, q);
    }
    evalExponents_.assign(n, 1);
    slotOfExponent_.assign(2 * n, -1);
    for (size_t j = 0; j < n && n > 1; ++j) {
        const auto it = exponentOf.find(monomial[j]);
        ANAHEIM_ASSERT(it != exponentOf.end(), "slot ", j,
                       " is not an odd psi power");
        evalExponents_[j] = it->second;
        slotOfExponent_[it->second] = static_cast<int32_t>(j);
    }
}

std::shared_ptr<const NttTable>
NttTable::shared(uint64_t q, size_t n)
{
    auto &cache = sharedTableCache();
    const auto key = std::make_pair(q, n);

    std::promise<std::shared_ptr<const NttTable>> promise;
    std::shared_future<std::shared_ptr<const NttTable>> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        auto it = cache.entries.find(key);
        if (it == cache.entries.end()) {
            builder = true;
            future = promise.get_future().share();
            SharedTableCache::Entry entry;
            entry.future = future;
            entry.lastUse = ++cache.tick;
            cache.entries.emplace(key, std::move(entry));
        } else {
            it->second.lastUse = ++cache.tick;
            future = it->second.future;
        }
    }

    if (builder) {
        // Construct outside the lock: table builds are expensive
        // (primitive-root search, twiddle powers, eval-exponent probe)
        // and other keys' lookups must not serialize behind them.
        try {
            promise.set_value(std::make_shared<const NttTable>(q, n));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(cache.mutex);
            cache.entries.erase(key);
            // Waiters already holding the future observe the exception;
            // the erase lets later callers retry. Fall through to
            // future.get() to rethrow for this caller too.
        }
        std::lock_guard<std::mutex> lock(cache.mutex);
        const auto it = cache.entries.find(key);
        if (it != cache.entries.end())
            it->second.ready = true;
        while (cache.entries.size() > kSharedCacheCapacity) {
            auto victim = cache.entries.end();
            for (auto i = cache.entries.begin(); i != cache.entries.end();
                 ++i) {
                if (i->second.ready &&
                    (victim == cache.entries.end() ||
                     i->second.lastUse < victim->second.lastUse)) {
                    victim = i;
                }
            }
            if (victim == cache.entries.end())
                break; // everything in flight; nothing evictable
            cache.entries.erase(victim);
        }
    }
    return future.get();
}

void
NttTable::clearShared()
{
    auto &cache = sharedTableCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.entries.clear();
}

size_t
NttTable::sharedCacheSize()
{
    auto &cache = sharedTableCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return cache.entries.size();
}

void
NttTable::forward(uint64_t *data) const
{
    if (usesLazyKernels())
        forwardLazy(data);
    else
        forwardReference(data);
}

void
NttTable::inverse(uint64_t *data) const
{
    if (usesLazyKernels())
        inverseLazy(data);
    else
        inverseReference(data);
}

kernels::NttView
NttTable::forwardView() const
{
    kernels::NttView v;
    v.q = q_;
    v.n = n_;
    v.tw = fwdTwiddles_.data();
    v.twShoup = fwdTwiddlesShoup_.data();
    return v;
}

kernels::NttView
NttTable::inverseView() const
{
    kernels::NttView v;
    v.q = q_;
    v.n = n_;
    v.tw = invTwiddles_.data();
    v.twShoup = invTwiddlesShoup_.data();
    v.nInv = nInv_;
    v.nInvShoup = nInvShoup_;
    v.lastW = lastW_;
    v.lastWShoup = lastWShoup_;
    return v;
}

void
NttTable::forwardReference(uint64_t *data) const
{
    // Cooley–Tukey DIT, merged with the psi^i pre-scaling that makes the
    // transform negacyclic (Longa–Naehrig formulation).
    const uint64_t q = q_;
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            const size_t j1 = 2 * i * t;
            const size_t j2 = j1 + t;
            const uint64_t w = fwdTwiddles_[m + i];
            for (size_t j = j1; j < j2; ++j) {
                const uint64_t u = data[j];
                const uint64_t v = mulMod(data[j + t], w, q);
                data[j] = addMod(u, v, q);
                data[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
NttTable::inverseReference(uint64_t *data) const
{
    // Gentleman–Sande DIF with folded psi^-i post-scaling and 1/N.
    const uint64_t q = q_;
    size_t t = 1;
    for (size_t m = n_; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            const size_t j2 = j1 + t;
            const uint64_t w = invTwiddles_[h + i];
            for (size_t j = j1; j < j2; ++j) {
                const uint64_t u = data[j];
                const uint64_t v = data[j + t];
                data[j] = addMod(u, v, q);
                data[j + t] = mulMod(subMod(u, v, q), w, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (size_t i = 0; i < n_; ++i)
        data[i] = mulMod(data[i], nInv_, q);
}

void
NttTable::forwardLazy(uint64_t *data) const
{
    // Harvey's lazy Cooley–Tukey, dispatched through the active kernel
    // backend: scalar (< 4q intermediates) or the AVX2/AVX-512
    // cache-blocked lanes (< 8q: the approximate 3-multiply Shoup
    // quotient widens twiddle products to [0, 4q)); one final
    // normalization lands on canonical residues either way (see
    // kernels/kernel_impl.h and DESIGN.md §13).
    kernels::nttForwardLazy(forwardView(), data);
}

void
NttTable::inverseLazy(uint64_t *data) const
{
    // Lazy Gentleman–Sande (< 2q scalar, < 4q vector) with N^-1 folded
    // into the final stage, dispatched through the active backend.
    kernels::nttInverseLazy(inverseView(), data);
}

} // namespace anaheim

#include "ntt.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/status.h"
#include "modarith.h"
#include "primes.h"

namespace anaheim {

namespace {

unsigned
log2Exact(size_t n)
{
    unsigned log = 0;
    while ((size_t{1} << log) < n)
        ++log;
    ANAHEIM_ASSERT((size_t{1} << log) == n, "N must be a power of two");
    return log;
}

size_t
bitReverse(size_t value, unsigned bits)
{
    size_t result = 0;
    for (unsigned i = 0; i < bits; ++i) {
        result = (result << 1) | (value & 1);
        value >>= 1;
    }
    return result;
}

} // namespace

NttTable::NttTable(uint64_t q, size_t n) : q_(q), n_(n)
{
    // Fail at table build with actionable messages, not later with
    // garbage transforms: the ring degree must be a power of two and
    // the prime must satisfy the NTT-friendliness condition.
    ANAHEIM_CHECK(n > 0 && (n & (n - 1)) == 0, InvalidArgument,
                  "NTT ring degree must be a nonzero power of two, got N=",
                  n);
    logN_ = log2Exact(n);
    ANAHEIM_CHECK(q > 2 && (q & 1) == 1, InvalidArgument,
                  "NTT modulus must be an odd prime > 2, got q=", q);
    ANAHEIM_CHECK((q - 1) % (2 * n) == 0, InvalidArgument,
                  "NTT prime must satisfy q == 1 (mod 2N) for a 2N-th "
                  "root of unity, got q=", q, ", N=", n,
                  " ((q-1) % 2N = ", (q - 1) % (2 * n), ")");
    const uint64_t psi = findPrimitiveRoot(q, n);
    const uint64_t psiInv = invMod(psi, q);

    fwdTwiddles_.resize(n);
    invTwiddles_.resize(n);
    uint64_t power = 1;
    uint64_t powerInv = 1;
    std::vector<uint64_t> fwd(n), inv(n);
    for (size_t i = 0; i < n; ++i) {
        fwd[i] = power;
        inv[i] = powerInv;
        power = mulMod(power, psi, q);
        powerInv = mulMod(powerInv, psiInv, q);
    }
    for (size_t i = 0; i < n; ++i) {
        fwdTwiddles_[i] = fwd[bitReverse(i, logN_)];
        invTwiddles_[i] = inv[bitReverse(i, logN_)];
    }
    nInv_ = invMod(n, q);

    // Determine which power of psi each output slot evaluates at, by
    // transforming the monomial X and looking the results up in a
    // psi-power table. Exact, and independent of algorithm details.
    std::vector<uint64_t> monomial(n, 0);
    if (n > 1)
        monomial[1] = 1;
    else
        monomial[0] = 1; // degenerate N=1 ring
    forward(monomial.data());
    std::unordered_map<uint64_t, uint32_t> exponentOf;
    exponentOf.reserve(n);
    power = psi; // psi^1; evaluation points are odd powers only
    const uint64_t psiSq = mulMod(psi, psi, q);
    for (size_t e = 1; e < 2 * n; e += 2) {
        exponentOf.emplace(power, static_cast<uint32_t>(e));
        power = mulMod(power, psiSq, q);
    }
    evalExponents_.assign(n, 1);
    slotOfExponent_.assign(2 * n, -1);
    for (size_t j = 0; j < n && n > 1; ++j) {
        const auto it = exponentOf.find(monomial[j]);
        ANAHEIM_ASSERT(it != exponentOf.end(), "slot ", j,
                       " is not an odd psi power");
        evalExponents_[j] = it->second;
        slotOfExponent_[it->second] = static_cast<int32_t>(j);
    }
}

void
NttTable::forward(uint64_t *data) const
{
    // Cooley–Tukey DIT, merged with the psi^i pre-scaling that makes the
    // transform negacyclic (Longa–Naehrig formulation).
    const uint64_t q = q_;
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            const size_t j1 = 2 * i * t;
            const size_t j2 = j1 + t;
            const uint64_t w = fwdTwiddles_[m + i];
            for (size_t j = j1; j < j2; ++j) {
                const uint64_t u = data[j];
                const uint64_t v = mulMod(data[j + t], w, q);
                data[j] = addMod(u, v, q);
                data[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
NttTable::inverse(uint64_t *data) const
{
    // Gentleman–Sande DIF with folded psi^-i post-scaling and 1/N.
    const uint64_t q = q_;
    size_t t = 1;
    for (size_t m = n_; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            const size_t j2 = j1 + t;
            const uint64_t w = invTwiddles_[h + i];
            for (size_t j = j1; j < j2; ++j) {
                const uint64_t u = data[j];
                const uint64_t v = data[j + t];
                data[j] = addMod(u, v, q);
                data[j + t] = mulMod(subMod(u, v, q), w, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (size_t i = 0; i < n_; ++i)
        data[i] = mulMod(data[i], nInv_, q);
}

void
NttTable::forward(std::vector<uint64_t> &data) const
{
    ANAHEIM_ASSERT(data.size() == n_, "NTT size mismatch");
    forward(data.data());
}

void
NttTable::inverse(std::vector<uint64_t> &data) const
{
    ANAHEIM_ASSERT(data.size() == n_, "NTT size mismatch");
    inverse(data.data());
}

} // namespace anaheim

/**
 * @file
 * Montgomery-form modular multiplication for small (< 2^28) NTT-friendly
 * primes, with R = 2^32.
 *
 * This models the datapath of the Anaheim PIM MMAC unit (§VI-A): the unit
 * keeps operands in 32-bit DRAM words, truncates them to 28 bits, and uses
 * a Montgomery reduction circuit specialized for primes satisfying
 * Q == 1 (mod 2N), the NTT-friendliness condition.
 */

#ifndef ANAHEIM_MATH_MONTGOMERY_H
#define ANAHEIM_MATH_MONTGOMERY_H

#include <cstdint>

namespace anaheim {

/**
 * Montgomery multiplier for a fixed prime q < 2^28 with R = 2^32.
 *
 * All inputs/outputs of mulMont() are in Montgomery form (a * R mod q);
 * toMont()/fromMont() convert. The reduce() primitive matches what a
 * single-cycle hardware reduction stage would compute.
 */
class Montgomery
{
  public:
    Montgomery() = default;
    explicit Montgomery(uint64_t q);

    uint64_t modulus() const { return q_; }

    /** Map a < q into Montgomery form. */
    uint32_t toMont(uint64_t a) const;

    /** Map a Montgomery-form value back to the plain representative. */
    uint64_t fromMont(uint32_t a) const;

    /** Montgomery product: returns a*b*R^-1 mod q. */
    uint32_t
    mulMont(uint32_t a, uint32_t b) const
    {
        return reduce(static_cast<uint64_t>(a) * b);
    }

    /** Montgomery reduction of a 64-bit value t < q * 2^32. */
    uint32_t
    reduce(uint64_t t) const
    {
        const uint32_t m = static_cast<uint32_t>(t) * qInvNeg_;
        const uint64_t u = (t + static_cast<uint64_t>(m) * q_) >> 32;
        return u >= q_ ? static_cast<uint32_t>(u - q_)
                       : static_cast<uint32_t>(u);
    }

    /**
     * Plain-domain product against an operand already in Montgomery
     * form (from toMont()): a * bMont * R^-1 = a * b mod q in a single
     * reduction. This is the keep-in-Montgomery-form fast path for hot
     * loops that multiply many values by the same operand — convert
     * the fixed operand once, then pay one reduce() per product
     * instead of the three a full toMont/mul/fromMont round trip costs.
     */
    uint64_t
    mulModPrepared(uint64_t a, uint32_t bMont) const
    {
        return reduce(a * static_cast<uint64_t>(bMont));
    }

    /** Plain-domain modular product computed through Montgomery form. */
    uint64_t mulMod(uint64_t a, uint64_t b) const;

  private:
    uint32_t q_ = 0;
    /** -q^-1 mod 2^32. */
    uint32_t qInvNeg_ = 0;
    /** R^2 mod q, used by toMont(). */
    uint32_t r2_ = 0;
};

} // namespace anaheim

#endif // ANAHEIM_MATH_MONTGOMERY_H

#include "modarith.h"

#include "common/logging.h"

namespace anaheim {

uint64_t
powMod(uint64_t a, uint64_t e, uint64_t q)
{
    uint64_t base = a % q;
    uint64_t result = 1;
    while (e > 0) {
        if (e & 1)
            result = mulMod(result, base, q);
        base = mulMod(base, base, q);
        e >>= 1;
    }
    return result;
}

uint64_t
invMod(uint64_t a, uint64_t q)
{
    ANAHEIM_ASSERT(a % q != 0, "inverse of zero mod ", q);
    return powMod(a, q - 2, q);
}

Barrett::Barrett(uint64_t q) : q_(q)
{
    ANAHEIM_ASSERT(q > 1 && q < (1ULL << 62), "Barrett modulus out of range");
    // Compute floor(2^128 / q) by long division of 2^128 by q.
    unsigned __int128 rem = 0;
    uint64_t hi = 0;
    uint64_t lo = 0;
    for (int bit = 127; bit >= 0; --bit) {
        rem <<= 1;
        rem |= 1; // dividend 2^128 - 1 approximates 2^128 closely enough
        if (rem >= q) {
            rem -= q;
            if (bit >= 64)
                hi |= 1ULL << (bit - 64);
            else
                lo |= 1ULL << bit;
        }
    }
    ratioHi_ = hi;
    ratioLo_ = lo;

    // Word-sized companion for the vector kernels: k = bits(q) and
    // floor(2^(2k) / q). 2k <= 124 for q < 2^62, so the quotient fits
    // one 128-bit division and, being < 2^(k+1), one 64-bit word.
    unsigned k = 0;
    while ((q >> k) != 0)
        ++k;
    shiftBits_ = k;
    factor64_ = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(1) << (2 * k)) / q);
}

uint64_t
Barrett::reduce(unsigned __int128 x) const
{
    // q < 2^62 so x/q fits in 128 bits; estimate the quotient with the
    // top half of x times the precomputed ratio, then correct.
    const uint64_t xHi = static_cast<uint64_t>(x >> 64);
    const uint64_t xLo = static_cast<uint64_t>(x);
    // quotient ~= floor((xHi * 2^64 + xLo) * ratio / 2^128)
    const unsigned __int128 t1 =
        static_cast<unsigned __int128>(xHi) * ratioHi_;
    const unsigned __int128 t2 =
        static_cast<unsigned __int128>(xHi) * ratioLo_;
    const unsigned __int128 t3 =
        static_cast<unsigned __int128>(xLo) * ratioHi_;
    unsigned __int128 quot = t1 + (t2 >> 64) + (t3 >> 64);
    unsigned __int128 r = x - quot * q_;
    while (r >= q_)
        r -= q_;
    return static_cast<uint64_t>(r);
}

} // namespace anaheim

#include "math/automorph.h"

#include <deque>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "math/kernels.h"
#include "math/ntt.h"

namespace anaheim {

namespace {

using Key = std::tuple<size_t, uint64_t, bool>; // (n, k, evalDomain)
using Table = std::shared_ptr<const std::vector<uint64_t>>;

/** Bounded process-wide table cache. Entries are O(n) words and build
 *  in O(n), so construction happens under the lock; eviction is FIFO
 *  (outstanding shared_ptrs keep evicted tables alive). */
struct TableCache {
    std::mutex mu;
    std::map<Key, Table> map;
    std::deque<Key> order;
};

TableCache &
cache()
{
    static TableCache c;
    return c;
}

constexpr size_t kCacheCapacity = 64;

template <class Build>
Table
lookupOrBuild(const Key &key, Build &&build)
{
    TableCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mu);
    auto it = c.map.find(key);
    if (it != c.map.end())
        return it->second;
    Table tbl = build();
    while (c.map.size() >= kCacheCapacity && !c.order.empty()) {
        c.map.erase(c.order.front());
        c.order.pop_front();
    }
    c.map.emplace(key, tbl);
    c.order.push_back(key);
    return tbl;
}

} // namespace

std::shared_ptr<const std::vector<uint64_t>>
coeffAutomorphismTable(size_t n, uint64_t k)
{
    ANAHEIM_ASSERT((k & 1) == 1 && k < 2 * n,
                   "Galois element must be odd and < 2n");
    return lookupOrBuild(Key{n, k, false}, [&] {
        auto tbl = std::make_shared<std::vector<uint64_t>>(n);
        // Invert the scatter c -> (c * k) mod 2n: k odd makes it a
        // bijection on [0, 2n), so every output index is hit once.
        for (size_t c = 0; c < n; ++c) {
            const uint64_t target = (c * k) % (2 * n);
            if (target < n)
                (*tbl)[target] = c;
            else
                (*tbl)[target - n] = c | kernels::kPermuteNegBit;
        }
        return tbl;
    });
}

std::shared_ptr<const std::vector<uint64_t>>
evalAutomorphismTable(const NttTable &table, uint64_t k)
{
    const size_t n = table.degree();
    ANAHEIM_ASSERT((k & 1) == 1 && k < 2 * n,
                   "Galois element must be odd and < 2n");
    return lookupOrBuild(Key{n, k, true}, [&] {
        const auto &exps = table.evalExponents();
        const auto &slotOf = table.slotOfExponent();
        auto tbl = std::make_shared<std::vector<uint64_t>>(n);
        // Slot j of the result evaluates at psi^{e_j * k}; record which
        // input slot holds that evaluation point.
        for (size_t j = 0; j < n; ++j) {
            const uint64_t e = (exps[j] * k) % (2 * n);
            const int32_t srcSlot = slotOf[e];
            ANAHEIM_ASSERT(srcSlot >= 0, "invalid automorphism slot");
            (*tbl)[j] = static_cast<uint64_t>(srcSlot);
        }
        return tbl;
    });
}

void
clearAutomorphismTables()
{
    TableCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mu);
    c.map.clear();
    c.order.clear();
}

} // namespace anaheim

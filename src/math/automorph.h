/**
 * @file
 * Precomputed gather tables for Galois automorphisms, in the encoding
 * the kernel backends' permuteNeg entry point consumes (DESIGN.md §13).
 *
 * An automorphism X -> X^k over the negacyclic ring is a pure index
 * permutation in both domains: a scatter with sign wraps on
 * coefficients, a slot permutation on evaluations. Inverting the
 * scatter once turns both into gathers — dst[j] = ±src[idx[j]] — which
 * the SIMD backends run as a 64-bit gather plus a sign-select blend.
 * Tables depend only on (n, k) (the eval-domain exponent structure is
 * identical across primes), so they are built once and shared through a
 * bounded process-wide cache, mirroring NttTable::shared().
 */

#ifndef ANAHEIM_MATH_AUTOMORPH_H
#define ANAHEIM_MATH_AUTOMORPH_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace anaheim {

class NttTable;

/**
 * Coefficient-domain gather table for X -> X^k: entry j is the source
 * coefficient index feeding output j, with kernels::kPermuteNegBit set
 * where the negacyclic wrap negates it. k must be odd and < 2n.
 */
std::shared_ptr<const std::vector<uint64_t>>
coeffAutomorphismTable(size_t n, uint64_t k);

/**
 * Eval-domain gather table for X -> X^k: entry j is the input slot
 * holding the evaluation point psi^{e_j * k}. No negation bits — slot
 * permutations are sign-free. Cached by (table.degree(), k); the table
 * argument only supplies the shared exponent structure.
 */
std::shared_ptr<const std::vector<uint64_t>>
evalAutomorphismTable(const NttTable &table, uint64_t k);

/** Drop every cached automorphism table (for sweeps and leak checks). */
void clearAutomorphismTables();

} // namespace anaheim

#endif // ANAHEIM_MATH_AUTOMORPH_H

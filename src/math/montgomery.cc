#include "montgomery.h"

#include "common/logging.h"
#include "modarith.h"

namespace anaheim {

Montgomery::Montgomery(uint64_t q)
{
    ANAHEIM_ASSERT(q > 2 && q < (1ULL << 28) && (q & 1),
                   "Montgomery modulus must be an odd prime below 2^28");
    q_ = static_cast<uint32_t>(q);
    // Newton iteration for the inverse of q mod 2^32.
    uint32_t inv = q_; // correct to 3 bits
    for (int i = 0; i < 4; ++i)
        inv *= 2 - q_ * inv;
    qInvNeg_ = ~inv + 1; // -q^-1 mod 2^32
    // R^2 mod q with R = 2^32.
    const uint64_t r = (1ULL << 32) % q;
    r2_ = static_cast<uint32_t>(anaheim::mulMod(r, r, q));
}

uint32_t
Montgomery::toMont(uint64_t a) const
{
    ANAHEIM_ASSERT(a < q_, "value not reduced");
    return mulMont(static_cast<uint32_t>(a), r2_);
}

uint64_t
Montgomery::fromMont(uint32_t a) const
{
    return reduce(a);
}

uint64_t
Montgomery::mulMod(uint64_t a, uint64_t b) const
{
    // toMont(b) = bR; a * bR * R^-1 = a*b mod q — two reductions, not
    // the three of the old toMont/toMont/mulMont/fromMont round trip.
    ANAHEIM_ASSERT(a < q_, "value not reduced");
    return mulModPrepared(a, toMont(b));
}

} // namespace anaheim

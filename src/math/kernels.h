/**
 * @file
 * Kernel-backend interface for the polynomial hot loops (DESIGN.md §13).
 *
 * The Harvey/Shoup lazy-reduction butterflies and the prepared-operand
 * element-wise paths exist in several interchangeable implementations —
 * scalar, AVX2, and AVX-512 — following the one-interface/many-backends
 * pattern of exafmm's Kernel layer. Each backend is a table of function
 * pointers (KernelOps) compiled in its own translation unit with the
 * matching -m flags; dispatch picks the widest backend the CPU supports
 * at runtime (CPUID), overridable with the ANAHEIM_NTT_BACKEND
 * environment variable or programmatically for tests.
 *
 * All backends are exact: outputs are canonical residues in [0, q), so
 * every backend is bitwise identical to the division-based reference
 * kernels (which stay compiled in NttTable as the oracle). The
 * backend-equivalence matrix test pins this across every context-grade
 * prime and degree.
 */

#ifndef ANAHEIM_MATH_KERNELS_H
#define ANAHEIM_MATH_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace anaheim {

class Barrett;

namespace kernels {

/**
 * Everything a transform kernel needs from an NttTable, as raw pointers:
 * the twiddle/Shoup-companion tables for one direction plus the folded
 * inverse constants. POD view; lifetime owned by the table.
 */
struct NttView {
    uint64_t q = 0;
    size_t n = 0;
    const uint64_t *tw = nullptr;      ///< psi^bitrev(i) (fwd or inv).
    const uint64_t *twShoup = nullptr; ///< floor(tw * 2^64 / q).
    uint64_t nInv = 0;                 ///< N^-1 mod q (inverse only).
    uint64_t nInvShoup = 0;
    uint64_t lastW = 0;      ///< invTw[1] * nInv mod q: the final-stage
                             ///< twiddle with 1/N folded in (inverse).
    uint64_t lastWShoup = 0;
};

/** High bit of a permutation-table entry: negate the gathered value
 *  (the negacyclic wrap of a coefficient-domain automorphism). The low
 *  bits are the source index. */
inline constexpr uint64_t kPermuteNegBit = uint64_t{1} << 63;
/** Mask extracting the source index from a permutation-table entry. */
inline constexpr uint64_t kPermuteIndexMask = kPermuteNegBit - 1;

/** Which backend a KernelOps table implements. */
enum class Backend {
    Reference, ///< division-based oracle (NttTable's own kernels)
    Scalar,    ///< Harvey/Shoup lazy kernels, one lane
    Avx2,      ///< 4-lane AVX2
    Avx512,    ///< 8-lane AVX-512F/DQ
};

/**
 * One kernel backend: lazy NTT transforms plus the element-wise paths.
 *
 * Transform preconditions match the scalar lazy kernels: inputs
 * canonical in [0, q), q < NttTable::kLazyModulusBound, outputs
 * canonical. Element-wise entry points accept any length (vector
 * backends process the tail scalar) and arbitrary canonical inputs; the
 * Shoup paths require w < q and the Barrett paths q < 2^62.
 */
struct KernelOps {
    const char *name;
    Backend backend;
    size_t vectorWidth; ///< lanes per vector op (1 for scalar)
    size_t minDegree;   ///< smallest n the transform kernels accept;
                        ///< dispatch falls back to scalar below it

    void (*nttForwardLazy)(const NttView &v, uint64_t *data);
    void (*nttInverseLazy)(const NttView &v, uint64_t *data);

    /** dst[i] = src[i] * w mod q (prepared operand; dst may alias src). */
    void (*mulShoup)(uint64_t *dst, const uint64_t *src, size_t n,
                     uint64_t w, uint64_t wShoup, uint64_t q);
    /** acc[i] = (acc[i] + src[i] * w) mod q — the BConv inner product. */
    void (*mulShoupAcc)(uint64_t *acc, const uint64_t *src, size_t n,
                        uint64_t w, uint64_t wShoup, uint64_t q);
    /** dst[i] = (a[i] - b[i]) * w mod q — the ModDown/rescale fold. */
    void (*subMulShoup)(uint64_t *dst, const uint64_t *a,
                        const uint64_t *b, size_t n, uint64_t w,
                        uint64_t wShoup, uint64_t q);
    /** dst[i] = (a[i] + b[i]) mod q. */
    void (*addMod)(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                   size_t n, uint64_t q);
    /** dst[i] = (a[i] - b[i]) mod q. */
    void (*subMod)(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                   size_t n, uint64_t q);
    /** dst[i] = -src[i] mod q. */
    void (*negMod)(uint64_t *dst, const uint64_t *src, size_t n,
                   uint64_t q);
    /** dst[i] = a[i] * b[i] mod q via the Barrett constant. */
    void (*mulBarrett)(uint64_t *dst, const uint64_t *a,
                       const uint64_t *b, size_t n, const Barrett &br);
    /** acc[i] = (acc[i] + a[i] * b[i]) mod q. */
    void (*macBarrett)(uint64_t *acc, const uint64_t *a,
                       const uint64_t *b, size_t n, const Barrett &br);
    /** Index permutation with optional negation — the automorphism /
     *  monomial-shift inner loop. dst[i] = src[idx[i] & kPermuteIndexMask],
     *  negated mod q when idx[i] has kPermuteNegBit set. src holds
     *  canonical residues; dst must not alias src. Vector backends run
     *  this as a 64-bit gather plus a sign-select blend. */
    void (*permuteNeg)(uint64_t *dst, const uint64_t *src,
                       const uint64_t *idx, size_t n, uint64_t q);
};

/**
 * The active backend for this process. Never Backend::Reference — when
 * the reference kernels are forced (see nttReferenceForced()), the
 * transforms route through NttTable's oracle and the element-wise paths
 * use the scalar KernelOps.
 */
const KernelOps &active();

/** The always-compiled scalar backend. */
const KernelOps &scalarOps();

/** Every backend compiled into this binary, scalar first. Compiled is
 *  not the same as runnable: a backend may be absent from this list at
 *  build time (no compiler support / ANAHEIM_ENABLE_SIMD=OFF) or
 *  compiled but rejected at runtime by CPUID. */
std::vector<const KernelOps *> compiledBackends();

/** True when this CPU can execute the given backend. Reference and
 *  Scalar are always runnable. */
bool cpuSupports(Backend b);

/**
 * Programmatic backend override, primarily for tests and benches.
 * Returns false (and leaves dispatch untouched) if the backend is not
 * compiled in or the CPU cannot run it. Selecting Backend::Reference
 * forces every NttTable transform through the oracle kernels, exactly
 * like ANAHEIM_NTT_REFERENCE=1.
 */
bool setBackend(Backend b);

/** Drop any programmatic override and re-resolve from the environment
 *  (ANAHEIM_NTT_BACKEND / ANAHEIM_NTT_REFERENCE) and CPUID. */
void resetBackend();

/** The backend dispatch currently resolves to (Reference when the
 *  oracle is forced). */
Backend activeBackend();

/** True when NTT dispatch must use the reference kernels: either
 *  ANAHEIM_NTT_REFERENCE is set (to anything but "0"), or
 *  ANAHEIM_NTT_BACKEND/setBackend selected "reference". */
bool nttReferenceForced();

/** Canonical lowercase name ("reference", "scalar", "avx2", "avx512"). */
const char *backendName(Backend b);

/** Parse a backend name as accepted by ANAHEIM_NTT_BACKEND. */
std::optional<Backend> backendFromName(std::string_view name);

/** Lazy forward/inverse NTT through the active backend, falling back to
 *  the scalar kernels when n < the active backend's minDegree. */
void nttForwardLazy(const NttView &v, uint64_t *data);
void nttInverseLazy(const NttView &v, uint64_t *data);

} // namespace kernels
} // namespace anaheim

#endif // ANAHEIM_MATH_KERNELS_H

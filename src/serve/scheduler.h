/**
 * @file
 * Multi-tenant serving scheduler (DESIGN.md §15/§16): admits N
 * concurrent client streams of op traces against ONE simulated GPU+PIM
 * device pair and advances them in global simulated-time order. The
 * GPU and PIM are separately-clocked resources, so GPU compute of one
 * trace overlaps PIM execution of independent traces; compatible
 * element-wise PIM steps from different streams batch into one fused
 * dispatch whose followers skip the GPU<->PIM transition charge.
 *
 * On top of the PR-8 scheduler sits the SLO/resilience layer (§16):
 * per-tenant token-bucket rate limiting and deadline-aware shedding
 * (three disjoint rejection causes), priority preemption at step
 * boundaries with checkpoint-coordinated save/restore, and mid-serve
 * degradation awareness — a quarantine observed in any run re-prices
 * all queued work on the degraded geometry and re-checks admission.
 *
 * Everything is event-driven simulated time on top of RunContext —
 * no wall-clock threads — so a serve run is a deterministic pure
 * function of (config, traces, seeds), bit-identical across host
 * thread counts and reruns.
 */

#ifndef ANAHEIM_SERVE_SCHEDULER_H
#define ANAHEIM_SERVE_SCHEDULER_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "anaheim/framework.h"

namespace anaheim::serve {

/** Why a request never executed. The three causes partition
 *  `ServeStats::rejected` exactly. */
enum class RejectCause {
    None,        ///< not rejected
    QueueFull,   ///< arrival found maxQueuedPerStream already waiting
    RateLimited, ///< the tenant's token bucket was empty at arrival
    DeadlineShed ///< earliest-possible completion already missed the
                 ///< deadline at dispatch (or at a degradation
                 ///< re-pricing pass)
};

/** One client request: a full trace execution with its lifecycle
 *  timestamps in global simulated time. */
struct ServeRequest {
    size_t stream = 0;
    size_t index = 0;
    /** When the request entered the system (open-loop: generated
     *  arrival; closed-loop: release time). */
    double arrivalNs = 0.0;
    /** First simulated instant the request held a device. */
    double startNs = 0.0;
    /** Completion time; latency is endNs - arrivalNs. */
    double endNs = 0.0;
    /** Never executed (queue-full, rate-limited, or deadline-shed —
     *  see `cause`). */
    bool rejected = false;
    RejectCause cause = RejectCause::None;
    /** Absolute completion deadline (+inf when deadline-free). */
    double deadlineNs = std::numeric_limits<double>::infinity();
    /** Completed with endNs <= deadlineNs (the goodput criterion). */
    bool deadlineMet = false;
    RunResult result;
};

/** Per-stream (per-tenant) outcome. */
struct ServeStreamResult {
    std::string name;
    /** Scheduling class; lower wins ties at equal dispatch time. */
    size_t priority = 0;
    std::vector<ServeRequest> requests;
    /** Resilience accounting summed over the stream's completed
     *  requests — the per-tenant fault bill, also published as
     *  run.<id>.serve.* gauges when tracing. */
    uint64_t pimRetries = 0;
    uint64_t rollbacks = 0;
    uint64_t gpuFallbacks = 0;
    uint64_t migrations = 0;
    uint64_t unrecovered = 0;
};

/** Aggregate serving statistics over one scheduler run. */
struct ServeStats {
    double makespanNs = 0.0;
    double gpuBusyNs = 0.0;
    double pimBusyNs = 0.0;
    /** Requests that reached a run slot (every one completes). */
    uint64_t admitted = 0;
    /** Requests that never executed; always equals
     *  rejectedQueueFull + rejectedRateLimited + shedDeadline. */
    uint64_t rejected = 0;
    uint64_t completed = 0;
    /** Rejection causes (partition `rejected` exactly). */
    uint64_t rejectedQueueFull = 0;
    uint64_t rejectedRateLimited = 0;
    uint64_t shedDeadline = 0;
    /** Completed requests that met their deadline (every completion
     *  when deadlines are off). */
    uint64_t deadlineMet = 0;
    /** Preemption events (a higher-priority step interrupted a
     *  started lower-priority run) and the matching resumes. */
    uint64_t preemptions = 0;
    uint64_t preemptionResumes = 0;
    /** Device time spent on preemption save/restore passes. */
    double preemptionOverheadNs = 0.0;
    /** Degradation re-pricing passes (a run's quarantine reduced the
     *  device view; queued work re-admitted against it). */
    uint64_t repriceEvents = 0;
    /** SLO burn-rate alerting (telemetry.tickNs > 0): fire/resolve
     *  edges and ticks spent in the firing state (DESIGN.md §17). */
    uint64_t alertsFired = 0;
    uint64_t alertsResolved = 0;
    uint64_t alertTicksFiring = 0;
    /** Fused PIM dispatches covering >= 2 streams. */
    uint64_t batches = 0;
    /** Ops that rode inside those fused dispatches. */
    uint64_t batchedOps = 0;
    /** End-to-end latency (endNs - arrivalNs) per completed request,
     *  in completion order. */
    std::vector<double> latenciesNs = {};

    /** Nearest-rank percentile of latenciesNs; p is clamped into
     *  [0, 100] (p=0 -> minimum, p=100 -> maximum), and an empty
     *  sample returns 0. */
    double percentileNs(double p) const;
    double throughputRps() const;
    /** Deadline-met completions per second — the SLO goodput. */
    double goodputRps() const;
    double gpuUtil() const;
    double pimUtil() const;
};

struct ServeResult {
    ServeStats stats;
    std::vector<ServeStreamResult> streams;
};

/**
 * The scheduler itself. `run()` consumes one trace per stream (cycled
 * when fewer traces than streams are given) and returns when every
 * request has resolved (completed or rejected).
 *
 * Dispatch rule: among streams with an active run, pick the candidate
 * minimizing (dispatch time, priority, stream index) — or (priority,
 * dispatch time, stream index) with preemption on — where dispatch
 * time = max(run clock, device-free time of the resource its next step
 * occupies); with overlap disabled both resources share one free time,
 * which serializes the whole system and serves as the baseline.
 * Admission is re-checked against every chosen dispatch time, so a
 * request arriving before the winner would start is admitted first.
 */
class ServeScheduler
{
  public:
    ServeScheduler(const AnaheimFramework &fw, const ServeConfig &serve);

    ServeResult run(const std::vector<OpSequence> &traces) const;

  private:
    const AnaheimFramework &fw_;
    ServeConfig serve_;
};

/** serve.* counters/gauges + optional per-stream Perfetto tracks.
 *  Called by ServeScheduler::run() before returning. */
void publishServeMetrics(const ServeStats &stats);

} // namespace anaheim::serve

#endif // ANAHEIM_SERVE_SCHEDULER_H

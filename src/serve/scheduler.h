/**
 * @file
 * Multi-tenant serving scheduler (DESIGN.md §15): admits N concurrent
 * client streams of op traces against ONE simulated GPU+PIM device
 * pair and advances them in global simulated-time order. The GPU and
 * PIM are separately-clocked resources, so GPU compute of one trace
 * overlaps PIM execution of independent traces; compatible element-wise
 * PIM steps from different streams batch into one fused dispatch whose
 * followers skip the GPU<->PIM transition charge.
 *
 * Everything is event-driven simulated time on top of RunContext —
 * no wall-clock threads — so a serve run is a deterministic pure
 * function of (config, traces, seeds), bit-identical across host
 * thread counts and reruns.
 */

#ifndef ANAHEIM_SERVE_SCHEDULER_H
#define ANAHEIM_SERVE_SCHEDULER_H

#include <cstdint>
#include <string>
#include <vector>

#include "anaheim/framework.h"

namespace anaheim::serve {

/** One client request: a full trace execution with its lifecycle
 *  timestamps in global simulated time. */
struct ServeRequest {
    size_t stream = 0;
    size_t index = 0;
    /** When the request entered the system (open-loop: generated
     *  arrival; closed-loop: release time). */
    double arrivalNs = 0.0;
    /** First simulated instant the request held a device. */
    double startNs = 0.0;
    /** Completion time; latency is endNs - arrivalNs. */
    double endNs = 0.0;
    /** Dropped at admission: the per-stream queue was full. */
    bool rejected = false;
    RunResult result;
};

/** Per-stream (per-tenant) outcome. */
struct ServeStreamResult {
    std::string name;
    /** Scheduling class; lower wins ties at equal dispatch time. */
    size_t priority = 0;
    std::vector<ServeRequest> requests;
};

/** Aggregate serving statistics over one scheduler run. */
struct ServeStats {
    double makespanNs = 0.0;
    double gpuBusyNs = 0.0;
    double pimBusyNs = 0.0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    /** Fused PIM dispatches covering >= 2 streams. */
    uint64_t batches = 0;
    /** Ops that rode inside those fused dispatches. */
    uint64_t batchedOps = 0;
    /** End-to-end latency (endNs - arrivalNs) per completed request,
     *  in completion order. */
    std::vector<double> latenciesNs = {};

    /** p in [0, 100]; nearest-rank percentile of latenciesNs. */
    double percentileNs(double p) const;
    double throughputRps() const;
    double gpuUtil() const;
    double pimUtil() const;
};

struct ServeResult {
    ServeStats stats;
    std::vector<ServeStreamResult> streams;
};

/**
 * The scheduler itself. `run()` consumes one trace per stream (cycled
 * when fewer traces than streams are given) and returns when every
 * admitted request has completed.
 *
 * Dispatch rule: among streams with an active run, pick the candidate
 * minimizing (dispatch time, priority, stream index) where dispatch
 * time = max(run clock, device-free time of the resource its next step
 * occupies); with overlap disabled both resources share one free time,
 * which serializes the whole system and serves as the baseline.
 * Admission is re-checked against every chosen dispatch time, so a
 * request arriving before the winner would start is admitted first.
 */
class ServeScheduler
{
  public:
    ServeScheduler(const AnaheimFramework &fw, const ServeConfig &serve);

    ServeResult run(const std::vector<OpSequence> &traces) const;

  private:
    const AnaheimFramework &fw_;
    ServeConfig serve_;
};

/** serve.* counters/gauges + optional per-stream Perfetto tracks.
 *  Called by ServeScheduler::run() before returning. */
void publishServeMetrics(const ServeStats &stats);

} // namespace anaheim::serve

#endif // ANAHEIM_SERVE_SCHEDULER_H

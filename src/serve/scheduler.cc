#include "scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>

#include "anaheim/runcontext.h"
#include "arrival.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace anaheim::serve {

double
ServeStats::percentileNs(double p) const
{
    if (latenciesNs.empty())
        return 0.0;
    std::vector<double> sorted = latenciesNs;
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank: the smallest latency covering p percent of samples.
    const double rank =
        std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
    const size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

double
ServeStats::throughputRps() const
{
    return makespanNs > 0.0
               ? static_cast<double>(completed) / (makespanNs * 1e-9)
               : 0.0;
}

double
ServeStats::gpuUtil() const
{
    return makespanNs > 0.0 ? gpuBusyNs / makespanNs : 0.0;
}

double
ServeStats::pimUtil() const
{
    return makespanNs > 0.0 ? pimBusyNs / makespanNs : 0.0;
}

namespace {

/** One client stream's live scheduling state. */
struct StreamState {
    const OpSequence *trace = nullptr;
    size_t priority = 0;
    /** Open-loop arrival timestamps; unused entries for closed-loop. */
    std::vector<double> arrivals;
    /** Next request index not yet released into the queue. */
    size_t nextArrival = 0;
    /** Admitted requests waiting for the stream's single run slot. */
    std::deque<size_t> queue;
    std::unique_ptr<RunContext> active;
    size_t activeIndex = 0;
    bool activeStarted = false;
    /** Completion time of the stream's last finished request — the
     *  release time of the next closed-loop request. */
    double lastEndNs = 0.0;
    /** Perfetto run id for this stream's track (tracing only). */
    uint32_t runId = 0;
};

/** Batching compatibility key: same opcode/shape PIM steps from
 *  different streams fuse into one dispatch. */
bool
sameBatchKey(const KernelOp &a, const KernelOp &b)
{
    return a.type == b.type && a.n == b.n && a.limbs == b.limbs &&
           a.fanIn == b.fanIn;
}

/** Per-request fault-stream salt: a pure function of the request's
 *  identity, never of the schedule, so batching/overlap toggles leave
 *  every per-request result bit-identical. */
uint64_t
requestSalt(size_t stream, size_t index)
{
    return (static_cast<uint64_t>(stream) << 20) |
           static_cast<uint64_t>(index);
}

} // namespace

ServeScheduler::ServeScheduler(const AnaheimFramework &fw,
                               const ServeConfig &serve)
    : fw_(fw), serve_(serve)
{
    ANAHEIM_ASSERT(serve_.streams > 0, "serving needs >= 1 stream");
    ANAHEIM_ASSERT(serve_.maxBatch > 0, "maxBatch must be >= 1");
    ANAHEIM_ASSERT(serve_.priorityClasses > 0,
                   "priorityClasses must be >= 1");
}

ServeResult
ServeScheduler::run(const std::vector<OpSequence> &traces) const
{
    OBS_SPAN("serve/run");
    ANAHEIM_ASSERT(!traces.empty(), "serving needs at least one trace");
    const bool tracing =
        fw_.config().obs.trace || obs::tracingEnabled();

    ServeResult out;
    out.streams.resize(serve_.streams);
    std::vector<StreamState> streams(serve_.streams);
    const auto arrivals = buildArrivals(serve_);
    for (size_t s = 0; s < serve_.streams; ++s) {
        StreamState &st = streams[s];
        st.trace = &traces[s % traces.size()];
        st.priority = s % serve_.priorityClasses;
        st.arrivals = arrivals[s];
        ServeStreamResult &res = out.streams[s];
        res.name = "serve/" + std::to_string(s) + "/" + st.trace->name;
        res.priority = st.priority;
        res.requests.resize(serve_.requestsPerStream);
        for (size_t k = 0; k < serve_.requestsPerStream; ++k) {
            res.requests[k].stream = s;
            res.requests[k].index = k;
        }
        if (tracing)
            st.runId = obs::TraceCollector::global().beginRun(res.name);
    }

    ServeStats &stats = out.stats;
    // Device occupancy horizons. With overlap off both point at the
    // same slot, which serializes every dispatch system-wide — the
    // back-to-back baseline bench_serving measures speedup against.
    double freeNs[2] = {0.0, 0.0}; // [0]=GPU, [1]=PIM
    const auto deviceOf = [](const RunContext &ctx) {
        return ctx.nextOnPim() ? 1 : 0;
    };
    const auto freeAt = [&](int dev) -> double & {
        return serve_.overlap ? freeNs[dev] : freeNs[0];
    };

    double now = 0.0;
    const auto release = [&](size_t s, size_t k, double arrivalNs) {
        StreamState &st = streams[s];
        ServeRequest &req = out.streams[s].requests[k];
        req.arrivalNs = arrivalNs;
        if (st.queue.size() >= serve_.maxQueuedPerStream) {
            req.rejected = true;
            ++stats.rejected;
            return;
        }
        ++stats.admitted;
        st.queue.push_back(k);
    };

    // Release every open-loop arrival with a timestamp <= `upTo`.
    const auto admitUpTo = [&](double upTo) {
        if (serve_.arrival != ArrivalKind::OpenPoisson)
            return;
        for (size_t s = 0; s < streams.size(); ++s) {
            StreamState &st = streams[s];
            while (st.nextArrival < st.arrivals.size() &&
                   st.arrivals[st.nextArrival] <= upTo) {
                const size_t k = st.nextArrival++;
                release(s, k, st.arrivals[k]);
            }
        }
    };

    // Earliest unreleased open-loop arrival, or +inf.
    const auto nextArrivalNs = [&]() {
        double next = std::numeric_limits<double>::infinity();
        if (serve_.arrival != ArrivalKind::OpenPoisson)
            return next;
        for (const StreamState &st : streams) {
            if (st.nextArrival < st.arrivals.size())
                next = std::min(next, st.arrivals[st.nextArrival]);
        }
        return next;
    };

    // Fill empty run slots from the queues; closed-loop streams
    // release their next request the moment the slot frees up.
    const auto activate = [&]() {
        for (size_t s = 0; s < streams.size(); ++s) {
            StreamState &st = streams[s];
            if (serve_.arrival == ArrivalKind::Closed && !st.active &&
                st.queue.empty() &&
                st.nextArrival < serve_.requestsPerStream) {
                const size_t k = st.nextArrival++;
                release(s, k, std::max(now, st.lastEndNs));
            }
            if (st.active || st.queue.empty())
                continue;
            st.activeIndex = st.queue.front();
            st.queue.pop_front();
            st.activeStarted = false;
            st.active = std::make_unique<RunContext>(
                fw_, *st.trace, requestSalt(s, st.activeIndex));
        }
    };

    const auto requestReadyNs = [&](size_t s) {
        const StreamState &st = streams[s];
        const ServeRequest &req = out.streams[s].requests[st.activeIndex];
        return std::max(st.active->clock(), req.arrivalNs);
    };

    // One step of stream s dispatched at `startNs` on device `dev`;
    // returns the step's end time and finalizes the request when the
    // run completed.
    const auto stepStream = [&](size_t s, double startNs,
                                bool suppressTransition) {
        StreamState &st = streams[s];
        ServeRequest &req = out.streams[s].requests[st.activeIndex];
        st.active->advanceClockTo(startNs);
        if (!st.activeStarted) {
            st.activeStarted = true;
            req.startNs = startNs;
        }
        st.active->step(suppressTransition);
        const double end = st.active->clock();
        if (st.active->done()) {
            req.endNs = end;
            req.result = st.active->finish();
            st.active.reset();
            st.lastEndNs = end;
            ++stats.completed;
            stats.latenciesNs.push_back(end - req.arrivalNs);
            if (tracing) {
                obs::recordRunTimeline(st.runId, req.result);
                obs::publishRunMetrics(req.result, st.runId);
            } else {
                obs::publishRunMetrics(req.result);
            }
        }
        stats.makespanNs = std::max(stats.makespanNs, end);
        return end;
    };

    while (true) {
        admitUpTo(now);
        activate();

        // Candidate = earliest dispatch across streams with a live run.
        size_t best = streams.size();
        double bestStart = 0.0;
        for (size_t s = 0; s < streams.size(); ++s) {
            if (!streams[s].active)
                continue;
            // A cost-free boundary (end-of-trace, checksums off)
            // claims no resource: it completes at the run's own clock.
            const int dev = deviceOf(*streams[s].active);
            const double start =
                streams[s].active->nextCostFree()
                    ? requestReadyNs(s)
                    : std::max(requestReadyNs(s), freeAt(dev));
            const bool wins =
                best == streams.size() || start < bestStart ||
                (start == bestStart &&
                 (streams[s].priority < streams[best].priority ||
                  (streams[s].priority == streams[best].priority &&
                   s < best)));
            if (wins) {
                best = s;
                bestStart = start;
            }
        }
        if (best == streams.size()) {
            const double next = nextArrivalNs();
            if (!std::isfinite(next))
                break; // no runs, no queues, no future arrivals
            now = next;
            continue;
        }
        // A request arriving before the winner's dispatch may belong
        // in this very decision — admit it and re-evaluate.
        const double pending = nextArrivalNs();
        if (pending <= bestStart) {
            now = pending;
            continue;
        }

        StreamState &leader = streams[best];
        const int dev = deviceOf(*leader.active);
        double end;
        if (leader.active->nextCostFree()) {
            stepStream(best, bestStart, false);
            now = std::max(now, bestStart);
            continue;
        }
        if (dev == 1 && serve_.batching) {
            // Fuse compatible PIM steps from other streams into the
            // leader's dispatch: followers run back-to-back inside one
            // launch and skip the GPU<->PIM transition charge.
            const KernelOp &key = *leader.active->nextOp();
            std::vector<size_t> followers;
            for (size_t s = 0; s < streams.size(); ++s) {
                if (s == best || !streams[s].active ||
                    !streams[s].active->nextOnPim())
                    continue;
                if (requestReadyNs(s) <= bestStart &&
                    sameBatchKey(*streams[s].active->nextOp(), key))
                    followers.push_back(s);
            }
            std::sort(followers.begin(), followers.end(),
                      [&](size_t a, size_t b) {
                          if (streams[a].priority != streams[b].priority)
                              return streams[a].priority <
                                     streams[b].priority;
                          return a < b;
                      });
            if (followers.size() > serve_.maxBatch - 1)
                followers.resize(serve_.maxBatch - 1);
            end = stepStream(best, bestStart, false);
            for (const size_t s : followers)
                end = stepStream(s, end, true);
            if (!followers.empty()) {
                ++stats.batches;
                stats.batchedOps += followers.size() + 1;
            }
            stats.pimBusyNs += end - bestStart;
        } else {
            end = stepStream(best, bestStart, false);
            (dev == 1 ? stats.pimBusyNs : stats.gpuBusyNs) +=
                end - bestStart;
        }
        freeAt(dev) = end;
        now = std::max(now, bestStart);
    }

    publishServeMetrics(stats);
    return out;
}

void
publishServeMetrics(const ServeStats &stats)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("serve.requests_admitted").add(stats.admitted);
    reg.counter("serve.requests_rejected").add(stats.rejected);
    reg.counter("serve.requests_completed").add(stats.completed);
    reg.counter("serve.batches").add(stats.batches);
    reg.counter("serve.batched_ops").add(stats.batchedOps);
    reg.gauge("serve.makespan_ns").set(stats.makespanNs);
    reg.gauge("serve.gpu_util").set(stats.gpuUtil());
    reg.gauge("serve.pim_util").set(stats.pimUtil());
    reg.gauge("serve.throughput_rps").set(stats.throughputRps());
    reg.gauge("serve.latency_p50_ns").set(stats.percentileNs(50.0));
    reg.gauge("serve.latency_p99_ns").set(stats.percentileNs(99.0));
}

} // namespace anaheim::serve

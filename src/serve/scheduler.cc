#include "scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <optional>

#include "anaheim/runcontext.h"
#include "arrival.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "slo.h"

namespace anaheim::serve {

double
ServeStats::percentileNs(double p) const
{
    if (latenciesNs.empty())
        return 0.0;
    // Clamp rather than trust the caller: a NaN or out-of-range p
    // would otherwise turn into an out-of-bounds rank below.
    if (!(p > 0.0))
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    std::vector<double> sorted = latenciesNs;
    std::sort(sorted.begin(), sorted.end());
    if (p == 0.0)
        return sorted.front();
    // Nearest-rank: the smallest latency covering p percent of samples;
    // p > 0 makes ceil() >= 1, so the -1 below cannot wrap.
    const double rank =
        std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
    const size_t idx = static_cast<size_t>(rank) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

double
ServeStats::throughputRps() const
{
    return makespanNs > 0.0
               ? static_cast<double>(completed) / (makespanNs * 1e-9)
               : 0.0;
}

double
ServeStats::goodputRps() const
{
    return makespanNs > 0.0
               ? static_cast<double>(deadlineMet) / (makespanNs * 1e-9)
               : 0.0;
}

double
ServeStats::gpuUtil() const
{
    return makespanNs > 0.0 ? gpuBusyNs / makespanNs : 0.0;
}

double
ServeStats::pimUtil() const
{
    return makespanNs > 0.0 ? pimBusyNs / makespanNs : 0.0;
}

namespace {

constexpr size_t kNoStream = static_cast<size_t>(-1);

/** One client stream's live scheduling state. */
struct StreamState {
    const OpSequence *trace = nullptr;
    size_t priority = 0;
    /** Relative deadline (<= 0 = deadline-free). */
    double deadlineRelNs = 0.0;
    /** Open-loop arrival timestamps; unused entries for closed-loop. */
    std::vector<double> arrivals;
    /** Next request index not yet released into the queue. */
    size_t nextArrival = 0;
    /** Admitted requests waiting for the stream's single run slot. */
    std::deque<size_t> queue;
    std::unique_ptr<RunContext> active;
    size_t activeIndex = 0;
    bool activeStarted = false;
    /** Preempted between steps; its next dispatch pays the restore. */
    bool preempted = false;
    /** Completion time of the stream's last finished request — the
     *  release time of the next closed-loop request. */
    double lastEndNs = 0.0;
    /** Per-tenant rate limiter (absent when rateLimitRps == 0). */
    std::optional<TokenBucket> bucket;
    /** Perfetto run id for this stream's track (tracing only). */
    uint32_t runId = 0;
};

/** Batching compatibility key: same opcode/shape PIM steps from
 *  different streams fuse into one dispatch. */
bool
sameBatchKey(const KernelOp &a, const KernelOp &b)
{
    return a.type == b.type && a.n == b.n && a.limbs == b.limbs &&
           a.fanIn == b.fanIn;
}

/** Per-request fault-stream salt: a pure function of the request's
 *  identity, never of the schedule, so batching/overlap toggles leave
 *  every per-request result bit-identical. */
uint64_t
requestSalt(size_t stream, size_t index)
{
    return (static_cast<uint64_t>(stream) << 20) |
           static_cast<uint64_t>(index);
}

/**
 * The per-run() engine: all the state the dispatch loop threads
 * through — stream slots, device horizons, the SLO machinery — as one
 * object so admission, shedding, preemption and degradation re-pricing
 * can share it without a wall of nested lambdas.
 */
class ServeEngine
{
  public:
    ServeEngine(const AnaheimFramework &fw, const ServeConfig &serve,
                const std::vector<OpSequence> &traces)
        : fw_(fw), serve_(serve), traces_(traces)
    {
    }

    ServeResult run();

  private:
    double deadlineFor(size_t s) const;
    bool deadlinesEnabled() const;
    void release(size_t s, size_t k, double arrivalNs);
    void admitUpTo(double upTo);
    double nextArrivalNs() const;
    void activate();
    void shed(size_t s, size_t k, double atNs);
    bool wouldMissDeadline(size_t s, size_t k, double startNs) const;
    void shedQueuedMisses();
    void observeHealth(const RunContext &ctx);
    double requestReadyNs(size_t s) const;
    double stepStream(size_t s, double startNs, bool suppressTransition);
    double preemptionOverheadNs(size_t winner, int dev, double startNs);
    void recordServeSpan(uint32_t runId, const char *name,
                         const char *lane, double startNs, double durNs);
    void publishStreamTotals() const;
    void telemetryInit();
    obs::TimeSeries &telemetrySeries(const std::string &suffix);
    void telemetryTickTo(double simNs);
    void telemetryCloseTick();
    void telemetryFinish();

    const AnaheimFramework &fw_;
    const ServeConfig &serve_;
    const std::vector<OpSequence> &traces_;

    ServeResult out_;
    std::vector<StreamState> streams_;
    std::unique_ptr<ServiceEstimator> estimator_;
    bool tracing_ = false;
    double now_ = 0.0;
    /** Device occupancy horizons; [0]=GPU, [1]=PIM (overlap off maps
     *  both onto slot 0, serializing the system). */
    double freeNs_[2] = {0.0, 0.0};
    /** Stream last dispatched per device slot (preemption victim
     *  detection). */
    size_t devLast_[2] = {kNoStream, kNoStream};
    /** Worst healthy-bank fraction observed across all runs — the
     *  scheduler's view of the shared device's degradation. */
    double worstCapacity_ = 1.0;
    bool deviceOffline_ = false;

    // --- Time-series telemetry (DESIGN.md §17) ---
    /** telemetry.tickNs > 0 and the process-wide sampling switch is
     *  on; everything below is untouched otherwise. */
    bool telemetry_ = false;
    /** Per-run series name prefix ("serve.run<epoch>.ts.") so series
     *  from successive runs in one process never collide. */
    std::string tsPrefix_;
    /** Event-style series, observed as the run progresses. */
    obs::TimeSeries *tsLatency_ = nullptr;
    obs::TimeSeries *tsDeadlineMet_ = nullptr;
    obs::TimeSeries *tsGoodput_ = nullptr;
    obs::TimeSeries *tsRejectQueueFull_ = nullptr;
    obs::TimeSeries *tsRejectRateLimited_ = nullptr;
    obs::TimeSeries *tsRejectShed_ = nullptr;
    obs::TimeSeries *tsPreemptions_ = nullptr;
    obs::TimeSeries *tsReprices_ = nullptr;
    /** Gauge-style series, sampled once per closed tick. */
    obs::TimeSeries *tsQueueDepth_ = nullptr;
    obs::TimeSeries *tsGpuBusy_ = nullptr;
    obs::TimeSeries *tsPimBusy_ = nullptr;
    obs::TimeSeries *tsFastBurn_ = nullptr;
    obs::TimeSeries *tsSlowBurn_ = nullptr;
    /** Per-tenant queue-depth series for the first
     *  kMaxTenantSeries streams (bounded export size). */
    static constexpr size_t kMaxTenantSeries = 8;
    std::vector<obs::TimeSeries *> tsTenantQueue_;
    std::unique_ptr<obs::BurnRateEvaluator> burn_;
    /** Next tick boundary not yet closed, as a tick index. */
    uint64_t nextTick_ = 0;
    /** Cumulative counters at the last closed tick (deltas feed the
     *  per-tick burn windows and busy fractions). */
    uint64_t lastDeadlineMet_ = 0;
    uint64_t lastResolved_ = 0;
    double lastGpuBusyNs_ = 0.0;
    double lastPimBusyNs_ = 0.0;
    /** Perfetto run id for the engine-global Alert lane (tracing). */
    uint32_t alertRunId_ = 0;
    /** Simulated start of the in-flight alert episode (< 0 = none). */
    double alertStartNs_ = -1.0;
};

double
ServeEngine::deadlineFor(size_t s) const
{
    if (!serve_.deadlineClassNs.empty())
        return serve_.deadlineClassNs[s % serve_.deadlineClassNs.size()];
    return serve_.deadlineNs;
}

bool
ServeEngine::deadlinesEnabled() const
{
    if (serve_.deadlineNs > 0.0)
        return true;
    for (const double d : serve_.deadlineClassNs) {
        if (d > 0.0)
            return true;
    }
    return false;
}

void
ServeEngine::recordServeSpan(uint32_t runId, const char *name,
                             const char *lane, double startNs,
                             double durNs)
{
    if (!tracing_)
        return;
    obs::SimSpan span;
    span.name = name;
    span.lane = lane;
    span.category = "Serve";
    span.run = runId;
    span.startUs = startNs * 1e-3;
    span.durUs = durNs * 1e-3;
    obs::TraceCollector::global().recordSimSpan(std::move(span));
}

void
ServeEngine::release(size_t s, size_t k, double arrivalNs)
{
    StreamState &st = streams_[s];
    ServeRequest &req = out_.streams[s].requests[k];
    req.arrivalNs = arrivalNs;
    if (st.deadlineRelNs > 0.0)
        req.deadlineNs = arrivalNs + st.deadlineRelNs;
    ServeStats &stats = out_.stats;
    // The token bucket is the tenant's front door: an abusive stream
    // is clipped before it can occupy queue capacity.
    if (st.bucket && !st.bucket->tryAcquire(arrivalNs)) {
        req.rejected = true;
        req.cause = RejectCause::RateLimited;
        ++stats.rejected;
        ++stats.rejectedRateLimited;
        if (telemetry_)
            tsRejectRateLimited_->observe(arrivalNs, 1.0);
        return;
    }
    if (st.queue.size() >= serve_.maxQueuedPerStream) {
        req.rejected = true;
        req.cause = RejectCause::QueueFull;
        ++stats.rejected;
        ++stats.rejectedQueueFull;
        if (telemetry_)
            tsRejectQueueFull_->observe(arrivalNs, 1.0);
        return;
    }
    st.queue.push_back(k);
}

// Release every open-loop arrival with a timestamp <= `upTo`.
void
ServeEngine::admitUpTo(double upTo)
{
    if (serve_.arrival != ArrivalKind::OpenPoisson)
        return;
    for (size_t s = 0; s < streams_.size(); ++s) {
        StreamState &st = streams_[s];
        while (st.nextArrival < st.arrivals.size() &&
               st.arrivals[st.nextArrival] <= upTo) {
            const size_t k = st.nextArrival++;
            release(s, k, st.arrivals[k]);
        }
    }
}

// Earliest unreleased open-loop arrival, or +inf.
double
ServeEngine::nextArrivalNs() const
{
    double next = std::numeric_limits<double>::infinity();
    if (serve_.arrival != ArrivalKind::OpenPoisson)
        return next;
    for (const StreamState &st : streams_) {
        if (st.nextArrival < st.arrivals.size())
            next = std::min(next, st.arrivals[st.nextArrival]);
    }
    return next;
}

void
ServeEngine::shed(size_t s, size_t k, double atNs)
{
    ServeRequest &req = out_.streams[s].requests[k];
    req.rejected = true;
    req.cause = RejectCause::DeadlineShed;
    ++out_.stats.rejected;
    ++out_.stats.shedDeadline;
    if (telemetry_)
        tsRejectShed_->observe(atNs, 1.0);
    recordServeSpan(streams_[s].runId, "Shed", "Shed", atNs, 0.0);
}

/** True when dispatching request k of stream s at `startNs` cannot
 *  meet its deadline even on the estimator's clean-device price — a
 *  guaranteed SLO violation, so execute() time would be wasted. */
bool
ServeEngine::wouldMissDeadline(size_t s, size_t k, double startNs) const
{
    if (!estimator_)
        return false;
    const ServeRequest &req = out_.streams[s].requests[k];
    if (!std::isfinite(req.deadlineNs))
        return false;
    const double earliest = std::max(startNs, req.arrivalNs) +
                            estimator_->estimate(s).totalNs;
    return earliest > req.deadlineNs;
}

// Fill empty run slots from the queues; closed-loop streams release
// their next request the moment the slot frees up. A rejected or shed
// release immediately falls through to the next candidate, so one bad
// request can never wedge its stream (pinned by
// Serve.ClosedLoopRejectionReleasesNext).
void
ServeEngine::activate()
{
    for (size_t s = 0; s < streams_.size(); ++s) {
        StreamState &st = streams_[s];
        while (!st.active) {
            if (st.queue.empty()) {
                // A closed-loop stream releases its next request the
                // moment the slot is free — including when the
                // previous release was rejected or shed, so one bad
                // request never strands the rest of the stream.
                if (serve_.arrival != ArrivalKind::Closed ||
                    st.nextArrival >= serve_.requestsPerStream)
                    break;
                const size_t k = st.nextArrival++;
                release(s, k, std::max(now_, st.lastEndNs));
                continue;
            }
            const size_t k = st.queue.front();
            st.queue.pop_front();
            if (wouldMissDeadline(s, k, now_)) {
                shed(s, k, now_);
                continue;
            }
            st.activeIndex = k;
            st.activeStarted = false;
            ++out_.stats.admitted;
            st.active = std::make_unique<RunContext>(
                fw_, *st.trace, requestSalt(s, k));
        }
    }
}

/** Re-check every queued (not yet admitted to a slot) request against
 *  the re-priced estimates: what fit the healthy device may be a
 *  guaranteed miss on the degraded one. */
void
ServeEngine::shedQueuedMisses()
{
    for (size_t s = 0; s < streams_.size(); ++s) {
        StreamState &st = streams_[s];
        std::deque<size_t> keep;
        for (const size_t k : st.queue) {
            if (wouldMissDeadline(s, k, now_))
                shed(s, k, now_);
            else
                keep.push_back(k);
        }
        st.queue.swap(keep);
    }
}

/** Degradation awareness: a quarantine (or capacity-floor trip)
 *  observed in ANY run shrinks the scheduler's device view — permanent
 *  damage is a device property shared by every tenant, so all queued
 *  work is re-priced on the degraded geometry and re-checked against
 *  its deadline. */
void
ServeEngine::observeHealth(const RunContext &ctx)
{
    const double cap = ctx.capacityFraction();
    const bool offline = ctx.pimOfflineNow();
    if (cap >= worstCapacity_ && (deviceOffline_ || !offline))
        return;
    worstCapacity_ = std::min(worstCapacity_, cap);
    deviceOffline_ = deviceOffline_ || offline;
    ++out_.stats.repriceEvents;
    if (telemetry_)
        tsReprices_->observe(now_, 1.0);
    if (estimator_) {
        const ResourceMap *resources = ctx.healthResources();
        if (resources != nullptr)
            estimator_->reprice(*resources, deviceOffline_);
        shedQueuedMisses();
    }
}

double
ServeEngine::requestReadyNs(size_t s) const
{
    const StreamState &st = streams_[s];
    const ServeRequest &req = out_.streams[s].requests[st.activeIndex];
    return std::max(st.active->clock(), req.arrivalNs);
}

// One step of stream s dispatched at `startNs`; returns the step's end
// time and finalizes the request when the run completed.
double
ServeEngine::stepStream(size_t s, double startNs, bool suppressTransition)
{
    StreamState &st = streams_[s];
    ServeStats &stats = out_.stats;
    ServeRequest &req = out_.streams[s].requests[st.activeIndex];
    st.active->advanceClockTo(startNs);
    if (!st.activeStarted) {
        st.activeStarted = true;
        req.startNs = startNs;
    }
    st.active->step(suppressTransition);
    const double end = st.active->clock();
    observeHealth(*st.active);
    if (st.active->done()) {
        req.endNs = end;
        req.result = st.active->finish();
        st.active.reset();
        st.preempted = false; // nothing left to restore
        st.lastEndNs = end;
        ++stats.completed;
        req.deadlineMet = end <= req.deadlineNs;
        if (req.deadlineMet)
            ++stats.deadlineMet;
        stats.latenciesNs.push_back(end - req.arrivalNs);
        if (telemetry_) {
            tsLatency_->observe(end, end - req.arrivalNs);
            tsDeadlineMet_->observe(end, req.deadlineMet ? 1.0 : 0.0);
            if (req.deadlineMet)
                tsGoodput_->observe(end, 1.0);
        }
        ServeStreamResult &sr = out_.streams[s];
        sr.pimRetries += req.result.resilience.pimRetries;
        sr.rollbacks += req.result.resilience.rollbacks;
        sr.gpuFallbacks += req.result.resilience.gpuFallbacks;
        sr.migrations += req.result.resilience.migrations;
        sr.unrecovered += req.result.resilience.unrecovered;
        if (tracing_) {
            obs::recordRunTimeline(st.runId, req.result);
            obs::publishRunMetrics(req.result, st.runId);
        } else {
            obs::publishRunMetrics(req.result);
        }
    }
    stats.makespanNs = std::max(stats.makespanNs, end);
    return end;
}

/**
 * Preemption bookkeeping at the moment `winner` takes device `dev` at
 * `startNs`: if a started lower-priority run was the device's last
 * occupant, this dispatch preempts it — its live footprint is
 * snapshotted out (checkpoint-priced: 2x footprint over the external
 * bus) before the winner's step, and the victim pays the matching
 * restore pass when it next dispatches. Both passes occupy the device
 * but never touch either run's own result, so a preempted run resumes
 * bitwise-identically (pinned by Serve.PreemptedRunResultsIdentical).
 * Returns the overhead to insert before the winner's step.
 */
double
ServeEngine::preemptionOverheadNs(size_t winner, int dev, double startNs)
{
    if (!serve_.preemption)
        return 0.0;
    ServeStats &stats = out_.stats;
    double overhead = 0.0;
    const size_t last = devLast_[serve_.overlap ? dev : 0];
    if (last != kNoStream && last != winner) {
        StreamState &victim = streams_[last];
        // A run whose only remaining step is a cost-free boundary has
        // no device-resident work left to save — not a preemption.
        if (victim.active && victim.activeStarted && !victim.preempted &&
            victim.priority > streams_[winner].priority &&
            !victim.active->nextCostFree()) {
            const double saveNs =
                2.0 * victim.active->liveSnapshotBytes() /
                victim.active->externalBwBytesPerNs();
            ++stats.preemptions;
            victim.preempted = true;
            if (telemetry_)
                tsPreemptions_->observe(startNs + overhead, saveNs);
            recordServeSpan(victim.runId, "Save", "Preempt",
                            startNs + overhead, saveNs);
            overhead += saveNs;
        }
    }
    StreamState &st = streams_[winner];
    if (st.preempted) {
        const double restoreNs = 2.0 *
                                 st.active->liveSnapshotBytes() /
                                 st.active->externalBwBytesPerNs();
        ++stats.preemptionResumes;
        st.preempted = false;
        recordServeSpan(st.runId, "Restore", "Preempt",
                        startNs + overhead, restoreNs);
        overhead += restoreNs;
    }
    stats.preemptionOverheadNs += overhead;
    return overhead;
}

/** Per-stream fault bill under the stream's Perfetto run id. */
void
ServeEngine::publishStreamTotals() const
{
    if (!tracing_)
        return;
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    for (size_t s = 0; s < streams_.size(); ++s) {
        const ServeStreamResult &sr = out_.streams[s];
        const std::string prefix =
            "run." + std::to_string(streams_[s].runId);
        reg.gauge(prefix + ".serve.retries")
            .set(static_cast<double>(sr.pimRetries));
        reg.gauge(prefix + ".serve.rollbacks")
            .set(static_cast<double>(sr.rollbacks));
        reg.gauge(prefix + ".serve.gpu_fallbacks")
            .set(static_cast<double>(sr.gpuFallbacks));
        reg.gauge(prefix + ".serve.migrations")
            .set(static_cast<double>(sr.migrations));
        reg.gauge(prefix + ".serve.unrecovered")
            .set(static_cast<double>(sr.unrecovered));
    }
}

obs::TimeSeries &
ServeEngine::telemetrySeries(const std::string &suffix)
{
    return obs::TimeSeriesRegistry::global().series(
        tsPrefix_ + suffix, serve_.telemetry.tickNs);
}

void
ServeEngine::telemetryInit()
{
    telemetry_ =
        serve_.telemetry.tickNs > 0.0 && obs::seriesSamplingEnabled();
    if (!telemetry_)
        return;
    // Per-run namespace: successive runs in one process (a bench
    // sweep) each get their own serve.run<epoch>.ts.* series.
    const uint64_t epoch =
        obs::TimeSeriesRegistry::global().beginEpoch();
    tsPrefix_ = "serve.run" + std::to_string(epoch) + ".ts.";
    tsLatency_ = &telemetrySeries("latency_ns");
    tsDeadlineMet_ = &telemetrySeries("deadline_met");
    tsGoodput_ = &telemetrySeries("goodput");
    tsRejectQueueFull_ = &telemetrySeries("reject.queue_full");
    tsRejectRateLimited_ = &telemetrySeries("reject.rate_limited");
    tsRejectShed_ = &telemetrySeries("reject.shed");
    tsPreemptions_ = &telemetrySeries("preempt.save_ns");
    tsReprices_ = &telemetrySeries("reprice");
    tsQueueDepth_ = &telemetrySeries("queue_depth");
    tsGpuBusy_ = &telemetrySeries("gpu_busy_frac");
    tsPimBusy_ = &telemetrySeries("pim_busy_frac");
    tsFastBurn_ = &telemetrySeries("slo_fast_burn");
    tsSlowBurn_ = &telemetrySeries("slo_slow_burn");
    const size_t tenants =
        std::min(streams_.size(), kMaxTenantSeries);
    for (size_t s = 0; s < tenants; ++s) {
        tsTenantQueue_.push_back(&telemetrySeries(
            "tenant" + std::to_string(s) + ".queue_depth"));
    }
    obs::BurnRateConfig bc;
    bc.sloTarget = serve_.telemetry.sloTarget;
    bc.fastWindowTicks = serve_.telemetry.fastWindowTicks;
    bc.slowWindowTicks = serve_.telemetry.slowWindowTicks;
    bc.burnThreshold = serve_.telemetry.burnThreshold;
    burn_ = std::make_unique<obs::BurnRateEvaluator>(bc);
    if (tracing_) {
        alertRunId_ =
            obs::TraceCollector::global().beginRun("serve/alerts");
    }
}

/** Close tick `nextTick_`: sample the gauge-style series and feed the
 *  burn-rate evaluator with this tick's (deadline-met, resolved)
 *  deltas. Sampled state is whatever is current when the event loop
 *  crosses the boundary — deterministic, since the loop itself is. */
void
ServeEngine::telemetryCloseTick()
{
    const double tick = serve_.telemetry.tickNs;
    const double windowStart = static_cast<double>(nextTick_) * tick;
    // Observe at the window midpoint so the sample can never land in a
    // neighboring window through floating-point division.
    const double mid = windowStart + 0.5 * tick;
    const ServeStats &stats = out_.stats;

    size_t depth = 0;
    for (size_t s = 0; s < streams_.size(); ++s) {
        depth += streams_[s].queue.size();
        if (s < tsTenantQueue_.size()) {
            tsTenantQueue_[s]->observe(
                mid, static_cast<double>(streams_[s].queue.size()));
        }
    }
    tsQueueDepth_->observe(mid, static_cast<double>(depth));
    tsGpuBusy_->observe(mid,
                        (stats.gpuBusyNs - lastGpuBusyNs_) / tick);
    tsPimBusy_->observe(mid,
                        (stats.pimBusyNs - lastPimBusyNs_) / tick);
    lastGpuBusyNs_ = stats.gpuBusyNs;
    lastPimBusyNs_ = stats.pimBusyNs;

    // SLO view of the tick: deadline-met completions over everything
    // that resolved (completions + deadline sheds — a shed IS a missed
    // deadline from the client's seat). Queue-full / rate-limit
    // rejections are admission policy, not SLO failures.
    const uint64_t resolved = stats.completed + stats.shedDeadline;
    const uint64_t good = stats.deadlineMet - lastDeadlineMet_;
    const uint64_t total = resolved - lastResolved_;
    lastDeadlineMet_ = stats.deadlineMet;
    lastResolved_ = resolved;
    const auto eval = burn_->update(good, total);
    tsFastBurn_->observe(mid, eval.fastBurn);
    tsSlowBurn_->observe(mid, eval.slowBurn);
    if (eval.fired)
        alertStartNs_ = windowStart;
    if (eval.resolved && alertStartNs_ >= 0.0) {
        recordServeSpan(alertRunId_, "SLOBurn", "Alert", alertStartNs_,
                        windowStart + tick - alertStartNs_);
        alertStartNs_ = -1.0;
    }
    ++nextTick_;
}

/** Close every tick that ends at or before `simNs`. */
void
ServeEngine::telemetryTickTo(double simNs)
{
    if (!telemetry_)
        return;
    const double tick = serve_.telemetry.tickNs;
    while ((static_cast<double>(nextTick_) + 1.0) * tick <= simNs)
        telemetryCloseTick();
}

void
ServeEngine::telemetryFinish()
{
    if (!telemetry_)
        return;
    ServeStats &stats = out_.stats;
    const double tick = serve_.telemetry.tickNs;
    telemetryTickTo(stats.makespanNs);
    // The run rarely ends on a boundary: close the final partial tick
    // so trailing completions still reach the burn windows.
    if (stats.makespanNs > static_cast<double>(nextTick_) * tick)
        telemetryCloseTick();
    if (burn_->firing() && alertStartNs_ >= 0.0) {
        recordServeSpan(alertRunId_, "SLOBurn", "Alert", alertStartNs_,
                        std::max(stats.makespanNs - alertStartNs_,
                                 0.0));
        alertStartNs_ = -1.0;
    }
    // Materialize trailing idle windows on the event-style series so
    // every series of the run spans the same [0, makespan] range.
    for (obs::TimeSeries *series :
         {tsLatency_, tsDeadlineMet_, tsGoodput_, tsRejectQueueFull_,
          tsRejectRateLimited_, tsRejectShed_, tsPreemptions_,
          tsReprices_})
        series->advanceTo(stats.makespanNs);
    stats.alertsFired = burn_->alertsFired();
    stats.alertsResolved = burn_->alertsResolved();
    stats.alertTicksFiring = burn_->ticksFiring();
}

ServeResult
ServeEngine::run()
{
    OBS_SPAN("serve/run");
    ANAHEIM_ASSERT(!traces_.empty(), "serving needs at least one trace");
    tracing_ = fw_.config().obs.trace || obs::tracingEnabled();

    out_.streams.resize(serve_.streams);
    streams_.resize(serve_.streams);
    const auto arrivals = buildArrivals(serve_);
    for (size_t s = 0; s < serve_.streams; ++s) {
        StreamState &st = streams_[s];
        st.trace = &traces_[s % traces_.size()];
        st.priority = s % serve_.priorityClasses;
        st.deadlineRelNs = deadlineFor(s);
        st.arrivals = arrivals[s];
        if (serve_.rateLimitRps > 0.0)
            st.bucket.emplace(serve_.rateLimitRps,
                              serve_.rateLimitBurst);
        ServeStreamResult &res = out_.streams[s];
        res.name = "serve/" + std::to_string(s) + "/" + st.trace->name;
        res.priority = st.priority;
        res.requests.resize(serve_.requestsPerStream);
        for (size_t k = 0; k < serve_.requestsPerStream; ++k) {
            res.requests[k].stream = s;
            res.requests[k].index = k;
        }
        if (tracing_)
            st.runId = obs::TraceCollector::global().beginRun(res.name);
    }
    // Deadline admission needs service prices; without deadlines the
    // estimator (one clean-device execution per trace) is never built
    // and the PR-8 fast path is untouched.
    if (deadlinesEnabled())
        estimator_ = std::make_unique<ServiceEstimator>(fw_.config(),
                                                        traces_);
    telemetryInit();

    ServeStats &stats = out_.stats;
    // Device occupancy horizons. With overlap off both point at the
    // same slot, which serializes every dispatch system-wide — the
    // back-to-back baseline bench_serving measures speedup against.
    const auto deviceOf = [](const RunContext &ctx) {
        return ctx.nextOnPim() ? 1 : 0;
    };
    const auto freeAt = [&](int dev) -> double & {
        return freeNs_[serve_.overlap ? dev : 0];
    };

    while (true) {
        telemetryTickTo(now_);
        admitUpTo(now_);
        activate();

        // Candidate = earliest dispatch across streams with a live
        // run; with preemption on, priority outranks start time, so
        // ready high-priority work interleaves ahead of low-priority
        // runs at their next step boundary.
        size_t best = streams_.size();
        double bestStart = 0.0;
        for (size_t s = 0; s < streams_.size(); ++s) {
            if (!streams_[s].active)
                continue;
            // A cost-free boundary (end-of-trace, checksums off)
            // claims no resource: it completes at the run's own clock.
            const int dev = deviceOf(*streams_[s].active);
            const double start =
                streams_[s].active->nextCostFree()
                    ? requestReadyNs(s)
                    : std::max(requestReadyNs(s), freeAt(dev));
            bool wins;
            if (best == streams_.size()) {
                wins = true;
            } else if (serve_.preemption) {
                wins = streams_[s].priority < streams_[best].priority ||
                       (streams_[s].priority == streams_[best].priority &&
                        (start < bestStart ||
                         (start == bestStart && s < best)));
            } else {
                wins = start < bestStart ||
                       (start == bestStart &&
                        (streams_[s].priority < streams_[best].priority ||
                         (streams_[s].priority ==
                              streams_[best].priority &&
                          s < best)));
            }
            if (wins) {
                best = s;
                bestStart = start;
            }
        }
        if (best == streams_.size()) {
            const double next = nextArrivalNs();
            if (!std::isfinite(next))
                break; // no runs, no queues, no future arrivals
            now_ = next;
            continue;
        }
        // A request arriving before the winner's dispatch may belong
        // in this very decision — admit it and re-evaluate.
        const double pending = nextArrivalNs();
        if (pending <= bestStart) {
            now_ = pending;
            continue;
        }

        StreamState &leader = streams_[best];
        // Deadline shedding at dispatch: the request is only now
        // paying for a device, and even its clean-device estimate from
        // here misses the deadline — drop it instead of burning the
        // device on a guaranteed violation. (Started runs always
        // finish; their partial work would be wasted twice over.)
        if (!leader.activeStarted &&
            wouldMissDeadline(best, leader.activeIndex, bestStart)) {
            shed(best, leader.activeIndex, bestStart);
            --stats.admitted; // never held the slot for real
            leader.active.reset();
            now_ = std::max(now_, bestStart);
            continue;
        }
        const int dev = deviceOf(*leader.active);
        double end;
        if (leader.active->nextCostFree()) {
            stepStream(best, bestStart, false);
            now_ = std::max(now_, bestStart);
            continue;
        }
        const double overhead =
            preemptionOverheadNs(best, dev, bestStart);
        const double stepStart = bestStart + overhead;
        if (dev == 1 && serve_.batching) {
            // Fuse compatible PIM steps from other streams into the
            // leader's dispatch: followers run back-to-back inside one
            // launch and skip the GPU<->PIM transition charge.
            const KernelOp &key = *leader.active->nextOp();
            std::vector<size_t> followers;
            for (size_t s = 0; s < streams_.size(); ++s) {
                if (s == best || !streams_[s].active ||
                    !streams_[s].active->nextOnPim())
                    continue;
                if (requestReadyNs(s) <= bestStart &&
                    sameBatchKey(*streams_[s].active->nextOp(), key))
                    followers.push_back(s);
            }
            std::sort(followers.begin(), followers.end(),
                      [&](size_t a, size_t b) {
                          if (streams_[a].priority !=
                              streams_[b].priority)
                              return streams_[a].priority <
                                     streams_[b].priority;
                          return a < b;
                      });
            if (followers.size() > serve_.maxBatch - 1)
                followers.resize(serve_.maxBatch - 1);
            end = stepStream(best, stepStart, false);
            for (const size_t s : followers)
                end = stepStream(s, end, true);
            if (!followers.empty()) {
                ++stats.batches;
                stats.batchedOps += followers.size() + 1;
            }
            stats.pimBusyNs += end - stepStart;
        } else {
            end = stepStream(best, stepStart, false);
            (dev == 1 ? stats.pimBusyNs : stats.gpuBusyNs) +=
                end - stepStart;
        }
        freeAt(dev) = end;
        devLast_[serve_.overlap ? dev : 0] = best;
        now_ = std::max(now_, bestStart);
    }

    telemetryFinish();
    publishServeMetrics(stats);
    publishStreamTotals();
    return std::move(out_);
}

} // namespace

ServeScheduler::ServeScheduler(const AnaheimFramework &fw,
                               const ServeConfig &serve)
    : fw_(fw), serve_(serve)
{
    ANAHEIM_ASSERT(serve_.streams > 0, "serving needs >= 1 stream");
    ANAHEIM_ASSERT(serve_.maxBatch > 0, "maxBatch must be >= 1");
    ANAHEIM_ASSERT(serve_.priorityClasses > 0,
                   "priorityClasses must be >= 1");
    ANAHEIM_ASSERT(serve_.rateLimitRps == 0.0 ||
                       serve_.rateLimitBurst >= 1.0,
                   "rate limiter burst must be >= 1");
}

ServeResult
ServeScheduler::run(const std::vector<OpSequence> &traces) const
{
    return ServeEngine(fw_, serve_, traces).run();
}

void
publishServeMetrics(const ServeStats &stats)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("serve.requests_admitted").add(stats.admitted);
    reg.counter("serve.requests_rejected").add(stats.rejected);
    reg.counter("serve.requests_completed").add(stats.completed);
    reg.counter("serve.rejected_queue_full")
        .add(stats.rejectedQueueFull);
    reg.counter("serve.rejected_rate_limited")
        .add(stats.rejectedRateLimited);
    reg.counter("serve.shed_deadline").add(stats.shedDeadline);
    reg.counter("serve.deadline_met").add(stats.deadlineMet);
    reg.counter("serve.preemptions").add(stats.preemptions);
    reg.counter("serve.preemption_resumes")
        .add(stats.preemptionResumes);
    reg.counter("serve.reprice_events").add(stats.repriceEvents);
    reg.counter("serve.alert.fired").add(stats.alertsFired);
    reg.counter("serve.alert.resolved").add(stats.alertsResolved);
    reg.counter("serve.alert.ticks_firing").add(stats.alertTicksFiring);
    reg.counter("serve.batches").add(stats.batches);
    reg.counter("serve.batched_ops").add(stats.batchedOps);
    reg.gauge("serve.makespan_ns").set(stats.makespanNs);
    reg.gauge("serve.gpu_util").set(stats.gpuUtil());
    reg.gauge("serve.pim_util").set(stats.pimUtil());
    reg.gauge("serve.throughput_rps").set(stats.throughputRps());
    reg.gauge("serve.goodput_rps").set(stats.goodputRps());
    reg.gauge("serve.preemption_overhead_ns")
        .set(stats.preemptionOverheadNs);
    reg.gauge("serve.latency_p50_ns").set(stats.percentileNs(50.0));
    reg.gauge("serve.latency_p99_ns").set(stats.percentileNs(99.0));
}

} // namespace anaheim::serve

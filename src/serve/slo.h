/**
 * @file
 * SLO machinery for the serving scheduler (DESIGN.md §16): a
 * deterministic simulated-time token bucket for per-tenant rate
 * limiting, and a fault-free service-time estimator that prices every
 * tenant trace on the configured device pair so admission can tell
 * whether a deadline is still feasible. The estimator re-prices on a
 * degraded geometry (quarantined banks) via `PimConfig::degraded()`
 * and the failure-aware memory planner, falling back to GPU-only
 * pricing when the degraded plan no longer fits — the serve layer's
 * view of mid-run graceful degradation (§14).
 *
 * Everything here is a pure function of its inputs: no wall clock, no
 * global state, so serve runs stay bitwise reproducible.
 */

#ifndef ANAHEIM_SERVE_SLO_H
#define ANAHEIM_SERVE_SLO_H

#include <cstddef>
#include <vector>

#include "anaheim/framework.h"

namespace anaheim::serve {

/**
 * Token bucket over simulated time. Tokens accrue at `ratePerSec`
 * (requests/second of simulated time) up to `burst`; each admitted
 * request consumes one. `tryAcquire` must be called with
 * non-decreasing timestamps (the scheduler's release times are).
 */
class TokenBucket
{
  public:
    /** Starts full (a fresh tenant may burst immediately). */
    TokenBucket(double ratePerSec, double burst);

    /** Refill up to `nowNs`, then take one token if available.
     *  False = the request is rate-limited. */
    bool tryAcquire(double nowNs);

    double tokens() const { return tokens_; }

  private:
    double ratePerNs_;
    double burst_;
    double tokens_;
    double lastNs_ = 0.0;
};

/** Fault-free price of one trace on the current device view. */
struct ServiceEstimate {
    double totalNs = 0.0;
    /** GPU-side share (roofline kernels + coherence + boundaries). */
    double gpuNs = 0.0;
    /** PIM-side share; the part a degraded geometry inflates. */
    double pimNs = 0.0;
};

/**
 * Prices every tenant trace by stepping a resilience-free RunContext
 * on a private framework (the models are analytic; one pricing pass
 * per trace costs the same as one request execution). Deadline
 * admission compares `dispatchNs + estimate(t).totalNs` against the
 * request's absolute deadline: the estimate is the *earliest possible*
 * completion, so a miss against it is a guaranteed SLO violation and
 * the request is shed rather than executed.
 */
class ServiceEstimator
{
  public:
    /** `traces` must outlive the estimator (the scheduler's own
     *  argument does). Resilience knobs are stripped before pricing:
     *  estimates answer "how long on a clean device", never "how
     *  lucky were this request's fault draws". */
    ServiceEstimator(const AnaheimConfig &config,
                     const std::vector<OpSequence> &traces);

    /** Estimate for traces[index % traces.size()]. */
    const ServiceEstimate &estimate(size_t index) const;

    /**
     * Re-price every trace on the degraded geometry: banks/lanes in
     * `resources` are quarantined, so PIM work slows to the worst die
     * group's healthy-bank lockstep (PimConfig::degraded). Traces
     * whose degraded memory plan no longer fits — and every trace when
     * `pimOffline` — are priced GPU-only, exactly the fallback
     * `execute()` takes. Idempotent per capacity level; each call is
     * one re-pricing pass.
     */
    void reprice(const ResourceMap &resources, bool pimOffline);

    /** True once reprice() has run at least once. */
    bool degraded() const { return degraded_; }

  private:
    void priceAll(const AnaheimConfig &config,
                  const ResourceMap *resources);

    AnaheimConfig base_;
    const std::vector<OpSequence> &traces_;
    std::vector<ServiceEstimate> estimates_;
    bool degraded_ = false;
};

} // namespace anaheim::serve

#endif // ANAHEIM_SERVE_SLO_H

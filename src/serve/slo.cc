#include "slo.h"

#include <algorithm>
#include <memory>

#include "anaheim/planner.h"
#include "anaheim/runcontext.h"
#include "common/logging.h"

namespace anaheim::serve {

TokenBucket::TokenBucket(double ratePerSec, double burst)
    : ratePerNs_(ratePerSec * 1e-9), burst_(burst), tokens_(burst)
{
    ANAHEIM_ASSERT(ratePerSec > 0.0, "rate limiter needs a positive rate");
    ANAHEIM_ASSERT(burst >= 1.0, "rate limiter burst must be >= 1");
}

bool
TokenBucket::tryAcquire(double nowNs)
{
    ANAHEIM_ASSERT(nowNs >= lastNs_, "token bucket time moved backwards");
    tokens_ = std::min(burst_, tokens_ + (nowNs - lastNs_) * ratePerNs_);
    lastNs_ = nowNs;
    if (tokens_ < 1.0)
        return false;
    tokens_ -= 1.0;
    return true;
}

namespace {

/** Price one trace on `fw`: a resilience-free RunContext stepped to
 *  completion, split into PIM vs everything-else time. */
ServiceEstimate
priceTrace(const AnaheimFramework &fw, const OpSequence &seq)
{
    RunContext ctx(fw, seq);
    while (!ctx.done())
        ctx.step();
    const RunResult result = ctx.finish();
    ServiceEstimate est;
    est.totalNs = result.totalNs;
    const auto pim = result.timeNsByCategory.find("PIM");
    est.pimNs = pim != result.timeNsByCategory.end() ? pim->second : 0.0;
    est.gpuNs = est.totalNs - est.pimNs;
    return est;
}

} // namespace

ServiceEstimator::ServiceEstimator(const AnaheimConfig &config,
                                   const std::vector<OpSequence> &traces)
    : base_(config), traces_(traces)
{
    ANAHEIM_ASSERT(!traces.empty(), "estimator needs at least one trace");
    // Estimates answer "how long on a clean device": strip every
    // fault/recovery knob so pricing never samples a fault stream.
    base_.resilience = ResilienceConfig{};
    base_.obs.trace = false;
    priceAll(base_, nullptr);
}

const ServiceEstimate &
ServiceEstimator::estimate(size_t index) const
{
    return estimates_[index % estimates_.size()];
}

void
ServiceEstimator::reprice(const ResourceMap &resources, bool pimOffline)
{
    degraded_ = true;
    AnaheimConfig degraded = base_;
    if (pimOffline) {
        degraded.pimEnabled = false;
        priceAll(degraded, nullptr);
        return;
    }
    degraded.pim = base_.pim.degraded(resources);
    priceAll(degraded, &resources);
}

void
ServiceEstimator::priceAll(const AnaheimConfig &config,
                           const ResourceMap *resources)
{
    const AnaheimFramework fw(config);
    // GPU-only pricing for traces whose degraded plan no longer fits:
    // the framework redirects their PIM segments to the GPU, so the
    // estimate must, too. Built lazily — the healthy path never pays.
    AnaheimConfig gpuOnly = config;
    gpuOnly.pimEnabled = false;
    std::unique_ptr<AnaheimFramework> gpuFw;

    estimates_.resize(traces_.size());
    for (size_t t = 0; t < traces_.size(); ++t) {
        bool fits = true;
        if (resources != nullptr)
            fits = PimMemoryPlanner(base_.dram, base_.pim)
                       .plan(traces_[t], *resources)
                       .fits;
        if (fits) {
            estimates_[t] = priceTrace(fw, traces_[t]);
        } else {
            if (!gpuFw)
                gpuFw = std::make_unique<AnaheimFramework>(gpuOnly);
            estimates_[t] = priceTrace(*gpuFw, traces_[t]);
        }
    }
}

} // namespace anaheim::serve

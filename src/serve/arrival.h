/**
 * @file
 * Open-loop arrival generation for the serving scheduler: each client
 * stream gets a pre-generated, sorted list of request arrival times so
 * the offered load is a pure function of (ServeConfig) and never of the
 * schedule. Poisson arrivals draw exponential inter-arrival gaps from
 * the stream's own deterministic RNG stream; closed-loop streams carry
 * no timestamps (the scheduler releases the next request when the
 * previous one completes).
 */

#ifndef ANAHEIM_SERVE_ARRIVAL_H
#define ANAHEIM_SERVE_ARRIVAL_H

#include <vector>

#include "anaheim/framework.h"

namespace anaheim::serve {

/**
 * Arrival timestamps (ns, ascending) for every stream:
 * `arrivals[s][k]` is when request k of stream s enters the system.
 *
 * OpenPoisson: stream s draws `requestsPerStream` exponential gaps at
 * rate `offeredRps / streams` from Rng(arrivalSeed mixed with s), so
 * the aggregate offered load is `offeredRps` and every stream's
 * schedule is independent of every other's.
 *
 * Closed: all timestamps are 0 — admission is completion-driven and
 * the scheduler stamps the real arrival at release time.
 */
std::vector<std::vector<double>> buildArrivals(const ServeConfig &serve);

} // namespace anaheim::serve

#endif // ANAHEIM_SERVE_ARRIVAL_H

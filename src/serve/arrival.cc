#include "arrival.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace anaheim::serve {

std::vector<std::vector<double>>
buildArrivals(const ServeConfig &serve)
{
    ANAHEIM_ASSERT(serve.streams > 0, "serving needs at least 1 stream");
    std::vector<std::vector<double>> arrivals(serve.streams);
    for (auto &stream : arrivals)
        stream.assign(serve.requestsPerStream, 0.0);
    if (serve.arrival == ArrivalKind::Closed)
        return arrivals;

    ANAHEIM_ASSERT(serve.offeredRps > 0.0,
                   "open-loop arrivals need a positive offered rate");
    const double perStreamRps =
        serve.offeredRps / static_cast<double>(serve.streams);
    const double meanGapNs = 1e9 / perStreamRps;
    for (size_t s = 0; s < serve.streams; ++s) {
        // Per-stream splitmix-style seed mix: distinct, reproducible
        // streams from one user-facing seed.
        Rng rng(serve.arrivalSeed +
                (static_cast<uint64_t>(s) + 1) * 0x9E3779B97F4A7C15ULL);
        double t = 0.0;
        for (size_t k = 0; k < serve.requestsPerStream; ++k) {
            // Inverse-CDF exponential; 1 - u keeps log() away from 0.
            t += -meanGapNs * std::log(1.0 - rng.uniformReal());
            arrivals[s][k] = t;
        }
    }
    return arrivals;
}

} // namespace anaheim::serve

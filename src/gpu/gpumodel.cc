#include "gpumodel.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace anaheim {

GpuConfig
GpuConfig::a100_80gb()
{
    GpuConfig config;
    config.name = "A100 80GB";
    config.intTops = 19.5;
    config.dramBwGBs = 1802.0;
    config.l2Bytes = 40e6;
    config.energyPerDramBytePj = 31.0; // HBM2e, on-package
    config.workingTrafficFactor = 0.85; // 40MB L2 partial reuse
    config.idlePowerW = 85.0;
    return config;
}

GpuConfig
GpuConfig::rtx4090()
{
    GpuConfig config;
    config.name = "RTX 4090";
    config.intTops = 41.3;
    config.dramBwGBs = 939.0;
    config.l2Bytes = 72e6;
    config.workingTrafficFactor = 0.55; // 72MB L2 vs A100's 40MB
    config.energyPerDramBytePj = 69.0; // GDDR6X, off-package PHY
    config.idlePowerW = 55.0;
    return config;
}

LibraryProfile
LibraryProfile::cheddar()
{
    LibraryProfile profile;
    profile.name = "Cheddar";
    profile.nttEfficiency = 0.26;
    profile.bconvEfficiency = 0.50;
    profile.elementWiseEfficiency = 0.90;
    return profile;
}

LibraryProfile
LibraryProfile::phantom()
{
    // Fig. 2a: Cheddar's (I)NTT and BConv are ~1.8x faster.
    LibraryProfile profile;
    profile.name = "Phantom";
    profile.nttEfficiency = 0.26 / 1.80;
    profile.bconvEfficiency = 0.50 / 1.75;
    profile.elementWiseEfficiency = 0.88;
    return profile;
}

LibraryProfile
LibraryProfile::lib100x()
{
    LibraryProfile profile;
    profile.name = "100x";
    profile.nttEfficiency = 0.26 / 1.73;
    profile.bconvEfficiency = 0.50 / 1.73;
    profile.elementWiseEfficiency = 0.88;
    return profile;
}

KernelTraffic
GpuModel::traffic(const KernelOp &op, bool fusedWithProducer,
                  double extraWriteBackBytes, bool fusedWithConsumer) const
{
    KernelTraffic traffic;
    const double limb = limbBytes(op.n);
    // Working-set residency: a kernel whose combined operand footprint
    // fits in half the L2 (leaving room for streaming data) keeps its
    // Working operands cached; otherwise they stream.
    double workingFootprint = 0.0;
    for (const auto &operand : op.reads)
        if (operand.kind == OperandKind::Working)
            workingFootprint += operand.limbs * limb;
    const bool workingCached = workingFootprint <= config_.l2Bytes * 0.5;

    const double reuse = config_.workingTrafficFactor;
    for (const auto &operand : op.reads) {
        const double bytes = operand.limbs * limb;
        switch (operand.kind) {
          case OperandKind::Evk:
          case OperandKind::PlainConst:
            traffic.dramReadBytes += bytes; // one-time-use, streamed
            break;
          case OperandKind::Working:
            if (workingCached) {
                traffic.l2Bytes += bytes;
            } else {
                traffic.dramReadBytes += bytes * reuse;
                traffic.l2Bytes += bytes * (1.0 - reuse);
            }
            break;
          case OperandKind::Intermediate:
            if (fusedWithProducer) {
                traffic.l2Bytes += bytes;
            } else {
                traffic.dramReadBytes += bytes * reuse;
                traffic.l2Bytes += bytes * (1.0 - reuse);
            }
            break;
        }
    }
    for (const auto &operand : op.writes) {
        const double bytes = operand.limbs * limb;
        if (operand.kind == OperandKind::Intermediate &&
            fusedWithConsumer) {
            traffic.l2Bytes += bytes;
        } else {
            traffic.dramWriteBytes += bytes * reuse;
            traffic.l2Bytes += bytes * (1.0 - reuse);
        }
    }
    traffic.dramWriteBytes += extraWriteBackBytes;
    return traffic;
}

GpuKernelStats
GpuModel::run(const KernelOp &op, const KernelTraffic &traffic) const
{
    double efficiency = 1.0;
    switch (kernelClass(op.type)) {
      case KernelClass::NttIntt:
        efficiency = profile_.nttEfficiency;
        break;
      case KernelClass::BConv:
        efficiency = profile_.bconvEfficiency;
        break;
      case KernelClass::ElementWise:
      case KernelClass::Automorphism:
        efficiency = profile_.elementWiseEfficiency;
        break;
    }

    GpuKernelStats stats;
    stats.traffic = traffic;
    stats.computeNs =
        op.intOps() / (config_.intTops * 1e3 * efficiency); // TOPS->ops/ns
    const double effectiveBw = config_.dramBwGBs *
                               (kernelClass(op.type) ==
                                        KernelClass::ElementWise ||
                                    kernelClass(op.type) ==
                                        KernelClass::Automorphism
                                    ? profile_.elementWiseEfficiency
                                    : 1.0) *
                               config_.bwEfficiency;
    stats.memoryNs = traffic.total() / effectiveBw; // GB/s == B/ns
    stats.timeNs = std::max(stats.computeNs, stats.memoryNs) +
                   config_.launchOverheadUs * 1e3;

    stats.energyPj = op.intOps() * config_.energyPerIntOpPj +
                     traffic.l2Bytes * config_.energyPerL2BytePj +
                     traffic.total() * config_.energyPerDramBytePj +
                     stats.timeNs * config_.idlePowerW * 1e3; // W*ns -> pJ

    // Roofline totals into the metrics registry (references cached:
    // name lookup once per process, then relaxed atomic adds).
    static obs::Counter &kernels =
        obs::MetricsRegistry::global().counter("gpu.kernels");
    static obs::Gauge &intOps =
        obs::MetricsRegistry::global().gauge("gpu.int_ops");
    static obs::Gauge &dramBytes =
        obs::MetricsRegistry::global().gauge("gpu.dram_bytes");
    static obs::Counter &memoryBound =
        obs::MetricsRegistry::global().counter("gpu.memory_bound_kernels");
    kernels.add();
    intOps.add(op.intOps());
    dramBytes.add(traffic.total());
    if (stats.memoryBound())
        memoryBound.add();
    return stats;
}

GpuKernelStats
GpuModel::run(const KernelOp &op, bool fusedWithProducer,
              double extraWriteBackBytes, bool fusedWithConsumer) const
{
    return run(op, traffic(op, fusedWithProducer, extraWriteBackBytes,
                           fusedWithConsumer));
}

} // namespace anaheim

/**
 * @file
 * GPU timing and energy model.
 *
 * Substitution for the paper's real A100 80GB / RTX 4090 measurements
 * (see DESIGN.md): per-kernel time is a roofline over exact op/byte
 * counts from the trace layer — max(compute, DRAM) plus launch
 * overhead — with per-library efficiency profiles (Cheddar / Phantom /
 * 100x) and the MAD-style caching assumptions of §V-D deciding which
 * operands hit DRAM.
 */

#ifndef ANAHEIM_GPU_GPUMODEL_H
#define ANAHEIM_GPU_GPUMODEL_H

#include <string>

#include "trace/kernel.h"

namespace anaheim {

struct GpuConfig {
    std::string name;
    /** Peak 32-bit integer mult-add throughput, TOPS (Table III). */
    double intTops = 19.5;
    /** External DRAM bandwidth, GB/s. */
    double dramBwGBs = 1802.0;
    /** L2 cache capacity, bytes. */
    double l2Bytes = 40e6;
    /** Kernel launch/transition overhead, microseconds (§V-C). */
    double launchOverheadUs = 3.0;
    /** Achievable fraction of peak DRAM bandwidth for streaming. */
    double bwEfficiency = 0.85;
    /** Fraction of Working/Intermediate element-wise traffic that still
     *  reaches DRAM after L2 reuse (evks/plaintexts never reuse). The
     *  RTX 4090's 72MB L2 retains noticeably more working data. */
    double workingTrafficFactor = 1.0;
    /** Energy coefficients (pJ/op, pJ/byte) and idle power (W). */
    double energyPerIntOpPj = 0.8;
    double energyPerL2BytePj = 1.2;
    double energyPerDramBytePj = 31.0;
    double idlePowerW = 80.0;

    static GpuConfig a100_80gb();
    static GpuConfig rtx4090();
};

/** Per-kernel-class compute efficiency of a GPU FHE library; the knobs
 *  that express the Cheddar-vs-Phantom-vs-100x gaps of Fig. 2a. */
struct LibraryProfile {
    std::string name;
    double nttEfficiency = 0.55;
    double bconvEfficiency = 0.60;
    double elementWiseEfficiency = 0.9;

    static LibraryProfile cheddar();
    static LibraryProfile phantom();
    static LibraryProfile lib100x();
};

/** DRAM-traffic view of one kernel under the caching model. */
struct KernelTraffic {
    double dramReadBytes = 0.0;
    double dramWriteBytes = 0.0;
    double l2Bytes = 0.0;
    double total() const { return dramReadBytes + dramWriteBytes; }
};

struct GpuKernelStats {
    double timeNs = 0.0;
    double energyPj = 0.0;
    double computeNs = 0.0;
    double memoryNs = 0.0;
    KernelTraffic traffic;
    bool memoryBound() const { return memoryNs >= computeNs; }
};

class GpuModel
{
  public:
    GpuModel(const GpuConfig &config, const LibraryProfile &profile)
        : config_(config), profile_(profile)
    {
    }

    const GpuConfig &config() const { return config_; }
    const LibraryProfile &profile() const { return profile_; }

    /**
     * DRAM traffic of one kernel. Evk/plaintext operands always stream
     * from DRAM (one-time use); Working operands stream when the
     * working set exceeds the cache; Intermediate operands round-trip
     * through DRAM unless the kernel was fused with its producer
     * (fusionGroup shared), in which case they stay in cache/registers.
     *
     * @param extraWriteBackBytes Coherence write-backs Anaheim inserts
     *        before PIM kernels (§V-C).
     */
    KernelTraffic traffic(const KernelOp &op, bool fusedWithProducer,
                          double extraWriteBackBytes = 0.0,
                          bool fusedWithConsumer = false) const;

    /** Roofline execution of one kernel. */
    GpuKernelStats run(const KernelOp &op, const KernelTraffic &traffic)
        const;

    /** Convenience: traffic + run. */
    GpuKernelStats run(const KernelOp &op, bool fusedWithProducer = false,
                       double extraWriteBackBytes = 0.0,
                       bool fusedWithConsumer = false) const;

  private:
    GpuConfig config_;
    LibraryProfile profile_;
};

} // namespace anaheim

#endif // ANAHEIM_GPU_GPUMODEL_H
